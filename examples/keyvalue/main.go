// Keyvalue: the DNA pool as a key-value store (§1.1.1). Objects are
// stored under string keys, each keyed by a PCR primer; the pool is
// sequenced once through a noisy channel, and individual objects are
// retrieved from the shared read-out by selective amplification — no
// physical organisation, no scanning of other objects' strands.
package main

import (
	"bytes"
	"fmt"
	"os"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dist"
	"dnastore/internal/store"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	pool := store.New(store.Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    2024,
	})

	objects := map[string][]byte{
		"readme.txt":  bytes.Repeat([]byte("DNA keeps data for centuries. "), 8),
		"config.json": []byte(`{"retention_years": 500, "medium": "synthetic DNA", "codec": "2-bit"}`),
		"photo.raw":   bytes.Repeat([]byte{0x89, 0x50, 0x4e, 0x47, 0x42, 0x17}, 40),
	}
	for key, data := range objects {
		if err := pool.Store(key, data); err != nil {
			return err
		}
	}
	fmt.Printf("stored %d objects in %d strands: %v\n",
		len(objects), pool.NumStrands(), pool.Keys())

	// One sequencing run over the whole pool, Nanopore-flavoured noise.
	ch := channel.NewNaive("nanopore-ish", channel.NanoporeMix(0.02)).
		WithSpatial(dist.NanoporeSkew())
	reads := pool.Sequence(ch, channel.NegBinCoverage{Mean: 14, Dispersion: 6}, 7)
	fmt.Printf("sequenced the pool: %d reads\n", len(reads))

	// Random access: each object is recovered independently from the same
	// read-out.
	for key, want := range objects {
		got, err := pool.Retrieve(key, reads)
		if err != nil {
			return fmt.Errorf("retrieve %q: %w", key, err)
		}
		status := "OK"
		if !bytes.Equal(got, want) {
			status = "CORRUPTED"
		}
		fmt.Printf("  %-12s %4d bytes  %s\n", key, len(got), status)
	}
	return nil
}
