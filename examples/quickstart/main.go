// Quickstart: the simulator in ~40 lines. Generate reference strands,
// push them through a noisy channel at coverage 6, reconstruct with the
// Iterative algorithm, and measure the paper's two accuracy metrics.
package main

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
)

func main() {
	// 1000 random reference strands of length 110 (the Nanopore dataset's
	// shape).
	refs := channel.RandomReferences(1000, 110, 42)

	// A Nanopore-flavoured channel: 5.9% aggregate error, deletion-heavy,
	// with the terminal spatial skew of Fig 3.2b and burst deletions.
	ch := channel.NewNaive("nanopore-ish", channel.NanoporeMix(0.059)).
		WithSpatial(dist.NanoporeSkew())
	ch.LongDel = channel.PaperLongDeletion()

	// Six noisy copies of every strand.
	sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(6)}
	ds := sim.Simulate("quickstart", refs, 7)
	fmt.Println(ds.ComputeStats())

	// Reconstruct each cluster and score the estimates.
	for _, alg := range []recon.Reconstructor{
		recon.NewIterative(),
		recon.NewTwoWayIterative(),
		recon.NewBMA(),
		recon.Majority{},
	} {
		out := recon.ReconstructDataset(alg, ds)
		acc := metrics.ComputeAccuracy(ds.References(), out)
		fmt.Printf("%-18s %s\n", alg.Name(), acc)
	}
}
