// Trainingdata: using the simulator as a synthetic data generator for
// learned reconstruction (§2.2.3: DNASimulator trained the DNAformer
// neural network; a better-calibrated simulator yields better training
// data). The program calibrates the full second-order model from a
// "real" dataset, then emits an arbitrarily large labeled corpus —
// (noisy cluster, reference) pairs — as a FASTA of references and a
// FASTQ of reads whose IDs carry the cluster labels.
package main

import (
	"flag"
	"fmt"
	"os"

	"dnastore/internal/channel"
	"dnastore/internal/profile"
	"dnastore/internal/seqio"
	"dnastore/internal/wetlab"
)

func main() {
	var (
		pairs   = flag.Int("pairs", 5000, "labeled clusters to emit")
		cov     = flag.Int("coverage", 10, "reads per cluster")
		refsOut = flag.String("refs", "train_refs.fasta", "reference FASTA path")
		readOut = flag.String("reads", "train_reads.fastq", "read FASTQ path")
		profOut = flag.String("profile", "profile.json", "fitted profile JSON path")
	)
	flag.Parse()
	if err := run(*pairs, *cov, *refsOut, *readOut, *profOut); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(pairs, cov int, refsOut, readOut, profOut string) error {
	// "Real" data to calibrate against: a modest wetlab sample.
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 1000
	real, err := wetlab.Generate(cfg)
	if err != nil {
		return err
	}
	prof, err := profile.Profile(real, profile.Options{})
	if err != nil {
		return err
	}
	fmt.Println("calibrated:", prof.Summary())

	// Persist the calibration next to the corpus for provenance.
	pf, err := os.Create(profOut)
	if err != nil {
		return err
	}
	if err := prof.WriteJSON(pf); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}

	// Generate the corpus with fresh references: the trained model must
	// generalise beyond the calibration strands.
	model := prof.SecondOrderModel("sdg", 10)
	refs := channel.RandomReferences(pairs, prof.StrandLen, 90210)
	sim := channel.Simulator{Channel: model, Coverage: channel.FixedCoverage(cov)}
	corpus := sim.Simulate("training", refs, 424242)

	rf, err := os.Create(refsOut)
	if err != nil {
		return err
	}
	defer rf.Close()
	qf, err := os.Create(readOut)
	if err != nil {
		return err
	}
	defer qf.Close()
	if err := seqio.WriteDataset(rf, qf, corpus, 20); err != nil {
		return err
	}
	fmt.Printf("wrote %d labeled clusters (%d reads) to %s + %s; calibration in %s\n",
		corpus.NumClusters(), corpus.NumReads(), refsOut, readOut, profOut)
	return nil
}
