// Pipeline: a complete DNA storage round trip (§1.1's six steps). A file
// is encoded into indexed strands with two-level Reed–Solomon redundancy,
// tagged with a PCR primer, mixed into a pool with another object, pushed
// through the composable multi-stage physical channel (synthesis → PCR →
// storage decay → sequencing), re-clustered from the shuffled read pool,
// reconstructed, and decoded back to the original bytes.
package main

import (
	"bytes"
	"fmt"
	"os"

	"dnastore/internal/channel"
	"dnastore/internal/cluster"
	"dnastore/internal/codec"
	"dnastore/internal/dna"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	document := bytes.Repeat([]byte("It from bit, bit from base pair. "), 30)
	decoy := bytes.Repeat([]byte("Another tenant of the same DNA pool."), 25)
	r := rng.New(2024)

	// 1-2. Encode both objects into strands and key them with primers.
	// Redundancy sized to the channel: per-strand parity absorbs residual
	// substitutions; clusters that reconstruct with an indel fail the
	// strand code entirely and fall through to the group code as
	// erasures, so the group parity must cover the expected share of
	// low-coverage clusters.
	arch := codec.Archive{Codec: codec.Trivial2Bit{}, StrandParity: 8, GroupData: 10, GroupParity: 6}
	primers, err := codec.GeneratePrimers(2, codec.PrimerConfig{}, r)
	if err != nil {
		return err
	}
	docStrands, err := arch.Encode(document)
	if err != nil {
		return err
	}
	decoyStrands, err := arch.Encode(decoy)
	if err != nil {
		return err
	}
	pool := append(codec.Tag(primers[0], docStrands), codec.Tag(primers[1], decoyStrands)...)
	fmt.Printf("stored %d strands (%d for our document, strand length %d)\n",
		len(pool), len(docStrands), arch.StrandLength()+primers[0].Len())

	// 3. The physical channel: synthesis, PCR, 10 years on the shelf,
	// Nanopore sequencing — as one composable pipeline.
	physical := channel.NewStoragePipeline("physical", 0.02, 10)
	sim := channel.Simulator{
		Channel:  physical,
		Coverage: channel.NegBinCoverage{Mean: 16, Dispersion: 6},
	}
	ds := sim.Simulate("pool", pool, 77)
	fmt.Println("sequenced:", ds.ComputeStats())

	// 4. Random access: PCR-amplify only our primer's strands out of the
	// shuffled pool.
	reads := ds.AllReads(r)
	selected := codec.SelectAmplify(reads, primers[0], 4)
	fmt.Printf("PCR selection: %d of %d reads amplified\n", len(selected), len(reads))

	// 5. Cluster the unlabeled reads and reconstruct each cluster.
	clusters := cluster.Greedy(selected, cluster.Config{})
	fmt.Printf("clustered into %d clusters (expected ≈%d)\n", len(clusters), len(docStrands))
	alg := recon.NewTwoWayIterative()
	var recovered []dna.Strand
	for _, members := range clusters {
		if len(members) == 0 {
			continue
		}
		est := alg.Reconstruct(members, arch.StrandLength())
		recovered = append(recovered, est)
	}

	// 6. Decode: per-strand RS absorbs residual substitutions; group RS
	// rebuilds strands lost to clustering or erasure.
	got, err := arch.Decode(recovered)
	if err != nil {
		return fmt.Errorf("decode failed: %w", err)
	}
	if !bytes.Equal(got, document) {
		return fmt.Errorf("document corrupted after round trip")
	}
	fmt.Printf("recovered %d bytes exactly — round trip complete\n", len(got))
	return nil
}
