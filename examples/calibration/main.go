// Calibration: the paper's core loop (§3.3). Generate a "real" wetlab
// dataset, extract its error profile from reads alone, fit the four
// progressively richer simulator tiers, and compare trace-reconstruction
// accuracy of simulated versus real data at fixed coverage — the shape of
// Tables 3.1 and 3.2: the naive simulator is far too optimistic, each
// added parameter closes the gap for BMA, and the spatial-skew tier
// over-corrects the Iterative algorithm.
package main

import (
	"fmt"
	"os"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/metrics"
	"dnastore/internal/profile"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
	"dnastore/internal/wetlab"
)

func main() {
	// The wetlab stand-in: 2000 clusters of the published Nanopore shape.
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 2000
	real, err := wetlab.Generate(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Fit everything from the reads; the channel's true parameters are
	// never consulted.
	prof, err := profile.Profile(real, profile.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("fitted profile:", prof.Summary())
	fmt.Println()

	// Fixed coverage N=5 view of the real data (§3.2 protocol).
	shuffled := real.Clone()
	shuffled.ShuffleReads(rng.New(99))
	realN5, err := shuffled.SubsampleFixed(5, 10)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	realN5.Name = "Nanopore (real)"

	// The four calibrated tiers, simulated on the same references at the
	// same coverage.
	sets := []*dataset.Dataset{realN5}
	for i, tier := range prof.Tiers(10) {
		sim := channel.Simulator{Channel: tier, Coverage: channel.FixedCoverage(5)}
		sets = append(sets, sim.Simulate(tier.Name(), real.References(), uint64(100+i)))
	}

	fmt.Printf("%-24s %-28s %-28s\n", "data", "BMA", "Iterative")
	for _, ds := range sets {
		bmaOut := recon.ReconstructDataset(recon.NewBMA(), ds)
		iterOut := recon.ReconstructDataset(recon.NewIterative(), ds)
		bma := metrics.ComputeAccuracy(ds.References(), bmaOut)
		iter := metrics.ComputeAccuracy(ds.References(), iterOut)
		fmt.Printf("%-24s %-28s %-28s\n", ds.Name, bma, iter)
	}
	fmt.Println("\nReading the table: simulated rows above the real row are optimistic;")
	fmt.Println("the gap shrinks for BMA as parameters are added (the paper's Table 3.1).")
}
