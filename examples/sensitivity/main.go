// Sensitivity: the paper's §3.4 spatial-distribution study. At identical
// aggregate error (p̄ = 0.15) and coverage, only the *shape* of the error
// distribution changes — uniform, A-shaped (peak mid-strand) or V-shaped
// (peaks at the terminals) — and reconstruction accuracy moves by tens of
// points: BMA thrives on A-shaped noise (it propagates its own errors to
// the middle anyway) and suffers on V-shaped noise.
package main

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
)

func main() {
	refs := channel.RandomReferences(1500, 110, 11)
	const p = 0.15

	fmt.Printf("aggregate error %.0f%%, coverage 5, 1500 strands of length 110\n\n", p*100)
	fmt.Printf("%-14s %-30s %-30s\n", "distribution", "BMA", "Iterative-2way")
	for _, spatial := range []dist.Spatial{dist.Uniform{}, dist.TriangularA{}, dist.TriangularV{}} {
		ch := channel.NewNaive("p15", channel.EqualMix(p)).WithSpatial(spatial)
		sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(5)}
		ds := sim.Simulate(spatial.Name(), refs, 13)

		bma := metrics.ComputeAccuracy(ds.References(), recon.ReconstructDataset(recon.NewBMA(), ds))
		tw := metrics.ComputeAccuracy(ds.References(), recon.ReconstructDataset(recon.NewTwoWayIterative(), ds))
		fmt.Printf("%-14s %-30s %-30s\n", spatial.Name(), bma, tw)
	}

	// Show the post-reconstruction gestalt profile shapes the paper plots
	// in Fig 3.10: where do the residual errors live?
	fmt.Println("\nresidual gestalt error mass by strand third (BMA):")
	for _, spatial := range []dist.Spatial{dist.TriangularA{}, dist.TriangularV{}} {
		ch := channel.NewNaive("p15", channel.EqualMix(p)).WithSpatial(spatial)
		sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(5)}
		ds := sim.Simulate(spatial.Name(), refs, 17)
		out := recon.ReconstructDataset(recon.NewBMA(), ds)
		g := metrics.GestaltProfile(ds.References(), out, 110)
		third := func(lo, hi int) int {
			s := 0
			for i := lo; i < hi; i++ {
				s += g.Counts[i]
			}
			return s
		}
		fmt.Printf("  %-10s first %6d   middle %6d   last %6d\n",
			spatial.Name(), third(0, 37), third(37, 74), third(74, 111))
	}
}
