// Package chaosnet is a deterministic, seeded TCP fault proxy for
// drilling HTTP clients and servers against real socket-level failure —
// not in-process fakes. Placed between the dnasimd client and server, it
// injects, per connection:
//
//   - connect latency: the upstream dial is delayed;
//   - resets: the response stream is cut mid-body with an RST
//     (SO_LINGER 0), the failure mode of a crashed peer or dropped NAT
//     entry;
//   - slow-loris: the response trickles at a few hundred bytes per
//     second, the failure mode client-side per-call timeouts exist for;
//   - truncation: the response ends with a clean FIN mid-body;
//   - corruption: bytes early in the response stream are flipped, so the
//     client sees a mangled status line or JSON body it must refuse to
//     act on;
//   - blackhole: the connection accepts and consumes the request but
//     never answers, either by per-connection draw or for scheduled
//     intervals (SetBlackhole / Scenario.BlackholePeriod).
//
// Faults are chosen per accepted connection by an RNG derived from
// (Seed, connection index), so a drill's fault schedule is reproducible
// run to run. Only the server→client direction is ever mutated: mangling
// a request could rewrite a job spec into a different valid spec, which
// would poison exactly the duplicate/conservation accounting the drills
// assert. Silent payload corruption past the early-window is likewise out
// of scope here — catching that is the durability layer's job (CRC32C
// containers), not the transport drill's.
package chaosnet

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Fault names one injected failure mode.
type Fault string

const (
	FaultNone           Fault = "none"
	FaultConnectLatency Fault = "connect-latency"
	FaultReset          Fault = "reset"
	FaultSlowLoris      Fault = "slow-loris"
	FaultTruncate       Fault = "truncate"
	FaultCorrupt        Fault = "corrupt"
	FaultBlackhole      Fault = "blackhole"
)

// Scenario weights the per-connection fault draw and parameterises each
// fault. Weights are relative (they need not sum to 1); zero disables a
// fault. The zero Scenario injects nothing.
type Scenario struct {
	// Relative weights of the per-connection fault draw.
	None           float64
	ConnectLatency float64
	Reset          float64
	SlowLoris      float64
	Truncate       float64
	Corrupt        float64
	Blackhole      float64

	// MaxConnectLatency bounds the injected dial delay (default 250ms).
	MaxConnectLatency time.Duration
	// ResetAfterBytes / TruncateAfterBytes bound how far into the
	// response stream the cut lands; the actual offset is drawn uniform
	// in [1, bound] (defaults 512).
	ResetAfterBytes    int
	TruncateAfterBytes int
	// SlowLorisBytesPerSec is the trickle rate (default 400); SlowLorisFor
	// bounds how long the trickle lasts before the stream opens up
	// (default 3s) so drills terminate.
	SlowLorisBytesPerSec int
	SlowLorisFor         time.Duration
	// CorruptFlips bytes are flipped within the first CorruptWindow bytes
	// of the response stream (defaults 4 flips in 256 bytes). Keeping the
	// flips early guarantees the damage lands in the HTTP status line,
	// headers or JSON framing — i.e. is detectable by the client — rather
	// than silently inside an octet-stream payload.
	CorruptFlips  int
	CorruptWindow int

	// BlackholePeriod/BlackholeFor, when both positive, schedule recurring
	// blackhole windows: every period, new connections are swallowed for
	// the given duration. SetBlackhole toggles the same switch manually.
	BlackholePeriod time.Duration
	BlackholeFor    time.Duration
}

// withDefaults fills unset parameters.
func (sc Scenario) withDefaults() Scenario {
	if sc.MaxConnectLatency <= 0 {
		sc.MaxConnectLatency = 250 * time.Millisecond
	}
	if sc.ResetAfterBytes <= 0 {
		sc.ResetAfterBytes = 512
	}
	if sc.TruncateAfterBytes <= 0 {
		sc.TruncateAfterBytes = 512
	}
	if sc.SlowLorisBytesPerSec <= 0 {
		sc.SlowLorisBytesPerSec = 400
	}
	if sc.SlowLorisFor <= 0 {
		sc.SlowLorisFor = 3 * time.Second
	}
	if sc.CorruptFlips <= 0 {
		sc.CorruptFlips = 4
	}
	if sc.CorruptWindow <= 0 {
		sc.CorruptWindow = 256
	}
	return sc
}

// Default is the standard chaos drill mix: most connections clean, every
// fault represented.
func Default() Scenario {
	return Scenario{
		None:           0.55,
		ConnectLatency: 0.10,
		Reset:          0.10,
		SlowLoris:      0.05,
		Truncate:       0.10,
		Corrupt:        0.05,
		Blackhole:      0.05,
	}
}

// Stats counts accepted connections by injected fault.
type Stats struct {
	Conns          uint64
	None           uint64
	ConnectLatency uint64
	Reset          uint64
	SlowLoris      uint64
	Truncate       uint64
	Corrupt        uint64
	Blackhole      uint64
}

// String renders the stats as one log-friendly line.
func (s Stats) String() string {
	return fmt.Sprintf("conns=%d none=%d connect-latency=%d reset=%d slow-loris=%d truncate=%d corrupt=%d blackhole=%d",
		s.Conns, s.None, s.ConnectLatency, s.Reset, s.SlowLoris, s.Truncate, s.Corrupt, s.Blackhole)
}

// Proxy is a running chaos proxy. Create with Listen; stop with Close.
type Proxy struct {
	target string
	sc     Scenario
	seed   uint64
	ln     net.Listener

	connIdx    atomic.Uint64
	blackholed atomic.Bool
	stats      [7]atomic.Uint64 // indexed by fault order below
	wg         sync.WaitGroup
	stop       chan struct{}

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

// statIdx maps faults onto the stats array.
func statIdx(f Fault) int {
	switch f {
	case FaultConnectLatency:
		return 1
	case FaultReset:
		return 2
	case FaultSlowLoris:
		return 3
	case FaultTruncate:
		return 4
	case FaultCorrupt:
		return 5
	case FaultBlackhole:
		return 6
	}
	return 0
}

// Listen starts a proxy on 127.0.0.1:0 forwarding to target (a host:port).
func Listen(target string, sc Scenario, seed uint64) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaosnet: listen: %w", err)
	}
	p := &Proxy{
		target: target,
		sc:     sc.withDefaults(),
		seed:   seed,
		ln:     ln,
		stop:   make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	if p.sc.BlackholePeriod > 0 && p.sc.BlackholeFor > 0 {
		p.wg.Add(1)
		go p.blackholeLoop()
	}
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetBlackhole toggles the blackhole switch: while on, new connections
// are accepted and swallowed without a single response byte.
func (p *Proxy) SetBlackhole(on bool) { p.blackholed.Store(on) }

// Stats returns a snapshot of the injected-fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Conns:          p.connIdx.Load(),
		None:           p.stats[0].Load(),
		ConnectLatency: p.stats[1].Load(),
		Reset:          p.stats[2].Load(),
		SlowLoris:      p.stats[3].Load(),
		Truncate:       p.stats[4].Load(),
		Corrupt:        p.stats[5].Load(),
		Blackhole:      p.stats[6].Load(),
	}
}

// Close stops accepting, tears down every live connection, and waits for
// the handler goroutines to exit.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.stop)
	err := p.ln.Close()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for teardown; it reports false when the
// proxy is already closed (the caller must drop the conn).
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

// untrack removes a finished connection.
func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// blackholeLoop schedules the recurring blackhole windows.
func (p *Proxy) blackholeLoop() {
	defer p.wg.Done()
	t := time.NewTicker(p.sc.BlackholePeriod)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			p.blackholed.Store(true)
			select {
			case <-p.stop:
				p.blackholed.Store(false)
				return
			case <-time.After(p.sc.BlackholeFor):
				p.blackholed.Store(false)
			}
		}
	}
}

// acceptLoop accepts and dispatches connections until closed.
func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		idx := p.connIdx.Add(1)
		if !p.track(conn) {
			conn.Close()
			return
		}
		p.wg.Add(1)
		go p.handle(conn, idx)
	}
}

// splitmix64 mixes the seed and connection index into an independent
// per-connection RNG seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw picks this connection's fault from the scenario weights.
func (p *Proxy) draw(r *rand.Rand) Fault {
	sc := p.sc
	weights := []struct {
		f Fault
		w float64
	}{
		{FaultNone, sc.None},
		{FaultConnectLatency, sc.ConnectLatency},
		{FaultReset, sc.Reset},
		{FaultSlowLoris, sc.SlowLoris},
		{FaultTruncate, sc.Truncate},
		{FaultCorrupt, sc.Corrupt},
		{FaultBlackhole, sc.Blackhole},
	}
	total := 0.0
	for _, w := range weights {
		if w.w > 0 {
			total += w.w
		}
	}
	if total <= 0 {
		return FaultNone
	}
	x := r.Float64() * total
	for _, w := range weights {
		if w.w <= 0 {
			continue
		}
		if x < w.w {
			return w.f
		}
		x -= w.w
	}
	return FaultNone
}

// handle runs one proxied connection under its drawn fault.
func (p *Proxy) handle(client net.Conn, idx uint64) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	r := rand.New(rand.NewSource(int64(splitmix64(p.seed ^ idx))))
	fault := p.draw(r)
	if p.blackholed.Load() {
		fault = FaultBlackhole
	}
	p.stats[statIdx(fault)].Add(1)

	if fault == FaultBlackhole {
		// Swallow the request so client writes complete, answer nothing.
		// The client's per-call timeout is what ends this exchange.
		io.Copy(io.Discard, client)
		return
	}

	if fault == FaultConnectLatency {
		delay := time.Duration(r.Int63n(int64(p.sc.MaxConnectLatency)))
		select {
		case <-p.stop:
			return
		case <-time.After(delay):
		}
	}

	upstream, err := net.DialTimeout("tcp", p.target, 5*time.Second)
	if err != nil {
		return // upstream down: the client sees a reset, which is accurate
	}
	if !p.track(upstream) {
		upstream.Close()
		return
	}
	defer p.untrack(upstream)
	defer upstream.Close()

	// Client→server is always copied verbatim (mutating a request could
	// rewrite a spec into a different valid one).
	go func() {
		io.Copy(upstream, client)
		// Propagate the client's FIN so the upstream doesn't wait forever.
		if tc, ok := upstream.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()

	// Server→client runs through the fault filter.
	switch fault {
	case FaultReset:
		cut := 1 + r.Intn(p.sc.ResetAfterBytes)
		io.CopyN(client, upstream, int64(cut))
		if tc, ok := client.(*net.TCPConn); ok {
			tc.SetLinger(0) // make Close send RST, not FIN
		}
	case FaultTruncate:
		cut := 1 + r.Intn(p.sc.TruncateAfterBytes)
		io.CopyN(client, upstream, int64(cut))
	case FaultCorrupt:
		p.copyCorrupting(client, upstream, r)
	case FaultSlowLoris:
		p.copyThrottled(client, upstream)
	default:
		io.Copy(client, upstream)
	}
}

// copyCorrupting forwards the stream flipping CorruptFlips bytes at
// random offsets within the first CorruptWindow bytes.
func (p *Proxy) copyCorrupting(dst io.Writer, src io.Reader, r *rand.Rand) {
	window := make([]byte, p.sc.CorruptWindow)
	n, _ := io.ReadFull(src, window)
	window = window[:n]
	for i := 0; i < p.sc.CorruptFlips && n > 0; i++ {
		window[r.Intn(n)] ^= 0xff
	}
	if _, err := dst.Write(window); err != nil {
		return
	}
	io.Copy(dst, src)
}

// copyThrottled trickles the stream at SlowLorisBytesPerSec for
// SlowLorisFor, then opens up.
func (p *Proxy) copyThrottled(dst io.Writer, src io.Reader) {
	const chunk = 16
	interval := time.Second * chunk / time.Duration(p.sc.SlowLorisBytesPerSec)
	deadline := time.Now().Add(p.sc.SlowLorisFor)
	buf := make([]byte, chunk)
	for time.Now().Before(deadline) {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
		select {
		case <-p.stop:
			return
		case <-time.After(interval):
		}
	}
	io.Copy(dst, src)
}
