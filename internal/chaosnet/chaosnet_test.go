package chaosnet

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// backend starts a plain HTTP server returning body, and returns its
// host:port plus the expected bytes.
func backend(t *testing.T, body []byte) string {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	return strings.TrimPrefix(ts.URL, "http://")
}

// proxyFor starts a chaos proxy in front of addr with the given scenario.
func proxyFor(t *testing.T, addr string, sc Scenario, seed uint64) *Proxy {
	t.Helper()
	p, err := Listen(addr, sc, seed)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// oneShotClient disables keep-alives so each request maps onto exactly
// one proxied connection (and therefore one fault draw).
func oneShotClient(timeout time.Duration) *http.Client {
	return &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func TestCleanPassThrough(t *testing.T) {
	body := bytes.Repeat([]byte("dna-payload-"), 64)
	p := proxyFor(t, backend(t, body), Scenario{None: 1}, 1)

	c := oneShotClient(2 * time.Second)
	for i := 0; i < 3; i++ {
		resp, err := c.Get(p.URL())
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("request %d: body mismatch through clean proxy", i)
		}
	}
	if st := p.Stats(); st.None != st.Conns || st.Conns == 0 {
		t.Errorf("stats = %v, want all-clean", st)
	}
}

func TestResetCutsMidBody(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 64<<10) // well past ResetAfterBytes
	p := proxyFor(t, backend(t, body), Scenario{Reset: 1, ResetAfterBytes: 200}, 2)

	c := oneShotClient(2 * time.Second)
	sawError := false
	for i := 0; i < 4; i++ {
		resp, err := c.Get(p.URL())
		if err != nil {
			sawError = true
			continue
		}
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("no request observed the injected reset")
	}
	if st := p.Stats(); st.Reset == 0 {
		t.Errorf("stats = %v, want resets recorded", st)
	}
}

func TestTruncateEndsBodyEarly(t *testing.T) {
	body := bytes.Repeat([]byte("y"), 64<<10)
	p := proxyFor(t, backend(t, body), Scenario{Truncate: 1, TruncateAfterBytes: 300}, 3)

	c := oneShotClient(2 * time.Second)
	resp, err := c.Get(p.URL())
	if err == nil {
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && len(got) == len(body) {
			t.Fatal("full body arrived through a truncating proxy")
		}
	}
	if st := p.Stats(); st.Truncate == 0 {
		t.Errorf("stats = %v, want truncations recorded", st)
	}
}

func TestCorruptMutatesEarlyBytes(t *testing.T) {
	body := bytes.Repeat([]byte("z"), 4<<10)
	p := proxyFor(t, backend(t, body), Scenario{Corrupt: 1}, 4)

	// Flips land in the first CorruptWindow bytes — the status line and
	// headers — so the client must either fail to parse the response or
	// see a body that differs from the original.
	c := oneShotClient(2 * time.Second)
	intact := 0
	for i := 0; i < 4; i++ {
		resp, err := c.Get(p.URL())
		if err != nil {
			continue
		}
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil && bytes.Equal(got, body) && resp.StatusCode == http.StatusOK {
			intact++
		}
	}
	if intact == 4 {
		t.Fatal("every response survived a corrupting proxy intact")
	}
	if st := p.Stats(); st.Corrupt == 0 {
		t.Errorf("stats = %v, want corruptions recorded", st)
	}
}

func TestSlowLorisTripsClientTimeout(t *testing.T) {
	body := bytes.Repeat([]byte("s"), 8<<10) // 8KiB at 400 B/s ≈ 20s
	p := proxyFor(t, backend(t, body), Scenario{SlowLoris: 1}, 5)

	c := oneShotClient(300 * time.Millisecond)
	if _, err := c.Get(p.URL()); err == nil {
		t.Fatal("slow-loris response finished inside a 300ms client timeout")
	}
	if st := p.Stats(); st.SlowLoris == 0 {
		t.Errorf("stats = %v, want slow-loris recorded", st)
	}
}

func TestBlackholeSwitchSwallowsRequests(t *testing.T) {
	p := proxyFor(t, backend(t, []byte("ok")), Scenario{None: 1}, 6)
	p.SetBlackhole(true)

	c := oneShotClient(200 * time.Millisecond)
	if _, err := c.Get(p.URL()); err == nil {
		t.Fatal("request through a blackholed proxy returned a response")
	}
	if st := p.Stats(); st.Blackhole == 0 {
		t.Errorf("stats = %v, want blackhole recorded", st)
	}

	// Flipping the switch back restores service.
	p.SetBlackhole(false)
	c2 := oneShotClient(2 * time.Second)
	resp, err := c2.Get(p.URL())
	if err != nil {
		t.Fatalf("request after blackhole lifted: %v", err)
	}
	resp.Body.Close()
}

func TestFaultScheduleIsDeterministic(t *testing.T) {
	addr := backend(t, []byte("deterministic"))
	run := func(seed uint64) Stats {
		p := proxyFor(t, addr, Default(), seed)
		c := oneShotClient(500 * time.Millisecond)
		const n = 24
		for i := 0; i < n; i++ {
			resp, err := c.Get(p.URL())
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
		var st Stats
		waitFor(t, 5*time.Second, func() bool {
			st = p.Stats()
			return st.Conns >= n
		}, "all connections counted")
		return st
	}
	a, b := run(42), run(42)
	// Conns can differ (timeouts can spawn extra dials), but the fault
	// drawn for connection index i is a pure function of (seed, i), so the
	// first 24 draws — and therefore the per-fault tallies over them —
	// match when the connection counts match.
	if a.Conns == b.Conns && a != b {
		t.Errorf("same seed, same conns, different schedule:\n  a=%v\n  b=%v", a, b)
	}
	c := run(43)
	if a == c {
		t.Errorf("different seeds produced identical stats (possible but suspicious): %v", a)
	}
}

func TestCloseTearsDownLiveConnections(t *testing.T) {
	p := proxyFor(t, backend(t, []byte("ok")), Scenario{None: 1}, 7)
	p.SetBlackhole(true)

	// Park a request inside the blackhole, then Close must not hang on it.
	done := make(chan struct{})
	go func() {
		c := oneShotClient(10 * time.Second)
		c.Get(p.URL()) //nolint:errcheck — the proxy closing is the success path
		close(done)
	}()
	waitFor(t, 2*time.Second, func() bool { return p.Stats().Blackhole > 0 }, "blackholed connection accepted")

	closed := make(chan struct{})
	go func() {
		p.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on a live blackholed connection")
	}
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("parked client request never unblocked after Close")
	}
}
