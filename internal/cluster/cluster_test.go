package cluster

import (
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

func makePoolDataset(n, cov int, rate float64, seed uint64) (pool []dna.Strand, labels []int, refs []dna.Strand) {
	refs = channel.RandomReferences(n, 110, seed)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(rate)),
		Coverage: channel.FixedCoverage(cov),
	}
	ds := sim.Simulate("pool", refs, seed+1)
	pool, labels = LabeledPool(ds)
	// Shuffle pool and labels together.
	r := rng.New(seed + 2)
	r.Shuffle(len(pool), func(i, j int) {
		pool[i], pool[j] = pool[j], pool[i]
		labels[i], labels[j] = labels[j], labels[i]
	})
	return pool, labels, refs
}

func TestGreedyPerfectOnCleanReads(t *testing.T) {
	refs := channel.RandomReferences(50, 110, 1)
	var pool []dna.Strand
	var labels []int
	for i, ref := range refs {
		for k := 0; k < 4; k++ {
			pool = append(pool, ref)
			labels = append(labels, i)
		}
	}
	clusters := GreedyIndices(pool, Config{})
	if len(clusters) != 50 {
		t.Fatalf("got %d clusters, want 50", len(clusters))
	}
	p, err := Purity(clusters, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("purity = %v", p)
	}
}

func TestGreedyOnNoisyReads(t *testing.T) {
	pool, labels, _ := makePoolDataset(80, 8, 0.06, 3)
	clusters := GreedyIndices(pool, Config{})
	p, err := Purity(clusters, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.95 {
		t.Errorf("purity = %v, want >= 0.95", p)
	}
	// Cluster count should be near the reference count (some fragmentation
	// is expected and realistic).
	if len(clusters) < 80 || len(clusters) > 160 {
		t.Errorf("cluster count = %d, want ≈80", len(clusters))
	}
}

func TestGreedyStrandsMatchIndices(t *testing.T) {
	pool, _, _ := makePoolDataset(20, 4, 0.05, 4)
	byIdx := GreedyIndices(pool, Config{})
	byStrand := Greedy(pool, Config{})
	if len(byIdx) != len(byStrand) {
		t.Fatalf("cluster counts differ: %d vs %d", len(byIdx), len(byStrand))
	}
	for i := range byIdx {
		if len(byIdx[i]) != len(byStrand[i]) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j, m := range byIdx[i] {
			if pool[m] != byStrand[i][j] {
				t.Fatalf("cluster %d member %d mismatch", i, j)
			}
		}
	}
}

func TestShortReadsFormSingletons(t *testing.T) {
	pool := []dna.Strand{"ACG", "ACG", "TGCA"}
	clusters := GreedyIndices(pool, Config{K: 12})
	// Reads shorter than k hash whole-strand: identical short reads should
	// still cluster together.
	total := 0
	for _, c := range clusters {
		total += len(c)
	}
	if total != 3 {
		t.Fatalf("clusters cover %d reads", total)
	}
}

func TestAssignToReferences(t *testing.T) {
	pool, _, refs := makePoolDataset(60, 6, 0.06, 5)
	clusters := Greedy(pool, Config{})
	ds := AssignToReferences(clusters, refs, 30)
	if ds.NumClusters() != 60 {
		t.Fatalf("got %d clusters", ds.NumClusters())
	}
	if ds.NumReads() < len(pool)*9/10 {
		t.Errorf("only %d of %d reads assigned", ds.NumReads(), len(pool))
	}
	// Reconstruction from the re-clustered data should be near the perfect
	// clustering's quality.
	out := recon.ReconstructDataset(recon.NewIterative(), ds)
	acc := metrics.ComputeAccuracy(ds.References(), out)
	if acc.PerStrand < 70 {
		t.Errorf("per-strand accuracy after re-clustering = %v", acc.PerStrand)
	}
}

func TestAssignDropsJunk(t *testing.T) {
	refs := channel.RandomReferences(5, 110, 7)
	junk := channel.RandomReferences(1, 110, 99)[0]
	clusters := [][]dna.Strand{{junk}, {}}
	ds := AssignToReferences(clusters, refs, 10)
	if ds.NumReads() != 0 {
		t.Errorf("junk read was assigned (%d reads)", ds.NumReads())
	}
}

func TestPurityErrors(t *testing.T) {
	if _, err := Purity(nil, nil); err == nil {
		t.Error("empty clustering accepted")
	}
	if _, err := Purity([][]int{{5}}, []int{0}); err == nil {
		t.Error("out-of-range member accepted")
	}
}

func TestPurityMixedCluster(t *testing.T) {
	p, err := Purity([][]int{{0, 1, 2, 3}}, []int{7, 7, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.75 {
		t.Errorf("purity = %v, want 0.75", p)
	}
}

func TestLabeledPool(t *testing.T) {
	refs := channel.RandomReferences(3, 50, 8)
	sim := channel.Simulator{Channel: channel.NewNaive("n", channel.Rates{}), Coverage: channel.FixedCoverage(2)}
	ds := sim.Simulate("lp", refs, 9)
	pool, labels := LabeledPool(ds)
	if len(pool) != 6 || len(labels) != 6 {
		t.Fatalf("pool %d labels %d", len(pool), len(labels))
	}
	if labels[0] != 0 || labels[5] != 2 {
		t.Errorf("labels = %v", labels)
	}
}
