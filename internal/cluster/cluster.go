// Package cluster implements the clustering step of the DNA storage read
// pipeline (§1.1.2, §3.1). The simulator's output is already grouped by
// reference ("perfect" or pseudo-clustering); this package additionally
// provides the *imperfect* regime: a shuffled, unlabeled read pool is
// re-clustered by sequence similarity, introducing the characteristic
// errors (fragmented and merged clusters) that a real pipeline's clustering
// stage would.
//
// The clusterer is a greedy single-pass algorithm in the spirit of
// Rashtchian et al. [18]: reads are bucketed by k-mer minimizer signatures
// so that only plausible neighbours are compared, and a read joins the
// first existing cluster whose representative is within a banded edit
// distance threshold.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"

	"dnastore/internal/align"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
)

// Config parameterises the greedy clusterer.
type Config struct {
	// K is the k-mer length for minimizer signatures (default 12).
	K int
	// Signatures is how many minimizers (smallest k-mer hashes) each read
	// contributes to the bucket index (default 3).
	Signatures int
	// Threshold is the maximum edit distance between a read and a cluster
	// representative for the read to join (default: 25% of read length).
	Threshold int
}

func (c Config) k() int {
	if c.K <= 0 {
		return 10
	}
	return c.K
}

func (c Config) signatures() int {
	if c.Signatures <= 0 {
		return 6
	}
	return c.Signatures
}

func (c Config) threshold(readLen int) int {
	if c.Threshold > 0 {
		return c.Threshold
	}
	return readLen / 4
}

// GreedyIndices clusters the pool and returns the member indices of each
// cluster, in pool order of first member. Reads shorter than the k-mer
// length form singleton clusters.
func GreedyIndices(pool []dna.Strand, cfg Config) [][]int {
	type clusterRec struct {
		rep     dna.Strand
		members []int
	}
	var clusters []clusterRec
	buckets := make(map[uint64][]int) // minimizer hash -> cluster ids
	sigBuf := make([]uint64, 0, cfg.signatures())

	for i, read := range pool {
		sigs := minimizers(read, cfg.k(), cfg.signatures(), sigBuf[:0])
		best := -1
		bestDist := int(^uint(0) >> 1)
		seen := map[int]bool{}
		for _, s := range sigs {
			for _, cid := range buckets[s] {
				if seen[cid] {
					continue
				}
				seen[cid] = true
				rep := clusters[cid].rep
				thr := cfg.threshold(read.Len())
				if d, ok := align.DistanceAtMost(string(rep), string(read), thr); ok && d < bestDist {
					best, bestDist = cid, d
				}
			}
		}
		if best >= 0 {
			clusters[best].members = append(clusters[best].members, i)
			// Register the new member's signatures too: later reads that
			// share no minimizer with the representative can still find
			// the cluster through this member.
			for _, s := range sigs {
				if !containsID(buckets[s], best) {
					buckets[s] = append(buckets[s], best)
				}
			}
			continue
		}
		cid := len(clusters)
		clusters = append(clusters, clusterRec{rep: read, members: []int{i}})
		for _, s := range sigs {
			buckets[s] = append(buckets[s], cid)
		}
	}

	out := make([][]int, len(clusters))
	for i, c := range clusters {
		out[i] = c.members
	}
	return out
}

// Greedy clusters the pool and returns the member reads of each cluster.
func Greedy(pool []dna.Strand, cfg Config) [][]dna.Strand {
	idx := GreedyIndices(pool, cfg)
	out := make([][]dna.Strand, len(idx))
	for i, members := range idx {
		reads := make([]dna.Strand, len(members))
		for j, m := range members {
			reads[j] = pool[m]
		}
		out[i] = reads
	}
	return out
}

// minimizers returns the n smallest k-mer hashes of the strand (fewer when
// the strand has fewer k-mers; the whole-strand hash when shorter than k).
func minimizers(s dna.Strand, k, n int, buf []uint64) []uint64 {
	if s.Len() < k {
		return append(buf, hashBytes([]byte(s)))
	}
	hashes := make([]uint64, 0, s.Len()-k+1)
	for i := 0; i+k <= s.Len(); i++ {
		hashes = append(hashes, hashBytes([]byte(s[i:i+k])))
	}
	sort.Slice(hashes, func(a, b int) bool { return hashes[a] < hashes[b] })
	// Deduplicate while collecting the n smallest.
	var last uint64
	for i, h := range hashes {
		if i > 0 && h == last {
			continue
		}
		buf = append(buf, h)
		last = h
		if len(buf) == n {
			break
		}
	}
	return buf
}

func containsID(ids []int, id int) bool {
	for _, v := range ids {
		if v == id {
			return true
		}
	}
	return false
}

func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// AssignToReferences maps unlabeled clusters back to reference strands for
// evaluation: each cluster is assigned to the reference nearest to its
// representative (first member); clusters beyond maxDist from every
// reference are dropped; multiple clusters mapping to one reference are
// merged. References attracting no cluster become erasures. The result is
// a Dataset comparable against the perfect clustering.
func AssignToReferences(clusters [][]dna.Strand, refs []dna.Strand, maxDist int) *dataset.Dataset {
	ds := &dataset.Dataset{Name: "reclustered", Clusters: make([]dataset.Cluster, len(refs))}
	for i, ref := range refs {
		ds.Clusters[i].Ref = ref
	}
	// Bucket references by minimizer for fast nearest lookup.
	cfg := Config{}
	refBuckets := make(map[uint64][]int)
	for i, ref := range refs {
		for _, s := range minimizers(ref, cfg.k(), cfg.signatures(), nil) {
			refBuckets[s] = append(refBuckets[s], i)
		}
	}
	for _, members := range clusters {
		if len(members) == 0 {
			continue
		}
		rep := members[0]
		best, bestDist := -1, maxDist+1
		seen := map[int]bool{}
		for _, s := range minimizers(rep, cfg.k(), cfg.signatures(), nil) {
			for _, ri := range refBuckets[s] {
				if seen[ri] {
					continue
				}
				seen[ri] = true
				if d, ok := align.DistanceAtMost(string(refs[ri]), string(rep), maxDist); ok && d < bestDist {
					best, bestDist = ri, d
				}
			}
		}
		if best < 0 {
			continue // junk cluster: not close to any reference
		}
		ds.Clusters[best].Reads = append(ds.Clusters[best].Reads, members...)
	}
	return ds
}

// Purity computes the weighted purity of a clustering against ground-truth
// labels: for each cluster, the fraction of members sharing the cluster's
// plurality label, weighted by cluster size. 1.0 is a perfect clustering.
func Purity(clusters [][]int, labels []int) (float64, error) {
	total, agree := 0, 0
	for _, members := range clusters {
		counts := map[int]int{}
		for _, m := range members {
			if m < 0 || m >= len(labels) {
				return 0, fmt.Errorf("cluster: member index %d out of label range", m)
			}
			counts[labels[m]]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		total += len(members)
		agree += best
	}
	if total == 0 {
		return 0, fmt.Errorf("cluster: empty clustering")
	}
	return float64(agree) / float64(total), nil
}

// LabeledPool flattens a dataset into a read pool with ground-truth labels
// (the cluster index each read came from), optionally shuffled by the
// caller afterwards. It is the standard input for clustering evaluation.
func LabeledPool(ds *dataset.Dataset) (pool []dna.Strand, labels []int) {
	for i, c := range ds.Clusters {
		for _, r := range c.Reads {
			pool = append(pool, r)
			labels = append(labels, i)
		}
	}
	return pool, labels
}
