package recon

import "dnastore/internal/dna"

// Majority is the simplest consensus: an independent per-position vote
// with no indel awareness. It serves as the floor baseline — a single
// deletion in a copy shifts every later vote of that copy.
type Majority struct{}

// Name implements Reconstructor.
func (Majority) Name() string { return "Majority" }

// Reconstruct implements Reconstructor.
func (Majority) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	out := make([]byte, 0, length)
	for i := 0; i < length; i++ {
		var votes voteCounts
		for _, c := range cluster {
			if i < c.Len() {
				votes.add(c.At(i))
			}
		}
		b, ok := votes.winner()
		if !ok {
			break // no copy reaches this position: the tail is an erasure
		}
		out = append(out, b.Byte())
	}
	return dna.Strand(out)
}
