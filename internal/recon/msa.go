package recon

import (
	"dnastore/internal/align"
	"dnastore/internal/dna"
)

// MSA is classic center-star multiple-sequence-alignment consensus (Yazdi
// et al. [24], one of the trace-reconstruction families §1.1.2 lists): the
// copy with the minimum total edit distance to the rest of the cluster is
// chosen as the star center, every other copy is aligned to it with a
// maximum-likelihood edit script, and the alignment columns vote — a
// column is dropped when a majority deletes it, a gap gains the plurality
// inserted subsequence when a majority inserts there. The consensus is
// re-centred and re-voted until fixpoint.
//
// Unlike BMA and Iterative it has no sequential sweep, so its residual
// errors carry no positional direction — at the cost of O(c²·L²) distance
// computations per cluster for the centre choice.
type MSA struct {
	// Rounds bounds re-vote iterations (default 3).
	Rounds int
}

// NewMSA returns the algorithm with default parameters.
func NewMSA() MSA { return MSA{Rounds: 3} }

// Name implements Reconstructor.
func (MSA) Name() string { return "MSA" }

func (m MSA) rounds() int {
	if m.Rounds <= 0 {
		return 3
	}
	return m.Rounds
}

// Reconstruct implements Reconstructor.
func (m MSA) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	est := centerCopy(cluster)
	if est.Len() == 0 {
		return ""
	}
	for r := 0; r < m.rounds(); r++ {
		next := polish(cluster, est)
		if next == est {
			break
		}
		est = next
	}
	return est
}

// centerCopy returns the cluster member minimising the total edit distance
// to all other members (ties break toward the earliest copy whose length
// is closest to the cluster median, then lowest index).
func centerCopy(cluster []dna.Strand) dna.Strand {
	if len(cluster) == 1 {
		return cluster[0]
	}
	best, bestSum := 0, int(^uint(0)>>1)
	for i, c := range cluster {
		sum := 0
		for j, d := range cluster {
			if i == j {
				continue
			}
			sum += align.Distance(string(c), string(d))
			if sum >= bestSum {
				break // cannot beat the incumbent
			}
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return cluster[best]
}
