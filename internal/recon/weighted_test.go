package recon

import (
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
)

func TestWeightedIterativeBasics(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGTACGTACGA")
	alg := NewWeightedIterative()
	if got := alg.Reconstruct([]dna.Strand{ref, ref, ref}, ref.Len()); got != ref {
		t.Errorf("clean cluster gave %q", got)
	}
	if got := alg.Reconstruct(nil, 5); got != "" {
		t.Errorf("empty cluster gave %q", got)
	}
	if alg.Name() != "Iterative-weighted" {
		t.Errorf("Name = %q", alg.Name())
	}
}

func TestWeightedIterativeDownweightsJunkCopy(t *testing.T) {
	// Two good copies against three copies of a *different* strand (the
	// §1.1.2 mis-clustering hazard). An unweighted majority follows the
	// junk (3 > 2); the weighted sweep collapses the junk copies' weights
	// once they lose the opening votes. Scatter the junk copies' first
	// three symbols so the good pair wins those votes.
	good := dna.Strand("ACGTTGCAACGGTACCGATGACGTTGCA")
	junkBody := dna.Strand("AACGTTGCAACGTTGCAACGTTGCA") // 25 bases
	junk1 := "CAT" + junkBody                           // scatter the first
	junk2 := "GTA" + junkBody                           // three positions so
	junk3 := "TAC" + junkBody                           // the good pair wins them
	cluster := []dna.Strand{good, junk1, good, junk2, junk3}
	got := NewWeightedIterative().Reconstruct(cluster, good.Len())
	// The junk copies lose the first three votes, their weights collapse
	// (0.7³ ≈ 0.34 each, 1.03 total vs the good pair's 2.0), and the good
	// copies dictate the rest of the sweep and the weighted refinement.
	if got != good {
		t.Errorf("weighted reconstruct = %q, want %q", got, good)
	}
}

func TestWeightedIterativeCompetitive(t *testing.T) {
	refs := channel.RandomReferences(300, 110, 71)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(5),
	}
	ds := sim.Simulate("w", refs, 72)
	plain := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewIterative(), ds))
	weighted := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewWeightedIterative(), ds))
	// The weighting must not hurt on clean clustered data...
	if weighted.PerChar < plain.PerChar-1 {
		t.Errorf("weighted per-char %.2f below plain %.2f", weighted.PerChar, plain.PerChar)
	}
}

func TestWeightedIterativeRobustToContamination(t *testing.T) {
	// Contaminate every cluster with reads of a different reference: the
	// weighted variant should degrade less than the plain one.
	refs := channel.RandomReferences(200, 110, 73)
	alien := channel.RandomReferences(200, 110, 99)
	m := channel.NewNaive("n", channel.NanoporeMix(0.059))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("w", refs, 74)
	alienDS := sim.Simulate("a", alien, 75)
	for i := range ds.Clusters {
		// Two alien reads join each 5-read cluster.
		ds.Clusters[i].Reads = append(ds.Clusters[i].Reads, alienDS.Clusters[i].Reads[:2]...)
	}
	plain := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewIterative(), ds))
	weighted := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewWeightedIterative(), ds))
	if weighted.PerChar <= plain.PerChar {
		t.Errorf("weighted per-char %.2f not above plain %.2f under contamination", weighted.PerChar, plain.PerChar)
	}
}

func TestWeightedParamsDefaults(t *testing.T) {
	w := WeightedIterative{Penalty: 2, Reward: 0.5, Window: -1, PolishRounds: -1}
	window, penalty, reward, rounds := w.params()
	if window != 3 || penalty != 0.7 || reward != 1.15 || rounds != 0 {
		t.Errorf("params = %d %v %v %d", window, penalty, reward, rounds)
	}
}
