package recon

import "dnastore/internal/dna"

// WeightedIterative implements the paper's second §4.3 proposal: "using
// heuristics to assign a higher weightage to noisy copies that closely
// align with the partially reconstructed strand". The one-way sweep is
// identical to Iterative's, but each copy carries a reliability weight:
// agreeing at a position multiplies the weight by Reward (recovering
// toward 1), disagreeing multiplies it by Penalty. Votes are
// weight-summed, so a copy that has recently tracked the consensus
// dominates one that has been drifting — exactly the partial-alignment
// heuristic the paper sketches.
type WeightedIterative struct {
	// Window is the look-ahead (default 3).
	Window int
	// Penalty multiplies a copy's weight on disagreement (default 0.7).
	Penalty float64
	// Reward multiplies a copy's weight on agreement, capped at 1
	// (default 1.15).
	Reward float64
	// PolishRounds is as for Iterative (0 = default 2, negative = none).
	PolishRounds int
}

// NewWeightedIterative returns the variant with default parameters.
func NewWeightedIterative() WeightedIterative {
	return WeightedIterative{Window: 3, Penalty: 0.7, Reward: 1.15}
}

// Name implements Reconstructor.
func (w WeightedIterative) Name() string { return "Iterative-weighted" }

func (w WeightedIterative) params() (window int, penalty, reward float64, rounds int) {
	window = w.Window
	if window <= 0 {
		window = 3
	}
	penalty = w.Penalty
	if penalty <= 0 || penalty >= 1 {
		penalty = 0.7
	}
	reward = w.Reward
	if reward < 1 {
		reward = 1.15
	}
	switch {
	case w.PolishRounds < 0:
		rounds = 0
	case w.PolishRounds == 0:
		rounds = 2
	default:
		rounds = w.PolishRounds
	}
	return window, penalty, reward, rounds
}

// Reconstruct implements Reconstructor.
func (w WeightedIterative) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	window, penalty, reward, rounds := w.params()
	est, weights := weightedForward(cluster, length, window, penalty, reward)
	for r := 0; r < rounds; r++ {
		next := polishWeighted(cluster, est, weights)
		if next == est {
			break
		}
		est = next
	}
	return est
}

// weightedVotes accumulates weight-summed votes per base.
type weightedVotes [dna.NumBases]float64

func (v *weightedVotes) add(b dna.Base, w float64) { v[b] += w }

func (v *weightedVotes) winner() (dna.Base, bool) {
	best, bestW := dna.Base(0), 0.0
	for b := dna.Base(0); b < dna.NumBases; b++ {
		if v[b] > bestW {
			best, bestW = b, v[b]
		}
	}
	return best, bestW > 0
}

// weightedForward is the Iterative sweep with reliability-weighted votes;
// it returns the estimate and the final per-copy weights.
func weightedForward(cluster []dna.Strand, length, window int, penalty, reward float64) (dna.Strand, []float64) {
	copies := make([][]byte, len(cluster))
	weights := make([]float64, len(cluster))
	for j, c := range cluster {
		copies[j] = []byte(string(c))
		weights[j] = 1
	}
	target := make([]int8, window+1)
	futVotes := make([]voteCounts, window)
	out := make([]byte, 0, length)
	for i := 0; i < length; i++ {
		var votes weightedVotes
		for j, c := range copies {
			if i < len(c) {
				votes.add(dna.MustBase(c[i]), weights[j])
			}
		}
		maj, ok := votes.winner()
		if !ok {
			break
		}
		mb := maj.Byte()
		out = append(out, mb)

		// Future prediction from agreeing copies (unweighted: agreement at
		// this position is already the filter).
		for k := range futVotes {
			futVotes[k] = voteCounts{}
		}
		for _, c := range copies {
			if i < len(c) && c[i] == mb {
				for k := 1; k <= window && i+k < len(c); k++ {
					futVotes[k-1].add(dna.MustBase(c[i+k]))
				}
			}
		}
		target[0] = int8(maj)
		for k := 0; k < window; k++ {
			if fb, fok := futVotes[k].winner(); fok {
				target[k+1] = int8(fb)
			} else {
				target[k+1] = -1
			}
		}

		for j := range copies {
			c := copies[j]
			if i >= len(c) {
				continue
			}
			if c[i] == mb {
				weights[j] *= reward
				if weights[j] > 1 {
					weights[j] = 1
				}
				continue
			}
			weights[j] *= penalty
			const weightFloor = 0.05
			if weights[j] < weightFloor {
				weights[j] = weightFloor
			}
			surplus := len(c) - length
			switch classify(dna.Strand(c), i, target, surplus) {
			case hypIns:
				copies[j] = append(c[:i], c[i+1:]...)
			case hypDel:
				c = append(c, 0)
				copy(c[i+1:], c[i:len(c)-1])
				c[i] = mb
				copies[j] = c
			default:
				c[i] = mb
			}
		}
	}
	return dna.Strand(out), weights
}
