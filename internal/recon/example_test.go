package recon_test

import (
	"fmt"

	"dnastore/internal/dna"
	"dnastore/internal/recon"
)

// Example reconstructs a reference from three noisy copies carrying one
// error each.
func Example() {
	cluster := []dna.Strand{
		"ACGTTGCAACGGTACCGATG", // clean
		"ACGTGCAACGGTACCGATG",  // one deletion
		"ACGTTGCAACGGTACCGATC", // one substitution
	}
	alg := recon.NewIterative()
	fmt.Println(alg.Reconstruct(cluster, 20))
	// Output: ACGTTGCAACGGTACCGATG
}

// ExampleByName resolves algorithms the way the CLIs do.
func ExampleByName() {
	alg, ok := recon.ByName("iterative-twoway")
	fmt.Println(ok, alg.Name())
	// Output: true Iterative-2way
}
