package recon

import (
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
)

func TestMSACleanCluster(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGTACGTACGA")
	if got := NewMSA().Reconstruct([]dna.Strand{ref, ref, ref}, ref.Len()); got != ref {
		t.Errorf("clean cluster gave %q", got)
	}
	if got := NewMSA().Reconstruct(nil, 10); got != "" {
		t.Errorf("empty cluster gave %q", got)
	}
	if got := NewMSA().Reconstruct([]dna.Strand{ref}, ref.Len()); got != ref {
		t.Errorf("single copy gave %q", got)
	}
}

func TestMSAOutvotesSingleErrors(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGGTACCGATG")
	del := dna.Strand("ACGTGCAACGGTACCGATG")   // deletion
	ins := dna.Strand("ACGTTTGCAACGGTACCGATG") // insertion
	sub := dna.Strand("ACGTTGCAACGGTACCGATC")  // substitution
	cluster := []dna.Strand{ref, del, ins, sub, ref}
	if got := NewMSA().Reconstruct(cluster, ref.Len()); got != ref {
		t.Errorf("MSA gave %q, want %q", got, ref)
	}
}

func TestCenterCopy(t *testing.T) {
	// The middle strand is closest to both others.
	a := dna.Strand("AAAAAAAAAA")
	b := dna.Strand("AAAAATAAAA")
	c := dna.Strand("AAAAATTAAA")
	if got := centerCopy([]dna.Strand{a, b, c}); got != b {
		t.Errorf("center = %q, want %q", got, b)
	}
	if got := centerCopy([]dna.Strand{a}); got != a {
		t.Error("single-element center wrong")
	}
}

func TestMSACompetitiveAccuracy(t *testing.T) {
	refs := channel.RandomReferences(200, 110, 61)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(6),
	}
	ds := sim.Simulate("msa", refs, 62)
	msa := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewMSA(), ds))
	maj := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(Majority{}, ds))
	if msa.PerChar <= maj.PerChar {
		t.Errorf("MSA per-char %.2f not above Majority %.2f", msa.PerChar, maj.PerChar)
	}
	if msa.PerStrand < 50 {
		t.Errorf("MSA per-strand %.2f unexpectedly low", msa.PerStrand)
	}
}

func TestMSAByName(t *testing.T) {
	alg, ok := ByName("msa")
	if !ok || alg.Name() != "MSA" {
		t.Errorf("ByName(msa) = %v, %v", alg, ok)
	}
}
