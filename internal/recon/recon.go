// Package recon implements the trace-reconstruction algorithms the paper
// evaluates simulators with: BMA Look-Ahead (two-way, Batu et al. [3]),
// the one-way Iterative algorithm (Sabary et al. [21]), Divider BMA, plain
// per-position majority, and the Two-Way Iterative variant the paper's §4.3
// proposes as future work.
//
// A trace-reconstruction algorithm receives the cluster of noisy copies of
// one reference strand and estimates the reference. Per the DNA-storage
// setting, the designed strand length L is known to the decoder.
package recon

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
)

// Reconstructor estimates a reference strand from its cluster of noisy
// copies. Implementations must be deterministic and safe for concurrent
// use.
type Reconstructor interface {
	// Reconstruct returns the estimate for a cluster whose designed strand
	// length is length. An empty cluster yields the empty strand (erasure).
	Reconstruct(cluster []dna.Strand, length int) dna.Strand
	// Name identifies the algorithm in tables.
	Name() string
}

// ReconstructDataset runs the algorithm over every cluster, in parallel,
// and returns one estimate per cluster in order. The designed length is
// taken from each cluster's reference strand (known to the storage system
// by design, never read from the noisy copies).
func ReconstructDataset(rec Reconstructor, ds *dataset.Dataset) []dna.Strand {
	return ReconstructDatasetCtx(context.Background(), rec, ds)
}

// ReconstructDatasetCtx is ReconstructDataset under a context, recording
// total wall time and cluster throughput to any stage timer the context
// carries (series "recon.<algorithm>"). The context is observability
// plumbing only: reconstruction is CPU-bound over in-memory clusters, so
// cancellation is not checked mid-run.
func ReconstructDatasetCtx(ctx context.Context, rec Reconstructor, ds *dataset.Dataset) []dna.Strand {
	defer obs.TimerFrom(ctx).Start("recon." + rec.Name())(len(ds.Clusters))
	out := make([]dna.Strand, len(ds.Clusters))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(ds.Clusters) {
		workers = len(ds.Clusters)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	// Work-stealing dispatch (mirroring channel.simulateWith): cluster
	// sizes are heavy-tailed under realistic coverage, so contiguous
	// chunking left one worker grinding the big clusters while the others
	// sat idle; a shared atomic index balances the load. Reconstructors
	// are deterministic, so assignment order cannot affect results.
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ds.Clusters) {
					return
				}
				c := ds.Clusters[i]
				out[i] = rec.Reconstruct(c.Reads, c.Ref.Len())
			}
		}()
	}
	wg.Wait()
	return out
}

// voteCounts tallies base votes; index by dna.Base.
type voteCounts [dna.NumBases]int

// add registers one vote for base b.
func (v *voteCounts) add(b dna.Base) { v[b]++ }

// winner returns the base with the most votes; ties break toward the
// alphabetically first base (deterministic). ok is false when no votes
// were cast.
func (v *voteCounts) winner() (dna.Base, bool) {
	best, bestN := dna.Base(0), 0
	for b := dna.Base(0); b < dna.NumBases; b++ {
		if v[b] > bestN {
			best, bestN = b, v[b]
		}
	}
	return best, bestN > 0
}

// ByName returns a built-in reconstructor configured with defaults, for
// CLI flag parsing. Known names: majority, bma, bma-oneway, iterative,
// iterative-twoway, divbma.
func ByName(name string) (Reconstructor, bool) {
	switch name {
	case "majority":
		return Majority{}, true
	case "bma":
		return NewBMA(), true
	case "bma-oneway":
		return NewOneWayBMA(), true
	case "iterative":
		return NewIterative(), true
	case "iterative-sweep":
		return NewSweepOnlyIterative(), true
	case "iterative-twoway":
		return NewTwoWayIterative(), true
	case "iterative-weighted":
		return NewWeightedIterative(), true
	case "divbma":
		return NewDividerBMA(), true
	case "msa":
		return NewMSA(), true
	default:
		return nil, false
	}
}

// All returns the default-configured instances of every algorithm, in the
// order the paper's tables list them.
func All() []Reconstructor {
	return []Reconstructor{NewBMA(), NewDividerBMA(), NewIterative(), NewTwoWayIterative(), NewWeightedIterative(), NewMSA(), Majority{}}
}

// reverseStrand returns s reversed; helper shared by two-way algorithms.
func reverseStrand(s dna.Strand) dna.Strand { return s.Reverse() }

// reverseCluster returns a new slice with every copy reversed.
func reverseCluster(cluster []dna.Strand) []dna.Strand {
	out := make([]dna.Strand, len(cluster))
	for i, c := range cluster {
		out[i] = c.Reverse()
	}
	return out
}

// spliceHalves concatenates the first half of forward with the second half
// of backward — the two-way combination rule the paper describes for BMA
// (§3.2: "The first half of the forward execution is concatenated with the
// first half of the backward execution", the latter covering the strand's
// tail once un-reversed).
func spliceHalves(forward, backward dna.Strand, length int) dna.Strand {
	mid := length / 2
	f := forward
	if f.Len() > length {
		f = f[:length]
	}
	b := backward
	if b.Len() > length {
		b = b[b.Len()-length:]
	}
	// Pad pathological short outputs so slicing stays in range.
	for f.Len() < length {
		f += "A"
	}
	for b.Len() < length {
		b = "A" + b
	}
	return f[:mid] + b[mid:]
}
