package recon

import (
	"strings"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/metrics"
	"dnastore/internal/rng"
)

func allAlgorithms() []Reconstructor {
	return []Reconstructor{
		Majority{}, NewBMA(), NewOneWayBMA(), NewIterative(), NewSweepOnlyIterative(),
		NewTwoWayIterative(), NewDividerBMA(),
	}
}

func TestEmptyClusterIsErasure(t *testing.T) {
	for _, alg := range allAlgorithms() {
		if got := alg.Reconstruct(nil, 110); got != "" {
			t.Errorf("%s: empty cluster gave %q", alg.Name(), got)
		}
		if got := alg.Reconstruct([]dna.Strand{"ACGT"}, 0); got != "" {
			t.Errorf("%s: zero length gave %q", alg.Name(), got)
		}
	}
}

func TestCleanClusterReconstructsExactly(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGTACGTACGAGTGA")
	cluster := []dna.Strand{ref, ref, ref}
	for _, alg := range allAlgorithms() {
		if got := alg.Reconstruct(cluster, ref.Len()); got != ref {
			t.Errorf("%s: clean cluster gave %q, want %q", alg.Name(), got, ref)
		}
	}
}

func TestSingleCleanCopy(t *testing.T) {
	ref := dna.Strand("GATTACAGATTACAGATTACA")
	for _, alg := range allAlgorithms() {
		if got := alg.Reconstruct([]dna.Strand{ref}, ref.Len()); got != ref {
			t.Errorf("%s: single clean copy gave %q", alg.Name(), got)
		}
	}
}

func TestOutputLengthNearDesignLength(t *testing.T) {
	// Estimates may run slightly long (refinement insertions) or short
	// (exhausted copies), but must stay near the design length and valid.
	r := rng.New(1)
	refs := channel.RandomReferences(30, 110, 1)
	m := channel.NewNaive("n", channel.EqualMix(0.10))
	for _, ref := range refs {
		cluster := make([]dna.Strand, 5)
		for k := range cluster {
			cluster[k] = m.Transmit(ref, r)
		}
		for _, alg := range allAlgorithms() {
			got := alg.Reconstruct(cluster, 110)
			if got.Len() < 90 || got.Len() > 120 {
				t.Fatalf("%s: output length %d, want ≈110", alg.Name(), got.Len())
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("%s: invalid output: %v", alg.Name(), err)
			}
		}
	}
}

func TestMajorityOutvotesSubstitution(t *testing.T) {
	ref := dna.Strand("ACGTACGT")
	bad := dna.Strand("ACGAACGT") // sub at position 3
	cluster := []dna.Strand{ref, ref, bad}
	for _, alg := range allAlgorithms() {
		if got := alg.Reconstruct(cluster, ref.Len()); got != ref {
			t.Errorf("%s: failed to outvote substitution: %q", alg.Name(), got)
		}
	}
}

func TestIndelAwareAlgorithmsFixSingleDeletion(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGGTACCGATG")
	del := dna.Strand("ACGTGCAACGGTACCGATG") // T at pos 4 deleted
	cluster := []dna.Strand{ref, ref, del}
	for _, alg := range []Reconstructor{NewBMA(), NewOneWayBMA(), NewIterative(), NewTwoWayIterative(), NewDividerBMA()} {
		if got := alg.Reconstruct(cluster, ref.Len()); got != ref {
			t.Errorf("%s: failed on single deletion: %q", alg.Name(), got)
		}
	}
}

func TestIndelAwareAlgorithmsFixSingleInsertion(t *testing.T) {
	ref := dna.Strand("ACGTTGCAACGGTACCGATG")
	ins := dna.Strand("ACGTTTGCAACGGTACCGATG") // extra T at pos 4
	cluster := []dna.Strand{ref, ins, ref}
	for _, alg := range []Reconstructor{NewBMA(), NewOneWayBMA(), NewIterative(), NewTwoWayIterative(), NewDividerBMA()} {
		if got := alg.Reconstruct(cluster, ref.Len()); got != ref {
			t.Errorf("%s: failed on single insertion: %q", alg.Name(), got)
		}
	}
}

func TestAllCopiesTruncated(t *testing.T) {
	// Copies all lose their tail; one-way algorithms recover exactly the
	// surviving prefix and report the missing tail as residual deletions.
	ref := dna.Strand("ACGTACGTACGTACGTACGT")
	short := ref[:12]
	cluster := []dna.Strand{short, short, short}
	for _, alg := range []Reconstructor{Majority{}, NewOneWayBMA(), NewIterative(), NewSweepOnlyIterative()} {
		got := alg.Reconstruct(cluster, ref.Len())
		if got != short {
			t.Errorf("%s: got %q, want the surviving prefix %q", alg.Name(), got, short)
		}
	}
	// Two-way variants just need to produce something valid containing the
	// surviving prefix information at the front.
	for _, alg := range []Reconstructor{NewBMA(), NewTwoWayIterative()} {
		got := alg.Reconstruct(cluster, ref.Len())
		if err := got.Validate(); err != nil {
			t.Errorf("%s: invalid output: %v", alg.Name(), err)
		}
		if got.Len() < 10 || got[:10] != short[:10] {
			t.Errorf("%s: prefix corrupted: %q", alg.Name(), got)
		}
	}
}

func TestReconstructDataset(t *testing.T) {
	refs := channel.RandomReferences(40, 60, 2)
	sim := channel.Simulator{Channel: channel.NewNaive("n", channel.EqualMix(0.03)), Coverage: channel.FixedCoverage(6)}
	ds := sim.Simulate("t", refs, 3)
	// Insert an erasure.
	ds.Clusters[7].Reads = nil
	out := ReconstructDataset(NewBMA(), ds)
	if len(out) != 40 {
		t.Fatalf("got %d outputs", len(out))
	}
	if out[7] != "" {
		t.Error("erasure cluster not empty")
	}
	acc := metrics.ComputeAccuracy(ds.References(), out)
	if acc.PerChar < 95 {
		t.Errorf("BMA per-char accuracy %v too low at 3%% error, coverage 6", acc.PerChar)
	}
}

func TestAccuracyImprovesWithCoverage(t *testing.T) {
	refs := channel.RandomReferences(150, 110, 4)
	m := channel.NewNaive("n", channel.EqualMix(0.08))
	accAt := func(cov int) float64 {
		sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(cov)}
		ds := sim.Simulate("t", refs, 5)
		out := ReconstructDataset(NewIterative(), ds)
		return metrics.ComputeAccuracy(ds.References(), out).PerChar
	}
	low, high := accAt(2), accAt(8)
	if high <= low {
		t.Errorf("Iterative per-char accuracy did not improve with coverage: %v -> %v", low, high)
	}
}

func TestBMATwoWayBeatsOneWayOnUniformNoise(t *testing.T) {
	refs := channel.RandomReferences(200, 110, 6)
	m := channel.NewNaive("n", channel.EqualMix(0.10))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(6)}
	ds := sim.Simulate("t", refs, 7)
	one := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewOneWayBMA(), ds))
	two := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewBMA(), ds))
	if two.PerChar <= one.PerChar {
		t.Errorf("two-way BMA (%.2f%%) should beat one-way (%.2f%%) per-char", two.PerChar, one.PerChar)
	}
}

func TestIterativeErrorsSkewTowardEnd(t *testing.T) {
	// §3.2/§3.4.1: the Iterative algorithm propagates errors linearly to
	// the strand end; its post-reconstruction Hamming profile should carry
	// much more error mass in the last third than the first third.
	refs := channel.RandomReferences(400, 110, 8)
	m := channel.NewNaive("n", channel.EqualMix(0.12))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("t", refs, 9)
	out := ReconstructDataset(NewIterative(), ds)
	prof := metrics.HammingProfile(ds.References(), out, 110)
	first, last := 0, 0
	for p := 0; p < 36; p++ {
		first += prof.Counts[p]
	}
	for p := 74; p < 110; p++ {
		last += prof.Counts[p]
	}
	if last < 2*first {
		t.Errorf("Iterative errors not end-skewed: first third %d, last third %d", first, last)
	}
}

func TestBMAErrorsSkewTowardMiddle(t *testing.T) {
	// Fig 3.4c: two-way BMA propagates errors toward the splice point in
	// the middle of the strand.
	refs := channel.RandomReferences(400, 110, 10)
	m := channel.NewNaive("n", channel.EqualMix(0.15))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("t", refs, 11)
	out := ReconstructDataset(NewBMA(), ds)
	prof := metrics.HammingProfile(ds.References(), out, 110)
	edges, middle := 0, 0
	for p := 0; p < 20; p++ {
		edges += prof.Counts[p]
	}
	for p := 90; p < 110; p++ {
		edges += prof.Counts[p]
	}
	for p := 35; p < 75; p++ {
		middle += prof.Counts[p]
	}
	if middle <= edges {
		t.Errorf("BMA errors not middle-skewed: edges %d, middle %d", edges, middle)
	}
}

func TestIterativeResidualErrorsAreDeletionDominant(t *testing.T) {
	// §3.4.1: "the most common errors after Iterative reconstruction were
	// deletion errors (90% of total)".
	refs := channel.RandomReferences(300, 110, 12)
	m := channel.NewNaive("n", channel.NanoporeMix(0.12))
	sim := channel.Simulator{Channel: m, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("t", refs, 13)
	out := ReconstructDataset(NewIterative(), ds)
	census := metrics.CensusErrors(ds.References(), out)
	if census.Total() == 0 {
		t.Skip("no residual errors at this configuration")
	}
	if f := census.Fraction(align.Del); f < 0.4 {
		t.Errorf("deletion share of residual errors = %.2f, want dominant (paper: 0.9)", f)
	}
}

func TestTwoWayIterativeBeatsOneWayOnEndSkewedData(t *testing.T) {
	// §4.3: two-way execution should improve Iterative on data whose
	// errors skew toward the strand end — the regime its one-way sweep
	// handles worst.
	refs := channel.RandomReferences(400, 110, 14)
	m := channel.NewNaive("n", channel.NanoporeMix(0.059))
	skewed := m.WithSpatial(dist.TerminalSkew{StartPositions: 2, EndPositions: 1, StartBoost: 1, EndBoost: 6})
	sim := channel.Simulator{Channel: skewed, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("t", refs, 15)
	one := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewIterative(), ds))
	two := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewTwoWayIterative(), ds))
	if two.PerChar <= one.PerChar {
		t.Errorf("two-way Iterative (%.2f%%) should beat one-way (%.2f%%) per-char on end-skewed data", two.PerChar, one.PerChar)
	}
	if two.PerStrand < one.PerStrand-1 {
		t.Errorf("two-way Iterative per-strand (%.2f%%) regressed vs one-way (%.2f%%)", two.PerStrand, one.PerStrand)
	}
}

func TestDividerBMADegradesWithoutExactLengthCopies(t *testing.T) {
	// DivBMA anchors on length-L copies; starve it of them.
	refs := channel.RandomReferences(150, 110, 16)
	delOnly := channel.NewNaive("d", channel.Rates{Del: 0.05}) // nearly every copy shortened
	sim := channel.Simulator{Channel: delOnly, Coverage: channel.FixedCoverage(5)}
	ds := sim.Simulate("t", refs, 17)
	div := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewDividerBMA(), ds))
	bma := metrics.ComputeAccuracy(ds.References(), ReconstructDataset(NewBMA(), ds))
	if div.PerStrand >= bma.PerStrand {
		t.Errorf("DivBMA (%.2f%%) should trail BMA (%.2f%%) in the deletion-heavy regime", div.PerStrand, bma.PerStrand)
	}
}

func TestByName(t *testing.T) {
	names := []string{"majority", "bma", "bma-oneway", "iterative", "iterative-twoway", "divbma"}
	for _, n := range names {
		alg, ok := ByName(n)
		if !ok {
			t.Errorf("ByName(%q) failed", n)
			continue
		}
		if alg.Name() == "" {
			t.Errorf("%q has empty display name", n)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("unknown name accepted")
	}
	if len(All()) < 5 {
		t.Error("All() missing algorithms")
	}
}

func TestSpliceHalves(t *testing.T) {
	f := dna.Strand("AAAAAAAAAA")
	b := dna.Strand("CCCCCCCCCC")
	got := spliceHalves(f, b, 10)
	if got != "AAAAACCCCC" {
		t.Errorf("splice = %q", got)
	}
	// Overlong inputs are trimmed (forward keeps its head, backward its tail).
	got = spliceHalves("AAAAAAAAAAGG", "GGCCCCCCCCCC", 10)
	if got != "AAAAACCCCC" {
		t.Errorf("splice overlong = %q", got)
	}
	// Short inputs are padded.
	got = spliceHalves("AA", "CC", 6)
	if got.Len() != 6 {
		t.Errorf("splice short length = %d", got.Len())
	}
}

func TestVoteCountsWinner(t *testing.T) {
	var v voteCounts
	if _, ok := v.winner(); ok {
		t.Error("empty votes should have no winner")
	}
	v.add(dna.T)
	v.add(dna.T)
	v.add(dna.C)
	b, ok := v.winner()
	if !ok || b != dna.T {
		t.Errorf("winner = %v, %v", b, ok)
	}
	// Tie breaks toward alphabetically first.
	var tie voteCounts
	tie.add(dna.G)
	tie.add(dna.C)
	b, _ = tie.winner()
	if b != dna.C {
		t.Errorf("tie winner = %v, want C", b)
	}
}

func TestNamesAreDescriptive(t *testing.T) {
	for _, alg := range allAlgorithms() {
		if alg.Name() == "" {
			t.Error("empty algorithm name")
		}
	}
	if !strings.Contains(NewBMA().Name(), "w=3") {
		t.Errorf("BMA name should carry window: %q", NewBMA().Name())
	}
}

func BenchmarkBMACoverage6(b *testing.B) {
	refs := channel.RandomReferences(100, 110, 20)
	sim := channel.Simulator{Channel: channel.NewNaive("n", channel.EqualMix(0.06)), Coverage: channel.FixedCoverage(6)}
	ds := sim.Simulate("b", refs, 21)
	alg := NewBMA()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ds.Clusters[i%len(ds.Clusters)]
		alg.Reconstruct(c.Reads, c.Ref.Len())
	}
}

func BenchmarkIterativeCoverage6(b *testing.B) {
	refs := channel.RandomReferences(100, 110, 22)
	sim := channel.Simulator{Channel: channel.NewNaive("n", channel.EqualMix(0.06)), Coverage: channel.FixedCoverage(6)}
	ds := sim.Simulate("b", refs, 23)
	alg := NewIterative()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := ds.Clusters[i%len(ds.Clusters)]
		alg.Reconstruct(c.Reads, c.Ref.Len())
	}
}
