package recon

import (
	"dnastore/internal/align"
	"dnastore/internal/dna"
)

// DividerBMA implements the Divider BMA algorithm of Sabary et al. [21]:
// the cluster is divided by copy length relative to the design length L.
// Copies of length exactly L vote position-by-position directly (they are
// assumed to carry only substitutions); shorter and longer copies are first
// aligned to the interim consensus with an edit script, and vote only at
// the positions the alignment matches or substitutes.
//
// The division makes the algorithm brittle when few or no copies have
// length exactly L — precisely the Nanopore regime, where the paper's
// Table 2.1 measures it at 2.73% per-strand accuracy.
type DividerBMA struct{}

// NewDividerBMA returns the algorithm.
func NewDividerBMA() DividerBMA { return DividerBMA{} }

// Name implements Reconstructor.
func (DividerBMA) Name() string { return "DivBMA" }

// Reconstruct implements Reconstructor.
func (d DividerBMA) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	var exact, others []dna.Strand
	for _, c := range cluster {
		if c.Len() == length {
			exact = append(exact, c)
		} else {
			others = append(others, c)
		}
	}

	votes := make([]voteCounts, length)
	for _, c := range exact {
		for i := 0; i < length; i++ {
			votes[i].add(c.At(i))
		}
	}

	// Interim consensus from the exact-length class; if the class is empty
	// the algorithm has no anchor and degrades to a plain majority baseline
	// over raw positions — the source of its poor high-indel accuracy.
	interim := make([]byte, length)
	if len(exact) > 0 {
		for i := 0; i < length; i++ {
			b, _ := votes[i].winner()
			interim[i] = b.Byte()
		}
	} else {
		m := Majority{}.Reconstruct(cluster, length)
		return m
	}

	// Align the indel-carrying copies to the interim consensus; they vote
	// at matched and substituted positions only.
	for _, c := range others {
		ops := align.Script(string(interim), string(c), align.ScriptOptions{})
		for _, op := range ops {
			if op.Kind == align.Equal || op.Kind == align.Sub {
				votes[op.RefPos].add(dna.MustBase(op.ReadBase))
			}
		}
	}

	out := make([]byte, length)
	for i := 0; i < length; i++ {
		b, ok := votes[i].winner()
		if !ok {
			b = dna.A
		}
		out[i] = b.Byte()
	}
	return dna.Strand(out)
}
