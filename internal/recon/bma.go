package recon

import (
	"fmt"

	"dnastore/internal/dna"
)

// BMA is the Bitwise Majority Alignment algorithm with look-ahead, executed
// two-way as the paper describes (§3.2): a forward pass over the copies and
// a backward pass over the reversed copies, spliced at the middle. Errors
// therefore propagate *toward the middle* of the strand, producing the
// A-shaped post-reconstruction Hamming profile of Fig 3.4c.
type BMA struct {
	// Window is the look-ahead length used to classify a disagreeing copy's
	// error (default 3).
	Window int
	// OneWay disables the backward pass; the pure forward execution
	// propagates errors to the end of the strand like Iterative.
	OneWay bool
}

// NewBMA returns the two-way BMA Look-Ahead with the default window.
func NewBMA() BMA { return BMA{Window: 3} }

// NewOneWayBMA returns the forward-only variant.
func NewOneWayBMA() BMA { return BMA{Window: 3, OneWay: true} }

// Name implements Reconstructor.
func (b BMA) Name() string {
	if b.OneWay {
		return fmt.Sprintf("BMA-oneway(w=%d)", b.window())
	}
	return fmt.Sprintf("BMA(w=%d)", b.window())
}

func (b BMA) window() int {
	if b.Window <= 0 {
		return 3
	}
	return b.Window
}

// Reconstruct implements Reconstructor.
func (b BMA) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	forward := b.pass(cluster, length)
	if b.OneWay {
		return forward
	}
	backward := b.pass(reverseCluster(cluster), length).Reverse()
	return spliceHalves(forward, backward, length)
}

// hypothesis identifiers for look-ahead classification.
const (
	hypSub = iota
	hypDel
	hypIns
)

// classify scores the three error hypotheses for a copy whose symbol at
// offset p disagrees with the target window target[0]. target[k] is the
// expected symbol k positions ahead (-1 when unknown). The returned
// hypothesis maximises the number of window symbols explained; ties break
// toward the copy's length budget (surplus → insertion, deficit →
// deletion), then substitution.
func classify(c dna.Strand, p int, target []int8, surplus int) int {
	w := len(target) - 1
	score := func(start, tOff int) int {
		s := 0
		for k := 0; tOff+k <= w; k++ {
			t := target[tOff+k]
			if t < 0 {
				continue
			}
			if start+k < c.Len() && int8(c.At(start+k)) == t {
				s++
			}
		}
		return s
	}
	// Substitution: c[p] is a corrupted target[0]; c[p+1..] aligns with
	// target[1..].
	subScore := score(p+1, 1)
	// Deletion: the copy lacks target[0]; c[p..] aligns with target[1..].
	delScore := score(p, 1)
	// Insertion: c[p] is an extra symbol; c[p+1] should be target[0] and
	// c[p+2..] aligns with target[1..].
	insScore := -1
	if p+1 < c.Len() && target[0] >= 0 && int8(c.At(p+1)) == target[0] {
		insScore = 1 + score(p+2, 1)
	}
	best := subScore
	if delScore > best {
		best = delScore
	}
	if insScore > best {
		best = insScore
	}
	// Gather the winners, then tie-break.
	subWins := subScore == best
	delWins := delScore == best
	insWins := insScore == best
	switch {
	case insWins && surplus > 0:
		return hypIns
	case delWins && surplus < 0:
		return hypDel
	case subWins:
		return hypSub
	case delWins:
		return hypDel
	default:
		return hypIns
	}
}

// pass runs one forward BMA execution, emitting up to length symbols and
// stopping early if every copy is exhausted.
//
// Per output position the copies vote with the symbol under their pointer
// and the plurality symbol is emitted. A copy that voted differently is
// realigned by look-ahead: the expected window (the emitted symbol plus a
// columnwise-majority prediction of the next Window symbols from the
// *agreeing* copies) is compared against the copy under the substitution,
// deletion and insertion hypotheses, and the pointer advances per the best
// hypothesis (+1, +0, +2 respectively).
func (b BMA) pass(cluster []dna.Strand, length int) dna.Strand {
	ptr := make([]int, len(cluster))
	out := make([]byte, 0, length)
	w := b.window()
	target := make([]int8, w+1)
	futVotes := make([]voteCounts, w)
	for i := 0; i < length; i++ {
		var votes voteCounts
		for j, c := range cluster {
			if ptr[j] < c.Len() {
				votes.add(c.At(ptr[j]))
			}
		}
		maj, ok := votes.winner()
		if !ok {
			break // all copies exhausted: the tail is an erasure
		}
		out = append(out, maj.Byte())

		// Predict the next w symbols from copies agreeing at this position.
		for k := range futVotes {
			futVotes[k] = voteCounts{}
		}
		for j, c := range cluster {
			p := ptr[j]
			if p < c.Len() && c.At(p) == maj {
				for k := 1; k <= w && p+k < c.Len(); k++ {
					futVotes[k-1].add(c.At(p + k))
				}
			}
		}
		target[0] = int8(maj)
		for k := 0; k < w; k++ {
			if fb, fok := futVotes[k].winner(); fok {
				target[k+1] = int8(fb)
			} else {
				target[k+1] = -1
			}
		}

		needed := length - i // symbols still owed, including this one
		for j, c := range cluster {
			p := ptr[j]
			if p >= c.Len() {
				continue
			}
			if c.At(p) == maj {
				ptr[j] = p + 1
				continue
			}
			surplus := (c.Len() - p) - needed
			switch classify(c, p, target, surplus) {
			case hypIns:
				ptr[j] = p + 2
			case hypDel:
				// hold pointer
			default:
				ptr[j] = p + 1
			}
		}
	}
	return dna.Strand(out)
}
