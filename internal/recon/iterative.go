package recon

import (
	"dnastore/internal/align"
	"dnastore/internal/dna"
)

// Iterative is the iterative reconstruction of Sabary et al. [21]. It has
// two phases:
//
//  1. A strictly one-way corrective sweep: position by position from the
//     strand start, the copies vote, the plurality symbol is emitted, and
//     disagreeing copies are corrected *in place* (inserted symbols
//     removed, deleted symbols re-inserted, substitutions overwritten) so
//     they stay index-aligned. The sweep stops early once every copy is
//     exhausted, leaving a truncated estimate.
//  2. Iterative refinement: each original copy is realigned to the current
//     estimate with a maximum-likelihood edit script, the alignment columns
//     vote (keep/substitute/delete, plus insertion slots between columns),
//     and the estimate is rebuilt; repeat until fixpoint or PolishRounds.
//
// The sweep gives the algorithm the paper's observed signature — errors
// propagate linearly toward the strand end (Figs 3.4a/b), residual errors
// are deletion-dominant (§3.4.1), and accuracy is highly sensitive to
// terminal spatial skew (§3.3.2) — while the refinement phase supplies the
// accuracy edge over BMA that Tables 2.1–3.2 report.
type Iterative struct {
	// Window is the look-ahead used by the sweep (default 3).
	Window int
	// PolishRounds bounds the refinement iterations: 0 means the default
	// (2); negative disables refinement entirely (pure one-way sweep).
	PolishRounds int
}

// NewIterative returns the Iterative algorithm with default parameters.
func NewIterative() Iterative { return Iterative{Window: 3} }

// NewSweepOnlyIterative returns the pure one-way sweep without refinement,
// used by the ablation benchmarks.
func NewSweepOnlyIterative() Iterative { return Iterative{Window: 3, PolishRounds: -1} }

// Name implements Reconstructor.
func (it Iterative) Name() string {
	if it.PolishRounds < 0 {
		return "Iterative-sweep"
	}
	return "Iterative"
}

func (it Iterative) window() int {
	if it.Window <= 0 {
		return 3
	}
	return it.Window
}

func (it Iterative) rounds() int {
	switch {
	case it.PolishRounds < 0:
		return 0
	case it.PolishRounds == 0:
		return 2
	default:
		return it.PolishRounds
	}
}

// Reconstruct implements Reconstructor.
func (it Iterative) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	est := it.forward(cluster, length)
	for r := 0; r < it.rounds(); r++ {
		next := polish(cluster, est)
		if next == est {
			break
		}
		est = next
	}
	return est
}

// forward performs the one-way corrective sweep and returns the estimate.
func (it Iterative) forward(cluster []dna.Strand, length int) dna.Strand {
	copies := make([][]byte, len(cluster))
	for j, c := range cluster {
		copies[j] = []byte(string(c))
	}
	w := it.window()
	target := make([]int8, w+1)
	futVotes := make([]voteCounts, w)
	out := make([]byte, 0, length)
	for i := 0; i < length; i++ {
		var votes voteCounts
		for _, c := range copies {
			if i < len(c) {
				votes.add(dna.MustBase(c[i]))
			}
		}
		maj, ok := votes.winner()
		if !ok {
			break // every copy exhausted: the tail was deleted everywhere
		}
		mb := maj.Byte()
		out = append(out, mb)

		// Future prediction from the copies agreeing at this position.
		for k := range futVotes {
			futVotes[k] = voteCounts{}
		}
		for _, c := range copies {
			if i < len(c) && c[i] == mb {
				for k := 1; k <= w && i+k < len(c); k++ {
					futVotes[k-1].add(dna.MustBase(c[i+k]))
				}
			}
		}
		target[0] = int8(maj)
		for k := 0; k < w; k++ {
			if fb, fok := futVotes[k].winner(); fok {
				target[k+1] = int8(fb)
			} else {
				target[k+1] = -1
			}
		}

		for j := range copies {
			c := copies[j]
			if i >= len(c) || c[i] == mb {
				continue
			}
			surplus := len(c) - length
			switch classify(dna.Strand(c), i, target, surplus) {
			case hypIns:
				// Remove the inserted symbol; the matching one slides in.
				copies[j] = append(c[:i], c[i+1:]...)
			case hypDel:
				// Re-insert the plurality symbol at this position.
				c = append(c, 0)
				copy(c[i+1:], c[i:len(c)-1])
				c[i] = mb
				copies[j] = c
			default:
				// Substitution: overwrite in place.
				c[i] = mb
			}
		}
	}
	return dna.Strand(out)
}

// polish realigns every copy to the estimate and rebuilds it from the
// alignment columns: a column is dropped when a majority of copies delete
// it, its symbol is the plurality of the aligned read symbols otherwise,
// and a gap between columns gains the plurality inserted subsequence when a
// majority of copies insert there. Whole inserted subsequences are voted as
// units so a truncated estimate recovers its missing tail in one round.
func polish(cluster []dna.Strand, est dna.Strand) dna.Strand {
	return polishWeighted(cluster, est, nil)
}

// polishWeighted is polish with per-copy reliability weights (nil means
// every copy weighs 1): all column votes and majority thresholds are
// weight sums, so a down-weighted contaminant cannot overturn columns.
func polishWeighted(cluster []dna.Strand, est dna.Strand, weights []float64) dna.Strand {
	n := est.Len()
	if n == 0 {
		return est
	}
	keep := make([]weightedVotes, n)
	del := make([]float64, n)
	var insSeq []map[string]float64 // lazily allocated: votes per inserted subsequence
	insCount := make([]float64, n+1)
	addIns := func(pos int, seq string, w float64) {
		if insSeq == nil {
			insSeq = make([]map[string]float64, n+1)
		}
		if insSeq[pos] == nil {
			insSeq[pos] = make(map[string]float64)
		}
		insSeq[pos][seq] += w
		insCount[pos] += w
	}
	totalW := 0.0
	for ci, c := range cluster {
		w := 1.0
		if weights != nil {
			w = weights[ci]
		}
		totalW += w
		ops := align.Script(string(est), string(c), align.ScriptOptions{})
		// Coalesce consecutive insertions at the same reference position
		// into one subsequence vote.
		pendingPos := -1
		var pending []byte
		flush := func() {
			if pendingPos >= 0 {
				addIns(pendingPos, string(pending), w)
				pendingPos = -1
				pending = pending[:0]
			}
		}
		for _, op := range ops {
			switch op.Kind {
			case align.Ins:
				if pendingPos != op.RefPos {
					flush()
					pendingPos = op.RefPos
				}
				pending = append(pending, op.ReadBase)
			case align.Equal, align.Sub:
				flush()
				keep[op.RefPos].add(dna.MustBase(op.ReadBase), w)
			case align.Del:
				flush()
				del[op.RefPos] += w
			}
		}
		flush()
	}
	out := make([]byte, 0, n+8)
	for i := 0; i <= n; i++ {
		if insCount[i]*2 > totalW && insSeq != nil && insSeq[i] != nil {
			// Majority of copy weight inserts here: take the plurality
			// sequence.
			best, bestW := "", 0.0
			for seq, sw := range insSeq[i] {
				if sw > bestW || (sw == bestW && seq < best) {
					best, bestW = seq, sw
				}
			}
			out = append(out, best...)
		}
		if i == n {
			break
		}
		if del[i]*2 > totalW {
			continue // majority weight deletes this column
		}
		b, ok := keep[i].winner()
		if !ok {
			b = est.At(i)
		}
		out = append(out, b.Byte())
	}
	return dna.Strand(out)
}

// TwoWayIterative is the paper's §4.3 proposed improvement: the Iterative
// sweep runs forward over the cluster and backward over the reversed
// cluster, the two estimates are joined at an *agreement anchor* — a k-mer
// near the middle on which both passes agree at the same offset, falling
// back to the forward estimate when none exists — and the joined estimate
// is refined exactly as Iterative refines. The anchor avoids the splice-
// junction artifacts that plain mid-point concatenation (BMA-style)
// introduces.
type TwoWayIterative struct {
	// Window is the sweep look-ahead (default 3).
	Window int
	// PolishRounds is as for Iterative.
	PolishRounds int
	// AnchorK is the agreement k-mer length (default 8).
	AnchorK int
	// PlainSplice switches to BMA-style fixed mid-point concatenation, for
	// the splice-rule ablation.
	PlainSplice bool
}

// NewTwoWayIterative returns the two-way variant with default parameters.
func NewTwoWayIterative() TwoWayIterative { return TwoWayIterative{Window: 3} }

// Name implements Reconstructor.
func (tw TwoWayIterative) Name() string {
	if tw.PlainSplice {
		return "Iterative-2way-plain"
	}
	return "Iterative-2way"
}

// Reconstruct implements Reconstructor.
func (tw TwoWayIterative) Reconstruct(cluster []dna.Strand, length int) dna.Strand {
	if len(cluster) == 0 || length <= 0 {
		return ""
	}
	it := Iterative{Window: tw.Window, PolishRounds: tw.PolishRounds}
	forward := it.forward(cluster, length)
	backward := it.forward(reverseCluster(cluster), length).Reverse()
	// Renormalise the backward estimate into the forward frame: a truncated
	// backward pass is missing symbols at the strand *start*.
	for backward.Len() < length {
		backward = "A" + backward
	}
	if backward.Len() > length {
		backward = backward[backward.Len()-length:]
	}
	var est dna.Strand
	if tw.PlainSplice {
		est = spliceHalves(forward, backward, length)
	} else {
		est = anchoredSplice(forward, backward, length, tw.anchorK())
	}
	for r := 0; r < it.rounds(); r++ {
		next := polish(cluster, est)
		if next == est {
			break
		}
		est = next
	}
	return est
}

func (tw TwoWayIterative) anchorK() int {
	if tw.AnchorK <= 0 {
		return 8
	}
	return tw.AnchorK
}

// anchoredSplice joins the forward and backward estimates at the position
// closest to the middle where both place the same k-mer, preferring the
// smallest displacement from the midpoint. When the estimates never agree,
// the forward estimate is returned unchanged.
func anchoredSplice(f, b dna.Strand, length, k int) dna.Strand {
	mid := length / 2
	for delta := 0; delta <= length/4; delta++ {
		for _, pos := range []int{mid - delta, mid + delta} {
			if pos < 0 || pos+k > length {
				continue
			}
			if pos+k <= f.Len() && pos+k <= b.Len() && f[pos:pos+k] == b[pos:pos+k] {
				return f[:pos] + b[pos:]
			}
			if delta == 0 {
				break // mid-delta and mid+delta coincide
			}
		}
	}
	return f
}
