// Package dist models the spatial distribution of errors within a DNA
// strand — the paper's key insight (§3.3.2) is that this shape, not just the
// aggregate error rate, determines trace-reconstruction accuracy.
//
// A Spatial describes the relative error intensity at each position of a
// strand. Given a strand length and a target aggregate (mean per-base) error
// rate, it produces a per-position rate vector whose mean equals the target
// and whose shape follows the distribution: uniform, A-shaped (triangular
// peak in the middle), V-shaped (inverted), terminal-skewed (the Nanopore
// profile of Fig. 3.2b), or an arbitrary empirical histogram learned from
// data.
package dist

import (
	"fmt"
	"math"
)

// Spatial describes how a given aggregate error rate is spread across the
// positions of a strand.
type Spatial interface {
	// Rates returns a length-long vector of per-position error rates whose
	// arithmetic mean equals rate (up to clamping to [0, maxRate]). It
	// panics if length <= 0 or rate < 0.
	Rates(length int, rate float64) []float64
	// Name returns a short identifier used in tables and CLIs.
	Name() string
}

// maxRate caps any single position's error rate. A per-base rate at or above
// 1 would make every base erroneous, which no physical channel exhibits.
const maxRate = 0.95

// shapeRates converts a vector of non-negative relative weights into rates
// with the requested mean. Clamping at maxRate redistributes the excess mass
// onto unclamped positions so the aggregate stays at the target whenever
// target <= maxRate.
func shapeRates(weights []float64, rate float64) []float64 {
	n := len(weights)
	rates := make([]float64, n)
	if rate == 0 {
		return rates
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if total <= 0 {
		// Degenerate weights: fall back to uniform.
		for i := range rates {
			rates[i] = math.Min(rate, maxRate)
		}
		return rates
	}
	// Target total mass across all positions.
	remaining := rate * float64(n)
	clamped := make([]bool, n)
	// Phase 1: iteratively scale unclamped positions proportionally to their
	// weights; positions that would exceed maxRate are pinned there and
	// their shortfall is spread over the rest.
	for iter := 0; iter < n; iter++ {
		freeWeight := 0.0
		for i, w := range weights {
			if !clamped[i] {
				freeWeight += w
			}
		}
		if freeWeight <= 0 {
			break
		}
		scale := remaining / freeWeight
		over := false
		for i, w := range weights {
			if clamped[i] {
				continue
			}
			r := w * scale
			if r > maxRate {
				rates[i] = maxRate
				clamped[i] = true
				remaining -= maxRate
				over = true
			} else {
				rates[i] = r
			}
		}
		if !over {
			return rates
		}
	}
	// Phase 2: zero-weight positions left no room for the residual mass
	// (e.g. a V-shape at very high aggregate rates). Spread the residual
	// uniformly over every position still below maxRate; the shape flattens
	// slightly but the aggregate error rate — which the experiments control
	// for — is preserved.
	for iter := 0; iter < n; iter++ {
		deficit := 0.0
		for _, r := range rates {
			deficit += r
		}
		deficit = rate*float64(n) - deficit
		if deficit <= 1e-12 {
			break
		}
		free := 0
		for _, r := range rates {
			if r < maxRate {
				free++
			}
		}
		if free == 0 {
			break // target above maxRate everywhere; physically impossible
		}
		add := deficit / float64(free)
		for i, r := range rates {
			if r < maxRate {
				rates[i] = math.Min(r+add, maxRate)
			}
		}
	}
	return rates
}

// Uniform spreads errors evenly across all positions — the assumption made
// by both Heckel et al. and DNASimulator that the paper shows to be wrong
// for Nanopore data.
type Uniform struct{}

// Name implements Spatial.
func (Uniform) Name() string { return "uniform" }

// Rates implements Spatial.
func (Uniform) Rates(length int, rate float64) []float64 {
	checkArgs(length, rate)
	weights := make([]float64, length)
	for i := range weights {
		weights[i] = 1
	}
	return shapeRates(weights, rate)
}

// TriangularA is the A-shaped distribution of §3.4.2: error rates rise
// linearly from ~0 at both strand ends to a peak of 2×rate at the middle
// (the paper's triangular distribution with a=0, b=0.30 for mean 0.15).
type TriangularA struct{}

// Name implements Spatial.
func (TriangularA) Name() string { return "a-shape" }

// Rates implements Spatial.
func (TriangularA) Rates(length int, rate float64) []float64 {
	checkArgs(length, rate)
	return shapeRates(triangleWeights(length, false), rate)
}

// TriangularV is the V-shaped (inverted triangular) distribution of §3.4.2:
// peak error rates at both strand ends, ~0 in the middle.
type TriangularV struct{}

// Name implements Spatial.
func (TriangularV) Name() string { return "v-shape" }

// Rates implements Spatial.
func (TriangularV) Rates(length int, rate float64) []float64 {
	checkArgs(length, rate)
	return shapeRates(triangleWeights(length, true), rate)
}

// triangleWeights returns the density 2·(1−|2x−1|) of a symmetric triangle
// over relative positions x (or its inversion), sampled at position centres.
func triangleWeights(length int, inverted bool) []float64 {
	w := make([]float64, length)
	for i := range w {
		x := (float64(i) + 0.5) / float64(length)
		tri := 1 - math.Abs(2*x-1) // 0 at edges, 1 at centre
		if inverted {
			w[i] = 1 - tri
		} else {
			w[i] = tri
		}
	}
	return w
}

// TerminalSkew is the empirical Nanopore shape of Fig. 3.2b: a small number
// of positions at each end of the strand carry boosted error rates, with the
// end of the strand roughly twice as error-prone as the beginning; interior
// positions are uniform.
type TerminalSkew struct {
	// StartPositions is how many positions at the strand start are boosted
	// (the paper observes 2: positions 0 and 1).
	StartPositions int
	// EndPositions is how many positions at the strand end are boosted
	// (the paper observes 1: the final position).
	EndPositions int
	// StartBoost is the weight multiplier at boosted start positions
	// relative to interior positions.
	StartBoost float64
	// EndBoost is the weight multiplier at boosted end positions; the paper
	// observes roughly 2× the start boost.
	EndBoost float64
}

// NanoporeSkew returns the terminal skew observed on the Nanopore dataset:
// the first two and the last position elevated, with the end twice the
// start (Fig. 3.2b).
func NanoporeSkew() TerminalSkew {
	return TerminalSkew{StartPositions: 2, EndPositions: 1, StartBoost: 6, EndBoost: 12}
}

// Name implements Spatial.
func (s TerminalSkew) Name() string { return "terminal-skew" }

// Rates implements Spatial.
func (s TerminalSkew) Rates(length int, rate float64) []float64 {
	checkArgs(length, rate)
	start, end := s.StartPositions, s.EndPositions
	if start < 0 {
		start = 0
	}
	if end < 0 {
		end = 0
	}
	if start+end > length {
		// Tiny strands: split proportionally.
		start = length / 2
		end = length - start
	}
	sb, eb := s.StartBoost, s.EndBoost
	if sb < 1 {
		sb = 1
	}
	if eb < 1 {
		eb = 1
	}
	w := make([]float64, length)
	for i := range w {
		switch {
		case i < start:
			w[i] = sb
		case i >= length-end:
			w[i] = eb
		default:
			w[i] = 1
		}
	}
	return shapeRates(w, rate)
}

// Empirical wraps an arbitrary per-position weight histogram, typically
// learned from real data by internal/profile. When applied to a strand of a
// different length than the histogram, weights are resampled by linear
// interpolation over relative position.
type Empirical struct {
	// Weights holds relative error intensities; they need not be normalised.
	Weights []float64
	// Label names the source of the histogram in tables.
	Label string
}

// Name implements Spatial.
func (e Empirical) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "empirical"
}

// Rates implements Spatial.
func (e Empirical) Rates(length int, rate float64) []float64 {
	checkArgs(length, rate)
	if len(e.Weights) == 0 {
		return Uniform{}.Rates(length, rate)
	}
	w := resample(e.Weights, length)
	return shapeRates(w, rate)
}

// resample maps src onto n points. Upsampling (n > len(src)) interpolates
// linearly over relative position. Downsampling (n < len(src)) uses
// area-weighted binning: each output bin averages the source density over
// the exact sub-interval it covers, so the histogram's mass is conserved
// (mean(out) == mean(src) up to rounding) and narrow spikes — like the
// terminal-position boost of Fig 3.2b — are attenuated proportionally
// instead of being aliased away by point sampling at bin centres.
func resample(src []float64, n int) []float64 {
	if len(src) == n {
		out := make([]float64, n)
		copy(out, src)
		return out
	}
	out := make([]float64, n)
	if len(src) == 1 {
		for i := range out {
			out[i] = src[0]
		}
		return out
	}
	if n < len(src) {
		return downsampleArea(src, n)
	}
	for i := range out {
		// Relative position of the centre of output bin i, mapped onto the
		// source index space.
		x := (float64(i) + 0.5) / float64(n) * float64(len(src)-1)
		lo := int(math.Floor(x))
		if lo >= len(src)-1 {
			lo = len(src) - 2
		}
		frac := x - float64(lo)
		out[i] = src[lo]*(1-frac) + src[lo+1]*frac
	}
	return out
}

// downsampleArea shrinks src to n bins by averaging the piecewise-constant
// source density over each output bin's interval. Output bin i covers the
// source-index range [i·S/n, (i+1)·S/n) for S = len(src); every source bin
// contributes to the overlapping output bins in proportion to the overlap
// length, so total mass is conserved exactly.
func downsampleArea(src []float64, n int) []float64 {
	out := make([]float64, n)
	ratio := float64(len(src)) / float64(n) // > 1 source bins per output bin
	for i := range out {
		lo := float64(i) * ratio
		hi := float64(i+1) * ratio
		jLo := int(lo)
		jHi := int(math.Ceil(hi))
		if jHi > len(src) {
			jHi = len(src)
		}
		mass := 0.0
		for j := jLo; j < jHi; j++ {
			l := math.Max(lo, float64(j))
			h := math.Min(hi, float64(j+1))
			if h > l {
				mass += src[j] * (h - l)
			}
		}
		out[i] = mass / ratio
	}
	return out
}

func checkArgs(length int, rate float64) {
	if length <= 0 {
		panic(fmt.Sprintf("dist: non-positive length %d", length))
	}
	if rate < 0 {
		panic(fmt.Sprintf("dist: negative rate %g", rate))
	}
}

// Mean returns the arithmetic mean of a rate vector; 0 for empty input.
func Mean(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rates {
		sum += r
	}
	return sum / float64(len(rates))
}

// ByName returns the built-in spatial distribution with the given name, for
// CLI flag parsing. Known names: uniform, a-shape, v-shape, terminal-skew.
func ByName(name string) (Spatial, error) {
	switch name {
	case "uniform":
		return Uniform{}, nil
	case "a-shape":
		return TriangularA{}, nil
	case "v-shape":
		return TriangularV{}, nil
	case "terminal-skew":
		return NanoporeSkew(), nil
	default:
		return nil, fmt.Errorf("dist: unknown spatial distribution %q", name)
	}
}
