package dist

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-9

func meanOK(t *testing.T, name string, rates []float64, want float64) {
	t.Helper()
	got := Mean(rates)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("%s: mean = %v, want %v", name, got, want)
	}
}

func ratesInRange(t *testing.T, name string, rates []float64) {
	t.Helper()
	for i, r := range rates {
		if r < 0 || r > maxRate+eps {
			t.Errorf("%s: rate[%d] = %v out of [0, %v]", name, i, r, maxRate)
		}
	}
}

func TestUniformRates(t *testing.T) {
	rates := Uniform{}.Rates(110, 0.059)
	meanOK(t, "uniform", rates, 0.059)
	ratesInRange(t, "uniform", rates)
	for i := 1; i < len(rates); i++ {
		if rates[i] != rates[0] {
			t.Fatalf("uniform rates differ at %d", i)
		}
	}
}

func TestTriangularAShape(t *testing.T) {
	rates := TriangularA{}.Rates(110, 0.15)
	meanOK(t, "a-shape", rates, 0.15)
	ratesInRange(t, "a-shape", rates)
	mid := rates[55]
	if mid <= rates[0] || mid <= rates[109] {
		t.Errorf("a-shape: middle (%v) not above ends (%v, %v)", mid, rates[0], rates[109])
	}
	// Peak should be near 2x the mean (paper: b = 0.30 for mean 0.15).
	if math.Abs(mid-0.30) > 0.02 {
		t.Errorf("a-shape peak = %v, want ~0.30", mid)
	}
	// Monotone rise to the middle.
	for i := 1; i <= 54; i++ {
		if rates[i] < rates[i-1]-eps {
			t.Errorf("a-shape not monotone rising at %d", i)
		}
	}
}

func TestTriangularVShape(t *testing.T) {
	rates := TriangularV{}.Rates(110, 0.15)
	meanOK(t, "v-shape", rates, 0.15)
	ratesInRange(t, "v-shape", rates)
	mid := rates[55]
	if mid >= rates[0] || mid >= rates[109] {
		t.Errorf("v-shape: middle (%v) not below ends (%v, %v)", mid, rates[0], rates[109])
	}
	if math.Abs(rates[0]-0.30) > 0.02 {
		t.Errorf("v-shape edge = %v, want ~0.30", rates[0])
	}
}

func TestAVShapesAreComplementary(t *testing.T) {
	a := TriangularA{}.Rates(100, 0.1)
	v := TriangularV{}.Rates(100, 0.1)
	for i := range a {
		if math.Abs((a[i]+v[i])-0.2) > 1e-9 {
			t.Fatalf("a+v at %d = %v, want 0.2", i, a[i]+v[i])
		}
	}
}

func TestTerminalSkew(t *testing.T) {
	s := NanoporeSkew()
	rates := s.Rates(110, 0.059)
	meanOK(t, "terminal-skew", rates, 0.059)
	ratesInRange(t, "terminal-skew", rates)
	interior := rates[50]
	if rates[0] <= interior || rates[1] <= interior {
		t.Error("start positions not boosted")
	}
	if rates[109] <= interior {
		t.Error("end position not boosted")
	}
	// End ~2x start (paper's Fig 3.2b observation).
	ratio := rates[109] / rates[0]
	if math.Abs(ratio-2) > 0.01 {
		t.Errorf("end/start boost ratio = %v, want ~2", ratio)
	}
	if rates[2] != interior {
		t.Errorf("position 2 should be interior, got %v vs %v", rates[2], interior)
	}
}

func TestTerminalSkewTinyStrand(t *testing.T) {
	s := NanoporeSkew()
	rates := s.Rates(2, 0.1)
	meanOK(t, "terminal-skew tiny", rates, 0.1)
	ratesInRange(t, "terminal-skew tiny", rates)
}

func TestEmpiricalExactLength(t *testing.T) {
	e := Empirical{Weights: []float64{1, 2, 3, 4}}
	rates := e.Rates(4, 0.1)
	meanOK(t, "empirical", rates, 0.1)
	// shape preserved: proportional to weights
	for i := 1; i < 4; i++ {
		ratio := rates[i] / rates[0]
		if math.Abs(ratio-float64(i+1)) > 1e-9 {
			t.Errorf("empirical shape distorted at %d: ratio %v", i, ratio)
		}
	}
}

func TestEmpiricalResample(t *testing.T) {
	e := Empirical{Weights: []float64{1, 1, 10, 1, 1}}
	rates := e.Rates(50, 0.05)
	meanOK(t, "empirical resampled", rates, 0.05)
	// Peak should be near the middle.
	peak := 0
	for i, r := range rates {
		if r > rates[peak] {
			peak = i
		}
	}
	if peak < 20 || peak > 30 {
		t.Errorf("resampled peak at %d, want near 25", peak)
	}
}

func TestEmpiricalEmptyFallsBackToUniform(t *testing.T) {
	rates := Empirical{}.Rates(10, 0.1)
	meanOK(t, "empirical empty", rates, 0.1)
	for i := 1; i < len(rates); i++ {
		if rates[i] != rates[0] {
			t.Fatal("empty empirical should be uniform")
		}
	}
}

func TestEmpiricalSingleWeight(t *testing.T) {
	rates := Empirical{Weights: []float64{3}}.Rates(7, 0.2)
	meanOK(t, "empirical single", rates, 0.2)
}

func TestClampingPreservesMean(t *testing.T) {
	// Extreme skew at high rate forces clamping; aggregate must hold as long
	// as target <= maxRate.
	e := Empirical{Weights: []float64{100, 1, 1, 1}}
	rates := e.Rates(4, 0.5)
	meanOK(t, "clamped", rates, 0.5)
	ratesInRange(t, "clamped", rates)
	if rates[0] != maxRate {
		t.Errorf("dominant position should clamp to %v, got %v", maxRate, rates[0])
	}
}

func TestZeroRate(t *testing.T) {
	for _, s := range []Spatial{Uniform{}, TriangularA{}, TriangularV{}, NanoporeSkew()} {
		rates := s.Rates(20, 0)
		for i, r := range rates {
			if r != 0 {
				t.Errorf("%s: rate[%d] = %v at zero aggregate", s.Name(), i, r)
			}
		}
	}
}

func TestMeanInvariantQuick(t *testing.T) {
	f := func(lenRaw uint8, rateRaw uint16) bool {
		length := int(lenRaw%200) + 1
		rate := float64(rateRaw%900) / 1000 // [0, 0.9)
		for _, s := range []Spatial{Uniform{}, TriangularA{}, TriangularV{}, NanoporeSkew()} {
			rates := s.Rates(length, rate)
			if len(rates) != length {
				return false
			}
			if math.Abs(Mean(rates)-rate) > 1e-6 {
				return false
			}
			for _, r := range rates {
				if r < 0 || r > maxRate+eps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "a-shape", "v-shape", "terminal-skew"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero length", func() { Uniform{}.Rates(0, 0.1) })
	mustPanic("negative rate", func() { Uniform{}.Rates(5, -0.1) })
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean([1,2,3]) != 2")
	}
}

// --- downsampling (area-weighted) ---

// TestResampleDownMassConservation: downsampling must conserve the
// histogram's mass — mean(out) == mean(src) — for arbitrary shapes and
// arbitrary output sizes. The old centre-point sampling violated this
// whenever a narrow spike fell between output bin centres.
func TestResampleDownMassConservation(t *testing.T) {
	cases := []struct {
		name string
		src  []float64
		n    int
	}{
		{"smooth", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 4},
		{"terminal-spike", append(make([]float64, 99), 50), 10},
		{"leading-spike", append([]float64{50}, make([]float64, 99)...), 7},
		{"interior-spike", func() []float64 {
			w := make([]float64, 200)
			for i := range w {
				w[i] = 1
			}
			w[137] = 300
			return w
		}(), 33},
		{"non-divisible", []float64{1, 0, 0, 0, 0, 0, 9}, 3},
	}
	for _, tc := range cases {
		out := resample(tc.src, tc.n)
		if len(out) != tc.n {
			t.Fatalf("%s: len = %d, want %d", tc.name, len(out), tc.n)
		}
		if got, want := Mean(out), Mean(tc.src); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("%s: mean(out) = %v, want mean(src) = %v", tc.name, got, want)
		}
	}
}

// TestResampleDownTerminalSpikeSurvives pins the Fig 3.2b failure mode: a
// single boosted terminal bin must keep its boost (attenuated by the bin
// ratio, not erased) after downsampling.
func TestResampleDownTerminalSpikeSurvives(t *testing.T) {
	src := make([]float64, 100)
	for i := range src {
		src[i] = 1
	}
	src[99] = 101 // terminal spike carrying 50% extra mass
	out := resample(src, 10)
	last := out[len(out)-1]
	// The last output bin averages 10 source bins: (9·1 + 101)/10 = 11.
	if math.Abs(last-11) > 1e-9 {
		t.Errorf("terminal bin = %v, want 11 (spike aliased away?)", last)
	}
	for i := 0; i < len(out)-1; i++ {
		if math.Abs(out[i]-1) > 1e-9 {
			t.Errorf("interior bin %d = %v, want 1", i, out[i])
		}
	}
}

// TestResampleDownMassConservationQuick fuzzes shapes and sizes.
func TestResampleDownMassConservationQuick(t *testing.T) {
	f := func(raw []byte, nRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		src := make([]float64, len(raw))
		for i, b := range raw {
			src[i] = float64(b)
		}
		n := 1 + int(nRaw)%len(src)
		out := resample(src, n)
		return math.Abs(Mean(out)-Mean(src)) <= 1e-9*math.Max(1, Mean(src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
