package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/faults"
	"dnastore/internal/rng"
	"dnastore/internal/store"
)

// Chaos drills: the fault-injection subsystem wired into a running server.
// Each drill injects a failure mode from the acceptance list — transient
// cluster panics, overload, pool-file rot, a drain mid-simulation — and
// asserts both that the server survives and that the output of every job
// that completes is byte-identical to an undisturbed sequential run.

// scrapeMetric fetches GET /metrics through the server's own HTTP handler
// and returns the value of one series — the same path an operator's
// Prometheus scrape takes, so the drills verify the exposition end to end.
func scrapeMetric(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("series %s has unparseable value %q", series, rest)
			}
			return v
		}
	}
	t.Fatalf("series %s not found in /metrics:\n%s", series, body)
	return 0
}

// TestChaosFlakyPanicRetriesConverge: the first few Transmit calls panic.
// SimulateCtx confines each panic to its cluster, the supervisor retries
// the attempt, and the retry — the fault budget spent — must reproduce the
// undisturbed output exactly, because the injector never consumed RNG.
func TestChaosFlakyPanicRetriesConverge(t *testing.T) {
	var budget atomic.Int64
	budget.Store(3)
	s := testServer(t, Config{
		Workers: 2,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.FlakyPanic{Base: ch, Remaining: &budget}, cov
		},
	})

	spec := simSpec(21)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, j, 15*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %v (%s), want done", st.State, st.Error)
	}
	if st.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥2: the panicking attempt must have been retried", st.Attempts)
	}
	got, _ := j.Result()
	if want := sequentialResult(t, spec.Simulate); !bytes.Equal(got, want) {
		t.Error("post-panic retry output differs from sequential run")
	}
}

// TestChaosOverloadShedsWithRetryAfter: with one slow worker and a
// two-slot queue, a burst of submissions is shed with 503 + Retry-After
// while every admitted job still completes — the first one byte-identically.
func TestChaosOverloadShedsWithRetryAfter(t *testing.T) {
	s := testServer(t, Config{
		Workers:       1,
		QueueCapacity: 2,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.SlowChannel{Base: ch, Delay: 8 * time.Millisecond}, cov
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	resp, first := postJob(t, ts, simSpec(31))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	running, _ := s.Job(first.ID)
	waitFor(t, 5*time.Second, func() bool { return running.State() == StateRunning })

	// The worker is busy; two more fill the queue, the fourth is shed.
	var admitted []string
	for i := 0; i < 2; i++ {
		resp, st := postJob(t, ts, simSpec(uint64(32+i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued submit %d = %d", i, resp.StatusCode)
		}
		admitted = append(admitted, st.ID)
	}
	resp, _ = postJob(t, ts, simSpec(99))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Error("shed response missing Retry-After")
	} else if sec, err := strconv.Atoi(ra); err != nil || sec < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1 (err=%v)", ra, err)
	}

	// The shed is visible on /metrics, scraped through the same handler.
	if got := scrapeMetric(t, ts, `dnasimd_jobs_shed_total{reason="queue_full"}`); got != 1 {
		t.Errorf(`shed counter = %v, want 1 (one overflow submission)`, got)
	}
	if got := scrapeMetric(t, ts, "dnasimd_jobs_submitted_total"); got != 3 {
		t.Errorf("submitted counter = %v, want 3", got)
	}

	// Every admitted job completes despite the overload...
	for _, id := range append([]string{first.ID}, admitted...) {
		j, _ := s.Job(id)
		if st := awaitTerminal(t, j, 30*time.Second); st.State != StateDone {
			t.Errorf("job %s = %v (%s)", id, st.State, st.Error)
		}
	}
	// ...and the first one byte-identically to a sequential run.
	got, _ := running.Result()
	if want := sequentialResult(t, simSpec(31).Simulate); !bytes.Equal(got, want) {
		t.Error("overloaded job output differs from sequential run")
	}
	if done := scrapeMetric(t, ts, `dnasimd_jobs_finished_total{outcome="done"}`); done != 3 {
		t.Errorf("finished{done} = %v, want 3", done)
	}
}

// TestChaosBreakerTripsAndRecovers: a rotten pool file makes consecutive
// loads fail, tripping the I/O breaker; subsequent jobs fail fast without
// touching disk; once the file is restored and the cooldown passes, the
// half-open probe recovers and retrieval succeeds end to end.
func TestChaosBreakerTripsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	poolPath := filepath.Join(dir, "pool.dnas")
	payload := []byte("the quick brown fox jumps over the lazy dog")
	pool := store.New(store.Options{Seed: 5})
	if err := pool.Store("k", payload); err != nil {
		t.Fatal(err)
	}
	// Rot first: the file exists but is garbage, so every load fails.
	if err := os.WriteFile(poolPath, []byte("DNAPOOLv1 but bit-rotted beyond parity"), 0o644); err != nil {
		t.Fatal(err)
	}

	cooldown := 400 * time.Millisecond
	s := testServer(t, Config{
		Workers:          1,
		MaxAttempts:      1, // isolate breaker behaviour from retry behaviour
		BreakerThreshold: 2,
		BreakerCooldown:  cooldown,
	})
	retrieve := func(seed uint64) JobSpec {
		return JobSpec{Kind: KindRetrieve, Retrieve: &RetrieveSpec{
			PoolPath: poolPath, Key: "k",
			ErrorRate: 0.01, Coverage: 16, Seed: seed, Retries: 4, Backoff: 1.5,
		}}
	}

	// Two consecutive load failures trip the breaker...
	for i := uint64(0); i < 2; i++ {
		j, err := s.Submit(retrieve(i))
		if err != nil {
			t.Fatal(err)
		}
		st := awaitTerminal(t, j, 10*time.Second)
		if st.State != StateFailed || !strings.Contains(st.Error, "load pool") {
			t.Fatalf("rotten load %d: %v (%s)", i, st.State, st.Error)
		}
	}
	if st := s.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v after consecutive load failures, want open", st)
	}

	// ...so the next job is shed by the breaker without touching the disk.
	j, err := s.Submit(retrieve(2))
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, j, 10*time.Second)
	if st.State != StateFailed || !strings.Contains(st.Error, "breaker open") {
		t.Fatalf("fast-fail job: %v (%s), want breaker-open failure", st.State, st.Error)
	}

	// Restore the file; after the cooldown the half-open probe succeeds and
	// the breaker closes.
	if err := pool.SaveFile(poolPath); err != nil {
		t.Fatal(err)
	}
	time.Sleep(cooldown + 100*time.Millisecond)
	good, err := s.Submit(retrieve(3))
	if err != nil {
		t.Fatal(err)
	}
	st = awaitTerminal(t, good, 60*time.Second)
	if st.State != StateDone {
		t.Fatalf("post-recovery retrieve = %v (%s), want done", st.State, st.Error)
	}
	if got, _ := good.Result(); !bytes.Equal(got, payload) {
		t.Errorf("recovered %q, want %q", got, payload)
	}
	if bst := s.breaker.State(); bst != BreakerClosed {
		t.Errorf("breaker = %v after successful probe, want closed", bst)
	}

	// The drill's exact transition history is on the metric surface: one
	// trip, one half-open probe admission, one close on probe success.
	snap := s.Registry().Snapshot()
	for series, want := range map[string]float64{
		`dnasimd_breaker_transitions_total{to="open"}`:      1,
		`dnasimd_breaker_transitions_total{to="half-open"}`: 1,
		`dnasimd_breaker_transitions_total{to="closed"}`:    1,
		"dnasimd_breaker_open":                              0,
	} {
		if got := snap[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// countingChannel counts Transmit calls without consuming RNG or touching
// output — evidence of how much work an attempt actually did.
type countingChannel struct {
	base  channel.Channel
	calls *atomic.Int64
}

func (c countingChannel) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	c.calls.Add(1)
	return c.base.Transmit(ref, r)
}
func (c countingChannel) Name() string { return c.base.Name() }

// TestChaosDrainCheckpointsAndResumesByteIdentical is the drain drill: a
// slow simulation is mid-flight when the server drains. The job must park
// as checkpointed with its journal on disk, readiness must flip and new
// submissions shed; a fresh server on the same data dir given the
// identical spec must resume from the journal (doing strictly less
// channel work than a full run) and produce byte-identical output.
func TestChaosDrainCheckpointsAndResumesByteIdentical(t *testing.T) {
	dataDir := t.TempDir()
	spec := simSpec(41)

	s1 := testServer(t, Config{
		Workers: 1,
		DataDir: dataDir,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.SlowChannel{Base: ch, Delay: 10 * time.Millisecond}, cov
		},
	})
	ts := httptest.NewServer(s1)
	defer ts.Close()

	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	j1, _ := s1.Job(st.ID)

	// Let a few clusters commit to the journal, then drain mid-flight.
	waitFor(t, 10*time.Second, func() bool { return j1.Snapshot().Progress.Completed >= 3 })
	s1.Drain()

	fin := awaitTerminal(t, j1, time.Second)
	if fin.State != StateCheckpointed {
		t.Fatalf("drained job = %v (%s), want checkpointed", fin.State, fin.Error)
	}
	if !fin.Resumable {
		t.Error("checkpointed job not marked resumable")
	}
	if fin.Progress.Completed == 0 || fin.Progress.Completed >= fin.Progress.Total {
		t.Errorf("drained mid-flight but progress = %+v", fin.Progress)
	}
	ckptPath := filepath.Join(dataDir, journalName(t, spec))
	if _, err := os.Stat(ckptPath); err != nil {
		t.Fatalf("journal missing after drain: %v", err)
	}

	// The drained server refuses new work but still answers status queries.
	if r, _ := http.Get(ts.URL + "/readyz"); r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz after drain = %d, want 503", r.StatusCode)
	}
	if resp, _ := postJob(t, ts, simSpec(42)); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after drain = %d, want 503", resp.StatusCode)
	} else if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain shed missing Retry-After")
	}
	if r, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID); r.StatusCode != http.StatusOK {
		t.Errorf("status query after drain = %d", r.StatusCode)
	}

	// A fresh server on the same data dir, handed the identical spec,
	// resumes the journal rather than restarting.
	var calls atomic.Int64
	s2 := testServer(t, Config{
		Workers: 1,
		DataDir: dataDir,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return countingChannel{base: ch, calls: &calls}, cov
		},
	})
	j2, err := s2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st2 := awaitTerminal(t, j2, 30*time.Second)
	if st2.State != StateDone {
		t.Fatalf("resumed job = %v (%s), want done", st2.State, st2.Error)
	}

	fullRun := spec.Simulate.NumRefs * int(spec.Simulate.Coverage)
	if n := calls.Load(); n == 0 || n >= int64(fullRun) {
		t.Errorf("resumed attempt made %d Transmit calls, want >0 and < %d (a full run): journal not used", n, fullRun)
	}
	got, _ := j2.Result()
	if want := sequentialResult(t, spec.Simulate); !bytes.Equal(got, want) {
		t.Error("drain/resume output differs from uninterrupted sequential run")
	}
	if _, err := os.Stat(ckptPath); !os.IsNotExist(err) {
		t.Errorf("journal not removed after completion: %v", err)
	}
}

// journalName mirrors the server's fingerprint-derived checkpoint name.
func journalName(t *testing.T, spec JobSpec) string {
	t.Helper()
	s := &Server{cfg: Config{DataDir: "x"}}
	path := s.jobCheckpointPath(&Job{Spec: spec})
	if path == "" {
		t.Fatal("spec has no checkpoint path")
	}
	return filepath.Base(path)
}

// TestChaosDrainCancelsQueuedJobs: queued-but-unstarted work has nothing
// to checkpoint; drain must cancel it promptly rather than strand it.
func TestChaosDrainCancelsQueuedJobs(t *testing.T) {
	release := make(chan struct{})
	var gate atomic.Int64
	gate.Store(1 << 30)
	s := testServer(t, Config{
		Workers:    1,
		KillGrace:  50 * time.Millisecond,
		DrainGrace: 500 * time.Millisecond,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.Stall{Base: ch, Release: release, Remaining: &gate}, cov
		},
	})
	defer close(release)

	running, err := s.Submit(simSpec(51))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return running.State() == StateRunning })
	queued, err := s.Submit(simSpec(52))
	if err != nil {
		t.Fatal(err)
	}

	s.Drain()
	if st := queued.State(); st != StateCanceled {
		t.Errorf("queued job after drain = %v, want canceled", st)
	}
	// The stalled running job has no journal (no data dir): after the
	// grace it is canceled, not left running.
	if st := awaitTerminal(t, running, 2*time.Second); st.State != StateCanceled {
		t.Errorf("stalled job after drain = %v (%s), want canceled", st.State, st.Error)
	}
	if ph := s.Phase(); ph != PhaseStopped {
		t.Errorf("phase after drain = %v, want stopped", ph)
	}
}
