package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/faults"
)

// postJobIdem submits a spec with an Idempotency-Key header.
func postJobIdem(t *testing.T, ts *httptest.Server, spec JobSpec, key string) (*http.Response, Status) {
	t.Helper()
	body, _ := json.Marshal(spec)
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(IdempotencyKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		json.NewDecoder(resp.Body).Decode(&st)
	}
	resp.Body.Close()
	return resp, st
}

// TestReadyzDrainRetryAfterAgreesWithShed: during drain both the readiness
// probe and the shed path must answer 503 with the same Retry-After hint —
// the remainder of the drain window — so a load balancer and a shed client
// act on one consistent story.
func TestReadyzDrainRetryAfterAgreesWithShed(t *testing.T) {
	release := make(chan struct{})
	var gate sync.Once
	s := testServer(t, Config{
		Workers:    1,
		DrainGrace: 20 * time.Second,
		KillGrace:  50 * time.Millisecond,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.SlowChannel{Base: ch, Delay: 5 * time.Millisecond}, cov
		},
	})
	defer gate.Do(func() { close(release) })
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Park a slow job so drain has something in flight, then start the
	// drain concurrently (Drain blocks until stopped).
	j, err := s.Submit(simSpec(61))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return j.State() == StateRunning })
	go s.Drain()
	waitFor(t, 5*time.Second, func() bool { return s.Phase() != PhaseServing })

	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", r.StatusCode)
	}
	readyHint, err := strconv.Atoi(r.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("readyz Retry-After %q: %v", r.Header.Get("Retry-After"), err)
	}

	resp, _ := postJob(t, ts, simSpec(62))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	shedHint, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("shed Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
	}

	// Both hints come from the drain window. They are sampled a moment
	// apart, so allow one second of skew.
	if diff := readyHint - shedHint; diff < -1 || diff > 1 {
		t.Errorf("readyz hint %d and shed hint %d disagree", readyHint, shedHint)
	}
	if readyHint < 1 || readyHint > int(s.cfg.DrainGrace.Seconds()) {
		t.Errorf("readyz hint %d outside (0, %v]", readyHint, s.cfg.DrainGrace)
	}

	gate.Do(func() { close(release) })
}

// TestSubmitExpiredDeadlineFastFails: a submission whose client-supplied
// deadline already passed is rejected with 504 — not queued — and counted
// under its own shed reason.
func TestSubmitExpiredDeadlineFastFails(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := simSpec(71)
	spec.DeadlineUnixMS = time.Now().Add(-time.Second).UnixMilli()
	resp, _ := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-deadline submit = %d, want 504", resp.StatusCode)
	}
	if got := scrapeMetric(t, ts, `dnasimd_jobs_shed_total{reason="deadline_expired"}`); got != 1 {
		t.Errorf("deadline_expired shed counter = %v, want 1", got)
	}
	if got := scrapeMetric(t, ts, "dnasimd_jobs_submitted_total"); got != 0 {
		t.Errorf("submitted counter = %v, want 0: the job must not be admitted", got)
	}

	// A live deadline is admitted and runs normally.
	spec = simSpec(72)
	spec.DeadlineUnixMS = time.Now().Add(time.Minute).UnixMilli()
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("live-deadline submit = %d, want 202", resp.StatusCode)
	}
	j, _ := s.Job(st.ID)
	if fin := awaitTerminal(t, j, 15*time.Second); fin.State != StateDone {
		t.Errorf("live-deadline job = %v (%s), want done", fin.State, fin.Error)
	}
}

// TestDeadlineExpiresWhileQueued: a job admitted with time to spare whose
// deadline lapses before a worker reaches it must fail fast when popped,
// not execute for a client that has given up.
func TestDeadlineExpiresWhileQueued(t *testing.T) {
	block := make(chan struct{})
	s := testServer(t, Config{
		Workers: 1,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			<-block // the first popped job (and any later one) waits here
			return ch, cov
		},
	})

	// Occupy the only worker.
	blocker, err := s.Submit(simSpec(81))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return blocker.State() == StateRunning })

	// Queue a job with a deadline shorter than the blocker will hold the
	// worker.
	spec := simSpec(82)
	spec.DeadlineUnixMS = time.Now().Add(150 * time.Millisecond).UnixMilli()
	doomed, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(250 * time.Millisecond)
	close(block)

	st := awaitTerminal(t, doomed, 10*time.Second)
	if st.State != StateFailed || st.Attempts != 0 {
		t.Fatalf("queued-past-deadline job = %v after %d attempts (%s), want failed with 0 attempts",
			st.State, st.Attempts, st.Error)
	}
	if fin := awaitTerminal(t, blocker, 15*time.Second); fin.State != StateDone {
		t.Errorf("blocker = %v (%s), want done", fin.State, fin.Error)
	}
}

// TestSubmitIdempotencyKeyDedupes: retrying a submit with the same
// Idempotency-Key returns the originally admitted job (200 + replay
// header) instead of creating a duplicate; a different key creates a
// fresh job.
func TestSubmitIdempotencyKeyDedupes(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := simSpec(91)
	resp1, st1 := postJobIdem(t, ts, spec, "key-a")
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d, want 202", resp1.StatusCode)
	}
	resp2, st2 := postJobIdem(t, ts, spec, "key-a")
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("replayed submit = %d, want 200", resp2.StatusCode)
	}
	if resp2.Header.Get(IdempotencyReplayedHeader) != "true" {
		t.Error("replayed submit missing replay header")
	}
	if st1.ID != st2.ID {
		t.Fatalf("replay created a duplicate: %s vs %s", st1.ID, st2.ID)
	}
	resp3, st3 := postJobIdem(t, ts, spec, "key-b")
	if resp3.StatusCode != http.StatusAccepted || st3.ID == st1.ID {
		t.Fatalf("distinct key: status %d id %s, want a fresh 202 job", resp3.StatusCode, st3.ID)
	}

	if got := scrapeMetric(t, ts, "dnasimd_jobs_submitted_total"); got != 2 {
		t.Errorf("submitted counter = %v, want 2 (one per distinct key)", got)
	}
	if got := scrapeMetric(t, ts, "dnasimd_jobs_idempotent_replays_total"); got != 1 {
		t.Errorf("replay counter = %v, want 1", got)
	}
}

// TestSubmitIdempotencyConcurrentRace: many concurrent submits sharing one
// key must admit exactly one job — the contract the resilient client's
// retry loop depends on.
func TestSubmitIdempotencyConcurrentRace(t *testing.T) {
	s := testServer(t, Config{QueueCapacity: 64})
	spec := simSpec(95)

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			j, _, err := s.SubmitIdempotent("shared", spec)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			ids[i] = j.ID
		}(i)
	}
	wg.Wait()

	for i := 1; i < n; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("concurrent same-key submits produced jobs %s and %s", ids[0], ids[i])
		}
	}
	if got := s.Registry().Snapshot()["dnasimd_jobs_submitted_total"]; got != 1 {
		t.Errorf("submitted counter = %v, want 1", got)
	}
}
