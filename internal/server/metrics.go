package server

import (
	"fmt"
	"time"

	"dnastore/internal/obs"
)

// The server's metric surface, all registered on one obs.Registry and
// served from GET /metrics inside the server's own mux (so the chaos
// drills scrape counters through the same handler operators do).
//
// Naming scheme (documented in DESIGN.md §10): everything is prefixed
// dnasimd_, counters end in _total, histograms in the unit (_seconds),
// and low-cardinality dimensions ride labels — shed reason, terminal
// outcome, breaker target state, job kind, pipeline stage.
type serverMetrics struct {
	reg *obs.Registry

	submitted    *obs.Counter
	shedFull     *obs.Counter
	shedDraining *obs.Counter
	shedDeadline *obs.Counter
	idemReplays  *obs.Counter
	kills        *obs.Counter
	requeues     *obs.Counter
	finished     map[JobState]*obs.Counter
	breakerTo    map[BreakerState]*obs.Counter
	jobSeconds   map[JobKind]*obs.Histogram
	attemptSecs  *obs.Histogram
}

// jobBuckets cover the service's latency range: millisecond drills up to
// multi-minute full-scale simulations.
var jobBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300}

// newServerMetrics registers every series and the scrape-time gauges.
func newServerMetrics(s *Server, reg *obs.Registry) *serverMetrics {
	m := &serverMetrics{reg: reg}
	m.submitted = reg.Counter("dnasimd_jobs_submitted_total",
		"Jobs admitted past validation and queue capacity.")
	shedHelp := "Submissions shed at admission with 503 + Retry-After, by reason."
	m.shedFull = reg.Counter(`dnasimd_jobs_shed_total{reason="queue_full"}`, shedHelp)
	m.shedDraining = reg.Counter(`dnasimd_jobs_shed_total{reason="draining"}`, shedHelp)
	m.shedDeadline = reg.Counter(`dnasimd_jobs_shed_total{reason="deadline_expired"}`, shedHelp)
	m.idemReplays = reg.Counter("dnasimd_jobs_idempotent_replays_total",
		"Submissions answered with an already-admitted job via Idempotency-Key.")
	m.kills = reg.Counter("dnasimd_watchdog_kills_total",
		"Attempts killed by the stall watchdog for lack of cluster progress.")
	m.requeues = reg.Counter("dnasimd_job_requeues_total",
		"Supervised requeues after a failed or killed attempt.")

	finHelp := "Jobs reaching a terminal state, by outcome."
	m.finished = map[JobState]*obs.Counter{
		StateDone:         reg.Counter(`dnasimd_jobs_finished_total{outcome="done"}`, finHelp),
		StateFailed:       reg.Counter(`dnasimd_jobs_finished_total{outcome="failed"}`, finHelp),
		StateCanceled:     reg.Counter(`dnasimd_jobs_finished_total{outcome="canceled"}`, finHelp),
		StateCheckpointed: reg.Counter(`dnasimd_jobs_finished_total{outcome="checkpointed"}`, finHelp),
	}
	brkHelp := "Circuit breaker state transitions, by target state."
	m.breakerTo = map[BreakerState]*obs.Counter{
		BreakerOpen:     reg.Counter(`dnasimd_breaker_transitions_total{to="open"}`, brkHelp),
		BreakerHalfOpen: reg.Counter(`dnasimd_breaker_transitions_total{to="half-open"}`, brkHelp),
		BreakerClosed:   reg.Counter(`dnasimd_breaker_transitions_total{to="closed"}`, brkHelp),
	}
	latHelp := "Job latency from admission to terminal state, by kind."
	m.jobSeconds = map[JobKind]*obs.Histogram{
		KindSimulate: reg.Histogram(`dnasimd_job_seconds{kind="simulate"}`, latHelp, jobBuckets),
		KindRetrieve: reg.Histogram(`dnasimd_job_seconds{kind="retrieve"}`, latHelp, jobBuckets),
	}
	m.attemptSecs = reg.Histogram("dnasimd_attempt_seconds",
		"Latency of a single supervised execution attempt.", jobBuckets)

	// Scrape-time gauges read the live structures under their own locks.
	reg.GaugeFunc("dnasimd_queue_depth", "Jobs waiting in the admission queue.",
		func() float64 { return float64(s.queue.depth()) })
	reg.GaugeFunc("dnasimd_jobs_running", "Jobs currently executing on workers.",
		func() float64 { return float64(s.dog.runningCount()) })
	reg.GaugeFunc("dnasimd_jobs_tracked", "Jobs known to the server (all states).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	reg.GaugeFunc("dnasimd_breaker_open", "1 while the I/O circuit breaker is open.",
		func() float64 {
			if s.breaker.State() == BreakerOpen {
				return 1
			}
			return 0
		})
	return m
}

// observeFinish records a job's terminal transition. Called exactly once
// per job (finish is idempotent and reports whether it transitioned).
func (m *serverMetrics) observeFinish(j *Job, state JobState) {
	if c := m.finished[state]; c != nil {
		c.Inc()
	}
	if h := m.jobSeconds[j.Spec.Kind]; h != nil {
		h.Observe(time.Since(j.created).Seconds())
	}
}

// observeStages folds one attempt's stage-timer account into the per-stage
// histograms and item counters. Stage series are registered lazily: the
// set of stages is small and bounded by the instrumented code, not by
// request content.
func (m *serverMetrics) observeStages(timings []obs.StageTiming) {
	for _, st := range timings {
		m.reg.Histogram(fmt.Sprintf(`dnasimd_stage_seconds{stage=%q}`, st.Stage),
			"Per-attempt wall time by pipeline stage.", jobBuckets).Observe(st.Wall.Seconds())
		if st.Items > 0 {
			m.reg.Counter(fmt.Sprintf(`dnasimd_stage_items_total{stage=%q}`, st.Stage),
				"Work items processed by pipeline stage (clusters, reads, strands).").Add(uint64(st.Items))
		}
	}
}
