package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Do while the breaker is open and
// its cooldown has not elapsed. Callers fail fast instead of hammering a
// dependency that is already down.
var ErrBreakerOpen = errors.New("server: I/O circuit breaker open")

// BreakerState is the classic three-state circuit-breaker machine.
type BreakerState string

const (
	// BreakerClosed passes every call through; consecutive failures are
	// counted and trip the breaker at the threshold.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen fails every call fast until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen lets exactly one probe through; its outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker is a circuit breaker around the service's pool/disk I/O. The
// failure mode it guards against is a dependency that fails slowly — a
// rotting pool file that costs a full parse-and-verify before erroring, a
// disk that hangs — where every queued job paying that cost in turn would
// amplify one fault into total service degradation. After Threshold
// consecutive failures the breaker opens and jobs fail fast; after
// Cooldown one half-open probe decides whether the dependency recovered.
//
// The zero value is not usable; call NewBreaker.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	probing   bool      // a half-open probe is in flight
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests
	// onTransition, when set, observes every state change (metrics and
	// logging). Called with b.mu held: implementations must not call back
	// into the breaker.
	onTransition func(from, to BreakerState)
}

// NewBreaker returns a closed breaker tripping after threshold consecutive
// failures and probing again after cooldown. Non-positive arguments take
// the defaults (5 failures, 10s).
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 10 * time.Second
	}
	return &Breaker{state: BreakerClosed, threshold: threshold, cooldown: cooldown, now: time.Now}
}

// State returns the breaker's current state, accounting for an elapsed
// cooldown (an open breaker past its cooldown reports half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// allow reserves the right to make one call. It returns ErrBreakerOpen
// when the call must be shed; otherwise the caller must report the outcome
// via record.
func (b *Breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		// Cooldown elapsed: become half-open and admit this call as the
		// probe.
		b.setState(BreakerHalfOpen)
		b.probing = true
		return nil
	case BreakerHalfOpen:
		if b.probing {
			// Someone else's probe is still in flight; shed.
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
	return fmt.Errorf("server: breaker in impossible state %q", b.state)
}

// record reports the outcome of an allowed call.
func (b *Breaker) record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err == nil {
		// Success closes the breaker from any state.
		b.setState(BreakerClosed)
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.trip()
		}
	case BreakerHalfOpen:
		// The probe failed: back to fully open, restart the cooldown.
		b.trip()
	case BreakerOpen:
		// A straggler from before the trip; nothing to update.
	}
}

// setState changes the state and fires the transition hook on an actual
// change. Callers hold b.mu.
func (b *Breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// trip opens the breaker. Callers hold b.mu.
func (b *Breaker) trip() {
	b.setState(BreakerOpen)
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// Do runs f under the breaker: it fails fast with ErrBreakerOpen while the
// breaker is open, and otherwise records f's outcome. A panic in f counts
// as a failure and is re-raised.
func (b *Breaker) Do(f func() error) error {
	if err := b.allow(); err != nil {
		return err
	}
	done := false
	defer func() {
		if !done {
			b.record(errors.New("panic"))
		}
	}()
	err := f()
	done = true
	b.record(err)
	return err
}
