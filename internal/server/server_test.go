package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/faults"
	"dnastore/internal/rng"
)

// testServer starts a Server with fast supervision timings and tears it
// down with the test.
func testServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.WatchdogInterval == 0 {
		cfg.WatchdogInterval = 20 * time.Millisecond
	}
	if cfg.StallAfter == 0 {
		cfg.StallAfter = -1 // most tests don't want stall kills
	}
	if cfg.KillGrace == 0 {
		cfg.KillGrace = 200 * time.Millisecond
	}
	if cfg.DrainGrace == 0 {
		cfg.DrainGrace = 2 * time.Second
	}
	s := New(cfg)
	t.Cleanup(s.Drain)
	return s
}

// simSpec is the canonical small simulation job used across tests.
func simSpec(seed uint64) JobSpec {
	return JobSpec{
		Kind: KindSimulate,
		Simulate: &SimulateSpec{
			NumRefs: 24, RefLen: 60, Seed: seed,
			Sub: 0.01, Ins: 0.005, Del: 0.02,
			Coverage: 4,
		},
	}
}

// sequentialResult computes the same job's output without the server: the
// byte-identity oracle.
func sequentialResult(t *testing.T, sp *SimulateSpec) []byte {
	t.Helper()
	ch, cov, err := sp.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	sim := channel.Simulator{Channel: ch, Coverage: cov}
	ds, err := sim.SimulateCtx(context.Background(), "simulated", sp.References(), sp.Seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// awaitTerminal polls a job to a terminal state.
func awaitTerminal(t *testing.T, j *Job, within time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(within):
		t.Fatalf("job %s not terminal within %v: %+v", j.ID, within, j.Snapshot())
	}
	return j.Snapshot()
}

// --- HTTP API ---

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*http.Response, Status) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		json.NewDecoder(resp.Body).Decode(&st)
	}
	resp.Body.Close()
	return resp, st
}

func TestHTTPSubmitPollResult(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	spec := simSpec(7)
	resp, st := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if st.ID == "" || st.Kind != KindSimulate {
		t.Fatalf("submit snapshot: %+v", st)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var cur Status
		json.NewDecoder(r.Body).Decode(&cur)
		r.Body.Close()
		if cur.State.Terminal() {
			if cur.State != StateDone {
				t.Fatalf("job ended %q: %s", cur.State, cur.Error)
			}
			if cur.Progress.Completed != cur.Progress.Total || cur.Progress.Total != 24 {
				t.Errorf("terminal progress %+v, want 24/24", cur.Progress)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", cur)
		}
		time.Sleep(10 * time.Millisecond)
	}

	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", r.StatusCode)
	}
	if want := sequentialResult(t, spec.Simulate); !bytes.Equal(got, want) {
		t.Errorf("server result differs from sequential run (%d vs %d bytes)", len(got), len(want))
	}

	// Unknown and not-yet-done paths.
	if r, _ := http.Get(ts.URL + "/v1/jobs/nope"); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d", r.StatusCode)
	}
}

func TestHTTPRejectsInvalidSpecs(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for name, spec := range map[string]JobSpec{
		"no kind":        {},
		"no params":      {Kind: KindSimulate},
		"both params":    {Kind: KindSimulate, Simulate: &SimulateSpec{NumRefs: 1, RefLen: 1}, Retrieve: &RetrieveSpec{}},
		"no refs":        {Kind: KindSimulate, Simulate: &SimulateSpec{}},
		"bad rates":      {Kind: KindSimulate, Simulate: &SimulateSpec{NumRefs: 4, RefLen: 8, Sub: 2}},
		"bad faults":     {Kind: KindSimulate, Simulate: &SimulateSpec{NumRefs: 4, RefLen: 8, Faults: "dropout=NaN"}},
		"bad refs":       {Kind: KindSimulate, Simulate: &SimulateSpec{Refs: []string{"XYZ"}}},
		"empty retrieve": {Kind: KindRetrieve, Retrieve: &RetrieveSpec{}},
		"neg timeout":    {Kind: KindSimulate, TimeoutMS: -1, Simulate: &SimulateSpec{NumRefs: 4, RefLen: 8}},
	} {
		if resp, _ := postJob(t, ts, spec); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON status = %d", resp.StatusCode)
	}
}

func TestHealthAndReadyReflectPhases(t *testing.T) {
	s := testServer(t, Config{})
	ts := httptest.NewServer(s)
	defer ts.Close()

	check := func(path string, want int) {
		t.Helper()
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != want {
			t.Errorf("%s while %s = %d, want %d", path, s.Phase(), r.StatusCode, want)
		}
	}
	check("/healthz", http.StatusOK)
	check("/readyz", http.StatusOK)

	s.Drain()
	check("/healthz", http.StatusServiceUnavailable) // stopped
	check("/readyz", http.StatusServiceUnavailable)

	// Submissions after drain are shed with Retry-After.
	resp, _ := postJob(t, ts, simSpec(1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("post-drain 503 without Retry-After")
	}
}

func TestCancelQueuedAndRunning(t *testing.T) {
	release := make(chan struct{})
	var gate atomic.Int64
	gate.Store(1 << 30) // stall every Transmit until released
	s := testServer(t, Config{
		Workers: 1,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.Stall{Base: ch, Release: release, Remaining: &gate}, cov
		},
	})
	defer close(release)

	running, err := s.Submit(simSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(simSpec(2))
	if err != nil {
		t.Fatal(err)
	}

	// The queued job cancels instantly.
	if st, err := s.Cancel(queued.ID); err != nil || st != StateCanceled {
		t.Fatalf("cancel queued: %v %v", st, err)
	}
	if st := awaitTerminal(t, queued, time.Second); st.State != StateCanceled {
		t.Errorf("queued job state = %v", st.State)
	}

	// Wait until the first job is actually running, then cancel it; the
	// stalled goroutine is abandoned and the job settles canceled.
	waitFor(t, 2*time.Second, func() bool { return running.State() == StateRunning })
	if _, err := s.Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	if st := awaitTerminal(t, running, 3*time.Second); st.State != StateCanceled {
		t.Errorf("running job state = %v (%s)", st.State, st.Error)
	}
	if _, err := s.Cancel("absent"); err == nil {
		t.Error("cancel of unknown job succeeded")
	}
}

func TestJobDeadlineExceededFails(t *testing.T) {
	release := make(chan struct{})
	var gate atomic.Int64
	gate.Store(1 << 30)
	s := testServer(t, Config{
		Workers: 1,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.Stall{Base: ch, Release: release, Remaining: &gate}, cov
		},
	})
	defer close(release)

	spec := simSpec(3)
	spec.TimeoutMS = 50
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, j, 5*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("error %q does not mention the deadline", st.Error)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts = %d: deadline jobs must not be retried", st.Attempts)
	}
}

// TestWatchdogKillsStallAndRetryIsByteIdentical is the supervision core:
// an attempt that stops making cluster progress is killed by the
// watchdog, requeued, and the retry — the stall window over — produces
// output byte-identical to an undisturbed sequential run.
func TestWatchdogKillsStallAndRetryIsByteIdentical(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	var stalls atomic.Int64
	stalls.Store(1) // exactly one Transmit hangs: attempt 1 stalls, attempt 2 is clean
	s := testServer(t, Config{
		Workers:    1,
		StallAfter: 150 * time.Millisecond,
		KillGrace:  50 * time.Millisecond,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return faults.Stall{Base: ch, Release: release, Remaining: &stalls}, cov
		},
	})

	spec := simSpec(11)
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, j, 15*time.Second)
	if st.State != StateDone {
		t.Fatalf("state = %v (%s), want done", st.State, st.Error)
	}
	if st.Attempts < 2 {
		t.Errorf("attempts = %d, want ≥2: the stalled attempt must have been killed and requeued", st.Attempts)
	}
	got, _ := j.Result()
	if want := sequentialResult(t, spec.Simulate); !bytes.Equal(got, want) {
		t.Error("post-stall retry output differs from sequential run")
	}

	// Supervision events surface on the metric registry: at least one
	// watchdog kill and one requeue, and exactly one successful finish.
	snap := s.Registry().Snapshot()
	if kills := snap["dnasimd_watchdog_kills_total"]; kills < 1 {
		t.Errorf("watchdog kill counter = %v, want >= 1", kills)
	}
	if rq := snap["dnasimd_job_requeues_total"]; rq < 1 {
		t.Errorf("requeue counter = %v, want >= 1", rq)
	}
	if done := snap[`dnasimd_jobs_finished_total{outcome="done"}`]; done != 1 {
		t.Errorf("finished{done} = %v, want 1", done)
	}
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, within time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestAttemptCapFailsJob: a deterministic per-cluster panic (drawn from
// the split RNG, so it recurs every attempt) must exhaust the attempt cap
// and fail, not retry forever.
func TestAttemptCapFailsJob(t *testing.T) {
	s := testServer(t, Config{
		Workers:     1,
		MaxAttempts: 2,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return panicAlways{ch}, cov
		},
	})
	j, err := s.Submit(simSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	st := awaitTerminal(t, j, 10*time.Second)
	if st.State != StateFailed {
		t.Fatalf("state = %v, want failed", st.State)
	}
	if st.Attempts != 2 {
		t.Errorf("attempts = %d, want exactly the cap", st.Attempts)
	}
	if !strings.Contains(st.Error, "attempts exhausted") {
		t.Errorf("error = %q", st.Error)
	}
}

// panicAlways panics on every Transmit — a permanently broken channel.
type panicAlways struct{ base channel.Channel }

func (p panicAlways) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	panic("server_test: permanently broken channel")
}
func (p panicAlways) Name() string { return p.base.Name() + "+panic" }
