// Package server implements dnasimd: a hardened, long-running job service
// over the simulation and retrieval primitives built in earlier layers.
// Clients submit simulation and retrieval jobs over HTTP (submit / status
// / result / cancel); a supervised worker pool executes them.
//
// Robustness is layered through the whole request lifecycle:
//
//   - Admission control: a bounded queue sheds excess load with 503 +
//     Retry-After instead of growing without bound.
//   - Deadline propagation: per-job (and server-default) timeouts flow as
//     context deadlines into SimulateCtx / RetrieveAdaptive.
//   - Supervision: per-cluster panic isolation (SimulateCtx), a top-level
//     recover per attempt, and a stall watchdog that kills attempts making
//     no cluster progress and requeues them under an attempt cap.
//   - Circuit breaker: pool/disk I/O trips open on consecutive failures
//     and fails fast until a half-open probe succeeds.
//   - Graceful drain: SIGTERM stops admission, lets in-flight jobs finish
//     or checkpoint to the durable journal, and exits cleanly; /healthz
//     and /readyz reflect each phase.
//
// Determinism is preserved end to end: jobs execute clusters via the
// per-cluster split-RNG scheme, so output is byte-identical regardless of
// worker count, stall kills, requeues, or drain/resume cycles.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/obs"
)

// Phase is the server lifecycle state exposed by /healthz and /readyz.
type Phase string

const (
	// PhaseServing: admitting and executing jobs.
	PhaseServing Phase = "serving"
	// PhaseDraining: admission stopped; in-flight jobs finishing or
	// checkpointing.
	PhaseDraining Phase = "draining"
	// PhaseStopped: every worker exited; the process is about to leave.
	PhaseStopped Phase = "stopped"
)

// Config parameterises a Server. The zero value is usable: every field
// has a production-shaped default.
type Config struct {
	// QueueCapacity bounds the admission queue (default 64). Submissions
	// beyond it are shed with 503 + Retry-After.
	QueueCapacity int
	// Workers sizes the worker pool (default GOMAXPROCS).
	Workers int
	// DataDir, when set, enables checkpoint journals for simulation jobs
	// (and is where drained jobs park their resumable state).
	DataDir string
	// MaxAttempts caps supervised retries per job (default 3).
	MaxAttempts int
	// StallAfter is how long a running job may go without completing a
	// cluster before the watchdog kills the attempt (default 30s;
	// negative disables).
	StallAfter time.Duration
	// WatchdogInterval is the stall scan period (default 1s).
	WatchdogInterval time.Duration
	// KillGrace is how long a killed attempt gets to exit voluntarily
	// before the worker abandons its goroutine (default 2s).
	KillGrace time.Duration
	// DrainGrace bounds how long Drain waits for non-checkpointable jobs
	// before canceling them (default 30s).
	DrainGrace time.Duration
	// DefaultJobTimeout bounds jobs that set no timeout_ms (default: none).
	DefaultJobTimeout time.Duration
	// BreakerThreshold and BreakerCooldown configure the I/O circuit
	// breaker (defaults 5 failures, 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// EstimatedJobTime seeds the Retry-After estimate (default 2s).
	EstimatedJobTime time.Duration
	// WrapSimulation, when set, wraps every simulation job's channel and
	// coverage model — the chaos-drill injection point for panic, stall
	// and latency injectors.
	WrapSimulation func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel)
	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)
	// Logger, when set, receives structured per-request and per-job logs
	// (job IDs, outcomes, stage timings). Independent of Logf so existing
	// printf-style consumers keep working.
	Logger *slog.Logger
	// Registry receives the server's metrics; nil allocates a private
	// registry (exposed via Server.Registry and GET /metrics either way).
	Registry *obs.Registry
}

// Server is the dnasimd job service. It implements http.Handler; the
// binary wires it to a net/http.Server and signal handling.
type Server struct {
	cfg      Config
	queue    *jobQueue
	dog      *watchdog
	breaker  *Breaker
	metrics  *serverMetrics
	slog     *slog.Logger
	workerWG sync.WaitGroup

	mu           sync.Mutex
	phase        Phase
	jobs         map[string]*Job
	idem         map[string]string // idempotency key -> job ID
	nextID       int
	drainStarted time.Time

	drainOnce sync.Once
	drained   chan struct{}

	mux *http.ServeMux
}

// New starts a serving Server: workers and watchdog are live on return.
func New(cfg Config) *Server {
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.StallAfter == 0 {
		cfg.StallAfter = 30 * time.Second
	}
	if cfg.WatchdogInterval <= 0 {
		cfg.WatchdogInterval = time.Second
	}
	if cfg.KillGrace <= 0 {
		cfg.KillGrace = 2 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 30 * time.Second
	}
	if cfg.EstimatedJobTime <= 0 {
		cfg.EstimatedJobTime = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		queue:   newJobQueue(cfg.QueueCapacity),
		breaker: NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		slog:    cfg.Logger,
		phase:   PhaseServing,
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
		drained: make(chan struct{}),
	}
	// Supervision events flow into the metric surface through hooks so the
	// watchdog and breaker stay observable without importing obs
	// themselves. Both hooks are installed before any goroutine that can
	// fire them starts (the watchdog scan loop starts inside newWatchdog;
	// the breaker is only exercised by workers started below).
	s.dog = newWatchdog(cfg.WatchdogInterval, cfg.StallAfter, func(j *Job) {
		s.metrics.kills.Inc()
		s.slog.Warn("watchdog kill", "job", j.ID, "stall_after", s.cfg.StallAfter)
	})
	s.breaker.onTransition = func(from, to BreakerState) {
		if c := s.metrics.breakerTo[to]; c != nil {
			c.Inc()
		}
		s.slog.Warn("breaker transition", "from", string(from), "to", string(to))
	}
	s.metrics = newServerMetrics(s, cfg.Registry)
	s.routes()
	s.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// logf forwards to the configured logger.
func (s *Server) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

// Registry returns the server's metrics registry (also served from
// GET /metrics).
func (s *Server) Registry() *obs.Registry { return s.cfg.Registry }

// finishJob moves a job to a terminal state and, if this call actually
// performed the transition, records outcome and latency exactly once.
// Every server-side finish goes through here; Job.finish stays idempotent
// underneath, so racing finishers cannot double-count.
func (s *Server) finishJob(j *Job, state JobState, result []byte, err error) {
	if !j.finish(state, result, err) {
		return
	}
	s.metrics.observeFinish(j, state)
	attrs := []any{"job", j.ID, "kind", string(j.Spec.Kind), "state", string(state),
		"attempts", j.Attempts(), "elapsed", time.Since(j.created).Round(time.Millisecond)}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	s.slog.Info("job finished", attrs...)
}

// Phase returns the current lifecycle phase.
func (s *Server) Phase() Phase {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.phase
}

// ErrDeadlineExpired is returned by Submit when the spec's client-supplied
// deadline has already passed at admission time. The HTTP layer maps it to
// 504: executing the job would burn a queue slot producing a result no one
// is still waiting for.
var ErrDeadlineExpired = errors.New("server: job deadline already expired at admission")

// Submit validates and admits a job, returning it, or an admission error
// (ErrQueueFull / ErrQueueClosed / ErrDeadlineExpired) the HTTP layer maps
// to 503 / 504.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	j, _, err := s.SubmitIdempotent("", spec)
	return j, err
}

// SubmitIdempotent is Submit with an optional idempotency key. A non-empty
// key that was already admitted returns the existing job with replayed =
// true instead of creating a duplicate — the contract that makes a client
// retry of a submit that raced a success safe. The key→job binding is made
// under the same critical section as admission, so two concurrent submits
// with the same key can never both create a job.
func (s *Server) SubmitIdempotent(key string, spec JobSpec) (j *Job, replayed bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, fmt.Errorf("server: invalid job: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if key != "" {
		if id, ok := s.idem[key]; ok {
			if prev, ok := s.jobs[id]; ok && prev.State() != StateCheckpointed {
				// Replay everything except a checkpointed job: resumable
				// means "resubmit to continue", so the retry admits a fresh
				// job (which picks the journal back up) and rebinds the key.
				return prev, true, nil
			}
		}
	}
	if ddl := spec.Deadline(); !ddl.IsZero() && !time.Now().Before(ddl) {
		return nil, false, ErrDeadlineExpired
	}
	if s.phase != PhaseServing {
		return nil, false, ErrQueueClosed
	}
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j = newJob(id, spec)
	// push happens inside s.mu: it never blocks (the queue is bounded and
	// sheds instead of waiting), and holding the lock closes the window in
	// which a racing same-key submit could observe a half-admitted job.
	if err := s.queue.push(j); err != nil {
		return nil, false, err
	}
	s.jobs[id] = j
	if key != "" {
		s.idem[key] = id
	}
	s.metrics.submitted.Inc()
	s.slog.Info("job admitted", "job", id, "kind", string(spec.Kind), "queue_depth", s.queue.depth())
	return j, false, nil
}

// Job returns a submitted job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel requests cancellation of a job. Queued jobs park immediately;
// running jobs get their attempt context canceled and settle shortly.
func (s *Server) Cancel(id string) (JobState, error) {
	j, ok := s.Job(id)
	if !ok {
		return "", fmt.Errorf("server: unknown job %q", id)
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		st := j.state
		j.mu.Unlock()
		return st, nil
	case j.state == StateQueued:
		// Parked; the worker skips terminal jobs on pop.
		transitioned := j.finishLocked(StateCanceled, nil, errCanceledByClient)
		j.mu.Unlock()
		if transitioned {
			s.metrics.observeFinish(j, StateCanceled)
			s.slog.Info("job finished", "job", j.ID, "kind", string(j.Spec.Kind),
				"state", string(StateCanceled), "error", errCanceledByClient.Error())
		}
		return StateCanceled, nil
	default:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errCanceledByClient)
		}
		return StateRunning, nil
	}
}

// maxRetryAfterSeconds caps the Retry-After hint: past an hour the number
// stops being advice and starts being a bug amplifier.
const maxRetryAfterSeconds = 3600

// retryAfter estimates when a shed client should come back: the queue
// backlog divided across the worker pool at the configured per-job
// estimate. RFC 9110 §10.2.3 defines Retry-After delta-seconds as a
// non-negative decimal integer, and a 0 (or fractional) value makes
// well-behaved clients retry immediately — so the estimate is rounded up
// and clamped into [1, maxRetryAfterSeconds]. The clamp comparisons are
// written to also catch a NaN/Inf estimate (misconfigured
// EstimatedJobTime) before the float→int conversion, whose behavior is
// undefined out of range.
func (s *Server) retryAfter() int {
	s.mu.Lock()
	phase, drainStarted := s.phase, s.drainStarted
	s.mu.Unlock()
	if phase == PhaseDraining || phase == PhaseStopped {
		return s.drainRetryAfter(drainStarted)
	}
	backlog := s.queue.depth() + s.dog.runningCount()
	workers := s.cfg.Workers
	if workers < 1 {
		workers = 1
	}
	sec := s.cfg.EstimatedJobTime.Seconds() * float64(backlog+1) / float64(workers)
	switch {
	case !(sec > 1): // ≤1, or NaN
		return 1
	case sec >= maxRetryAfterSeconds:
		return maxRetryAfterSeconds
	}
	return int(math.Ceil(sec))
}

// drainRetryAfter is the Retry-After hint for a non-serving instance. The
// backlog estimate is meaningless here — admission never resumes in this
// process — so the honest hint is the remainder of the drain window: by
// then this instance has exited and its replacement (or the load balancer)
// can take the retry. Both the shed path and /readyz use it, so readiness
// probes and shed clients hear the same number.
func (s *Server) drainRetryAfter(drainStarted time.Time) int {
	rem := s.cfg.DrainGrace
	if !drainStarted.IsZero() {
		rem -= time.Since(drainStarted)
	}
	sec := math.Ceil(rem.Seconds())
	switch {
	case !(sec > 1): // ≤1, or NaN
		return 1
	case sec >= maxRetryAfterSeconds:
		return maxRetryAfterSeconds
	}
	return int(sec)
}

// Drain executes the graceful shutdown state machine:
//
//	serving → draining: admission stops (submissions and requeues shed;
//	  /readyz flips to 503), queued jobs are canceled, and running
//	  simulate jobs with a journal are interrupted so they checkpoint.
//	draining: remaining in-flight jobs get up to DrainGrace to finish,
//	  then are canceled.
//	→ stopped: every worker has exited; /healthz reports "stopped".
//
// Drain is idempotent and returns once the server is stopped.
func (s *Server) Drain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.phase = PhaseDraining
		s.drainStarted = time.Now()
		s.mu.Unlock()
		s.logf("drain: admission stopped")

		// Shed the queue: those jobs never started, so there is nothing
		// to checkpoint.
		for _, j := range s.queue.close() {
			s.finishJob(j, StateCanceled, nil, errDraining)
		}

		// Interrupt checkpointable in-flight jobs: their progress is
		// durable, so the fastest correct exit is "journal and park".
		// Everything else keeps running within the grace window.
		running := s.runningJobs()
		for _, j := range running {
			if s.jobCheckpointPath(j) != "" {
				j.mu.Lock()
				cancel := j.cancel
				j.mu.Unlock()
				if cancel != nil {
					cancel(errDraining)
				}
			}
		}

		workersDone := make(chan struct{})
		go func() {
			s.workerWG.Wait()
			close(workersDone)
		}()
		select {
		case <-workersDone:
		case <-time.After(s.cfg.DrainGrace):
			s.logf("drain: grace expired, canceling stragglers")
			for _, j := range s.runningJobs() {
				j.mu.Lock()
				cancel := j.cancel
				j.mu.Unlock()
				if cancel != nil {
					cancel(errDraining)
				}
			}
			<-workersDone
		}

		s.dog.close()
		s.mu.Lock()
		s.phase = PhaseStopped
		s.mu.Unlock()
		s.logf("drain: stopped")
		close(s.drained)
	})
	<-s.drained
}

// runningJobs snapshots jobs currently in StateRunning.
func (s *Server) runningJobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []*Job
	for _, j := range s.jobs {
		if j.State() == StateRunning {
			out = append(out, j)
		}
	}
	return out
}

// Health is the /healthz payload.
type Health struct {
	Phase      Phase        `json:"phase"`
	QueueDepth int          `json:"queue_depth"`
	Running    int          `json:"running"`
	Breaker    BreakerState `json:"breaker"`
	Jobs       int          `json:"jobs"`
}

// HealthSnapshot returns the current health view.
func (s *Server) HealthSnapshot() Health {
	s.mu.Lock()
	jobs := len(s.jobs)
	phase := s.phase
	s.mu.Unlock()
	return Health{
		Phase:      phase,
		QueueDepth: s.queue.depth(),
		Running:    s.dog.runningCount(),
		Breaker:    s.breaker.State(),
		Jobs:       jobs,
	}
}

// routes builds the HTTP mux.
func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /drainz", s.handleDrainz)
	mux.Handle("GET /metrics", s.cfg.Registry.Handler())
	s.mux = mux
}

// statusWriter captures the response code for the request log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP implements http.Handler, logging every request with method,
// path, status and latency. Job routes log at info; health and metrics
// probes at debug so scrapers don't flood the log.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(sw, r)
	lvl := slog.LevelDebug
	if strings.HasPrefix(r.URL.Path, "/v1/") {
		lvl = slog.LevelInfo
	}
	s.slog.Log(r.Context(), lvl, "http request",
		"method", r.Method, "path", r.URL.Path, "status", sw.code,
		"elapsed", time.Since(start).Round(time.Microsecond))
}

// BodyChecksumHeader carries an FNV-64a hash (hex) of the response body.
// HTTP framing protects against truncation but not against bytes flipped
// in flight that happen to keep the framing valid — a mangled job ID
// inside otherwise-parseable JSON, or a silently corrupted result
// payload. The client recomputes the hash over the received body and
// treats a mismatch as a transport fault to retry, never data to act on.
const BodyChecksumHeader = "X-Dnasimd-Body-Fnv64a"

// bodyChecksum renders the FNV-64a of a response body for the header.
func bodyChecksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// writeJSON writes a JSON response with its body checksum header.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		buf = []byte(`{"error":"encode response"}`)
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(BodyChecksumHeader, bodyChecksum(buf))
	w.WriteHeader(code)
	w.Write(buf)
}

// shed answers a rejected submission: 503 with a Retry-After hint, the
// admission-control contract.
func (s *Server) shed(w http.ResponseWriter, reason string) {
	switch reason {
	case "queue full":
		s.metrics.shedFull.Inc()
	case "draining":
		s.metrics.shedDraining.Inc()
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": reason})
}

// IdempotencyKeyHeader carries the client's submission identity. Retrying
// a submit with the same key returns the originally admitted job (HTTP 200
// with IdempotencyReplayedHeader: true) instead of creating a duplicate.
const (
	IdempotencyKeyHeader      = "Idempotency-Key"
	IdempotencyReplayedHeader = "Idempotency-Replayed"
)

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode job spec: %v", err)})
		return
	}
	j, replayed, err := s.SubmitIdempotent(r.Header.Get(IdempotencyKeyHeader), spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.shed(w, "queue full")
		return
	case errors.Is(err, ErrQueueClosed):
		s.shed(w, "draining")
		return
	case errors.Is(err, ErrDeadlineExpired):
		// 504, not 503: the client's time budget is spent, so "come back
		// later" would be a lie — there is no Retry-After that helps.
		s.metrics.shedDeadline.Inc()
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if replayed {
		s.metrics.idemReplays.Inc()
		w.Header().Set(IdempotencyReplayedHeader, "true")
		writeJSON(w, http.StatusOK, j.Snapshot())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	st := j.Snapshot()
	w.Header().Set("X-Job-State", string(st.State))
	data, ok := j.Result()
	if !ok {
		writeJSON(w, http.StatusConflict, st)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(BodyChecksumHeader, bodyChecksum(data))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.Cancel(id); err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	j, _ := s.Job(id)
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleHealthz is liveness plus introspection: 200 while the process is
// serving or draining (it is alive and can answer), with the full health
// snapshot as the body; 503 once stopped.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.HealthSnapshot()
	code := http.StatusOK
	if h.Phase == PhaseStopped {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

// handleReadyz is readiness: 200 only while admitting jobs, so load
// balancers stop routing to a draining instance before it sheds.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Phase() == PhaseServing {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": string(s.Phase())})
}
