package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestDrainzListsJournals: /drainz must inventory every fingerprint-named
// checkpoint journal in the data dir — annotating the ones bound to jobs
// this process knows, and listing the rest as orphans ready for handoff —
// while ignoring files that are not shard journals.
func TestDrainzListsJournals(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, DataDir: dir, StallAfter: -1})
	defer s.Drain()

	// A known job: submit a spec, then fabricate its journal file the way a
	// checkpointing run would have left it. The job itself finishes fast, so
	// wait for a terminal state to keep the annotation deterministic.
	spec := JobSpec{Kind: KindSimulate, Simulate: &SimulateSpec{
		NumRefs: 2, RefLen: 20, Seed: 9, Sub: 0.01, Coverage: 1,
	}}
	j, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !j.State().Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	known := fmt.Sprintf("sim-%016x.ckpt", spec.Simulate.Fingerprint())
	orphan := "sim-0123456789abcdef.ckpt"
	for _, name := range []string{known, orphan, "pool.dat", "sim-short.ckpt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	w := httptest.NewRecorder()
	s.ServeHTTP(w, httptest.NewRequest("GET", "/drainz", nil))
	if w.Code != 200 {
		t.Fatalf("GET /drainz = %d", w.Code)
	}
	var dz Drainz
	if err := json.Unmarshal(w.Body.Bytes(), &dz); err != nil {
		t.Fatalf("decode drainz: %v", err)
	}
	if dz.DataDir != dir || dz.Phase != PhaseServing {
		t.Errorf("drainz header = %+v", dz)
	}
	if len(dz.Journals) != 2 {
		t.Fatalf("journals = %+v, want exactly the two sim-*.ckpt entries", dz.Journals)
	}
	byFP := map[string]DrainJournal{}
	for _, dj := range dz.Journals {
		byFP[dj.Fingerprint] = dj
	}
	if dj := byFP["0123456789abcdef"]; dj.File != orphan || dj.JobID != "" || dj.State != "" {
		t.Errorf("orphan journal = %+v, want no job binding", dj)
	}
	fp := fmt.Sprintf("%016x", spec.Simulate.Fingerprint())
	if dj := byFP[fp]; dj.JobID != j.ID || dj.State != string(j.State()) {
		t.Errorf("known journal = %+v, want bound to job %s in state %s", dj, j.ID, j.State())
	}
}
