package server

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestQueueCloseRequeueHammer hammers push/requeue/pop/close concurrently
// and checks the admission invariant: every job the queue admitted (push or
// requeue returned nil) is either handed to a consumer by pop or returned
// by close — never silently dropped. Run with -race.
func TestQueueCloseRequeueHammer(t *testing.T) {
	const (
		rounds    = 50
		producers = 4
		consumers = 4
		perProd   = 200
	)
	for round := 0; round < rounds; round++ {
		q := newJobQueue(32)

		// outstanding counts net admissions: +1 per accepted push/requeue,
		// -1 per pop delivery and per job returned by close. Zero at the
		// end means nothing was dropped or double-delivered.
		var outstanding atomic.Int64
		var wg sync.WaitGroup

		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < perProd; i++ {
					j := &Job{ID: "job"}
					// Alternate admission and supervision-retry paths so
					// close races against both append directions.
					var err error
					if i%3 == 0 {
						err = q.requeue(j)
					} else {
						err = q.push(j)
					}
					if err == nil {
						outstanding.Add(1)
					}
				}
			}(p)
		}

		var consWG sync.WaitGroup
		for c := 0; c < consumers; c++ {
			consWG.Add(1)
			go func() {
				defer consWG.Done()
				for {
					j := q.pop()
					if j == nil {
						return
					}
					outstanding.Add(-1)
				}
			}()
		}

		// Close mid-stream, racing the producers and consumers.
		done := make(chan struct{})
		go func() {
			defer close(done)
			rest := q.close()
			outstanding.Add(-int64(len(rest)))
			for _, j := range rest {
				if j == nil {
					t.Error("close returned a nil job")
				}
			}
		}()

		wg.Wait()
		<-done
		consWG.Wait()

		if n := outstanding.Load(); n != 0 {
			t.Fatalf("round %d: %d admitted jobs unaccounted for (dropped or double-delivered)", round, n)
		}
		if d := q.depth(); d != 0 {
			t.Fatalf("round %d: closed queue reports depth %d", round, d)
		}
	}
}

// TestQueueCloseIsIdempotent verifies a second close returns nothing (the
// first close already drained the backlog) rather than re-returning jobs.
func TestQueueCloseIsIdempotent(t *testing.T) {
	q := newJobQueue(4)
	if err := q.push(&Job{ID: "a"}); err != nil {
		t.Fatalf("push: %v", err)
	}
	first := q.close()
	if len(first) != 1 {
		t.Fatalf("first close returned %d jobs, want 1", len(first))
	}
	if second := q.close(); len(second) != 0 {
		t.Fatalf("second close returned %d jobs, want 0", len(second))
	}
	if err := q.push(&Job{ID: "b"}); err != ErrQueueClosed {
		t.Fatalf("push after close = %v, want ErrQueueClosed", err)
	}
	if err := q.requeue(&Job{ID: "c"}); err != ErrQueueClosed {
		t.Fatalf("requeue after close = %v, want ErrQueueClosed", err)
	}
	if j := q.pop(); j != nil {
		t.Fatalf("pop after drained close = %v, want nil", j)
	}
}
