package server

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"strings"
)

// Drainz is the handoff inventory served by GET /drainz: the
// fingerprint-named simulation checkpoint journals sitting in this
// instance's data directory. On a shared data dir, a peer (typically the
// fleet coordinator re-placing a dead node's shard) reads this to learn
// which work is resumable here — each journal binds to a spec fingerprint,
// so resubmitting the matching spec anywhere with the same data dir turns
// into a resume rather than a recompute.
type Drainz struct {
	Phase   Phase  `json:"phase"`
	DataDir string `json:"data_dir"`
	// Journals lists every sim-<fingerprint>.ckpt found, sorted by
	// fingerprint. Entries whose fingerprint matches a job this process
	// knows carry that job's ID and state; the rest are orphans — journals
	// left by a previous process (or a dead peer) that a resubmission of
	// the matching spec will pick up.
	Journals []DrainJournal `json:"journals"`
}

// DrainJournal is one checkpoint journal in the Drainz inventory.
type DrainJournal struct {
	// Fingerprint is the 16-hex-digit spec fingerprint from the filename.
	Fingerprint string `json:"fingerprint"`
	// File is the journal's filename inside DataDir.
	File string `json:"file"`
	// JobID and State identify the in-memory job bound to this journal,
	// when this process has one; both empty for an orphaned journal.
	JobID string `json:"job_id,omitempty"`
	State string `json:"state,omitempty"`
}

// DrainzSnapshot builds the current handoff inventory. A server without a
// data dir has no durable state to hand off and reports an empty list.
func (s *Server) DrainzSnapshot() Drainz {
	dz := Drainz{Phase: s.Phase(), DataDir: s.cfg.DataDir, Journals: []DrainJournal{}}
	if s.cfg.DataDir == "" {
		return dz
	}
	entries, err := os.ReadDir(s.cfg.DataDir)
	if err != nil {
		return dz
	}
	byFP := make(map[string]*Job)
	s.mu.Lock()
	for _, j := range s.jobs {
		if j.Spec.Kind == KindSimulate && j.Spec.Simulate != nil {
			byFP[fmt.Sprintf("%016x", j.Spec.Simulate.Fingerprint())] = j
		}
	}
	s.mu.Unlock()
	for _, e := range entries {
		name := e.Name()
		fp, ok := strings.CutPrefix(name, "sim-")
		if !ok {
			continue
		}
		if fp, ok = strings.CutSuffix(fp, ".ckpt"); !ok || len(fp) != 16 {
			continue
		}
		dj := DrainJournal{Fingerprint: fp, File: name}
		if j, ok := byFP[fp]; ok {
			dj.JobID = j.ID
			dj.State = string(j.State())
		}
		dz.Journals = append(dz.Journals, dj)
	}
	sort.Slice(dz.Journals, func(i, k int) bool {
		return dz.Journals[i].Fingerprint < dz.Journals[k].Fingerprint
	})
	return dz
}

func (s *Server) handleDrainz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DrainzSnapshot())
}
