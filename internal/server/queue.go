package server

import (
	"errors"
	"sync"
)

// Admission control: a bounded FIFO with load shedding. The queue never
// grows past its capacity — an overloaded service answers "come back
// later" (HTTP 503 + Retry-After) instead of accumulating a backlog it
// can neither bound in memory nor finish before clients give up. Requeues
// of already-admitted jobs (watchdog kills) bypass the capacity check and
// jump the line: admitted work is finished before new work is started.

// ErrQueueFull is returned by push when the queue is at capacity — the
// load-shedding signal.
var ErrQueueFull = errors.New("server: job queue full")

// ErrQueueClosed is returned by push once the server is draining.
var ErrQueueClosed = errors.New("server: job queue closed")

// jobQueue is the bounded admission queue.
type jobQueue struct {
	mu       sync.Mutex
	cond     *sync.Cond
	items    []*Job
	capacity int
	closed   bool
}

// newJobQueue returns an empty queue holding at most capacity jobs.
func newJobQueue(capacity int) *jobQueue {
	if capacity <= 0 {
		capacity = 64
	}
	q := &jobQueue{capacity: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push admits a job, shedding with ErrQueueFull at capacity and
// ErrQueueClosed after close.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if len(q.items) >= q.capacity {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// requeue puts an already-admitted job at the head of the line, ignoring
// capacity: shedding applies at admission, not to supervision retries. A
// closed queue refuses (the drain path handles the job instead).
func (q *jobQueue) requeue(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	q.items = append([]*Job{j}, q.items...)
	q.cond.Signal()
	return nil
}

// pop blocks until a job is available or the queue is closed; nil means
// closed-and-drained, the worker-exit signal.
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil
	}
	j := q.items[0]
	q.items[0] = nil // release the popped slot: the backing array outlives the job
	q.items = q.items[1:]
	return j
}

// depth returns the number of queued jobs.
func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

// close stops admission and wakes blocked pops. Jobs still queued are
// returned so the drain path can cancel them.
func (q *jobQueue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	rest := q.items
	q.items = nil
	q.cond.Broadcast()
	return rest
}
