package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/faults"
)

// JobKind selects the workload a job runs.
type JobKind string

const (
	// KindSimulate runs the noisy-channel simulator over reference strands
	// and returns the clustered dataset.
	KindSimulate JobKind = "simulate"
	// KindRetrieve runs the resilient read path against a stored pool file
	// and returns the recovered object bytes.
	KindRetrieve JobKind = "retrieve"
)

// JobState is the lifecycle of a submitted job.
type JobState string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: executing on a worker.
	StateRunning JobState = "running"
	// StateDone: completed; the result is available.
	StateDone JobState = "done"
	// StateFailed: exhausted its attempts or hit a non-retryable error.
	StateFailed JobState = "failed"
	// StateCanceled: stopped by client request or abandoned at drain
	// without a journal.
	StateCanceled JobState = "canceled"
	// StateCheckpointed: interrupted by drain with its progress journaled;
	// resubmitting the same spec resumes from the journal.
	StateCheckpointed JobState = "checkpointed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateCheckpointed:
		return true
	}
	return false
}

// SimulateSpec parameterises a simulation job. References are either given
// inline or generated; everything is seeded, so the same spec always
// produces the same dataset — which is also what makes a drained job
// resumable: the spec hash names its checkpoint journal.
type SimulateSpec struct {
	// Refs are explicit reference strands; empty means generate NumRefs
	// random references of RefLen bases from the seed.
	Refs []string `json:"refs,omitempty"`
	// NumRefs and RefLen size the generated reference set when Refs is
	// empty.
	NumRefs int `json:"num_refs,omitempty"`
	RefLen  int `json:"ref_len,omitempty"`
	// Seed drives every stochastic choice.
	Seed uint64 `json:"seed"`
	// Sub, Ins, Del are the per-base channel error rates.
	Sub float64 `json:"sub,omitempty"`
	Ins float64 `json:"ins,omitempty"`
	Del float64 `json:"del,omitempty"`
	// Spatial is the error position distribution (uniform when empty).
	Spatial string `json:"spatial,omitempty"`
	// Stages is a multi-stage channel in the -stages DSL
	// (channel.ParseStages); mutually exclusive with Sub/Ins/Del/Spatial.
	// Pool stages (PCR skew, breakage) bind over the coverage model. The
	// raw string is part of the fingerprint, so identical stage specs
	// shard, cache and resume together across dnasimd and the fleet.
	Stages string `json:"stages,omitempty"`
	// Coverage is the reads-per-cluster target; CoverageModel picks the
	// sampler (fixed, negbin, poisson, normal; fixed when empty).
	Coverage      float64 `json:"coverage,omitempty"`
	CoverageModel string  `json:"coverage_model,omitempty"`
	// Faults is a fault-injection spec in the -faults DSL.
	Faults string `json:"faults,omitempty"`
	// ClusterFirst and ClusterCount select a cluster-range shard: only
	// clusters [ClusterFirst, ClusterFirst+ClusterCount) are simulated,
	// against the full reference set, with per-cluster RNGs derived from
	// global indices. A zero ClusterCount means the whole set. The fleet
	// coordinator splits a spec into such shards and merges the results
	// byte-identically; the range is part of the fingerprint, so each
	// shard gets its own checkpoint journal.
	ClusterFirst int `json:"cluster_first,omitempty"`
	ClusterCount int `json:"cluster_count,omitempty"`
}

// NumClusters is the total cluster count of the full (unsharded) spec.
func (sp *SimulateSpec) NumClusters() int {
	if len(sp.Refs) > 0 {
		return len(sp.Refs)
	}
	return sp.NumRefs
}

// ShardRange resolves the cluster range this spec covers: the explicit
// shard range when set, the whole set otherwise.
func (sp *SimulateSpec) ShardRange() (first, count int) {
	if sp.ClusterCount > 0 {
		return sp.ClusterFirst, sp.ClusterCount
	}
	return 0, sp.NumClusters()
}

// Validate checks the spec and applies defaults.
func (sp *SimulateSpec) Validate() error {
	if len(sp.Refs) == 0 {
		if sp.NumRefs <= 0 || sp.RefLen <= 0 {
			return errors.New("simulate spec needs refs or num_refs+ref_len")
		}
		if sp.NumRefs > 1<<20 || sp.RefLen > 1<<16 {
			return fmt.Errorf("simulate spec too large: %d refs of %d bases", sp.NumRefs, sp.RefLen)
		}
	}
	for _, r := range sp.Refs {
		if err := dna.Strand(r).Validate(); err != nil {
			return fmt.Errorf("invalid reference: %w", err)
		}
	}
	rates := channel.Rates{Sub: sp.Sub, Ins: sp.Ins, Del: sp.Del}
	if err := rates.Validate(); err != nil {
		return err
	}
	if sp.Stages != "" {
		if sp.Sub != 0 || sp.Ins != 0 || sp.Del != 0 || sp.Spatial != "" {
			return errors.New("stages is mutually exclusive with sub/ins/del/spatial")
		}
		if _, err := channel.ParseStages(sp.Stages); err != nil {
			return err
		}
	}
	if sp.Coverage <= 0 {
		sp.Coverage = 6
	}
	switch sp.CoverageModel {
	case "", "fixed", "negbin", "poisson", "normal":
	default:
		return fmt.Errorf("unknown coverage model %q", sp.CoverageModel)
	}
	if sp.Spatial != "" && sp.Spatial != "uniform" {
		if _, err := dist.ByName(sp.Spatial); err != nil {
			return err
		}
	}
	if _, err := faults.ParseSpec(sp.Faults); err != nil {
		return err
	}
	switch {
	case sp.ClusterFirst < 0 || sp.ClusterCount < 0:
		return fmt.Errorf("cluster range [%d, +%d) negative", sp.ClusterFirst, sp.ClusterCount)
	case sp.ClusterCount == 0 && sp.ClusterFirst > 0:
		return errors.New("cluster_first without cluster_count")
	case sp.ClusterCount > 0 && sp.ClusterFirst+sp.ClusterCount > sp.NumClusters():
		return fmt.Errorf("cluster range [%d, %d) outside [0, %d)",
			sp.ClusterFirst, sp.ClusterFirst+sp.ClusterCount, sp.NumClusters())
	}
	return nil
}

// References materialises the reference strands.
func (sp *SimulateSpec) References() []dna.Strand {
	if len(sp.Refs) > 0 {
		refs := make([]dna.Strand, len(sp.Refs))
		for i, r := range sp.Refs {
			refs[i] = dna.Strand(r)
		}
		return refs
	}
	// The reference seed is split from the read seed so reads and
	// references stay independent streams.
	return channel.RandomReferences(sp.NumRefs, sp.RefLen, sp.Seed^0xa5a5a5a5a5a5a5a5)
}

// Simulator builds the channel and coverage model the spec describes.
// Stage pipelines bind their pool stages over the coverage model before the
// fault injectors wrap both, so faults stay outermost — a dropout zeroes a
// cluster no matter what the pool stages said.
func (sp *SimulateSpec) Simulator() (channel.Channel, channel.CoverageModel, error) {
	var ch channel.Channel
	if sp.Stages != "" {
		stages, err := channel.ParseStages(sp.Stages)
		if err != nil {
			return nil, nil, err
		}
		ch = stages.Build("dnasimd-staged")
	} else {
		m := channel.NewNaive("dnasimd", channel.Rates{Sub: sp.Sub, Ins: sp.Ins, Del: sp.Del})
		ch = m
		if sp.Spatial != "" && sp.Spatial != "uniform" {
			spat, err := dist.ByName(sp.Spatial)
			if err != nil {
				return nil, nil, err
			}
			ch = m.WithSpatial(spat)
		}
	}
	var cov channel.CoverageModel
	switch sp.CoverageModel {
	case "", "fixed":
		cov = channel.FixedCoverage(int(sp.Coverage))
	case "negbin":
		cov = channel.NegBinCoverage{Mean: sp.Coverage, Dispersion: 2.5}
	case "poisson":
		cov = channel.PoissonCoverage(sp.Coverage)
	case "normal":
		cov = channel.NormalCoverage{Mean: sp.Coverage, SD: sp.Coverage / 3}
	default:
		return nil, nil, fmt.Errorf("unknown coverage model %q", sp.CoverageModel)
	}
	if pipe, ok := ch.(channel.Pipeline); ok {
		cov = pipe.BindCoverage(cov)
	}
	spec, err := faults.ParseSpec(sp.Faults)
	if err != nil {
		return nil, nil, err
	}
	ch, cov = spec.Wrap(ch, cov)
	return ch, cov, nil
}

// Fingerprint hashes the spec's canonical JSON. It names the checkpoint
// journal, so a resubmitted identical spec resumes where a drained run
// stopped.
func (sp *SimulateSpec) Fingerprint() uint64 {
	b, _ := json.Marshal(sp)
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// RetrieveSpec parameterises a retrieval job: the resilient read path of
// Pool.RetrieveAdaptive against a pool file on disk.
type RetrieveSpec struct {
	// PoolPath is the pool container file (read through the I/O breaker).
	PoolPath string `json:"pool_path"`
	// Key is the object to recover.
	Key string `json:"key"`
	// ErrorRate and Coverage configure the simulated sequencer.
	ErrorRate float64 `json:"error_rate,omitempty"`
	Coverage  float64 `json:"coverage,omitempty"`
	// Seed drives the sequencing run.
	Seed uint64 `json:"seed"`
	// Retries and Backoff bound the adaptive re-sequencing loop.
	Retries int     `json:"retries,omitempty"`
	Backoff float64 `json:"backoff,omitempty"`
	// Faults is a fault-injection spec in the -faults DSL.
	Faults string `json:"faults,omitempty"`
}

// Validate checks the spec and applies defaults.
func (sp *RetrieveSpec) Validate() error {
	if sp.PoolPath == "" || sp.Key == "" {
		return errors.New("retrieve spec needs pool_path and key")
	}
	if sp.ErrorRate < 0 || sp.ErrorRate > 1 {
		return fmt.Errorf("error_rate %v out of [0,1]", sp.ErrorRate)
	}
	if sp.Coverage <= 0 {
		sp.Coverage = 14
	}
	if sp.Retries < 0 {
		return fmt.Errorf("retries %d negative", sp.Retries)
	}
	if _, err := faults.ParseSpec(sp.Faults); err != nil {
		return err
	}
	return nil
}

// JobSpec is the submission payload: one kind plus its parameters and an
// optional per-job deadline.
type JobSpec struct {
	Kind JobKind `json:"kind"`
	// TimeoutMS bounds the job's execution (0 means the server default).
	// The deadline flows into SimulateCtx / RetrieveAdaptive as a context
	// deadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// DeadlineUnixMS is an absolute client-supplied deadline (Unix
	// milliseconds). Unlike TimeoutMS — which starts counting when an
	// attempt starts — the deadline covers queueing and retries too: a
	// submission whose deadline has already passed is rejected at
	// admission (the client is gone; queueing it would waste a slot), and
	// a queued job whose deadline expires before a worker reaches it
	// fails fast instead of executing for nobody.
	DeadlineUnixMS int64         `json:"deadline_unix_ms,omitempty"`
	Simulate       *SimulateSpec `json:"simulate,omitempty"`
	Retrieve       *RetrieveSpec `json:"retrieve,omitempty"`
}

// Deadline returns the absolute deadline, or zero time when unset.
func (s *JobSpec) Deadline() time.Time {
	if s.DeadlineUnixMS <= 0 {
		return time.Time{}
	}
	return time.UnixMilli(s.DeadlineUnixMS)
}

// Fingerprint hashes the whole spec's canonical JSON — the identity used
// for idempotent resubmission: a client retrying a submit whose response
// it lost sends the same fingerprint and gets the same job back.
func (s *JobSpec) Fingerprint() uint64 {
	b, _ := json.Marshal(s)
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// Validate checks kind/params consistency.
func (s *JobSpec) Validate() error {
	if s.TimeoutMS < 0 {
		return errors.New("timeout_ms negative")
	}
	if s.DeadlineUnixMS < 0 {
		return errors.New("deadline_unix_ms negative")
	}
	switch s.Kind {
	case KindSimulate:
		if s.Simulate == nil || s.Retrieve != nil {
			return errors.New("simulate job needs exactly the simulate params")
		}
		return s.Simulate.Validate()
	case KindRetrieve:
		if s.Retrieve == nil || s.Simulate != nil {
			return errors.New("retrieve job needs exactly the retrieve params")
		}
		return s.Retrieve.Validate()
	}
	return fmt.Errorf("unknown job kind %q", s.Kind)
}

// Progress is a jobs's cluster-completion counter.
type Progress struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// Job is one admitted unit of work. Mutable state is guarded by mu; the
// progress stamp is atomic because simulation workers hit it concurrently.
type Job struct {
	// ID is the server-assigned handle.
	ID string
	// Spec is the validated submission.
	Spec JobSpec
	// created stamps admission; job latency metrics measure from here.
	created time.Time

	mu       sync.Mutex
	state    JobState
	attempts int
	err      error
	result   []byte
	progress Progress
	// cancel stops the current execution attempt with a cause; nil while
	// not running.
	cancel func(cause error)
	// ckpt is the simulation job's open journal handle, shared across
	// attempts so an abandoned attempt and its requeue never hold two
	// handles on the same file.
	ckpt *channel.Checkpoint
	// done is closed when the job reaches a terminal state.
	done chan struct{}

	// lastProgress is the unix-nano timestamp of the last observed cluster
	// completion (or attempt start); the watchdog compares it to now.
	lastProgress atomic.Int64
}

// newJob returns a queued job.
func newJob(id string, spec JobSpec) *Job {
	j := &Job{ID: id, Spec: spec, created: time.Now(), state: StateQueued, done: make(chan struct{})}
	j.touch()
	return j
}

// touch stamps progress now; called at attempt start and per cluster.
func (j *Job) touch() { j.lastProgress.Store(time.Now().UnixNano()) }

// sinceProgress returns the time since the last progress stamp.
func (j *Job) sinceProgress() time.Duration {
	return time.Duration(time.Now().UnixNano() - j.lastProgress.Load())
}

// setProgress records cluster completion counts (and stamps the watchdog
// clock). Safe for concurrent use.
func (j *Job) setProgress(completed, total int) {
	j.touch()
	j.mu.Lock()
	if completed > j.progress.Completed || total != j.progress.Total {
		j.progress = Progress{Completed: completed, Total: total}
	}
	j.mu.Unlock()
}

// State returns the current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Attempts returns how many execution attempts have started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the job's output once done.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone {
		return nil, false
	}
	return j.result, true
}

// finish moves the job to a terminal state exactly once; it reports
// whether this call performed the transition (false when the job was
// already terminal), so callers can attach one-shot side effects such as
// metrics without double counting.
func (j *Job) finish(state JobState, result []byte, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.finishLocked(state, result, err)
}

// finishLocked is finish for callers already holding j.mu.
func (j *Job) finishLocked(state JobState, result []byte, err error) bool {
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	j.err = err
	j.cancel = nil
	close(j.done)
	return true
}

// Status is the JSON snapshot the HTTP API serves.
type Status struct {
	ID       string   `json:"id"`
	Kind     JobKind  `json:"kind"`
	State    JobState `json:"state"`
	Attempts int      `json:"attempts"`
	Progress Progress `json:"progress"`
	Error    string   `json:"error,omitempty"`
	// Resumable marks a checkpointed job whose journal survives:
	// resubmitting the same spec continues it.
	Resumable bool `json:"resumable,omitempty"`
}

// Snapshot returns the job's current status.
func (j *Job) Snapshot() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:       j.ID,
		Kind:     j.Spec.Kind,
		State:    j.state,
		Attempts: j.attempts,
		Progress: j.progress,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	st.Resumable = j.state == StateCheckpointed
	return st
}
