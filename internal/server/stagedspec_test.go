package server

import (
	"bytes"
	"strings"
	"testing"

	"dnastore/internal/channel"
)

const drillStages = "synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew"

func TestSimulateSpecStagesValidate(t *testing.T) {
	good := SimulateSpec{NumRefs: 4, RefLen: 40, Stages: drillStages}
	if err := good.Validate(); err != nil {
		t.Fatalf("staged spec rejected: %v", err)
	}
	for name, sp := range map[string]SimulateSpec{
		"bad stage":           {NumRefs: 4, RefLen: 40, Stages: "warp=0.1"},
		"stages plus rates":   {NumRefs: 4, RefLen: 40, Stages: drillStages, Sub: 0.01},
		"stages plus spatial": {NumRefs: 4, RefLen: 40, Stages: drillStages, Spatial: "v-shape"},
	} {
		sp := sp
		if err := sp.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestSimulateSpecStagesSimulator: a staged spec builds the pipeline with
// its pool stages bound over the coverage model, and the result matches
// building the same pipeline by hand — the server path adds nothing.
func TestSimulateSpecStagesSimulator(t *testing.T) {
	sp := SimulateSpec{NumRefs: 12, RefLen: 60, Seed: 9, Stages: drillStages,
		Coverage: 8, CoverageModel: "negbin"}
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	ch, cov, err := sp.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cov.Name(), "+pool(") {
		t.Errorf("pool stages not bound over coverage: %q", cov.Name())
	}

	got := sequentialResult(t, &sp)

	list, err := channel.ParseStages(drillStages)
	if err != nil {
		t.Fatal(err)
	}
	pipe := list.Build(ch.Name())
	sim := channel.Simulator{
		Channel:  pipe,
		Coverage: pipe.BindCoverage(channel.NegBinCoverage{Mean: 8, Dispersion: 2.5}),
	}
	ds := sim.Simulate("simulated", sp.References(), sp.Seed)
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf.Bytes()) {
		t.Error("staged spec result differs from hand-built pipeline")
	}
}

// TestSimulateSpecStagesFingerprint: adding stages changes the
// fingerprint; leaving them empty keeps it byte-compatible with specs from
// before the field existed (omitempty), so old journals stay resumable.
func TestSimulateSpecStagesFingerprint(t *testing.T) {
	plain := SimulateSpec{NumRefs: 4, RefLen: 40, Seed: 1, Sub: 0.01}
	staged := SimulateSpec{NumRefs: 4, RefLen: 40, Seed: 1, Stages: drillStages}
	if plain.Fingerprint() == staged.Fingerprint() {
		t.Error("staged spec shares a fingerprint with the plain spec")
	}
	again := SimulateSpec{NumRefs: 4, RefLen: 40, Seed: 1, Stages: drillStages}
	if staged.Fingerprint() != again.Fingerprint() {
		t.Error("identical staged specs fingerprint differently")
	}
}
