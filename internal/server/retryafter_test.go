package server

import (
	"net/http/httptest"
	"strconv"
	"testing"
	"time"
)

// retryAfterFixture builds just enough of a Server to exercise retryAfter
// without spinning up workers.
func retryAfterFixture(t *testing.T, est time.Duration, workers, backlog int) *Server {
	t.Helper()
	s := &Server{
		cfg:   Config{EstimatedJobTime: est, Workers: workers},
		phase: PhaseServing,
		queue: newJobQueue(backlog + 1),
		dog:   newWatchdog(time.Hour, -1, nil),
	}
	t.Cleanup(s.dog.close)
	for i := 0; i < backlog; i++ {
		if err := s.queue.push(&Job{ID: "queued"}); err != nil {
			t.Fatalf("push: %v", err)
		}
	}
	return s
}

// TestRetryAfterIsValidDeltaSeconds covers the RFC 9110 contract: the value
// is a positive integer number of seconds — a sub-second or zero estimate
// must not surface as 0 (which tells clients "retry immediately", defeating
// the shed), and an absurd estimate is capped rather than converted through
// an out-of-range float→int.
func TestRetryAfterIsValidDeltaSeconds(t *testing.T) {
	cases := []struct {
		name    string
		est     time.Duration
		workers int
		backlog int
		want    int
	}{
		{"sub-second estimate clamps to 1", 10 * time.Millisecond, 4, 0, 1},
		{"zero backlog sub-second", 900 * time.Millisecond, 1, 0, 1},
		{"fractional rounds up", 1250 * time.Millisecond, 1, 0, 2},
		{"backlog scales estimate", 2 * time.Second, 2, 3, 4},
		{"zero workers treated as one", time.Second, 0, 1, 2},
		{"absurd estimate caps at one hour", 1 << 62, 1, 8, maxRetryAfterSeconds},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := retryAfterFixture(t, tc.est, tc.workers, tc.backlog)
			got := s.retryAfter()
			if got != tc.want {
				t.Fatalf("retryAfter() = %d, want %d", got, tc.want)
			}
			if got < 1 {
				t.Fatalf("retryAfter() = %d, violates delta-seconds >= 1", got)
			}
		})
	}
}

// TestShedHeaderParsesAsInteger asserts the header a shed client actually
// sees: present, parseable with strconv.Atoi (no fractional seconds, no
// HTTP-date), and at least 1 — even when EstimatedJobTime is far below a
// second.
func TestShedHeaderParsesAsInteger(t *testing.T) {
	s := New(Config{
		Workers:          1,
		QueueCapacity:    1,
		EstimatedJobTime: 5 * time.Millisecond,
		StallAfter:       -1,
	})
	defer s.Drain()

	w := httptest.NewRecorder()
	s.shed(w, "queue full")

	if w.Code != 503 {
		t.Fatalf("shed status = %d, want 503", w.Code)
	}
	h := w.Header().Get("Retry-After")
	if h == "" {
		t.Fatal("shed response missing Retry-After header")
	}
	sec, err := strconv.Atoi(h)
	if err != nil {
		t.Fatalf("Retry-After %q is not an integer: %v", h, err)
	}
	if sec < 1 {
		t.Fatalf("Retry-After = %d, want >= 1", sec)
	}
	if got := s.Registry().Snapshot()[`dnasimd_jobs_shed_total{reason="queue_full"}`]; got != 1 {
		t.Fatalf("shed counter = %v, want 1", got)
	}
}
