package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock drives the breaker deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	c := &fakeClock{t: time.Unix(1000, 0)}
	b.now = c.now
	return b, c
}

var errIO = errors.New("disk exploded")

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	fail := func() error { return errIO }
	for i := 0; i < 3; i++ {
		if err := b.Do(fail); !errors.Is(err, errIO) {
			t.Fatalf("call %d: err = %v, want passthrough", i, err)
		}
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold = %v, want open", st)
	}
	// Open: calls are shed without running f.
	ran := false
	err := b.Do(func() error { ran = true; return nil })
	if !errors.Is(err, ErrBreakerOpen) {
		t.Errorf("open breaker err = %v, want ErrBreakerOpen", err)
	}
	if ran {
		t.Error("open breaker ran the function")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Do(func() error { return errIO })
	b.Do(func() error { return errIO })
	b.Do(func() error { return nil }) // resets
	b.Do(func() error { return errIO })
	b.Do(func() error { return errIO })
	if st := b.State(); st != BreakerClosed {
		t.Errorf("state = %v, want closed: success must reset the streak", st)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clock := newTestBreaker(2, time.Second)
	b.Do(func() error { return errIO })
	b.Do(func() error { return errIO })
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state = %v, want open", st)
	}

	// Failed probe after cooldown re-opens and restarts the cooldown.
	clock.advance(time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", st)
	}
	if err := b.Do(func() error { return errIO }); !errors.Is(err, errIO) {
		t.Fatalf("probe err = %v", err)
	}
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open again", st)
	}
	if err := b.Do(func() error { return nil }); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("call during restarted cooldown = %v, want ErrBreakerOpen", err)
	}

	// Successful probe closes.
	clock.advance(time.Second)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("successful probe err = %v", err)
	}
	if st := b.State(); st != BreakerClosed {
		t.Errorf("state after successful probe = %v, want closed", st)
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Errorf("closed breaker sheds: %v", err)
	}
}

func TestBreakerHalfOpenAdmitsOneProbe(t *testing.T) {
	b, clock := newTestBreaker(1, time.Second)
	b.Do(func() error { return errIO })
	clock.advance(time.Second)
	// First allow becomes the probe; a second concurrent call is shed.
	if err := b.allow(); err != nil {
		t.Fatalf("probe not admitted: %v", err)
	}
	if err := b.allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.record(nil)
	if st := b.State(); st != BreakerClosed {
		t.Errorf("state = %v, want closed", st)
	}
}

// TestBreakerHalfOpenConcurrentProbes hammers the half-open window: many
// goroutines race Do the instant the cooldown elapses. Exactly one may
// execute as the probe; every loser must be shed with ErrBreakerOpen
// immediately — not block waiting for the probe's verdict — because a shed
// caller fails fast while a queued one would re-create the pile-up the
// breaker exists to prevent.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	for _, probeFails := range []bool{false, true} {
		name := "probe-succeeds"
		if probeFails {
			name = "probe-fails"
		}
		t.Run(name, func(t *testing.T) {
			b, clock := newTestBreaker(1, time.Second)
			b.Do(func() error { return errIO })
			if st := b.State(); st != BreakerOpen {
				t.Fatalf("state = %v, want open", st)
			}
			clock.advance(time.Second)

			const n = 32
			var (
				executed atomic.Int64
				shed     atomic.Int64
				start    = make(chan struct{})
				hold     = make(chan struct{})
				wg       sync.WaitGroup
			)
			wg.Add(n)
			for i := 0; i < n; i++ {
				go func() {
					defer wg.Done()
					<-start
					err := b.Do(func() error {
						executed.Add(1)
						<-hold // keep the probe in flight while the losers arrive
						if probeFails {
							return errIO
						}
						return nil
					})
					if errors.Is(err, ErrBreakerOpen) {
						shed.Add(1)
					}
				}()
			}
			close(start)
			// Let every goroutine reach its Do call and settle: with the
			// probe parked on hold, the losers must all have been shed
			// already. A short sleep is the only way to assert "did not
			// block".
			time.Sleep(100 * time.Millisecond)
			if got := shed.Load(); got != n-1 {
				t.Errorf("shed %d of %d callers before the probe settled, want %d (losers must fail fast, not queue)",
					got, n, n-1)
			}
			close(hold)
			wg.Wait()

			if got := executed.Load(); got != 1 {
				t.Fatalf("%d probes executed, want exactly 1", got)
			}
			want := BreakerClosed
			if probeFails {
				want = BreakerOpen
			}
			if st := b.State(); st != want {
				t.Errorf("state after %s = %v, want %v", name, st, want)
			}
		})
	}
}

func TestBreakerPanicCountsAsFailure(t *testing.T) {
	b, _ := newTestBreaker(1, time.Minute)
	func() {
		defer func() { recover() }()
		b.Do(func() error { panic("boom") })
	}()
	if st := b.State(); st != BreakerOpen {
		t.Errorf("state after panic = %v, want open", st)
	}
}
