package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/faults"
	"dnastore/internal/obs"
	"dnastore/internal/store"
)

// The worker pool. Each worker pops admitted jobs and runs them under full
// supervision: a per-attempt cancellable context carrying the deadline and
// the progress hook, panic isolation (both the per-cluster isolation
// inside SimulateCtx and a top-level recover for everything else), and the
// cancel-and-abandon protocol for attempts the watchdog kills. Simulation
// jobs execute through the per-cluster split-RNG scheme, so a job's output
// is byte-identical regardless of worker count, stall kills, or requeue
// history.

// errCanceledByClient is the cancellation cause for DELETE /v1/jobs/{id}.
var errCanceledByClient = errors.New("server: job canceled by client")

// errDraining is the cancellation cause used during graceful drain.
var errDraining = errors.New("server: draining")

// jobOutcome is what one execution attempt produced.
type jobOutcome struct {
	result []byte
	err    error
}

// worker loops until the queue closes and drains.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j := s.queue.pop()
		if j == nil {
			return
		}
		if j.State().Terminal() {
			// Canceled while queued; nothing to run.
			continue
		}
		s.runJob(j)
	}
}

// runJob executes one attempt of j and settles its fate: terminal state,
// or a requeue for another attempt.
func (s *Server) runJob(j *Job) {
	// The attempt context: cancellable with a cause (watchdog kill, client
	// cancel, drain), bounded by the per-job or server-default deadline,
	// and carrying the progress hook that feeds both the status endpoint
	// and the watchdog.
	base, cancel := context.WithCancelCause(context.Background())
	timeout := time.Duration(j.Spec.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultJobTimeout
	}
	// A client-supplied absolute deadline covers queueing too: a job whose
	// deadline expired while it waited fails fast instead of executing for
	// a client that has already given up, and otherwise tightens the
	// attempt timeout to the time actually remaining.
	if ddl := j.Spec.Deadline(); !ddl.IsZero() {
		remaining := time.Until(ddl)
		if remaining <= 0 {
			cancel(nil)
			s.finishJob(j, StateFailed, nil, fmt.Errorf("server: job deadline expired while queued: %w", context.DeadlineExceeded))
			return
		}
		if timeout <= 0 || remaining < timeout {
			timeout = remaining
		}
	}
	ctx := base
	var cancelTimeout context.CancelFunc = func() {}
	if timeout > 0 {
		ctx, cancelTimeout = context.WithTimeout(base, timeout)
	}
	defer cancelTimeout()
	ctx = channel.WithProgress(ctx, j.setProgress)
	// The stage timer collects per-stage wall time and throughput from
	// every instrumented layer the attempt passes through (channel
	// simulation, pool sequencing, decode); it feeds the per-stage
	// histograms and the attempt's debug log after settling.
	stages := obs.NewStageTimer()
	ctx = obs.WithTimer(ctx, stages)

	// Transition to running and expose the cancel hook in one critical
	// section: a client cancel that raced the pop either already parked
	// the job (seen here as terminal) or will find j.cancel set.
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		cancel(nil)
		return
	}
	j.state = StateRunning
	j.attempts++
	attempt := j.attempts
	j.cancel = cancel
	j.mu.Unlock()
	j.touch()
	s.dog.watch(j)
	defer s.dog.unwatch(j)
	defer cancel(nil)

	// Execute in a child goroutine so a wedged attempt can be abandoned:
	// Go cannot preempt a stuck goroutine, so after a kill the worker
	// waits a short grace for voluntary exit (SimulateCtx yields between
	// clusters) and then walks away. The buffered channel lets the
	// abandoned goroutine finish without leaking.
	resCh := make(chan jobOutcome, 1)
	attemptStart := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				resCh <- jobOutcome{err: fmt.Errorf("server: job panic: %v", p)}
			}
		}()
		resCh <- s.execute(ctx, j)
	}()

	var out jobOutcome
	abandoned := false
	select {
	case out = <-resCh:
	case <-ctx.Done():
		select {
		case out = <-resCh:
		case <-time.After(s.cfg.KillGrace):
			abandoned = true
			out = jobOutcome{err: fmt.Errorf("server: attempt %d abandoned: %w", attempt, context.Cause(ctx))}
		}
	}
	s.metrics.attemptSecs.Observe(time.Since(attemptStart).Seconds())
	s.metrics.observeStages(stages.Snapshot())
	if summary := stages.Summary(); summary != "" {
		s.slog.Debug("attempt stages", "job", j.ID, "attempt", attempt, "stages", summary)
	}
	s.settle(j, ctx, out, abandoned)
}

// settle maps an attempt's outcome (and the cancellation cause, if any)
// onto the job lifecycle: done, failed, canceled, checkpointed, or
// requeued for another attempt.
func (s *Server) settle(j *Job, ctx context.Context, out jobOutcome, abandoned bool) {
	cause := context.Cause(ctx)
	switch {
	case out.err == nil:
		s.closeJobCheckpoint(j, true)
		s.finishJob(j, StateDone, out.result, nil)
		return

	case errors.Is(cause, errCanceledByClient) || errors.Is(out.err, errCanceledByClient):
		s.closeJobCheckpoint(j, false)
		s.finishJob(j, StateCanceled, nil, errCanceledByClient)
		return

	case errors.Is(cause, errDraining) || errors.Is(out.err, errDraining):
		// Drain interrupted the attempt. With a journal the progress is
		// durable and the job is resumable; without one it is canceled.
		if s.jobCheckpointPath(j) != "" && !abandoned {
			s.closeJobCheckpoint(j, false)
			s.finishJob(j, StateCheckpointed, nil, errDraining)
		} else {
			s.closeJobCheckpoint(j, false)
			s.finishJob(j, StateCanceled, nil, errDraining)
		}
		return

	case errors.Is(cause, context.DeadlineExceeded) || errors.Is(out.err, context.DeadlineExceeded):
		// Re-running would meet the same deadline; fail now.
		s.closeJobCheckpoint(j, false)
		s.finishJob(j, StateFailed, nil, fmt.Errorf("server: job deadline exceeded: %w", out.err))
		return

	case errors.Is(cause, ErrStalled):
		s.logf("job %s attempt stalled: %v", j.ID, out.err)
		s.retryOrFail(j, fmt.Errorf("stalled: %w", cause))
		return

	case errors.Is(out.err, ErrBreakerOpen):
		// The I/O dependency is known-bad; failing fast is the point.
		s.finishJob(j, StateFailed, nil, out.err)
		return

	default:
		// Per-cluster panics, decode exhaustion, pool I/O errors: retry up
		// to the attempt cap — transient faults (injected or real) clear,
		// and the split-RNG scheme makes the retry deterministic.
		s.retryOrFail(j, out.err)
		return
	}
}

// retryOrFail requeues the job for another supervised attempt, or fails it
// at the attempt cap. During drain the queue refuses; a checkpointed job
// then parks as resumable, anything else is canceled.
func (s *Server) retryOrFail(j *Job, attemptErr error) {
	j.mu.Lock()
	attempts := j.attempts
	j.err = attemptErr // visible in status while requeued
	j.mu.Unlock()
	if attempts >= s.cfg.MaxAttempts {
		s.closeJobCheckpoint(j, false)
		s.finishJob(j, StateFailed, nil, fmt.Errorf("server: %d attempts exhausted, last: %w", attempts, attemptErr))
		return
	}
	j.mu.Lock()
	j.state = StateQueued
	j.cancel = nil
	j.mu.Unlock()
	j.touch()
	if err := s.queue.requeue(j); err != nil {
		if s.jobCheckpointPath(j) != "" {
			s.closeJobCheckpoint(j, false)
			s.finishJob(j, StateCheckpointed, nil, errDraining)
		} else {
			s.closeJobCheckpoint(j, false)
			s.finishJob(j, StateCanceled, nil, errDraining)
		}
		return
	}
	s.metrics.requeues.Inc()
	s.logf("job %s requeued after attempt %d: %v", j.ID, attempts, attemptErr)
}

// execute dispatches one attempt by kind.
func (s *Server) execute(ctx context.Context, j *Job) jobOutcome {
	switch j.Spec.Kind {
	case KindSimulate:
		return s.executeSimulate(ctx, j)
	case KindRetrieve:
		return s.executeRetrieve(ctx, j)
	}
	return jobOutcome{err: fmt.Errorf("server: unknown job kind %q", j.Spec.Kind)}
}

// jobCheckpointPath returns the journal path for a simulate job, "" when
// checkpointing is off (no data dir) or the job is not a simulation. The
// path derives from the spec fingerprint, not the job ID, so resubmitting
// an identical spec — after a drain, or from a fresh server on the same
// data dir — resumes the journal.
func (s *Server) jobCheckpointPath(j *Job) string {
	if s.cfg.DataDir == "" || j.Spec.Kind != KindSimulate {
		return ""
	}
	return filepath.Join(s.cfg.DataDir, fmt.Sprintf("sim-%016x.ckpt", j.Spec.Simulate.Fingerprint()))
}

// closeJobCheckpoint closes the job's journal handle if open; when the job
// completed, the journal has served its purpose and is removed.
func (s *Server) closeJobCheckpoint(j *Job, completed bool) {
	j.mu.Lock()
	ckpt := j.ckpt
	j.ckpt = nil
	j.mu.Unlock()
	if ckpt == nil {
		return
	}
	ckpt.Close()
	if completed {
		if path := s.jobCheckpointPath(j); path != "" {
			if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
				s.logf("job %s: removing checkpoint: %v", j.ID, err)
			}
		}
	}
}

// executeSimulate runs one attempt of a simulation job.
func (s *Server) executeSimulate(ctx context.Context, j *Job) jobOutcome {
	spec := j.Spec.Simulate
	ch, cov, err := spec.Simulator()
	if err != nil {
		return jobOutcome{err: err}
	}
	// The journal identity comes from the spec's simulator, before any
	// WrapSimulation injector: drill wrappers change the channel's name but
	// not its output, and must not invalidate (or be required to reopen) a
	// checkpoint written by an unwrapped run.
	desc := channel.Simulator{Channel: ch, Coverage: cov}.Describe()
	if s.cfg.WrapSimulation != nil {
		ch, cov = s.cfg.WrapSimulation(ch, cov)
	}
	refs := spec.References()
	first, count := spec.ShardRange()
	sim := channel.Simulator{Channel: ch, Coverage: cov}

	// One journal handle lives on the job across attempts: an abandoned
	// attempt's goroutine may still commit to it, which is safe (the
	// journal locks, and committed clusters are deterministic) and avoids
	// two handles truncating the same file.
	j.mu.Lock()
	ckpt := j.ckpt
	j.mu.Unlock()
	path := s.jobCheckpointPath(j)
	if path != "" && ckpt == nil {
		// Journal open is disk I/O: it goes through the breaker so a dead
		// data dir trips fast instead of stalling every attempt.
		err := s.breaker.Do(func() error {
			var oerr error
			ckpt, oerr = channel.OpenCheckpoint(path, "simulated", refs, spec.Seed, desc)
			return oerr
		})
		if err != nil {
			return jobOutcome{err: fmt.Errorf("open checkpoint: %w", err)}
		}
		j.mu.Lock()
		j.ckpt = ckpt
		j.mu.Unlock()
		if n := ckpt.Completed(); n > 0 {
			s.logf("job %s resuming: %d/%d clusters journaled", j.ID, n, count)
			j.setProgress(n, count)
		}
	}

	var (
		ds     *dataset.Dataset
		simErr error
	)
	if ckpt != nil {
		ds, simErr = sim.SimulateRangeCheckpoint(ctx, "simulated", refs, spec.Seed, first, count, ckpt)
	} else {
		ds, simErr = sim.SimulateRangeCtx(ctx, "simulated", refs, spec.Seed, first, count)
	}
	if simErr != nil {
		var se *channel.SimulationError
		if errors.As(simErr, &se) && se.Canceled != nil {
			// Interrupted: surface the cancellation for settle to map.
			return jobOutcome{err: fmt.Errorf("%w (cause: %w)", se.Canceled, context.Cause(ctx))}
		}
		return jobOutcome{err: simErr}
	}
	var out bytes.Buffer
	if err := ds.Write(&out); err != nil {
		return jobOutcome{err: err}
	}
	return jobOutcome{result: out.Bytes()}
}

// executeRetrieve runs one attempt of a retrieval job: pool load through
// the I/O breaker, then the adaptive read path.
func (s *Server) executeRetrieve(ctx context.Context, j *Job) jobOutcome {
	spec := j.Spec.Retrieve
	var pool *store.Pool
	err := s.breaker.Do(func() error {
		p, _, lerr := store.LoadFile(spec.PoolPath)
		pool = p
		return lerr
	})
	if err != nil {
		return jobOutcome{err: fmt.Errorf("load pool: %w", err)}
	}
	fspec, err := faults.ParseSpec(spec.Faults)
	if err != nil {
		return jobOutcome{err: err}
	}
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		m := channel.NewNaive("sequencer", channel.NanoporeMix(spec.ErrorRate))
		return fspec.Wrap(m, channel.NegBinCoverage{Mean: spec.Coverage * scale, Dispersion: 6})
	}
	pol := store.RetryPolicy{MaxAttempts: spec.Retries + 1, Backoff: spec.Backoff}
	data, _, _, err := pool.RetrieveAdaptive(ctx, spec.Key, factory, pol, spec.Seed)
	if err != nil {
		return jobOutcome{err: err}
	}
	return jobOutcome{result: data}
}
