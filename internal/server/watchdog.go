package server

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrStalled is the cancellation cause the watchdog uses to kill a job
// that stopped making cluster progress. The worker maps it to a requeue
// (bounded by the attempt cap) rather than a failure: a stall is usually
// environmental and transient, so the job deserves another worker.
var ErrStalled = errors.New("server: job stalled (no cluster progress)")

// watchdog supervises running jobs. Every interval it scans them; a job
// whose last progress stamp — updated per completed cluster through the
// channel.WithProgress hook — is older than stallAfter gets its context
// canceled with ErrStalled. Go cannot preempt a truly stuck goroutine, so
// "kill" means cancel-and-abandon: the worker stops waiting, requeues the
// job, and the stuck goroutine unwinds (or not) on its own without
// touching anything the new attempt depends on.
type watchdog struct {
	interval   time.Duration
	stallAfter time.Duration
	// onKill, when set, observes every stall kill the watchdog performs
	// (metrics and logging). Fixed at construction — the scan goroutine
	// starts inside newWatchdog, so a later assignment would race — and
	// called without holding w.mu.
	onKill func(*Job)

	mu      sync.Mutex
	running map[string]*Job
	stop    chan struct{}
	done    chan struct{}
}

// newWatchdog starts the scan loop. A non-positive stallAfter disables
// stall detection (the watchdog still tracks jobs for observability).
func newWatchdog(interval, stallAfter time.Duration, onKill func(*Job)) *watchdog {
	if interval <= 0 {
		interval = time.Second
	}
	w := &watchdog{
		interval:   interval,
		stallAfter: stallAfter,
		onKill:     onKill,
		running:    make(map[string]*Job),
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
	}
	go w.loop()
	return w
}

// watch registers a job for supervision for the duration of one attempt.
func (w *watchdog) watch(j *Job) {
	w.mu.Lock()
	w.running[j.ID] = j
	w.mu.Unlock()
}

// unwatch removes a job after its attempt ends.
func (w *watchdog) unwatch(j *Job) {
	w.mu.Lock()
	delete(w.running, j.ID)
	w.mu.Unlock()
}

// runningCount returns how many jobs are under supervision.
func (w *watchdog) runningCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.running)
}

// loop scans for stalls until closed.
func (w *watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			if w.stallAfter <= 0 {
				continue
			}
			w.mu.Lock()
			var stalled []*Job
			for _, j := range w.running {
				if j.sinceProgress() > w.stallAfter {
					stalled = append(stalled, j)
				}
			}
			w.mu.Unlock()
			for _, j := range stalled {
				j.mu.Lock()
				cancel := j.cancel
				j.mu.Unlock()
				if cancel != nil {
					cancel(fmt.Errorf("%w after %s", ErrStalled, w.stallAfter))
					if w.onKill != nil {
						w.onKill(j)
					}
				}
			}
		}
	}
}

// close stops the scan loop and waits for it to exit.
func (w *watchdog) close() {
	close(w.stop)
	<-w.done
}
