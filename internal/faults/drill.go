package faults

import (
	"fmt"
	"sync/atomic"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Process-level drill injectors. Unlike the channel/coverage injectors in
// faults.go — which draw from the per-cluster RNG and therefore recur
// identically on every retry — these model *transient* runtime failures:
// a worker that panics a few times and then behaves, a read that hangs
// until an operator intervenes, a channel that is merely slow. They keep
// their state in shared atomic counters and never consume RNG draws, so a
// retry after the fault window closes reproduces the fault-free output
// byte for byte. That property is what lets the dnasimd chaos drill
// assert "supervised retries converge to the sequential result".

// FlakyPanic panics inside Transmit while *Remaining is positive
// (decrementing it per call), then delegates untouched. SimulateCtx
// confines each panic to its cluster, so the first few clusters fail,
// the supervisor retries the job, and the retry — the fault budget now
// spent — regenerates every cluster identically to an undisturbed run.
type FlakyPanic struct {
	// Base produces reads once the fault budget is spent.
	Base channel.Channel
	// Remaining is the shared number of Transmit calls left to sabotage.
	Remaining *atomic.Int64
}

// Transmit implements channel.Channel.
func (f FlakyPanic) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if f.Remaining.Add(-1) >= 0 {
		panic("faults: injected transient panic")
	}
	return f.Base.Transmit(ref, r)
}

// Name implements channel.Channel.
func (f FlakyPanic) Name() string { return f.Base.Name() + "+flakypanic" }

// Stall blocks Transmit on Release while *Remaining is positive
// (decrementing per call), modelling a hung I/O dependency: the goroutine
// makes no progress and cannot be preempted, exactly the failure a stall
// watchdog exists to catch. The test closes Release to let the abandoned
// goroutine unwind. No RNG state is consumed while blocked, so a
// requeued attempt is byte-identical to an unstalled run.
type Stall struct {
	// Base produces the read once the stall window has passed.
	Base channel.Channel
	// Release unblocks every stalled call when closed.
	Release <-chan struct{}
	// Remaining is the shared number of Transmit calls left to stall.
	Remaining *atomic.Int64
}

// Transmit implements channel.Channel.
func (s Stall) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if s.Remaining.Add(-1) >= 0 {
		<-s.Release
	}
	return s.Base.Transmit(ref, r)
}

// Name implements channel.Channel.
func (s Stall) Name() string { return s.Base.Name() + "+stall" }

// SlowChannel sleeps Delay before every Transmit — a healthy but slow
// channel, used by drain drills that need a job to still be mid-flight
// when the shutdown signal lands. Output is byte-identical to Base.
type SlowChannel struct {
	// Base produces the read.
	Base channel.Channel
	// Delay is the per-read latency.
	Delay time.Duration
}

// Transmit implements channel.Channel.
func (s SlowChannel) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	time.Sleep(s.Delay)
	return s.Base.Transmit(ref, r)
}

// Name implements channel.Channel.
func (s SlowChannel) Name() string {
	return fmt.Sprintf("%s+slow(%s)", s.Base.Name(), s.Delay)
}
