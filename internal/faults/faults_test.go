package faults

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/rng"
)

// faultySimulator builds a simulator with every injector layered on, for
// determinism checks.
func faultySimulator() channel.Simulator {
	spec := Spec{
		Dropout:      0.15,
		TruncP:       0.3,
		TruncMinFrac: 0.4,
		ContamP:      0.1,
		ZeroStart:    5,
		ZeroLen:      3,
	}
	ch, cov := spec.Wrap(channel.NewNaive("n", channel.EqualMix(0.03)), channel.FixedCoverage(6))
	return channel.Simulator{Channel: ch, Coverage: cov}
}

func datasetsEqual(a, b *dataset.Dataset) bool {
	if len(a.Clusters) != len(b.Clusters) {
		return false
	}
	for i := range a.Clusters {
		if a.Clusters[i].Ref != b.Clusters[i].Ref || len(a.Clusters[i].Reads) != len(b.Clusters[i].Reads) {
			return false
		}
		for j := range a.Clusters[i].Reads {
			if a.Clusters[i].Reads[j] != b.Clusters[i].Reads[j] {
				return false
			}
		}
	}
	return true
}

func TestInjectorsDeterministic(t *testing.T) {
	refs := channel.RandomReferences(40, 80, 11)
	sim := faultySimulator()
	a, err := sim.SimulateCtx(context.Background(), "a", refs, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.SimulateCtx(context.Background(), "b", refs, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !datasetsEqual(a, b) {
		t.Fatal("same seed + same fault spec produced different datasets")
	}
	c, err := sim.SimulateCtx(context.Background(), "c", refs, 43)
	if err != nil {
		t.Fatal(err)
	}
	if datasetsEqual(a, c) {
		t.Fatal("different seeds produced identical faulted datasets")
	}
}

func TestClusterDropout(t *testing.T) {
	cov := ClusterDropout{Base: channel.FixedCoverage(10), P: 0.3}
	r := rng.New(7)
	const n = 20000
	zeros := 0
	for i := 0; i < n; i++ {
		v := cov.Sample(i, r)
		if v == 0 {
			zeros++
		} else if v != 10 {
			t.Fatalf("surviving cluster got coverage %d", v)
		}
	}
	frac := float64(zeros) / n
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("dropout rate = %v, want ~0.3", frac)
	}
	if !strings.Contains(cov.Name(), "dropout") {
		t.Errorf("Name = %q", cov.Name())
	}
}

func TestZeroCoverageRegionExact(t *testing.T) {
	cov := ZeroCoverageRegion{Base: channel.FixedCoverage(4), Start: 10, Len: 5}
	r := rng.New(3)
	for i := 0; i < 30; i++ {
		got := cov.Sample(i, r)
		want := 4
		if i >= 10 && i < 15 {
			want = 0
		}
		if got != want {
			t.Errorf("cluster %d coverage = %d, want %d", i, got, want)
		}
	}
}

func TestReadTruncation(t *testing.T) {
	clean := channel.NewNaive("clean", channel.Rates{})
	tr := ReadTruncation{Base: clean, P: 1, MinFrac: 0.5}
	ref := channel.RandomReferences(1, 100, 9)[0]
	r := rng.New(5)
	for i := 0; i < 200; i++ {
		read := tr.Transmit(ref, r)
		if read.Len() >= ref.Len() {
			t.Fatalf("read %d not truncated: len %d", i, read.Len())
		}
		if read.Len() < 49 { // minFrac 0.5 of 100, allow the floor
			t.Fatalf("read %d over-truncated: len %d", i, read.Len())
		}
		if ref[:read.Len()] != read {
			t.Fatalf("truncation is not a prefix")
		}
	}
	// P=0 leaves reads alone.
	none := ReadTruncation{Base: clean, P: 0}
	if got := none.Transmit(ref, r); got != ref {
		t.Error("P=0 truncation modified the read")
	}
}

func TestContaminationSpike(t *testing.T) {
	clean := channel.NewNaive("clean", channel.Rates{})
	cs := ContaminationSpike{Base: clean, P: 0.5}
	ref := channel.RandomReferences(1, 80, 13)[0]
	r := rng.New(8)
	const n = 4000
	contaminated := 0
	for i := 0; i < n; i++ {
		read := cs.Transmit(ref, r)
		if err := read.Validate(); err != nil {
			t.Fatalf("contaminated read invalid: %v", err)
		}
		if read != ref {
			contaminated++
		}
	}
	frac := float64(contaminated) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("contamination rate = %v, want ~0.5", frac)
	}
}

func TestParseSpec(t *testing.T) {
	sp, err := ParseSpec("dropout=0.1,truncate=0.3:0.5,contam=0.02,zerocov=10:5")
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Dropout: 0.1, TruncP: 0.3, TruncMinFrac: 0.5, ContamP: 0.02, ZeroStart: 10, ZeroLen: 5}
	if sp != want {
		t.Fatalf("ParseSpec = %+v, want %+v", sp, want)
	}
	if sp.Empty() {
		t.Error("populated spec reported Empty")
	}
	// String round-trips.
	again, err := ParseSpec(sp.String())
	if err != nil || again != sp {
		t.Fatalf("round trip %q -> %+v (%v)", sp.String(), again, err)
	}
	// Empty spec.
	if sp, err := ParseSpec("  "); err != nil || !sp.Empty() {
		t.Errorf("blank spec: %+v, %v", sp, err)
	}
	// Truncate without min fraction.
	if sp, err := ParseSpec("truncate=0.4"); err != nil || sp.TruncP != 0.4 || sp.TruncMinFrac != 0 {
		t.Errorf("truncate=0.4: %+v, %v", sp, err)
	}
	for _, bad := range []string{
		"dropout", "dropout=1.5", "dropout=-0.1", "dropout=x",
		"truncate=0.3:1.5", "zerocov=5", "zerocov=-1:3", "zerocov=2:0",
		"warp=0.5",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func TestSpecWrapLayering(t *testing.T) {
	base := channel.NewNaive("base", channel.Rates{})
	cov := channel.FixedCoverage(3)
	ch2, cov2 := Spec{}.Wrap(base, cov)
	if ch2 != channel.Channel(base) || cov2 != channel.CoverageModel(cov) {
		t.Error("empty spec wrapped something")
	}
	sp := Spec{Dropout: 0.1, TruncP: 0.2, ContamP: 0.3, ZeroStart: 1, ZeroLen: 2}
	ch3, cov3 := sp.Wrap(base, cov)
	if !strings.Contains(ch3.Name(), "truncate") || !strings.Contains(ch3.Name(), "contam") {
		t.Errorf("channel name missing injectors: %q", ch3.Name())
	}
	if !strings.Contains(cov3.Name(), "dropout") || !strings.Contains(cov3.Name(), "zerocov") {
		t.Errorf("coverage name missing injectors: %q", cov3.Name())
	}
}

func TestCorruptPoolDeterministic(t *testing.T) {
	data := []byte(`{"version":1,"objects":[{"key":"x","primer":"ACGT","strands":["ACGT"]}]}`)
	for _, mode := range []CorruptMode{CorruptFlipBytes, CorruptTruncate, CorruptGarbageHead} {
		a := CorruptPool(data, mode, 4, rng.New(9))
		b := CorruptPool(data, mode, 4, rng.New(9))
		if !bytes.Equal(a, b) {
			t.Errorf("mode %d not deterministic", mode)
		}
		if bytes.Equal(a, data) && mode != CorruptTruncate {
			t.Errorf("mode %d left data untouched", mode)
		}
	}
	// The input must never be modified.
	orig := append([]byte(nil), data...)
	CorruptPool(data, CorruptFlipBytes, 8, rng.New(2))
	if !bytes.Equal(data, orig) {
		t.Error("CorruptPool modified its input")
	}
	// Empty input is a no-op.
	if out := CorruptPool(nil, CorruptFlipBytes, 1, rng.New(1)); len(out) != 0 {
		t.Error("empty input grew")
	}
}
