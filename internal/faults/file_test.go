package faults

import (
	"bytes"
	"testing"

	"dnastore/internal/rng"
)

func TestTornWrite(t *testing.T) {
	data := bytes.Repeat([]byte("abcdef"), 50)
	for seed := uint64(0); seed < 20; seed++ {
		torn := TornWrite(data, rng.New(seed))
		if len(torn) < 1 || len(torn) >= len(data) {
			t.Fatalf("seed %d: torn length %d outside [1,%d)", seed, len(torn), len(data))
		}
		if !bytes.Equal(torn, data[:len(torn)]) {
			t.Fatalf("seed %d: torn result is not a prefix", seed)
		}
	}
	// Determinism: same seed, same cut.
	a := TornWrite(data, rng.New(7))
	b := TornWrite(data, rng.New(7))
	if !bytes.Equal(a, b) {
		t.Error("TornWrite not deterministic under equal seeds")
	}
	// Degenerate inputs pass through.
	if got := TornWrite([]byte{0x01}, rng.New(1)); len(got) != 1 {
		t.Errorf("single byte: %v", got)
	}
	if got := TornWrite(nil, rng.New(1)); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
}

func TestBitRot(t *testing.T) {
	data := bytes.Repeat([]byte{0x00}, 64)
	rotted := BitRot(data, 5, rng.New(3))
	if bytes.Equal(rotted, data) {
		t.Fatal("BitRot changed nothing")
	}
	flips := 0
	for i := range rotted {
		for b := 0; b < 8; b++ {
			if (rotted[i]^data[i])>>b&1 == 1 {
				flips++
			}
		}
	}
	if flips != 5 {
		t.Errorf("flipped %d bits, want 5", flips)
	}
	// Original untouched.
	for _, v := range data {
		if v != 0 {
			t.Fatal("BitRot mutated its input")
		}
	}
}

func TestBitRotRange(t *testing.T) {
	data := bytes.Repeat([]byte{0xFF}, 100)
	rotted := BitRotRange(data, 40, 60, 8, rng.New(9))
	for i := range rotted {
		if (i < 40 || i >= 60) && rotted[i] != 0xFF {
			t.Fatalf("byte %d outside range modified", i)
		}
	}
	if bytes.Equal(rotted[40:60], data[40:60]) {
		t.Error("range unmodified")
	}
	// n exceeding the range's bit count flips every bit rather than hanging.
	all := BitRotRange(data, 0, 2, 999, rng.New(1))
	if all[0] != 0x00 || all[1] != 0x00 {
		t.Errorf("saturating flip: %x %x", all[0], all[1])
	}
	// Inverted and empty ranges are no-ops.
	if !bytes.Equal(BitRotRange(data, 60, 40, 4, rng.New(2)), data) {
		t.Error("inverted range modified data")
	}
}

func TestTornWriter(t *testing.T) {
	var buf bytes.Buffer
	tw := &TornWriter{W: &buf, Limit: 10}
	for i := 0; i < 5; i++ {
		n, err := tw.Write([]byte("abcd"))
		if err != nil || n != 4 {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	if got := buf.String(); got != "abcdabcdab" {
		t.Errorf("persisted %q, want first 10 bytes only", got)
	}
}
