package faults

import "dnastore/internal/rng"

// CorruptMode selects how CorruptPool damages a serialized pool file.
type CorruptMode int

const (
	// CorruptFlipBytes XORs N random bytes with random non-zero values —
	// bit rot inside the file body.
	CorruptFlipBytes CorruptMode = iota
	// CorruptTruncate cuts the file at a random point — a crash mid-write.
	CorruptTruncate
	// CorruptGarbageHead overwrites the first N bytes with random garbage —
	// a clobbered header or wrong file written over the pool.
	CorruptGarbageHead
)

// CorruptPool returns a deterministically corrupted copy of a serialized
// pool (or any byte blob) for exercising loader hardening; the input is
// never modified. severity scales the damage: bytes flipped or overwritten
// for the in-place modes, ignored for truncation (the cut point comes from
// the RNG alone). The same data, mode, severity and RNG seed always yield
// the same corruption.
func CorruptPool(data []byte, mode CorruptMode, severity int, r *rng.RNG) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 {
		return out
	}
	if severity < 1 {
		severity = 1
	}
	switch mode {
	case CorruptFlipBytes:
		for i := 0; i < severity; i++ {
			pos := r.Intn(len(out))
			out[pos] ^= byte(1 + r.Intn(255))
		}
	case CorruptTruncate:
		out = out[:r.Intn(len(out))]
	case CorruptGarbageHead:
		n := severity
		if n > len(out) {
			n = len(out)
		}
		for i := 0; i < n; i++ {
			out[i] = byte(r.Intn(256))
		}
	}
	return out
}
