// Package faults provides composable fault injectors for the DNA storage
// pipeline. Real pools exhibit pathologies the happy-path simulator never
// produces on demand: whole clusters vanish (failed PCR, storage decay —
// Heckel et al. report strand dropout as a first-order effect), reads stop
// short (polymerase drop-off, aborted nanopore passes), contamination
// bursts inject alien or chimeric sequence, and synthesis defects zero out
// contiguous plate regions.
//
// Each injector wraps an existing channel.Channel or channel.CoverageModel
// and draws only from the RNG it is handed, so faulted datasets stay
// deterministic under the simulator's split-RNG scheme: same seed + same
// fault spec ⇒ byte-identical output. A Spec parses the CLI-facing
// `-faults` string into a bundle of injectors, and CorruptPool damages
// serialized pool files for exercising loader hardening.
package faults

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// ClusterDropout wraps a CoverageModel and zeroes whole clusters with
// probability P, modelling strand dropout. Unlike channel.ErasureCoverage
// (which models the natural erasures observed in the wetlab data), this is
// the injector half of a fault drill: the dropout draw comes from the
// per-cluster RNG, so a fresh sequencing seed re-rolls which clusters
// vanish — exactly what an adaptive re-sequencing retry exploits.
type ClusterDropout struct {
	// Base supplies the coverage of surviving clusters.
	Base channel.CoverageModel
	// P is the per-cluster dropout probability.
	P float64
}

// Sample implements channel.CoverageModel.
func (d ClusterDropout) Sample(i int, r *rng.RNG) int {
	if r.Bool(d.P) {
		return 0
	}
	return d.Base.Sample(i, r)
}

// Name implements channel.CoverageModel.
func (d ClusterDropout) Name() string {
	return fmt.Sprintf("%s+dropout(%.3f)", d.Base.Name(), d.P)
}

// ZeroCoverageRegion zeroes every cluster whose index lies in
// [Start, Start+Len), modelling a spatially localised synthesis or plate
// failure. It is fully deterministic — no RNG draw — which makes it the
// injector of choice for tests that must erase exactly known strands.
type ZeroCoverageRegion struct {
	// Base supplies coverage outside the dead region.
	Base channel.CoverageModel
	// Start and Len delimit the dead cluster-index region.
	Start, Len int
}

// Sample implements channel.CoverageModel.
func (z ZeroCoverageRegion) Sample(i int, r *rng.RNG) int {
	if i >= z.Start && i < z.Start+z.Len {
		return 0
	}
	return z.Base.Sample(i, r)
}

// Name implements channel.CoverageModel.
func (z ZeroCoverageRegion) Name() string {
	return fmt.Sprintf("%s+zerocov(%d:%d)", z.Base.Name(), z.Start, z.Len)
}

// ReadTruncation wraps a Channel and cuts reads short: with probability P
// per read, only a prefix survives, its fraction drawn uniformly from
// [MinFrac, 1). Models polymerase drop-off and aborted sequencing passes,
// which preferentially destroy strand suffixes.
type ReadTruncation struct {
	// Base produces the untruncated read.
	Base channel.Channel
	// P is the per-read truncation probability.
	P float64
	// MinFrac is the shortest surviving prefix fraction (default 0.2).
	MinFrac float64
}

// Transmit implements channel.Channel.
func (t ReadTruncation) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	read := t.Base.Transmit(ref, r)
	if !r.Bool(t.P) || read.Len() < 2 {
		return read
	}
	minFrac := t.MinFrac
	if minFrac <= 0 || minFrac >= 1 {
		minFrac = 0.2
	}
	frac := minFrac + r.Float64()*(1-minFrac)
	n := int(frac * float64(read.Len()))
	if n < 1 {
		n = 1
	}
	if n >= read.Len() {
		return read
	}
	return read[:n]
}

// Name implements channel.Channel.
func (t ReadTruncation) Name() string {
	return fmt.Sprintf("%s+truncate(%.3f)", t.Base.Name(), t.P)
}

// ContaminationSpike wraps a Channel and replaces reads with contamination
// at probability P: half the time a wholly foreign strand of comparable
// length (carry-over from another pool), half the time a chimera keeping a
// real prefix with an alien tail (template switching during PCR).
type ContaminationSpike struct {
	// Base produces the uncontaminated read.
	Base channel.Channel
	// P is the per-read contamination probability.
	P float64
}

// Transmit implements channel.Channel.
func (c ContaminationSpike) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if !r.Bool(c.P) {
		return c.Base.Transmit(ref, r)
	}
	n := ref.Len()
	if n < 2 {
		n = 2
	}
	if r.Bool(0.5) {
		return randomStrand(n, r)
	}
	read := c.Base.Transmit(ref, r)
	if read.Len() < 2 {
		return randomStrand(n, r)
	}
	cut := 1 + r.Intn(read.Len()-1)
	return read[:cut] + randomStrand(read.Len()-cut, r)
}

// Name implements channel.Channel.
func (c ContaminationSpike) Name() string {
	return fmt.Sprintf("%s+contam(%.3f)", c.Base.Name(), c.P)
}

// randomStrand draws n uniform bases.
func randomStrand(n int, r *rng.RNG) dna.Strand {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = dna.Base(r.Intn(dna.NumBases)).Byte()
	}
	return dna.Strand(buf)
}
