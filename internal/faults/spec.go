package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dnastore/internal/channel"
)

// Spec is a parsed fault-injection specification, the CLI-facing form of
// the injectors in this package. The textual syntax is a comma-separated
// list of directives:
//
//	dropout=P            zero whole clusters with probability P
//	truncate=P[:MIN]     truncate reads with probability P to a prefix
//	                     fraction uniform in [MIN, 1) (MIN defaults to 0.2)
//	contam=P             replace reads with alien/chimeric sequence at P
//	zerocov=START:LEN    zero the cluster-index region [START, START+LEN)
//
// e.g. "dropout=0.1,truncate=0.3:0.5,contam=0.02".
type Spec struct {
	// Dropout is the ClusterDropout probability (0 disables).
	Dropout float64
	// TruncP and TruncMinFrac configure ReadTruncation (TruncP 0 disables).
	TruncP, TruncMinFrac float64
	// ContamP is the ContaminationSpike probability (0 disables).
	ContamP float64
	// ZeroStart and ZeroLen configure ZeroCoverageRegion (ZeroLen 0 disables).
	ZeroStart, ZeroLen int
}

// ParseSpec parses the textual fault specification; an empty string yields
// the zero Spec, which injects nothing.
func ParseSpec(s string) (Spec, error) {
	var sp Spec
	s = strings.TrimSpace(s)
	if s == "" {
		return sp, nil
	}
	for _, item := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return Spec{}, fmt.Errorf("faults: directive %q is not key=value", item)
		}
		switch key {
		case "dropout":
			p, err := parseProb(key, val)
			if err != nil {
				return Spec{}, err
			}
			sp.Dropout = p
		case "truncate":
			pStr, minStr, hasMin := strings.Cut(val, ":")
			p, err := parseProb(key, pStr)
			if err != nil {
				return Spec{}, err
			}
			sp.TruncP = p
			if hasMin {
				m, err := strconv.ParseFloat(minStr, 64)
				if err != nil || math.IsNaN(m) || m <= 0 || m >= 1 {
					return Spec{}, fmt.Errorf("faults: truncate min fraction %q must be in (0,1)", minStr)
				}
				sp.TruncMinFrac = m
			}
		case "contam":
			p, err := parseProb(key, val)
			if err != nil {
				return Spec{}, err
			}
			sp.ContamP = p
		case "zerocov":
			startStr, lenStr, ok := strings.Cut(val, ":")
			if !ok {
				return Spec{}, fmt.Errorf("faults: zerocov needs START:LEN, got %q", val)
			}
			start, err1 := strconv.Atoi(startStr)
			length, err2 := strconv.Atoi(lenStr)
			if err1 != nil || err2 != nil || start < 0 || length <= 0 {
				return Spec{}, fmt.Errorf("faults: zerocov region %q invalid", val)
			}
			sp.ZeroStart, sp.ZeroLen = start, length
		default:
			return Spec{}, fmt.Errorf("faults: unknown directive %q", key)
		}
	}
	if sp.TruncP == 0 {
		// truncate=0 disables the injector; a min fraction riding along is
		// dead configuration, normalised away so specs round-trip.
		sp.TruncMinFrac = 0
	}
	return sp, nil
}

// parseProb parses a probability in [0,1]. NaN is rejected explicitly:
// every range comparison against NaN is false, so without the check it
// would slip through and poison every downstream rng.Bool draw.
func parseProb(key, val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(p) || p < 0 || p > 1 {
		return 0, fmt.Errorf("faults: %s probability %q must be in [0,1]", key, val)
	}
	return p, nil
}

// Empty reports whether the spec injects no faults.
func (sp Spec) Empty() bool {
	return sp.Dropout == 0 && sp.TruncP == 0 && sp.ContamP == 0 && sp.ZeroLen == 0
}

// Wrap layers the configured injectors over a channel and coverage model.
// Contamination is applied before truncation (a contaminated read can still
// be cut short); coverage faults apply dropout before the dead region.
func (sp Spec) Wrap(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
	if sp.ContamP > 0 {
		ch = ContaminationSpike{Base: ch, P: sp.ContamP}
	}
	if sp.TruncP > 0 {
		ch = ReadTruncation{Base: ch, P: sp.TruncP, MinFrac: sp.TruncMinFrac}
	}
	if sp.Dropout > 0 {
		cov = ClusterDropout{Base: cov, P: sp.Dropout}
	}
	if sp.ZeroLen > 0 {
		cov = ZeroCoverageRegion{Base: cov, Start: sp.ZeroStart, Len: sp.ZeroLen}
	}
	return ch, cov
}

// String renders the spec back in its textual syntax.
func (sp Spec) String() string {
	var parts []string
	if sp.Dropout > 0 {
		parts = append(parts, fmt.Sprintf("dropout=%g", sp.Dropout))
	}
	if sp.TruncP > 0 {
		if sp.TruncMinFrac > 0 {
			parts = append(parts, fmt.Sprintf("truncate=%g:%g", sp.TruncP, sp.TruncMinFrac))
		} else {
			parts = append(parts, fmt.Sprintf("truncate=%g", sp.TruncP))
		}
	}
	if sp.ContamP > 0 {
		parts = append(parts, fmt.Sprintf("contam=%g", sp.ContamP))
	}
	if sp.ZeroLen > 0 {
		parts = append(parts, fmt.Sprintf("zerocov=%d:%d", sp.ZeroStart, sp.ZeroLen))
	}
	return strings.Join(parts, ",")
}
