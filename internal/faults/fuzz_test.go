package faults

import (
	"testing"
)

// FuzzParseSpec hardens the -faults spec DSL parser — the one text parser
// in the tree that consumes operator input directly. Arbitrary strings must
// either parse into a spec that round-trips through String(), or error
// cleanly; never panic, and never accept out-of-range probabilities or
// regions that the injectors would misbehave on.
func FuzzParseSpec(f *testing.F) {
	f.Add("")
	f.Add("dropout=0.1")
	f.Add("dropout=0.1,truncate=0.3:0.5,contam=0.02,zerocov=10:5")
	f.Add("truncate=1")
	f.Add("truncate=0.5:0.99")
	f.Add("zerocov=0:1")
	f.Add("dropout=1.5")
	f.Add("dropout=-1")
	f.Add("dropout=NaN")
	f.Add("truncate=0.5:nope")
	f.Add("zerocov=5")
	f.Add("zerocov=-1:3")
	f.Add("bogus=1")
	f.Add("dropout")
	f.Add(",,,")
	f.Add("dropout=0.1,dropout=0.2")
	f.Add(" dropout = 0.5 ")
	f.Add("truncate=1e-300:0.5,contam=0x1p-3")

	f.Fuzz(func(t *testing.T, s string) {
		sp, err := ParseSpec(s)
		if err != nil {
			if sp != (Spec{}) {
				t.Errorf("ParseSpec(%q) errored but returned non-zero spec %+v", s, sp)
			}
			return
		}
		// Accepted specs must be in-range: the injectors treat these as
		// probabilities and slice bounds without re-validating.
		for name, p := range map[string]float64{
			"Dropout": sp.Dropout, "TruncP": sp.TruncP, "ContamP": sp.ContamP,
		} {
			if p < 0 || p > 1 || p != p {
				t.Errorf("ParseSpec(%q) accepted %s = %v", s, name, p)
			}
		}
		if sp.TruncMinFrac != 0 && (sp.TruncMinFrac <= 0 || sp.TruncMinFrac >= 1) {
			t.Errorf("ParseSpec(%q) accepted TruncMinFrac = %v", s, sp.TruncMinFrac)
		}
		if sp.ZeroStart < 0 || sp.ZeroLen < 0 {
			t.Errorf("ParseSpec(%q) accepted negative zerocov %d:%d", s, sp.ZeroStart, sp.ZeroLen)
		}
		// String() must render a spec that parses back to the same value —
		// the CLI echoes specs and the server persists them in job specs.
		rt, err := ParseSpec(sp.String())
		if err != nil {
			t.Errorf("round-trip ParseSpec(%q -> %q) failed: %v", s, sp.String(), err)
		} else if rt != sp {
			t.Errorf("round-trip mismatch: %q -> %+v -> %q -> %+v", s, sp, sp.String(), rt)
		}
	})
}
