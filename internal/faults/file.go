package faults

import (
	"io"

	"dnastore/internal/rng"
)

// File-level injectors for durability drills. Where CorruptPool mangles a
// blob in coarse modes, TornWrite and BitRot model the two storage-layer
// failures the durable container format is built to survive: a crash that
// cuts a write short, and media decay that flips individual bits. Both are
// deterministic under an explicit RNG, so crash drills replay exactly.

// TornWrite returns a prefix of data cut at a point drawn uniformly from
// [1, len(data)) — the on-disk state after a crash mid-write. Inputs
// shorter than two bytes are returned unchanged.
func TornWrite(data []byte, r *rng.RNG) []byte {
	if len(data) < 2 {
		return append([]byte(nil), data...)
	}
	cut := 1 + r.Intn(len(data)-1)
	return append([]byte(nil), data[:cut]...)
}

// BitRot returns a copy of data with n distinct random bits flipped —
// silent media decay. Fewer than n bits flip only when data has fewer than
// n bits in total.
func BitRot(data []byte, n int, r *rng.RNG) []byte {
	return BitRotRange(data, 0, len(data), n, r)
}

// BitRotRange is BitRot confined to data[start:end): n distinct bits
// inside the range flip, the rest of the blob is untouched. It lets drills
// target payload regions whose damage must stay within a known parity
// budget. An empty or inverted range returns an unmodified copy.
func BitRotRange(data []byte, start, end, n int, r *rng.RNG) []byte {
	out := append([]byte(nil), data...)
	if start < 0 {
		start = 0
	}
	if end > len(out) {
		end = len(out)
	}
	if start >= end || n <= 0 {
		return out
	}
	totalBits := (end - start) * 8
	if n > totalBits {
		n = totalBits
	}
	flipped := make(map[int]bool, n)
	for len(flipped) < n {
		bit := r.Intn(totalBits)
		if flipped[bit] {
			continue
		}
		flipped[bit] = true
		out[start+bit/8] ^= 1 << (bit % 8)
	}
	return out
}

// TornWriter is an io.Writer that persists only the first Limit bytes and
// silently swallows the rest — the kernel's view of a process killed
// before its buffers reached disk. It never returns an error, so the
// writing code path completes believing the write succeeded, exactly like
// a real torn write.
type TornWriter struct {
	// W receives the surviving prefix.
	W io.Writer
	// Limit is the number of bytes that reach W.
	Limit int

	written int
}

// Write implements io.Writer.
func (t *TornWriter) Write(p []byte) (int, error) {
	n := len(p)
	if keep := t.Limit - t.written; keep > 0 {
		if keep > n {
			keep = n
		}
		if _, err := t.W.Write(p[:keep]); err != nil {
			return 0, err
		}
		t.written += keep
	}
	return n, nil
}
