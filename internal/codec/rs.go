package codec

import (
	"errors"
	"fmt"
)

// RS is a systematic Reed–Solomon code over GF(2⁸) with NSym parity
// symbols per codeword. It corrects e erasures (positions known) and t
// errors (positions unknown) whenever 2t + e <= NSym. Codewords are at
// most 255 bytes long.
type RS struct {
	// NSym is the number of parity symbols appended to each message.
	NSym int
	gen  []byte
}

// ErrTooManyErrors reports an uncorrectable codeword.
var ErrTooManyErrors = errors.New("codec: too many errors to correct")

// NewRS builds a code with the given parity symbol count.
func NewRS(nsym int) (*RS, error) {
	if nsym <= 0 || nsym >= 255 {
		return nil, fmt.Errorf("codec: parity symbol count %d out of (0,255)", nsym)
	}
	gen := []byte{1}
	for i := 0; i < nsym; i++ {
		gen = polyMul(gen, []byte{1, gfPow(2, i)})
	}
	return &RS{NSym: nsym, gen: gen}, nil
}

// MustRS is NewRS that panics on bad parameters, for static configuration.
func MustRS(nsym int) *RS {
	rs, err := NewRS(nsym)
	if err != nil {
		panic(err)
	}
	return rs
}

// Encode appends NSym parity bytes to msg and returns the codeword.
// len(msg)+NSym must not exceed 255.
func (rs *RS) Encode(msg []byte) ([]byte, error) {
	if len(msg) == 0 {
		return nil, fmt.Errorf("codec: empty message")
	}
	if len(msg)+rs.NSym > 255 {
		return nil, fmt.Errorf("codec: codeword length %d exceeds 255", len(msg)+rs.NSym)
	}
	// Polynomial long division of msg·x^nsym by the generator.
	rem := make([]byte, len(msg)+rs.NSym)
	copy(rem, msg)
	for i := 0; i < len(msg); i++ {
		coef := rem[i]
		if coef == 0 {
			continue
		}
		for j := 1; j < len(rs.gen); j++ {
			rem[i+j] ^= gfMul(rs.gen[j], coef)
		}
	}
	out := make([]byte, len(msg)+rs.NSym)
	copy(out, msg)
	copy(out[len(msg):], rem[len(msg):])
	return out, nil
}

// syndromes returns the NSym syndromes of the codeword; all zero means the
// codeword is clean.
func (rs *RS) syndromes(cw []byte) ([]byte, bool) {
	synd := make([]byte, rs.NSym)
	clean := true
	for i := 0; i < rs.NSym; i++ {
		synd[i] = polyEval(cw, gfPow(2, i))
		if synd[i] != 0 {
			clean = false
		}
	}
	return synd, clean
}

// Decode corrects the codeword in place and returns the message part.
// erasePos lists known-bad byte positions (0-based from codeword start);
// unknown errors are located automatically. It fails with
// ErrTooManyErrors when the errata exceed capacity.
func (rs *RS) Decode(cw []byte, erasePos []int) ([]byte, error) {
	msg, _, err := rs.DecodeDetail(cw, erasePos)
	return msg, err
}

// DecodeDetail is Decode that also reports how many errata symbols were
// corrected; zero means the codeword was already clean. The count feeds
// repair accounting (clean vs. RS-repaired strands) in erasure reports.
func (rs *RS) DecodeDetail(cw []byte, erasePos []int) ([]byte, int, error) {
	if len(cw) <= rs.NSym {
		return nil, 0, fmt.Errorf("codec: codeword shorter than parity (%d <= %d)", len(cw), rs.NSym)
	}
	if len(cw) > 255 {
		return nil, 0, fmt.Errorf("codec: codeword length %d exceeds 255", len(cw))
	}
	if len(erasePos) > rs.NSym {
		return nil, 0, ErrTooManyErrors
	}
	for _, p := range erasePos {
		if p < 0 || p >= len(cw) {
			return nil, 0, fmt.Errorf("codec: erasure position %d out of range", p)
		}
	}
	synd, clean := rs.syndromes(cw)
	if clean {
		return cw[:len(cw)-rs.NSym], 0, nil
	}
	// Erasure locator from the known positions.
	eraseLoc := []byte{1}
	for _, p := range erasePos {
		x := gfPow(2, len(cw)-1-p)
		eraseLoc = polyMul(eraseLoc, []byte{x, 1})
	}
	// Berlekamp–Massey seeded with the erasure locator finds the combined
	// errata locator.
	errLoc, err := rs.findErrataLocator(synd, eraseLoc, len(erasePos))
	if err != nil {
		return nil, 0, err
	}
	pos, err := rs.findErrors(errLoc, len(cw))
	if err != nil {
		return nil, 0, err
	}
	if err := rs.correctErrata(cw, synd, pos); err != nil {
		return nil, 0, err
	}
	if _, ok := rs.syndromes(cw); !ok {
		return nil, 0, ErrTooManyErrors
	}
	return cw[:len(cw)-rs.NSym], len(pos), nil
}

// findErrataLocator runs Berlekamp–Massey seeded with the erasure locator.
func (rs *RS) findErrataLocator(synd, eraseLoc []byte, eraseCount int) ([]byte, error) {
	errLoc := append([]byte(nil), eraseLoc...)
	oldLoc := append([]byte(nil), eraseLoc...)
	for i := 0; i < rs.NSym-eraseCount; i++ {
		k := i + eraseCount
		// Discrepancy: delta = S_k + Σ_j Λ_j·S_{k−j} (syndromes are stored
		// little-endian, S_0 first; the locator is big-endian).
		delta := synd[k]
		for j := 1; j < len(errLoc); j++ {
			if k-j >= 0 {
				delta ^= gfMul(errLoc[len(errLoc)-1-j], synd[k-j])
			}
		}
		oldLoc = append(oldLoc, 0)
		if delta != 0 {
			if len(oldLoc) > len(errLoc) {
				newLoc := polyScale(oldLoc, delta)
				oldLoc = polyScale(errLoc, gfInv(delta))
				errLoc = newLoc
			}
			errLoc = polyAdd(errLoc, polyScale(oldLoc, delta))
		}
	}
	// Trim leading zeros.
	for len(errLoc) > 0 && errLoc[0] == 0 {
		errLoc = errLoc[1:]
	}
	errCount := len(errLoc) - 1
	if errCount*2-eraseCount > rs.NSym {
		return nil, ErrTooManyErrors
	}
	return errLoc, nil
}

// findErrors locates errata positions by Chien search over the locator.
func (rs *RS) findErrors(errLoc []byte, n int) ([]int, error) {
	errCount := len(errLoc) - 1
	var pos []int
	// The locator Λ(x) = Π(1 + X_k·x) has roots at X_k⁻¹ with
	// X_k = α^(n-1-p); evaluate at α^(-i) so coefficient position i is a
	// hit exactly when Λ's root matches it.
	for i := 0; i < n; i++ {
		if polyEval(errLoc, gfInv(gfPow(2, i))) == 0 {
			pos = append(pos, n-1-i)
		}
	}
	if len(pos) != errCount {
		return nil, ErrTooManyErrors
	}
	return pos, nil
}

// correctErrata applies Forney's algorithm at the given positions.
func (rs *RS) correctErrata(cw, synd []byte, pos []int) error {
	// Errata locator from the confirmed positions.
	loc := []byte{1}
	n := len(cw)
	for _, p := range pos {
		x := gfPow(2, n-1-p)
		loc = polyMul(loc, []byte{x, 1})
	}
	// Errata evaluator Ω(x) = S(x)·Λ(x) mod x^nsym, with syndromes as a
	// big-endian polynomial S_{nsym-1}..S_0.
	syndPoly := make([]byte, len(synd))
	for i, s := range synd {
		syndPoly[len(synd)-1-i] = s
	}
	omega := polyMul(syndPoly, loc)
	if len(omega) > rs.NSym {
		omega = omega[len(omega)-rs.NSym:]
	}
	// Formal derivative of the locator: keep odd-power coefficients.
	for _, p := range pos {
		xInv := gfInv(gfPow(2, n-1-p))
		// Λ'(x) evaluated via the product over other roots.
		var denom byte = 1
		for _, q := range pos {
			if q == p {
				continue
			}
			xq := gfPow(2, n-1-q)
			denom = gfMul(denom, 1^gfMul(xInv, xq))
		}
		if denom == 0 {
			return ErrTooManyErrors
		}
		// Forney with the product-form denominator: the magnitude is
		// Ω(X⁻¹) / Π_{j≠i}(1 ⊕ X⁻¹X_j); the usual X factor of Λ'(X⁻¹) is
		// already absorbed by the product form.
		magnitude := gfDiv(polyEval(omega, xInv), denom)
		cw[p] ^= magnitude
	}
	return nil
}
