// Package codec implements the encode/decode ends of the DNA storage
// pipeline (§1.1 steps 2 and 6): binary↔DNA sequence codecs (trivial
// 2-bit, Goldman-style homopolymer-free rotation, GC-balanced), logical
// redundancy (XOR parity strands and a full Reed–Solomon code over GF(2⁸)
// correcting both errors and erasures, as in Grass et al. [12]), strand
// indexing for file layout, and primer design for PCR random access
// (Yazdi/Bornholt, §1.1.1).
package codec

// GF(2⁸) arithmetic with the primitive polynomial x⁸+x⁴+x³+x²+1 (0x11d),
// the field used by most storage Reed–Solomon deployments.

const gfPoly = 0x11d

var gfExp [512]byte // α^i, doubled to avoid mod in mul
var gfLog [256]byte

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b; it panics on division by zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("codec: GF(256) division by zero")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfPow returns α-base exponentiation x^p.
func gfPow(x byte, p int) byte {
	if x == 0 {
		if p == 0 {
			return 1
		}
		return 0
	}
	l := (int(gfLog[x]) * p) % 255
	if l < 0 {
		l += 255
	}
	return gfExp[l]
}

// gfInv returns the multiplicative inverse.
func gfInv(x byte) byte {
	if x == 0 {
		panic("codec: GF(256) inverse of zero")
	}
	return gfExp[255-int(gfLog[x])]
}

// Polynomials over GF(256) are []byte with index 0 holding the
// highest-degree coefficient (big-endian), matching the classic
// Reed–Solomon formulation.

// polyScale multiplies every coefficient by x.
func polyScale(p []byte, x byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[i] = gfMul(c, x)
	}
	return out
}

// polyAdd adds (XORs) two polynomials.
func polyAdd(p, q []byte) []byte {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	out := make([]byte, n)
	copy(out[n-len(p):], p)
	for i, c := range q {
		out[n-len(q)+i] ^= c
	}
	return out
}

// polyMul multiplies two polynomials.
func polyMul(p, q []byte) []byte {
	out := make([]byte, len(p)+len(q)-1)
	for i, pc := range p {
		if pc == 0 {
			continue
		}
		for j, qc := range q {
			out[i+j] ^= gfMul(pc, qc)
		}
	}
	return out
}

// polyEval evaluates the polynomial at x using Horner's scheme.
func polyEval(p []byte, x byte) byte {
	var y byte
	if len(p) > 0 {
		y = p[0]
	}
	for i := 1; i < len(p); i++ {
		y = gfMul(y, x) ^ p[i]
	}
	return y
}
