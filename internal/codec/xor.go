package codec

import "fmt"

// XOR parity is the lightweight logical redundancy of Bornholt et al. [4]:
// for every pair of data chunks (A, B) a third chunk A⊕B is stored, so any
// one of the three can be recovered from the other two. It trades lower
// density (1.5× expansion) for much cheaper decoding than Reed–Solomon.

// XOREncode appends one parity chunk per pair of data chunks. Chunks must
// share one length. With an odd chunk count the final chunk is paired with
// a zero chunk (its parity is a copy).
func XOREncode(chunks [][]byte) ([][]byte, error) {
	if len(chunks) == 0 {
		return nil, fmt.Errorf("codec: no chunks to encode")
	}
	size := len(chunks[0])
	for i, c := range chunks {
		if len(c) != size {
			return nil, fmt.Errorf("codec: chunk %d length %d != %d", i, len(c), size)
		}
	}
	out := make([][]byte, 0, len(chunks)+(len(chunks)+1)/2)
	out = append(out, chunks...)
	for i := 0; i < len(chunks); i += 2 {
		parity := make([]byte, size)
		copy(parity, chunks[i])
		if i+1 < len(chunks) {
			for j := range parity {
				parity[j] ^= chunks[i+1][j]
			}
		}
		out = append(out, parity)
	}
	return out, nil
}

// XORRecover reconstructs missing chunks in place. chunks must have the
// layout produced by XOREncode for nData data chunks: data first, then one
// parity per pair. A nil entry marks a missing chunk. Recovery fails when
// both members of a pair and their parity are missing, or when a pair lost
// two of its three chunks.
func XORRecover(chunks [][]byte, nData int) error {
	if nData <= 0 || nData > len(chunks) {
		return fmt.Errorf("codec: invalid data chunk count %d", nData)
	}
	nParity := (nData + 1) / 2
	if len(chunks) != nData+nParity {
		return fmt.Errorf("codec: chunk count %d does not match layout for %d data chunks", len(chunks), nData)
	}
	xorInto := func(dst, src []byte) {
		for j := range dst {
			dst[j] ^= src[j]
		}
	}
	for pair := 0; pair < nParity; pair++ {
		a := pair * 2
		b := a + 1
		p := nData + pair
		members := []int{a}
		if b < nData {
			members = append(members, b)
		}
		missing := make([]int, 0, 3)
		var size int
		for _, idx := range append(members, p) {
			if chunks[idx] == nil {
				missing = append(missing, idx)
			} else {
				size = len(chunks[idx])
			}
		}
		switch len(missing) {
		case 0:
			continue
		case 1:
			idx := missing[0]
			rec := make([]byte, size)
			for _, other := range append(members, p) {
				if other != idx {
					xorInto(rec, chunks[other])
				}
			}
			// A lone member paired with the zero chunk: parity is a copy.
			chunks[idx] = rec
		default:
			return fmt.Errorf("codec: pair %d lost %d chunks, XOR parity covers 1", pair, len(missing))
		}
	}
	return nil
}
