package codec_test

import (
	"bytes"
	"fmt"

	"dnastore/internal/codec"
)

// Example encodes a payload into indexed DNA strands and decodes it back
// after losing a strand — the erasure the cross-strand Reed–Solomon group
// parity exists for.
func Example() {
	arch := codec.Archive{GroupData: 8, GroupParity: 3}
	data := []byte("store me in nucleotides, please")
	strands, _ := arch.Encode(data)
	survivors := strands[1:] // strand 0 is lost entirely
	got, err := arch.Decode(survivors)
	fmt.Println(err == nil, bytes.Equal(got, data))
	// Output: true true
}

// ExampleRotation shows the homopolymer-free property of the Goldman-style
// rotation code.
func ExampleRotation() {
	s := codec.Rotation{}.Encode([]byte{0x00, 0x00, 0x00})
	fmt.Println(s.MaxHomopolymerLen())
	// Output: 1
}

// ExampleRS corrects unknown errors up to half the parity budget.
func ExampleRS() {
	rs := codec.MustRS(8)
	cw, _ := rs.Encode([]byte("hello gopher"))
	cw[2] ^= 0xFF
	cw[9] ^= 0x55
	msg, err := rs.Decode(cw, nil)
	fmt.Println(err == nil, string(msg))
	// Output: true hello gopher
}
