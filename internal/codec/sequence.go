package codec

import (
	"fmt"

	"dnastore/internal/dna"
)

// SequenceCodec maps raw bytes to a DNA sequence and back. Implementations
// differ in logical density (bits per base) and in the sequence constraints
// they guarantee (homopolymer limits, GC balance) — the trade-off space
// §1.1 describes.
type SequenceCodec interface {
	// Encode maps data to a strand.
	Encode(data []byte) dna.Strand
	// Decode inverts Encode; it fails on malformed input.
	Decode(s dna.Strand) ([]byte, error)
	// Name identifies the codec.
	Name() string
	// BitsPerBase is the logical density of the codec.
	BitsPerBase() float64
}

// Trivial2Bit is the textbook maximal-density mapping A=00, C=01, G=10,
// T=11 (2 bits per base, the Shannon maximum for four symbols). It makes
// no constraint guarantees: long homopolymers and GC drift pass through,
// which is exactly why real systems layer constrained codecs on top.
type Trivial2Bit struct{}

// Name implements SequenceCodec.
func (Trivial2Bit) Name() string { return "trivial-2bit" }

// BitsPerBase implements SequenceCodec.
func (Trivial2Bit) BitsPerBase() float64 { return 2 }

// Encode implements SequenceCodec.
func (Trivial2Bit) Encode(data []byte) dna.Strand {
	out := make([]byte, 0, len(data)*4)
	for _, b := range data {
		for shift := 6; shift >= 0; shift -= 2 {
			out = append(out, dna.Base((b>>uint(shift))&3).Byte())
		}
	}
	return dna.Strand(out)
}

// Decode implements SequenceCodec.
func (Trivial2Bit) Decode(s dna.Strand) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len()%4 != 0 {
		return nil, fmt.Errorf("codec: 2-bit strand length %d not a multiple of 4", s.Len())
	}
	out := make([]byte, 0, s.Len()/4)
	for i := 0; i < s.Len(); i += 4 {
		var b byte
		for j := 0; j < 4; j++ {
			b = b<<2 | byte(s.At(i+j))
		}
		out = append(out, b)
	}
	return out, nil
}

// Rotation is the Goldman-style rotation code [11]: each byte becomes six
// base-3 digits (3⁶ = 729 ≥ 256) and each digit selects one of the three
// bases *different from the previous base*, so the output contains no
// homopolymer of length 2 or more by construction. Density is 1.33 bits
// per base — the price of the homopolymer guarantee.
type Rotation struct{}

// Name implements SequenceCodec.
func (Rotation) Name() string { return "rotation" }

// BitsPerBase implements SequenceCodec.
func (Rotation) BitsPerBase() float64 { return 8.0 / 6.0 }

// tritsPerByte is the number of base-3 digits encoding one byte.
const tritsPerByte = 6

// rotationNext[prev][trit] is the base emitted for the given trit after
// prev; it is always != prev. The initial "previous base" is A (the
// encoder's virtual predecessor).
var rotationNext = [dna.NumBases][3]dna.Base{
	dna.A: {dna.C, dna.G, dna.T},
	dna.C: {dna.G, dna.T, dna.A},
	dna.G: {dna.T, dna.A, dna.C},
	dna.T: {dna.A, dna.C, dna.G},
}

// Encode implements SequenceCodec.
func (Rotation) Encode(data []byte) dna.Strand {
	out := make([]byte, 0, len(data)*tritsPerByte)
	prev := dna.A
	for _, b := range data {
		v := int(b)
		// Big-endian trits.
		for shift := tritsPerByte - 1; shift >= 0; shift-- {
			div := 1
			for k := 0; k < shift; k++ {
				div *= 3
			}
			trit := (v / div) % 3
			next := rotationNext[prev][trit]
			out = append(out, next.Byte())
			prev = next
		}
	}
	return dna.Strand(out)
}

// Decode implements SequenceCodec.
func (Rotation) Decode(s dna.Strand) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Len()%tritsPerByte != 0 {
		return nil, fmt.Errorf("codec: rotation strand length %d not a multiple of %d", s.Len(), tritsPerByte)
	}
	out := make([]byte, 0, s.Len()/tritsPerByte)
	prev := dna.A
	for i := 0; i < s.Len(); i += tritsPerByte {
		v := 0
		for j := 0; j < tritsPerByte; j++ {
			cur := s.At(i + j)
			trit := -1
			for t, b := range rotationNext[prev] {
				if b == cur {
					trit = t
					break
				}
			}
			if trit < 0 {
				return nil, fmt.Errorf("codec: homopolymer at position %d breaks rotation coding", i+j)
			}
			v = v*3 + trit
			prev = cur
		}
		if v > 255 {
			return nil, fmt.Errorf("codec: rotation group at %d decodes to %d > 255", i, v)
		}
		out = append(out, byte(v))
	}
	return out, nil
}

// GCBalanced wraps the 2-bit mapping in blocks guarded by a flag base:
// each block of BlockBytes data bytes is emitted either directly or with
// every base swapped A↔G, C↔T (which flips each position's GC
// contribution), whichever keeps the running GC-ratio closest to 50% —
// the stability constraint §1.2 describes. Density approaches 2 bits per
// base for large blocks.
type GCBalanced struct {
	// BlockBytes is the data bytes per balanced block (default 8).
	BlockBytes int
}

// Name implements SequenceCodec.
func (g GCBalanced) Name() string { return "gc-balanced" }

// BitsPerBase implements SequenceCodec.
func (g GCBalanced) BitsPerBase() float64 {
	bb := g.blockBytes()
	return float64(8*bb) / float64(4*bb+1)
}

func (g GCBalanced) blockBytes() int {
	if g.BlockBytes <= 0 {
		return 8
	}
	return g.BlockBytes
}

// flagDirect and flagSwapped mark whether a block is stored as-is; both
// flags are chosen GC-neutral in expectation (A is AT-class, G is
// GC-class, so the flag itself partially counterbalances the block).
const (
	flagDirect  = dna.A
	flagSwapped = dna.G
)

// gcSwap maps each base to its GC-flipping partner: A↔G, C↔T.
func gcSwap(b dna.Base) dna.Base {
	switch b {
	case dna.A:
		return dna.G
	case dna.G:
		return dna.A
	case dna.C:
		return dna.T
	default:
		return dna.C
	}
}

// Encode implements SequenceCodec.
func (g GCBalanced) Encode(data []byte) dna.Strand {
	bb := g.blockBytes()
	var t2 Trivial2Bit
	out := make([]byte, 0, len(data)*4+len(data)/bb+1)
	gc, total := 0, 0
	for start := 0; start < len(data); start += bb {
		end := start + bb
		if end > len(data) {
			end = len(data)
		}
		block := string(t2.Encode(data[start:end]))
		gcBlock := 0
		for i := 0; i < len(block); i++ {
			if block[i] == 'G' || block[i] == 'C' {
				gcBlock++
			}
		}
		// Choose the variant keeping the cumulative GC count closest to
		// half the cumulative length.
		directGC := gc + gcBlock
		swappedGC := gc + (len(block) - gcBlock)
		newTotal := total + len(block) + 1
		direct := absDiff(2*(directGC), newTotal) <= absDiff(2*(swappedGC+1), newTotal)
		if direct {
			out = append(out, flagDirect.Byte())
			out = append(out, block...)
			gc = directGC
		} else {
			out = append(out, flagSwapped.Byte())
			gc = swappedGC + 1 // the G flag counts toward GC
			for i := 0; i < len(block); i++ {
				b, _ := dna.BaseFromByte(block[i])
				out = append(out, gcSwap(b).Byte())
			}
		}
		total = newTotal
	}
	return dna.Strand(out)
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Decode implements SequenceCodec.
func (g GCBalanced) Decode(s dna.Strand) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	bb := g.blockBytes()
	blockBases := 4 * bb
	var t2 Trivial2Bit
	var out []byte
	for i := 0; i < s.Len(); {
		flag := s.At(i)
		i++
		end := i + blockBases
		if end > s.Len() {
			end = s.Len()
		}
		if end == i {
			return nil, fmt.Errorf("codec: dangling flag base at %d", i-1)
		}
		block := []byte(s[i:end])
		switch flag {
		case flagSwapped:
			for j := range block {
				b, err := dna.BaseFromByte(block[j])
				if err != nil {
					return nil, err
				}
				block[j] = gcSwap(b).Byte()
			}
		case flagDirect:
			// as-is
		default:
			return nil, fmt.Errorf("codec: invalid block flag %q at %d", flag, i-1)
		}
		data, err := t2.Decode(dna.Strand(block))
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		i = end
	}
	return out, nil
}
