package codec

import (
	"bytes"
	"fmt"
	"sort"

	"dnastore/internal/dna"
)

// Archive encodes whole byte payloads into indexed DNA strands and decodes
// them back after sequencing and reconstruction — the file layout of a DNA
// archival store (§1.1 steps 1–2 and 6). Each strand carries:
//
//	[ index | payload chunk | RS strand parity ]
//
// encoded with a SequenceCodec. Logical redundancy operates at two levels,
// mirroring deployed systems:
//
//   - per-strand Reed–Solomon parity detects and corrects residual
//     substitutions that survive trace reconstruction (corruption);
//   - cross-strand Reed–Solomon groups reconstruct strands lost entirely
//     (erasures) or too corrupted to decode, as in Grass et al. [12].
type Archive struct {
	// Codec is the byte↔DNA mapping (default Trivial2Bit).
	Codec SequenceCodec
	// PayloadBytes is the data bytes carried per strand (default 20).
	PayloadBytes int
	// StrandParity is the per-strand RS parity byte count (default 4).
	StrandParity int
	// GroupData and GroupParity configure the cross-strand erasure code:
	// every GroupData data strands gain GroupParity parity strands
	// (defaults 16 and 4).
	GroupData, GroupParity int
}

// indexBytes is the fixed width of the strand index prefix (supports 2³²
// strands, orders of magnitude beyond any single-pool experiment).
const indexBytes = 4

// totalBytes is the fixed width of the per-strand total-chunk-count field.
// Every strand carries the pool layout so decoding never has to infer it
// from the (possibly erased) highest-indexed strand.
const totalBytes = 4

func (a Archive) codec() SequenceCodec {
	if a.Codec == nil {
		return Trivial2Bit{}
	}
	return a.Codec
}

func (a Archive) payloadBytes() int {
	if a.PayloadBytes <= 0 {
		return 20
	}
	return a.PayloadBytes
}

func (a Archive) strandParity() int {
	if a.StrandParity <= 0 {
		return 4
	}
	return a.StrandParity
}

func (a Archive) group() (int, int) {
	d, p := a.GroupData, a.GroupParity
	if d <= 0 {
		d = 16
	}
	if p <= 0 {
		p = 4
	}
	return d, p
}

// Encode lays the payload out into DNA strands. The returned strands are
// ordered by index: data strands first, then group parity strands.
func (a Archive) Encode(data []byte) ([]dna.Strand, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("codec: empty payload")
	}
	pb := a.payloadBytes()
	gd, gp := a.group()

	// Split into fixed-size chunks, zero-padded; a 4-byte length header in
	// the first chunk restores the exact payload size.
	header := []byte{
		byte(len(data) >> 24), byte(len(data) >> 16), byte(len(data) >> 8), byte(len(data)),
	}
	payload := append(header, data...)
	nChunks := (len(payload) + pb - 1) / pb
	chunks := make([][]byte, 0, nChunks+((nChunks+gd-1)/gd)*gp)
	for i := 0; i < nChunks; i++ {
		chunk := make([]byte, pb)
		copy(chunk, payload[i*pb:min(len(payload), (i+1)*pb)])
		// Whiten so repetitive payloads yield mutually dissimilar strands;
		// without this, identical chunks produce identical strands that a
		// similarity clusterer cannot tell apart.
		whiten(chunk, i)
		chunks = append(chunks, chunk)
	}

	// Cross-strand parity: for each group of gd chunks, add gp parity
	// chunks computed column-wise by RS.
	groupRS, err := NewRS(gp)
	if err != nil {
		return nil, err
	}
	nGroups := (nChunks + gd - 1) / gd
	for g := 0; g < nGroups; g++ {
		start := g * gd
		end := start + gd
		if end > nChunks {
			end = nChunks
		}
		parity := make([][]byte, gp)
		for p := range parity {
			parity[p] = make([]byte, pb)
		}
		col := make([]byte, end-start)
		for c := 0; c < pb; c++ {
			for r := start; r < end; r++ {
				col[r-start] = chunks[r][c]
			}
			cw, err := groupRS.Encode(col)
			if err != nil {
				return nil, err
			}
			for p := 0; p < gp; p++ {
				parity[p][c] = cw[len(col)+p]
			}
		}
		chunks = append(chunks, parity...)
	}

	// Per-strand encoding with index, layout descriptor and strand-level
	// parity.
	strandRS, err := NewRS(a.strandParity())
	if err != nil {
		return nil, err
	}
	total := len(chunks)
	out := make([]dna.Strand, len(chunks))
	for i, chunk := range chunks {
		rec := make([]byte, 0, indexBytes+totalBytes+len(chunk))
		rec = append(rec, byte(i>>24), byte(i>>16), byte(i>>8), byte(i))
		rec = append(rec, byte(total>>24), byte(total>>16), byte(total>>8), byte(total))
		rec = append(rec, chunk...)
		cw, err := strandRS.Encode(rec)
		if err != nil {
			return nil, err
		}
		out[i] = a.codec().Encode(cw)
	}
	return out, nil
}

// DecodeReport details per-strand outcomes of a Decode pass. Strand and
// chunk are synonymous here: every designed strand carries exactly one
// chunk, so the indexes below are designed-strand indexes.
type DecodeReport struct {
	// Strands is the number of reconstructed strands presented.
	Strands int
	// Undecodable counts presented strands whose codeword failed base
	// decoding or per-strand RS entirely (treated as erased).
	Undecodable int
	// TotalChunks is the layout total (data + parity) from the majority
	// vote, 0 when no strand decoded.
	TotalChunks int
	// Clean counts chunks recovered with zero RS corrections.
	Clean int
	// Repaired counts chunks that needed per-strand RS correction.
	Repaired int
	// Erased counts chunks missing entirely but rebuilt from group parity.
	Erased int
	// Unrecovered lists chunk indexes lost beyond parity capacity.
	Unrecovered []int
}

// Recovered reports whether every chunk was accounted for.
func (r *DecodeReport) Recovered() bool { return r.TotalChunks > 0 && len(r.Unrecovered) == 0 }

// Decode reassembles the payload from reconstructed strands (in any order,
// with duplicates, missing strands and residual errors tolerated up to the
// configured redundancy).
func (a Archive) Decode(strands []dna.Strand) ([]byte, error) {
	data, _, err := a.DecodeReport(strands)
	return data, err
}

// DecodeReport is Decode that also returns a per-strand erasure/repair
// report. The report is always non-nil, including on failure, so callers
// can surface which strands were lost; unrecoverable groups are all
// collected rather than aborting at the first.
func (a Archive) DecodeReport(strands []dna.Strand) ([]byte, *DecodeReport, error) {
	report := &DecodeReport{Strands: len(strands)}
	pb := a.payloadBytes()
	gd, gp := a.group()
	strandRS, err := NewRS(a.strandParity())
	if err != nil {
		return nil, report, err
	}
	groupRS, err := NewRS(gp)
	if err != nil {
		return nil, report, err
	}

	recLen := indexBytes + totalBytes + pb + a.strandParity()
	chunks := map[int][]byte{}
	repaired := map[int]bool{}
	// A garbled reconstruction occasionally RS-miscorrects into a "valid"
	// record carrying a junk index. Junk indexes are uniform over 2³², so
	// bounding by a small multiple of the observed strand count rejects
	// almost all of them while never rejecting a genuine index.
	maxPlausible := 2*len(strands) + 64
	totalVotes := map[int]int{}
	for _, s := range strands {
		cw, err := a.codec().Decode(s)
		if err != nil || len(cw) != recLen {
			report.Undecodable++
			continue // undecodable strand: treat as erased
		}
		rec, nCorrected, err := strandRS.DecodeDetail(cw, nil)
		if err != nil {
			report.Undecodable++
			continue // beyond per-strand parity: erased
		}
		idx := int(rec[0])<<24 | int(rec[1])<<16 | int(rec[2])<<8 | int(rec[3])
		tot := int(rec[4])<<24 | int(rec[5])<<16 | int(rec[6])<<8 | int(rec[7])
		if idx < 0 || idx >= maxPlausible || tot <= idx || tot >= maxPlausible {
			continue
		}
		totalVotes[tot]++
		if _, dup := chunks[idx]; !dup {
			chunks[idx] = append([]byte(nil), rec[indexBytes+totalBytes:]...)
			repaired[idx] = nCorrected > 0
		}
	}
	if len(chunks) == 0 {
		return nil, report, fmt.Errorf("codec: no decodable strands")
	}

	// The layout descriptor is replicated on every strand; take the
	// majority vote so a rare miscorrected record cannot misframe the
	// groups.
	total, bestVotes := 0, 0
	for tot, v := range totalVotes {
		if v > bestVotes || (v == bestVotes && tot > total) {
			total, bestVotes = tot, v
		}
	}
	nChunks := dataChunkCount(total, gd, gp)
	if nChunks <= 0 {
		return nil, report, fmt.Errorf("codec: inconsistent strand count %d", total)
	}
	report.TotalChunks = total
	for idx, wasRepaired := range repaired {
		if idx >= total {
			continue // junk index that slipped past plausibility bounds
		}
		if wasRepaired {
			report.Repaired++
		} else {
			report.Clean++
		}
	}

	// Group-level erasure recovery. Unrecoverable groups are recorded and
	// skipped so the report names every lost strand, not just the first
	// failing group's.
	nGroups := (nChunks + gd - 1) / gd
	for g := 0; g < nGroups; g++ {
		start := g * gd
		end := start + gd
		if end > nChunks {
			end = nChunks
		}
		rows := make([]int, 0, end-start+gp)
		for r := start; r < end; r++ {
			rows = append(rows, r)
		}
		for p := 0; p < gp; p++ {
			rows = append(rows, nChunks+g*gp+p)
		}
		var missing []int
		for i, r := range rows {
			if chunks[r] == nil {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			continue
		}
		if len(missing) > gp {
			for _, i := range missing {
				report.Unrecovered = append(report.Unrecovered, rows[i])
			}
			continue
		}
		// Column-wise erasure decode.
		recovered := make([][]byte, len(rows))
		for i := range recovered {
			if chunks[rows[i]] != nil {
				recovered[i] = chunks[rows[i]]
			} else {
				recovered[i] = make([]byte, pb)
			}
		}
		groupOK := true
		for c := 0; c < pb; c++ {
			col := make([]byte, len(rows))
			for i := range rows {
				col[i] = recovered[i][c]
			}
			if _, err := groupRS.Decode(col, missing); err != nil {
				groupOK = false
				break
			}
			for i := range rows {
				recovered[i][c] = col[i]
			}
		}
		if !groupOK {
			for _, i := range missing {
				report.Unrecovered = append(report.Unrecovered, rows[i])
			}
			continue
		}
		report.Erased += len(missing)
		for i, r := range rows {
			if chunks[r] == nil {
				chunks[r] = recovered[i]
			}
		}
	}
	if len(report.Unrecovered) > 0 {
		sort.Ints(report.Unrecovered)
		return nil, report, fmt.Errorf("codec: %d strands unrecoverable (indexes %v)",
			len(report.Unrecovered), report.Unrecovered)
	}

	// Reassemble the payload, undoing the per-chunk whitening.
	var buf bytes.Buffer
	for i := 0; i < nChunks; i++ {
		if chunks[i] == nil {
			return nil, report, fmt.Errorf("codec: chunk %d missing after recovery", i)
		}
		whiten(chunks[i], i) // XOR keystream is an involution
		buf.Write(chunks[i])
	}
	payload := buf.Bytes()
	if len(payload) < 4 {
		return nil, report, fmt.Errorf("codec: payload too short for header")
	}
	size := int(payload[0])<<24 | int(payload[1])<<16 | int(payload[2])<<8 | int(payload[3])
	if size < 0 || size > len(payload)-4 {
		return nil, report, fmt.Errorf("codec: corrupt payload size %d", size)
	}
	return payload[4 : 4+size], report, nil
}

// dataChunkCount inverts total = n + ceil(n/gd)*gp for the data count n.
func dataChunkCount(total, gd, gp int) int {
	// total grows monotonically with n; binary search.
	lo, hi := 1, total
	for lo < hi {
		mid := (lo + hi) / 2
		t := mid + ((mid+gd-1)/gd)*gp
		switch {
		case t == total:
			return mid
		case t < total:
			lo = mid + 1
		default:
			hi = mid
		}
	}
	if lo+((lo+gd-1)/gd)*gp == total {
		return lo
	}
	return -1
}

// StrandLength returns the designed strand length (bases) for this layout,
// assuming a fixed-rate codec.
func (a Archive) StrandLength() int {
	recLen := indexBytes + totalBytes + a.payloadBytes() + a.strandParity()
	return a.codec().Encode(make([]byte, recLen)).Len()
}

// SortStrands orders strands deterministically (for stable on-disk
// output); strand content order has no semantic meaning after Encode.
func SortStrands(strands []dna.Strand) {
	sort.Slice(strands, func(i, j int) bool { return strands[i] < strands[j] })
}

// whiten XORs a chunk with a SplitMix64 keystream keyed by the strand
// index. Applied before the group parity is computed (parity chunks are
// already pseudorandom and are not whitened); XOR makes it self-inverse.
func whiten(chunk []byte, idx int) {
	state := uint64(idx)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for i := range chunk {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		chunk[i] ^= byte(z ^ (z >> 31))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
