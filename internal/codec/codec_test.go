package codec

import (
	"bytes"
	"testing"
	"testing/quick"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func codecs() []SequenceCodec {
	return []SequenceCodec{Trivial2Bit{}, Rotation{}, GCBalanced{}, GCBalanced{BlockBytes: 3}}
}

func TestSequenceCodecRoundTripQuick(t *testing.T) {
	for _, c := range codecs() {
		c := c
		f := func(data []byte) bool {
			s := c.Encode(data)
			if s.Validate() != nil {
				return false
			}
			got, err := c.Decode(s)
			if err != nil {
				return false
			}
			if len(data) == 0 {
				return len(got) == 0
			}
			return bytes.Equal(got, data)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestTrivial2BitKnownValues(t *testing.T) {
	s := Trivial2Bit{}.Encode([]byte{0b00011011})
	if s != "ACGT" {
		t.Errorf("encode = %q, want ACGT", s)
	}
	if _, err := (Trivial2Bit{}).Decode("ACG"); err == nil {
		t.Error("length not multiple of 4 accepted")
	}
	if _, err := (Trivial2Bit{}).Decode("ACGN"); err == nil {
		t.Error("invalid base accepted")
	}
}

func TestRotationNoHomopolymers(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 100; trial++ {
		data := make([]byte, 1+r.Intn(60))
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		s := Rotation{}.Encode(data)
		if s.MaxHomopolymerLen() > 1 {
			t.Fatalf("rotation produced homopolymer: %q", s)
		}
	}
}

func TestRotationRejectsHomopolymer(t *testing.T) {
	if _, err := (Rotation{}).Decode("CCGTAC"); err == nil {
		t.Error("homopolymer input accepted")
	}
	if _, err := (Rotation{}).Decode("CGTAC"); err == nil {
		t.Error("bad length accepted")
	}
}

func TestRotationDensity(t *testing.T) {
	if (Rotation{}).BitsPerBase() >= (Trivial2Bit{}).BitsPerBase() {
		t.Error("rotation should be less dense than 2-bit")
	}
}

func TestGCBalancedRatio(t *testing.T) {
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 64)
		for i := range data {
			// Adversarial: heavy GC content under the trivial mapping.
			data[i] = 0b01100101 // C G C C
		}
		_ = trial
		s := GCBalanced{}.Encode(data)
		gc := s.GCRatio()
		if gc < 0.40 || gc > 0.60 {
			t.Fatalf("GC ratio %v out of [0.40, 0.60]", gc)
		}
		got, err := GCBalanced{}.Decode(s)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip failed")
		}
		data[0] = byte(r.Intn(256))
	}
}

func TestGCBalancedRejectsBadFlag(t *testing.T) {
	g := GCBalanced{BlockBytes: 1}
	s := g.Encode([]byte{0x42})
	bad := "C" + string(s[1:])
	if _, err := g.Decode(dna.Strand(bad)); err == nil {
		t.Error("invalid flag accepted")
	}
	if _, err := g.Decode("A"); err == nil {
		t.Error("dangling flag accepted")
	}
}

func TestArchiveRoundTripClean(t *testing.T) {
	a := Archive{}
	data := []byte("the quick brown fox jumps over the lazy dog, archived in DNA")
	strands, err := a.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range strands {
		if s.Len() != a.StrandLength() {
			t.Fatalf("strand length %d != %d", s.Len(), a.StrandLength())
		}
	}
	got, err := a.Decode(strands)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestArchiveRoundTripCodecs(t *testing.T) {
	for _, c := range codecs() {
		a := Archive{Codec: c}
		data := bytes.Repeat([]byte("payload!"), 20)
		strands, err := a.Encode(data)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		got, err := a.Decode(strands)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: mismatch", c.Name())
		}
	}
}

func TestArchiveSurvivesErasures(t *testing.T) {
	a := Archive{GroupData: 8, GroupParity: 3}
	data := bytes.Repeat([]byte{0xAB, 0xCD, 0x01}, 40)
	strands, err := a.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Drop up to GroupParity strands from the first group.
	survivors := append([]dna.Strand(nil), strands...)
	survivors = append(survivors[:2], survivors[5:]...) // drop 3 strands
	got, err := a.Decode(survivors)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("erasure recovery mismatch")
	}
}

func TestArchiveSurvivesShuffleAndDuplicates(t *testing.T) {
	a := Archive{}
	data := bytes.Repeat([]byte("dna"), 50)
	strands, _ := a.Encode(data)
	r := rng.New(3)
	pool := append([]dna.Strand(nil), strands...)
	pool = append(pool, strands[0], strands[3]) // duplicates
	r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	got, err := a.Decode(pool)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("shuffled decode mismatch")
	}
}

func TestArchiveSurvivesSubstitutions(t *testing.T) {
	// Per-strand RS parity (4 bytes → 2 byte errors) should absorb a
	// couple of substituted bases per strand.
	a := Archive{StrandParity: 6}
	data := bytes.Repeat([]byte("resilience"), 10)
	strands, _ := a.Encode(data)
	r := rng.New(4)
	corrupted := make([]dna.Strand, len(strands))
	for i, s := range strands {
		b := []byte(s)
		for e := 0; e < 2; e++ {
			p := r.Intn(len(b))
			b[p] = dna.Base(r.Intn(dna.NumBases)).Byte()
		}
		corrupted[i] = dna.Strand(b)
	}
	got, err := a.Decode(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("substitution recovery mismatch")
	}
}

func TestArchiveFailsBeyondRedundancy(t *testing.T) {
	a := Archive{GroupData: 8, GroupParity: 2}
	data := bytes.Repeat([]byte{7}, 200)
	strands, _ := a.Encode(data)
	if _, err := a.Decode(strands[4:]); err == nil {
		t.Error("decode succeeded after losing 4 strands with parity 2")
	}
	if _, err := a.Decode(nil); err == nil {
		t.Error("decode of nothing succeeded")
	}
	if _, err := a.Encode(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestArchiveDecodeReport(t *testing.T) {
	// 156 payload bytes + 4 header = 160 = 8 chunks of 20: exactly one
	// group of 8 data + 3 parity strands.
	a := Archive{StrandParity: 6, GroupData: 8, GroupParity: 3}
	data := bytes.Repeat([]byte("report"), 26)
	strands, err := a.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(strands) != 11 {
		t.Fatalf("layout changed: %d strands, test assumes 11", len(strands))
	}

	t.Run("clean", func(t *testing.T) {
		got, rep, err := a.DecodeReport(strands)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("clean decode: %v", err)
		}
		if rep.Clean != 11 || rep.Repaired != 0 || rep.Erased != 0 || len(rep.Unrecovered) != 0 {
			t.Errorf("clean report: %+v", rep)
		}
		if !rep.Recovered() {
			t.Error("clean decode not Recovered")
		}
	})

	t.Run("erasures within capacity", func(t *testing.T) {
		survivors := append([]dna.Strand(nil), strands[3:]...) // drop 3 data strands
		got, rep, err := a.DecodeReport(survivors)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("erasure decode: %v", err)
		}
		if rep.Erased != 3 || rep.Clean != 8 {
			t.Errorf("erasure report: %+v", rep)
		}
	})

	t.Run("strand repaired by RS", func(t *testing.T) {
		corrupted := append([]dna.Strand(nil), strands...)
		b := []byte(corrupted[4])
		for _, p := range []int{10, 30} {
			if b[p] == 'A' {
				b[p] = 'C'
			} else {
				b[p] = 'A'
			}
		}
		corrupted[4] = dna.Strand(b)
		got, rep, err := a.DecodeReport(corrupted)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("repair decode: %v", err)
		}
		if rep.Repaired != 1 || rep.Clean != 10 {
			t.Errorf("repair report: %+v", rep)
		}
	})

	t.Run("beyond capacity names the lost strands", func(t *testing.T) {
		survivors := append([]dna.Strand(nil), strands[4:]...) // drop 4 > parity 3
		_, rep, err := a.DecodeReport(survivors)
		if err == nil {
			t.Fatal("over-capacity decode succeeded")
		}
		if rep.Recovered() {
			t.Error("failed decode reports Recovered")
		}
		want := []int{0, 1, 2, 3}
		if len(rep.Unrecovered) != len(want) {
			t.Fatalf("Unrecovered = %v, want %v", rep.Unrecovered, want)
		}
		for i, idx := range rep.Unrecovered {
			if idx != want[i] {
				t.Errorf("Unrecovered = %v, want %v", rep.Unrecovered, want)
				break
			}
		}
	})
}

func TestDataChunkCount(t *testing.T) {
	for _, n := range []int{1, 5, 16, 17, 160, 1000} {
		gd, gp := 16, 4
		total := n + ((n+gd-1)/gd)*gp
		if got := dataChunkCount(total, gd, gp); got != n {
			t.Errorf("dataChunkCount(%d) = %d, want %d", total, got, n)
		}
	}
	if dataChunkCount(3, 16, 4) > 0 && dataChunkCount(3, 16, 4)+4 != 3 {
		// 3 total strands is impossible with this layout (1 data → 5).
		if dataChunkCount(3, 16, 4) != -1 {
			t.Error("impossible total accepted")
		}
	}
}

func TestXORRoundTrip(t *testing.T) {
	chunks := [][]byte{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}
	enc, err := XOREncode(chunks)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 5+3 {
		t.Fatalf("encoded %d chunks", len(enc))
	}
	// Lose one chunk per pair.
	enc[0] = nil // member of pair 0
	enc[3] = nil // member of pair 1
	enc[7] = nil // parity of pair 2 (lone member 4)
	if err := XORRecover(enc, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc[0], []byte{1, 2}) || !bytes.Equal(enc[3], []byte{7, 8}) {
		t.Error("XOR recovery wrong")
	}
}

func TestXORRecoverFailsTwoLosses(t *testing.T) {
	chunks := [][]byte{{1}, {2}}
	enc, _ := XOREncode(chunks)
	enc[0], enc[1] = nil, nil
	if err := XORRecover(enc, 2); err == nil {
		t.Error("two losses in one pair recovered")
	}
}

func TestXORErrors(t *testing.T) {
	if _, err := XOREncode(nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := XOREncode([][]byte{{1}, {2, 3}}); err == nil {
		t.Error("ragged chunks accepted")
	}
	if err := XORRecover([][]byte{{1}}, 0); err == nil {
		t.Error("bad nData accepted")
	}
	if err := XORRecover([][]byte{{1}, {2}}, 2); err == nil {
		t.Error("bad layout accepted")
	}
}

func TestGeneratePrimers(t *testing.T) {
	r := rng.New(5)
	cfg := PrimerConfig{}
	lib, err := GeneratePrimers(8, cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib) != 8 {
		t.Fatalf("got %d primers", len(lib))
	}
	for i, p := range lib {
		if !cfg.Valid(p) {
			t.Errorf("primer %d violates constraints: %q", i, p)
		}
		gc := p.GCRatio()
		if gc < 0.45 || gc > 0.55 {
			t.Errorf("primer %d GC = %v", i, gc)
		}
		if p.HasHomopolymerOver(2) {
			t.Errorf("primer %d has homopolymer: %q", i, p)
		}
	}
	if _, err := GeneratePrimers(0, cfg, r); err == nil {
		t.Error("zero primers accepted")
	}
}
