package codec

import (
	"bytes"
	"testing"

	"dnastore/internal/rng"
)

func randMsg(r *rng.RNG, n int) []byte {
	msg := make([]byte, n)
	for i := range msg {
		msg[i] = byte(r.Intn(256))
	}
	return msg
}

func TestGFFieldProperties(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 2000; i++ {
		a, b := byte(r.Intn(255)+1), byte(r.Intn(255)+1)
		if gfMul(a, gfInv(a)) != 1 {
			t.Fatalf("a·a⁻¹ != 1 for %d", a)
		}
		if gfDiv(gfMul(a, b), b) != a {
			t.Fatalf("(a·b)/b != a for %d,%d", a, b)
		}
	}
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 {
		t.Error("multiplication by zero")
	}
	if gfPow(2, 0) != 1 {
		t.Error("x^0 != 1")
	}
	if gfPow(0, 3) != 0 || gfPow(0, 0) != 1 {
		t.Error("0^p wrong")
	}
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	gfDiv(3, 0)
}

func TestPolyOps(t *testing.T) {
	p := []byte{1, 2} // x + 2
	q := []byte{1, 3} // x + 3
	prod := polyMul(p, q)
	// (x+2)(x+3) = x² + (2⊕3)x + 6̄ where 2·3=6 in GF(256)
	if len(prod) != 3 || prod[0] != 1 || prod[1] != 1 || prod[2] != gfMul(2, 3) {
		t.Errorf("polyMul = %v", prod)
	}
	if polyEval([]byte{1, 0, 0}, 2) != 4 { // x² at x=2
		t.Errorf("polyEval x² at 2 = %d", polyEval([]byte{1, 0, 0}, 2))
	}
	sum := polyAdd([]byte{1}, []byte{1, 0})
	if len(sum) != 2 || sum[0] != 1 || sum[1] != 1 {
		t.Errorf("polyAdd = %v", sum)
	}
}

func TestRSBadParams(t *testing.T) {
	if _, err := NewRS(0); err == nil {
		t.Error("nsym 0 accepted")
	}
	if _, err := NewRS(255); err == nil {
		t.Error("nsym 255 accepted")
	}
	rs := MustRS(8)
	if _, err := rs.Encode(nil); err == nil {
		t.Error("empty message accepted")
	}
	if _, err := rs.Encode(make([]byte, 250)); err == nil {
		t.Error("overlong message accepted")
	}
	if _, err := rs.Decode(make([]byte, 4), nil); err == nil {
		t.Error("short codeword accepted")
	}
	if _, err := rs.Decode(make([]byte, 20), []int{99}); err == nil {
		t.Error("out-of-range erasure accepted")
	}
}

func TestRSCleanRoundTrip(t *testing.T) {
	rs := MustRS(10)
	r := rng.New(2)
	for trial := 0; trial < 50; trial++ {
		msg := randMsg(r, 1+r.Intn(200))
		cw, err := rs.Encode(msg)
		if err != nil {
			t.Fatal(err)
		}
		if len(cw) != len(msg)+10 {
			t.Fatalf("codeword length %d", len(cw))
		}
		got, err := rs.Decode(append([]byte(nil), cw...), nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatal("clean round trip mismatch")
		}
	}
}

func TestRSCorrectsErrors(t *testing.T) {
	rs := MustRS(16) // corrects up to 8 unknown errors
	r := rng.New(3)
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, 50)
		cw, _ := rs.Encode(msg)
		nErr := 1 + r.Intn(8)
		corrupted := append([]byte(nil), cw...)
		positions := r.Perm(len(cw))[:nErr]
		for _, p := range positions {
			corrupted[p] ^= byte(1 + r.Intn(255))
		}
		got, err := rs.Decode(corrupted, nil)
		if err != nil {
			t.Fatalf("trial %d: %d errors not corrected: %v", trial, nErr, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: wrong correction", trial)
		}
	}
}

func TestRSCorrectsErasures(t *testing.T) {
	rs := MustRS(16) // corrects up to 16 erasures
	r := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, 60)
		cw, _ := rs.Encode(msg)
		nEra := 1 + r.Intn(16)
		corrupted := append([]byte(nil), cw...)
		positions := r.Perm(len(cw))[:nEra]
		for _, p := range positions {
			corrupted[p] = 0
		}
		got, err := rs.Decode(corrupted, positions)
		if err != nil {
			t.Fatalf("trial %d: %d erasures not corrected: %v", trial, nEra, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: wrong erasure correction", trial)
		}
	}
}

func TestRSCorrectsMixedErrata(t *testing.T) {
	rs := MustRS(16)
	r := rng.New(5)
	for trial := 0; trial < 200; trial++ {
		msg := randMsg(r, 40)
		cw, _ := rs.Encode(msg)
		// 2t + e <= 16.
		nEra := r.Intn(9)       // 0..8
		nErr := (16 - nEra) / 2 // max unknown errors
		if nErr > 0 {
			nErr = 1 + r.Intn(nErr)
		}
		perm := r.Perm(len(cw))
		corrupted := append([]byte(nil), cw...)
		erasures := perm[:nEra]
		for _, p := range erasures {
			corrupted[p] = byte(r.Intn(256))
		}
		for _, p := range perm[nEra : nEra+nErr] {
			corrupted[p] ^= byte(1 + r.Intn(255))
		}
		got, err := rs.Decode(corrupted, erasures)
		if err != nil {
			t.Fatalf("trial %d: e=%d t=%d: %v", trial, nEra, nErr, err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("trial %d: wrong mixed correction (e=%d t=%d)", trial, nEra, nErr)
		}
	}
}

func TestRSRejectsBeyondCapacity(t *testing.T) {
	rs := MustRS(8)
	r := rng.New(6)
	failures := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		msg := randMsg(r, 40)
		cw, _ := rs.Encode(msg)
		corrupted := append([]byte(nil), cw...)
		for _, p := range r.Perm(len(cw))[:12] { // way beyond capacity 4
			corrupted[p] ^= byte(1 + r.Intn(255))
		}
		got, err := rs.Decode(corrupted, nil)
		if err != nil || !bytes.Equal(got, msg) {
			failures++
		}
	}
	// Beyond capacity the decoder must not silently "succeed" back to the
	// original message; miscorrections to *other* codewords are possible
	// but returning the true message would be a logic error.
	if failures != trials {
		t.Errorf("decoder recovered the true message beyond capacity in %d/%d trials", trials-failures, trials)
	}
}

func TestRSTooManyErasures(t *testing.T) {
	rs := MustRS(4)
	msg := []byte{1, 2, 3, 4, 5}
	cw, _ := rs.Encode(msg)
	if _, err := rs.Decode(cw, []int{0, 1, 2, 3, 4}); err == nil {
		t.Error("5 erasures accepted with 4 parity symbols")
	}
}
