package codec_test

// These integration tests exercise codec through the channel simulator;
// they live in the external test package because channel (via durable)
// imports codec, and an in-package test importing channel would cycle.

import (
	"bytes"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestSelectAmplify(t *testing.T) {
	r := rng.New(6)
	lib, err := codec.GeneratePrimers(2, codec.PrimerConfig{}, r)
	if err != nil {
		t.Fatal(err)
	}
	payloadA := channel.RandomReferences(5, 60, 7)
	payloadB := channel.RandomReferences(5, 60, 8)
	pool := append(codec.Tag(lib[0], payloadA), codec.Tag(lib[1], payloadB)...)
	got := codec.SelectAmplify(pool, lib[0], 2)
	if len(got) != 5 {
		t.Fatalf("amplified %d strands, want 5", len(got))
	}
	for i, s := range got {
		if s != payloadA[i] {
			t.Errorf("strand %d corrupted by amplification", i)
		}
	}
	// Noisy primer region still amplifies within the mismatch budget.
	noisy := []byte(pool[0])
	noisy[3] = 'A'
	noisy[7] = 'C'
	got = codec.SelectAmplify([]dna.Strand{dna.Strand(noisy)}, lib[0], 2)
	if len(got) > 1 {
		t.Error("noisy primer over-amplified")
	}
	// Short reads are skipped.
	if n := len(codec.SelectAmplify([]dna.Strand{"ACG"}, lib[0], 2)); n != 0 {
		t.Errorf("short read amplified (%d)", n)
	}
}

func TestArchiveEndToEndThroughChannel(t *testing.T) {
	// Encode → simulate a mild channel with coverage → reconstruct by
	// majority → decode. The integration test for the whole pipeline.
	a := codec.Archive{StrandParity: 6, GroupData: 8, GroupParity: 4}
	data := bytes.Repeat([]byte("end to end! "), 25)
	strands, err := a.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	sim := channel.Simulator{
		Channel:  channel.NewNaive("mild", channel.Rates{Sub: 0.01}),
		Coverage: channel.FixedCoverage(7),
	}
	ds := sim.Simulate("pipe", strands, 99)
	recovered := make([]dna.Strand, len(ds.Clusters))
	for i, c := range ds.Clusters {
		// Substitution-only channel: plain per-position majority suffices.
		recovered[i] = majorityVote(c.Reads, c.Ref.Len())
	}
	got, err := a.Decode(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("end-to-end mismatch")
	}
}

// majorityVote is a tiny local consensus to avoid importing recon (which
// would create a cycle in the test dependency graph for coverage tools).
func majorityVote(reads []dna.Strand, length int) dna.Strand {
	out := make([]byte, 0, length)
	for i := 0; i < length; i++ {
		var counts [dna.NumBases]int
		for _, r := range reads {
			if i < r.Len() {
				counts[r.At(i)]++
			}
		}
		best, bestN := 0, -1
		for b, n := range counts {
			if n > bestN {
				best, bestN = b, n
			}
		}
		out = append(out, dna.Base(best).Byte())
	}
	return dna.Strand(out)
}
