package codec

import (
	"fmt"

	"dnastore/internal/align"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Primer design for PCR random access (§1.1.1, Yazdi et al. [25] and
// Bornholt et al. [4]): each stored object is keyed by a primer sequence
// prepended to its strands, and retrieval amplifies only strands carrying
// the chosen primer. Usable primers must be mutually distant (so PCR does
// not cross-amplify), GC-balanced and homopolymer-free (so they bind
// reliably).

// PrimerConfig constrains generated primers.
type PrimerConfig struct {
	// Length is the primer length in bases (default 20, the deployed
	// standard).
	Length int
	// MinPairDistance is the minimum edit distance between any two primers
	// in a library (default Length/3).
	MinPairDistance int
	// GCLow, GCHigh bound the GC-ratio (defaults 0.45 and 0.55).
	GCLow, GCHigh float64
	// MaxHomopolymer bounds run lengths (default 2).
	MaxHomopolymer int
}

func (c PrimerConfig) length() int {
	if c.Length <= 0 {
		return 20
	}
	return c.Length
}

func (c PrimerConfig) minDist() int {
	if c.MinPairDistance <= 0 {
		return c.length() / 3
	}
	return c.MinPairDistance
}

func (c PrimerConfig) gcBounds() (float64, float64) {
	lo, hi := c.GCLow, c.GCHigh
	if lo <= 0 {
		lo = 0.45
	}
	if hi <= 0 {
		hi = 0.55
	}
	return lo, hi
}

func (c PrimerConfig) maxHomopolymer() int {
	if c.MaxHomopolymer <= 0 {
		return 2
	}
	return c.MaxHomopolymer
}

// Valid reports whether a candidate satisfies the standalone constraints.
func (c PrimerConfig) Valid(p dna.Strand) bool {
	if p.Len() != c.length() {
		return false
	}
	lo, hi := c.gcBounds()
	gc := p.GCRatio()
	if gc < lo || gc > hi {
		return false
	}
	return !p.HasHomopolymerOver(c.maxHomopolymer())
}

// GeneratePrimers searches randomly for n mutually-distant valid primers.
// It fails if the search budget (attempts per primer) is exhausted —
// typically a sign the constraints are unsatisfiable at the given length.
func GeneratePrimers(n int, cfg PrimerConfig, r *rng.RNG) ([]dna.Strand, error) {
	if n <= 0 {
		return nil, fmt.Errorf("codec: primer count must be positive")
	}
	const attemptsPer = 20000
	lib := make([]dna.Strand, 0, n)
	buf := make([]byte, cfg.length())
	for len(lib) < n {
		found := false
		for attempt := 0; attempt < attemptsPer; attempt++ {
			for i := range buf {
				buf[i] = dna.Base(r.Intn(dna.NumBases)).Byte()
			}
			cand := dna.Strand(string(buf))
			if !cfg.Valid(cand) {
				continue
			}
			ok := true
			for _, p := range lib {
				if align.Similar(string(p), string(cand), cfg.minDist()-1) {
					ok = false
					break
				}
			}
			if ok {
				lib = append(lib, cand)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("codec: primer search exhausted after %d primers", len(lib))
		}
	}
	return lib, nil
}

// Tag prepends a primer to every strand — the stored form of a keyed
// object.
func Tag(primer dna.Strand, strands []dna.Strand) []dna.Strand {
	out := make([]dna.Strand, len(strands))
	for i, s := range strands {
		out[i] = primer + s
	}
	return out
}

// SelectAmplify models PCR retrieval over a mixed pool: reads whose prefix
// is within maxMismatch edit distance of the primer are amplified
// (returned with the primer region stripped); everything else is left
// behind. Imperfect selectivity — the §1.1.1 caveat — appears when
// maxMismatch is generous enough to capture other objects' primers.
func SelectAmplify(pool []dna.Strand, primer dna.Strand, maxMismatch int) []dna.Strand {
	var out []dna.Strand
	plen := primer.Len()
	for _, s := range pool {
		if s.Len() < plen {
			continue
		}
		if align.Similar(string(primer), string(s[:plen]), maxMismatch) {
			out = append(out, s[plen:])
		}
	}
	return out
}
