package durable

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"os"

	"dnastore/internal/codec"
)

// A journal is a container without a footer, so the generic Scrub — which
// treats "stream ended before a valid footer" as a torn write — would
// report every healthy journal as truncated. ScrubJournal knows the
// journal contract: the stream is healthy when it ends exactly on a frame
// boundary, and only a partial trailing frame is a torn tail. That torn
// tail is the one damage class journals tolerate by design (OpenJournal
// drops it), so the report distinguishes it from mid-stream corruption.

// ScrubJournal walks a journal stream, verifying the header and every
// frame checksum with parity repair, like Scrub but under journal rules:
//
//   - ending exactly after the last complete frame is clean, not torn;
//   - a partial trailing frame sets Truncated — recoverable damage that
//     OpenJournal discards on the next open;
//   - a corrupt frame body (checksum failure beyond parity) is reported
//     as a corrupt section; everything after it is unreachable because a
//     journal has no footer to resynchronise against, so the scan stops.
func ScrubJournal(r io.Reader) *Report {
	rep := &Report{}
	cr := &countingReader{r: r}
	br := bufio.NewReader(cr)
	kind, parity, err := parseHeader(br)
	switch {
	case errors.Is(err, ErrNotContainer):
		rep.Legacy = true
		return rep
	case errors.Is(err, ErrTruncated):
		rep.Truncated = true
		return rep
	case err != nil:
		rep.ScanErr = err
		return rep
	}
	rep.Kind, rep.Parity = kind, parity
	var rs *codec.RS
	if parity > 0 {
		rs, err = codec.NewRS(parity)
		if err != nil {
			rep.ScanErr = err
			return rep
		}
	}
	for {
		marker, err := br.ReadByte()
		if err == io.EOF {
			// Ended on a frame boundary: the healthy journal shape.
			return rep
		}
		if err != nil {
			rep.ScanErr = err
			return rep
		}
		if marker != frameMarker {
			// A journal has no footer; any non-frame byte is a torn or
			// overwritten tail.
			rep.Truncated = true
			return rep
		}
		frame, _, err := readFrame(br, parity, rs, len(rep.Sections))
		var fe *FrameError
		switch {
		case errors.As(err, &fe):
			rep.Sections = append(rep.Sections, Section{
				Index: fe.Index, Name: frame.Name, Bytes: len(frame.Payload),
				Corrected: frame.Corrected, Status: SectionCorrupt, Err: fe,
			})
			// No footer to resync against: frames after a rotten body are
			// unreachable, exactly as OpenJournal would truncate here.
			rep.Truncated = true
			return rep
		case err != nil:
			rep.Truncated = true
			return rep
		}
		status := SectionOK
		if frame.Corrected > 0 {
			status = SectionRepaired
		}
		rep.Sections = append(rep.Sections, Section{
			Index: len(rep.Sections), Name: frame.Name, Bytes: len(frame.Payload),
			Corrected: frame.Corrected, Status: status, payload: frame.Payload,
		})
	}
}

// ScrubJournalFile scrubs one journal file; the error covers I/O only.
func ScrubJournalFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ScrubJournal(bytes.NewReader(data)), nil
}

// JournalIntact reports a fully healthy journal: header valid, every frame
// clean, stream ending on a frame boundary. This is the journal analogue
// of Report.Intact, which demands the footer journals never have.
func JournalIntact(r *Report) bool {
	return !r.Legacy && !r.Truncated && r.ScanErr == nil && !r.Damaged()
}
