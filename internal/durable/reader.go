package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dnastore/internal/codec"
)

// Reader decodes a container frame by frame, verifying every checksum and
// repairing payload damage within the Reed–Solomon parity budget as it
// goes.
type Reader struct {
	br     *bufio.Reader
	kind   Kind
	parity int
	rs     *codec.RS
	index  int
	runCRC uint32
	done   bool
}

// NewReader validates the container header. It returns ErrNotContainer for
// a file without the magic (legacy artifact) and ErrTruncated for a header
// cut short.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	kind, parity, err := parseHeader(br)
	if err != nil {
		return nil, err
	}
	var rs *codec.RS
	if parity > 0 {
		rs, err = codec.NewRS(parity)
		if err != nil {
			return nil, err
		}
	}
	return &Reader{br: br, kind: kind, parity: parity, rs: rs}, nil
}

// Kind returns the container kind declared in the header.
func (r *Reader) Kind() Kind { return r.kind }

// Parity returns the per-codeword Reed–Solomon parity symbol count.
func (r *Reader) Parity() int { return r.parity }

// Next returns the next frame. After the last frame it verifies the footer
// and returns (nil, io.EOF). An unrecoverable frame comes back as
// (best-effort frame, *FrameError) with the reader still usable, so
// callers can keep scanning past rotten sections; any other error is
// terminal. A stream that ends without a valid footer yields ErrTruncated.
func (r *Reader) Next() (*Frame, error) {
	if r.done {
		return nil, io.EOF
	}
	marker, err := r.br.ReadByte()
	if err != nil {
		return nil, ErrTruncated
	}
	switch marker {
	case footerMarker:
		rest := make([]byte, footerSize-1)
		if _, err := io.ReadFull(r.br, rest); err != nil {
			return nil, ErrTruncated
		}
		count := binary.LittleEndian.Uint32(rest[:4])
		runCRC := binary.LittleEndian.Uint32(rest[4:8])
		if string(rest[8:]) != string(tailMagic[:]) {
			return nil, ErrTruncated
		}
		if count != uint32(r.index) {
			return nil, fmt.Errorf("durable: footer counts %d frames, read %d", count, r.index)
		}
		if runCRC != r.runCRC {
			return nil, fmt.Errorf("durable: footer running checksum mismatch")
		}
		r.done = true
		return nil, io.EOF
	case frameMarker:
		frame, pcrc, err := readFrame(r.br, r.parity, r.rs, r.index)
		var fe *FrameError
		if err != nil && !errors.As(err, &fe) {
			return nil, err
		}
		// The running CRC covers the *stored* payload CRCs, so repaired
		// and even unrecoverable frames keep the footer verifiable.
		r.index++
		r.runCRC = updateRunCRC(r.runCRC, pcrc)
		return frame, err
	default:
		return nil, fmt.Errorf("durable: bad marker 0x%02x at frame %d", marker, r.index)
	}
}

// ReadAll decodes an entire container strictly: every frame must verify
// (after any parity repair) and the footer must be present and correct.
func ReadAll(r io.Reader) (Kind, []Frame, error) {
	rd, err := NewReader(r)
	if err != nil {
		return 0, nil, err
	}
	var frames []Frame
	for {
		f, err := rd.Next()
		if err == io.EOF {
			return rd.Kind(), frames, nil
		}
		if err != nil {
			return rd.Kind(), nil, err
		}
		frames = append(frames, *f)
	}
}
