package durable

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// buildContainer assembles a container in memory.
func buildContainer(t *testing.T, kind Kind, parity int, frames map[string][]byte, order []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, kind, Options{Parity: parity})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range order {
		if err := w.WriteFrame(name, frames[name]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestContainerRoundTrip(t *testing.T) {
	payloads := map[string][]byte{
		"a.json": []byte(`{"hello":"world"}`),
		"b.bin":  bytes.Repeat([]byte{0xAB, 0x00, 0x7F}, 600),
		"empty":  nil,
	}
	order := []string{"a.json", "b.bin", "empty"}
	for _, parity := range []int{0, 4, DefaultParity} {
		data := buildContainer(t, KindPool, parity, payloads, order)
		kind, frames, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("parity %d: %v", parity, err)
		}
		if kind != KindPool {
			t.Errorf("parity %d: kind = %v", parity, kind)
		}
		if len(frames) != len(order) {
			t.Fatalf("parity %d: %d frames", parity, len(frames))
		}
		for i, name := range order {
			if frames[i].Name != name {
				t.Errorf("frame %d name %q != %q", i, frames[i].Name, name)
			}
			if !bytes.Equal(frames[i].Payload, payloads[name]) {
				t.Errorf("frame %q payload mismatch", name)
			}
			if frames[i].Corrected != 0 {
				t.Errorf("clean frame %q reported %d corrections", name, frames[i].Corrected)
			}
		}
	}
}

func TestReaderRejectsNonContainer(t *testing.T) {
	for _, data := range [][]byte{
		[]byte(`{"version":1}`),
		[]byte("ACGTACGT\n"),
		[]byte("XXXXXXXXXXXXXXXX"),
	} {
		if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrNotContainer) {
			t.Errorf("%q: err = %v, want ErrNotContainer", data, err)
		}
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	data := buildContainer(t, KindDataset, DefaultParity,
		map[string][]byte{"x": bytes.Repeat([]byte("payload"), 100)}, []string{"x"})
	// Every possible torn-write cut point must surface as ErrTruncated (or
	// a header error for sub-header cuts), never as a silent success.
	for cut := 0; cut < len(data); cut += 7 {
		_, _, err := ReadAll(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("cut at %d of %d accepted", cut, len(data))
		}
	}
	if _, _, err := ReadAll(bytes.NewReader(data[:len(data)-1])); !errors.Is(err, ErrTruncated) {
		t.Errorf("footer cut: %v, want ErrTruncated", err)
	}
}

func TestReaderRepairsBitRotWithinBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("durable payload block "), 40)
	data := buildContainer(t, KindProfile, DefaultParity, map[string][]byte{"p": payload}, []string{"p"})
	// Flip a few bytes inside the frame body (after container header +
	// frame header, before the trailing CRCs/footer).
	bodyStart := headerSize + 2 + 1 + 8 // header + marker/nameLen + name "p" + rawLen + hcrc
	corrupt := append([]byte(nil), data...)
	for _, off := range []int{bodyStart + 3, bodyStart + 300, bodyStart + 601} {
		corrupt[off] ^= 0x55
	}
	kind, frames, err := ReadAll(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatalf("repairable container rejected: %v", err)
	}
	if kind != KindProfile || len(frames) != 1 {
		t.Fatalf("kind %v, %d frames", kind, len(frames))
	}
	if !bytes.Equal(frames[0].Payload, payload) {
		t.Error("repaired payload differs from original")
	}
	if frames[0].Corrected == 0 {
		t.Error("repair reported zero corrections")
	}
}

func TestReaderFlagsDamageBeyondBudget(t *testing.T) {
	payload := bytes.Repeat([]byte("x"), 200) // a single codeword at parity 4
	data := buildContainer(t, KindPool, 4, map[string][]byte{"p": payload}, []string{"p"})
	bodyStart := headerSize + 2 + 1 + 8
	corrupt := append([]byte(nil), data...)
	for i := 0; i < 10; i++ { // 10 byte errors >> 2 correctable
		corrupt[bodyStart+i*17] ^= 0xFF
	}
	rd, err := NewReader(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	_, err = rd.Next()
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FrameError", err)
	}
	// The stream must stay scannable: footer still verifies.
	if _, err := rd.Next(); err != io.EOF {
		t.Errorf("scan after corrupt frame: %v, want EOF", err)
	}
}

func TestScrubVerdicts(t *testing.T) {
	payload := bytes.Repeat([]byte("scrub me "), 120)
	clean := buildContainer(t, KindPool, DefaultParity,
		map[string][]byte{"a": payload, "b": []byte("tiny")}, []string{"a", "b"})

	rep := Scrub(bytes.NewReader(clean))
	if !rep.Intact() || rep.Damaged() {
		t.Errorf("clean container: %s", rep.Summary())
	}

	bodyStart := headerSize + 2 + 1 + 8
	rot := append([]byte(nil), clean...)
	rot[bodyStart+10] ^= 0x01
	rep = Scrub(bytes.NewReader(rot))
	if rep.Intact() || !rep.Damaged() || !rep.Repairable() {
		t.Errorf("bit rot within budget: %s", rep.Summary())
	}

	torn := clean[:len(clean)/2]
	rep = Scrub(bytes.NewReader(torn))
	if !rep.Truncated || rep.Repairable() {
		t.Errorf("torn container: %s", rep.Summary())
	}

	rep = Scrub(bytes.NewReader([]byte(`{"json":true}`)))
	if !rep.Legacy {
		t.Errorf("legacy file: %s", rep.Summary())
	}
}

func TestRepairFileRestoresBytes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.dna")
	payload := bytes.Repeat([]byte("repair target payload "), 64)
	err := WriteContainerFile(path, KindPool, Options{Parity: DefaultParity}, func(w *Writer) error {
		return w.WriteFrame("pool.json", payload)
	})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bodyStart := headerSize + 2 + len("pool.json") + 8
	rot := append([]byte(nil), clean...)
	rot[bodyStart+50] ^= 0x20
	rot[bodyStart+500] ^= 0x40
	if err := os.WriteFile(path, rot, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() || !rep.Repairable() {
		t.Fatalf("repair report: %s", rep.Summary())
	}
	restored, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored, clean) {
		t.Error("repaired file is not byte-identical to the original")
	}
	if rep2, _ := ScrubFile(path); !rep2.Intact() {
		t.Errorf("post-repair scrub: %s", rep2.Summary())
	}
}

func TestJournalAppendReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	j, err := CreateJournal(path, KindCheckpoint, Options{Parity: 8})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 5; i++ {
		p := bytes.Repeat([]byte{byte('a' + i)}, 10+i*13)
		want = append(want, p)
		if err := j.Append("cluster", p); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, frames, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(want) {
		t.Fatalf("reopened %d frames, want %d", len(frames), len(want))
	}
	for i, f := range frames {
		if !bytes.Equal(f.Payload, want[i]) {
			t.Errorf("frame %d payload mismatch", i)
		}
	}
	// Appending after reopen extends the journal.
	if err := j2.Append("cluster", []byte("more")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, frames, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != len(want)+1 {
		t.Fatalf("after append: %d frames", len(frames))
	}
}

func TestJournalDiscardsTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	j, err := CreateJournal(path, KindCheckpoint, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := j.Append("cluster", bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-way through the last frame.
	if err := os.WriteFile(path, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	j2, frames, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn journal unopenable: %v", err)
	}
	if len(frames) != 3 {
		t.Fatalf("torn journal kept %d frames, want 3", len(frames))
	}
	// The torn tail must have been truncated so new appends are clean.
	if err := j2.Append("cluster", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, frames, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 || !bytes.Equal(frames[3].Payload, []byte("fresh")) {
		t.Fatalf("append after tear: %d frames", len(frames))
	}
}

func TestWriteFileAtomicLeavesOldFileOnError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	wantErr := errors.New("mid-write failure")
	err := WriteFileAtomic(path, func(w io.Writer) error {
		w.Write([]byte("partial new"))
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Errorf("old file clobbered: %q, %v", got, err)
	}
	left, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(left) != 1 {
		t.Errorf("temp file leaked: %v", left)
	}
}

func TestKindMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x")
	err := WriteContainerFile(path, KindDataset, Options{}, func(w *Writer) error {
		return w.WriteFrame("d", []byte("data"))
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadContainerFile(path, KindPool); err == nil {
		t.Error("dataset container accepted as pool")
	}
	if _, err := ReadContainerFile(path, KindDataset); err != nil {
		t.Errorf("matching kind rejected: %v", err)
	}
}
