package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes a file all-or-nothing: the write callback streams
// into a temp file in the target's directory, which is fsynced, renamed
// over the target, and the directory fsynced. A crash at any point leaves
// either the old file or the new one — never a torn hybrid.
func WriteFileAtomic(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	bw := bufio.NewWriter(tmp)
	if err := write(bw); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		tmp = nil
		return err
	}
	name := tmp.Name()
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	// Persist the rename itself; best-effort on filesystems that refuse
	// directory fsync.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// WriteContainerFile atomically writes a single-shot container whose
// frames are produced by the callback.
func WriteContainerFile(path string, kind Kind, opts Options, frames func(*Writer) error) error {
	return WriteFileAtomic(path, func(w io.Writer) error {
		dw, err := NewWriter(w, kind, opts)
		if err != nil {
			return err
		}
		if err := frames(dw); err != nil {
			return err
		}
		return dw.Close()
	})
}

// ReadContainerFile reads an entire container file strictly, checking its
// kind. Damage within the parity budget is repaired in memory — callers
// get the clean payloads even off a rotten disk (run scrub --repair to
// persist the fix).
func ReadContainerFile(path string, want Kind) ([]Frame, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	kind, frames, err := ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("durable: %s: %w", path, err)
	}
	if want != KindUnknown && kind != want {
		return nil, fmt.Errorf("durable: %s holds a %s container, want %s", path, kind, want)
	}
	return frames, nil
}
