package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTestJournal(t *testing.T, path string, parity int, frames int) {
	t.Helper()
	j, err := CreateJournal(path, KindLedger, Options{Parity: parity})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < frames; i++ {
		if err := j.Append("entry", []byte{byte(i), 0xAA, byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScrubJournalHealthy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	writeTestJournal(t, path, 8, 3)

	rep, err := ScrubJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !JournalIntact(rep) {
		t.Fatalf("healthy journal not intact: %s", rep.Summary())
	}
	if len(rep.Sections) != 3 || rep.Kind != KindLedger || rep.Parity != 8 {
		t.Fatalf("report: kind %s parity %d sections %d, want ledger/8/3", rep.Kind, rep.Parity, len(rep.Sections))
	}
	// The generic container scrub must keep calling the same bytes torn —
	// journals have no footer — which is exactly why ScrubJournal exists.
	if gen, err := ScrubFile(path); err != nil || !gen.Truncated {
		t.Fatalf("generic scrub of a journal: truncated=%v err=%v, want the footer-less stream flagged", gen.Truncated, err)
	}
}

func TestScrubJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	writeTestJournal(t, path, 0, 2)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-frame: the tail becomes the torn write OpenJournal drops.
	if err := os.Truncate(path, fi.Size()-2); err != nil {
		t.Fatal(err)
	}

	rep, err := ScrubJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if JournalIntact(rep) || !rep.Truncated {
		t.Fatalf("torn tail not reported: %s", rep.Summary())
	}
	if len(rep.Sections) != 1 || rep.Sections[0].Status != SectionOK {
		t.Fatalf("want 1 clean section before the tear, got %d", len(rep.Sections))
	}

	// And OpenJournal agrees: one intact frame, tail discarded, appendable.
	j, frames, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 1 {
		t.Fatalf("OpenJournal recovered %d frames, want 1", len(frames))
	}
	if err := j.Append("entry", []byte("again")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	rep, err = ScrubJournalFile(path)
	if err != nil || !JournalIntact(rep) {
		t.Fatalf("journal not clean after truncate+append: %s err=%v", rep.Summary(), err)
	}
}

func TestScrubJournalCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	writeTestJournal(t, path, 0, 3)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the middle frame (no parity → unrepairable).
	// Frame layout: 'F' | len | "entry" | rawLen u32 | hcrc u32 | 3 bytes | pcrc u4.
	frameLen := 1 + 1 + len("entry") + 4 + 4 + 3 + 4
	off := headerSize + frameLen + (frameLen - 5) // middle frame, payload byte
	data[off] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := ScrubJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if JournalIntact(rep) {
		t.Fatalf("corrupt journal reported intact: %s", rep.Summary())
	}
	corrupt := 0
	for _, s := range rep.Sections {
		if s.Status == SectionCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatalf("no corrupt section reported: %s", rep.Summary())
	}
}

func TestScrubJournalRepairsWithinParity(t *testing.T) {
	path := filepath.Join(t.TempDir(), "job.wal")
	writeTestJournal(t, path, 8, 1)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// One flipped payload byte is within an 8-symbol parity budget.
	data[len(data)-6] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rep, err := ScrubJournalFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Truncated || rep.ScanErr != nil || len(rep.Sections) != 1 {
		t.Fatalf("repairable journal misread: %s", rep.Summary())
	}
	if rep.Sections[0].Status != SectionRepaired || rep.Sections[0].Corrected == 0 {
		t.Fatalf("section not repaired: status %s corrected %d", rep.Sections[0].Status, rep.Sections[0].Corrected)
	}
}
