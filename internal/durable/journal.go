package durable

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync"

	"dnastore/internal/codec"
)

// Journal is an append-only container without a footer, for state that
// grows while a process runs (simulation checkpoints). Each Append writes
// one fsynced frame, so a crash loses at most the frame being written —
// and OpenJournal discards that torn tail, leaving every prior frame
// intact.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	kind   Kind
	parity int
	rs     *codec.RS
	closed bool
}

// CreateJournal creates (or truncates) a journal file and durably writes
// its header.
func CreateJournal(path string, kind Kind, opts Options) (*Journal, error) {
	if opts.Parity < 0 || opts.Parity > MaxParity {
		return nil, fmt.Errorf("durable: parity %d out of [0,%d]", opts.Parity, MaxParity)
	}
	var rs *codec.RS
	if opts.Parity > 0 {
		var err error
		rs, err = codec.NewRS(opts.Parity)
		if err != nil {
			return nil, err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	hdr := encodeHeader(kind, opts.Parity)
	if _, err := f.Write(hdr[:]); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return &Journal{f: f, kind: kind, parity: opts.Parity, rs: rs}, nil
}

// countingReader counts bytes consumed from the underlying reader, so the
// journal scan can locate the last clean frame boundary under a
// bufio.Reader (consumed = counted − buffered).
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// OpenJournal opens an existing journal for append, returning every intact
// frame. The scan stops at the first sign of damage — a torn tail from a
// crash mid-append, or a corrupt frame — and truncates the file back to
// the last clean frame boundary, so subsequent Appends extend a valid
// prefix. Callers re-derive whatever the dropped tail held.
func OpenJournal(path string) (*Journal, []Frame, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, err
	}
	cr := &countingReader{r: f}
	br := bufio.NewReader(cr)
	kind, parity, err := parseHeader(br)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	var rs *codec.RS
	if parity > 0 {
		rs, err = codec.NewRS(parity)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	good := cr.n - int64(br.Buffered())
	var frames []Frame
	for {
		marker, err := br.ReadByte()
		if err != nil {
			break
		}
		if marker != frameMarker {
			break
		}
		frame, _, err := readFrame(br, parity, rs, len(frames))
		if err != nil {
			// Torn or rotten tail: drop this frame and everything after.
			break
		}
		frames = append(frames, *frame)
		good = cr.n - int64(br.Buffered())
	}
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &Journal{f: f, kind: kind, parity: parity, rs: rs}, frames, nil
}

// Kind returns the journal's container kind.
func (j *Journal) Kind() Kind { return j.kind }

// Append durably writes one frame: the write is followed by fsync before
// Append returns, so a committed frame survives any later crash.
func (j *Journal) Append(name string, payload []byte) error {
	frame, _, err := encodeFrame(name, payload, j.parity, j.rs)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return os.ErrClosed
	}
	if _, err := j.f.Write(frame); err != nil {
		return err
	}
	return j.f.Sync()
}

// AppendNoSync writes one frame without forcing it to disk. A crash may
// lose every frame since the last synced write — OpenJournal's torn-tail
// scan discards the loss cleanly — so this is only for frames whose
// content the owner can re-derive (progress hints, not commitments). A
// later Append, Sync, or Close makes the frame durable.
func (j *Journal) AppendNoSync(name string, payload []byte) error {
	frame, _, err := encodeFrame(name, payload, j.parity, j.rs)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return os.ErrClosed
	}
	_, err = j.f.Write(frame)
	return err
}

// Sync forces every written frame to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return os.ErrClosed
	}
	return j.f.Sync()
}

// Close syncs and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}
