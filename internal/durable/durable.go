// Package durable implements the on-disk durability layer: a versioned,
// CRC32C-checksummed container format with optional Reed–Solomon parity,
// atomic file commit (temp + fsync + rename), an append-only journal for
// checkpoint/resume, and scrub/repair over all of it.
//
// Storage media decay over decades while pipelines crash in seconds; both
// failure modes land on the same files. Every artifact this repository
// persists — pools, simulated datasets, calibration profiles, simulation
// checkpoints — is therefore wrapped in one container format so that a
// torn write is always detected (never silently half-loaded), bit rot is
// detected by checksum and repaired by parity when within budget, and a
// file either commits completely or not at all.
//
// Format layout (all integers little-endian):
//
//	container := header frame* footer
//	header    := magic "DNAC" | version u8 | kind u8 | parity u8 |
//	             reserved u8 | crc32c(bytes 0..8) u32
//	frame     := 'F' | nameLen u8 | name | rawLen u32 |
//	             crc32c(frame header bytes) u32 | body |
//	             crc32c(raw payload) u32
//	body      := the raw payload when parity = 0; otherwise Reed–Solomon
//	             codewords — the payload in chunks of (255-parity) bytes,
//	             each followed by parity RS symbols over GF(2⁸), so up to
//	             parity/2 unknown-position byte errors per codeword are
//	             correctable
//	footer    := 'E' | frameCount u32 | crc32c(stored payload CRCs) u32 |
//	             magic "CEND"
//
// A journal is a container without a footer: validity is the header plus
// every complete frame, and a torn tail is discarded on open. The payload
// CRC is always computed over the raw (pre-parity) payload, so a repaired
// frame re-validates against the stored checksum — Reed–Solomon can only
// claim a repair the CRC confirms.
package durable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"dnastore/internal/codec"
)

// Kind labels what a container holds, so loaders can reject a pool handed
// to the profile reader and scrub can report archive composition.
type Kind byte

// Container kinds.
const (
	KindUnknown    Kind = 0
	KindPool       Kind = 1
	KindDataset    Kind = 2
	KindProfile    Kind = 3
	KindCheckpoint Kind = 4
	// KindLedger marks a coordinator write-ahead job ledger journal.
	KindLedger Kind = 5
)

// String names the kind for reports.
func (k Kind) String() string {
	switch k {
	case KindPool:
		return "pool"
	case KindDataset:
		return "dataset"
	case KindProfile:
		return "profile"
	case KindCheckpoint:
		return "checkpoint"
	case KindLedger:
		return "ledger"
	default:
		return fmt.Sprintf("unknown(%d)", byte(k))
	}
}

// Version is the container format version written by this package.
const Version = 1

const (
	frameMarker  = 'F'
	footerMarker = 'E'
	headerSize   = 12
	footerSize   = 13
)

// MaxParity bounds the per-codeword Reed–Solomon parity symbol count; at
// least 127 data bytes must remain per 255-byte codeword.
const MaxParity = 128

// DefaultParity is the parity used by the stock pool/dataset/profile
// writers: 16 symbols per 255-byte codeword (~6.7% overhead) repairs up to
// 8 unknown-position byte errors per codeword.
const DefaultParity = 16

// maxFrameSize bounds a single frame's raw payload, guarding allocations
// against forged length fields.
const maxFrameSize = 1 << 28

var (
	headMagic = [4]byte{'D', 'N', 'A', 'C'}
	tailMagic = [4]byte{'C', 'E', 'N', 'D'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// ErrNotContainer reports a file that does not start with the container
// magic — a legacy (pre-container) artifact or an unrelated file.
var ErrNotContainer = errors.New("durable: not a durable container")

// ErrTruncated reports a container cut short before a valid footer — the
// signature of a torn write.
var ErrTruncated = errors.New("durable: container truncated (torn write)")

// ErrCorrupt reports payload bytes that fail their checksum beyond what
// Reed–Solomon parity could repair.
var ErrCorrupt = errors.New("durable: payload corrupt beyond parity budget")

// FrameError reports a single unrecoverable frame. The surrounding stream
// stays readable: frame boundaries are protected by their own header CRC,
// so one rotten section does not take down its neighbours.
type FrameError struct {
	// Index is the zero-based frame position in the container.
	Index int
	// Name is the frame's section name.
	Name string
	// Err is the underlying failure (usually ErrCorrupt).
	Err error
}

// Error implements error.
func (e *FrameError) Error() string {
	return fmt.Sprintf("durable: frame %d %q: %v", e.Index, e.Name, e.Err)
}

// Unwrap exposes the underlying failure.
func (e *FrameError) Unwrap() error { return e.Err }

// Options configure a container writer.
type Options struct {
	// Parity is the Reed–Solomon parity symbol count per 255-byte
	// codeword; 0 disables parity (checksums only, no repair).
	Parity int
}

// Frame is one decoded section of a container.
type Frame struct {
	// Name is the section name given at write time.
	Name string
	// Payload is the raw payload, after any Reed–Solomon repair.
	Payload []byte
	// Corrected counts Reed–Solomon symbols corrected while reading; 0
	// means the section was clean on disk.
	Corrected int
}

// crc is CRC32C over b.
func crc(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// updateRunCRC folds one stored payload CRC into the footer's running CRC.
func updateRunCRC(run, pcrc uint32) uint32 {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], pcrc)
	return crc32.Update(run, castagnoli, b[:])
}

// encodedLen returns the body length of a frame holding rawLen payload
// bytes under the given parity.
func encodedLen(rawLen, parity int) int {
	if parity == 0 {
		return rawLen
	}
	data := 255 - parity
	full := rawLen / data
	n := full * 255
	if rem := rawLen % data; rem > 0 {
		n += rem + parity
	}
	return n
}

// encodeHeader builds the 12-byte container header.
func encodeHeader(kind Kind, parity int) [headerSize]byte {
	var h [headerSize]byte
	copy(h[:4], headMagic[:])
	h[4] = Version
	h[5] = byte(kind)
	h[6] = byte(parity)
	h[7] = 0
	binary.LittleEndian.PutUint32(h[8:], crc(h[:8]))
	return h
}

// parseHeader validates a container header read from r.
func parseHeader(r io.Reader) (Kind, int, error) {
	h := make([]byte, headerSize)
	n, err := io.ReadFull(r, h)
	if err != nil {
		if n >= len(headMagic) && !bytes.Equal(h[:4], headMagic[:]) {
			return 0, 0, ErrNotContainer
		}
		return 0, 0, ErrTruncated
	}
	if !bytes.Equal(h[:4], headMagic[:]) {
		return 0, 0, ErrNotContainer
	}
	if crc(h[:8]) != binary.LittleEndian.Uint32(h[8:]) {
		return 0, 0, fmt.Errorf("durable: container header checksum mismatch")
	}
	if h[4] != Version {
		return 0, 0, fmt.Errorf("durable: unsupported container version %d", h[4])
	}
	parity := int(h[6])
	if parity > MaxParity {
		return 0, 0, fmt.Errorf("durable: container parity %d exceeds %d", parity, MaxParity)
	}
	return Kind(h[5]), parity, nil
}

// encodeFrame serialises one frame and returns its bytes plus the payload
// CRC that the footer's running CRC accumulates.
func encodeFrame(name string, raw []byte, parity int, rs *codec.RS) ([]byte, uint32, error) {
	if name == "" || len(name) > 255 {
		return nil, 0, fmt.Errorf("durable: frame name %q must be 1..255 bytes", name)
	}
	if len(raw) > maxFrameSize {
		return nil, 0, fmt.Errorf("durable: frame payload %d bytes exceeds %d", len(raw), maxFrameSize)
	}
	var buf bytes.Buffer
	buf.Grow(10 + len(name) + encodedLen(len(raw), parity) + 4)
	buf.WriteByte(frameMarker)
	buf.WriteByte(byte(len(name)))
	buf.WriteString(name)
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(raw)))
	buf.Write(u32[:])
	binary.LittleEndian.PutUint32(u32[:], crc(buf.Bytes()))
	buf.Write(u32[:])
	if parity == 0 {
		buf.Write(raw)
	} else {
		data := 255 - parity
		for off := 0; off < len(raw); off += data {
			end := min(off+data, len(raw))
			cw, err := rs.Encode(raw[off:end])
			if err != nil {
				return nil, 0, err
			}
			buf.Write(cw)
		}
	}
	pcrc := crc(raw)
	binary.LittleEndian.PutUint32(u32[:], pcrc)
	buf.Write(u32[:])
	return buf.Bytes(), pcrc, nil
}

// readFrame parses one frame after its marker byte has been consumed.
// Stream-structural damage (bad header CRC, short read) comes back as a
// terminal error; payload damage beyond parity comes back as a *FrameError
// with the stream still positioned at the next frame, carrying the
// best-effort payload.
func readFrame(r io.Reader, parity int, rs *codec.RS, index int) (*Frame, uint32, error) {
	var small [6]byte
	if _, err := io.ReadFull(r, small[:1]); err != nil {
		return nil, 0, ErrTruncated
	}
	nameLen := int(small[0])
	if nameLen == 0 {
		return nil, 0, fmt.Errorf("durable: frame %d has empty name", index)
	}
	hdr := make([]byte, 2+nameLen+8)
	hdr[0] = frameMarker
	hdr[1] = small[0]
	if _, err := io.ReadFull(r, hdr[2:]); err != nil {
		return nil, 0, ErrTruncated
	}
	name := string(hdr[2 : 2+nameLen])
	rawLen := int(binary.LittleEndian.Uint32(hdr[2+nameLen:]))
	hcrc := binary.LittleEndian.Uint32(hdr[2+nameLen+4:])
	if crc(hdr[:2+nameLen+4]) != hcrc {
		return nil, 0, fmt.Errorf("durable: frame %d header checksum mismatch", index)
	}
	if rawLen > maxFrameSize {
		return nil, 0, fmt.Errorf("durable: frame %d payload %d bytes exceeds %d", index, rawLen, maxFrameSize)
	}
	body := make([]byte, encodedLen(rawLen, parity))
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, 0, ErrTruncated
	}
	if _, err := io.ReadFull(r, small[:4]); err != nil {
		return nil, 0, ErrTruncated
	}
	pcrc := binary.LittleEndian.Uint32(small[:4])

	frame := &Frame{Name: name}
	decodeFailed := false
	if parity == 0 {
		frame.Payload = body
	} else {
		frame.Payload = make([]byte, 0, rawLen)
		for off := 0; off < len(body); {
			end := min(off+255, len(body))
			cw := body[off:end]
			msg, corrected, err := rs.DecodeDetail(cw, nil)
			if err != nil {
				// Unrecoverable codeword: keep the damaged data bytes so
				// the caller still sees a best-effort payload.
				decodeFailed = true
				msg = cw[:len(cw)-parity]
			}
			frame.Corrected += corrected
			frame.Payload = append(frame.Payload, msg...)
			off = end
		}
	}
	if decodeFailed || crc(frame.Payload) != pcrc {
		return frame, pcrc, &FrameError{Index: index, Name: name, Err: ErrCorrupt}
	}
	return frame, pcrc, nil
}
