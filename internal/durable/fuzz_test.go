package durable

import (
	"bytes"
	"testing"
)

// FuzzReadContainer hardens the container reader and scrubber against
// arbitrary bytes: malformed headers, forged lengths, truncated frames and
// random mutations of valid containers must never panic or over-allocate.
func FuzzReadContainer(f *testing.F) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, KindPool, Options{Parity: 8})
	if err != nil {
		f.Fatal(err)
	}
	w.WriteFrame("pool.json", []byte(`{"version":1,"objects":[]}`))
	w.WriteFrame("extra", bytes.Repeat([]byte{0x5A}, 300))
	w.Close()
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(valid[:len(valid)/2])                       // torn write
	f.Add(valid[:headerSize])                         // header only
	f.Add([]byte("DNAC"))                             // magic, no header
	f.Add([]byte(`{"version":1}`))                    // legacy JSON
	f.Add(append([]byte(nil), valid[:headerSize]...)) // no frames, no footer
	flipped := append([]byte(nil), valid...)
	flipped[headerSize+5] ^= 0xFF
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, frames, err := ReadAll(bytes.NewReader(data))
		if err == nil {
			// Accepted containers must be internally consistent.
			_ = kind.String()
			for _, fr := range frames {
				if fr.Name == "" {
					t.Error("accepted frame with empty name")
				}
			}
		}
		rep := Scrub(bytes.NewReader(data))
		_ = rep.Summary()
		_ = rep.Intact()
		_ = rep.Repairable()
	})
}
