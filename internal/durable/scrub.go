package durable

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// SectionStatus classifies one scrubbed frame.
type SectionStatus int

// Section statuses.
const (
	// SectionOK verified clean with zero corrections.
	SectionOK SectionStatus = iota
	// SectionRepaired had byte errors that Reed–Solomon parity corrected;
	// the checksum verified after repair.
	SectionRepaired
	// SectionCorrupt failed its checksum beyond the parity budget.
	SectionCorrupt
)

// String names the status for reports.
func (s SectionStatus) String() string {
	switch s {
	case SectionOK:
		return "ok"
	case SectionRepaired:
		return "repaired"
	default:
		return "corrupt"
	}
}

// Section is the scrub verdict on one frame.
type Section struct {
	// Index is the frame position in the container.
	Index int
	// Name is the frame's section name.
	Name string
	// Bytes is the raw payload length.
	Bytes int
	// Corrected counts Reed–Solomon symbols corrected.
	Corrected int
	// Status is the verdict.
	Status SectionStatus
	// Err carries the failure for corrupt sections.
	Err error

	// payload keeps the (possibly repaired) bytes for RepairFile.
	payload []byte
}

// Report is the outcome of scrubbing one container.
type Report struct {
	// Kind and Parity echo the container header.
	Kind   Kind
	Parity int
	// Legacy marks a file without the container magic — a pre-container
	// artifact with no checksums to verify.
	Legacy bool
	// Truncated marks a stream that ended before a valid footer (torn
	// write); every section listed was recovered intact before the tear.
	Truncated bool
	// ScanErr records structural damage that stopped the scan (corrupt
	// container or frame header, bad marker, bad footer).
	ScanErr error
	// Sections holds the per-frame verdicts, in frame order.
	Sections []Section
}

// Intact reports a fully healthy container: complete, footer verified,
// every section clean with no corrections needed.
func (r *Report) Intact() bool {
	return !r.Legacy && !r.Truncated && r.ScanErr == nil && !r.Damaged()
}

// Damaged reports whether any section needed repair or failed.
func (r *Report) Damaged() bool {
	for _, s := range r.Sections {
		if s.Status != SectionOK {
			return true
		}
	}
	return false
}

// Repairable reports whether a full rewrite can restore the container:
// structure intact, and every section either clean or within the parity
// budget. Truncation is never repairable — the torn frames are gone.
func (r *Report) Repairable() bool {
	if r.Legacy || r.Truncated || r.ScanErr != nil {
		return false
	}
	for _, s := range r.Sections {
		if s.Status == SectionCorrupt {
			return false
		}
	}
	return true
}

// Summary renders a one-line operator-facing verdict.
func (r *Report) Summary() string {
	switch {
	case r.Legacy:
		return "legacy format (no checksums; re-save to upgrade)"
	case r.ScanErr != nil:
		return fmt.Sprintf("structurally corrupt: %v", r.ScanErr)
	}
	ok, repaired, corrupt, corrected := 0, 0, 0, 0
	for _, s := range r.Sections {
		corrected += s.Corrected
		switch s.Status {
		case SectionOK:
			ok++
		case SectionRepaired:
			repaired++
		default:
			corrupt++
		}
	}
	var parts []string
	parts = append(parts, fmt.Sprintf("kind %s, %d sections", r.Kind, len(r.Sections)))
	if r.Truncated {
		parts = append(parts, "TRUNCATED (torn write)")
	}
	if corrupt > 0 {
		parts = append(parts, fmt.Sprintf("%d corrupt beyond parity", corrupt))
	}
	if repaired > 0 {
		parts = append(parts, fmt.Sprintf("%d repairable (%d symbols)", repaired, corrected))
	}
	if corrupt == 0 && repaired == 0 && !r.Truncated {
		parts = append(parts, "all checksums ok")
	}
	return strings.Join(parts, "; ")
}

// Scrub walks a container stream, verifying every frame checksum and
// attempting parity repair, and keeps going past damage wherever the
// structure allows.
func Scrub(r io.Reader) *Report {
	rep := &Report{}
	rd, err := NewReader(r)
	switch {
	case errors.Is(err, ErrNotContainer):
		rep.Legacy = true
		return rep
	case errors.Is(err, ErrTruncated):
		rep.Truncated = true
		return rep
	case err != nil:
		rep.ScanErr = err
		return rep
	}
	rep.Kind, rep.Parity = rd.Kind(), rd.Parity()
	for {
		f, err := rd.Next()
		if err == io.EOF {
			return rep
		}
		var fe *FrameError
		switch {
		case errors.As(err, &fe):
			rep.Sections = append(rep.Sections, Section{
				Index: fe.Index, Name: f.Name, Bytes: len(f.Payload),
				Corrected: f.Corrected, Status: SectionCorrupt, Err: fe,
			})
			continue
		case errors.Is(err, ErrTruncated):
			rep.Truncated = true
			return rep
		case err != nil:
			rep.ScanErr = err
			return rep
		}
		status := SectionOK
		if f.Corrected > 0 {
			status = SectionRepaired
		}
		rep.Sections = append(rep.Sections, Section{
			Index: len(rep.Sections), Name: f.Name, Bytes: len(f.Payload),
			Corrected: f.Corrected, Status: status, payload: f.Payload,
		})
	}
}

// ScrubFile scrubs one file; the error covers I/O only — verification
// verdicts live in the report.
func ScrubFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Scrub(bytes.NewReader(data)), nil
}

// RepairFile scrubs a file and, when damage was found and every section is
// recoverable, atomically rewrites the container from the repaired
// payloads. The returned report describes the file as found (before
// repair).
func RepairFile(path string) (*Report, error) {
	rep, err := ScrubFile(path)
	if err != nil {
		return nil, err
	}
	if !rep.Damaged() || !rep.Repairable() {
		return rep, nil
	}
	err = WriteContainerFile(path, rep.Kind, Options{Parity: rep.Parity}, func(w *Writer) error {
		for _, s := range rep.Sections {
			if err := w.WriteFrame(s.Name, s.payload); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return rep, fmt.Errorf("durable: rewriting %s: %w", path, err)
	}
	return rep, nil
}
