package durable

import (
	"encoding/binary"
	"fmt"
	"io"

	"dnastore/internal/codec"
)

// Writer streams a container: header on construction, one frame per
// WriteFrame, footer on Close. It performs no buffering of its own — hand
// it a *bufio.Writer (or use WriteFileAtomic / CreateFile) for efficiency.
type Writer struct {
	w      io.Writer
	rs     *codec.RS
	parity int
	frames uint32
	runCRC uint32
	closed bool
}

// NewWriter writes the container header and returns a writer for its
// frames.
func NewWriter(w io.Writer, kind Kind, opts Options) (*Writer, error) {
	if opts.Parity < 0 || opts.Parity > MaxParity {
		return nil, fmt.Errorf("durable: parity %d out of [0,%d]", opts.Parity, MaxParity)
	}
	var rs *codec.RS
	if opts.Parity > 0 {
		var err error
		rs, err = codec.NewRS(opts.Parity)
		if err != nil {
			return nil, err
		}
	}
	hdr := encodeHeader(kind, opts.Parity)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: w, rs: rs, parity: opts.Parity}, nil
}

// WriteFrame appends one named section.
func (w *Writer) WriteFrame(name string, payload []byte) error {
	if w.closed {
		return fmt.Errorf("durable: write to closed container")
	}
	frame, pcrc, err := encodeFrame(name, payload, w.parity, w.rs)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(frame); err != nil {
		return err
	}
	w.frames++
	w.runCRC = updateRunCRC(w.runCRC, pcrc)
	return nil
}

// Close writes the footer, committing the container. A container without a
// footer is treated as torn by every reader.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var f [footerSize]byte
	f[0] = footerMarker
	binary.LittleEndian.PutUint32(f[1:], w.frames)
	binary.LittleEndian.PutUint32(f[5:], w.runCRC)
	copy(f[9:], tailMagic[:])
	_, err := w.w.Write(f[:])
	return err
}
