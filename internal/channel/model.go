package channel

import (
	"fmt"
	"sync/atomic"

	"dnastore/internal/align"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// SecondOrderError is one specific error with its own spatial distribution
// (§3.3.3): e.g. "deletion of G" or "substitution A→G", observed to carry
// its own positional skew in the Nanopore data (Fig 3.6).
type SecondOrderError struct {
	// Kind is align.Sub, align.Del or align.Ins.
	Kind align.OpKind
	// From is the reference base the error applies to (Sub and Del). It is
	// ignored for Ins.
	From dna.Base
	// To is the produced base (Sub and Ins). It is ignored for Del.
	To dna.Base
	// Rate is the per-position probability of this error at a position
	// where it applies, before spatial weighting.
	Rate float64
	// Spatial holds relative per-position weights (resampled to the strand
	// length, normalised to mean 1). Nil means uniform.
	Spatial []float64
}

// String renders the error in the paper's "del(G)" / "sub(A→G)" style.
func (e SecondOrderError) String() string {
	switch e.Kind {
	case align.Sub:
		return fmt.Sprintf("sub(%s→%s)", e.From, e.To)
	case align.Del:
		return fmt.Sprintf("del(%s)", e.From)
	case align.Ins:
		return fmt.Sprintf("ins(%s)", e.To)
	default:
		return fmt.Sprintf("unknown(%d)", e.Kind)
	}
}

// applies reports whether the error can occur at a position holding base b.
func (e SecondOrderError) applies(b dna.Base) bool {
	if e.Kind == align.Ins {
		return true
	}
	return e.From == b
}

// Model is the paper's progressively-refined error model. Each evaluation
// tier (§3.3) is a Model with more fields populated:
//
//   - Naive: identical PerBase rates, nil SubMatrix behaviour (uniform),
//     zero LongDel, nil Spatial, no SecondOrder.
//   - "+ Cond. Prob + Del": per-base conditional rates, a substitution
//     confusion matrix and long deletions.
//   - "+ Spatial Skew": a dist.Spatial shaping the per-position rates.
//   - "+ 2nd-order Errors": the top-K specific errors with their own
//     spatial histograms; PerBase rates hold the residual generic mass.
//
// The zero Model is an error-free channel. Models are safe for concurrent
// Transmit calls.
type Model struct {
	// Label is the channel name reported in tables.
	Label string
	// PerBase holds the conditional error rates P(err-type | base).
	PerBase [dna.NumBases]Rates
	// SubMatrix[b][c] is P(read base = c | substitution of ref base b).
	// A row that sums to zero falls back to uniform over the other bases.
	SubMatrix [dna.NumBases][dna.NumBases]float64
	// InsDist is the distribution of inserted bases; all-zero means uniform.
	InsDist [dna.NumBases]float64
	// LongDel models burst deletions.
	LongDel LongDeletion
	// Spatial shapes per-position error intensity; nil means uniform.
	Spatial dist.Spatial
	// SecondOrder lists specific errors layered on top of the generic
	// model. Their rates are *in addition to* PerBase; calibration shrinks
	// PerBase so the aggregate stays fixed.
	SecondOrder []SecondOrderError
	// FastRNGOrder opts in to batched draw accounting: the RNG is left
	// wherever the batched fill put it instead of being backstepped to the
	// exact per-draw position after each read. Output is still
	// deterministic per seed, but the stream no longer matches unbatched
	// draw-for-draw accounting — so golden hashes recorded with the flag
	// off will not reproduce with it on. Leave false (the default) unless
	// profiling shows the Unbind rewind matters; see DESIGN.md §15.
	FastRNGOrder bool

	// plans caches one compiled transmission plan per strand length in a
	// copy-on-write map (see plan.go): Transmit reads it with a single
	// atomic load and never takes a lock. Like the mutex-guarded caches it
	// replaced, it assumes the model's parameter fields are not mutated
	// after the first Transmit.
	plans atomic.Pointer[map[int]*txPlan]
}

// Name implements Channel.
func (m *Model) Name() string {
	if m.Label != "" {
		return m.Label
	}
	return "model"
}

// StageName implements Stage: every Model is usable directly as a
// per-strand pipeline stage.
func (m *Model) StageName() string { return m.Name() }

// NewNaive returns the paper's naive simulator: three aggregate parameters,
// no base conditioning, no bursts, uniform spatial distribution.
func NewNaive(label string, r Rates) *Model {
	m := &Model{Label: label}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	return m
}

// AggregateRate returns the mean per-position error probability assuming a
// uniform base composition: the average over bases of the conditional total
// plus the long-deletion start probability and the second-order mass.
func (m *Model) AggregateRate() float64 {
	sum := 0.0
	for b := 0; b < dna.NumBases; b++ {
		sum += m.PerBase[b].Total()
	}
	agg := sum/dna.NumBases + m.LongDel.Prob
	for _, e := range m.SecondOrder {
		if e.Kind == align.Ins {
			agg += e.Rate
		} else {
			// Applies only at positions holding e.From (≈ 1/4 of them).
			agg += e.Rate / dna.NumBases
		}
	}
	return agg
}

// maxPositionRate caps the combined event probability at one position.
const maxPositionRate = 0.99

// Transmit implements Channel. Events at each reference position are, in
// cumulative order: each applicable second-order error, generic
// substitution, generic insertion (ref base emitted, extra base appended),
// generic deletion, long deletion (burst of >= 2 bases), else faithful copy.
//
// Transmit is the convenience wrapper over AppendTransmit: it borrows a
// pooled arena, decodes the reference once, runs the append fast path and
// materialises the immutable result Strand — the one allocation this path
// cannot avoid. Callers that transmit the same reference repeatedly (a
// cluster) should hold their own Scratch and call AppendTransmit directly,
// as simulateCluster does; that path allocates nothing.
func (m *Model) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if ref.Len() == 0 {
		return ref
	}
	scr := scratchPool.Get().(*Scratch)
	scr.out = m.AppendTransmit(scr.out[:0], scr.RefBases(ref), r, scr)
	s := dna.Strand(scr.out)
	scratchPool.Put(scr)
	return s
}

// AppendTransmit implements AppendTransmitter: the zero-allocation
// transmit fast path. The reference arrives as 2-bit base codes (decode
// once per cluster with Scratch.RefBases), the noisy read is appended to
// dst as ASCII bytes, and all randomness flows through the arena's
// batched RNG block — filled in bulk up front, then backstepped past the
// unconsumed draws so the generator's stream position is exactly what
// per-call draws would have left (unless FastRNGOrder opts out of the
// rewind). The hot loop itself lives in txPlan.appendTransmit (plan.go).
//
// Output bytes and draw accounting are identical to transmitReference —
// the golden-seed and differential suites enforce this byte-for-byte.
func (m *Model) AppendTransmit(dst []byte, ref []dna.Base, r *rng.RNG, scr *Scratch) []byte {
	length := len(ref)
	if length == 0 {
		return dst
	}
	p := m.plan(length)
	if need := len(dst) + p.capHint; cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	d := &scr.batch
	d.Bind(r, length+8)
	dst = p.appendTransmit(dst, ref, d)
	if m.FastRNGOrder {
		d.Discard()
	} else {
		d.Unbind()
	}
	return dst
}

// transmitReference is the original, uncompiled implementation of
// Transmit, retained verbatim as the executable specification of the
// channel's sampling semantics. The differential tests in plan_test.go
// assert Transmit matches it byte-for-byte on the same RNG stream; it is
// not used on any production path.
func (m *Model) transmitReference(ref dna.Strand, r *rng.RNG) dna.Strand {
	length := ref.Len()
	if length == 0 {
		return ref
	}
	mult := m.multipliers(length)
	soMult := m.secondOrderMults(length)
	out := make([]byte, 0, length+4)
	for i := 0; i < length; {
		b := ref.At(i)
		posMult := 1.0
		if mult != nil {
			posMult = mult[i]
		}
		rates := m.PerBase[b].Scale(posMult)
		longDel := m.LongDel.Prob * posMult

		// Second-order mass first.
		soTotal := 0.0
		for k, e := range m.SecondOrder {
			if !e.applies(b) {
				continue
			}
			w := 1.0
			if soMult != nil && soMult[k] != nil {
				w = soMult[k][i]
			}
			soTotal += e.Rate * w
		}
		total := soTotal + rates.Total() + longDel
		scale := 1.0
		if total > maxPositionRate {
			scale = maxPositionRate / total
		}

		u := r.Float64()
		acc := 0.0
		matched := false
		for k, e := range m.SecondOrder {
			if !e.applies(b) {
				continue
			}
			w := 1.0
			if soMult != nil && soMult[k] != nil {
				w = soMult[k][i]
			}
			acc += e.Rate * w * scale
			if u < acc {
				switch e.Kind {
				case align.Sub:
					out = append(out, e.To.Byte())
					i++
				case align.Del:
					i++
				case align.Ins:
					out = append(out, b.Byte(), e.To.Byte())
					i++
				}
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		switch {
		case u < acc+rates.Sub*scale:
			out = append(out, m.sampleSub(b, r).Byte())
			i++
		case u < acc+(rates.Sub+rates.Ins)*scale:
			out = append(out, b.Byte(), m.sampleIns(r).Byte())
			i++
		case u < acc+(rates.Sub+rates.Ins+rates.Del)*scale:
			i++
		case u < acc+(rates.Total()+longDel)*scale:
			i += m.LongDel.sampleLen(r)
		default:
			out = append(out, b.Byte())
			i++
		}
	}
	return dna.Strand(out)
}

// sampleSub draws the replacement base for a substitution of b using the
// confusion matrix; an all-zero row falls back to uniform over the other
// three bases.
func (m *Model) sampleSub(b dna.Base, r *rng.RNG) dna.Base {
	row := m.SubMatrix[b]
	total := 0.0
	for c, w := range row {
		if dna.Base(c) == b {
			continue
		}
		total += w
	}
	if total <= 0 {
		// Uniform over the three other bases.
		k := r.Intn(dna.NumBases - 1)
		c := dna.Base(k)
		if c >= b {
			c++
		}
		return c
	}
	u := r.Float64() * total
	for c := 0; c < dna.NumBases; c++ {
		if dna.Base(c) == b {
			continue
		}
		u -= row[c]
		if u < 0 {
			return dna.Base(c)
		}
	}
	return b.Complement() // numerically unreachable fallback
}

// sampleIns draws the inserted base; an all-zero InsDist is uniform.
func (m *Model) sampleIns(r *rng.RNG) dna.Base {
	total := 0.0
	for _, w := range m.InsDist {
		total += w
	}
	if total <= 0 {
		return dna.Base(r.Intn(dna.NumBases))
	}
	u := r.Float64() * total
	for c, w := range m.InsDist {
		u -= w
		if u < 0 {
			return dna.Base(c)
		}
	}
	return dna.Base(dna.NumBases - 1)
}

// WithSpatial returns a copy of the model using the given spatial shape;
// the paper's "+ Spatial Skew" tier is WithSpatial(dist.NanoporeSkew()).
func (m *Model) WithSpatial(s dist.Spatial) *Model {
	out := m.shallowCopy()
	out.Spatial = s
	return out
}

// WithLabel returns a copy with a different table label.
func (m *Model) WithLabel(label string) *Model {
	out := m.shallowCopy()
	out.Label = label
	return out
}

// WithSecondOrder returns a copy carrying the given specific errors. To
// keep the aggregate rate unchanged (the §3.3.3 protocol: "a further
// decrease in accuracy despite the same aggregate probability"), the
// generic PerBase and LongDel mass is shrunk by the second-order share.
func (m *Model) WithSecondOrder(errors []SecondOrderError) *Model {
	out := m.shallowCopy()
	out.SecondOrder = append([]SecondOrderError(nil), errors...)
	before := m.AggregateRate()
	if before <= 0 {
		return out
	}
	soMass := 0.0
	for _, e := range errors {
		if e.Kind == align.Ins {
			soMass += e.Rate
		} else {
			soMass += e.Rate / dna.NumBases
		}
	}
	shrink := (before - soMass) / before
	if shrink < 0 {
		shrink = 0
	}
	for b := range out.PerBase {
		out.PerBase[b] = out.PerBase[b].Scale(shrink)
	}
	out.LongDel.Prob *= shrink
	return out
}

// shallowCopy duplicates the model without its compiled-plan cache; the
// copy compiles fresh plans on first Transmit.
func (m *Model) shallowCopy() *Model {
	out := &Model{
		Label:        m.Label,
		PerBase:      m.PerBase,
		SubMatrix:    m.SubMatrix,
		InsDist:      m.InsDist,
		LongDel:      m.LongDel,
		Spatial:      m.Spatial,
		SecondOrder:  append([]SecondOrderError(nil), m.SecondOrder...),
		FastRNGOrder: m.FastRNGOrder,
	}
	out.LongDel.LengthWeights = append([]float64(nil), m.LongDel.LengthWeights...)
	return out
}
