package channel

import (
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// BaseErrorRates is one row of the DNASimulator error dictionary E: the
// per-base probabilities of substitution, insertion, deletion and
// long-deletion used by Algorithm 1.
type BaseErrorRates struct {
	Sub, Ins, Del, LongDel float64
}

// Total returns the combined per-position probability.
func (b BaseErrorRates) Total() float64 { return b.Sub + b.Ins + b.Del + b.LongDel }

// DNASimulator reimplements the baseline simulator of Gadihh et al. [7]
// exactly as the paper's Algorithm 1 describes it: a static per-base error
// dictionary, position-independent errors, uniformly random substituted and
// inserted bases, and no modelling of PCR, coverage skew or spatial
// distribution. It exists to reproduce the comparison rows of Tables 2.1,
// 2.2, 3.1 and 3.2 — including its documented weaknesses.
type DNASimulator struct {
	// Label names the channel in tables; defaults to "DNASimulator".
	Label string
	// Errors is the per-base dictionary E, predetermined per
	// synthesis/sequencing technology pair.
	Errors [dna.NumBases]BaseErrorRates
	// LongDelLen is the burst length used for long deletions (>= 2).
	LongDelLen int
}

// NewDNASimulator builds a DNASimulator whose four dictionary rows share
// the given rates — the common published configuration.
func NewDNASimulator(label string, r BaseErrorRates) *DNASimulator {
	s := &DNASimulator{Label: label, LongDelLen: 2}
	for b := range s.Errors {
		s.Errors[b] = r
	}
	return s
}

// DefaultNanoporeDict returns the hard-coded dictionary shape DNASimulator
// ships for (Twist Bioscience, Nanopore) experiments: an aggregate error
// rate around 5.9% dominated by deletions and substitutions.
func DefaultNanoporeDict() BaseErrorRates {
	return BaseErrorRates{Sub: 0.022, Ins: 0.011, Del: 0.023, LongDel: 0.003}
}

// DefaultIlluminaDict returns the dictionary shape for (Twist Bioscience,
// Illumina NextSeq): an order of magnitude cleaner, substitution-dominant.
func DefaultIlluminaDict() BaseErrorRates {
	return BaseErrorRates{Sub: 0.0032, Ins: 0.0006, Del: 0.0012, LongDel: 0.0001}
}

// Name implements Channel.
func (s *DNASimulator) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "DNASimulator"
}

// Transmit implements Channel, following Algorithm 1: for every base, draw
// one uniform variate and compare it against the cumulative thresholds
// sub, sub+ins, sub+ins+del, sub+ins+del+longdel. Substituted and inserted
// bases are uniform over all four bases — including, for substitutions,
// the original base, one of the modelling deficiencies §2.2.3 documents.
//
// The cumulative thresholds are hoisted out of the position loop: they are
// the same float sums (same operand order) Algorithm 1 computed inline, so
// output is byte-identical, but each is now added once per call instead of
// three times per position.
func (s *DNASimulator) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	out := make([]byte, 0, ref.Len()+4)
	burst := s.LongDelLen
	if burst < 2 {
		burst = 2
	}
	var thr [dna.NumBases][4]float64
	for b, e := range s.Errors {
		thr[b] = [4]float64{e.Sub, e.Sub + e.Ins, e.Sub + e.Ins + e.Del, e.Sub + e.Ins + e.Del + e.LongDel}
	}
	for i := 0; i < ref.Len(); {
		b := ref.At(i)
		t := &thr[b]
		u := r.Float64()
		switch {
		case u >= t[3]:
			out = append(out, b.Byte())
			i++
		case u < t[0]:
			out = append(out, dna.Base(r.Intn(dna.NumBases)).Byte())
			i++
		case u < t[1]:
			out = append(out, b.Byte(), dna.Base(r.Intn(dna.NumBases)).Byte())
			i++
		case u < t[2]:
			i++
		default:
			i += burst
		}
	}
	return dna.Strand(out)
}

// AggregateRate returns the mean dictionary total across bases.
func (s *DNASimulator) AggregateRate() float64 {
	sum := 0.0
	for _, e := range s.Errors {
		sum += e.Total()
	}
	return sum / dna.NumBases
}
