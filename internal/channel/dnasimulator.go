package channel

import (
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// BaseErrorRates is one row of the DNASimulator error dictionary E: the
// per-base probabilities of substitution, insertion, deletion and
// long-deletion used by Algorithm 1.
type BaseErrorRates struct {
	Sub, Ins, Del, LongDel float64
}

// Total returns the combined per-position probability.
func (b BaseErrorRates) Total() float64 { return b.Sub + b.Ins + b.Del + b.LongDel }

// DNASimulator reimplements the baseline simulator of Gadihh et al. [7]
// exactly as the paper's Algorithm 1 describes it: a static per-base error
// dictionary, position-independent errors, uniformly random substituted and
// inserted bases, and no modelling of PCR, coverage skew or spatial
// distribution. It exists to reproduce the comparison rows of Tables 2.1,
// 2.2, 3.1 and 3.2 — including its documented weaknesses.
type DNASimulator struct {
	// Label names the channel in tables; defaults to "DNASimulator".
	Label string
	// Errors is the per-base dictionary E, predetermined per
	// synthesis/sequencing technology pair.
	Errors [dna.NumBases]BaseErrorRates
	// LongDelLen is the burst length used for long deletions (>= 2).
	LongDelLen int
}

// NewDNASimulator builds a DNASimulator whose four dictionary rows share
// the given rates — the common published configuration.
func NewDNASimulator(label string, r BaseErrorRates) *DNASimulator {
	s := &DNASimulator{Label: label, LongDelLen: 2}
	for b := range s.Errors {
		s.Errors[b] = r
	}
	return s
}

// DefaultNanoporeDict returns the hard-coded dictionary shape DNASimulator
// ships for (Twist Bioscience, Nanopore) experiments: an aggregate error
// rate around 5.9% dominated by deletions and substitutions.
func DefaultNanoporeDict() BaseErrorRates {
	return BaseErrorRates{Sub: 0.022, Ins: 0.011, Del: 0.023, LongDel: 0.003}
}

// DefaultIlluminaDict returns the dictionary shape for (Twist Bioscience,
// Illumina NextSeq): an order of magnitude cleaner, substitution-dominant.
func DefaultIlluminaDict() BaseErrorRates {
	return BaseErrorRates{Sub: 0.0032, Ins: 0.0006, Del: 0.0012, LongDel: 0.0001}
}

// Name implements Channel.
func (s *DNASimulator) Name() string {
	if s.Label != "" {
		return s.Label
	}
	return "DNASimulator"
}

// StageName implements Stage.
func (s *DNASimulator) StageName() string { return s.Name() }

// Transmit implements Channel, following Algorithm 1: for every base, draw
// one uniform variate and compare it against the cumulative thresholds
// sub, sub+ins, sub+ins+del, sub+ins+del+longdel. Substituted and inserted
// bases are uniform over all four bases — including, for substitutions,
// the original base, one of the modelling deficiencies §2.2.3 documents.
//
// Transmit wraps the AppendTransmit fast path in a pooled arena; like
// Model.Transmit, the only allocation left is the immutable result Strand.
func (s *DNASimulator) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if ref.Len() == 0 {
		return ref
	}
	scr := scratchPool.Get().(*Scratch)
	scr.out = s.AppendTransmit(scr.out[:0], scr.RefBases(ref), r, scr)
	out := dna.Strand(scr.out)
	scratchPool.Put(scr)
	return out
}

// AppendTransmit implements AppendTransmitter for the Algorithm 1
// baseline. The cumulative thresholds are hoisted out of the position
// loop and converted to integer draw-grid form (the same exact
// equivalence plan.go documents: u < t ⟺ bits < ceil(t*2^53)), so output
// is byte-identical to the inline float sums Algorithm 1 computed; draws
// come straight out of the arena's batched RNG block and the generator is
// backstepped to the exact per-draw stream position afterwards.
func (s *DNASimulator) AppendTransmit(dst []byte, ref []dna.Base, r *rng.RNG, scr *Scratch) []byte {
	if len(ref) == 0 {
		return dst
	}
	burst := s.LongDelLen
	if burst < 2 {
		burst = 2
	}
	var thr [dna.NumBases][4]uint64
	for b, e := range s.Errors {
		thr[b] = [4]uint64{
			thrBits(e.Sub),
			thrBits(e.Sub + e.Ins),
			thrBits(e.Sub + e.Ins + e.Del),
			thrBits(e.Sub + e.Ins + e.Del + e.LongDel),
		}
	}
	if need := len(dst) + len(ref) + 4; cap(dst) < need {
		grown := make([]byte, len(dst), need)
		copy(grown, dst)
		dst = grown
	}
	d := &scr.batch
	d.Bind(r, len(ref)+8)
	blk := d.NextBlock()
	j := 0
	for i := 0; i < len(ref); {
		if j == len(blk) {
			d.Skip(j)
			blk = d.NextBlock()
			j = 0
		}
		b := ref[i]
		t := &thr[b]
		bits := blk[j] >> 11
		j++
		switch {
		case bits >= t[3]:
			dst = append(dst, b.Byte())
			i++
		case bits < t[0]:
			// Commit local consumption before the Intn draw.
			d.Skip(j)
			dst = append(dst, dna.Base(d.Intn(dna.NumBases)).Byte())
			blk, j = d.NextBlock(), 0
			i++
		case bits < t[1]:
			d.Skip(j)
			dst = append(dst, b.Byte(), dna.Base(d.Intn(dna.NumBases)).Byte())
			blk, j = d.NextBlock(), 0
			i++
		case bits < t[2]:
			i++
		default:
			i += burst
		}
	}
	d.Skip(j)
	d.Unbind()
	return dst
}

// AggregateRate returns the mean dictionary total across bases.
func (s *DNASimulator) AggregateRate() float64 {
	sum := 0.0
	for _, e := range s.Errors {
		sum += e.Total()
	}
	return sum / dna.NumBases
}
