package channel

import (
	"fmt"
	"sync"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Tests for the integer draw-grid machinery behind the compiled plan
// (lowerBound / chainBoundaries) and for the AppendTransmit arena fast
// path: concurrent Scratch reuse and the FastRNGOrder draw-accounting
// escape hatch.

// TestLowerBound pins the search contract: smallest i with u < a[i],
// len(a) when no element is above u — including empty input, duplicate
// boundaries (zero-weight outcomes) and exact-boundary hits.
func TestLowerBound(t *testing.T) {
	cases := []struct {
		a    []uint64
		u    uint64
		want int
	}{
		{nil, 0, 0},
		{nil, 42, 0},
		{[]uint64{10}, 9, 0},
		{[]uint64{10}, 10, 1},
		{[]uint64{10}, 11, 1},
		{[]uint64{1, 3, 5}, 0, 0},
		{[]uint64{1, 3, 5}, 1, 1},
		{[]uint64{1, 3, 5}, 2, 1},
		{[]uint64{1, 3, 5}, 3, 2},
		{[]uint64{1, 3, 5}, 4, 2},
		{[]uint64{1, 3, 5}, 5, 3},
		{[]uint64{1, 3, 5}, 6, 3},
		// Duplicates arise from zero-weight outcomes: the walk can never
		// stop on them, and lowerBound must skip past the whole run.
		{[]uint64{5, 5, 7}, 4, 0},
		{[]uint64{5, 5, 7}, 5, 2},
		{[]uint64{5, 5, 7}, 6, 2},
		{[]uint64{5, 5, 7}, 7, 3},
		{[]uint64{0, 0, 0}, 0, 3},
		{[]uint64{drawGrid, drawGrid}, drawGrid - 1, 0},
	}
	for _, c := range cases {
		if got := lowerBound(c.a, c.u); got != c.want {
			t.Errorf("lowerBound(%v, %d) = %d, want %d", c.a, c.u, got, c.want)
		}
	}
}

// linearPick replicates the reference samplers' subtraction walk for one
// draw f: u := f*total, subtract weights in order, select at the first
// u < 0, fall through to len(weights) if the chain survives. This is the
// executable spec chainBoundaries + lowerBound must reproduce exactly.
func linearPick(weights []float64, total, f float64) int {
	u := f * total
	for j, w := range weights {
		u -= w
		if u < 0 {
			return j
		}
	}
	return len(weights)
}

// TestChainBoundariesMatchLinearWalk checks that binary search over the
// precomputed boundaries selects the same outcome as the reference
// subtraction walk for every probed draw — at each boundary and one grid
// ulp either side (where float rounding would first disagree), plus a
// spread of random draws.
func TestChainBoundariesMatchLinearWalk(t *testing.T) {
	weightSets := []struct {
		weights []float64
		total   float64
	}{
		{[]float64{0.2, 0.3, 0.5}, 1},
		{[]float64{0.2, 0.3, 0.5}, 1.2},                // chain can survive: fallback outcome
		{[]float64{0, 0.3, 0, 0.2}, 0.5},               // zero-weight outcomes
		{[]float64{0.1, 0.2, 0.3}, 0.6},                // total carries float residue vs the sum
		{[]float64{1e-18, 0.5, 1e-18}, 0.5},            // weights below one grid step
		{[]float64{0.25, 0.25, 0.25, 0.25}, 1},         // exact binary fractions
		{[]float64{0.022, 0.011, 0.023, 0.003}, 0.059}, // nanopore-shaped rates
		{[]float64{0, 0, 0}, 1},                        // nothing selectable
	}
	gen := rng.New(20260808)
	for si, ws := range weightSets {
		cdf := make([]uint64, len(ws.weights))
		chainBoundaries(cdf, ws.weights, ws.total)
		probe := func(bits uint64) {
			if bits >= drawGrid {
				return // not a representable draw
			}
			got := lowerBound(cdf, bits)
			want := linearPick(ws.weights, ws.total, float64(bits)/drawGrid)
			if got != want {
				t.Fatalf("set %d: draw %d/2^53: binary search picks %d, linear walk picks %d (cdf %v)",
					si, bits, got, want, cdf)
			}
		}
		for _, b := range cdf {
			if b > 0 {
				probe(b - 1)
			}
			probe(b)
			probe(b + 1)
		}
		probe(0)
		probe(drawGrid - 1)
		for k := 0; k < 2000; k++ {
			probe(gen.Uint64() >> 11)
		}
	}
}

// TestScratchConcurrentReuse hammers the arena fast path from many
// goroutines sharing one model (and so one compiled-plan cache), each
// with its own Scratch, and checks every read against the reference
// path. Run under -race this exercises the plan cache publication and
// proves the per-worker batch buffers never alias.
func TestScratchConcurrentReuse(t *testing.T) {
	m := goldenModelSecondOrder()
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scr Scratch
			for k := 0; k < perWorker; k++ {
				seed := uint64(w*perWorker+k)*2654435761 + 1
				ref := RandomReferences(1, 64+(k%128), seed)[0]
				r1, r2 := rng.New(seed), rng.New(seed)
				got := dna.Strand(m.AppendTransmit(nil, scr.RefBases(ref), r1, &scr))
				want := m.transmitReference(ref, r2)
				if got != want {
					errs <- fmt.Errorf("worker %d read %d: output diverges", w, k)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFastRNGOrderDeterministic checks the escape hatch's contract: with
// FastRNGOrder set, repeated runs from the same seed are byte-identical
// (it is still deterministic), and the first transmit's output matches
// the reference exactly — only the post-call stream position may differ,
// because unused batch draws are dropped instead of backstepped.
func TestFastRNGOrderDeterministic(t *testing.T) {
	fast := goldenModelSecondOrder().shallowCopy()
	fast.FastRNGOrder = true
	exact := goldenModelSecondOrder()
	for seed := uint64(1); seed <= 10; seed++ {
		ref := RandomReferences(1, 110, seed)[0]
		a := fast.Transmit(ref, rng.New(seed))
		b := fast.Transmit(ref, rng.New(seed))
		if a != b {
			t.Fatalf("seed %d: FastRNGOrder is not deterministic", seed)
		}
		if want := exact.transmitReference(ref, rng.New(seed)); a != want {
			t.Fatalf("seed %d: first FastRNGOrder transmit must still match the reference", seed)
		}
	}
}

// TestFastRNGOrderDivergesDownstream documents WHY the mode is opt-in:
// consecutive transmits on one RNG drift from unbatched accounting, so a
// multi-read stream (a cluster) stops matching the reference. If this
// test ever fails, Discard has silently become Unbind and the mode's
// documentation is wrong.
func TestFastRNGOrderDivergesDownstream(t *testing.T) {
	fast := goldenModelSecondOrder().shallowCopy()
	fast.FastRNGOrder = true
	exact := goldenModelSecondOrder()
	const seed, reads = 7, 20
	ref := RandomReferences(1, 110, seed)[0]
	rFast, rExact := rng.New(seed), rng.New(seed)
	diverged := false
	for k := 0; k < reads; k++ {
		if fast.Transmit(ref, rFast) != exact.transmitReference(ref, rExact) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatalf("%d consecutive FastRNGOrder transmits never diverged from per-call accounting; Discard appears to rewind", reads)
	}
}
