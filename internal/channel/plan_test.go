package channel

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Differential tests for the compiled transmission plan: Transmit must
// match transmitReference byte-for-byte AND draw-for-draw (the RNG must be
// left in an identical state, or downstream reads in the same cluster
// would diverge).

// diffCheck transmits ref through all three paths — Transmit, the
// AppendTransmit arena fast path, and transmitReference — from
// identically-seeded RNGs and fails on any output or RNG-state
// divergence.
func diffCheck(t *testing.T, label string, m *Model, ref dna.Strand, seed uint64) {
	t.Helper()
	r1, r2, r3 := rng.New(seed), rng.New(seed), rng.New(seed)
	got := m.Transmit(ref, r1)
	want := m.transmitReference(ref, r2)
	if got != want {
		t.Fatalf("%s: seed %d len %d: compiled output diverges\n got: %s\nwant: %s",
			label, seed, ref.Len(), got, want)
	}
	var scr Scratch
	appended := dna.Strand(m.AppendTransmit(nil, scr.RefBases(ref), r3, &scr))
	if appended != want {
		t.Fatalf("%s: seed %d len %d: AppendTransmit output diverges\n got: %s\nwant: %s",
			label, seed, ref.Len(), appended, want)
	}
	for k := 0; k < 3; k++ {
		a, b, c := r1.Uint64(), r2.Uint64(), r3.Uint64()
		if a != b {
			t.Fatalf("%s: seed %d len %d: RNG state diverged after transmit (draw %d: %x vs %x)",
				label, seed, ref.Len(), k, a, b)
		}
		if c != b {
			t.Fatalf("%s: seed %d len %d: RNG state diverged after AppendTransmit (draw %d: %x vs %x)",
				label, seed, ref.Len(), k, c, b)
		}
	}
}

// diffLengths exercises tiny, prime, and longer-than-histogram strands.
var diffLengths = []int{1, 2, 3, 5, 17, 64, 110, 137, 256, 310}

// TestTransmitMatchesReferenceGoldenModels runs the differential check
// over the golden model matrix.
func TestTransmitMatchesReferenceGoldenModels(t *testing.T) {
	models := map[string]*Model{
		"naive":       NewNaive("naive", Rates{Sub: 0.01, Ins: 0.005, Del: 0.02}),
		"cond":        goldenModelCond(),
		"spatial":     goldenModelCond().WithSpatial(dist.NanoporeSkew()),
		"secondorder": goldenModelSecondOrder(),
		"highrate":    goldenModelHighRate(),
		"zero":        &Model{Label: "zero"},
	}
	for name, m := range models {
		for _, length := range diffLengths {
			for seed := uint64(1); seed <= 25; seed++ {
				ref := RandomReferences(1, length, seed)[0]
				diffCheck(t, name, m, ref, seed*31+uint64(length))
			}
		}
	}
}

// randomModel draws an arbitrary (sometimes pathological) model: random
// conditional rates, sometimes-zero confusion rows and insertion
// distributions, optional long deletions, every spatial family, and up to
// six second-order errors with uniform, shorter-than-strand and
// longer-than-strand histograms.
func randomModel(r *rng.RNG) *Model {
	m := &Model{Label: "fuzz"}
	hot := 1.0
	if r.Bool(0.2) {
		hot = 8 // push totals into the maxPositionRate clamp
	}
	for b := range m.PerBase {
		m.PerBase[b] = Rates{
			Sub: r.Float64() * 0.05 * hot,
			Ins: r.Float64() * 0.03 * hot,
			Del: r.Float64() * 0.05 * hot,
		}
	}
	if r.Bool(0.6) {
		for b := range m.SubMatrix {
			if r.Bool(0.25) {
				continue // all-zero row: uniform fallback path
			}
			for c := range m.SubMatrix[b] {
				if c != b {
					m.SubMatrix[b][c] = r.Float64()
				}
			}
		}
	}
	if r.Bool(0.5) {
		for c := range m.InsDist {
			m.InsDist[c] = r.Float64()
		}
	}
	if r.Bool(0.6) {
		m.LongDel = PaperLongDeletion()
		if r.Bool(0.3) {
			m.LongDel.LengthWeights = nil // no-draw burst length path
		}
	}
	switch r.Intn(5) {
	case 0:
		// nil spatial (uniform plan)
	case 1:
		m.Spatial = dist.TriangularA{}
	case 2:
		m.Spatial = dist.TriangularV{}
	case 3:
		m.Spatial = dist.NanoporeSkew()
	case 4:
		w := make([]float64, 2+r.Intn(400))
		for i := range w {
			w[i] = r.Float64()
		}
		m.Spatial = dist.Empirical{Weights: w}
	}
	nSO := r.Intn(7)
	for k := 0; k < nSO; k++ {
		e := SecondOrderError{Rate: r.Float64() * 0.02}
		switch r.Intn(3) {
		case 0:
			e.Kind = align.Sub
			e.From = dna.Base(r.Intn(dna.NumBases))
			e.To = dna.Base(r.Intn(dna.NumBases))
		case 1:
			e.Kind = align.Del
			e.From = dna.Base(r.Intn(dna.NumBases))
		case 2:
			e.Kind = align.Ins
			e.To = dna.Base(r.Intn(dna.NumBases))
		}
		if r.Bool(0.6) {
			e.Spatial = make([]float64, 1+r.Intn(400))
			for i := range e.Spatial {
				e.Spatial[i] = r.Float64()
			}
		}
		m.SecondOrder = append(m.SecondOrder, e)
	}
	return m
}

// TestTransmitMatchesReferenceFuzz hammers the differential check with
// randomized models.
func TestTransmitMatchesReferenceFuzz(t *testing.T) {
	gen := rng.New(2024)
	n := 60
	if testing.Short() {
		n = 10
	}
	for trial := 0; trial < n; trial++ {
		m := randomModel(gen)
		for _, length := range []int{1, 7, 110, 301} {
			ref := RandomReferences(1, length, gen.Uint64())[0]
			diffCheck(t, fmt.Sprintf("fuzz-%d", trial), m, ref, gen.Uint64())
		}
	}
}

// TestPlanCacheConcurrent is the -race hammer for the copy-on-write plan
// cache: goroutines race to compile interleaved strand lengths on one
// shared model, and every output must still match the reference path.
func TestPlanCacheConcurrent(t *testing.T) {
	m := goldenModelSecondOrder()
	lengths := make([]int, 24)
	for i := range lengths {
		lengths[i] = 40 + 7*i
	}
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 20; rep++ {
				length := lengths[(g+rep)%len(lengths)]
				seed := uint64(g*1000 + rep)
				ref := RandomReferences(1, length, seed)[0]
				r1, r2 := rng.New(seed), rng.New(seed)
				if got, want := m.Transmit(ref, r1), m.transmitReference(ref, r2); got != want {
					errs <- fmt.Errorf("goroutine %d rep %d len %d: output diverged", g, rep, length)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := m.planStats(); got != len(lengths) {
		t.Errorf("plan cache holds %d lengths, want %d", got, len(lengths))
	}
}

// allA returns a homogeneous strand, which makes realized per-error rates
// directly countable without alignment.
func allA(length int) dna.Strand {
	return dna.Strand(strings.Repeat("A", length))
}

// realizedTolerance is ~5 sigma for one million Bernoulli trials at the
// rates used below.
const realizedTolerance = 0.0015

// TestSecondOrderRealizedRates pins the realized per-error rates of the
// compiled plan to their configured Rate — the statistical guarantee the
// old twin-loop implementation could silently lose to accumulation drift.
// Each sub-test isolates one second-order error on an all-A reference so
// the realized rate is countable exactly; spatial histograms are mean-1,
// so they redistribute but must not change the aggregate.
func TestSecondOrderRealizedRates(t *testing.T) {
	const (
		length = 200
		reads  = 5000 // 1e6 base-positions
	)
	positions := float64(length * reads)
	ref := allA(length)

	t.Run("sub", func(t *testing.T) {
		m := &Model{Label: "so-sub"}
		m.SecondOrder = []SecondOrderError{{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.05,
			Spatial: spikeWeights(length)}}
		r := rng.New(1)
		subs := 0
		for k := 0; k < reads; k++ {
			out := m.Transmit(ref, r)
			subs += strings.Count(string(out), "G")
		}
		assertRate(t, "sub(A→G)", float64(subs)/positions, 0.05)
	})
	t.Run("del", func(t *testing.T) {
		m := &Model{Label: "so-del"}
		m.SecondOrder = []SecondOrderError{{Kind: align.Del, From: dna.A, Rate: 0.04,
			Spatial: spikeWeights(length)}}
		r := rng.New(2)
		deleted := 0
		for k := 0; k < reads; k++ {
			out := m.Transmit(ref, r)
			deleted += length - out.Len()
		}
		assertRate(t, "del(A)", float64(deleted)/positions, 0.04)
	})
	t.Run("ins", func(t *testing.T) {
		m := &Model{Label: "so-ins"}
		m.SecondOrder = []SecondOrderError{{Kind: align.Ins, To: dna.T, Rate: 0.03,
			Spatial: spikeWeights(length)}}
		r := rng.New(3)
		inserted := 0
		for k := 0; k < reads; k++ {
			out := m.Transmit(ref, r)
			inserted += out.Len() - length
		}
		assertRate(t, "ins(T)", float64(inserted)/positions, 0.03)
	})
	t.Run("stacked", func(t *testing.T) {
		// Two errors on the same base plus generic mass: the shared table
		// must keep each component's rate, not just the sum.
		m := &Model{Label: "so-stacked"}
		m.PerBase[dna.A] = Rates{Del: 0.02}
		m.SecondOrder = []SecondOrderError{
			{Kind: align.Sub, From: dna.A, To: dna.C, Rate: 0.03},
			{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.015, Spatial: spikeWeights(length)},
		}
		r := rng.New(4)
		var c, g, deleted int
		for k := 0; k < reads; k++ {
			out := m.Transmit(ref, r)
			c += strings.Count(string(out), "C")
			g += strings.Count(string(out), "G")
			deleted += length - out.Len()
		}
		assertRate(t, "sub(A→C)", float64(c)/positions, 0.03)
		assertRate(t, "sub(A→G)", float64(g)/positions, 0.015)
		assertRate(t, "generic del", float64(deleted)/positions, 0.02)
	})
}

// spikeWeights returns a mean-preserving histogram with a terminal spike,
// matching the strand length so no resampling blurs the expectation.
func spikeWeights(length int) []float64 {
	w := make([]float64, length)
	for i := range w {
		w[i] = 1
	}
	w[length-1] = 21 // boosts the last position 20× above baseline mass
	return w
}

// assertRate checks a realized rate against its configured value.
func assertRate(t *testing.T, label string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > realizedTolerance {
		t.Errorf("%s: realized rate %.5f, configured %.5f (Δ %.5f > %.5f)",
			label, got, want, math.Abs(got-want), realizedTolerance)
	}
}

// TestDescribeUnset: Describe must be safe on a half-configured Simulator
// (SimulateCtx refuses to run it; Describe merely reports it).
func TestDescribeUnset(t *testing.T) {
	var s Simulator
	if got, want := s.Describe(), "channel=<unset> coverage=<unset>"; got != want {
		t.Errorf("Describe() = %q, want %q", got, want)
	}
	s.Channel = NewNaive("n", Rates{})
	if got, want := s.Describe(), "channel=n coverage=<unset>"; got != want {
		t.Errorf("Describe() = %q, want %q", got, want)
	}
	s.Coverage = FixedCoverage(3)
	if got, want := s.Describe(), "channel=n coverage=fixed(3)"; got != want {
		t.Errorf("Describe() = %q, want %q", got, want)
	}
}

// TestCheckpointResumeSecondOrderByteIdentical: checkpoint-resume must
// stay byte-identical under the compiled plan for the full model tier
// (the existing checkpoint drill uses the naive tier).
func TestCheckpointResumeSecondOrderByteIdentical(t *testing.T) {
	sim := Simulator{Channel: goldenModelSecondOrder(), Coverage: NegBinCoverage{Mean: 8, Dispersion: 2}}
	refs := RandomReferences(30, 110, 5)
	const seed = 77

	straight, err := sim.SimulateCtx(context.Background(), "ckpt", refs, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := hashDataset(straight)

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := OpenCheckpoint(path, "ckpt", refs, seed, sim.Describe())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ckpt.OnCommit = func(commits int) {
		if commits >= 10 {
			cancel()
		}
	}
	if _, err := sim.SimulateCheckpoint(ctx, "ckpt", refs, seed, ckpt); err == nil {
		t.Fatal("interrupted run returned nil error")
	}
	ckpt.Close()
	cancel()

	ckpt2, err := OpenCheckpoint(path, "ckpt", refs, seed, sim.Describe())
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	resumed, err := sim.SimulateCheckpoint(context.Background(), "ckpt", refs, seed, ckpt2)
	if err != nil {
		t.Fatal(err)
	}
	if got := hashDataset(resumed); got != want {
		t.Errorf("resumed dataset hash %s != straight-run hash %s", got, want)
	}
}
