package channel

import (
	"math"

	"dnastore/internal/align"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// The compiled transmission plan.
//
// Model.Transmit is the innermost loop of every experiment: millions of
// calls per table, each visiting every reference position. The naive
// implementation paid, per call, two mutex acquisitions (the spatial and
// second-order multiplier caches) and, per position, two scans over the
// second-order error list — one to accumulate the total mass for the
// probability clamp, one to walk the cumulative thresholds. Those two
// scans also had to stay in float-for-float lockstep or sampling would
// silently bias (the drift hazard fixed by this file: there is now exactly
// one shared table).
//
// A txPlan precomputes, for one strand length, everything Transmit needs:
// per-(position, base) cumulative event thresholds — second-order slices
// first, then the generic substitution / insertion / deletion /
// long-deletion boundaries — already scaled by the maxPositionRate clamp,
// plus position-independent samplers for the confusion matrix, the
// insertion distribution and the long-deletion length. The per-position
// loop becomes: one Float64 draw, one comparison against the faithful-copy
// boundary, and (rarely, on an error event) a short threshold walk.
//
// RNG-draw preservation contract: a compiled plan consumes exactly the
// same RNG draws, in the same order, with bitwise-identical comparison
// thresholds, as the reference implementation (transmitReference in
// model.go). Every float expression in compilePlan mirrors the reference
// expression shape — same operand order, same associativity — so the
// thresholds are equal as IEEE-754 values, not merely approximately. The
// golden-seed and differential tests in plan_test.go / golden_test.go
// enforce this byte-for-byte.
//
// Plans are cached per strand length in a copy-on-write map behind an
// atomic.Pointer: readers never lock; a cache miss compiles a fresh plan
// and installs it with a compare-and-swap, retrying (and discarding the
// losing compile) on contention. Models must not be mutated after the
// first Transmit — the same assumption the old mutex-guarded caches made.

// planEvent is one applicable second-order error at one (position, base):
// its cumulative scaled threshold and the action to take when it fires.
type planEvent struct {
	// thr is the cumulative probability threshold: the event fires when the
	// position's uniform draw is below thr and at or above the previous
	// event's thr.
	thr float64
	// kind is align.Sub, align.Del or align.Ins.
	kind align.OpKind
	// to is the emitted base byte (substitution replacement or inserted
	// base); unused for deletions.
	to byte
}

// basePlan holds the compiled thresholds for one (position, base) pair.
// The boundaries are cumulative: soEvents' thresholds < thrSub < thrIns <
// thrDel < thrLong (non-strictly), and a draw at or above thrLong is a
// faithful copy.
type basePlan struct {
	// soStart and soEnd delimit this cell's slice of txPlan.soEvents.
	soStart, soEnd int32
	// Generic-event boundaries, pre-scaled by the clamp factor.
	thrSub, thrIns, thrDel, thrLong float64
}

// subSampler draws the replacement base for a substitution of one specific
// reference base, reproducing Model.sampleSub draw-for-draw.
type subSampler struct {
	// uniform is true when the confusion row is all-zero: one Intn(3) draw.
	uniform bool
	// total is the row sum over the three other bases, in base order.
	total float64
	// row and bases are the weights and output bytes of the three
	// candidate bases, in base order.
	row   [dna.NumBases - 1]float64
	bases [dna.NumBases - 1]byte
	// fallback is the numerically-unreachable overflow result
	// (b.Complement(), kept for bitwise compatibility with the reference).
	fallback byte
}

// sample draws the replacement byte.
func (s *subSampler) sample(b dna.Base, r *rng.RNG) byte {
	if s.uniform {
		k := r.Intn(dna.NumBases - 1)
		c := dna.Base(k)
		if c >= b {
			c++
		}
		return c.Byte()
	}
	u := r.Float64() * s.total
	for j, w := range s.row {
		u -= w
		if u < 0 {
			return s.bases[j]
		}
	}
	return s.fallback
}

// insSampler draws the inserted base, reproducing Model.sampleIns
// draw-for-draw.
type insSampler struct {
	// uniform is true when InsDist is all-zero: one Intn(4) draw.
	uniform bool
	// total and row mirror the insertion distribution.
	total float64
	row   [dna.NumBases]float64
}

// sample draws the inserted byte.
func (s *insSampler) sample(r *rng.RNG) byte {
	if s.uniform {
		return dna.Base(r.Intn(dna.NumBases)).Byte()
	}
	u := r.Float64() * s.total
	for c, w := range s.row {
		u -= w
		if u < 0 {
			return dna.Base(c).Byte()
		}
	}
	return dna.Base(dna.NumBases - 1).Byte()
}

// longDelSampler draws a burst length, reproducing
// LongDeletion.sampleLen draw-for-draw.
type longDelSampler struct {
	// weights is nil when no length distribution is set (no draw consumed).
	weights []float64
	total   float64
	minLen  int
}

// sample draws the burst length.
func (s *longDelSampler) sample(r *rng.RNG) int {
	if len(s.weights) == 0 || s.total <= 0 {
		return s.minLen
	}
	u := r.Float64() * s.total
	for k, w := range s.weights {
		u -= w
		if u < 0 {
			return s.minLen + k
		}
	}
	return s.minLen + len(s.weights) - 1
}

// txPlan is the compiled transmission plan for one strand length.
type txPlan struct {
	length int
	// pos holds one [NumBases]basePlan per position — or a single shared
	// entry when the model is positionally uniform (no spatial shape, no
	// per-error spatial histograms). posMask is ^0 in the per-position
	// case and 0 in the uniform case, so the hot loop indexes pos[i&mask]
	// branch-free.
	pos     [][dna.NumBases]basePlan
	posMask int
	// soEvents is the shared flat table every basePlan slices into — the
	// single source of truth that replaces the old twin accumulation loops.
	soEvents []planEvent
	// Samplers for the rare event paths.
	sub     [dna.NumBases]subSampler
	ins     insSampler
	longDel longDelSampler
	// capHint sizes the output scratch buffer: strand length plus expected
	// insertions plus four standard deviations of slack, instead of the
	// old flat length+4 (which under-provisioned insertion-heavy models,
	// forcing an append regrow on nearly every read).
	capHint int
}

// plan returns the compiled plan for the given length, compiling and
// installing it on first use. Lock-free: concurrent callers may race to
// compile the same length; exactly one CAS wins and the others retry on
// the updated map (finding the winner's plan).
func (m *Model) plan(length int) *txPlan {
	for {
		cur := m.plans.Load()
		if cur != nil {
			if p, ok := (*cur)[length]; ok {
				return p
			}
		}
		p := m.compilePlan(length)
		var next map[int]*txPlan
		if cur != nil {
			next = make(map[int]*txPlan, len(*cur)+1)
			for k, v := range *cur {
				next[k] = v
			}
		} else {
			next = make(map[int]*txPlan, 1)
		}
		next[length] = p
		if m.plans.CompareAndSwap(cur, &next) {
			return p
		}
	}
}

// compilePlan builds the per-position threshold tables for one length.
// Every arithmetic expression below deliberately mirrors the reference
// implementation's shape (operand order and associativity) so thresholds
// are bitwise-equal to the ones the reference computes at runtime.
func (m *Model) compilePlan(length int) *txPlan {
	mult := m.multipliers(length)
	soMult := m.secondOrderMults(length)
	uniform := mult == nil && soMult == nil

	p := &txPlan{length: length}
	nPos := length
	if uniform {
		nPos = 1
		p.posMask = 0
	} else {
		p.posMask = ^0
	}
	p.pos = make([][dna.NumBases]basePlan, nPos)

	expIns := 0.0 // expected insertions per read, assuming uniform bases
	for i := 0; i < nPos; i++ {
		posMult := 1.0
		if mult != nil {
			posMult = mult[i]
		}
		for b := dna.Base(0); b < dna.NumBases; b++ {
			rates := m.PerBase[b].Scale(posMult)
			longDel := m.LongDel.Prob * posMult

			soTotal := 0.0
			for k, e := range m.SecondOrder {
				if !e.applies(b) {
					continue
				}
				w := 1.0
				if soMult != nil && soMult[k] != nil {
					w = soMult[k][i]
				}
				soTotal += e.Rate * w
			}
			total := soTotal + rates.Total() + longDel
			scale := 1.0
			if total > maxPositionRate {
				scale = maxPositionRate / total
			}

			soStart := int32(len(p.soEvents))
			acc := 0.0
			soIns := 0.0
			for k, e := range m.SecondOrder {
				if !e.applies(b) {
					continue
				}
				w := 1.0
				if soMult != nil && soMult[k] != nil {
					w = soMult[k][i]
				}
				acc += e.Rate * w * scale
				p.soEvents = append(p.soEvents, planEvent{thr: acc, kind: e.Kind, to: e.To.Byte()})
				if e.Kind == align.Ins {
					soIns += e.Rate * w * scale
				}
			}
			p.pos[i][b] = basePlan{
				soStart: soStart,
				soEnd:   int32(len(p.soEvents)),
				thrSub:  acc + rates.Sub*scale,
				thrIns:  acc + (rates.Sub+rates.Ins)*scale,
				thrDel:  acc + (rates.Sub+rates.Ins+rates.Del)*scale,
				thrLong: acc + (rates.Total()+longDel)*scale,
			}
			expIns += (rates.Ins*scale + soIns) / dna.NumBases
		}
	}
	if uniform {
		expIns *= float64(length)
	}

	// Position-independent samplers.
	for b := dna.Base(0); b < dna.NumBases; b++ {
		s := &p.sub[b]
		j := 0
		for c := dna.Base(0); c < dna.NumBases; c++ {
			if c == b {
				continue
			}
			s.row[j] = m.SubMatrix[b][c]
			s.bases[j] = c.Byte()
			s.total += m.SubMatrix[b][c]
			j++
		}
		s.uniform = s.total <= 0
		s.fallback = b.Complement().Byte()
	}
	insTotal := 0.0
	for _, w := range m.InsDist {
		insTotal += w
	}
	p.ins = insSampler{uniform: insTotal <= 0, total: insTotal, row: m.InsDist}
	ldTotal := 0.0
	for _, w := range m.LongDel.LengthWeights {
		ldTotal += w
	}
	p.longDel = longDelSampler{minLen: m.LongDel.minLen(), total: ldTotal}
	if ldTotal > 0 {
		p.longDel.weights = append([]float64(nil), m.LongDel.LengthWeights...)
	}

	p.capHint = length + 4 + int(math.Ceil(expIns+4*math.Sqrt(expIns)))
	return p
}

// multipliers returns per-position multipliers with mean 1 encoding the
// model's spatial shape for strands of the given length; nil means uniform.
// Pure function of the model — callers (the plan compiler and the
// reference path) cache at their own layer.
func (m *Model) multipliers(length int) []float64 {
	if m.Spatial == nil {
		return nil // uniform; callers treat nil as all-ones
	}
	// Use a nominal rate to extract the *shape*; dividing by the mean turns
	// it into multipliers. A small nominal rate avoids the clamp at
	// high-skew positions distorting the shape.
	const nominal = 0.01
	rates := m.Spatial.Rates(length, nominal)
	mult := make([]float64, length)
	for i, r := range rates {
		mult[i] = r / nominal
	}
	return mult
}

// secondOrderMults returns, per second-order error, the mean-1
// position-weight vector resampled to the given strand length; nil when no
// error carries a spatial histogram (all-uniform).
func (m *Model) secondOrderMults(length int) [][]float64 {
	if len(m.SecondOrder) == 0 {
		return nil
	}
	var out [][]float64
	for k, e := range m.SecondOrder {
		if len(e.Spatial) == 0 {
			continue // uniform
		}
		emp := dist.Empirical{Weights: e.Spatial}
		const nominal = 0.01
		rates := emp.Rates(length, nominal)
		mult := make([]float64, length)
		for i, r := range rates {
			mult[i] = r / nominal
		}
		if out == nil {
			out = make([][]float64, len(m.SecondOrder))
		}
		out[k] = mult
	}
	return out
}

// getBuf returns a scratch output buffer with at least capHint capacity,
// reusing a pooled one when possible. The buffer is copied into the
// immutable Strand before putBuf returns it to the pool.
func (m *Model) getBuf(capHint int) []byte {
	if v := m.bufPool.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= capHint {
			return b[:0]
		}
	}
	return make([]byte, 0, capHint)
}

// putBuf recycles a scratch buffer.
func (m *Model) putBuf(b []byte) {
	m.bufPool.Put(&b)
}

// planStats reports cache contents for tests: the number of compiled
// lengths currently installed.
func (m *Model) planStats() int {
	cur := m.plans.Load()
	if cur == nil {
		return 0
	}
	return len(*cur)
}
