package channel

import (
	"math"

	"dnastore/internal/align"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// The compiled transmission plan.
//
// Model.Transmit is the innermost loop of every experiment: millions of
// calls per table, each visiting every reference position. The naive
// implementation paid, per call, two mutex acquisitions (the spatial and
// second-order multiplier caches) and, per position, two scans over the
// second-order error list — one to accumulate the total mass for the
// probability clamp, one to walk the cumulative thresholds. Those two
// scans also had to stay in float-for-float lockstep or sampling would
// silently bias (the drift hazard fixed by this file: there is now exactly
// one shared table).
//
// A txPlan precomputes, for one strand length, everything transmission
// needs: per-(position, base) cumulative event thresholds — second-order
// slices first, then the generic substitution / insertion / deletion /
// long-deletion boundaries — already scaled by the maxPositionRate clamp,
// plus position-independent samplers for the confusion matrix, the
// insertion distribution and the long-deletion length. The hot loop
// (appendTransmit) runs over 2-bit base codes from a per-worker arena and
// consumes raw 64-bit draws straight out of the batched RNG block; the
// overwhelmingly common faithful-copy case is one table load and one
// integer compare, and every rare-event selection is a branchless binary
// search (lowerBound) instead of a linear threshold walk.
//
// Integer draw space. RNG.Float64 produces exactly the grid
// {k/2^53 : 0 <= k < 2^53}, with k = Uint64()>>11. For any threshold
// t in [0, 1), the product t*2^53 is a power-of-two scaling — exact in
// IEEE-754, never rounded — so
//
//	Float64() < t  ⟺  Uint64()>>11 < ceil(t*2^53)
//
// holds exactly, for every draw and every threshold. compilePlan therefore
// converts every cumulative threshold to its integer grid form (thrBits)
// once, and the hot loop never touches a float: no int→float conversion,
// no multiply, just a shift and an integer compare per position.
//
// RNG-draw preservation contract: a compiled plan consumes exactly the
// same RNG draws, in the same order, against selection boundaries exactly
// equivalent to the reference implementation's (transmitReference in
// model.go). The cumulative-threshold tables mirror the reference float
// expression shapes (same operand order, same associativity) before the
// exact grid conversion above. The rare-event samplers are subtler: the
// reference selects by a subtraction chain (u -= w; if u < 0), whose
// float rounding a naive cumulative-sum search would not reproduce.
// compilePlan therefore bisects the 2^53-point draw grid against the
// reference chain itself (drawBoundary) and stores the exact grid
// boundary of every outcome, making binary search equal to the linear
// walk for every possible draw — not merely almost all of them. The
// golden-seed and differential tests in plan_test.go / golden_test.go
// enforce this byte-for-byte.
//
// Plans are cached per strand length in a copy-on-write map behind an
// atomic.Pointer: readers never lock; a cache miss compiles a fresh plan
// and installs it with a compare-and-swap, retrying (and discarding the
// losing compile) on contention. Models must not be mutated after the
// first Transmit — the same assumption the old mutex-guarded caches made.

// drawGrid is the number of representable RNG.Float64 outputs: the draw
// u = float64(x>>11) / 2^53 ranges over exactly the grid {k/2^53}.
const drawGrid = 1 << 53

// thrBits converts a probability threshold to its exact integer grid
// boundary: bits < thrBits(t) ⟺ float64(bits)/2^53 < t for every
// bits < 2^53 (see the package comment). Thresholds at or above 1 map to
// drawGrid, which every draw is below — matching u < t always holding.
func thrBits(t float64) uint64 {
	if t >= 1 {
		return drawGrid
	}
	if t <= 0 {
		return 0
	}
	return uint64(math.Ceil(t * drawGrid))
}

// lowerBound returns the smallest i with u < a[i], or len(a) when u is at
// or above every element. a must be sorted in non-decreasing order. The
// loop shape (conditional add, no data-dependent branches in the body) is
// the branchless binary search the rare-event samplers run per draw.
func lowerBound(a []uint64, u uint64) int {
	base, n := 0, len(a)
	for n > 1 {
		half := n / 2
		if a[base+half-1] <= u {
			base += half
		}
		n -= half
	}
	if n == 1 && a[base] <= u {
		base++
	}
	return base
}

// drawBoundary bisects the draw grid for the smallest representable draw
// at which pred flips to true, and returns its grid index. pred must be
// monotone in the draw (false below the boundary, true at and above it).
// Returns 0 when pred holds everywhere and drawGrid when it holds
// nowhere — drawGrid is above every possible draw, so a lowerBound
// against it always selects, and 0 is below none, so it never does.
func drawBoundary(pred func(u float64) bool) uint64 {
	lo, hi := uint64(0), uint64(drawGrid)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if pred(float64(mid) / drawGrid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// chainBoundaries computes, for each outcome j of a reference-style
// subtraction chain (u := draw*total; u -= w[0..j]; selected at first
// u < 0), the exact grid boundary below which outcome <= j is selected.
// The chain is evaluated with the reference's own float arithmetic inside
// the bisection predicate, so the boundaries are exact for every
// representable draw, including ones where naive cumulative sums would
// round the other way. dst must have len(weights) slots.
func chainBoundaries(dst []uint64, weights []float64, total float64) {
	for j := range weights {
		j := j
		dst[j] = drawBoundary(func(f float64) bool {
			u := f * total
			for k := 0; k <= j; k++ {
				u -= weights[k]
			}
			return u >= 0 // chain survived: selection is beyond outcome j
		})
	}
}

// planEvent is one applicable second-order error at one (position, base):
// the action to take when it fires. Its cumulative threshold lives in the
// parallel txPlan.soThr table, kept separate so the per-draw binary
// search touches a dense integer array.
type planEvent struct {
	// kind is align.Sub, align.Del or align.Ins.
	kind align.OpKind
	// to is the emitted base byte (substitution replacement or inserted
	// base); unused for deletions.
	to byte
}

// basePlan holds the compiled thresholds for one (position, base) pair,
// in integer grid form. The boundaries are cumulative: soThr's entries <
// thrSub < thrIns < thrDel < thrLong (non-strictly), and a draw at or
// above thrLong is a faithful copy.
type basePlan struct {
	// soStart and soEnd delimit this cell's slice of txPlan.soEvents and
	// txPlan.soThr.
	soStart, soEnd int32
	// Generic-event grid boundaries, pre-scaled by the clamp factor.
	thrSub, thrIns, thrDel, thrLong uint64
}

// subSampler draws the replacement base for a substitution of one specific
// reference base, reproducing Model.sampleSub draw-for-draw.
type subSampler struct {
	// uniform is true when the confusion row is all-zero: one Intn(3) draw.
	uniform bool
	// cdf holds the exact grid selection boundaries of the three
	// candidate bases (chainBoundaries over the confusion row).
	cdf [dna.NumBases - 1]uint64
	// bases holds the candidate output bytes, in base order.
	bases [dna.NumBases - 1]byte
	// fallback is the numerically-unreachable overflow result
	// (b.Complement(), kept for bitwise compatibility with the reference).
	fallback byte
}

// sample draws the replacement byte.
func (s *subSampler) sample(b dna.Base, d *rng.Batch) byte {
	if s.uniform {
		k := d.Intn(dna.NumBases - 1)
		c := dna.Base(k)
		if c >= b {
			c++
		}
		return c.Byte()
	}
	if j := lowerBound(s.cdf[:], d.Uint64()>>11); j < len(s.bases) {
		return s.bases[j]
	}
	return s.fallback
}

// insSampler draws the inserted base, reproducing Model.sampleIns
// draw-for-draw.
type insSampler struct {
	// uniform is true when InsDist is all-zero: one Intn(4) draw.
	uniform bool
	// cdf holds the exact grid boundaries of the four bases.
	cdf [dna.NumBases]uint64
}

// sample draws the inserted byte.
func (s *insSampler) sample(d *rng.Batch) byte {
	if s.uniform {
		return dna.Base(d.Intn(dna.NumBases)).Byte()
	}
	j := lowerBound(s.cdf[:], d.Uint64()>>11)
	if j == dna.NumBases {
		j = dna.NumBases - 1 // reference falls through to the last base
	}
	return dna.Base(j).Byte()
}

// longDelSampler draws a burst length, reproducing
// LongDeletion.sampleLen draw-for-draw.
type longDelSampler struct {
	// cdf holds the exact grid boundaries of each burst length;
	// nil when no length distribution is set (no draw consumed).
	cdf    []uint64
	minLen int
}

// sample draws the burst length.
func (s *longDelSampler) sample(d *rng.Batch) int {
	if s.cdf == nil {
		return s.minLen
	}
	k := lowerBound(s.cdf, d.Uint64()>>11)
	if k == len(s.cdf) {
		k = len(s.cdf) - 1 // reference falls through to the longest burst
	}
	return s.minLen + k
}

// txPlan is the compiled transmission plan for one strand length.
type txPlan struct {
	length int
	// pos holds one [NumBases]basePlan per position — or a single shared
	// entry when the model is positionally uniform (no spatial shape, no
	// per-error spatial histograms). posMask is ^0 in the per-position
	// case and 0 in the uniform case, so the hot loop indexes pos[i&mask]
	// branch-free.
	pos     [][dna.NumBases]basePlan
	posMask int
	// copyThr is the flat faithful-copy boundary table, one grid value per
	// (position, base) cell at index (i&posMask)*NumBases + base. The hot
	// loop's common case is a single load and integer compare against it,
	// with no basePlan struct access at all.
	copyThr []uint64
	// soEvents and soThr are the shared flat tables every basePlan slices
	// into — the single source of truth that replaces the old twin
	// accumulation loops. soThr[k] is the grid threshold below which
	// event soEvents[k] (or an earlier one) fires.
	soEvents []planEvent
	soThr    []uint64
	// Samplers for the rare event paths.
	sub     [dna.NumBases]subSampler
	ins     insSampler
	longDel longDelSampler
	// capHint sizes the output scratch buffer: strand length plus expected
	// insertions plus four standard deviations of slack, instead of the
	// old flat length+4 (which under-provisioned insertion-heavy models,
	// forcing an append regrow on nearly every read).
	capHint int
}

// appendTransmit is the transmit hot loop: 2-bit base codes in, ASCII
// bytes appended to dst, all randomness from the batched block d. Output
// bytes and draw consumption are identical to transmitReference on the
// same stream — see the package comment above for why each construct
// preserves that.
//
// The loop consumes raw draws directly out of the batch's block (blk/j),
// so the steady state makes no function calls at all; local consumption
// is committed with Skip before the rare event paths (rareEvent) hand the
// batch to a sampler, keeping the stream in order. The loop is
// specialised on positional uniformity: the uniform case compares against
// four thresholds held in a local array, the positional case streams
// through the flat copyThr table. Both shapes keep every index expression
// transparently in-bounds so the compiler drops the checks.
func (p *txPlan) appendTransmit(dst []byte, ref []dna.Base, d *rng.Batch) []byte {
	blk := d.NextBlock()
	j := 0
	if p.posMask == 0 {
		var ct [dna.NumBases]uint64
		copy(ct[:], p.copyThr)
		for i := 0; i < len(ref); {
			if j >= len(blk) {
				d.Skip(j)
				blk, j = d.NextBlock(), 0
				continue
			}
			b := ref[i] & 3
			bits := blk[j] >> 11
			j++
			if bits >= ct[b] {
				// Faithful copy — the overwhelmingly common case.
				dst = append(dst, b.Byte())
				i++
				continue
			}
			d.Skip(j)
			var adv int
			dst, adv = p.rareEvent(dst, 0, b, bits, d)
			i += adv
			blk, j = d.NextBlock(), 0
		}
	} else {
		ct := p.copyThr
		for i := 0; i < len(ref); {
			if j >= len(blk) {
				d.Skip(j)
				blk, j = d.NextBlock(), 0
				continue
			}
			b := ref[i] & 3
			bits := blk[j] >> 11
			j++
			if bits >= ct[i*dna.NumBases+int(b)] {
				dst = append(dst, b.Byte())
				i++
				continue
			}
			d.Skip(j)
			var adv int
			dst, adv = p.rareEvent(dst, i, b, bits, d)
			i += adv
			blk, j = d.NextBlock(), 0
		}
	}
	d.Skip(j)
	return dst
}

// rareEvent resolves one sub-copy-threshold draw at position class cell
// for base b: the cell's second-order events first (binary search over
// the shared cumulative table), then the generic four-way split. It
// returns the extended output and the number of reference positions
// consumed. The caller has already committed the position draw, so the
// samplers' own draws follow it in exact stream order.
func (p *txPlan) rareEvent(dst []byte, cell int, b dna.Base, bits uint64, d *rng.Batch) ([]byte, int) {
	bp := &p.pos[cell][b&3]
	if bp.soStart < bp.soEnd {
		e := int(bp.soStart) + lowerBound(p.soThr[bp.soStart:bp.soEnd], bits)
		if e < int(bp.soEnd) {
			// align.Del emits nothing, so it has no case below.
			switch ev := &p.soEvents[e]; ev.kind {
			case align.Sub:
				dst = append(dst, ev.to)
			case align.Ins:
				dst = append(dst, b.Byte(), ev.to)
			}
			return dst, 1
		}
	}
	switch {
	case bits < bp.thrSub:
		return append(dst, p.sub[b&3].sample(b, d)), 1
	case bits < bp.thrIns:
		return append(dst, b.Byte(), p.ins.sample(d)), 1
	case bits < bp.thrDel:
		return dst, 1
	default: // bits < bp.thrLong: long deletion
		return dst, p.longDel.sample(d)
	}
}

// plan returns the compiled plan for the given length, compiling and
// installing it on first use. Lock-free: concurrent callers may race to
// compile the same length; exactly one CAS wins and the others retry on
// the updated map (finding the winner's plan).
func (m *Model) plan(length int) *txPlan {
	for {
		cur := m.plans.Load()
		if cur != nil {
			if p, ok := (*cur)[length]; ok {
				return p
			}
		}
		p := m.compilePlan(length)
		var next map[int]*txPlan
		if cur != nil {
			next = make(map[int]*txPlan, len(*cur)+1)
			for k, v := range *cur {
				next[k] = v
			}
		} else {
			next = make(map[int]*txPlan, 1)
		}
		next[length] = p
		if m.plans.CompareAndSwap(cur, &next) {
			return p
		}
	}
}

// compilePlan builds the per-position threshold tables for one length.
// Every float expression below deliberately mirrors the reference
// implementation's shape (operand order and associativity) so thresholds
// are bitwise-equal to the ones the reference computes at runtime before
// the exact thrBits grid conversion; the sampler boundary tables go
// further and bisect the reference chains themselves (chainBoundaries).
func (m *Model) compilePlan(length int) *txPlan {
	mult := m.multipliers(length)
	soMult := m.secondOrderMults(length)
	uniform := mult == nil && soMult == nil

	p := &txPlan{length: length}
	nPos := length
	if uniform {
		nPos = 1
		p.posMask = 0
	} else {
		p.posMask = ^0
	}
	p.pos = make([][dna.NumBases]basePlan, nPos)
	p.copyThr = make([]uint64, nPos*dna.NumBases)

	expIns := 0.0 // expected insertions per read, assuming uniform bases
	for i := 0; i < nPos; i++ {
		posMult := 1.0
		if mult != nil {
			posMult = mult[i]
		}
		for b := dna.Base(0); b < dna.NumBases; b++ {
			rates := m.PerBase[b].Scale(posMult)
			longDel := m.LongDel.Prob * posMult

			soTotal := 0.0
			for k, e := range m.SecondOrder {
				if !e.applies(b) {
					continue
				}
				w := 1.0
				if soMult != nil && soMult[k] != nil {
					w = soMult[k][i]
				}
				soTotal += e.Rate * w
			}
			total := soTotal + rates.Total() + longDel
			scale := 1.0
			if total > maxPositionRate {
				scale = maxPositionRate / total
			}

			soStart := int32(len(p.soEvents))
			acc := 0.0
			soIns := 0.0
			for k, e := range m.SecondOrder {
				if !e.applies(b) {
					continue
				}
				w := 1.0
				if soMult != nil && soMult[k] != nil {
					w = soMult[k][i]
				}
				acc += e.Rate * w * scale
				p.soEvents = append(p.soEvents, planEvent{kind: e.Kind, to: e.To.Byte()})
				p.soThr = append(p.soThr, thrBits(acc))
				if e.Kind == align.Ins {
					soIns += e.Rate * w * scale
				}
			}
			p.pos[i][b] = basePlan{
				soStart: soStart,
				soEnd:   int32(len(p.soEvents)),
				thrSub:  thrBits(acc + rates.Sub*scale),
				thrIns:  thrBits(acc + (rates.Sub+rates.Ins)*scale),
				thrDel:  thrBits(acc + (rates.Sub+rates.Ins+rates.Del)*scale),
				thrLong: thrBits(acc + (rates.Total()+longDel)*scale),
			}
			p.copyThr[i*dna.NumBases+int(b)] = p.pos[i][b].thrLong
			expIns += (rates.Ins*scale + soIns) / dna.NumBases
		}
	}
	if uniform {
		expIns *= float64(length)
	}

	// Position-independent samplers. Each chain passed to chainBoundaries
	// replicates the weight order of the matching reference sampler.
	for b := dna.Base(0); b < dna.NumBases; b++ {
		s := &p.sub[b]
		var row [dna.NumBases - 1]float64
		total := 0.0
		j := 0
		for c := dna.Base(0); c < dna.NumBases; c++ {
			if c == b {
				continue
			}
			row[j] = m.SubMatrix[b][c]
			s.bases[j] = c.Byte()
			total += m.SubMatrix[b][c]
			j++
		}
		s.uniform = total <= 0
		s.fallback = b.Complement().Byte()
		if !s.uniform {
			chainBoundaries(s.cdf[:], row[:], total)
		}
	}
	insTotal := 0.0
	for _, w := range m.InsDist {
		insTotal += w
	}
	p.ins.uniform = insTotal <= 0
	if !p.ins.uniform {
		chainBoundaries(p.ins.cdf[:], m.InsDist[:], insTotal)
	}
	ldTotal := 0.0
	for _, w := range m.LongDel.LengthWeights {
		ldTotal += w
	}
	p.longDel.minLen = m.LongDel.minLen()
	if ldTotal > 0 && len(m.LongDel.LengthWeights) > 0 {
		p.longDel.cdf = make([]uint64, len(m.LongDel.LengthWeights))
		chainBoundaries(p.longDel.cdf, m.LongDel.LengthWeights, ldTotal)
	}

	p.capHint = length + 4 + int(math.Ceil(expIns+4*math.Sqrt(expIns)))
	return p
}

// multipliers returns per-position multipliers with mean 1 encoding the
// model's spatial shape for strands of the given length; nil means uniform.
// Pure function of the model — callers (the plan compiler and the
// reference path) cache at their own layer.
func (m *Model) multipliers(length int) []float64 {
	if m.Spatial == nil {
		return nil // uniform; callers treat nil as all-ones
	}
	// Use a nominal rate to extract the *shape*; dividing by the mean turns
	// it into multipliers. A small nominal rate avoids the clamp at
	// high-skew positions distorting the shape.
	const nominal = 0.01
	rates := m.Spatial.Rates(length, nominal)
	mult := make([]float64, length)
	for i, r := range rates {
		mult[i] = r / nominal
	}
	return mult
}

// secondOrderMults returns, per second-order error, the mean-1
// position-weight vector resampled to the given strand length; nil when no
// error carries a spatial histogram (all-uniform).
func (m *Model) secondOrderMults(length int) [][]float64 {
	if len(m.SecondOrder) == 0 {
		return nil
	}
	var out [][]float64
	for k, e := range m.SecondOrder {
		if len(e.Spatial) == 0 {
			continue // uniform
		}
		emp := dist.Empirical{Weights: e.Spatial}
		const nominal = 0.01
		rates := emp.Rates(length, nominal)
		mult := make([]float64, length)
		for i, r := range rates {
			mult[i] = r / nominal
		}
		if out == nil {
			out = make([][]float64, len(m.SecondOrder))
		}
		out[k] = mult
	}
	return out
}

// planStats reports cache contents for tests: the number of compiled
// lengths currently installed.
func (m *Model) planStats() int {
	cur := m.plans.Load()
	if cur == nil {
		return 0
	}
	return len(*cur)
}
