package channel

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync/atomic"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestDNASimulatorBasics(t *testing.T) {
	s := NewDNASimulator("", DefaultNanoporeDict())
	if s.Name() != "DNASimulator" {
		t.Errorf("Name = %q", s.Name())
	}
	agg := s.AggregateRate()
	if math.Abs(agg-0.059) > 0.001 {
		t.Errorf("Nanopore dict aggregate = %v, want ~0.059", agg)
	}
	r := rng.New(1)
	ref := dna.Strand(RandomReferences(1, 110, 1)[0])
	read := s.Transmit(ref, r)
	if err := read.Validate(); err != nil {
		t.Fatalf("invalid read: %v", err)
	}
}

func TestDNASimulatorErrorFree(t *testing.T) {
	s := NewDNASimulator("clean", BaseErrorRates{})
	r := rng.New(2)
	ref := dna.Strand("ACGTACGT")
	if got := s.Transmit(ref, r); got != ref {
		t.Errorf("error-free DNASimulator perturbed strand")
	}
}

func TestDNASimulatorLongDeletionBurst(t *testing.T) {
	s := NewDNASimulator("ld", BaseErrorRates{LongDel: 1})
	s.LongDelLen = 3
	r := rng.New(3)
	ref := dna.Strand("ACGTACGTACGT") // 12 bases; every position starts a burst
	read := s.Transmit(ref, r)
	if read.Len() != 0 {
		t.Errorf("always-long-del left %d bases", read.Len())
	}
	// Default burst length when unset must be >= 2.
	s2 := &DNASimulator{Errors: [dna.NumBases]BaseErrorRates{{LongDel: 1}, {LongDel: 1}, {LongDel: 1}, {LongDel: 1}}}
	read2 := s2.Transmit("AAAA", r)
	if read2.Len() != 0 {
		t.Errorf("zero-config burst left %q", read2)
	}
}

func TestDNASimulatorSubstitutionCanKeepBase(t *testing.T) {
	// Algorithm 1 picks the replacement uniformly from all four bases, so
	// ~25% of substitutions silently keep the original base.
	s := NewDNASimulator("sub", BaseErrorRates{Sub: 1})
	r := rng.New(4)
	ref := dna.Repeat(dna.A, 4000)
	read := s.Transmit(ref, r)
	kept := 0
	for i := 0; i < read.Len(); i++ {
		if read.At(i) == dna.A {
			kept++
		}
	}
	frac := float64(kept) / float64(read.Len())
	if math.Abs(frac-0.25) > 0.03 {
		t.Errorf("kept-base fraction = %v, want ~0.25", frac)
	}
}

func TestRandomReferences(t *testing.T) {
	refs := RandomReferences(50, 110, 5)
	if len(refs) != 50 {
		t.Fatalf("got %d refs", len(refs))
	}
	for _, ref := range refs {
		if ref.Len() != 110 {
			t.Fatalf("ref length %d", ref.Len())
		}
		if err := ref.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	// Deterministic per seed.
	again := RandomReferences(50, 110, 5)
	for i := range refs {
		if refs[i] != again[i] {
			t.Fatal("RandomReferences not deterministic")
		}
	}
	if RandomReferences(2, 10, 6)[0] == refs[0][:10] {
		t.Log("different seed produced same prefix (unlikely but not fatal)")
	}
}

func TestSimulatorFixedCoverage(t *testing.T) {
	sim := Simulator{Channel: NewNaive("n", EqualMix(0.05)), Coverage: FixedCoverage(7)}
	refs := RandomReferences(30, 60, 7)
	ds := sim.Simulate("test", refs, 99)
	if ds.NumClusters() != 30 {
		t.Fatalf("clusters = %d", ds.NumClusters())
	}
	for i, c := range ds.Clusters {
		if c.Coverage() != 7 {
			t.Errorf("cluster %d coverage = %d", i, c.Coverage())
		}
		if c.Ref != refs[i] {
			t.Errorf("cluster %d ref mismatch", i)
		}
		for _, read := range c.Reads {
			if err := read.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestSimulatorDeterministicAcrossRuns(t *testing.T) {
	sim := Simulator{Channel: NewNaive("n", EqualMix(0.08)), Coverage: NegBinCoverage{Mean: 10, Dispersion: 3}}
	refs := RandomReferences(40, 80, 8)
	a := sim.Simulate("a", refs, 123)
	b := sim.Simulate("b", refs, 123)
	for i := range a.Clusters {
		if len(a.Clusters[i].Reads) != len(b.Clusters[i].Reads) {
			t.Fatalf("cluster %d coverage differs", i)
		}
		for j := range a.Clusters[i].Reads {
			if a.Clusters[i].Reads[j] != b.Clusters[i].Reads[j] {
				t.Fatalf("cluster %d read %d differs", i, j)
			}
		}
	}
	c := sim.Simulate("c", refs, 124)
	same := true
	for i := range a.Clusters {
		if len(a.Clusters[i].Reads) != len(c.Clusters[i].Reads) {
			same = false
			break
		}
		for j := range a.Clusters[i].Reads {
			if a.Clusters[i].Reads[j] != c.Clusters[i].Reads[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical datasets")
	}
}

func TestSimulatorCustomCoverage(t *testing.T) {
	cov := CustomCoverage{3, 0, 5}
	sim := Simulator{Channel: NewNaive("n", EqualMix(0.02)), Coverage: cov}
	refs := RandomReferences(6, 40, 9)
	ds := sim.Simulate("custom", refs, 5)
	want := []int{3, 0, 5, 3, 0, 5} // wraps
	for i, c := range ds.Clusters {
		if c.Coverage() != want[i] {
			t.Errorf("cluster %d coverage = %d, want %d", i, c.Coverage(), want[i])
		}
	}
	if ds.Erasures() != 2 {
		t.Errorf("erasures = %d, want 2", ds.Erasures())
	}
}

func TestSimulatorPanicsWithoutParts(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	refs := RandomReferences(1, 10, 1)
	mustPanic("no channel", func() {
		Simulator{Coverage: FixedCoverage(1)}.Simulate("x", refs, 1)
	})
	mustPanic("no coverage", func() {
		Simulator{Channel: NewNaive("n", EqualMix(0.01))}.Simulate("x", refs, 1)
	})
}

// panicOnRefChannel panics whenever asked to transmit the trigger strand —
// a stand-in for a buggy channel implementation.
type panicOnRefChannel struct{ trigger dna.Strand }

func (p panicOnRefChannel) Transmit(ref dna.Strand, _ *rng.RNG) dna.Strand {
	if ref == p.trigger {
		panic("injected channel fault")
	}
	return ref
}

func (p panicOnRefChannel) Name() string { return "panic-on-ref" }

func TestSimulateCtxPanicIsolation(t *testing.T) {
	refs := RandomReferences(8, 30, 3)
	sim := Simulator{Channel: panicOnRefChannel{trigger: refs[3]}, Coverage: FixedCoverage(2)}
	ds, err := sim.SimulateCtx(context.Background(), "p", refs, 1)
	if err == nil {
		t.Fatal("panicking channel produced no error")
	}
	var se *SimulationError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if se.Canceled != nil {
		t.Errorf("Canceled = %v on an uncanceled run", se.Canceled)
	}
	if len(se.Clusters) != 1 || se.Clusters[0].Index != 3 {
		t.Fatalf("cluster errors = %+v, want exactly cluster 3", se.Clusters)
	}
	if se.Completed != 7 || se.Total != 8 {
		t.Errorf("completed %d/%d, want 7/8", se.Completed, se.Total)
	}
	if ds == nil {
		t.Fatal("no partial dataset")
	}
	for i, c := range ds.Clusters {
		if c.Ref != refs[i] {
			t.Errorf("cluster %d lost its reference", i)
		}
		want := 2
		if i == 3 {
			want = 0 // the failed cluster degrades to zero reads
		}
		if len(c.Reads) != want {
			t.Errorf("cluster %d has %d reads, want %d", i, len(c.Reads), want)
		}
	}
	// The legacy wrapper keeps the fail-fast contract: same fault panics.
	defer func() {
		if recover() == nil {
			t.Error("Simulate did not propagate the cluster failure as a panic")
		}
	}()
	sim.Simulate("p", refs, 1)
}

// cancelingChannel cancels the run's own context on its first transmission,
// simulating an interrupt arriving mid-run.
type cancelingChannel struct {
	cancel context.CancelFunc
	calls  *atomic.Int64
}

func (c cancelingChannel) Transmit(ref dna.Strand, _ *rng.RNG) dna.Strand {
	if c.calls.Add(1) == 1 {
		c.cancel()
	}
	return ref
}

func (c cancelingChannel) Name() string { return "canceling" }

func TestSimulateCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	refs := RandomReferences(512, 20, 4)
	var calls atomic.Int64
	sim := Simulator{Channel: cancelingChannel{cancel: cancel, calls: &calls}, Coverage: FixedCoverage(1)}
	ds, err := sim.SimulateCtx(ctx, "c", refs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via SimulationError", err)
	}
	var se *SimulationError
	if !errors.As(err, &se) {
		t.Fatalf("error type %T", err)
	}
	if se.Completed >= len(refs) {
		t.Errorf("cancellation did not stop early: completed %d/%d", se.Completed, se.Total)
	}
	populated := 0
	for _, c := range ds.Clusters {
		if len(c.Reads) > 0 {
			populated++
		}
	}
	if populated >= len(refs) {
		t.Errorf("partial dataset has %d populated clusters of %d", populated, len(refs))
	}
	if populated != se.Completed {
		t.Errorf("populated clusters %d != reported completed %d", populated, se.Completed)
	}
}

func TestSimulateCtxConfigErrors(t *testing.T) {
	refs := RandomReferences(1, 10, 1)
	if _, err := (Simulator{Coverage: FixedCoverage(1)}).SimulateCtx(context.Background(), "x", refs, 1); err == nil {
		t.Error("missing Channel accepted")
	}
	if _, err := (Simulator{Channel: NewNaive("n", EqualMix(0.01))}).SimulateCtx(context.Background(), "x", refs, 1); err == nil {
		t.Error("missing CoverageModel accepted")
	}
}

func TestSimulateCtxMatchesSimulate(t *testing.T) {
	sim := Simulator{Channel: NewNaive("n", EqualMix(0.06)), Coverage: NegBinCoverage{Mean: 8, Dispersion: 3}}
	refs := RandomReferences(25, 60, 6)
	a := sim.Simulate("a", refs, 77)
	b, err := sim.SimulateCtx(context.Background(), "b", refs, 77)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Clusters {
		if len(a.Clusters[i].Reads) != len(b.Clusters[i].Reads) {
			t.Fatalf("cluster %d coverage differs", i)
		}
		for j := range a.Clusters[i].Reads {
			if a.Clusters[i].Reads[j] != b.Clusters[i].Reads[j] {
				t.Fatalf("cluster %d read %d differs between Simulate and SimulateCtx", i, j)
			}
		}
	}
}

func TestCoverageModels(t *testing.T) {
	r := rng.New(10)
	if FixedCoverage(5).Sample(0, r) != 5 {
		t.Error("FixedCoverage")
	}
	if !strings.Contains(FixedCoverage(5).Name(), "5") {
		t.Error("FixedCoverage name")
	}
	if (CustomCoverage{}).Sample(3, r) != 0 {
		t.Error("empty CustomCoverage should be 0")
	}
	if CustomCoverage.Name(nil) != "custom" {
		t.Error("CustomCoverage name")
	}

	nb := NegBinCoverage{Mean: 26.97, Dispersion: 2.5}
	const n = 50000
	sum := 0
	zeros := 0
	for i := 0; i < n; i++ {
		v := nb.Sample(i, r)
		if v < 0 {
			t.Fatal("negative coverage")
		}
		if v == 0 {
			zeros++
		}
		sum += v
	}
	mean := float64(sum) / n
	if math.Abs(mean-26.97) > 0.5 {
		t.Errorf("negbin mean = %v", mean)
	}
	if zeros == 0 {
		t.Error("overdispersed negbin should produce some natural erasures")
	}

	p := PoissonCoverage(5)
	sum = 0
	for i := 0; i < n; i++ {
		sum += p.Sample(i, r)
	}
	if math.Abs(float64(sum)/n-5) > 0.1 {
		t.Errorf("poisson mean = %v", float64(sum)/n)
	}

	nc := NormalCoverage{Mean: 10, SD: 3}
	sum = 0
	for i := 0; i < n; i++ {
		v := nc.Sample(i, r)
		if v < 0 {
			t.Fatal("negative normal coverage")
		}
		sum += v
	}
	if math.Abs(float64(sum)/n-10) > 0.2 {
		t.Errorf("normal coverage mean = %v", float64(sum)/n)
	}

	ec := ErasureCoverage{Base: FixedCoverage(10), P: 0.2}
	zeros = 0
	for i := 0; i < n; i++ {
		if ec.Sample(i, r) == 0 {
			zeros++
		}
	}
	if math.Abs(float64(zeros)/n-0.2) > 0.01 {
		t.Errorf("erasure rate = %v", float64(zeros)/n)
	}
	for _, name := range []string{nb.Name(), p.Name(), nc.Name(), ec.Name()} {
		if name == "" {
			t.Error("empty coverage model name")
		}
	}
}

func TestSimulatorDescribe(t *testing.T) {
	sim := Simulator{Channel: NewNaive("n", EqualMix(0.01)), Coverage: FixedCoverage(5)}
	d := sim.Describe()
	if !strings.Contains(d, "n") || !strings.Contains(d, "fixed(5)") {
		t.Errorf("Describe = %q", d)
	}
}
