package channel_test

// External test package: these tests tear checkpoint journals with the
// faults injectors, and faults imports channel.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/faults"
	"dnastore/internal/rng"
)

// datasetBytes serialises a dataset for byte-identity comparison.
func datasetBytes(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testSimulator() channel.Simulator {
	return channel.Simulator{
		Channel:  channel.NewNaive("n", channel.EqualMix(0.02)),
		Coverage: channel.FixedCoverage(6),
	}
}

// TestCheckpointResumeByteIdentical is the crash drill at library level:
// cancel a run mid-flight, tear the journal's tail the way a crash would,
// resume, and demand byte-identical output to an uninterrupted run.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	sim := testSimulator()
	refs := channel.RandomReferences(40, 60, 11)
	const seed = 42
	desc := sim.Describe()

	golden, err := sim.SimulateCtx(context.Background(), "drill", refs, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, golden)

	path := filepath.Join(t.TempDir(), "run.ckpt")
	ckpt, err := channel.OpenCheckpoint(path, "drill", refs, seed, desc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ckpt.OnCommit = func(commits int) {
		if commits >= 15 {
			cancel()
		}
	}
	_, err = sim.SimulateCheckpoint(ctx, "drill", refs, seed, ckpt)
	var simErr *channel.SimulationError
	if !errors.As(err, &simErr) || simErr.Canceled == nil {
		t.Fatalf("interrupted run: err = %v, want canceled SimulationError", err)
	}
	ckpt.Close()
	cancel()

	// A real crash can cut the last append anywhere; emulate it.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faults.TornWrite(data, rng.New(5)), 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := channel.OpenCheckpoint(path, "drill", refs, seed, desc)
	if err != nil {
		t.Fatalf("reopening torn checkpoint: %v", err)
	}
	defer ckpt2.Close()
	if got := ckpt2.Completed(); got >= len(refs) {
		t.Fatalf("torn checkpoint claims %d/%d clusters complete", got, len(refs))
	}
	resumed, err := sim.SimulateCheckpoint(context.Background(), "drill", refs, seed, ckpt2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(datasetBytes(t, resumed), want) {
		t.Error("resumed dataset differs from uninterrupted run")
	}
}

// TestPipelineCheckpointResumeByteIdentical runs the same crash drill on
// the population-aware staged pipeline: the checkpoint must restore the
// per-cluster pool draws (PCR skew, breakage thinning) exactly, so the
// resumed tail is byte-identical to the uninterrupted run.
func TestPipelineCheckpointResumeByteIdentical(t *testing.T) {
	pipe := channel.NewPhysicalPipeline("ckpt-pipe", 0.059, 100)
	sim := channel.Simulator{
		Channel:  pipe,
		Coverage: pipe.BindCoverage(channel.NegBinCoverage{Mean: 6, Dispersion: 2}),
	}
	refs := channel.RandomReferences(40, 60, 13)
	const seed = 43
	desc := sim.Describe()

	golden, err := sim.SimulateCtx(context.Background(), "pipe-drill", refs, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := datasetBytes(t, golden)

	path := filepath.Join(t.TempDir(), "pipe.ckpt")
	ckpt, err := channel.OpenCheckpoint(path, "pipe-drill", refs, seed, desc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ckpt.OnCommit = func(commits int) {
		if commits >= 15 {
			cancel()
		}
	}
	_, err = sim.SimulateCheckpoint(ctx, "pipe-drill", refs, seed, ckpt)
	var simErr *channel.SimulationError
	if !errors.As(err, &simErr) || simErr.Canceled == nil {
		t.Fatalf("interrupted run: err = %v, want canceled SimulationError", err)
	}
	ckpt.Close()
	cancel()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, faults.TornWrite(data, rng.New(6)), 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := channel.OpenCheckpoint(path, "pipe-drill", refs, seed, desc)
	if err != nil {
		t.Fatalf("reopening torn checkpoint: %v", err)
	}
	defer ckpt2.Close()
	resumed, err := sim.SimulateCheckpoint(context.Background(), "pipe-drill", refs, seed, ckpt2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(datasetBytes(t, resumed), want) {
		t.Error("resumed pipeline dataset differs from uninterrupted run")
	}
}

// TestCheckpointTornInsideHeader: a crash during checkpoint creation can
// leave a file too short to even parse; OpenCheckpoint must start fresh
// rather than fail forever.
func TestCheckpointTornInsideHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	if err := os.WriteFile(path, []byte{'D', 'N', 'A'}, 0o644); err != nil {
		t.Fatal(err)
	}
	refs := channel.RandomReferences(4, 30, 3)
	ckpt, err := channel.OpenCheckpoint(path, "x", refs, 1, "d")
	if err != nil {
		t.Fatalf("truncated header not recreated: %v", err)
	}
	defer ckpt.Close()
	if ckpt.Completed() != 0 {
		t.Errorf("fresh checkpoint has %d clusters", ckpt.Completed())
	}
}

// TestCheckpointRejectsDifferentRun: resuming against the wrong seed,
// references or simulator must fail loudly, not blend two runs.
func TestCheckpointRejectsDifferentRun(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	refs := channel.RandomReferences(6, 40, 2)
	ckpt, err := channel.OpenCheckpoint(path, "a", refs, 5, "descA")
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Commit(0, refs[:1]); err != nil {
		t.Fatal(err)
	}
	ckpt.Close()

	for name, open := range map[string]func() (*channel.Checkpoint, error){
		"different seed": func() (*channel.Checkpoint, error) {
			return channel.OpenCheckpoint(path, "a", refs, 6, "descA")
		},
		"different refs": func() (*channel.Checkpoint, error) {
			return channel.OpenCheckpoint(path, "a", channel.RandomReferences(6, 40, 99), 5, "descA")
		},
		"different simulator": func() (*channel.Checkpoint, error) {
			return channel.OpenCheckpoint(path, "a", refs, 5, "descB")
		},
		"different name": func() (*channel.Checkpoint, error) {
			return channel.OpenCheckpoint(path, "b", refs, 5, "descA")
		},
	} {
		if c, err := open(); err == nil {
			c.Close()
			t.Errorf("%s: accepted", name)
		}
	}

	// And a non-checkpoint file must never be clobbered.
	other := filepath.Join(dir, "pool.json")
	if err := os.WriteFile(other, []byte(`{"version":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if c, err := channel.OpenCheckpoint(other, "a", refs, 5, "descA"); err == nil {
		c.Close()
		t.Error("JSON file accepted as checkpoint")
	}
	if got, _ := os.ReadFile(other); string(got) != `{"version":1}` {
		t.Error("non-checkpoint file was overwritten")
	}
}

// TestCheckpointCommitIdempotent: double commits must not duplicate frames
// across reopen.
func TestCheckpointCommitIdempotent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	refs := channel.RandomReferences(3, 20, 7)
	ckpt, err := channel.OpenCheckpoint(path, "x", refs, 9, "d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := ckpt.Commit(1, refs[:2]); err != nil {
			t.Fatal(err)
		}
	}
	if ckpt.Completed() != 1 {
		t.Errorf("Completed() = %d, want 1", ckpt.Completed())
	}
	ckpt.Close()
	ckpt2, err := channel.OpenCheckpoint(path, "x", refs, 9, "d")
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Completed() != 1 {
		t.Errorf("reopened Completed() = %d, want 1", ckpt2.Completed())
	}
	if reads, ok := ckpt2.Done(1); !ok || len(reads) != 2 {
		t.Errorf("Done(1) = %v, %v", reads, ok)
	}
}
