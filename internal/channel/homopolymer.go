package channel

import (
	"fmt"
	"math"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// HomopolymerModel boosts a base channel's error intensity inside
// homopolymer runs — the sequencing vulnerability §1.2 describes ("several
// encoding techniques have been employed to prevent their occurrence") and
// one of the effects §2.2.3 faults DNASimulator for ignoring. The boost is
// renormalised per strand so the aggregate error rate is unchanged: only
// the *placement* of errors shifts into runs.
type HomopolymerModel struct {
	// Base is the underlying channel model whose per-position intensity is
	// reshaped. It must be a *Model (the boost composes with its spatial
	// multipliers).
	Base *Model
	// Boost multiplies error intensity at positions inside qualifying
	// runs; must be >= 1.
	Boost float64
	// MinRun is the shortest run length that qualifies (default 3).
	MinRun int
}

// NewHomopolymerModel wraps base with the given boost.
func NewHomopolymerModel(base *Model, boost float64, minRun int) (*HomopolymerModel, error) {
	if base == nil {
		return nil, fmt.Errorf("channel: homopolymer model needs a base model")
	}
	if boost < 1 {
		return nil, fmt.Errorf("channel: homopolymer boost %g must be >= 1", boost)
	}
	if minRun < 2 {
		minRun = 3
	}
	return &HomopolymerModel{Base: base, Boost: boost, MinRun: minRun}, nil
}

// Name implements Channel.
func (h *HomopolymerModel) Name() string {
	return fmt.Sprintf("%s+homopolymer(×%.1f)", h.Base.Name(), h.Boost)
}

// AggregateRate returns the base model's aggregate (the boost is
// mass-preserving).
func (h *HomopolymerModel) AggregateRate() float64 { return h.Base.AggregateRate() }

// Transmit implements Channel: it temporarily composes a per-strand
// position multiplier (boost inside runs, renormalised to mean 1) with the
// base model's own spatial shape by running the base model against a
// strand-specific wrapper.
func (h *HomopolymerModel) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	mult := h.runMultipliers(ref)
	if mult == nil {
		return h.Base.Transmit(ref, r)
	}
	// Rejection-style composition: sample from the base model but thin or
	// intensify per position. The simplest faithful mechanism is a
	// two-pass: positions are perturbed by a clone of the base model whose
	// Spatial is the product of the base shape and the run multiplier.
	clone := h.Base.shallowCopy()
	clone.Spatial = productSpatial{base: h.Base, mult: mult}
	return clone.Transmit(ref, r)
}

// runMultipliers returns per-position multipliers with mean 1, or nil when
// the strand has no qualifying runs.
func (h *HomopolymerModel) runMultipliers(ref dna.Strand) []float64 {
	minRun := h.MinRun
	if minRun < 2 {
		minRun = 3
	}
	runs := ref.Homopolymers(minRun)
	if len(runs) == 0 || h.Boost == 1 {
		return nil
	}
	mult := make([]float64, ref.Len())
	for i := range mult {
		mult[i] = 1
	}
	for _, run := range runs {
		for p := run.Pos; p < run.Pos+run.Len; p++ {
			mult[p] = h.Boost
		}
	}
	// Renormalise to mean 1 so the aggregate error rate is preserved.
	total := 0.0
	for _, m := range mult {
		total += m
	}
	mean := total / float64(len(mult))
	for i := range mult {
		mult[i] /= mean
	}
	return mult
}

// productSpatial composes a model's own spatial shape with a fixed
// per-position multiplier vector. It implements dist.Spatial just enough
// for Model.multipliers; the rate argument behaves as for any Spatial.
type productSpatial struct {
	base *Model
	mult []float64
}

// Name implements dist.Spatial.
func (p productSpatial) Name() string { return "homopolymer-product" }

// Rates implements dist.Spatial.
func (p productSpatial) Rates(length int, rate float64) []float64 {
	out := make([]float64, length)
	baseMult := p.base.multipliers(length) // nil means uniform
	total := 0.0
	for i := 0; i < length; i++ {
		m := 1.0
		if baseMult != nil {
			m = baseMult[i]
		}
		if i < len(p.mult) {
			m *= p.mult[i]
		}
		out[i] = m
		total += m
	}
	if total == 0 {
		return out
	}
	scale := rate * float64(length) / total
	for i := range out {
		out[i] = math.Min(out[i]*scale, 0.95)
	}
	return out
}
