package channel

import (
	"fmt"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Chimeric reads: §2.2.3 faults DNASimulator for ignoring "errors due to
// strand-strand interactions, since the injection of errors for every
// strand is performed independently". The dominant interaction artifact in
// real pools is the chimera — a read whose prefix comes from one strand
// and whose suffix comes from another (template switching during PCR, or
// ligation during library preparation). Chimeras are a pool-level effect:
// a per-strand Channel cannot produce them, so they are modelled by a
// Simulator wrapper that sees the whole reference pool.

// ChimericSimulator wraps a Simulator: each generated read is, with
// probability P, replaced by a chimera of its own reference and a random
// partner reference, spliced at a uniform position, before passing through
// the noisy channel.
type ChimericSimulator struct {
	// Simulator produces the base dataset.
	Simulator
	// P is the per-read chimera probability.
	P float64
}

// Simulate produces the dataset with chimeras injected. Reads remain
// attributed to the cluster whose reference donated the prefix (the
// clustering stage would mostly group them there, since the prefix
// dominates edit distance to the true reference).
func (cs ChimericSimulator) Simulate(name string, refs []dna.Strand, seed uint64) *dataset.Dataset {
	if cs.P < 0 || cs.P > 1 {
		panic(fmt.Sprintf("channel: chimera probability %g out of [0,1]", cs.P))
	}
	ds := cs.Simulator.Simulate(name, refs, seed)
	if cs.P == 0 || len(refs) < 2 {
		return ds
	}
	r := rng.New(seed ^ 0xc41e5a)
	for i := range ds.Clusters {
		ref := ds.Clusters[i].Ref
		for k := range ds.Clusters[i].Reads {
			if !r.Bool(cs.P) {
				continue
			}
			// Pick a distinct partner and a splice point, then re-transmit
			// the chimeric template through the channel.
			j := r.Intn(len(refs) - 1)
			if j >= i {
				j++
			}
			partner := refs[j]
			template := spliceTemplates(ref, partner, r)
			ds.Clusters[i].Reads[k] = cs.Channel.Transmit(template, r)
		}
	}
	return ds
}

// spliceTemplates joins a prefix of a with a suffix of b at a uniform
// position (at least one base from each side).
func spliceTemplates(a, b dna.Strand, r *rng.RNG) dna.Strand {
	if a.Len() < 2 || b.Len() < 2 {
		return a
	}
	cut := 1 + r.Intn(a.Len()-1)
	// The suffix starts at the corresponding relative position of b so the
	// chimera's length stays near the design length.
	bCut := cut
	if bCut >= b.Len() {
		bCut = b.Len() - 1
	}
	return a[:cut] + b[bCut:]
}
