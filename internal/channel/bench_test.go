package channel

import (
	"testing"

	"dnastore/internal/rng"
)

// Hot-path benchmarks for the compiled transmission plan. Run with
// -cpu=1,8 to see the lock-free win: the pre-plan implementation took two
// mutex acquisitions per Transmit, which serialises at high parallelism.

func BenchmarkTransmitNaive(b *testing.B) {
	m := NewNaive("bench", Rates{Sub: 0.01, Ins: 0.005, Del: 0.02})
	benchTransmit(b, m)
}

func BenchmarkTransmitSecondOrderSpatial(b *testing.B) {
	benchTransmit(b, goldenModelSecondOrder())
}

// benchTransmit measures Transmit throughput with one RNG per goroutine,
// parallel across GOMAXPROCS — the shape of real simulateWith traffic.
func benchTransmit(b *testing.B, ch Channel) {
	refs := RandomReferences(1, 110, 42)
	ref := refs[0]
	ch.Transmit(ref, rng.New(1)) // warm the plan cache outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		r := rng.New(99)
		for pb.Next() {
			ch.Transmit(ref, r)
		}
	})
}

func BenchmarkAppendTransmitNaive(b *testing.B) {
	m := NewNaive("bench", Rates{Sub: 0.01, Ins: 0.005, Del: 0.02})
	benchAppendTransmit(b, m)
}

func BenchmarkAppendTransmitSecondOrderSpatial(b *testing.B) {
	benchAppendTransmit(b, goldenModelSecondOrder())
}

func BenchmarkAppendTransmitDNASimulator(b *testing.B) {
	benchAppendTransmit(b, NewDNASimulator("bench", DefaultNanoporeDict()))
}

// benchAppendTransmit measures the arena fast path exactly as a
// simulation worker drives it: reference decoded once, output and batch
// buffers reused. These paths must report 0 allocs/op — CI asserts it
// through the dnabench zero-alloc workloads.
func benchAppendTransmit(b *testing.B, at AppendTransmitter) {
	ref := RandomReferences(1, 110, 42)[0]
	r := rng.New(99)
	var scr Scratch
	codes := scr.RefBases(ref)
	dst := at.AppendTransmit(nil, codes, r, &scr) // warm plan cache and buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = at.AppendTransmit(dst[:0], codes, r, &scr)
	}
}

// BenchmarkSimulateSecondOrderSpatial is the acceptance-gate workload: a
// full clustered simulation of the second-order + spatial model under
// heavy-tailed coverage. clusters/s = clusters · 1e9 / (ns/op).
func BenchmarkSimulateSecondOrderSpatial(b *testing.B) {
	const clusters = 400
	refs := RandomReferences(clusters, 110, 42)
	sim := Simulator{
		Channel:  goldenModelSecondOrder(),
		Coverage: NegBinCoverage{Mean: 10, Dispersion: 1.2},
	}
	sim.Simulate("bench", refs, 42)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Simulate("bench", refs, 42)
	}
	b.ReportMetric(float64(clusters)*float64(b.N)/b.Elapsed().Seconds(), "clusters/s")
}
