package channel

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestTransitionBiasedSubMatrix(t *testing.T) {
	mtx := TransitionBiasedSubMatrix(0.8)
	partner := map[dna.Base]dna.Base{dna.A: dna.G, dna.G: dna.A, dna.C: dna.T, dna.T: dna.C}
	for b := dna.Base(0); b < dna.NumBases; b++ {
		rowSum := 0.0
		for c := dna.Base(0); c < dna.NumBases; c++ {
			rowSum += mtx[b][c]
		}
		if math.Abs(rowSum-1) > 1e-12 {
			t.Errorf("row %v sums to %v", b, rowSum)
		}
		if mtx[b][b] != 0 {
			t.Errorf("diagonal %v nonzero", b)
		}
		if mtx[b][partner[b]] != 0.8 {
			t.Errorf("transition weight for %v = %v", b, mtx[b][partner[b]])
		}
	}
	// Clamping.
	m2 := TransitionBiasedSubMatrix(1.5)
	if m2[dna.A][dna.G] != 1 {
		t.Error("transition not clamped to 1")
	}
}

func TestPipelineComposes(t *testing.T) {
	p := Pipeline{Stages: []Stage{
		NewNaive("s1", Rates{Del: 0.05}),
		NewNaive("s2", Rates{Ins: 0.05}),
	}}
	if p.Name() != "s1→s2" {
		t.Errorf("Name = %q", p.Name())
	}
	r := rng.New(1)
	ref := dna.Strand(RandomReferences(1, 100, 1)[0])
	read := p.Transmit(ref, r)
	if err := read.Validate(); err != nil {
		t.Fatal(err)
	}
	labeled := Pipeline{Label: "full", Stages: p.Stages}
	if labeled.Name() != "full" {
		t.Error("label ignored")
	}
}

func TestPipelineAggregateAdditivity(t *testing.T) {
	p := Pipeline{Stages: []Stage{
		NewNaive("a", EqualMix(0.02)),
		NewNaive("b", EqualMix(0.03)),
	}}
	agg, complete := p.AggregateRate()
	if math.Abs(agg-0.05) > 1e-12 {
		t.Errorf("pipeline aggregate = %v", agg)
	}
	if !complete {
		t.Error("all stages report rates, sum should be complete")
	}
}

func TestPipelineEquivalentToSinglePassAtAggregate(t *testing.T) {
	// §4.2 ablation: a two-stage pipeline at rates p1+p2 should produce the
	// same aggregate edit-distance mass as a single pass at p1+p2 (to first
	// order in p).
	refs := RandomReferences(300, 110, 2)
	r1, r2 := rng.New(3), rng.New(4)
	pipe := Pipeline{Stages: []Stage{
		NewNaive("a", EqualMix(0.03)),
		NewNaive("b", EqualMix(0.03)),
	}}
	single := NewNaive("s", EqualMix(0.06))
	dPipe, dSingle := 0, 0
	for _, ref := range refs {
		dPipe += align.Distance(string(ref), string(pipe.Transmit(ref, r1)))
		dSingle += align.Distance(string(ref), string(single.Transmit(ref, r2)))
	}
	ratio := float64(dPipe) / float64(dSingle)
	if math.Abs(ratio-1) > 0.08 {
		t.Errorf("pipeline/single error mass ratio = %v, want ~1", ratio)
	}
}

func TestStageConstructors(t *testing.T) {
	r := rng.New(5)
	ref := dna.Strand(RandomReferences(1, 110, 5)[0])

	synth := NewSynthesisStage(0.01)
	if synth.Name() != "synthesis" {
		t.Error("synthesis name")
	}
	if synth.PerBase[0].Del <= synth.PerBase[0].Ins {
		t.Error("synthesis should be deletion-dominant")
	}

	pcr := NewPCRStage(30, 0.0001)
	if math.Abs(pcr.PerBase[0].Sub-0.003) > 1e-12 {
		t.Errorf("pcr sub rate = %v", pcr.PerBase[0].Sub)
	}
	if pcr.PerBase[0].Del != 0 || pcr.PerBase[0].Ins != 0 {
		t.Error("pcr should be substitution-only")
	}
	if NewPCRStage(-1, 0.1).PerBase[0].Sub != 0 {
		t.Error("negative cycles should clamp to 0")
	}

	decay := NewDecayStage(100, 0.00005)
	if math.Abs(decay.AggregateRate()-0.005) > 1e-12 {
		t.Errorf("decay aggregate = %v", decay.AggregateRate())
	}
	if NewDecayStage(-1, 0.1).AggregateRate() != 0 {
		t.Error("negative years should clamp to 0")
	}

	seq := NewSequencingStage(NanoporeMix(0.04), PaperLongDeletion(), nil)
	read := seq.Transmit(ref, r)
	if err := read.Validate(); err != nil {
		t.Fatal(err)
	}

	full := NewStoragePipeline("storage", 0.059, 10)
	if len(full.Stages) != 4 {
		t.Fatalf("pipeline has %d stages", len(full.Stages))
	}
	if !strings.Contains(full.Name(), "storage") {
		t.Errorf("pipeline name = %q", full.Name())
	}
	agg, complete := full.AggregateRate()
	if !complete {
		t.Error("storage pipeline stages all report rates")
	}
	// Within 10% of the requested total (long-deletion prob adds a little).
	if agg < 0.055 || agg > 0.07 {
		t.Errorf("full pipeline aggregate = %v, want ≈0.059", agg)
	}
	out := full.Transmit(ref, r)
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestStoragePipelineEmpiricalRate(t *testing.T) {
	full := NewStoragePipeline("storage", 0.06, 10)
	refs := RandomReferences(200, 110, 6)
	r := rng.New(7)
	totalDist, totalBases := 0, 0
	for _, ref := range refs {
		read := full.Transmit(ref, r)
		totalDist += align.Distance(string(ref), string(read))
		totalBases += ref.Len()
	}
	rate := float64(totalDist) / float64(totalBases)
	if rate < 0.045 || rate > 0.08 {
		t.Errorf("pipeline empirical error rate = %v, want ≈0.06", rate)
	}
}
