// Package channel implements the noisy channels of DNA storage: the paper's
// progressively refined simulator (naive → conditional probabilities & long
// deletions → spatial skew → second-order errors, §3.3), the DNASimulator
// baseline it is compared against (Algorithm 1, §2.2.1), and the composable
// multi-stage pipeline the paper's §4.2 identifies as future work.
//
// A Channel perturbs one reference strand into one noisy read. The
// Simulator type pairs a Channel with a CoverageModel to produce whole
// clustered datasets.
package channel

import (
	"fmt"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Channel is a noisy transformation of a single strand. Implementations
// must be deterministic given the RNG stream and safe for concurrent use as
// long as each goroutine supplies its own RNG.
type Channel interface {
	// Transmit produces one noisy copy of ref.
	Transmit(ref dna.Strand, r *rng.RNG) dna.Strand
	// Name identifies the channel in tables and CLIs.
	Name() string
}

// Rates holds per-base-position probabilities for the three IDS error
// classes. A zero value is an error-free channel.
type Rates struct {
	// Sub is the probability a base is replaced.
	Sub float64
	// Ins is the probability an extra base is emitted after this one.
	Ins float64
	// Del is the probability this base is dropped.
	Del float64
}

// Total returns the combined per-position error probability.
func (r Rates) Total() float64 { return r.Sub + r.Ins + r.Del }

// Scale returns the rates multiplied by f.
func (r Rates) Scale(f float64) Rates {
	return Rates{Sub: r.Sub * f, Ins: r.Ins * f, Del: r.Del * f}
}

// Validate checks that each probability is in [0,1] and the total is < 1.
func (r Rates) Validate() error {
	for _, v := range []float64{r.Sub, r.Ins, r.Del} {
		if v < 0 || v > 1 {
			return fmt.Errorf("channel: rate %v out of [0,1]", v)
		}
	}
	if r.Total() >= 1 {
		return fmt.Errorf("channel: total error rate %v must be < 1", r.Total())
	}
	return nil
}

// EqualMix splits an aggregate per-position error rate p evenly across
// substitutions, insertions and deletions — the parameterisation used by
// the sensitivity analysis of §3.4 where only the aggregate is specified.
func EqualMix(p float64) Rates {
	return Rates{Sub: p / 3, Ins: p / 3, Del: p / 3}
}

// NanoporeMix splits an aggregate rate in the proportions the literature
// reports for Nanopore sequencing: deletion-heavy, substitution-rich,
// insertion-light (roughly 40/40/20 del/sub/ins).
func NanoporeMix(p float64) Rates {
	return Rates{Del: 0.40 * p, Sub: 0.40 * p, Ins: 0.20 * p}
}

// LongDeletion models burst deletions (consecutive deletions of length >= 2,
// §3.3.1): with probability Prob per position a burst starts, its length
// drawn from LengthWeights where index k is the relative weight of length
// MinLen+k. The paper measured Prob = 0.33%, mean length 2.17, with weights
// 84/13/1.8/0.2/0.02 for lengths 2..6.
type LongDeletion struct {
	// Prob is the per-position probability of starting a burst.
	Prob float64
	// MinLen is the shortest burst length (2 in the paper's definition).
	MinLen int
	// LengthWeights[k] is the relative weight of burst length MinLen+k.
	LengthWeights []float64
}

// PaperLongDeletion returns the long-deletion parameters measured on the
// Nanopore dataset in §3.3.1.
func PaperLongDeletion() LongDeletion {
	return LongDeletion{
		Prob:          0.0033,
		MinLen:        2,
		LengthWeights: []float64{84, 13, 1.8, 0.2, 0.02},
	}
}

// sampleLen draws a burst length; it returns MinLen when no weights are set.
func (l LongDeletion) sampleLen(r *rng.RNG) int {
	if len(l.LengthWeights) == 0 {
		return l.minLen()
	}
	total := 0.0
	for _, w := range l.LengthWeights {
		total += w
	}
	if total <= 0 {
		return l.minLen()
	}
	u := r.Float64() * total
	for k, w := range l.LengthWeights {
		u -= w
		if u < 0 {
			return l.minLen() + k
		}
	}
	return l.minLen() + len(l.LengthWeights) - 1
}

func (l LongDeletion) minLen() int {
	if l.MinLen < 2 {
		return 2
	}
	return l.MinLen
}

// MeanLen returns the expected burst length under the length distribution.
func (l LongDeletion) MeanLen() float64 {
	if len(l.LengthWeights) == 0 {
		return float64(l.minLen())
	}
	total, sum := 0.0, 0.0
	for k, w := range l.LengthWeights {
		total += w
		sum += w * float64(l.minLen()+k)
	}
	if total <= 0 {
		return float64(l.minLen())
	}
	return sum / total
}
