package channel

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dnastore/internal/dist"
)

// The stages DSL: the CLI- and spec-facing form of Pipeline, mirroring the
// faults DSL syntax (comma-separated key=value directives, colon-separated
// sub-fields). A stage list is parsed once, validated eagerly, and built
// into a Pipeline; the textual form travels verbatim inside SimulateSpec,
// so two jobs with the same stage string produce the same fingerprint and
// share shard caches across dnasimd and the fleet.
//
// Grammar — stages apply in listed order:
//
//	synthesis=RATE                deletion-dominant, 3'-skewed (NewSynthesisStage)
//	pcr=CYCLES:SUBRATE[:EFFSD]    per-cycle substitutions; with EFFSD also
//	                              lognormal amplification skew on the pool
//	                              (NewPCRAmplification), else strand-only
//	aging=YEARS:RATE[:BREAK]      hydrolytic decay; with BREAK also strand
//	                              breakage thinning the pool (NewAgingStage),
//	                              else strand-only (NewDecayStage)
//	sequencing=RATE[:SPATIAL]     Nanopore-mix read-out with burst deletions;
//	                              SPATIAL is a dist.ByName name
//	                              (uniform | a-shape | v-shape | terminal-skew)
//	naive=SUB:INS:DEL             uniform per-base rates (NewNaive)
//
// e.g. "synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:0.00003:0.00133,sequencing=0.0413:terminal-skew".

// StageSpec is one parsed directive.
type StageSpec struct {
	// Kind is the directive key: synthesis, pcr, aging, sequencing, naive.
	Kind string
	// Rate is the aggregate rate for synthesis and sequencing.
	Rate float64
	// Cycles and SubRate configure pcr; EffSD enables the pool skew when
	// HasPool is set.
	Cycles  int
	SubRate float64
	EffSD   float64
	// Years, RatePerYear and Breakage configure aging; Breakage thins the
	// pool when HasPool is set.
	Years, RatePerYear, Breakage float64
	// HasPool records whether the optional pool field was present, so the
	// spec round-trips exactly (pcr=30:0.001 ≠ pcr=30:0.001:0).
	HasPool bool
	// Spatial is the sequencing spatial name; empty means none.
	Spatial string
	// Sub, Ins, Del are the naive per-base rates.
	Sub, Ins, Del float64
}

// StageList is a parsed, validated stage pipeline specification.
type StageList []StageSpec

// ParseStages parses the textual stage specification; an empty string
// yields an empty list, which builds the identity pipeline.
func ParseStages(s string) (StageList, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	var list StageList
	for _, item := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(item), "=")
		if !ok {
			return nil, fmt.Errorf("stages: directive %q is not key=value", item)
		}
		sp := StageSpec{Kind: key}
		switch key {
		case "synthesis":
			r, err := parseStageRate(key, val)
			if err != nil {
				return nil, err
			}
			sp.Rate = r
		case "pcr":
			fields := strings.Split(val, ":")
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("stages: pcr needs CYCLES:SUBRATE[:EFFSD], got %q", val)
			}
			cycles, err := strconv.Atoi(fields[0])
			if err != nil || cycles < 0 {
				return nil, fmt.Errorf("stages: pcr cycles %q must be a non-negative integer", fields[0])
			}
			sub, err := parseStageRate("pcr sub", fields[1])
			if err != nil {
				return nil, err
			}
			sp.Cycles, sp.SubRate = cycles, sub
			if len(fields) == 3 {
				sd, err := parseStageRate("pcr efficiency sd", fields[2])
				if err != nil {
					return nil, err
				}
				sp.EffSD, sp.HasPool = sd, true
			}
		case "aging":
			fields := strings.Split(val, ":")
			if len(fields) < 2 || len(fields) > 3 {
				return nil, fmt.Errorf("stages: aging needs YEARS:RATE[:BREAK], got %q", val)
			}
			years, err := strconv.ParseFloat(fields[0], 64)
			if err != nil || math.IsNaN(years) || years < 0 {
				return nil, fmt.Errorf("stages: aging years %q must be >= 0", fields[0])
			}
			rate, err := parseStageRate("aging rate", fields[1])
			if err != nil {
				return nil, err
			}
			sp.Years, sp.RatePerYear = years, rate
			if len(fields) == 3 {
				brk, err := parseStageRate("aging breakage", fields[2])
				if err != nil {
					return nil, err
				}
				sp.Breakage, sp.HasPool = brk, true
			}
		case "sequencing":
			rateStr, spatial, hasSpatial := strings.Cut(val, ":")
			r, err := parseStageRate(key, rateStr)
			if err != nil {
				return nil, err
			}
			sp.Rate = r
			if hasSpatial {
				if _, err := dist.ByName(spatial); err != nil {
					return nil, fmt.Errorf("stages: sequencing spatial: %v", err)
				}
				sp.Spatial = spatial
			}
		case "naive":
			fields := strings.Split(val, ":")
			if len(fields) != 3 {
				return nil, fmt.Errorf("stages: naive needs SUB:INS:DEL, got %q", val)
			}
			rates := [3]float64{}
			for i, f := range fields {
				r, err := parseStageRate("naive", f)
				if err != nil {
					return nil, err
				}
				rates[i] = r
			}
			sp.Sub, sp.Ins, sp.Del = rates[0], rates[1], rates[2]
		default:
			return nil, fmt.Errorf("stages: unknown stage %q", key)
		}
		list = append(list, sp)
	}
	return list, nil
}

// parseStageRate parses a probability-like rate in [0,1]. NaN is rejected
// explicitly — range comparisons against NaN are all false, and a NaN rate
// would poison every threshold downstream.
func parseStageRate(key, val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(r) || r < 0 || r > 1 {
		return 0, fmt.Errorf("stages: %s rate %q must be in [0,1]", key, val)
	}
	return r, nil
}

// Empty reports whether the list builds the identity pipeline.
func (l StageList) Empty() bool { return len(l) == 0 }

// Build assembles the pipeline. The list has already been validated by
// ParseStages; a hand-built list with an unknown Kind panics.
func (l StageList) Build(label string) Pipeline {
	stages := make([]Stage, 0, len(l))
	for _, sp := range l {
		switch sp.Kind {
		case "synthesis":
			stages = append(stages, NewSynthesisStage(sp.Rate))
		case "pcr":
			if sp.HasPool {
				stages = append(stages, NewPCRAmplification(sp.Cycles, sp.SubRate, sp.EffSD))
			} else {
				stages = append(stages, NewPCRStage(sp.Cycles, sp.SubRate))
			}
		case "aging":
			if sp.HasPool {
				stages = append(stages, NewAgingStage(sp.Years, sp.RatePerYear, sp.Breakage))
			} else {
				stages = append(stages, NewDecayStage(sp.Years, sp.RatePerYear))
			}
		case "sequencing":
			var spatial dist.Spatial
			if sp.Spatial != "" {
				spatial, _ = dist.ByName(sp.Spatial) // validated at parse time
			}
			stages = append(stages, NewSequencingStage(NanoporeMix(sp.Rate), PaperLongDeletion(), spatial))
		case "naive":
			stages = append(stages, NewNaive("naive", Rates{Sub: sp.Sub, Ins: sp.Ins, Del: sp.Del}))
		default:
			panic(fmt.Sprintf("stages: unknown stage kind %q", sp.Kind))
		}
	}
	return Pipeline{Label: label, Stages: stages}
}

// String renders the list back in its textual syntax; ParseStages(l.String())
// reproduces l exactly.
func (l StageList) String() string {
	parts := make([]string, 0, len(l))
	for _, sp := range l {
		switch sp.Kind {
		case "synthesis":
			parts = append(parts, fmt.Sprintf("synthesis=%g", sp.Rate))
		case "pcr":
			if sp.HasPool {
				parts = append(parts, fmt.Sprintf("pcr=%d:%g:%g", sp.Cycles, sp.SubRate, sp.EffSD))
			} else {
				parts = append(parts, fmt.Sprintf("pcr=%d:%g", sp.Cycles, sp.SubRate))
			}
		case "aging":
			if sp.HasPool {
				parts = append(parts, fmt.Sprintf("aging=%g:%g:%g", sp.Years, sp.RatePerYear, sp.Breakage))
			} else {
				parts = append(parts, fmt.Sprintf("aging=%g:%g", sp.Years, sp.RatePerYear))
			}
		case "sequencing":
			if sp.Spatial != "" {
				parts = append(parts, fmt.Sprintf("sequencing=%g:%s", sp.Rate, sp.Spatial))
			} else {
				parts = append(parts, fmt.Sprintf("sequencing=%g", sp.Rate))
			}
		case "naive":
			parts = append(parts, fmt.Sprintf("naive=%g:%g:%g", sp.Sub, sp.Ins, sp.Del))
		}
	}
	return strings.Join(parts, ",")
}
