package channel

import (
	"bytes"
	"context"
	"path/filepath"
	"testing"

	"dnastore/internal/dataset"
)

// writeBytes renders a dataset through the canonical text writer.
func writeBytes(t *testing.T, ds *dataset.Dataset) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatalf("write dataset: %v", err)
	}
	return buf.Bytes()
}

// TestSimulateRangeConcatIdentity is the merge-safety contract of
// cluster-range sharding: simulating [0,N) in one run and as several
// cluster-range shards must serialize to the same bytes once the shard
// outputs are concatenated in range order.
func TestSimulateRangeConcatIdentity(t *testing.T) {
	const seed = 42
	refs := RandomReferences(97, 60, seed^0xbeef)
	sim := Simulator{
		Channel:  NewNaive("rangetest", Rates{Sub: 0.02, Ins: 0.01, Del: 0.03}),
		Coverage: NegBinCoverage{Mean: 5, Dispersion: 2.5},
	}

	full, err := sim.SimulateCtx(context.Background(), "simulated", refs, seed)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}
	want := writeBytes(t, full)

	// Uneven shards on purpose: the last one is shorter than the rest.
	var got []byte
	for first := 0; first < len(refs); first += 40 {
		count := 40
		if first+count > len(refs) {
			count = len(refs) - first
		}
		shard, err := sim.SimulateRangeCtx(context.Background(), "simulated", refs, seed, first, count)
		if err != nil {
			t.Fatalf("shard [%d,%d): %v", first, first+count, err)
		}
		if len(shard.Clusters) != count {
			t.Fatalf("shard [%d,%d): %d clusters, want %d", first, first+count, len(shard.Clusters), count)
		}
		got = append(got, writeBytes(t, shard)...)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("concatenated shard output differs from full run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestSimulateRangeCheckpointResume drills shard handoff: a shard journal
// written by one interrupted run is resumed by a second run, and the shard
// output stays byte-identical to an uninterrupted range run.
func TestSimulateRangeCheckpointResume(t *testing.T) {
	const (
		seed         = 7
		first, count = 20, 30
	)
	refs := RandomReferences(64, 50, seed^0x5a5a)
	sim := Simulator{
		Channel:  NewNaive("rangetest", Rates{Sub: 0.01, Ins: 0.005, Del: 0.02}),
		Coverage: FixedCoverage(4),
	}
	want, err := sim.SimulateRangeCtx(context.Background(), "simulated", refs, seed, first, count)
	if err != nil {
		t.Fatalf("reference range run: %v", err)
	}

	path := filepath.Join(t.TempDir(), "shard.ckpt")
	desc := sim.Describe()

	// First run: cancel after a handful of commits.
	ckpt, err := OpenCheckpoint(path, "simulated", refs, seed, desc)
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ckpt.OnCommit = func(commits int) {
		if commits >= 5 {
			cancel()
		}
	}
	_, err = sim.SimulateRangeCheckpoint(ctx, "simulated", refs, seed, first, count, ckpt)
	if err == nil {
		t.Fatal("interrupted run unexpectedly completed clean")
	}
	journaled := ckpt.Completed()
	if journaled == 0 {
		t.Fatal("no clusters journaled before cancel")
	}
	ckpt.Close()
	cancel()

	// Second run: resume from the journal (handoff to a "different node"
	// holding the same spec and shard range).
	ckpt2, err := OpenCheckpoint(path, "simulated", refs, seed, desc)
	if err != nil {
		t.Fatalf("reopen checkpoint: %v", err)
	}
	defer ckpt2.Close()
	if ckpt2.Completed() < journaled {
		t.Fatalf("resume lost progress: %d < %d committed clusters", ckpt2.Completed(), journaled)
	}
	got, err := sim.SimulateRangeCheckpoint(context.Background(), "simulated", refs, seed, first, count, ckpt2)
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if !bytes.Equal(writeBytes(t, got), writeBytes(t, want)) {
		t.Fatal("resumed shard output differs from uninterrupted range run")
	}
}

// TestSimulateRangeBounds rejects out-of-range shards instead of clamping
// them: a clamped shard would silently merge into a hole.
func TestSimulateRangeBounds(t *testing.T) {
	refs := RandomReferences(10, 20, 1)
	sim := Simulator{Channel: NewNaive("rangetest", Rates{Sub: 0.01}), Coverage: FixedCoverage(2)}
	for _, tc := range [][2]int{{-1, 5}, {0, -1}, {5, 6}, {11, 0}} {
		if _, err := sim.SimulateRangeCtx(context.Background(), "x", refs, 1, tc[0], tc[1]); err == nil {
			t.Errorf("range [%d,+%d): no error", tc[0], tc[1])
		}
	}
}
