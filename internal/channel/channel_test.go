package channel

import (
	"math"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestRatesTotalAndValidate(t *testing.T) {
	r := Rates{Sub: 0.01, Ins: 0.02, Del: 0.03}
	if math.Abs(r.Total()-0.06) > 1e-12 {
		t.Errorf("Total = %v", r.Total())
	}
	if err := r.Validate(); err != nil {
		t.Errorf("valid rates rejected: %v", err)
	}
	if err := (Rates{Sub: -0.1}).Validate(); err == nil {
		t.Error("negative rate accepted")
	}
	if err := (Rates{Sub: 0.5, Ins: 0.5, Del: 0.1}).Validate(); err == nil {
		t.Error("total >= 1 accepted")
	}
	s := r.Scale(2)
	if math.Abs(s.Total()-0.12) > 1e-12 {
		t.Errorf("Scale total = %v", s.Total())
	}
}

func TestMixes(t *testing.T) {
	e := EqualMix(0.09)
	if math.Abs(e.Sub-0.03) > 1e-12 || math.Abs(e.Total()-0.09) > 1e-12 {
		t.Errorf("EqualMix = %+v", e)
	}
	n := NanoporeMix(0.059)
	if math.Abs(n.Total()-0.059) > 1e-12 {
		t.Errorf("NanoporeMix total = %v", n.Total())
	}
	if n.Del <= n.Ins {
		t.Error("NanoporeMix should be deletion-heavy")
	}
}

func TestLongDeletionSampling(t *testing.T) {
	ld := PaperLongDeletion()
	r := rng.New(1)
	const n = 200000
	sum := 0
	counts := map[int]int{}
	for i := 0; i < n; i++ {
		l := ld.sampleLen(r)
		if l < 2 || l > 6 {
			t.Fatalf("burst length %d out of [2,6]", l)
		}
		sum += l
		counts[l]++
	}
	mean := float64(sum) / n
	// Paper: mean length 2.17.
	if math.Abs(mean-ld.MeanLen()) > 0.02 {
		t.Errorf("sampled mean %v, analytic %v", mean, ld.MeanLen())
	}
	if math.Abs(ld.MeanLen()-2.17) > 0.03 {
		t.Errorf("paper long-deletion mean = %v, want ~2.17", ld.MeanLen())
	}
	frac2 := float64(counts[2]) / n
	if math.Abs(frac2-0.84) > 0.02 {
		t.Errorf("fraction of length-2 bursts = %v, want ~0.84", frac2)
	}
}

func TestLongDeletionDefaults(t *testing.T) {
	var ld LongDeletion
	if ld.sampleLen(rng.New(1)) != 2 {
		t.Error("zero-value burst length != 2")
	}
	if ld.MeanLen() != 2 {
		t.Error("zero-value mean != 2")
	}
	ld = LongDeletion{MinLen: 3, LengthWeights: []float64{0, 0}}
	if ld.sampleLen(rng.New(1)) != 3 {
		t.Error("all-zero weights should fall back to MinLen")
	}
}

func TestZeroModelIsIdentity(t *testing.T) {
	m := &Model{Label: "id"}
	r := rng.New(2)
	ref := dna.Strand("ACGTACGTACGT")
	for i := 0; i < 100; i++ {
		if got := m.Transmit(ref, r); got != ref {
			t.Fatalf("zero model perturbed strand: %q", got)
		}
	}
	if m.Transmit("", r) != "" {
		t.Error("empty strand not preserved")
	}
}

func TestNaiveAggregateRate(t *testing.T) {
	m := NewNaive("naive", EqualMix(0.06))
	if math.Abs(m.AggregateRate()-0.06) > 1e-12 {
		t.Errorf("AggregateRate = %v", m.AggregateRate())
	}
	refs := RandomReferences(200, 110, 7)
	r := rng.New(3)
	totalDist, totalBases := 0, 0
	for _, ref := range refs {
		for k := 0; k < 5; k++ {
			read := m.Transmit(ref, r)
			totalDist += align.Distance(string(ref), string(read))
			totalBases += ref.Len()
		}
	}
	rate := float64(totalDist) / float64(totalBases)
	if math.Abs(rate-0.06) > 0.005 {
		t.Errorf("empirical error rate %v, want ~0.06", rate)
	}
}

func TestSubOnlyPreservesLength(t *testing.T) {
	m := NewNaive("sub", Rates{Sub: 0.2})
	r := rng.New(4)
	ref := dna.Strand(RandomReferences(1, 200, 1)[0])
	for i := 0; i < 50; i++ {
		read := m.Transmit(ref, r)
		if read.Len() != ref.Len() {
			t.Fatalf("sub-only changed length: %d != %d", read.Len(), ref.Len())
		}
	}
}

func TestDelOnlyShortens(t *testing.T) {
	m := NewNaive("del", Rates{Del: 0.3})
	r := rng.New(5)
	ref := dna.Strand(RandomReferences(1, 200, 2)[0])
	shorter := 0
	for i := 0; i < 50; i++ {
		read := m.Transmit(ref, r)
		if read.Len() > ref.Len() {
			t.Fatalf("del-only lengthened strand")
		}
		if read.Len() < ref.Len() {
			shorter++
		}
	}
	if shorter < 45 {
		t.Errorf("only %d/50 reads shortened at 30%% deletion", shorter)
	}
}

func TestInsOnlyLengthens(t *testing.T) {
	m := NewNaive("ins", Rates{Ins: 0.3})
	r := rng.New(6)
	ref := dna.Strand(RandomReferences(1, 200, 3)[0])
	longer := 0
	for i := 0; i < 50; i++ {
		read := m.Transmit(ref, r)
		if read.Len() < ref.Len() {
			t.Fatalf("ins-only shortened strand")
		}
		if read.Len() > ref.Len() {
			longer++
		}
	}
	if longer < 45 {
		t.Errorf("only %d/50 reads lengthened at 30%% insertion", longer)
	}
}

func TestSubstitutionNeverProducesSameBaseWithMatrix(t *testing.T) {
	// With a confusion matrix, a substitution must change the base.
	m := NewNaive("sub", Rates{Sub: 0.5})
	m.SubMatrix = TransitionBiasedSubMatrix(0.8)
	r := rng.New(7)
	ref := dna.Repeat(dna.A, 2000)
	read := m.Transmit(ref, r)
	if read.Len() != 2000 {
		t.Fatalf("length changed")
	}
	subs := 0
	toG := 0
	for i := 0; i < read.Len(); i++ {
		if read.At(i) != dna.A {
			subs++
			if read.At(i) == dna.G {
				toG++
			}
		}
	}
	if subs < 800 {
		t.Fatalf("too few substitutions: %d", subs)
	}
	frac := float64(toG) / float64(subs)
	if math.Abs(frac-0.8) > 0.06 {
		t.Errorf("A→G fraction = %v, want ~0.8", frac)
	}
}

func TestUniformSubCanProduceAnyOtherBase(t *testing.T) {
	m := NewNaive("sub", Rates{Sub: 0.5})
	r := rng.New(8)
	ref := dna.Repeat(dna.C, 3000)
	read := m.Transmit(ref, r)
	seen := map[dna.Base]int{}
	for i := 0; i < read.Len(); i++ {
		if read.At(i) != dna.C {
			seen[read.At(i)]++
		}
	}
	if len(seen) != 3 {
		t.Errorf("uniform substitution produced %d distinct bases, want 3: %v", len(seen), seen)
	}
	if seen[dna.C] != 0 {
		t.Error("uniform substitution reproduced original base")
	}
}

func TestInsDistRespected(t *testing.T) {
	m := NewNaive("ins", Rates{Ins: 0.3})
	m.InsDist = [dna.NumBases]float64{0, 0, 0, 1} // only T inserted
	r := rng.New(9)
	ref := dna.Repeat(dna.A, 3000)
	read := m.Transmit(ref, r)
	for i := 0; i < read.Len(); i++ {
		if b := read.At(i); b != dna.A && b != dna.T {
			t.Fatalf("unexpected inserted base %v", b)
		}
	}
	if read.Len() <= ref.Len() {
		t.Error("no insertions happened")
	}
}

func TestLongDeletionBursts(t *testing.T) {
	m := &Model{Label: "ld", LongDel: LongDeletion{Prob: 0.02, MinLen: 2, LengthWeights: []float64{1}}}
	r := rng.New(10)
	ref := dna.Strand(RandomReferences(1, 110, 4)[0])
	const n = 2000
	totalDel := 0
	for i := 0; i < n; i++ {
		read := m.Transmit(ref, r)
		totalDel += ref.Len() - read.Len()
	}
	// Expected deletions per strand ≈ 110 * 0.02 * 2.
	mean := float64(totalDel) / n
	want := 110 * 0.02 * 2
	if math.Abs(mean-want)/want > 0.15 {
		t.Errorf("mean deleted bases %v, want ~%v", mean, want)
	}
}

func TestSpatialSkewConcentratesErrors(t *testing.T) {
	m := NewNaive("skew", Rates{Sub: 0.06}).WithSpatial(dist.NanoporeSkew())
	r := rng.New(11)
	ref := dna.Strand(RandomReferences(1, 110, 5)[0])
	counts := make([]int, 110)
	const n = 20000
	for i := 0; i < n; i++ {
		read := m.Transmit(ref, r)
		for p := 0; p < 110; p++ {
			if read[p] != ref[p] {
				counts[p]++
			}
		}
	}
	interior := 0.0
	for p := 10; p < 100; p++ {
		interior += float64(counts[p])
	}
	interior /= 90
	if float64(counts[0]) < 3*interior {
		t.Errorf("position 0 errors (%d) not boosted vs interior (%v)", counts[0], interior)
	}
	if float64(counts[109]) < 6*interior {
		t.Errorf("final position errors (%d) not boosted ~12x vs interior (%v)", counts[109], interior)
	}
	ratio := float64(counts[109]) / float64(counts[0])
	if math.Abs(ratio-2) > 0.4 {
		t.Errorf("end/start error ratio = %v, want ~2", ratio)
	}
}

func TestSpatialSkewPreservesAggregate(t *testing.T) {
	base := NewNaive("base", EqualMix(0.06))
	skewed := base.WithSpatial(dist.NanoporeSkew())
	r := rng.New(12)
	refs := RandomReferences(300, 110, 6)
	dist0, dist1 := 0, 0
	for _, ref := range refs {
		dist0 += align.Distance(string(ref), string(base.Transmit(ref, r)))
		dist1 += align.Distance(string(ref), string(skewed.Transmit(ref, r)))
	}
	ratio := float64(dist1) / float64(dist0)
	if math.Abs(ratio-1) > 0.12 {
		t.Errorf("skew changed aggregate error mass: ratio %v", ratio)
	}
}

func TestSecondOrderSpecificError(t *testing.T) {
	// A model whose only error is del(G) with strong end-of-strand skew.
	so := SecondOrderError{
		Kind: align.Del, From: dna.G, Rate: 0.3,
		Spatial: []float64{0, 0, 0, 0, 0, 0, 0, 0, 1, 1},
	}
	m := &Model{Label: "so", SecondOrder: []SecondOrderError{so}}
	r := rng.New(13)
	ref := dna.Strand("AAAAAGGGGG") // G only in last half
	const n = 5000
	deleted := 0
	for i := 0; i < n; i++ {
		read := m.Transmit(ref, r)
		deleted += ref.Len() - read.Len()
		for p := 0; p < read.Len(); p++ {
			if read[p] == 'G' {
				continue
			}
		}
	}
	if deleted == 0 {
		t.Fatal("no second-order deletions occurred")
	}
	// All deletions must be G (first half is A with no applicable error).
	m2 := &Model{Label: "so2", SecondOrder: []SecondOrderError{so}}
	readA := m2.Transmit(dna.Repeat(dna.A, 100), r)
	if readA.Len() != 100 {
		t.Error("del(G) fired on an all-A strand")
	}
}

func TestSecondOrderString(t *testing.T) {
	cases := []struct {
		e    SecondOrderError
		want string
	}{
		{SecondOrderError{Kind: align.Sub, From: dna.A, To: dna.G}, "sub(A→G)"},
		{SecondOrderError{Kind: align.Del, From: dna.G}, "del(G)"},
		{SecondOrderError{Kind: align.Ins, To: dna.T}, "ins(T)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
}

func TestWithSecondOrderPreservesAggregate(t *testing.T) {
	base := NewNaive("base", EqualMix(0.06))
	base.LongDel = PaperLongDeletion()
	before := base.AggregateRate()
	so := []SecondOrderError{
		{Kind: align.Del, From: dna.G, Rate: 0.04},
		{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.03},
		{Kind: align.Ins, To: dna.T, Rate: 0.005},
	}
	m := base.WithSecondOrder(so)
	after := m.AggregateRate()
	if math.Abs(after-before) > 1e-9 {
		t.Errorf("aggregate changed: %v -> %v", before, after)
	}
	// Generic mass must have shrunk.
	if m.PerBase[0].Total() >= base.PerBase[0].Total() {
		t.Error("generic rates did not shrink")
	}
}

func TestWithSecondOrderEmpiricalAggregate(t *testing.T) {
	base := NewNaive("base", EqualMix(0.06))
	so := []SecondOrderError{
		{Kind: align.Del, From: dna.G, Rate: 0.04, Spatial: []float64{1, 1, 1, 1, 4}},
		{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.04},
	}
	m := base.WithSecondOrder(so)
	refs := RandomReferences(400, 110, 8)
	r := rng.New(14)
	totalDist, totalBases := 0, 0
	for _, ref := range refs {
		read := m.Transmit(ref, r)
		totalDist += align.Distance(string(ref), string(read))
		totalBases += ref.Len()
	}
	rate := float64(totalDist) / float64(totalBases)
	if math.Abs(rate-0.06) > 0.008 {
		t.Errorf("empirical aggregate with second-order errors = %v, want ~0.06", rate)
	}
}

func TestModelTransmitDeterministic(t *testing.T) {
	m := NewNaive("d", EqualMix(0.1)).WithSpatial(dist.TriangularA{})
	ref := dna.Strand(RandomReferences(1, 110, 9)[0])
	a := m.Transmit(ref, rng.New(42))
	b := m.Transmit(ref, rng.New(42))
	if a != b {
		t.Error("Transmit not deterministic for equal RNG state")
	}
}

func TestWithLabel(t *testing.T) {
	m := NewNaive("x", EqualMix(0.01))
	if m.WithLabel("y").Name() != "y" {
		t.Error("WithLabel failed")
	}
	if m.Name() != "x" {
		t.Error("WithLabel mutated receiver")
	}
	var anon Model
	if anon.Name() != "model" {
		t.Error("default name wrong")
	}
}
