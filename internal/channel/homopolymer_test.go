package channel

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestNewHomopolymerModelValidation(t *testing.T) {
	base := NewNaive("b", EqualMix(0.05))
	if _, err := NewHomopolymerModel(nil, 2, 3); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewHomopolymerModel(base, 0.5, 3); err == nil {
		t.Error("boost < 1 accepted")
	}
	h, err := NewHomopolymerModel(base, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if h.MinRun != 3 {
		t.Errorf("default MinRun = %d", h.MinRun)
	}
	if !strings.Contains(h.Name(), "homopolymer") {
		t.Errorf("Name = %q", h.Name())
	}
}

func TestHomopolymerBoostConcentratesErrors(t *testing.T) {
	base := NewNaive("b", Rates{Sub: 0.06})
	h, err := NewHomopolymerModel(base, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Strand: 40 non-run bases, a 20-base A-run, 40 more non-run bases.
	prefix := dna.Strand(strings.Repeat("ACGT", 10))
	run := dna.Repeat(dna.A, 20)
	ref := prefix + run + prefix
	r := rng.New(1)
	inRun, outRun := 0, 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		read := h.Transmit(ref, r)
		for p := 0; p < ref.Len(); p++ {
			if read[p] != ref[p] {
				if p >= 40 && p < 60 {
					inRun++
				} else {
					outRun++
				}
			}
		}
	}
	inRate := float64(inRun) / (20 * trials)
	outRate := float64(outRun) / (80 * trials)
	ratio := inRate / outRate
	if ratio < 3 || ratio > 5 {
		t.Errorf("in-run/out-run error ratio = %v, want ≈4", ratio)
	}
}

func TestHomopolymerBoostPreservesAggregate(t *testing.T) {
	base := NewNaive("b", EqualMix(0.06))
	h, err := NewHomopolymerModel(base, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	// References with plenty of runs.
	r := rng.New(2)
	var refs []dna.Strand
	for i := 0; i < 200; i++ {
		var sb strings.Builder
		for sb.Len() < 110 {
			b := dna.Base(r.Intn(dna.NumBases))
			runLen := 1 + r.Intn(5)
			for k := 0; k < runLen && sb.Len() < 110; k++ {
				sb.WriteByte(b.Byte())
			}
		}
		refs = append(refs, dna.Strand(sb.String()))
	}
	dBase, dBoost := 0, 0
	for _, ref := range refs {
		dBase += align.Distance(string(ref), string(base.Transmit(ref, r)))
		dBoost += align.Distance(string(ref), string(h.Transmit(ref, r)))
	}
	ratio := float64(dBoost) / float64(dBase)
	if math.Abs(ratio-1) > 0.12 {
		t.Errorf("boost changed aggregate error mass: ratio %v", ratio)
	}
	if math.Abs(h.AggregateRate()-base.AggregateRate()) > 1e-12 {
		t.Error("AggregateRate differs")
	}
}

func TestHomopolymerNoRunsPassThrough(t *testing.T) {
	base := NewNaive("b", Rates{Sub: 0.1})
	h, _ := NewHomopolymerModel(base, 3, 3)
	ref := dna.Strand(strings.Repeat("ACGT", 25)) // no runs >= 3
	a := h.Transmit(ref, rng.New(7))
	b := base.Transmit(ref, rng.New(7))
	if a != b {
		t.Error("no-run strand should use the base model verbatim")
	}
}

func TestGCBiasCoverage(t *testing.T) {
	bias := GCBiasCoverage{Base: FixedCoverage(40), Strength: 2}
	r := rng.New(3)
	balanced := dna.Strand(strings.Repeat("ACGT", 25)) // GC 0.5
	extreme := dna.Strand(strings.Repeat("GGCC", 25))  // GC 1.0
	moderate := dna.Strand(strings.Repeat("GACG", 25)) // GC 0.75
	sum := func(ref dna.Strand) float64 {
		total := 0
		for i := 0; i < 2000; i++ {
			total += bias.SampleRef(ref, i, r)
		}
		return float64(total) / 2000
	}
	b, m, e := sum(balanced), sum(moderate), sum(extreme)
	if math.Abs(b-40) > 1 {
		t.Errorf("balanced coverage = %v, want ~40", b)
	}
	if !(b > m && m > e) {
		t.Errorf("coverage not monotone in GC deviation: %v, %v, %v", b, m, e)
	}
	// exp(-2*1) ≈ 0.135 of 40 ≈ 5.4 for the extreme strand.
	if math.Abs(e-40*math.Exp(-2)) > 1 {
		t.Errorf("extreme coverage = %v, want ≈%v", e, 40*math.Exp(-2))
	}
	// Plain Sample ignores the reference.
	if bias.Sample(0, r) != 40 {
		t.Error("Sample should pass through the base")
	}
	if !strings.Contains(bias.Name(), "gcbias") {
		t.Errorf("Name = %q", bias.Name())
	}
	// Zero strength is a no-op.
	noop := GCBiasCoverage{Base: FixedCoverage(7)}
	if noop.SampleRef(extreme, 0, r) != 7 {
		t.Error("zero strength should not thin")
	}
}

func TestSimulatorUsesRefAwareCoverage(t *testing.T) {
	refs := []dna.Strand{
		dna.Strand(strings.Repeat("ACGT", 25)), // balanced
		dna.Strand(strings.Repeat("GGCC", 25)), // extreme GC
	}
	sim := Simulator{
		Channel:  NewNaive("n", Rates{}),
		Coverage: GCBiasCoverage{Base: FixedCoverage(30), Strength: 3},
	}
	ds := sim.Simulate("gc", refs, 5)
	if ds.Clusters[0].Coverage() <= ds.Clusters[1].Coverage() {
		t.Errorf("extreme-GC strand (%d reads) should be thinned vs balanced (%d)",
			ds.Clusters[1].Coverage(), ds.Clusters[0].Coverage())
	}
}
