package channel

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
	"dnastore/internal/rng"
)

// Simulator pairs a noisy channel with a coverage model to turn reference
// strands into a full clustered dataset — the end-to-end operation the
// paper's problem definition (§2.3) formalises as
// (Σ_L)^N → (Σ*)^M.
type Simulator struct {
	// Channel perturbs individual strands.
	Channel Channel
	// Coverage decides reads per cluster.
	Coverage CoverageModel
}

// ClusterError records a single cluster whose simulation failed — most
// commonly a panicking Channel implementation, which SimulateCtx isolates
// per cluster instead of letting it tear down the process.
type ClusterError struct {
	// Index is the cluster (reference strand) index.
	Index int
	// Err is the recovered failure.
	Err error
}

// Error implements error.
func (e ClusterError) Error() string { return fmt.Sprintf("cluster %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying failure.
func (e ClusterError) Unwrap() error { return e.Err }

// ProgressFunc observes simulation progress: it is called after every
// completed (or checkpoint-restored) cluster with the number completed so
// far and the total requested. Calls come from simulation worker
// goroutines concurrently, so implementations must be safe for concurrent
// use — typically an atomic timestamp or counter. The watchdog in
// internal/server uses it to detect stalled jobs.
type ProgressFunc func(completed, total int)

// progressKey carries a ProgressFunc through a context.
type progressKey struct{}

// WithProgress returns a context that makes every SimulateCtx,
// SimulateCheckpoint or Pool sequencing run under it report per-cluster
// progress to fn. The hook rides the context rather than the Simulator so
// that callers several layers up (an HTTP job server timing out stalled
// work) can observe progress without threading a parameter through every
// intermediate API.
func WithProgress(ctx context.Context, fn ProgressFunc) context.Context {
	return context.WithValue(ctx, progressKey{}, fn)
}

// progressFrom extracts the progress hook, nil when absent.
func progressFrom(ctx context.Context) ProgressFunc {
	fn, _ := ctx.Value(progressKey{}).(ProgressFunc)
	return fn
}

// SimulationError aggregates everything that cut a SimulateCtx run short.
// The dataset returned alongside it is still structurally valid: failed and
// skipped clusters degrade to their reference with zero reads, so partial
// results can be written out or decoded with erasure handling.
type SimulationError struct {
	// Canceled is the context error when the run was interrupted, nil when
	// only per-cluster failures occurred.
	Canceled error
	// Clusters lists the per-cluster failures in index order.
	Clusters []ClusterError
	// Completed and Total count fully simulated clusters versus requested.
	Completed, Total int
}

// Error implements error.
func (e *SimulationError) Error() string {
	switch {
	case e.Canceled != nil && len(e.Clusters) > 0:
		return fmt.Sprintf("channel: simulation canceled after %d/%d clusters (%v) with %d cluster failures (first: %v)",
			e.Completed, e.Total, e.Canceled, len(e.Clusters), e.Clusters[0])
	case e.Canceled != nil:
		return fmt.Sprintf("channel: simulation canceled after %d/%d clusters: %v", e.Completed, e.Total, e.Canceled)
	case len(e.Clusters) == 1:
		return fmt.Sprintf("channel: simulation completed %d/%d clusters: %v", e.Completed, e.Total, e.Clusters[0])
	default:
		return fmt.Sprintf("channel: simulation completed %d/%d clusters: %d cluster failures (first: %v)",
			e.Completed, e.Total, len(e.Clusters), e.Clusters[0])
	}
}

// Unwrap exposes the context error and each per-cluster error to
// errors.Is/errors.As.
func (e *SimulationError) Unwrap() []error {
	var errs []error
	if e.Canceled != nil {
		errs = append(errs, e.Canceled)
	}
	for _, ce := range e.Clusters {
		errs = append(errs, ce)
	}
	return errs
}

// Simulate produces one dataset. Each cluster's reads are generated from an
// RNG split deterministically from the seed and cluster index, so results
// are reproducible and independent of parallelism.
//
// Simulate is the legacy fail-fast wrapper around SimulateCtx: it panics on
// a missing Channel or CoverageModel and on any per-cluster failure,
// preserving the original "simulation is infallible" contract for callers
// that want no error plumbing. Use SimulateCtx for cancellation, panic
// isolation and partial results.
func (s Simulator) Simulate(name string, refs []dna.Strand, seed uint64) *dataset.Dataset {
	ds, err := s.SimulateCtx(context.Background(), name, refs, seed)
	if err != nil {
		panic(err)
	}
	return ds
}

// SimulateCtx produces one dataset under a context. Cancellation is honored
// between clusters: workers stop picking up new clusters once ctx is done,
// and the partial dataset (completed clusters populated, the rest degraded
// to zero reads) is returned together with a *SimulationError whose
// Canceled field carries ctx.Err(). A panic inside Channel.Transmit or
// CoverageModel.Sample is confined to its cluster and surfaces as a
// ClusterError instead of killing the process.
//
// Output is byte-identical to Simulate for a run that completes without
// faults: the same per-cluster RNG split scheme applies.
func (s Simulator) SimulateCtx(ctx context.Context, name string, refs []dna.Strand, seed uint64) (*dataset.Dataset, error) {
	return s.simulateWith(ctx, name, refs, seed, 0, len(refs), nil)
}

// SimulateRangeCtx simulates only the cluster range [first, first+count)
// of refs, returning a dataset with exactly count clusters in range order.
// Every cluster's RNG still derives from its global index, so the
// concatenation of range datasets covering [0, len(refs)) is byte-identical
// to one SimulateCtx run over the whole reference set — the property that
// makes cluster-range sharding across a fleet of nodes merge-safe.
func (s Simulator) SimulateRangeCtx(ctx context.Context, name string, refs []dna.Strand, seed uint64, first, count int) (*dataset.Dataset, error) {
	return s.simulateWith(ctx, name, refs, seed, first, count, nil)
}

// simulateWith is the shared engine behind SimulateCtx and
// SimulateCheckpoint (and their Range variants): it simulates the cluster
// range [first, first+count) of refs. Checkpointed clusters are restored
// without re-simulation; newly completed ones are committed before they
// count. Checkpoint frames carry global cluster indices, so a shard's
// journal can be resumed by any node holding the same spec.
func (s Simulator) simulateWith(ctx context.Context, name string, refs []dna.Strand, seed uint64, first, count int, ckpt *Checkpoint) (*dataset.Dataset, error) {
	if s.Channel == nil {
		return nil, fmt.Errorf("channel: Simulator without a Channel")
	}
	if s.Coverage == nil {
		return nil, fmt.Errorf("channel: Simulator without a CoverageModel")
	}
	if first < 0 || count < 0 || first+count > len(refs) {
		return nil, fmt.Errorf("channel: cluster range [%d, %d) outside [0, %d)", first, first+count, len(refs))
	}
	ds := &dataset.Dataset{Name: name, Clusters: make([]dataset.Cluster, count)}
	for i := range ds.Clusters {
		// Pre-fill references so skipped or failed clusters degrade to an
		// empty cluster rather than a hole.
		ds.Clusters[i].Ref = refs[first+i]
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > count {
		workers = count
	}
	if workers < 1 {
		workers = 1
	}
	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		clusterErrs []ClusterError
		completed   atomic.Int64
	)
	// Stage accounting: total simulation wall time and clusters completed,
	// reported to whatever timer rides the context (nil-safe no-op
	// otherwise). Items are read at stop time, after the workers join.
	stop := obs.TimerFrom(ctx).Start("channel.simulate")
	defer func() { stop(int(completed.Load())) }()
	progress := progressFrom(ctx)
	total := count
	advance := func() {
		n := completed.Add(1)
		if progress != nil {
			progress(int(n), total)
		}
	}
	// Work-stealing cluster dispatch: every worker grabs the next
	// unclaimed index from a shared atomic counter. Static contiguous
	// chunking serialised badly under heavy-tailed coverage models
	// (NegBinCoverage draws occasionally demand 10× the mean reads, and
	// whichever worker owned that contiguous range finished last while the
	// rest idled); with index stealing the load balances automatically.
	// Output is unaffected: each cluster's RNG derives from (seed, index),
	// never from which worker ran it.
	//
	// Channels that implement AppendTransmitter get the zero-allocation
	// fast path: each worker owns one Scratch arena for its whole run, the
	// reference is decoded to base codes once per cluster, and every read
	// is generated into the reused output buffer. The interface contract
	// guarantees byte- and draw-identical output, so the golden
	// worker-invariance suite covers both paths with the same hashes.
	at, _ := s.Channel.(AppendTransmitter)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var scr Scratch
			for {
				li := int(next.Add(1)) - 1
				if li >= count {
					return
				}
				if ctx.Err() != nil {
					return
				}
				gi := first + li // global cluster index: names the RNG split and journal frame
				if ckpt != nil {
					if reads, ok := ckpt.Done(gi); ok {
						// Already journaled by a previous run: restore
						// verbatim instead of re-simulating.
						ds.Clusters[li] = dataset.Cluster{Ref: refs[gi], Reads: reads}
						advance()
						continue
					}
				}
				if err := s.simulateCluster(ds, refs, gi, li, seed, at, &scr); err != nil {
					mu.Lock()
					clusterErrs = append(clusterErrs, ClusterError{Index: gi, Err: err})
					mu.Unlock()
					continue
				}
				if ckpt != nil {
					if err := ckpt.Commit(gi, ds.Clusters[li].Reads); err != nil {
						mu.Lock()
						clusterErrs = append(clusterErrs, ClusterError{Index: gi,
							Err: fmt.Errorf("checkpoint commit: %w", err)})
						mu.Unlock()
						continue
					}
				}
				advance()
			}
		}()
	}
	wg.Wait()
	sort.Slice(clusterErrs, func(i, j int) bool { return clusterErrs[i].Index < clusterErrs[j].Index })
	if ctxErr := ctx.Err(); ctxErr != nil || len(clusterErrs) > 0 {
		return ds, &SimulationError{
			Canceled:  ctxErr,
			Clusters:  clusterErrs,
			Completed: int(completed.Load()),
			Total:     count,
		}
	}
	return ds, nil
}

// simulateCluster generates the reads of global cluster gi into dataset
// slot li, converting a panic in the channel or coverage model into a
// returned error. at is the channel's AppendTransmitter view (nil when
// unsupported) and scr the calling worker's arena; the fast path decodes
// the reference once and reuses the arena's output buffer across every
// read in the cluster.
func (s Simulator) simulateCluster(ds *dataset.Dataset, refs []dna.Strand, gi, li int, seed uint64, at AppendTransmitter, scr *Scratch) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	// Per-cluster RNG derived from seed and global index keeps output
	// independent of worker scheduling — and of which range shard (if any)
	// the cluster was simulated in.
	r := rng.New(seed ^ (0x9e3779b97f4a7c15 * uint64(gi+1)))
	var n int
	if ra, ok := s.Coverage.(RefAwareCoverage); ok {
		n = ra.SampleRef(refs[gi], gi, r)
	} else {
		n = s.Coverage.Sample(gi, r)
	}
	var reads []dna.Strand
	if at != nil {
		// Fast path: decode the reference once, generate every read into
		// the arena's single output buffer recording where each one ends,
		// then materialise the whole cluster as ONE immutable string and
		// slice the per-read Strands out of it. Strand slicing shares the
		// backing array, so the cluster costs two allocations (blob +
		// reads slice) instead of one per read — and the reads end up
		// contiguous in memory, which downstream alignment scans reward.
		codes := scr.RefBases(refs[gi])
		scr.out = scr.out[:0]
		scr.ends = scr.ends[:0]
		for k := 0; k < n; k++ {
			scr.out = at.AppendTransmit(scr.out, codes, r, scr)
			scr.ends = append(scr.ends, len(scr.out))
		}
		blob := dna.Strand(scr.out)
		reads = make([]dna.Strand, n)
		prev := 0
		for k, end := range scr.ends {
			reads[k] = blob[prev:end]
			prev = end
		}
	} else {
		reads = make([]dna.Strand, 0, n)
		for k := 0; k < n; k++ {
			reads = append(reads, s.Channel.Transmit(refs[gi], r))
		}
	}
	ds.Clusters[li] = dataset.Cluster{Ref: refs[gi], Reads: reads}
	return nil
}

// RandomReferences generates n uniformly random reference strands of the
// given length — the synthetic payload used throughout the evaluation.
func RandomReferences(n, length int, seed uint64) []dna.Strand {
	r := rng.New(seed)
	refs := make([]dna.Strand, n)
	buf := make([]byte, length)
	for i := range refs {
		for j := range buf {
			buf[j] = dna.Base(r.Intn(dna.NumBases)).Byte()
		}
		refs[i] = dna.Strand(string(buf))
	}
	return refs
}

// Describe returns a one-line description of the simulator configuration.
// Unlike SimulateCtx, which refuses to run a half-configured Simulator,
// Describe is diagnostic: an unset Channel or CoverageModel renders as
// "<unset>" instead of panicking, so it is safe in log and error paths.
func (s Simulator) Describe() string {
	ch, cov := "<unset>", "<unset>"
	if s.Channel != nil {
		ch = s.Channel.Name()
	}
	if s.Coverage != nil {
		cov = s.Coverage.Name()
	}
	return fmt.Sprintf("channel=%s coverage=%s", ch, cov)
}
