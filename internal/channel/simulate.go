package channel

import (
	"fmt"
	"runtime"
	"sync"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Simulator pairs a noisy channel with a coverage model to turn reference
// strands into a full clustered dataset — the end-to-end operation the
// paper's problem definition (§2.3) formalises as
// (Σ_L)^N → (Σ*)^M.
type Simulator struct {
	// Channel perturbs individual strands.
	Channel Channel
	// Coverage decides reads per cluster.
	Coverage CoverageModel
}

// Simulate produces one dataset. Each cluster's reads are generated from an
// RNG split deterministically from the seed and cluster index, so results
// are reproducible and independent of parallelism.
func (s Simulator) Simulate(name string, refs []dna.Strand, seed uint64) *dataset.Dataset {
	if s.Channel == nil {
		panic("channel: Simulator without a Channel")
	}
	if s.Coverage == nil {
		panic("channel: Simulator without a CoverageModel")
	}
	ds := &dataset.Dataset{Name: name, Clusters: make([]dataset.Cluster, len(refs))}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(refs) {
		workers = len(refs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	chunk := (len(refs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(refs) {
			hi = len(refs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				// Per-cluster RNG derived from seed and index keeps output
				// independent of worker scheduling.
				r := rng.New(seed ^ (0x9e3779b97f4a7c15 * uint64(i+1)))
				var n int
				if ra, ok := s.Coverage.(RefAwareCoverage); ok {
					n = ra.SampleRef(refs[i], i, r)
				} else {
					n = s.Coverage.Sample(i, r)
				}
				reads := make([]dna.Strand, 0, n)
				for k := 0; k < n; k++ {
					reads = append(reads, s.Channel.Transmit(refs[i], r))
				}
				ds.Clusters[i] = dataset.Cluster{Ref: refs[i], Reads: reads}
			}
		}(lo, hi)
	}
	wg.Wait()
	return ds
}

// RandomReferences generates n uniformly random reference strands of the
// given length — the synthetic payload used throughout the evaluation.
func RandomReferences(n, length int, seed uint64) []dna.Strand {
	r := rng.New(seed)
	refs := make([]dna.Strand, n)
	buf := make([]byte, length)
	for i := range refs {
		for j := range buf {
			buf[j] = dna.Base(r.Intn(dna.NumBases)).Byte()
		}
		refs[i] = dna.Strand(string(buf))
	}
	return refs
}

// Describe returns a one-line description of the simulator configuration.
func (s Simulator) Describe() string {
	return fmt.Sprintf("channel=%s coverage=%s", s.Channel.Name(), s.Coverage.Name())
}
