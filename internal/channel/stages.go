package channel

import (
	"strings"

	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Stage is one physical step of the storage channel. Stages come in two
// shapes, selected by interface:
//
//   - per-strand error stages implement Channel: they perturb individual
//     reads (synthesis errors, sequencing noise). Stages that also
//     implement AppendTransmitter run on the zero-allocation kernel, and
//     the pipeline keeps draw-for-draw parity with chaining the stages'
//     Transmit calls by hand.
//   - pool stages implement PoolStage (pool.go): they transform the
//     cluster population before any read is generated — PCR amplification
//     skew, strand breakage, decay dropout — by rewriting the cluster's
//     read count. Pipeline.BindCoverage layers them over a CoverageModel.
//
// One concrete type may be both shapes at once: PCRAmplification adds
// per-cycle substitutions to every strand and lognormal amplification
// skew to the pool.
type Stage interface {
	// StageName identifies the stage in pipeline names and tables.
	StageName() string
}

// AsStage adapts an arbitrary Channel into a per-strand Stage. Channels
// that already implement Stage (every *Model does) are returned as-is;
// anything else is wrapped and takes the allocating Transmit path inside
// pipelines.
func AsStage(ch Channel) Stage {
	if s, ok := ch.(Stage); ok {
		return s
	}
	return strandStage{ch}
}

// strandStage adapts a plain Channel; only Channel's methods are
// promoted, so wrapped channels never reach the append fast path.
type strandStage struct{ Channel }

// StageName implements Stage.
func (s strandStage) StageName() string { return s.Channel.Name() }

// Pipeline composes stages in physical order: the output of strand stage
// k is the input of strand stage k+1, and pool stages rewrite the
// cluster's read count in the same order (BindCoverage). This realises
// the paper's §4.2 recommendation — "an ideal simulator should allow for
// a multi-stage, composable simulation process" — with one stage per
// physical step (synthesis → PCR → storage → sequencing) instead of a
// single aggregate error pass.
//
// Pipeline implements Channel and AppendTransmitter; Transmit always
// returns a strand with fresh backing, never an alias of the caller's
// reference — even with zero strand stages, where the pipeline is the
// identity channel.
type Pipeline struct {
	// Label names the pipeline in tables.
	Label string
	// Stages are applied in order.
	Stages []Stage
}

// Name implements Channel.
func (p Pipeline) Name() string {
	if p.Label != "" {
		return p.Label
	}
	names := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		names[i] = s.StageName()
	}
	return strings.Join(names, "→")
}

// Transmit implements Channel: the reference flows through every strand
// stage in order, all randomness drawn from r in stage order. Like
// Model.Transmit it is the pooled-arena wrapper over AppendTransmit, so
// output bytes and RNG draw accounting are identical on both paths.
func (p Pipeline) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	if ref.Len() == 0 {
		return ref
	}
	scr := scratchPool.Get().(*Scratch)
	scr.out = p.AppendTransmit(scr.out[:0], scr.RefBases(ref), r, scr)
	s := dna.Strand(scr.out)
	scratchPool.Put(scr)
	return s
}

// AppendTransmit implements AppendTransmitter end to end: stage k's
// output bytes are decoded into the arena's staging buffer and fed to
// stage k+1, with only the final stage appending into the caller's dst —
// the double-buffered hot path, 0 allocs/op once the arena is warm.
// Stages implementing AppendTransmitter run the zero-alloc kernel;
// wrapped channels fall back to the Strand API (allocating, but byte-
// and draw-identical). With zero strand stages the reference is copied
// into dst faithfully — never aliased.
func (p Pipeline) AppendTransmit(dst []byte, ref []dna.Base, r *rng.RNG, scr *Scratch) []byte {
	// Count the strand stages so the last one can append straight into
	// dst; a slice of them here would put an allocation on the hot path.
	n := 0
	for _, st := range p.Stages {
		if _, ok := st.(Channel); ok {
			n++
		}
	}
	if n == 0 {
		return dna.AppendLetters(dst, ref)
	}
	codes := ref
	k := 0
	for _, st := range p.Stages {
		ch, ok := st.(Channel)
		if !ok {
			continue
		}
		k++
		if k == n {
			return appendStageTransmit(ch, dst, codes, r, scr)
		}
		// Intermediate stage: write into the staging buffer, then decode
		// to base codes before the buffer is reused — an empty output
		// (total deletion) flows through as an empty reference, which
		// downstream stages pass unchanged without consuming draws,
		// exactly as their Transmit would.
		scr.stageOut = appendStageTransmit(ch, scr.stageOut[:0], codes, r, scr)
		scr.stageCodes = appendBaseCodes(scr.stageCodes[:0], scr.stageOut)
		codes = scr.stageCodes
	}
	return dst // unreachable: the k == n branch always returns
}

// appendStageTransmit transmits codes through one strand stage, appending
// the result to dst.
func appendStageTransmit(ch Channel, dst []byte, codes []dna.Base, r *rng.RNG, scr *Scratch) []byte {
	if at, ok := ch.(AppendTransmitter); ok {
		return at.AppendTransmit(dst, codes, r, scr)
	}
	if len(codes) == 0 {
		return dst
	}
	out := ch.Transmit(dna.Strand(dna.AppendLetters(nil, codes)), r)
	return append(dst, string(out)...)
}

// appendBaseCodes decodes ASCII base letters back into 2-bit codes. The
// input is pipeline stage output, always valid ACGT.
func appendBaseCodes(dst []dna.Base, letters []byte) []dna.Base {
	for _, c := range letters {
		dst = append(dst, dna.MustBase(c))
	}
	return dst
}

// AggregateRate returns the approximate combined per-base error rate of
// all strand stages (small-rate approximation: rates add). complete is
// false when any strand stage does not expose an AggregateRate — the sum
// then under-reports the channel and callers must say so instead of
// presenting it as the whole rate. Pool stages shape coverage, not
// per-read error mass, so they never mark the sum incomplete.
func (p Pipeline) AggregateRate() (rate float64, complete bool) {
	complete = true
	for _, st := range p.Stages {
		ch, ok := st.(Channel)
		if !ok {
			continue
		}
		if m, ok := ch.(interface{ AggregateRate() float64 }); ok {
			rate += m.AggregateRate()
		} else {
			complete = false
		}
	}
	return rate, complete
}

// NewSynthesisStage models array-based synthesis: deletion-dominant errors
// whose rate grows toward the 3' end of the strand (synthesis proceeds
// base-by-base and late couplings fail more often — why strands longer than
// ~200 bases are impractical, §1.2).
func NewSynthesisStage(rate float64) *Model {
	m := &Model{Label: "synthesis"}
	r := Rates{Del: 0.7 * rate, Ins: 0.1 * rate, Sub: 0.2 * rate}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	m.Spatial = dist.TerminalSkew{StartPositions: 0, EndPositions: 5, StartBoost: 1, EndBoost: 4}
	return m
}

// NewPCRStage models polymerase-chain-reaction amplification: per-cycle
// substitution errors that accumulate over the number of cycles; polymerase
// virtually never introduces indels. This is the strand-only PCR shape —
// NewPCRAmplification (pool.go) adds the population-level amplification
// skew on top.
func NewPCRStage(cycles int, perCycleSubRate float64) *Model {
	if cycles < 0 {
		cycles = 0
	}
	m := &Model{Label: "pcr"}
	r := Rates{Sub: float64(cycles) * perCycleSubRate}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	// Complementary-base misincorporation dominates: A↔G, C↔T transitions
	// are far likelier than transversions (Heckel et al., §2.1).
	m.SubMatrix = TransitionBiasedSubMatrix(0.8)
	return m
}

// NewDecayStage models storage decay over the given duration: hydrolytic
// damage that manifests as substitutions (deaminated bases misread) and
// single-base deletions (abasic sites), proportional to storage time.
// NewAgingStage (pool.go) pairs this per-strand damage with strand
// breakage that thins the pool.
func NewDecayStage(years, ratePerYear float64) *Model {
	if years < 0 {
		years = 0
	}
	m := &Model{Label: "storage"}
	p := years * ratePerYear
	r := Rates{Sub: 0.5 * p, Del: 0.5 * p}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	return m
}

// NewSequencingStage models the sequencing read-out with the given rate
// mix, terminal spatial skew and burst deletions — the Nanopore shape.
func NewSequencingStage(rates Rates, longDel LongDeletion, spatial dist.Spatial) *Model {
	m := &Model{Label: "sequencing", LongDel: longDel, Spatial: spatial}
	for b := range m.PerBase {
		m.PerBase[b] = rates
	}
	m.SubMatrix = TransitionBiasedSubMatrix(0.6)
	return m
}

// TransitionBiasedSubMatrix builds a substitution confusion matrix where a
// fraction `transition` of substitutions go to the chemically confusable
// partner (A→G, G→A, C→T, T→C; p≈0.4 each direction in Heckel et al.'s
// measurements) and the remainder splits evenly over the two transversions.
func TransitionBiasedSubMatrix(transition float64) [dna.NumBases][dna.NumBases]float64 {
	if transition < 0 {
		transition = 0
	}
	if transition > 1 {
		transition = 1
	}
	partner := map[dna.Base]dna.Base{dna.A: dna.G, dna.G: dna.A, dna.C: dna.T, dna.T: dna.C}
	var mtx [dna.NumBases][dna.NumBases]float64
	for b := dna.Base(0); b < dna.NumBases; b++ {
		rest := (1 - transition) / 2
		for c := dna.Base(0); c < dna.NumBases; c++ {
			if c == b {
				continue
			}
			if c == partner[b] {
				mtx[b][c] = transition
			} else {
				mtx[b][c] = rest
			}
		}
	}
	return mtx
}

// NewStoragePipeline assembles the four-stage strand pipeline with
// representative rates. totalRate is split across stages roughly as the
// literature attributes errors: sequencing dominates (~70%), synthesis is
// second (~20%), PCR and decay are minor. All stages are per-strand; for
// the population-aware variant with amplification skew and breakage see
// NewPhysicalPipeline.
func NewStoragePipeline(label string, totalRate float64, storageYears float64) Pipeline {
	seqRate := 0.70 * totalRate
	synthRate := 0.20 * totalRate
	pcrRate := 0.05 * totalRate
	decayRate := 0.05 * totalRate
	var decayPerYear float64
	if storageYears > 0 {
		decayPerYear = decayRate / storageYears
	}
	return Pipeline{
		Label: label,
		Stages: []Stage{
			NewSynthesisStage(synthRate),
			NewPCRStage(30, pcrRate/30),
			NewDecayStage(storageYears, decayPerYear),
			NewSequencingStage(NanoporeMix(seqRate), PaperLongDeletion(), dist.NanoporeSkew()),
		},
	}
}

// NewPhysicalPipeline assembles the population-aware four-stage channel:
// the same per-strand error split as NewStoragePipeline, plus the pool
// effects Heckel et al.'s channel characterization says dominate real
// pools — lognormal PCR amplification skew and age-dependent strand
// breakage. Bind the pool effects with BindCoverage; the per-strand
// stages work through the usual Channel/AppendTransmitter path.
func NewPhysicalPipeline(label string, totalRate, storageYears float64) Pipeline {
	seqRate := 0.70 * totalRate
	synthRate := 0.20 * totalRate
	pcrRate := 0.05 * totalRate
	decayRate := 0.05 * totalRate
	var decayPerYear float64
	if storageYears > 0 {
		decayPerYear = decayRate / storageYears
	}
	return Pipeline{
		Label: label,
		Stages: []Stage{
			NewSynthesisStage(synthRate),
			NewPCRAmplification(30, pcrRate/30, DefaultPCREfficiencySD),
			NewAgingStage(storageYears, decayPerYear, DefaultBreakagePerYear),
			NewSequencingStage(NanoporeMix(seqRate), PaperLongDeletion(), dist.NanoporeSkew()),
		},
	}
}
