package channel

import (
	"strings"

	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Pipeline composes channels stage-by-stage: the output of stage k is the
// input of stage k+1. This realises the paper's §4.2 recommendation — "an
// ideal simulator should allow for a multi-stage, composable simulation
// process" — with one stage per physical step (synthesis → PCR → storage →
// sequencing) instead of a single aggregate error pass.
type Pipeline struct {
	// Label names the pipeline in tables.
	Label string
	// Stages are applied in order.
	Stages []Channel
}

// Name implements Channel.
func (p Pipeline) Name() string {
	if p.Label != "" {
		return p.Label
	}
	names := make([]string, len(p.Stages))
	for i, s := range p.Stages {
		names[i] = s.Name()
	}
	return strings.Join(names, "→")
}

// Transmit implements Channel.
func (p Pipeline) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	s := ref
	for _, stage := range p.Stages {
		s = stage.Transmit(s, r)
	}
	return s
}

// AggregateRate returns the approximate combined per-base error rate of all
// stages (small-rate approximation: rates add).
func (p Pipeline) AggregateRate() float64 {
	total := 0.0
	for _, s := range p.Stages {
		if m, ok := s.(interface{ AggregateRate() float64 }); ok {
			total += m.AggregateRate()
		}
	}
	return total
}

// NewSynthesisStage models array-based synthesis: deletion-dominant errors
// whose rate grows toward the 3' end of the strand (synthesis proceeds
// base-by-base and late couplings fail more often — why strands longer than
// ~200 bases are impractical, §1.2).
func NewSynthesisStage(rate float64) *Model {
	m := &Model{Label: "synthesis"}
	r := Rates{Del: 0.7 * rate, Ins: 0.1 * rate, Sub: 0.2 * rate}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	m.Spatial = dist.TerminalSkew{StartPositions: 0, EndPositions: 5, StartBoost: 1, EndBoost: 4}
	return m
}

// NewPCRStage models polymerase-chain-reaction amplification: per-cycle
// substitution errors that accumulate over the number of cycles; polymerase
// virtually never introduces indels.
func NewPCRStage(cycles int, perCycleSubRate float64) *Model {
	if cycles < 0 {
		cycles = 0
	}
	m := &Model{Label: "pcr"}
	r := Rates{Sub: float64(cycles) * perCycleSubRate}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	// Complementary-base misincorporation dominates: A↔G, C↔T transitions
	// are far likelier than transversions (Heckel et al., §2.1).
	m.SubMatrix = TransitionBiasedSubMatrix(0.8)
	return m
}

// NewDecayStage models storage decay over the given duration: hydrolytic
// damage that manifests as substitutions (deaminated bases misread) and
// single-base deletions (abasic sites), proportional to storage time.
func NewDecayStage(years, ratePerYear float64) *Model {
	if years < 0 {
		years = 0
	}
	m := &Model{Label: "storage"}
	p := years * ratePerYear
	r := Rates{Sub: 0.5 * p, Del: 0.5 * p}
	for b := range m.PerBase {
		m.PerBase[b] = r
	}
	return m
}

// NewSequencingStage models the sequencing read-out with the given rate
// mix, terminal spatial skew and burst deletions — the Nanopore shape.
func NewSequencingStage(rates Rates, longDel LongDeletion, spatial dist.Spatial) *Model {
	m := &Model{Label: "sequencing", LongDel: longDel, Spatial: spatial}
	for b := range m.PerBase {
		m.PerBase[b] = rates
	}
	m.SubMatrix = TransitionBiasedSubMatrix(0.6)
	return m
}

// TransitionBiasedSubMatrix builds a substitution confusion matrix where a
// fraction `transition` of substitutions go to the chemically confusable
// partner (A→G, G→A, C→T, T→C; p≈0.4 each direction in Heckel et al.'s
// measurements) and the remainder splits evenly over the two transversions.
func TransitionBiasedSubMatrix(transition float64) [dna.NumBases][dna.NumBases]float64 {
	if transition < 0 {
		transition = 0
	}
	if transition > 1 {
		transition = 1
	}
	partner := map[dna.Base]dna.Base{dna.A: dna.G, dna.G: dna.A, dna.C: dna.T, dna.T: dna.C}
	var mtx [dna.NumBases][dna.NumBases]float64
	for b := dna.Base(0); b < dna.NumBases; b++ {
		rest := (1 - transition) / 2
		for c := dna.Base(0); c < dna.NumBases; c++ {
			if c == b {
				continue
			}
			if c == partner[b] {
				mtx[b][c] = transition
			} else {
				mtx[b][c] = rest
			}
		}
	}
	return mtx
}

// NewStoragePipeline assembles the full four-stage pipeline with
// representative rates. totalRate is split across stages roughly as the
// literature attributes errors: sequencing dominates (~70%), synthesis is
// second (~20%), PCR and decay are minor.
func NewStoragePipeline(label string, totalRate float64, storageYears float64) Pipeline {
	seqRate := 0.70 * totalRate
	synthRate := 0.20 * totalRate
	pcrRate := 0.05 * totalRate
	decayRate := 0.05 * totalRate
	var decayPerYear float64
	if storageYears > 0 {
		decayPerYear = decayRate / storageYears
	}
	return Pipeline{
		Label: label,
		Stages: []Channel{
			NewSynthesisStage(synthRate),
			NewPCRStage(30, pcrRate/30),
			NewDecayStage(storageYears, decayPerYear),
			NewSequencingStage(NanoporeMix(seqRate), PaperLongDeletion(), dist.NanoporeSkew()),
		},
	}
}
