package channel

import (
	"testing"
	"unsafe"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// strandTransmitter is the unexported reference-implementation hook every
// *Model (and types embedding one) exposes inside the package.
type strandTransmitter interface {
	transmitReference(ref dna.Strand, r *rng.RNG) dna.Strand
}

// TestPipelineZeroStagesReturnsFreshStrand is the alias regression: a
// pipeline with no strand stages is the identity channel, but its output
// must still have fresh backing. The old implementation returned the
// caller's ref directly, so a caller mutating a buffer it had converted to
// the reference Strand would silently corrupt "transmitted" reads.
func TestPipelineZeroStagesReturnsFreshStrand(t *testing.T) {
	ref := dna.Strand(RandomReferences(1, 80, 41)[0])
	r := rng.New(1)

	for _, p := range []Pipeline{
		{Label: "empty"},
		{Label: "pool-only", Stages: []Stage{NewPCRAmplification(30, 0, 0.02)}},
	} {
		out := p.Transmit(ref, r)
		if out != ref {
			t.Fatalf("%s: identity pipeline altered the read", p.Label)
		}
		if unsafe.StringData(string(out)) == unsafe.StringData(string(ref)) {
			t.Errorf("%s: Transmit returned an alias of the caller's reference", p.Label)
		}
	}

	// The append path must copy faithfully and consume no draws.
	var scr Scratch
	r1, r2 := rng.New(3), rng.New(3)
	codes := scr.RefBases(ref)
	dst := Pipeline{}.AppendTransmit(nil, codes, r1, &scr)
	if string(dst) != string(ref) {
		t.Error("zero-stage AppendTransmit is not a faithful copy")
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("zero-stage AppendTransmit consumed RNG draws")
	}
}

// TestPipelineAppendParity: Pipeline.Transmit/AppendTransmit must match
// chaining the stages' reference transmitters by hand, draw for draw —
// same bytes AND same RNG stream position afterwards. Covers both the
// all-Model storage pipeline and the physical pipeline whose PCR and aging
// stages are embedding wrappers.
func TestPipelineAppendParity(t *testing.T) {
	for _, pipe := range []Pipeline{
		NewStoragePipeline("parity-storage", 0.059, 10),
		NewPhysicalPipeline("parity-physical", 0.059, 100),
	} {
		pipe := pipe
		t.Run(pipe.Label, func(t *testing.T) {
			refs := RandomReferences(50, 110, 43)
			var scr Scratch
			for i, ref := range refs {
				seed := uint64(1000 + i)
				rGot, rApp, rWant := rng.New(seed), rng.New(seed), rng.New(seed)

				got := pipe.Transmit(ref, rGot)

				scr.out = pipe.AppendTransmit(scr.out[:0], scr.RefBases(ref), rApp, &scr)
				app := string(scr.out)

				want := ref
				for _, st := range pipe.Stages {
					want = st.(strandTransmitter).transmitReference(want, rWant)
				}

				if string(got) != string(want) || app != string(want) {
					t.Fatalf("ref %d: Transmit=%q Append=%q reference=%q", i, got, app, want)
				}
				if g, a, w := rGot.Uint64(), rApp.Uint64(), rWant.Uint64(); g != w || a != w {
					t.Fatalf("ref %d: RNG stream positions diverged (%d, %d, %d)", i, g, a, w)
				}
			}
		})
	}
}

// truncChannel is a Channel that is not an AppendTransmitter: pipelines
// must route it through the allocating Strand fallback.
type truncChannel struct{}

func (truncChannel) Name() string { return "trunc" }
func (truncChannel) Transmit(ref dna.Strand, _ *rng.RNG) dna.Strand {
	if ref.Len() == 0 {
		return ref
	}
	return ref[:ref.Len()-1]
}

// TestPipelineMixedStageFallback exercises a pipeline mixing fast-path
// Models with a wrapped plain Channel: both Transmit and AppendTransmit
// must agree with the hand-chained result.
func TestPipelineMixedStageFallback(t *testing.T) {
	m := NewNaive("n", EqualMix(0.05))
	pipe := Pipeline{Label: "mixed", Stages: []Stage{m, AsStage(truncChannel{})}}

	ref := dna.Strand(RandomReferences(1, 90, 47)[0])
	r1, r2, r3 := rng.New(9), rng.New(9), rng.New(9)

	got := pipe.Transmit(ref, r1)

	var scr Scratch
	app := string(pipe.AppendTransmit(nil, scr.RefBases(ref), r2, &scr))

	want := truncChannel{}.Transmit(m.transmitReference(ref, r3), r3)
	if string(got) != string(want) || app != string(want) {
		t.Errorf("mixed pipeline: Transmit=%q Append=%q want=%q", got, app, want)
	}
}

// TestAsStage: channels that already are stages pass through untouched;
// plain channels get wrapped with a faithful name.
func TestAsStage(t *testing.T) {
	m := NewNaive("m", EqualMix(0.01))
	if AsStage(m) != Stage(m) {
		t.Error("AsStage re-wrapped a *Model")
	}
	w := AsStage(truncChannel{})
	if w.StageName() != "trunc" {
		t.Errorf("wrapped stage name = %q", w.StageName())
	}
	if _, ok := w.(Channel); !ok {
		t.Error("wrapped stage lost the Channel interface")
	}
}

// TestPipelineAggregateIncomplete: a strand stage without AggregateRate
// must flag the sum as partial; pool-only stages must not.
func TestPipelineAggregateIncomplete(t *testing.T) {
	full := Pipeline{Stages: []Stage{
		NewNaive("a", EqualMix(0.02)),
		NewPCRAmplification(30, 0, 0.02), // pool effect only, rate 0
	}}
	if _, complete := full.AggregateRate(); !complete {
		t.Error("pool stage with zero strand rate marked the sum incomplete")
	}

	partial := Pipeline{Stages: []Stage{
		NewNaive("a", EqualMix(0.02)),
		AsStage(truncChannel{}),
	}}
	rate, complete := partial.AggregateRate()
	if complete {
		t.Error("stage without AggregateRate did not mark the sum incomplete")
	}
	if rate != 0.02 {
		t.Errorf("partial rate = %v, want 0.02", rate)
	}
}
