package channel_test

import (
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/rng"
)

// Example shows the simplest use of a channel: perturb one strand.
func Example() {
	ch := channel.NewNaive("demo", channel.Rates{Sub: 0.5})
	read := ch.Transmit("ACGTACGTACGT", rng.New(42))
	fmt.Println(len(read) == 12) // substitutions preserve length
	// Output: true
}

// ExampleSimulator builds a full clustered dataset: a channel plus a
// coverage model applied to a reference pool.
func ExampleSimulator() {
	refs := channel.RandomReferences(100, 110, 7)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("nanopore-ish", channel.NanoporeMix(0.059)),
		Coverage: channel.FixedCoverage(6),
	}
	ds := sim.Simulate("demo", refs, 1)
	fmt.Println(ds.NumClusters(), ds.NumReads())
	// Output: 100 600
}

// ExampleModel_WithSpatial layers the paper's terminal error skew onto a
// base model without changing the aggregate error rate.
func ExampleModel_WithSpatial() {
	base := channel.NewNaive("flat", channel.EqualMix(0.06))
	skewed := base.WithSpatial(dist.NanoporeSkew())
	fmt.Printf("%.3f %.3f\n", base.AggregateRate(), skewed.AggregateRate())
	// Output: 0.060 0.060
}

// ExamplePipeline composes the physical stages of the storage pipeline —
// the §4.2 extension.
func ExamplePipeline() {
	p := channel.NewStoragePipeline("archive", 0.059, 10)
	fmt.Println(len(p.Stages))
	// Output: 4
}
