package channel

import (
	"strings"
	"testing"

	"dnastore/internal/rng"
)

func TestParseStagesRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"",
		"synthesis=0.0118",
		"pcr=30:0.0001",
		"pcr=30:0.0001:0.02",
		"aging=100:3e-05",
		"aging=100:3e-05:0.00133",
		"sequencing=0.0413",
		"sequencing=0.0413:terminal-skew",
		"naive=0.02:0.01:0.03",
		"synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew",
	} {
		list, err := ParseStages(spec)
		if err != nil {
			t.Fatalf("ParseStages(%q): %v", spec, err)
		}
		if got := list.String(); got != spec {
			t.Errorf("round trip %q -> %q", spec, got)
		}
		list2, err := ParseStages(list.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", list.String(), err)
		}
		if len(list2) != len(list) {
			t.Errorf("%q: re-parse changed stage count", spec)
		}
	}
}

func TestParseStagesRejects(t *testing.T) {
	for _, spec := range []string{
		"synthesis",                // not key=value
		"warp=0.1",                 // unknown stage
		"synthesis=NaN",            // NaN rate
		"synthesis=-0.1",           // negative
		"synthesis=1.5",            // > 1
		"pcr=30",                   // missing sub rate
		"pcr=x:0.1",                // bad cycles
		"pcr=-3:0.1",               // negative cycles
		"pcr=30:0.1:0.2:0.3",       // too many fields
		"aging=100",                // missing rate
		"aging=-1:0.1",             // negative years
		"sequencing=0.04:sideways", // unknown spatial
		"naive=0.1:0.1",            // missing del
	} {
		if _, err := ParseStages(spec); err == nil {
			t.Errorf("ParseStages(%q) accepted", spec)
		}
	}
}

func TestStageListBuild(t *testing.T) {
	list, err := ParseStages("synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew")
	if err != nil {
		t.Fatal(err)
	}
	pipe := list.Build("dsl")
	if pipe.Name() != "dsl" {
		t.Errorf("pipeline name = %q", pipe.Name())
	}
	if len(pipe.Stages) != 4 {
		t.Fatalf("built %d stages", len(pipe.Stages))
	}
	if _, ok := pipe.Stages[1].(*PCRAmplification); !ok {
		t.Errorf("pcr with EFFSD built %T, want *PCRAmplification", pipe.Stages[1])
	}
	if _, ok := pipe.Stages[2].(*AgingStage); !ok {
		t.Errorf("aging with BREAK built %T, want *AgingStage", pipe.Stages[2])
	}
	cov := pipe.BindCoverage(FixedCoverage(10))
	if !strings.Contains(cov.Name(), "+pool(") {
		t.Errorf("pool stages not bound: %q", cov.Name())
	}

	// Strand-only variants of the same stages must not wrap coverage.
	strandOnly, err := ParseStages("pcr=30:0.0001,aging=100:3e-05")
	if err != nil {
		t.Fatal(err)
	}
	if cov := strandOnly.Build("s").BindCoverage(FixedCoverage(10)); cov.Name() != FixedCoverage(10).Name() {
		t.Errorf("strand-only DSL pipeline wrapped coverage: %q", cov.Name())
	}

	// The built pipeline transmits.
	ref := RandomReferences(1, 110, 3)[0]
	if err := pipe.Transmit(ref, rng.New(5)).Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStageListBuildMatchesPhysicalPipeline: the DSL rendering of the
// physical pipeline builds a channel with identical output to the
// constructor, so specs and code name the same channel.
func TestStageListBuildMatchesPhysicalPipeline(t *testing.T) {
	want := NewPhysicalPipeline("p", 0.059, 100)
	// Constructor rates, spelled in the DSL.
	list, err := ParseStages("synthesis=0.0118,pcr=30:9.833333333333334e-05:0.02,aging=100:2.9500000000000004e-05:0.00133,sequencing=0.0413:terminal-skew")
	if err != nil {
		t.Fatal(err)
	}
	got := list.Build("p")
	ref := RandomReferences(1, 110, 7)[0]
	r1, r2 := rng.New(9), rng.New(9)
	a, b := want.Transmit(ref, r1), got.Transmit(ref, r2)
	if a != b {
		t.Errorf("DSL pipeline output differs from constructor:\n%q\n%q", a, b)
	}
	c1 := want.BindCoverage(FixedCoverage(50)).Sample(3, rng.New(11))
	c2 := got.BindCoverage(FixedCoverage(50)).Sample(3, rng.New(11))
	if c1 != c2 {
		t.Errorf("DSL pool coverage %d differs from constructor %d", c2, c1)
	}
}

func FuzzParseStages(f *testing.F) {
	f.Add("synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew")
	f.Add("naive=0.02:0.01:0.03")
	f.Add("pcr=30:0.0001")
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		list, err := ParseStages(s)
		if err != nil {
			return
		}
		// Accepted specs must round-trip through String and build a
		// working pipeline without panicking.
		again, err := ParseStages(list.String())
		if err != nil {
			t.Fatalf("String() output %q does not re-parse: %v", list.String(), err)
		}
		if len(again) != len(list) {
			t.Fatalf("round trip changed stage count: %d -> %d", len(list), len(again))
		}
		pipe := list.Build("fuzz")
		ref := RandomReferences(1, 40, 1)[0]
		if err := pipe.Transmit(ref, rng.New(1)).Validate(); err != nil {
			t.Fatalf("built pipeline emits invalid reads: %v", err)
		}
	})
}
