package channel

import (
	"testing"

	"dnastore/internal/align"
)

func TestChimericSimulatorZeroP(t *testing.T) {
	refs := RandomReferences(20, 60, 1)
	base := Simulator{Channel: NewNaive("n", EqualMix(0.02)), Coverage: FixedCoverage(4)}
	plain := base.Simulate("p", refs, 7)
	chim := ChimericSimulator{Simulator: base, P: 0}.Simulate("c", refs, 7)
	for i := range plain.Clusters {
		for k := range plain.Clusters[i].Reads {
			if plain.Clusters[i].Reads[k] != chim.Clusters[i].Reads[k] {
				t.Fatal("P=0 changed reads")
			}
		}
	}
}

func TestChimericSimulatorInjectsChimeras(t *testing.T) {
	refs := RandomReferences(30, 110, 2)
	base := Simulator{Channel: NewNaive("clean", Rates{}), Coverage: FixedCoverage(10)}
	const p = 0.2
	ds := ChimericSimulator{Simulator: base, P: p}.Simulate("c", refs, 9)
	total, far := 0, 0
	for i, c := range ds.Clusters {
		for _, read := range c.Reads {
			total++
			// With an error-free channel, non-chimeric reads equal the
			// reference exactly; chimeras sit far away.
			if read != refs[i] {
				far++
				// The chimera's prefix still matches its own reference.
				k := 8
				if read.Len() < k {
					k = read.Len()
				}
				if string(read[:k]) != string(refs[i][:k]) {
					// The splice can land within the first k bases; only a
					// systematic mismatch would be a bug, so tolerate it.
					continue
				}
			}
		}
	}
	rate := float64(far) / float64(total)
	if rate < p*0.7 || rate > p*1.3 {
		t.Errorf("chimera rate = %v, want ≈%v", rate, p)
	}
}

func TestChimeraLengthNearDesign(t *testing.T) {
	refs := RandomReferences(10, 110, 3)
	base := Simulator{Channel: NewNaive("clean", Rates{}), Coverage: FixedCoverage(6)}
	ds := ChimericSimulator{Simulator: base, P: 1}.Simulate("c", refs, 11)
	for _, c := range ds.Clusters {
		for _, read := range c.Reads {
			if read.Len() < 100 || read.Len() > 120 {
				t.Fatalf("chimera length %d far from design 110", read.Len())
			}
			if err := read.Validate(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestChimerasRaiseApparentError(t *testing.T) {
	refs := RandomReferences(50, 110, 4)
	base := Simulator{Channel: NewNaive("n", EqualMix(0.02)), Coverage: FixedCoverage(5)}
	plain := base.Simulate("p", refs, 13)
	chim := ChimericSimulator{Simulator: base, P: 0.15}.Simulate("c", refs, 13)
	dPlain, dChim := 0, 0
	for i := range plain.Clusters {
		for k := range plain.Clusters[i].Reads {
			dPlain += align.Distance(string(refs[i]), string(plain.Clusters[i].Reads[k]))
			dChim += align.Distance(string(refs[i]), string(chim.Clusters[i].Reads[k]))
		}
	}
	if dChim <= dPlain*2 {
		t.Errorf("chimeras did not raise apparent error: %d vs %d", dChim, dPlain)
	}
}

func TestChimericSimulatorPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	refs := RandomReferences(2, 20, 5)
	ChimericSimulator{
		Simulator: Simulator{Channel: NewNaive("n", Rates{}), Coverage: FixedCoverage(1)},
		P:         1.5,
	}.Simulate("bad", refs, 1)
}
