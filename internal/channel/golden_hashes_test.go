package channel

// Hashes for TestGoldenSeedDatasets, captured from the pre-plan
// implementation (mutex-guarded caches, per-position second-order double
// scan) at the commit that introduced the compiled transmission plan.
// They certify the rewrite consumed exactly the same RNG draws.
const (
	goldenHashNaive       = "6fadfa170cb25a9b8474016c96c2597c"
	goldenHashCond        = "8367e35ad2c3f18f13e28d39bf0c361c"
	goldenHashSpatial     = "81296f7ea6e1f01c2a9d45e27dbb6051"
	goldenHashSecondOrder = "d8b45c7b9cd3a1e6cb10a7352ff452c7"
	goldenHashHighRate    = "3da32917f6c4a0b86871395c99a24620"
	goldenHashDNASim      = "13aa0eaa88aada7d047b22b355bddc40"
	// Pipeline cases, captured when the stage subsystem landed: the staged
	// hash pins the strand-stage chain (must equal the pre-rewrite chained
	// Transmit stream), the pool hash additionally pins the pool-stage
	// draw-order contract (coverage draw → pool draws → read draws).
	goldenHashPipeline     = "428becd77d5e7a6c647c192db63cf6fb"
	goldenHashPipelinePool = "396dadc08aabddc80baef43aaf821bd8"
)
