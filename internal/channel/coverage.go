package channel

import (
	"fmt"

	"dnastore/internal/rng"
)

// CoverageModel decides how many noisy reads each reference strand
// receives. Real sequencing coverage is overdispersed (Heckel et al. found
// it approximately negative-binomial); the evaluation protocols also need
// fixed and per-cluster "custom" coverage (§2.2.2).
type CoverageModel interface {
	// Sample returns the read count for the cluster at the given index.
	Sample(clusterIndex int, r *rng.RNG) int
	// Name identifies the model in tables.
	Name() string
}

// FixedCoverage gives every cluster exactly N reads.
type FixedCoverage int

// Sample implements CoverageModel.
func (f FixedCoverage) Sample(int, *rng.RNG) int { return int(f) }

// Name implements CoverageModel.
func (f FixedCoverage) Name() string { return fmt.Sprintf("fixed(%d)", int(f)) }

// CustomCoverage assigns each cluster the coverage observed in a reference
// dataset — the paper's "custom coverage" protocol, which makes simulated
// data directly comparable with real data cluster-by-cluster. Indices past
// the end wrap around.
type CustomCoverage []int

// Sample implements CoverageModel.
func (c CustomCoverage) Sample(i int, _ *rng.RNG) int {
	if len(c) == 0 {
		return 0
	}
	return c[i%len(c)]
}

// Name implements CoverageModel.
func (c CustomCoverage) Name() string { return "custom" }

// NegBinCoverage draws coverage from a negative-binomial distribution with
// the given mean and dispersion (variance = mean + mean²/dispersion), the
// empirically observed shape of sequencing coverage.
type NegBinCoverage struct {
	Mean, Dispersion float64
}

// Sample implements CoverageModel.
func (n NegBinCoverage) Sample(_ int, r *rng.RNG) int {
	return r.NegBinomialMeanDisp(n.Mean, n.Dispersion)
}

// Name implements CoverageModel.
func (n NegBinCoverage) Name() string {
	return fmt.Sprintf("negbin(μ=%.1f,k=%.1f)", n.Mean, n.Dispersion)
}

// PoissonCoverage draws coverage from a Poisson distribution — the simplest
// stochastic model, proposed by Heckel et al. [14] for PCR amplification.
type PoissonCoverage float64

// Sample implements CoverageModel.
func (p PoissonCoverage) Sample(_ int, r *rng.RNG) int {
	return r.Poisson(float64(p))
}

// Name implements CoverageModel.
func (p PoissonCoverage) Name() string { return fmt.Sprintf("poisson(μ=%.1f)", float64(p)) }

// NormalCoverage draws coverage from a normal distribution truncated at
// zero, per the Bornholt et al. observation cited in §2.2.3.
type NormalCoverage struct {
	Mean, SD float64
}

// Sample implements CoverageModel.
func (n NormalCoverage) Sample(_ int, r *rng.RNG) int {
	v := r.Normal(n.Mean, n.SD)
	if v < 0 {
		return 0
	}
	return int(v + 0.5)
}

// Name implements CoverageModel.
func (n NormalCoverage) Name() string {
	return fmt.Sprintf("normal(μ=%.1f,σ=%.1f)", n.Mean, n.SD)
}

// ErasureCoverage wraps another model and zeroes each cluster's coverage
// with probability P, modelling whole-strand loss (failed PCR
// amplification or storage decay — the 16 empty clusters in the Nanopore
// dataset).
type ErasureCoverage struct {
	Base CoverageModel
	P    float64
}

// Sample implements CoverageModel.
func (e ErasureCoverage) Sample(i int, r *rng.RNG) int {
	if r.Bool(e.P) {
		return 0
	}
	return e.Base.Sample(i, r)
}

// Name implements CoverageModel.
func (e ErasureCoverage) Name() string {
	return fmt.Sprintf("%s+erasures(%.4f)", e.Base.Name(), e.P)
}
