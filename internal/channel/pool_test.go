package channel

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

func TestPCRAmplificationSkewMeanPreserved(t *testing.T) {
	p := NewPCRAmplification(30, 0, 0.02)
	r := rng.New(61)
	const n, trials = 1000, 5000
	sum := 0.0
	for i := 0; i < trials; i++ {
		sum += float64(p.PoolCoverage(i, n, r))
	}
	mean := sum / trials
	// E[exp(N(-σ²/2, σ))] = 1: the skew spreads coverage, not its mean.
	if math.Abs(mean/n-1) > 0.02 {
		t.Errorf("mean amplification factor = %v, want ≈1", mean/n)
	}
}

func TestPCRAmplificationDisabledConsumesNoDraws(t *testing.T) {
	r1, r2 := rng.New(7), rng.New(7)
	if got := NewPCRAmplification(30, 0, 0).PoolCoverage(0, 12, r1); got != 12 {
		t.Errorf("disabled skew rewrote count to %d", got)
	}
	if got := NewPCRAmplification(30, 0, 0.02).PoolCoverage(0, 0, r1); got != 0 {
		t.Errorf("empty cluster rewrote count to %d", got)
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("disabled pool stage consumed RNG draws")
	}
}

func TestAgingStageThinning(t *testing.T) {
	a := NewAgingStage(100, 0, DefaultBreakagePerYear)
	survive := math.Exp(-100 * DefaultBreakagePerYear)
	r := rng.New(67)
	const n, trials = 100, 3000
	sum := 0.0
	for i := 0; i < trials; i++ {
		got := a.PoolCoverage(i, n, r)
		if got < 0 || got > n {
			t.Fatalf("thinning produced %d reads from %d", got, n)
		}
		sum += float64(got)
	}
	if mean := sum / trials; math.Abs(mean/n-survive) > 0.01 {
		t.Errorf("mean survival = %v, want ≈%v", mean/n, survive)
	}

	r1, r2 := rng.New(8), rng.New(8)
	if got := NewAgingStage(0, 0, DefaultBreakagePerYear).PoolCoverage(0, 9, r1); got != 9 {
		t.Errorf("zero-year aging rewrote count to %d", got)
	}
	if r1.Uint64() != r2.Uint64() {
		t.Error("zero-year aging consumed RNG draws")
	}
}

// TestBindCoverageStrandOnlyIsIdentity: pipelines without pool stages must
// return the base model unchanged — names and RNG draw streams of every
// existing strand-only pipeline stay byte-identical.
func TestBindCoverageStrandOnlyIsIdentity(t *testing.T) {
	base := FixedCoverage(5)
	if got := NewStoragePipeline("s", 0.059, 10).BindCoverage(base); got != CoverageModel(base) {
		t.Errorf("BindCoverage wrapped a strand-only pipeline: %T", got)
	}
}

func TestBindCoveragePoolStages(t *testing.T) {
	pipe := NewPhysicalPipeline("phys", 0.059, 100)
	cov := pipe.BindCoverage(FixedCoverage(100))

	if name := cov.Name(); !strings.Contains(name, "+pool(") ||
		!strings.Contains(name, "pcr") || !strings.Contains(name, "storage") {
		t.Errorf("bound coverage name = %q", name)
	}

	// Deterministic: same cluster RNG, same count.
	a, b := cov.Sample(3, rng.New(99)), cov.Sample(3, rng.New(99))
	if a != b {
		t.Errorf("pool coverage not deterministic: %d vs %d", a, b)
	}

	// Mean coverage ≈ base × aging survival (PCR skew is mean-preserving).
	survive := math.Exp(-100 * DefaultBreakagePerYear)
	sum, varied := 0.0, false
	const trials = 4000
	first := cov.Sample(0, rng.New(1))
	for i := 0; i < trials; i++ {
		n := cov.Sample(i, rng.New(uint64(1000+i)))
		if n != first {
			varied = true
		}
		sum += float64(n)
	}
	if !varied {
		t.Error("pool stages never perturbed the fixed base coverage")
	}
	if mean := sum / trials; math.Abs(mean/100-survive) > 0.02 {
		t.Errorf("mean pooled coverage = %v, want ≈%v", mean, 100*survive)
	}
}

// TestBindCoverageForwardsRefAware: a ref-aware base (GC bias) keeps its
// SampleRef extension through the pool binding, with the pool stages
// applied on top of the ref-aware count.
func TestBindCoverageForwardsRefAware(t *testing.T) {
	pipe := NewPhysicalPipeline("phys", 0.059, 100)
	base := GCBiasCoverage{Base: FixedCoverage(50), Strength: 2}
	cov := pipe.BindCoverage(base)

	ra, ok := cov.(RefAwareCoverage)
	if !ok {
		t.Fatal("pool binding dropped RefAwareCoverage")
	}
	balanced := dna.Strand("ACGTACGTACGTACGTACGT")
	extreme := dna.Strand("GGGGGGGGGGCCCCCCCCCC")
	sumBal, sumExt := 0, 0
	for i := 0; i < 500; i++ {
		sumBal += ra.SampleRef(balanced, i, rng.New(uint64(2000+i)))
		sumExt += ra.SampleRef(extreme, i, rng.New(uint64(2000+i)))
	}
	if sumExt >= sumBal {
		t.Errorf("GC bias lost through pool binding: extreme %d >= balanced %d", sumExt, sumBal)
	}
}

// TestPoolCoverageNeverNegative: whatever a pool stage returns, the
// binding clamps the count at zero.
func TestPoolCoverageNeverNegative(t *testing.T) {
	neg := negPool{}
	cov := Pipeline{Stages: []Stage{neg}}.BindCoverage(FixedCoverage(5))
	if got := cov.Sample(0, rng.New(1)); got != 0 {
		t.Errorf("negative pool count leaked through: %d", got)
	}
}

type negPool struct{}

func (negPool) StageName() string                     { return "neg" }
func (negPool) PoolCoverage(_, _ int, _ *rng.RNG) int { return -3 }
