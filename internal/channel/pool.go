package channel

import (
	"fmt"
	"math"
	"strings"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Pool stages: the population shape of Stage. A pool stage does not touch
// individual reads — it rewrites how many reads a cluster contributes to
// the pool, which is where PCR amplification skew, strand breakage and
// decay dropout actually act (Heckel et al.). Pipeline.BindCoverage
// layers the pipeline's pool stages over a base CoverageModel in stage
// order.
//
// The RNG draw-order contract (DESIGN.md §16): all pool draws come from
// the per-cluster RNG, after the base coverage draw and before any read
// is generated. The number of draws a pool stage consumes may depend only
// on the cluster index and the incoming count — never on which worker or
// shard runs the cluster — so pipeline output stays deterministic,
// worker-invariant and fleet-merge-safe.

// PoolStage is a Stage that transforms the cluster population.
type PoolStage interface {
	Stage
	// PoolCoverage maps cluster clusterIndex's read count entering the
	// stage (n) to the count leaving it, drawing any randomness from r.
	// Results are clamped to >= 0 by the binding coverage model.
	PoolCoverage(clusterIndex, n int, r *rng.RNG) int
}

// BindCoverage layers the pipeline's pool stages over a base coverage
// model in stage order. Each cluster samples the base coverage first,
// then lets every pool stage rewrite the count — all from the
// per-cluster RNG, before read generation. Pipelines without pool stages
// return base unchanged, so binding is always safe (and keeps existing
// coverage names and draw streams byte-identical for strand-only
// pipelines).
func (p Pipeline) BindCoverage(base CoverageModel) CoverageModel {
	var pool []PoolStage
	for _, st := range p.Stages {
		if ps, ok := st.(PoolStage); ok {
			pool = append(pool, ps)
		}
	}
	if len(pool) == 0 {
		return base
	}
	pc := pooledCoverage{base: base, stages: pool}
	if ra, ok := base.(RefAwareCoverage); ok {
		return refAwarePooledCoverage{pooledCoverage: pc, ra: ra}
	}
	return pc
}

// pooledCoverage is the CoverageModel BindCoverage builds.
type pooledCoverage struct {
	base   CoverageModel
	stages []PoolStage
}

// Sample implements CoverageModel.
func (p pooledCoverage) Sample(i int, r *rng.RNG) int {
	return p.apply(i, p.base.Sample(i, r), r)
}

// apply runs the pool stages over an initial count.
func (p pooledCoverage) apply(i, n int, r *rng.RNG) int {
	for _, st := range p.stages {
		n = st.PoolCoverage(i, n, r)
		if n < 0 {
			n = 0
		}
	}
	return n
}

// Name implements CoverageModel.
func (p pooledCoverage) Name() string {
	names := make([]string, len(p.stages))
	for i, st := range p.stages {
		names[i] = st.StageName()
	}
	return fmt.Sprintf("%s+pool(%s)", p.base.Name(), strings.Join(names, "→"))
}

// refAwarePooledCoverage preserves the base model's RefAwareCoverage
// extension through the pool binding: the base still sees the reference
// strand, the pool stages rewrite its count.
type refAwarePooledCoverage struct {
	pooledCoverage
	ra RefAwareCoverage
}

// SampleRef implements RefAwareCoverage.
func (p refAwarePooledCoverage) SampleRef(ref dna.Strand, i int, r *rng.RNG) int {
	return p.apply(i, p.ra.SampleRef(ref, i, r), r)
}

// DefaultPCREfficiencySD is the per-cycle standard deviation of
// log-amplification-efficiency used by NewPhysicalPipeline: small per
// cycle, but compounded over ~30 cycles it reproduces the several-fold
// coverage spread Heckel et al. observed after PCR.
const DefaultPCREfficiencySD = 0.02

// DefaultBreakagePerYear is the strand-breakage hazard rate used by
// NewPhysicalPipeline: ln 2 / 521 y, the half-life Grass et al. measured
// for silica-encapsulated DNA.
const DefaultBreakagePerYear = 0.00133

// PCRAmplification is the population-aware PCR stage, both shapes at
// once: the embedded Model adds the per-cycle polymerase substitutions to
// every strand, and PoolCoverage applies lognormal amplification skew —
// per-cycle efficiency differences compound multiplicatively over the
// cycle count, so some clusters amplify far past the mean while others
// starve.
type PCRAmplification struct {
	*Model
	// Cycles is the amplification cycle count.
	Cycles int
	// EfficiencySD is the per-cycle standard deviation of the cluster's
	// log-efficiency; zero disables the skew (and consumes no draws).
	EfficiencySD float64
}

// NewPCRAmplification builds the stage; negative cycles clamp to zero
// exactly as NewPCRStage does.
func NewPCRAmplification(cycles int, perCycleSubRate, efficiencySD float64) *PCRAmplification {
	if cycles < 0 {
		cycles = 0
	}
	if efficiencySD < 0 {
		efficiencySD = 0
	}
	return &PCRAmplification{Model: NewPCRStage(cycles, perCycleSubRate), Cycles: cycles, EfficiencySD: efficiencySD}
}

// PoolCoverage implements PoolStage: one Normal draw per cluster sets the
// cluster's amplification factor exp(N(-σ²/2, σ)) with σ = EfficiencySD·√Cycles.
// The -σ²/2 location keeps the factor's expectation at exactly 1, so the
// skew spreads coverage without inflating its mean.
func (p *PCRAmplification) PoolCoverage(_, n int, r *rng.RNG) int {
	if p.EfficiencySD <= 0 || n <= 0 {
		return n
	}
	sigma := p.EfficiencySD * math.Sqrt(float64(p.Cycles))
	factor := math.Exp(r.Normal(-0.5*sigma*sigma, sigma))
	return int(float64(n)*factor + 0.5)
}

// AgingStage is the population-aware storage stage, both shapes at once:
// the embedded Model carries the hydrolytic per-strand damage of
// NewDecayStage, and PoolCoverage thins the pool by strand breakage —
// each strand survives the storage period with probability
// exp(-Years·BreakagePerYear), so old pools lose whole strands (down to
// empty clusters) on top of the per-base decay.
type AgingStage struct {
	*Model
	// Years is the storage duration.
	Years float64
	// BreakagePerYear is the per-strand breakage hazard rate; zero
	// disables the thinning (and consumes no draws).
	BreakagePerYear float64
}

// NewAgingStage builds the stage; negative years clamp to zero exactly as
// NewDecayStage does.
func NewAgingStage(years, ratePerYear, breakagePerYear float64) *AgingStage {
	if years < 0 {
		years = 0
	}
	if breakagePerYear < 0 {
		breakagePerYear = 0
	}
	return &AgingStage{Model: NewDecayStage(years, ratePerYear), Years: years, BreakagePerYear: breakagePerYear}
}

// PoolCoverage implements PoolStage: binomial thinning at the survival
// probability.
func (a *AgingStage) PoolCoverage(_, n int, r *rng.RNG) int {
	if a.Years <= 0 || a.BreakagePerYear <= 0 || n <= 0 {
		return n
	}
	return r.Binomial(n, math.Exp(-a.Years*a.BreakagePerYear))
}
