package channel

import (
	"sync"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// The zero-allocation transmit fast path. Transmit's original contract —
// Strand in, Strand out — forces two costs per read that have nothing to
// do with the channel model: decoding the reference's ASCII bytes into
// base codes position by position, and allocating the output. Both
// amortise naturally one level up: a cluster transmits the same reference
// Coverage times, and a simulation worker can own one reusable arena for
// its whole run. AppendTransmitter is the interface that exposes this;
// Scratch is the arena.

// Scratch is a per-worker arena for the append-transmit fast path: the
// reference's base-code view, the output buffer, and the batched RNG
// block. A Scratch must not be shared between goroutines; the zero value
// is ready to use and all internal buffers are grown on demand and reused.
type Scratch struct {
	refCodes []dna.Base
	out      []byte
	// ends records the cumulative end offset of each read generated into
	// out when a whole cluster is built in one buffer (simulateCluster).
	ends  []int
	batch rng.Batch
	// stageOut and stageCodes are the pipeline double-buffer: an
	// intermediate stage writes its ASCII output into stageOut, which is
	// decoded into stageCodes to feed the next stage (Pipeline.
	// AppendTransmit). Only the final stage touches the caller's dst, so
	// a whole multi-stage transmit stays allocation-free once warm.
	stageOut   []byte
	stageCodes []dna.Base
}

// RefBases returns ref as 2-bit base codes, reusing the arena's buffer.
// The returned slice is valid until the next RefBases call on the same
// Scratch.
func (sc *Scratch) RefBases(ref dna.Strand) []dna.Base {
	sc.refCodes = ref.AppendBases(sc.refCodes[:0])
	return sc.refCodes
}

// AppendTransmitter is implemented by channels that can transmit without
// per-read setup cost: ref arrives as base codes (decoded once per
// cluster via Scratch.RefBases), the noisy read is appended to dst as
// ASCII bases, and scr supplies the per-worker RNG batch buffer. The
// output bytes and consumed RNG draws are identical, draw-for-draw, to
// Transmit(Strand(ref), r) — the golden-seed and differential suites
// enforce this — so callers may mix the two paths freely.
//
// Implementations must not touch scr.out (callers pass slices aliasing
// it as dst); dst is grown by append and returned.
type AppendTransmitter interface {
	AppendTransmit(dst []byte, ref []dna.Base, r *rng.RNG, scr *Scratch) []byte
}

// scratchPool recycles arenas for callers of the plain Transmit API, which
// has nowhere to keep one. Simulation workers hold a Scratch directly and
// never touch the pool.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}
