package channel

import (
	"fmt"
	"math"

	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// RefAwareCoverage is an optional extension of CoverageModel for models
// whose read count depends on the reference strand itself (PCR prefers
// some sequences over others — Heckel et al.'s observation in §2.1).
// Simulator detects it by type assertion.
type RefAwareCoverage interface {
	CoverageModel
	// SampleRef returns the read count for the given reference strand.
	SampleRef(ref dna.Strand, clusterIndex int, r *rng.RNG) int
}

// GCBiasCoverage attenuates another coverage model for strands whose
// GC-ratio deviates from 50%: amplification efficiency decays
// exponentially with deviation, which both skews the copy-number
// distribution and silently erases extreme strands — the PCR bias
// DNASimulator does not model (§2.2.3).
type GCBiasCoverage struct {
	// Base supplies the unbiased coverage.
	Base CoverageModel
	// Strength controls the decay: the expected coverage is multiplied by
	// exp(-Strength · |GC − 0.5| · 2). Zero disables the bias.
	Strength float64
}

// Name implements CoverageModel.
func (g GCBiasCoverage) Name() string {
	return fmt.Sprintf("%s+gcbias(%.1f)", g.Base.Name(), g.Strength)
}

// Sample implements CoverageModel (no reference: falls back to the base).
func (g GCBiasCoverage) Sample(i int, r *rng.RNG) int {
	return g.Base.Sample(i, r)
}

// SampleRef implements RefAwareCoverage.
func (g GCBiasCoverage) SampleRef(ref dna.Strand, i int, r *rng.RNG) int {
	n := g.Base.Sample(i, r)
	if g.Strength <= 0 || n == 0 {
		return n
	}
	deviation := math.Abs(ref.GCRatio()-0.5) * 2 // 0 at balance, 1 at extreme
	keep := math.Exp(-g.Strength * deviation)
	// Thin the reads binomially: each copy survives amplification with
	// probability keep.
	return r.Binomial(n, keep)
}
