package channel

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sync"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/durable"
)

// Checkpointing lets a long simulation be killed at any moment and resumed
// to byte-identical output. Each cluster's reads depend only on (seed,
// cluster index) — the split-RNG scheme in simulateCluster — so completed
// clusters can be journaled as they finish and replayed verbatim on the
// next run, regardless of worker scheduling on either side of the crash.

// frame names inside a checkpoint journal.
const (
	ckptHeaderFrame  = "sim-header"
	ckptClusterFrame = "cluster"
)

// ckptParity protects journaled clusters against bit rot on top of the
// per-frame checksums.
const ckptParity = 8

// RefsHash fingerprints a reference set (FNV-1a over the strands with zero
// separators), so a checkpoint refuses to resume against different input.
func RefsHash(refs []dna.Strand) uint64 {
	h := fnv.New64a()
	for _, ref := range refs {
		h.Write([]byte(ref))
		h.Write([]byte{0})
	}
	return h.Sum64()
}

// Checkpoint journals completed clusters of one simulation run. It is safe
// for concurrent Commit calls from simulation workers.
type Checkpoint struct {
	// OnCommit, when set, is called after every durably committed cluster
	// with the number of commits so far this process — a hook for crash
	// drills and progress reporting. It runs outside the internal lock.
	OnCommit func(commits int)

	mu      sync.Mutex
	j       *durable.Journal
	done    map[int][]dna.Strand
	commits int
}

// ckptHeader is the identity a checkpoint is bound to.
type ckptHeader struct {
	name     string
	desc     string
	seed     uint64
	refsHash uint64
	clusters uint64
}

func (h ckptHeader) encode() []byte {
	buf := make([]byte, 0, 32+len(h.name)+len(h.desc))
	buf = binary.AppendUvarint(buf, uint64(len(h.name)))
	buf = append(buf, h.name...)
	buf = binary.AppendUvarint(buf, uint64(len(h.desc)))
	buf = append(buf, h.desc...)
	buf = binary.LittleEndian.AppendUint64(buf, h.seed)
	buf = binary.LittleEndian.AppendUint64(buf, h.refsHash)
	buf = binary.LittleEndian.AppendUint64(buf, h.clusters)
	return buf
}

func decodeCkptHeader(b []byte) (ckptHeader, error) {
	var h ckptHeader
	s, err := takeString(&b)
	if err != nil {
		return h, err
	}
	h.name = s
	if s, err = takeString(&b); err != nil {
		return h, err
	}
	h.desc = s
	if len(b) != 24 {
		return h, fmt.Errorf("channel: checkpoint header has %d trailing bytes, want 24", len(b))
	}
	h.seed = binary.LittleEndian.Uint64(b)
	h.refsHash = binary.LittleEndian.Uint64(b[8:])
	h.clusters = binary.LittleEndian.Uint64(b[16:])
	return h, nil
}

// takeString pops a uvarint-length-prefixed string off *b.
func takeString(b *[]byte) (string, error) {
	n, sz := binary.Uvarint(*b)
	if sz <= 0 || n > uint64(len(*b)-sz) {
		return "", errors.New("channel: malformed checkpoint string")
	}
	s := string((*b)[sz : sz+int(n)])
	*b = (*b)[sz+int(n):]
	return s, nil
}

// encodeCluster serialises one committed cluster frame.
func encodeCluster(index int, reads []dna.Strand) []byte {
	size := 16
	for _, r := range reads {
		size += 10 + len(r)
	}
	buf := make([]byte, 0, size)
	buf = binary.AppendUvarint(buf, uint64(index))
	buf = binary.AppendUvarint(buf, uint64(len(reads)))
	for _, r := range reads {
		buf = binary.AppendUvarint(buf, uint64(len(r)))
		buf = append(buf, r...)
	}
	return buf
}

func decodeCluster(b []byte) (int, []dna.Strand, error) {
	idx, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, nil, errors.New("channel: malformed cluster index")
	}
	b = b[sz:]
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(len(b)) {
		return 0, nil, errors.New("channel: malformed cluster read count")
	}
	b = b[sz:]
	reads := make([]dna.Strand, 0, n)
	for k := uint64(0); k < n; k++ {
		l, sz := binary.Uvarint(b)
		if sz <= 0 || l > uint64(len(b)-sz) {
			return 0, nil, errors.New("channel: malformed cluster read")
		}
		reads = append(reads, dna.Strand(b[sz:sz+int(l)]))
		b = b[sz+int(l):]
	}
	if len(b) != 0 {
		return 0, nil, fmt.Errorf("channel: %d trailing bytes after cluster reads", len(b))
	}
	return int(idx), reads, nil
}

// OpenCheckpoint opens (or creates) the checkpoint journal at path for a
// run identified by (name, refs, seed, desc). An existing journal resumes:
// its intact cluster frames become the Completed set. A journal written by
// a different run — different seed, references, simulator description or
// dataset name — is rejected rather than silently mixed in. A journal too
// torn to even read its header (crash during creation) is recreated from
// scratch. A non-container file at path is never overwritten.
func OpenCheckpoint(path, name string, refs []dna.Strand, seed uint64, desc string) (*Checkpoint, error) {
	want := ckptHeader{name: name, desc: desc, seed: seed,
		refsHash: RefsHash(refs), clusters: uint64(len(refs))}

	if _, err := os.Stat(path); err == nil {
		ckpt, err := resumeCheckpoint(path, want)
		if err == nil || !errors.Is(err, durable.ErrTruncated) {
			return ckpt, err
		}
		// Torn before the first cluster frame survived header-readability:
		// nothing to resume, start over.
	} else if !os.IsNotExist(err) {
		return nil, err
	}

	j, err := durable.CreateJournal(path, durable.KindCheckpoint, durable.Options{Parity: ckptParity})
	if err != nil {
		return nil, err
	}
	c := &Checkpoint{j: j, done: make(map[int][]dna.Strand)}
	if err := j.Append(ckptHeaderFrame, want.encode()); err != nil {
		j.Close()
		return nil, err
	}
	return c, nil
}

// resumeCheckpoint loads an existing journal and validates its identity.
func resumeCheckpoint(path string, want ckptHeader) (*Checkpoint, error) {
	j, frames, err := durable.OpenJournal(path)
	if err != nil {
		if errors.Is(err, durable.ErrNotContainer) {
			return nil, fmt.Errorf("channel: %s is not a checkpoint journal (refusing to overwrite): %w", path, err)
		}
		return nil, err
	}
	if j.Kind() != durable.KindCheckpoint {
		j.Close()
		return nil, fmt.Errorf("channel: %s is a %s container, not a checkpoint", path, j.Kind())
	}
	if len(frames) == 0 || frames[0].Name != ckptHeaderFrame {
		// Header frame lost to the tear: recreate.
		j.Close()
		return nil, durable.ErrTruncated
	}
	got, err := decodeCkptHeader(frames[0].Payload)
	if err != nil {
		j.Close()
		return nil, err
	}
	if got != want {
		j.Close()
		return nil, fmt.Errorf("channel: checkpoint %s belongs to a different run (have name=%q seed=%d desc=%q over %d clusters; want name=%q seed=%d desc=%q over %d clusters)",
			path, got.name, got.seed, got.desc, got.clusters, want.name, want.seed, want.desc, want.clusters)
	}
	c := &Checkpoint{j: j, done: make(map[int][]dna.Strand)}
	for _, f := range frames[1:] {
		if f.Name != ckptClusterFrame {
			continue
		}
		idx, reads, err := decodeCluster(f.Payload)
		if err != nil {
			j.Close()
			return nil, err
		}
		if idx >= 0 && uint64(idx) < want.clusters {
			c.done[idx] = reads
		}
	}
	return c, nil
}

// Completed returns how many clusters the checkpoint already holds.
func (c *Checkpoint) Completed() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Done reports whether cluster i is already journaled, returning its reads.
func (c *Checkpoint) Done(i int) ([]dna.Strand, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reads, ok := c.done[i]
	return reads, ok
}

// Commit durably journals cluster i. It returns once the frame is fsynced,
// so a crash after Commit never loses the cluster. Committing an
// already-journaled cluster is a no-op.
func (c *Checkpoint) Commit(i int, reads []dna.Strand) error {
	c.mu.Lock()
	if _, ok := c.done[i]; ok {
		c.mu.Unlock()
		return nil
	}
	if err := c.j.Append(ckptClusterFrame, encodeCluster(i, reads)); err != nil {
		c.mu.Unlock()
		return err
	}
	c.done[i] = reads
	c.commits++
	commits := c.commits
	hook := c.OnCommit
	c.mu.Unlock()
	if hook != nil {
		hook(commits)
	}
	return nil
}

// Close closes the underlying journal. The file stays on disk for resume.
func (c *Checkpoint) Close() error { return c.j.Close() }

// SimulateCheckpoint is SimulateCtx with durable progress: clusters already
// in ckpt are restored without re-simulation, and each newly completed
// cluster is committed to the journal before counting as done. Output is
// byte-identical to an uninterrupted SimulateCtx run with the same
// arguments, because per-cluster RNGs depend only on (seed, index). A
// failed Commit surfaces as that cluster's ClusterError.
func (s Simulator) SimulateCheckpoint(ctx context.Context, name string, refs []dna.Strand, seed uint64, ckpt *Checkpoint) (*dataset.Dataset, error) {
	return s.simulateWith(ctx, name, refs, seed, 0, len(refs), ckpt)
}

// SimulateRangeCheckpoint is SimulateRangeCtx with durable progress: the
// cluster-range shard [first, first+count) journals each completed cluster
// under its global index. Because the journal identity binds to the full
// reference set and frames carry global indices, a shard journal written
// by one node can be resumed by another node holding the same spec — the
// handoff mechanism the fleet coordinator uses when a worker dies
// mid-shard on a shared data directory.
func (s Simulator) SimulateRangeCheckpoint(ctx context.Context, name string, refs []dna.Strand, seed uint64, first, count int, ckpt *Checkpoint) (*dataset.Dataset, error) {
	return s.simulateWith(ctx, name, refs, seed, first, count, ckpt)
}
