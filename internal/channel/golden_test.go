package channel

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"runtime"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
)

// The golden-seed contract: the compiled-plan Transmit rewrite must be a
// pure performance change. These hashes were captured from the original
// mutex-guarded double-scan implementation (plus the area-weighted resample
// fix, which predates the rewrite) and pin Simulate output byte-for-byte
// for every model tier, under any worker count. If a hash here ever needs
// to change, the channel's sampling semantics changed — that is a
// result-invalidating event for every experiment table, not a test update.

// goldenCase is one pinned workload.
type goldenCase struct {
	name     string
	channel  Channel
	coverage CoverageModel
	clusters int
	refLen   int
	seed     uint64
	hash     string // sha256 prefix of the dataset; "" until captured
}

// goldenModelCond returns the "+ Cond. Prob + Del" tier: per-base rates,
// confusion matrix, insertion distribution and long deletions.
func goldenModelCond() *Model {
	m := &Model{Label: "golden-cond"}
	m.PerBase[dna.A] = Rates{Sub: 0.010, Ins: 0.004, Del: 0.021}
	m.PerBase[dna.C] = Rates{Sub: 0.025, Ins: 0.006, Del: 0.015}
	m.PerBase[dna.G] = Rates{Sub: 0.018, Ins: 0.003, Del: 0.030}
	m.PerBase[dna.T] = Rates{Sub: 0.008, Ins: 0.007, Del: 0.012}
	m.SubMatrix[dna.A] = [dna.NumBases]float64{0, 0.2, 0.6, 0.2}
	m.SubMatrix[dna.C] = [dna.NumBases]float64{0.3, 0, 0.2, 0.5}
	m.SubMatrix[dna.G] = [dna.NumBases]float64{0.55, 0.25, 0, 0.2}
	// T row left all-zero: exercises the uniform fallback (Intn draw).
	m.InsDist = [dna.NumBases]float64{0.4, 0.1, 0.1, 0.4}
	m.LongDel = PaperLongDeletion()
	return m
}

// goldenModelSecondOrder returns the full "+ 2nd-order Errors" tier with
// spatial skew and per-error empirical spatials covering the uniform,
// upsampled and downsampled histogram paths.
func goldenModelSecondOrder() *Model {
	m := goldenModelCond().WithSpatial(dist.NanoporeSkew())
	long := make([]float64, 300) // longer than any test strand: downsampled
	for i := range long {
		long[i] = 1
	}
	long[299] = 40
	long[0] = 10
	return m.WithSecondOrder([]SecondOrderError{
		{Kind: align.Del, From: dna.G, Rate: 0.011, Spatial: []float64{1, 1, 1, 1, 8}}, // upsampled
		{Kind: align.Sub, From: dna.A, To: dna.G, Rate: 0.006},                         // uniform
		{Kind: align.Ins, To: dna.T, Rate: 0.002, Spatial: long},                       // downsampled
	})
}

// goldenModelHighRate drives boosted positions past maxPositionRate so the
// probability-scale clamp is exercised.
func goldenModelHighRate() *Model {
	m := NewNaive("golden-high", Rates{Sub: 0.15, Ins: 0.05, Del: 0.15})
	m.LongDel = PaperLongDeletion()
	m.LongDel.Prob = 0.05
	return m.WithSpatial(dist.TerminalSkew{StartPositions: 2, EndPositions: 2, StartBoost: 6, EndBoost: 12})
}

// goldenCases is the pinned workload matrix. Hashes are filled in below.
func goldenCases() []goldenCase {
	physical := NewPhysicalPipeline("golden-physical", 0.059, 100)
	return []goldenCase{
		{
			name:     "naive",
			channel:  NewNaive("golden-naive", Rates{Sub: 0.01, Ins: 0.005, Del: 0.02}),
			coverage: FixedCoverage(6),
			clusters: 60, refLen: 110, seed: 7,
			hash: goldenHashNaive,
		},
		{
			name:     "cond",
			channel:  goldenModelCond(),
			coverage: NegBinCoverage{Mean: 8, Dispersion: 2.5},
			clusters: 60, refLen: 110, seed: 11,
			hash: goldenHashCond,
		},
		{
			name:     "spatial",
			channel:  goldenModelCond().WithSpatial(dist.NanoporeSkew()),
			coverage: FixedCoverage(5),
			clusters: 50, refLen: 137, seed: 13,
			hash: goldenHashSpatial,
		},
		{
			name:     "secondorder",
			channel:  goldenModelSecondOrder(),
			coverage: NegBinCoverage{Mean: 10, Dispersion: 1.8},
			clusters: 50, refLen: 110, seed: 17,
			hash: goldenHashSecondOrder,
		},
		{
			name:     "highrate-clamped",
			channel:  goldenModelHighRate(),
			coverage: FixedCoverage(4),
			clusters: 40, refLen: 75, seed: 19,
			hash: goldenHashHighRate,
		},
		{
			name:     "dnasimulator",
			channel:  NewDNASimulator("golden-dnasim", DefaultNanoporeDict()),
			coverage: PoissonCoverage(7),
			clusters: 60, refLen: 110, seed: 23,
			hash: goldenHashDNASim,
		},
		{
			name:     "pipeline-staged",
			channel:  NewStoragePipeline("golden-pipe", 0.059, 10),
			coverage: FixedCoverage(5),
			clusters: 40, refLen: 110, seed: 29,
			hash: goldenHashPipeline,
		},
		{
			// The population-aware pipeline: pool stages bound over the
			// base coverage, so PCR skew and breakage draws interleave the
			// per-cluster stream ahead of the reads.
			name:     "pipeline-pool",
			channel:  physical,
			coverage: physical.BindCoverage(NegBinCoverage{Mean: 8, Dispersion: 2.5}),
			clusters: 40, refLen: 110, seed: 31,
			hash: goldenHashPipelinePool,
		},
	}
}

// hashDataset folds every reference and read into one digest.
func hashDataset(ds *dataset.Dataset) string {
	h := sha256.New()
	for _, c := range ds.Clusters {
		h.Write([]byte(c.Ref))
		h.Write([]byte{'\n'})
		for _, r := range c.Reads {
			h.Write([]byte(r))
			h.Write([]byte{'\n'})
		}
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:32]
}

// runGolden simulates one case and returns the dataset hash.
func runGolden(t *testing.T, gc goldenCase) string {
	t.Helper()
	refs := RandomReferences(gc.clusters, gc.refLen, gc.seed)
	sim := Simulator{Channel: gc.channel, Coverage: gc.coverage}
	ds := sim.Simulate(gc.name, refs, gc.seed)
	return hashDataset(ds)
}

// TestGoldenSeedDatasets pins Simulate output for every model tier.
// Run with GOLDEN_PRINT=1 to print current hashes instead of asserting.
func TestGoldenSeedDatasets(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			got := runGolden(t, gc)
			if os.Getenv("GOLDEN_PRINT") != "" {
				fmt.Printf("golden %-18s %s\n", gc.name, got)
				return
			}
			if got != gc.hash {
				t.Errorf("dataset hash = %s, want %s (channel sampling semantics changed!)", got, gc.hash)
			}
		})
	}
}

// TestGoldenSeedWorkerInvariance asserts the dataset is byte-identical
// under 1, 4 and 16 simulation workers: the work-stealing scheduler must
// not leak scheduling order into results.
func TestGoldenSeedWorkerInvariance(t *testing.T) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			for _, workers := range []int{1, 4, 16} {
				runtime.GOMAXPROCS(workers)
				got := runGolden(t, gc)
				runtime.GOMAXPROCS(prev)
				if os.Getenv("GOLDEN_PRINT") != "" {
					continue
				}
				if got != gc.hash {
					t.Errorf("workers=%d: dataset hash = %s, want %s", workers, got, gc.hash)
				}
			}
		})
	}
}
