package fleet

// Recovery tests: ledger replay semantics (including torn tails), the
// durable spill layer under the memory cache, drain/restart resume, and
// Idempotency-Key replay across a coordinator restart.

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/obs"
	"dnastore/internal/server"
)

func testSpec(seed uint64) server.SimulateSpec {
	return server.SimulateSpec{NumRefs: 24, RefLen: 60, Seed: seed, Sub: 0.01, Ins: 0.005, Del: 0.01, Coverage: 4}
}

func testJobSpec(seed uint64) server.JobSpec {
	sp := testSpec(seed)
	return server.JobSpec{Kind: server.KindSimulate, Simulate: &sp}
}

// TestCacheEvictionCounter: the FIFO eviction path must tick the wired
// counter once per evicted entry, and never for inserts under capacity.
func TestCacheEvictionCounter(t *testing.T) {
	reg := obs.NewRegistry()
	c := newResultCache(2)
	c.evictions = reg.Counter("dnasimd_fleet_cache_evictions_total", "test")
	for key := uint64(1); key <= 2; key++ {
		if _, _, err := c.do(context.Background(), key, func() ([]byte, error) { return []byte{byte(key)}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.evictions.Value(); got != 0 {
		t.Fatalf("evictions = %d before exceeding capacity, want 0", got)
	}
	for key := uint64(3); key <= 5; key++ {
		if _, _, err := c.do(context.Background(), key, func() ([]byte, error) { return []byte{byte(key)}, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.evictions.Value(); got != 3 {
		t.Errorf("evictions = %d after 3 over-capacity inserts, want 3", got)
	}
	if got := c.len(); got != 2 {
		t.Errorf("cache holds %d entries, want capacity 2", got)
	}
	// seed() rides the same eviction path.
	c.seed(6, []byte{6})
	if got := c.evictions.Value(); got != 4 {
		t.Errorf("evictions = %d after seeding over capacity, want 4", got)
	}
}

// TestLedgerReplayStates: one ledger file per job, replayed back into the
// exact record that was journaled — in-flight jobs with no terminal frame,
// finished jobs with their last verdict.
func TestLedgerReplayStates(t *testing.T) {
	dir := t.TempDir()
	store, err := openLedgerStore(dir, 0, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}

	inflight, err := store.create(ledgerAccepted{ID: "f000001", Key: "k1", CreatedUnixMS: 100, ShardClusters: 8, Spec: testJobSpec(1)})
	if err != nil {
		t.Fatal(err)
	}
	inflight.shardEvent(ledgerShardEvent{Index: 0, Event: "placed", Node: "w1"})
	inflight.close()

	done, err := store.create(ledgerAccepted{ID: "f000002", CreatedUnixMS: 200, Spec: testJobSpec(2)})
	if err != nil {
		t.Fatal(err)
	}
	done.finish(server.StateDone, "")

	failed, err := store.create(ledgerAccepted{ID: "f000003", CreatedUnixMS: 300, Spec: testJobSpec(3)})
	if err != nil {
		t.Fatal(err)
	}
	failed.finish(server.StateFailed, "boom")

	recs, err := store.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("replayed %d records, want 3", len(recs))
	}
	// Oldest first, by admission time.
	if recs[0].accepted.ID != "f000001" || recs[1].accepted.ID != "f000002" || recs[2].accepted.ID != "f000003" {
		t.Fatalf("replay order: %s, %s, %s", recs[0].accepted.ID, recs[1].accepted.ID, recs[2].accepted.ID)
	}
	if recs[0].finished != nil {
		t.Errorf("in-flight job replayed with terminal frame %+v", recs[0].finished)
	}
	if recs[0].accepted.Key != "k1" || recs[0].accepted.ShardClusters != 8 {
		t.Errorf("accepted record lost fields: %+v", recs[0].accepted)
	}
	if recs[1].finished == nil || recs[1].finished.State != string(server.StateDone) {
		t.Errorf("done job replayed as %+v", recs[1].finished)
	}
	if recs[2].finished == nil || recs[2].finished.State != string(server.StateFailed) || recs[2].finished.Error != "boom" {
		t.Errorf("failed job replayed as %+v", recs[2].finished)
	}
	for _, r := range recs {
		r.led.close()
	}
}

// TestLedgerTornTail: a crash mid-append tears the last frame. Torn past
// the accepted frame, the job must replay from what remains; torn inside
// the accepted frame, the 202 never committed and the file must be deleted
// — never half-adopted.
func TestLedgerTornTail(t *testing.T) {
	dir := t.TempDir()
	store, err := openLedgerStore(dir, 0, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	led, err := store.create(ledgerAccepted{ID: "f000007", CreatedUnixMS: 1, Spec: testJobSpec(7)})
	if err != nil {
		t.Fatal(err)
	}
	led.shardEvent(ledgerShardEvent{Index: 0, Event: "placed", Node: "w1"})
	led.close()

	// Tear a few bytes off the unsynced shard hint.
	data, err := os.ReadFile(led.path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(led.path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := store.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].accepted.ID != "f000007" || recs[0].finished != nil {
		t.Fatalf("torn-tail replay: %d records, %+v", len(recs), recs)
	}
	recs[0].led.close()

	// Tear into the accepted frame itself: only the container header (12
	// bytes magic/version/kind) survives cleanly.
	if err := os.WriteFile(led.path, data[:14], 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err = store.replay()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("half-admitted ledger adopted: %+v", recs[0].accepted)
	}
	if _, err := os.Stat(led.path); !os.IsNotExist(err) {
		t.Error("ledger torn before its accepted frame was not deleted")
	}
}

// TestSpillStoreGC: the spill store must enforce its byte budget FIFO,
// survive a reopen with its entries (oldest-first order preserved), and
// treat a corrupt entry as a miss, not an error.
func TestSpillStoreGC(t *testing.T) {
	dir := t.TempDir()
	s, err := openSpillStore(dir, 1, obs.Discard()) // 1-byte budget: everything but the newest evicts
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 128)
	s.put(1, payload)
	s.put(2, payload)
	s.put(3, payload)
	if got := s.entries(); got != 1 {
		t.Fatalf("entries = %d under a 1-byte budget, want 1 (GC keeps the newest)", got)
	}
	if _, ok := s.get(1); ok {
		t.Error("oldest entry survived GC")
	}
	if data, ok := s.get(3); !ok || !bytes.Equal(data, payload) {
		t.Error("newest entry lost or corrupted")
	}

	// Reopen with a generous budget: the survivor is adopted.
	s2, err := openSpillStore(dir, 1<<20, obs.Discard())
	if err != nil {
		t.Fatal(err)
	}
	if data, ok := s2.get(3); !ok || !bytes.Equal(data, payload) {
		t.Error("reopened store lost the surviving entry")
	}

	// Corrupt the survivor beyond parity: get must drop it and miss.
	path := filepath.Join(dir, spillFileName(3))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.get(3); ok {
		t.Error("corrupt spill entry served as a hit")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt spill entry not deleted")
	}
}

// restartCoordinator builds a coordinator over the given workers and data
// dir with drill-shaped timeouts.
func restartCoordinator(t *testing.T, dataDir string, shardClusters int, seed uint64, ws ...*drillWorker) *Coordinator {
	t.Helper()
	var nodes []NodeConfig
	for i, w := range ws {
		nodes = append(nodes, NodeConfig{Name: "w" + strconv.Itoa(i+1), BaseURL: w.url()})
	}
	coord, err := New(Config{
		Nodes:            nodes,
		ShardClusters:    shardClusters,
		MaxShardAttempts: 8,
		DataDir:          dataDir,
		DrainGrace:       2 * time.Second,
		ProbeInterval:    -1,
		Client:           drillClientCfg(seed),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// TestCoordinatorRestartResume: drain a coordinator mid-job, boot a fresh
// one on the same data dir, and the job must complete under its original
// ID with bytes identical to a single-node run — shards finished before
// the drain coming back as spill hits.
func TestCoordinatorRestartResume(t *testing.T) {
	spec := testSpec(21)
	want := groundTruth(t, spec)
	dataDir := t.TempDir()

	w1 := startDrillWorker(t, t.TempDir(), false)
	w2 := startDrillWorker(t, t.TempDir(), false)
	w1.delayNS.Store(int64(3 * time.Millisecond))
	w2.delayNS.Store(int64(3 * time.Millisecond))

	coord1 := restartCoordinator(t, dataDir, 4, 31, w1, w2) // 24 clusters -> 6 shards
	front1 := httptest.NewServer(coord1)
	defer front1.Close()
	cli1 := client.New(client.Config{BaseURL: front1.URL, PollInterval: 5 * time.Millisecond, Seed: 32})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	st, _, err := cli1.SubmitKeyed(ctx, "", testJobSpecOf(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Drain only once at least one shard has durably spilled, so the
	// restart has something to hit.
	deadline := time.Now().Add(30 * time.Second)
	for coord1.Registry().Snapshot()["dnasimd_fleet_spill_writes_total"] < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no shard spilled within 30s")
		}
		time.Sleep(2 * time.Millisecond)
	}
	coord1.Drain()

	// Drain parity: the draining/stopped façade answers /readyz with 503
	// and an integer Retry-After, exactly like a single worker.
	resp, err := http.Get(front1.URL + "/readyz")
	if err != nil {
		t.Fatalf("readyz during drain: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained /readyz = %d, want 503", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 3600 {
		t.Errorf("drained Retry-After = %q, want integer in [1, 3600]", resp.Header.Get("Retry-After"))
	}
	// Submissions shed with an accounted reason and a Retry-After hint.
	shedResp, err := http.Post(front1.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"kind":"simulate","simulate":{"num_refs":8,"ref_len":60,"seed":99,"sub":0.01,"coverage":2}}`)))
	if err != nil {
		t.Fatalf("submit during drain: %v", err)
	}
	shedResp.Body.Close()
	if shedResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("drained submit = %d, want 503", shedResp.StatusCode)
	}
	if _, err := strconv.Atoi(shedResp.Header.Get("Retry-After")); err != nil {
		t.Errorf("drained submit Retry-After = %q, want an integer", shedResp.Header.Get("Retry-After"))
	}
	if got := coord1.Registry().Snapshot()[`dnasimd_jobs_shed_total{reason="draining"}`]; got < 1 {
		t.Errorf("shed{draining} = %v, want >= 1", got)
	}
	front1.Close()

	// The parked job must not have reached a terminal state.
	j1, ok := coord1.job(st.ID)
	if !ok {
		t.Fatalf("job %s vanished from the drained coordinator", st.ID)
	}
	if s := j1.snapshot(); s.State.Terminal() {
		t.Fatalf("drained job settled %s; drain must park, not decide", s.State)
	}

	// Restart on the same data dir: the job is re-adopted and completes.
	w1.delayNS.Store(0)
	w2.delayNS.Store(0)
	coord2 := restartCoordinator(t, dataDir, 4, 33, w1, w2)
	front2 := httptest.NewServer(coord2)
	defer front2.Close()
	cli2 := client.New(client.Config{BaseURL: front2.URL, PollInterval: 5 * time.Millisecond, Seed: 34})

	snap := coord2.Registry().Snapshot()
	if got := snap["dnasimd_fleet_ledger_replays_total"]; got != 1 {
		t.Errorf("ledger replays = %v, want 1", got)
	}
	if got := snap["dnasimd_fleet_recovered_jobs_total"]; got != 1 {
		t.Errorf("recovered jobs = %v, want 1", got)
	}

	if got := waitTerminal(t, cli2, st.ID); got.State != server.StateDone {
		t.Fatalf("re-adopted job settled %s: %s", got.State, got.Error)
	}
	data, err := cli2.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result after restart: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("re-adopted job's dataset differs from single-node ground truth")
	}
	if got := coord2.Registry().Snapshot()["dnasimd_fleet_spill_hits_total"]; got < 1 {
		t.Errorf("spill hits = %v, want >= 1 (pre-drain shards must not recompute)", got)
	}
}

func testJobSpecOf(sp server.SimulateSpec) server.JobSpec {
	cp := sp
	return server.JobSpec{Kind: server.KindSimulate, Simulate: &cp}
}

// TestIdempotencyReplayAcrossRestart: a finished job must survive a
// restart — same Idempotency-Key and spec answer with the original job ID
// and byte-identical result, restored purely from the spill store, with no
// new submissions reaching any worker.
func TestIdempotencyReplayAcrossRestart(t *testing.T) {
	spec := testSpec(41)
	want := groundTruth(t, spec)
	dataDir := t.TempDir()

	w1 := startDrillWorker(t, t.TempDir(), false)
	w2 := startDrillWorker(t, t.TempDir(), false)

	coord1 := restartCoordinator(t, dataDir, 8, 51, w1, w2) // 24 clusters -> 3 shards
	front1 := httptest.NewServer(coord1)
	cli1 := client.New(client.Config{BaseURL: front1.URL, PollInterval: 5 * time.Millisecond, Seed: 52})

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	const key = "replay-across-restart"
	st, replayed, err := cli1.SubmitKeyed(ctx, key, testJobSpecOf(spec))
	if err != nil || replayed {
		t.Fatalf("submit: replayed=%v err=%v", replayed, err)
	}
	if got := waitTerminal(t, cli1, st.ID); got.State != server.StateDone {
		t.Fatalf("job settled %s: %s", got.State, got.Error)
	}
	coord1.Drain()
	front1.Close()

	submittedBefore := w1.srv.Registry().Snapshot()["dnasimd_jobs_submitted_total"] +
		w2.srv.Registry().Snapshot()["dnasimd_jobs_submitted_total"]

	coord2 := restartCoordinator(t, dataDir, 8, 53, w1, w2)
	front2 := httptest.NewServer(coord2)
	defer front2.Close()
	cli2 := client.New(client.Config{BaseURL: front2.URL, PollInterval: 5 * time.Millisecond, Seed: 54})

	// The done job must be restored terminal from spill — not re-run.
	snap := coord2.Registry().Snapshot()
	if got := snap["dnasimd_fleet_ledger_replays_total"]; got != 1 {
		t.Errorf("ledger replays = %v, want 1", got)
	}
	if got := snap["dnasimd_fleet_recovered_jobs_total"]; got != 0 {
		t.Errorf("recovered (re-run) jobs = %v, want 0 — a spill-complete done job restores in place", got)
	}
	if got := snap["dnasimd_fleet_spill_hits_total"]; got != 3 {
		t.Errorf("spill hits = %v, want 3 (one per shard)", got)
	}
	st2, err := cli2.Status(ctx, st.ID)
	if err != nil {
		t.Fatalf("status of restored job: %v", err)
	}
	if st2.State != server.StateDone {
		t.Fatalf("restored job is %s, want done", st2.State)
	}

	// Same key + spec: an idempotent replay of the original job.
	st3, replayed, err := cli2.SubmitKeyed(ctx, key, testJobSpecOf(spec))
	if err != nil {
		t.Fatalf("replay submit: %v", err)
	}
	if !replayed {
		t.Error("restart forgot the Idempotency-Key binding")
	}
	if st3.ID != st.ID {
		t.Errorf("replayed job ID = %s, want original %s", st3.ID, st.ID)
	}
	data, err := cli2.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("restored result differs from ground truth")
	}

	submittedAfter := w1.srv.Registry().Snapshot()["dnasimd_jobs_submitted_total"] +
		w2.srv.Registry().Snapshot()["dnasimd_jobs_submitted_total"]
	if submittedAfter != submittedBefore {
		t.Errorf("workers saw %v new submissions across the restart, want 0", submittedAfter-submittedBefore)
	}
}

// TestRetryAfterHintClamp: the hint must be a positive integer bounded by
// an hour, whatever the drain configuration says.
func TestRetryAfterHintClamp(t *testing.T) {
	c := &Coordinator{}
	c.phase = phaseRecovering
	if got := c.retryAfterHint(); got != 1 {
		t.Errorf("recovering hint = %d, want 1", got)
	}
	c.phase = server.PhaseDraining
	c.drainStarted = time.Now()
	c.cfg.DrainGrace = 5 * time.Second
	if got := c.retryAfterHint(); got < 1 || got > 5 {
		t.Errorf("draining hint = %d, want within the 5s grace", got)
	}
	c.cfg.DrainGrace = 48 * time.Hour
	if got := c.retryAfterHint(); got != maxRetryAfterSeconds {
		t.Errorf("oversized grace hint = %d, want clamp to %d", got, maxRetryAfterSeconds)
	}
	c.cfg.DrainGrace = -time.Hour
	if got := c.retryAfterHint(); got != 1 {
		t.Errorf("expired grace hint = %d, want floor 1", got)
	}
}
