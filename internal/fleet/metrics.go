package fleet

import (
	"dnastore/internal/obs"
	"dnastore/internal/server"
)

// The fleet's metric surface. Two groups share one registry:
//
//   - dnasimd_fleet_*: coordinator-specific series — shard placement,
//     cache effectiveness, hedging, erasures.
//   - dnasimd_jobs_* / dnasimd_queue_depth / dnasimd_jobs_running: the
//     same series a single dnasimd instance exports, fed by the HTTP
//     façade. dnaload's settle-and-reconcile logic reads exactly these
//     names, so a coordinator is a drop-in load-test target.
type fleetMetrics struct {
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	evictions    *obs.Counter
	replacements *obs.Counter
	hedgesFired  *obs.Counter
	shardsErased *obs.Counter
	shardsDone   *obs.Counter

	spillHits   *obs.Counter
	spillWrites *obs.Counter
	spillGC     *obs.Counter

	recovered     *obs.Counter
	ledgerReplays *obs.Counter

	submitted   *obs.Counter
	idemReplays *obs.Counter
	finished    map[server.JobState]*obs.Counter
	shed        map[string]*obs.Counter
}

func newFleetMetrics(c *Coordinator, reg *obs.Registry) *fleetMetrics {
	m := &fleetMetrics{}
	m.cacheHits = reg.Counter("dnasimd_fleet_cache_hits_total",
		"Shard requests served from the content-addressed result cache (finished or in-flight).")
	m.cacheMisses = reg.Counter("dnasimd_fleet_cache_misses_total",
		"Shard requests that had to compute on a worker node.")
	m.replacements = reg.Counter("dnasimd_fleet_shard_replacements_total",
		"Shards re-placed on a different node after their placed node failed them.")
	m.hedgesFired = reg.Counter("dnasimd_fleet_hedges_fired_total",
		"Hedged backup requests launched against straggling shards.")
	m.shardsErased = reg.Counter("dnasimd_fleet_shards_erased_total",
		"Shards abandoned after every placement attempt failed (degraded completion).")
	m.shardsDone = reg.Counter("dnasimd_fleet_shards_completed_total",
		"Shards merged into a result (cache hits included, erasures excluded).")
	m.evictions = reg.Counter("dnasimd_fleet_cache_evictions_total",
		"Entries evicted from the in-memory shard cache (FIFO over capacity).")

	m.spillHits = reg.Counter("dnasimd_fleet_spill_hits_total",
		"Memory-cache misses served from the durable spill store.")
	m.spillWrites = reg.Counter("dnasimd_fleet_spill_writes_total",
		"Computed shard results spilled to durable containers.")
	m.spillGC = reg.Counter("dnasimd_fleet_spill_gc_total",
		"Spill entries deleted by the FIFO byte-budget garbage collector.")

	m.recovered = reg.Counter("dnasimd_fleet_recovered_jobs_total",
		"Jobs re-adopted from the write-ahead ledger after a restart.")
	m.ledgerReplays = reg.Counter("dnasimd_fleet_ledger_replays_total",
		"Job ledger files replayed at boot.")

	m.submitted = reg.Counter("dnasimd_jobs_submitted_total",
		"Jobs admitted by the coordinator facade.")
	m.idemReplays = reg.Counter("dnasimd_jobs_idempotent_replays_total",
		"Submissions answered with an already-admitted job via Idempotency-Key.")
	finHelp := "Jobs reaching a terminal state, by outcome."
	m.finished = map[server.JobState]*obs.Counter{
		server.StateDone:     reg.Counter(`dnasimd_jobs_finished_total{outcome="done"}`, finHelp),
		server.StateFailed:   reg.Counter(`dnasimd_jobs_finished_total{outcome="failed"}`, finHelp),
		server.StateCanceled: reg.Counter(`dnasimd_jobs_finished_total{outcome="canceled"}`, finHelp),
	}
	shedHelp := "Submissions refused with 503 + Retry-After, by reason."
	m.shed = map[string]*obs.Counter{
		shedReasonDraining:   reg.Counter(`dnasimd_jobs_shed_total{reason="draining"}`, shedHelp),
		shedReasonRecovering: reg.Counter(`dnasimd_jobs_shed_total{reason="recovering"}`, shedHelp),
		shedReasonLedger:     reg.Counter(`dnasimd_jobs_shed_total{reason="ledger_error"}`, shedHelp),
		shedReasonDeadline:   reg.Counter(`dnasimd_jobs_shed_total{reason="deadline_expired"}`, shedHelp),
	}

	reg.GaugeFunc("dnasimd_fleet_nodes_eligible", "Worker nodes currently healthy with a non-open breaker.",
		func() float64 {
			n := 0
			for _, nd := range c.nodes {
				if nd.eligible() {
					n++
				}
			}
			return float64(n)
		})
	reg.GaugeFunc("dnasimd_fleet_cache_entries", "Entries in the shard result cache (in-flight included).",
		func() float64 { return float64(c.cache.len()) })
	if c.spill != nil {
		reg.GaugeFunc("dnasimd_fleet_spill_entries", "Shard results resident in the durable spill store.",
			func() float64 { return float64(c.spill.entries()) })
	}
	reg.GaugeFunc("dnasimd_queue_depth", "Jobs admitted but not yet executing (the facade runs jobs immediately, so 0).",
		func() float64 { return 0 })
	reg.GaugeFunc("dnasimd_jobs_running", "Facade jobs currently executing across the fleet.",
		func() float64 { return float64(c.runningJobs()) })
	return m
}
