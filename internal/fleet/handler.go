package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/server"
)

// The coordinator's HTTP façade mirrors a single dnasimd instance —
// POST /v1/jobs (with Idempotency-Key replay), GET status, GET result
// (409 + X-Job-State while running), DELETE cancel, /healthz, /readyz,
// /metrics — so internal/client and cmd/dnaload drive a fleet unchanged.
// Simulate jobs fan out across the fleet; retrieve jobs pass through to
// one node picked by rendezvous on the spec fingerprint.

// fleetJob is one job admitted by the façade.
type fleetJob struct {
	id      string
	spec    server.JobSpec
	created time.Time
	// led is the job's write-ahead ledger (nil without a DataDir).
	led *jobLedger
	// recovered marks a job re-adopted from the ledger after a restart.
	recovered bool

	mu     sync.Mutex
	state  server.JobState
	result []byte
	report Report
	err    error
	cancel context.CancelCauseFunc
	done   chan struct{}
}

func (j *fleetJob) snapshot() server.Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := server.Status{ID: j.id, Kind: j.spec.Kind, State: j.state}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *fleetJob) finish(state server.JobState, result []byte, rep Report, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	j.report = rep
	j.err = err
	j.cancel = nil
	close(j.done)
	return true
}

// errFacadeCanceled is the cancel cause for DELETE /v1/jobs/{id}.
var errFacadeCanceled = errors.New("fleet: canceled by client")

// shed reasons (the dnasimd_jobs_shed_total label values).
const (
	shedReasonDraining   = "draining"
	shedReasonRecovering = "recovering"
	shedReasonLedger     = "ledger_error"
	shedReasonDeadline   = "deadline_expired"
)

// shedError tells handleSubmit to answer 503 + Retry-After: the
// coordinator is in a phase that does not admit (draining, recovering),
// or could not commit the admission to its ledger.
type shedError struct {
	reason string
	cause  error
}

func (e *shedError) Error() string {
	msg := "fleet: not accepting jobs: " + e.reason
	if e.cause != nil {
		msg += ": " + e.cause.Error()
	}
	return msg
}

func (e *shedError) Unwrap() error { return e.cause }

// routes builds the façade mux.
func (c *Coordinator) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/report", c.handleReport)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.Handle("GET /metrics", c.cfg.Registry.Handler())
	c.mux = mux
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// writeJSON mirrors the server's response discipline: JSON body plus the
// FNV-64a body checksum header the client verifies end to end.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		buf = []byte(`{"error":"encode response"}`)
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(server.BodyChecksumHeader, bodyChecksum(buf))
	w.WriteHeader(code)
	w.Write(buf)
}

func bodyChecksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Submit admits a job and starts executing it across the fleet. The
// idempotency contract matches the single-node server: a repeated key
// replays the admitted job instead of re-running the work — and because
// shard results are content-addressed, even a duplicate submission under
// a fresh key costs only cache lookups.
//
// With a ledger configured, the admission record — job ID, key, spec,
// shard plan — is fsynced to a write-ahead journal while the admission
// lock is held, before the caller (and therefore the client's 202) ever
// sees the job. A crash after Submit returns can forget nothing the
// client was promised.
func (c *Coordinator) Submit(key string, spec server.JobSpec) (j *fleetJob, replayed bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, fmt.Errorf("fleet: invalid job: %w", err)
	}
	if spec.Kind == server.KindSimulate && (spec.Simulate.ClusterFirst != 0 || spec.Simulate.ClusterCount != 0) {
		return nil, false, errors.New("fleet: invalid job: spec already carries a cluster range; the coordinator owns the split")
	}
	c.mu.Lock()
	if c.phase != server.PhaseServing {
		reason := shedReasonDraining
		if c.phase == phaseRecovering {
			reason = shedReasonRecovering
		}
		c.mu.Unlock()
		return nil, false, &shedError{reason: reason}
	}
	if key != "" {
		if id, ok := c.idem[key]; ok {
			if prev, ok := c.jobs[id]; ok {
				c.mu.Unlock()
				c.metrics.idemReplays.Inc()
				return prev, true, nil
			}
		}
	}
	if ddl := spec.Deadline(); !ddl.IsZero() && !time.Now().Before(ddl) {
		c.mu.Unlock()
		return nil, false, server.ErrDeadlineExpired
	}
	c.nextID++
	j = &fleetJob{
		id:      fmt.Sprintf("f%06d", c.nextID),
		spec:    spec,
		created: time.Now(),
		state:   server.StateQueued,
		done:    make(chan struct{}),
	}
	if c.ledger != nil {
		led, lerr := c.ledger.create(ledgerAccepted{
			ID: j.id, Key: key, CreatedUnixMS: j.created.UnixMilli(),
			ShardClusters: c.cfg.ShardClusters, Spec: spec,
		})
		if lerr != nil {
			// The write-ahead contract is absolute: no durable admission
			// record, no admission. Roll the ID back and shed — a disk
			// hiccup is transient, so the client retries rather than
			// believing a 202 the ledger cannot back.
			c.nextID--
			c.mu.Unlock()
			c.slog.Error("admission refused: ledger write failed", "error", lerr)
			return nil, false, &shedError{reason: shedReasonLedger, cause: lerr}
		}
		j.led = led
	}
	c.jobs[j.id] = j
	if key != "" {
		c.idem[key] = j.id
	}
	c.jobWG.Add(1)
	c.mu.Unlock()
	c.metrics.submitted.Inc()
	c.slog.Info("job admitted", "job", j.id, "kind", string(spec.Kind))
	go c.runJob(j)
	return j, false, nil
}

// runningJobs counts façade jobs not yet terminal (the dnasimd_jobs_running
// gauge; the façade has no queue, so queued ≡ about-to-run).
func (c *Coordinator) runningJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, j := range c.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// runJob drives one admitted job to a terminal state — or, when a drain
// interrupts it, parks it: the job stays non-terminal in memory and in
// its ledger, which is precisely the record the next boot re-adopts.
func (c *Coordinator) runJob(j *fleetJob) {
	defer c.jobWG.Done()
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if ddl := j.spec.Deadline(); !ddl.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, ddl)
		defer dcancel()
		ctx = dctx
	} else if j.spec.TimeoutMS > 0 {
		tctx, tcancel := context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		defer tcancel()
		ctx = tctx
	}
	j.mu.Lock()
	if j.state.Terminal() { // canceled before the goroutine started
		j.mu.Unlock()
		return
	}
	j.state = server.StateRunning
	j.cancel = cancel
	j.mu.Unlock()

	var data []byte
	var rep Report
	var err error
	switch j.spec.Kind {
	case server.KindSimulate:
		data, rep, err = c.simulateJob(ctx, *j.spec.Simulate, j.led)
	case server.KindRetrieve:
		data, err = c.passthrough(ctx, j.spec)
	default:
		err = fmt.Errorf("fleet: unsupported job kind %q", j.spec.Kind)
	}

	if err != nil && errors.Is(context.Cause(ctx), errDrainStop) {
		// Drain told the job to park, not to die: no terminal transition,
		// no terminal ledger frame. Workers keep computing their shards;
		// the restarted coordinator re-adopts the job from its ledger and
		// collects what finished in the meantime.
		c.slog.Info("job parked for restart-resume", "job", j.id)
		return
	}

	state := server.StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(context.Cause(ctx), errFacadeCanceled):
		state, data = server.StateCanceled, nil
	default:
		state, data = server.StateFailed, nil
	}
	if j.finish(state, data, rep, err) {
		errStr := ""
		if err != nil {
			errStr = err.Error()
		}
		j.led.finish(state, errStr)
		if j.led != nil {
			c.ledger.retire(j.led.path)
		}
		if cnt := c.metrics.finished[state]; cnt != nil {
			cnt.Inc()
		}
		attrs := []any{"job", j.id, "state", string(state),
			"elapsed", time.Since(j.created).Round(time.Millisecond)}
		if err != nil {
			attrs = append(attrs, "error", err.Error())
		}
		c.slog.Info("job finished", attrs...)
	}
}

// passthrough runs a non-shardable job on one node, picked by rendezvous
// on the job fingerprint so repeated submissions land on the same node's
// caches and journals. Failed placements retry on the next-ranked node.
func (c *Coordinator) passthrough(ctx context.Context, spec server.JobSpec) ([]byte, error) {
	ranked := rank(c.nodes, spec.Fingerprint())
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxShardAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := ranked[attempt%len(ranked)]
		if !n.eligible() && attempt < c.cfg.MaxShardAttempts-1 {
			continue
		}
		res := n.cli.Run(ctx, spec)
		if res.Outcome == client.OutcomeSucceeded {
			return res.Data, nil
		}
		lastErr = fmt.Errorf("fleet: %s on %s settled %s: %w", spec.Kind, n.name, res.Outcome, res.Err)
	}
	return nil, lastErr
}

func (c *Coordinator) job(id string) (*fleetJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode job spec: %v", err)})
		return
	}
	j, replayed, err := c.Submit(r.Header.Get(server.IdempotencyKeyHeader), spec)
	var shed *shedError
	switch {
	case errors.As(err, &shed):
		if cnt := c.metrics.shed[shed.reason]; cnt != nil {
			cnt.Inc()
		}
		w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterHint()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": shed.Error()})
		return
	case errors.Is(err, server.ErrDeadlineExpired):
		if cnt := c.metrics.shed[shedReasonDeadline]; cnt != nil {
			cnt.Inc()
		}
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if replayed {
		w.Header().Set(server.IdempotencyReplayedHeader, "true")
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	state, data := j.state, j.result
	j.mu.Unlock()
	w.Header().Set("X-Job-State", string(state))
	if state != server.StateDone {
		writeJSON(w, http.StatusConflict, j.snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(server.BodyChecksumHeader, bodyChecksum(data))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleReport serves the per-shard report of a finished simulate job —
// the erasure account a degraded completion promises its caller.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	state, rep := j.state, j.report
	j.mu.Unlock()
	w.Header().Set("X-Job-State", string(state))
	if !state.Terminal() {
		writeJSON(w, http.StatusConflict, j.snapshot())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
	case j.state == server.StateQueued:
		// The executor goroutine has not taken the job yet; settle it here
		// and the goroutine's terminal check makes its start a no-op.
		transitioned := false
		if !j.state.Terminal() {
			j.state = server.StateCanceled
			j.err = errFacadeCanceled
			close(j.done)
			transitioned = true
		}
		j.mu.Unlock()
		if transitioned {
			j.led.finish(server.StateCanceled, errFacadeCanceled.Error())
			if j.led != nil {
				c.ledger.retire(j.led.path)
			}
			if cnt := c.metrics.finished[server.StateCanceled]; cnt != nil {
				cnt.Inc()
			}
		}
	default:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errFacadeCanceled)
		}
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// NodeHealth is one node's entry in the /healthz payload.
type NodeHealth struct {
	Name     string              `json:"name"`
	Healthy  bool                `json:"healthy"`
	Breaker  server.BreakerState `json:"breaker"`
	Eligible bool                `json:"eligible"`
}

// FleetHealth is the /healthz payload: the coordinator is "serving" as
// long as the process runs; per-node eligibility tells the real story.
type FleetHealth struct {
	Phase server.Phase `json:"phase"`
	Nodes []NodeHealth `json:"nodes"`
	Jobs  int          `json:"jobs"`
}

// HealthSnapshot returns the coordinator's fleet-wide health view.
func (c *Coordinator) HealthSnapshot() FleetHealth {
	c.mu.Lock()
	jobs := len(c.jobs)
	phase := c.phase
	c.mu.Unlock()
	h := FleetHealth{Phase: phase, Jobs: jobs}
	for _, n := range c.nodes {
		h.Nodes = append(h.Nodes, NodeHealth{
			Name: n.name, Healthy: n.healthy.Load(),
			Breaker: n.brk.State(), Eligible: n.eligible(),
		})
	}
	return h
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.HealthSnapshot())
}

// handleReadyz: the coordinator can take work while it is serving and at
// least one node is eligible; with zero eligible nodes every shard would
// ride the last-resort placement path, so readiness honestly says no.
// Non-serving phases (recovering, draining, stopped) answer exactly like
// the single-node server: 503 with a clamped integer Retry-After, so
// internal/client backs off identically against either.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	phase := c.phase
	c.mu.Unlock()
	if phase != server.PhaseServing {
		w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterHint()))
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": string(phase)})
		return
	}
	for _, n := range c.nodes {
		if n.eligible() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	w.Header().Set("Retry-After", strconv.Itoa(c.retryAfterHint()))
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no eligible nodes"})
}

// maxRetryAfterSeconds mirrors the single-node server's cap: past an hour
// the hint stops being advice and starts being a bug amplifier.
const maxRetryAfterSeconds = 3600

// retryAfterHint is the coordinator's Retry-After estimate, RFC 9110
// delta-seconds: a positive integer clamped into [1, maxRetryAfterSeconds]
// (the comparisons also catch a NaN from pathological durations before
// the float→int conversion, whose behavior is undefined out of range).
// While draining it is the remaining drain window — by then this process
// has exited and its replacement can take the retry; while recovering or
// node-starved it is a short constant, because both conditions clear on
// the order of probe ticks.
func (c *Coordinator) retryAfterHint() int {
	c.mu.Lock()
	phase, started := c.phase, c.drainStarted
	c.mu.Unlock()
	if phase != server.PhaseDraining && phase != server.PhaseStopped {
		return 1
	}
	rem := c.cfg.DrainGrace
	if !started.IsZero() {
		rem -= time.Since(started)
	}
	sec := math.Ceil(rem.Seconds())
	switch {
	case !(sec > 1): // ≤1, or NaN
		return 1
	case sec >= maxRetryAfterSeconds:
		return maxRetryAfterSeconds
	}
	return int(sec)
}
