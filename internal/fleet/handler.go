package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sync"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/server"
)

// The coordinator's HTTP façade mirrors a single dnasimd instance —
// POST /v1/jobs (with Idempotency-Key replay), GET status, GET result
// (409 + X-Job-State while running), DELETE cancel, /healthz, /readyz,
// /metrics — so internal/client and cmd/dnaload drive a fleet unchanged.
// Simulate jobs fan out across the fleet; retrieve jobs pass through to
// one node picked by rendezvous on the spec fingerprint.

// fleetJob is one job admitted by the façade.
type fleetJob struct {
	id      string
	spec    server.JobSpec
	created time.Time

	mu     sync.Mutex
	state  server.JobState
	result []byte
	report Report
	err    error
	cancel context.CancelCauseFunc
	done   chan struct{}
}

func (j *fleetJob) snapshot() server.Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := server.Status{ID: j.id, Kind: j.spec.Kind, State: j.state}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (j *fleetJob) finish(state server.JobState, result []byte, rep Report, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = result
	j.report = rep
	j.err = err
	j.cancel = nil
	close(j.done)
	return true
}

// errFacadeCanceled is the cancel cause for DELETE /v1/jobs/{id}.
var errFacadeCanceled = errors.New("fleet: canceled by client")

// routes builds the façade mux.
func (c *Coordinator) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", c.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", c.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", c.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/report", c.handleReport)
	mux.HandleFunc("DELETE /v1/jobs/{id}", c.handleCancel)
	mux.HandleFunc("GET /healthz", c.handleHealthz)
	mux.HandleFunc("GET /readyz", c.handleReadyz)
	mux.Handle("GET /metrics", c.cfg.Registry.Handler())
	c.mux = mux
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// writeJSON mirrors the server's response discipline: JSON body plus the
// FNV-64a body checksum header the client verifies end to end.
func writeJSON(w http.ResponseWriter, code int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		buf = []byte(`{"error":"encode response"}`)
	}
	buf = append(buf, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(server.BodyChecksumHeader, bodyChecksum(buf))
	w.WriteHeader(code)
	w.Write(buf)
}

func bodyChecksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Submit admits a job and starts executing it across the fleet. The
// idempotency contract matches the single-node server: a repeated key
// replays the admitted job instead of re-running the work — and because
// shard results are content-addressed, even a duplicate submission under
// a fresh key costs only cache lookups.
func (c *Coordinator) Submit(key string, spec server.JobSpec) (j *fleetJob, replayed bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, fmt.Errorf("fleet: invalid job: %w", err)
	}
	if spec.Kind == server.KindSimulate && (spec.Simulate.ClusterFirst != 0 || spec.Simulate.ClusterCount != 0) {
		return nil, false, errors.New("fleet: invalid job: spec already carries a cluster range; the coordinator owns the split")
	}
	c.mu.Lock()
	if key != "" {
		if id, ok := c.idem[key]; ok {
			if prev, ok := c.jobs[id]; ok {
				c.mu.Unlock()
				c.metrics.idemReplays.Inc()
				return prev, true, nil
			}
		}
	}
	if ddl := spec.Deadline(); !ddl.IsZero() && !time.Now().Before(ddl) {
		c.mu.Unlock()
		return nil, false, server.ErrDeadlineExpired
	}
	c.nextID++
	j = &fleetJob{
		id:      fmt.Sprintf("f%06d", c.nextID),
		spec:    spec,
		created: time.Now(),
		state:   server.StateQueued,
		done:    make(chan struct{}),
	}
	c.jobs[j.id] = j
	if key != "" {
		c.idem[key] = j.id
	}
	c.mu.Unlock()
	c.metrics.submitted.Inc()
	c.slog.Info("job admitted", "job", j.id, "kind", string(spec.Kind))
	go c.runJob(j)
	return j, false, nil
}

// runningJobs counts façade jobs not yet terminal (the dnasimd_jobs_running
// gauge; the façade has no queue, so queued ≡ about-to-run).
func (c *Coordinator) runningJobs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, j := range c.jobs {
		j.mu.Lock()
		if !j.state.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// runJob drives one admitted job to a terminal state.
func (c *Coordinator) runJob(j *fleetJob) {
	ctx, cancel := context.WithCancelCause(context.Background())
	defer cancel(nil)
	if ddl := j.spec.Deadline(); !ddl.IsZero() {
		dctx, dcancel := context.WithDeadline(ctx, ddl)
		defer dcancel()
		ctx = dctx
	} else if j.spec.TimeoutMS > 0 {
		tctx, tcancel := context.WithTimeout(ctx, time.Duration(j.spec.TimeoutMS)*time.Millisecond)
		defer tcancel()
		ctx = tctx
	}
	j.mu.Lock()
	if j.state.Terminal() { // canceled before the goroutine started
		j.mu.Unlock()
		return
	}
	j.state = server.StateRunning
	j.cancel = cancel
	j.mu.Unlock()

	var data []byte
	var rep Report
	var err error
	switch j.spec.Kind {
	case server.KindSimulate:
		data, rep, err = c.Simulate(ctx, *j.spec.Simulate)
	case server.KindRetrieve:
		data, err = c.passthrough(ctx, j.spec)
	default:
		err = fmt.Errorf("fleet: unsupported job kind %q", j.spec.Kind)
	}

	state := server.StateDone
	switch {
	case err == nil:
	case errors.Is(err, context.Canceled) || errors.Is(context.Cause(ctx), errFacadeCanceled):
		state, data = server.StateCanceled, nil
	default:
		state, data = server.StateFailed, nil
	}
	if j.finish(state, data, rep, err) {
		if cnt := c.metrics.finished[state]; cnt != nil {
			cnt.Inc()
		}
		attrs := []any{"job", j.id, "state", string(state),
			"elapsed", time.Since(j.created).Round(time.Millisecond)}
		if err != nil {
			attrs = append(attrs, "error", err.Error())
		}
		c.slog.Info("job finished", attrs...)
	}
}

// passthrough runs a non-shardable job on one node, picked by rendezvous
// on the job fingerprint so repeated submissions land on the same node's
// caches and journals. Failed placements retry on the next-ranked node.
func (c *Coordinator) passthrough(ctx context.Context, spec server.JobSpec) ([]byte, error) {
	ranked := rank(c.nodes, spec.Fingerprint())
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxShardAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		n := ranked[attempt%len(ranked)]
		if !n.eligible() && attempt < c.cfg.MaxShardAttempts-1 {
			continue
		}
		res := n.cli.Run(ctx, spec)
		if res.Outcome == client.OutcomeSucceeded {
			return res.Data, nil
		}
		lastErr = fmt.Errorf("fleet: %s on %s settled %s: %w", spec.Kind, n.name, res.Outcome, res.Err)
	}
	return nil, lastErr
}

func (c *Coordinator) job(id string) (*fleetJob, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	return j, ok
}

func (c *Coordinator) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec server.JobSpec
	body := http.MaxBytesReader(w, r.Body, 64<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("decode job spec: %v", err)})
		return
	}
	j, replayed, err := c.Submit(r.Header.Get(server.IdempotencyKeyHeader), spec)
	switch {
	case errors.Is(err, server.ErrDeadlineExpired):
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": err.Error()})
		return
	case err != nil:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if replayed {
		w.Header().Set(server.IdempotencyReplayedHeader, "true")
		writeJSON(w, http.StatusOK, j.snapshot())
		return
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.snapshot())
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	state, data := j.state, j.result
	j.mu.Unlock()
	w.Header().Set("X-Job-State", string(state))
	if state != server.StateDone {
		writeJSON(w, http.StatusConflict, j.snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(server.BodyChecksumHeader, bodyChecksum(data))
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// handleReport serves the per-shard report of a finished simulate job —
// the erasure account a degraded completion promises its caller.
func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	state, rep := j.state, j.report
	j.mu.Unlock()
	w.Header().Set("X-Job-State", string(state))
	if !state.Terminal() {
		writeJSON(w, http.StatusConflict, j.snapshot())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (c *Coordinator) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := c.job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
		return
	}
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
	case j.state == server.StateQueued:
		// The executor goroutine has not taken the job yet; settle it here
		// and the goroutine's terminal check makes its start a no-op.
		transitioned := false
		if !j.state.Terminal() {
			j.state = server.StateCanceled
			j.err = errFacadeCanceled
			close(j.done)
			transitioned = true
		}
		j.mu.Unlock()
		if transitioned {
			if cnt := c.metrics.finished[server.StateCanceled]; cnt != nil {
				cnt.Inc()
			}
		}
	default:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel(errFacadeCanceled)
		}
	}
	writeJSON(w, http.StatusAccepted, j.snapshot())
}

// NodeHealth is one node's entry in the /healthz payload.
type NodeHealth struct {
	Name     string              `json:"name"`
	Healthy  bool                `json:"healthy"`
	Breaker  server.BreakerState `json:"breaker"`
	Eligible bool                `json:"eligible"`
}

// FleetHealth is the /healthz payload: the coordinator is "serving" as
// long as the process runs; per-node eligibility tells the real story.
type FleetHealth struct {
	Phase server.Phase `json:"phase"`
	Nodes []NodeHealth `json:"nodes"`
	Jobs  int          `json:"jobs"`
}

// HealthSnapshot returns the coordinator's fleet-wide health view.
func (c *Coordinator) HealthSnapshot() FleetHealth {
	c.mu.Lock()
	jobs := len(c.jobs)
	c.mu.Unlock()
	h := FleetHealth{Phase: server.PhaseServing, Jobs: jobs}
	for _, n := range c.nodes {
		h.Nodes = append(h.Nodes, NodeHealth{
			Name: n.name, Healthy: n.healthy.Load(),
			Breaker: n.brk.State(), Eligible: n.eligible(),
		})
	}
	return h
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.HealthSnapshot())
}

// handleReadyz: the coordinator can take work while at least one node is
// eligible; with zero eligible nodes every shard would ride the last-resort
// placement path, so readiness honestly says no.
func (c *Coordinator) handleReadyz(w http.ResponseWriter, r *http.Request) {
	for _, n := range c.nodes {
		if n.eligible() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no eligible nodes"})
}
