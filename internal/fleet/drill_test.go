package fleet

// The fleet drills run real worker dnasimd servers behind real sockets
// (and chaosnet proxies where a node must die) and assert the coordinator's
// core promise: whatever fails mid-run, the merged dataset is byte-identical
// to a single-node simulation of the same spec, and every cluster is
// accounted for exactly once.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"dnastore/internal/channel"
	"dnastore/internal/chaosnet"
	"dnastore/internal/client"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
	"dnastore/internal/server"
)

// pacedChannel wraps the spec's channel, counting transmits and sleeping a
// settable delay per transmit, so a drill can hold a worker mid-shard and
// observe exactly how much work each node did.
type pacedChannel struct {
	channel.Channel
	delayNS *atomic.Int64
	n       *atomic.Int64
}

func (p pacedChannel) Transmit(ref dna.Strand, r *rng.RNG) dna.Strand {
	p.n.Add(1)
	if d := p.delayNS.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	return p.Channel.Transmit(ref, r)
}

type drillWorker struct {
	srv       *server.Server
	ts        *httptest.Server
	proxy     *chaosnet.Proxy
	transmits atomic.Int64
	delayNS   atomic.Int64
}

func (w *drillWorker) url() string {
	if w.proxy != nil {
		return w.proxy.URL()
	}
	return w.ts.URL
}

// startDrillWorker boots one worker dnasimd with a pacing wrapper and,
// when proxied, a chaosnet proxy in front of it for staged node death.
func startDrillWorker(t *testing.T, dataDir string, proxied bool) *drillWorker {
	t.Helper()
	w := &drillWorker{}
	w.srv = server.New(server.Config{
		Workers:    4,
		DataDir:    dataDir,
		DrainGrace: 5 * time.Second,
		WrapSimulation: func(ch channel.Channel, cov channel.CoverageModel) (channel.Channel, channel.CoverageModel) {
			return pacedChannel{Channel: ch, delayNS: &w.delayNS, n: &w.transmits}, cov
		},
	})
	w.ts = httptest.NewServer(w.srv)
	t.Cleanup(w.ts.Close)
	if proxied {
		p, err := chaosnet.Listen(w.ts.Listener.Addr().String(), chaosnet.Scenario{}, 1)
		if err != nil {
			t.Fatalf("chaosnet.Listen: %v", err)
		}
		w.proxy = p
		t.Cleanup(func() { p.Close() })
	}
	return w
}

// drillClientCfg is the coordinator's per-node client template for drills:
// tight budgets so a dead node is detected in about a second, and
// keep-alives disabled so a blackhole catches every subsequent exchange
// instead of letting pooled connections sail past it.
func drillClientCfg(seed uint64) client.Config {
	return client.Config{
		HTTPClient:     &http.Client{Transport: &http.Transport{DisableKeepAlives: true}},
		MaxAttempts:    2,
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     20 * time.Millisecond,
		PerCallTimeout: 500 * time.Millisecond,
		PollInterval:   5 * time.Millisecond,
		Seed:           seed,
	}
}

// groundTruth simulates the spec single-node, in-process — the bytes every
// fleet run must reproduce exactly.
func groundTruth(t *testing.T, spec server.SimulateSpec) []byte {
	t.Helper()
	sp := spec
	if err := sp.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	ch, cov, err := sp.Simulator()
	if err != nil {
		t.Fatalf("simulator: %v", err)
	}
	ds, err := channel.Simulator{Channel: ch, Coverage: cov}.SimulateCtx(context.Background(), "simulated", sp.References(), sp.Seed)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	var buf bytes.Buffer
	if err := ds.Write(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	return buf.Bytes()
}

func fetchReport(t *testing.T, base, id string) Report {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report status %d", resp.StatusCode)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decode report: %v", err)
	}
	return rep
}

func waitTerminal(t *testing.T, cli *client.Client, id string) server.Status {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for {
		st, err := cli.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after a minute", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetDrillNodeDeath is the conservation drill: three workers, one
// blackholed mid-shard, and the merged dataset must still be byte-identical
// to a single-node run, with every cluster produced exactly once. A second
// submission of the same spec must then be served from the result cache.
func TestFleetDrillNodeDeath(t *testing.T) {
	spec := server.SimulateSpec{NumRefs: 96, RefLen: 80, Seed: 11, Sub: 0.01, Ins: 0.005, Del: 0.01, Coverage: 4}
	want := groundTruth(t, spec)

	w1 := startDrillWorker(t, t.TempDir(), false)
	w2 := startDrillWorker(t, t.TempDir(), false)
	w3 := startDrillWorker(t, t.TempDir(), true)
	w1.delayNS.Store(int64(500 * time.Microsecond))
	w2.delayNS.Store(int64(500 * time.Microsecond))
	// w3 is slow enough that its shards are reliably in flight when the
	// blackhole drops.
	w3.delayNS.Store(int64(10 * time.Millisecond))

	coord, err := New(Config{
		Nodes: []NodeConfig{
			{Name: "w1", BaseURL: w1.url()},
			{Name: "w2", BaseURL: w2.url()},
			{Name: "w3", BaseURL: w3.url()},
		},
		ShardClusters:    8, // 96 clusters -> 12 shards
		MaxShardAttempts: 8,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Client:           drillClientCfg(1),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord)
	defer front.Close()
	cli := client.New(client.Config{BaseURL: front.URL, PollInterval: 10 * time.Millisecond, Seed: 2})

	// Kill w3 once it is demonstrably mid-shard: a shard is 8 clusters of
	// ~4 reads, so 8 transmits in means its first shard cannot have
	// delivered a result yet and dies with work in flight.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(30 * time.Second)
		for w3.transmits.Load() < 8 {
			if time.Now().After(deadline) {
				t.Error("w3 never started transmitting; rendezvous gave it no shards")
				return
			}
			time.Sleep(time.Millisecond)
		}
		w3.proxy.SetBlackhole(true)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res := cli.Run(ctx, server.JobSpec{Kind: server.KindSimulate, Simulate: &spec})
	<-killed
	if res.Outcome != client.OutcomeSucceeded {
		t.Fatalf("fleet run settled %s: %v", res.Outcome, res.Err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatalf("merged dataset differs from single-node ground truth (%d vs %d bytes)", len(res.Data), len(want))
	}

	snap := coord.Registry().Snapshot()
	if got := snap["dnasimd_fleet_shard_replacements_total"]; got < 1 {
		t.Errorf("shard replacements = %v, want >= 1 after node death", got)
	}
	if got := snap["dnasimd_fleet_cache_misses_total"]; got != 12 {
		t.Errorf("cache misses = %v, want 12 (one per shard)", got)
	}
	if got := snap["dnasimd_fleet_shards_erased_total"]; got != 0 {
		t.Errorf("shards erased = %v, want 0 (no cluster may be lost)", got)
	}

	// The shard ledger must partition [0, NumRefs) exactly: no holes, no
	// overlaps, no erasures, every shard attributed.
	rep := fetchReport(t, front.URL, res.JobID)
	next := 0
	for i, st := range rep.Shards {
		if st.Index != i || st.First != next {
			t.Fatalf("shard ledger hole at %d: %+v", i, st)
		}
		if st.Erased {
			t.Errorf("shard %d erased in a run that should conserve every cluster", i)
		}
		if !st.CacheHit && st.Node == "" {
			t.Errorf("shard %d has no producing node", i)
		}
		next += st.Count
	}
	if next != rep.TotalClusters || next != spec.NumRefs {
		t.Fatalf("ledger covers %d clusters, want %d", next, spec.NumRefs)
	}

	// Duplicate spec under a fresh idempotency key: a new job, but every
	// shard must come from the content-addressed cache.
	st2, replayed, err := cli.SubmitKeyed(ctx, "drill-rerun", server.JobSpec{Kind: server.KindSimulate, Simulate: &spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if replayed {
		t.Fatal("fresh idempotency key replayed the old job; the cache, not idempotency, should dedupe")
	}
	if st := waitTerminal(t, cli, st2.ID); st.State != server.StateDone {
		t.Fatalf("duplicate run settled %s: %s", st.State, st.Error)
	}
	data2, err := cli.Result(ctx, st2.ID)
	if err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	if !bytes.Equal(data2, want) {
		t.Fatal("duplicate-spec dataset differs from ground truth")
	}
	snap2 := coord.Registry().Snapshot()
	if got := snap2["dnasimd_fleet_cache_hits_total"]; got != 12 {
		t.Errorf("cache hits = %v, want 12 (every shard of the duplicate run)", got)
	}
	if got := snap2["dnasimd_fleet_cache_misses_total"]; got != 12 {
		t.Errorf("cache misses = %v, want still 12 (duplicate run computed nothing)", got)
	}

	// The facade exports the dnaload settle/reconcile series.
	if got := snap2["dnasimd_jobs_submitted_total"]; got != 2 {
		t.Errorf("jobs submitted = %v, want 2", got)
	}
	if got := snap2[`dnasimd_jobs_finished_total{outcome="done"}`]; got != 2 {
		t.Errorf("jobs done = %v, want 2", got)
	}
	if got := snap2["dnasimd_queue_depth"] + snap2["dnasimd_jobs_running"]; got != 0 {
		t.Errorf("queue depth + running = %v at quiescence, want 0", got)
	}
}

// TestFleetDrillStagedPipeline runs the node-death drill on a staged
// pipeline spec — synthesis → PCR (with amplification skew) → aging (with
// breakage) → sequencing. The pool stages draw coverage from per-cluster
// RNGs, so sharding must not move a single draw: the merged dataset must be
// byte-identical to the single-node run even with a node blackholed
// mid-shard, and a duplicate submission must hit the shard cache on the
// pipeline fingerprints.
func TestFleetDrillStagedPipeline(t *testing.T) {
	spec := server.SimulateSpec{
		NumRefs: 48, RefLen: 80, Seed: 17,
		Stages:   "synthesis=0.0118,pcr=30:0.0001:0.02,aging=100:3e-05:0.00133,sequencing=0.0413:terminal-skew",
		Coverage: 6, CoverageModel: "negbin",
	}
	want := groundTruth(t, spec)

	w1 := startDrillWorker(t, t.TempDir(), false)
	w2 := startDrillWorker(t, t.TempDir(), false)
	w3 := startDrillWorker(t, t.TempDir(), true)
	w1.delayNS.Store(int64(500 * time.Microsecond))
	w2.delayNS.Store(int64(500 * time.Microsecond))
	w3.delayNS.Store(int64(10 * time.Millisecond))

	coord, err := New(Config{
		Nodes: []NodeConfig{
			{Name: "w1", BaseURL: w1.url()},
			{Name: "w2", BaseURL: w2.url()},
			{Name: "w3", BaseURL: w3.url()},
		},
		ShardClusters:    8, // 48 clusters -> 6 shards
		MaxShardAttempts: 8,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Client:           drillClientCfg(6),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()
	front := httptest.NewServer(coord)
	defer front.Close()
	cli := client.New(client.Config{BaseURL: front.URL, PollInterval: 10 * time.Millisecond, Seed: 7})

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		deadline := time.Now().Add(30 * time.Second)
		for w3.transmits.Load() < 8 {
			if time.Now().After(deadline) {
				t.Error("w3 never started transmitting; rendezvous gave it no shards")
				return
			}
			time.Sleep(time.Millisecond)
		}
		w3.proxy.SetBlackhole(true)
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res := cli.Run(ctx, server.JobSpec{Kind: server.KindSimulate, Simulate: &spec})
	<-killed
	if res.Outcome != client.OutcomeSucceeded {
		t.Fatalf("staged fleet run settled %s: %v", res.Outcome, res.Err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatalf("merged staged dataset differs from single-node ground truth (%d vs %d bytes)", len(res.Data), len(want))
	}

	// The ledger must partition the cluster range with nothing erased.
	rep := fetchReport(t, front.URL, res.JobID)
	next := 0
	for i, st := range rep.Shards {
		if st.Index != i || st.First != next {
			t.Fatalf("shard ledger hole at %d: %+v", i, st)
		}
		if st.Erased {
			t.Errorf("shard %d erased; staged pipelines must conserve clusters too", i)
		}
		next += st.Count
	}
	if next != spec.NumRefs {
		t.Fatalf("ledger covers %d clusters, want %d", next, spec.NumRefs)
	}

	// Duplicate spec: every shard must come from the content-addressed cache
	// keyed on the staged-spec fingerprint.
	st2, _, err := cli.SubmitKeyed(ctx, "staged-rerun", server.JobSpec{Kind: server.KindSimulate, Simulate: &spec})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st := waitTerminal(t, cli, st2.ID); st.State != server.StateDone {
		t.Fatalf("duplicate staged run settled %s: %s", st.State, st.Error)
	}
	data2, err := cli.Result(ctx, st2.ID)
	if err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	if !bytes.Equal(data2, want) {
		t.Fatal("duplicate staged-spec dataset differs from ground truth")
	}
	snap := coord.Registry().Snapshot()
	if got := snap["dnasimd_fleet_cache_hits_total"]; got != 6 {
		t.Errorf("cache hits = %v, want 6 (every shard of the duplicate run)", got)
	}
	if got := snap["dnasimd_fleet_cache_misses_total"]; got != 6 {
		t.Errorf("cache misses = %v, want still 6 (duplicate run computed nothing)", got)
	}
}

// TestFleetDrillHedge: a straggling shard on a slow node must fire a hedge
// on the next-ranked node, and the first result must win without changing
// a byte of the output.
func TestFleetDrillHedge(t *testing.T) {
	spec := server.SimulateSpec{NumRefs: 16, RefLen: 60, Seed: 5, Sub: 0.01, Coverage: 4}
	want := groundTruth(t, spec)

	wa := startDrillWorker(t, t.TempDir(), false)
	wb := startDrillWorker(t, t.TempDir(), false)
	coord, err := New(Config{
		Nodes:         []NodeConfig{{Name: "a", BaseURL: wa.url()}, {Name: "b", BaseURL: wb.url()}},
		ShardClusters: spec.NumRefs, // one shard: the hedge race is the whole job
		HedgeAfter:    25 * time.Millisecond,
		ProbeInterval: -1,
		Client:        client.Config{PollInterval: 5 * time.Millisecond, Seed: 3},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	// Slow down whichever node rendezvous places the shard on, so the
	// hedge deterministically fires and the backup deterministically wins.
	vspec := spec
	if err := vspec.Validate(); err != nil {
		t.Fatal(err)
	}
	sh := shardsOf(vspec, coord.cfg.ShardClusters)[0]
	ranked := rank(coord.nodes, sh.key)
	workers := map[string]*drillWorker{"a": wa, "b": wb}
	workers[ranked[0].name].delayNS.Store(int64(50 * time.Millisecond))

	data, rep, err := coord.Simulate(context.Background(), spec)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("hedged dataset differs from ground truth")
	}
	st := rep.Shards[0]
	if !st.Hedged {
		t.Errorf("shard was not hedged: %+v", st)
	}
	if st.Node != ranked[1].name {
		t.Errorf("shard won by %q, want the hedged backup %q", st.Node, ranked[1].name)
	}
	if got := coord.Registry().Snapshot()["dnasimd_fleet_hedges_fired_total"]; got < 1 {
		t.Errorf("hedges fired = %v, want >= 1", got)
	}
	if workers[ranked[1].name].transmits.Load() == 0 {
		t.Error("backup node never worked the shard")
	}
}

// TestFleetShardHandoffResume: when a shard's placed node dies after
// checkpointing part of its range to a shared data directory, the
// re-placed shard must resume the orphan journal — producing identical
// bytes while recomputing only the unjournaled tail.
func TestFleetShardHandoffResume(t *testing.T) {
	shared := t.TempDir()
	spec := server.SimulateSpec{NumRefs: 24, RefLen: 60, Seed: 7, Sub: 0.02, Coverage: 4}
	want := groundTruth(t, spec)

	wa := startDrillWorker(t, shared, true)
	wb := startDrillWorker(t, shared, true)
	coord, err := New(Config{
		Nodes:            []NodeConfig{{Name: "a", BaseURL: wa.url()}, {Name: "b", BaseURL: wb.url()}},
		ShardClusters:    spec.NumRefs, // one shard: one journal, one handoff
		MaxShardAttempts: 6,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     150 * time.Millisecond,
		BreakerThreshold: 1,
		BreakerCooldown:  time.Minute,
		Client:           drillClientCfg(4),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer coord.Close()

	// Stage the doomed node's death: rendezvous says where the shard will
	// land; write the journal that node would have left behind (10 of 24
	// clusters committed, exactly as the server would have journaled them)
	// and blackhole it before the coordinator reaches it.
	vspec := spec
	if err := vspec.Validate(); err != nil {
		t.Fatal(err)
	}
	sh := shardsOf(vspec, coord.cfg.ShardClusters)[0]
	ranked := rank(coord.nodes, sh.key)
	workers := map[string]*drillWorker{"a": wa, "b": wb}
	doomed, survivor := workers[ranked[0].name], workers[ranked[1].name]

	const committed = 10
	ch, cov, err := vspec.Simulator()
	if err != nil {
		t.Fatal(err)
	}
	sim := channel.Simulator{Channel: ch, Coverage: cov}
	path := filepath.Join(shared, fmt.Sprintf("sim-%016x.ckpt", sh.key))
	ckpt, err := channel.OpenCheckpoint(path, "simulated", vspec.References(), vspec.Seed, sim.Describe())
	if err != nil {
		t.Fatalf("open checkpoint: %v", err)
	}
	if _, err := sim.SimulateRangeCheckpoint(context.Background(), "simulated", vspec.References(), vspec.Seed, 0, committed, ckpt); err != nil {
		t.Fatalf("pre-journal: %v", err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}
	doomed.proxy.SetBlackhole(true)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	data, rep, err := coord.Simulate(ctx, spec)
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("resumed dataset differs from ground truth")
	}

	st := rep.Shards[0]
	if !st.Resumed {
		t.Errorf("shard did not resume the orphan journal: %+v", st)
	}
	if st.Node != ranked[1].name {
		t.Errorf("shard produced by %q, want survivor %q", st.Node, ranked[1].name)
	}
	if st.Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (the placement moved)", st.Attempts)
	}
	if got := coord.Registry().Snapshot()["dnasimd_fleet_shard_replacements_total"]; got < 1 {
		t.Errorf("replacements = %v, want >= 1", got)
	}
	if got := doomed.transmits.Load(); got != 0 {
		t.Errorf("doomed node transmitted %d reads; the blackhole should have kept it idle", got)
	}

	// Resume, not recompute: the survivor owes exactly the reads of the
	// unjournaled tail — reads per cluster are deterministic, so the count
	// is exact.
	ds, err := dataset.Read(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	tail := 0
	for i := committed; i < ds.NumClusters(); i++ {
		tail += len(ds.Clusters[i].Reads)
	}
	if got := survivor.transmits.Load(); got != int64(tail) {
		t.Errorf("survivor transmitted %d reads, want exactly the %d-read tail (resume must skip journaled clusters)", got, tail)
	}
}
