package fleet

// The kill-restart drill runs the real dnasimd coordinator binary as a
// subprocess, SIGKILLs it mid-job — the one failure mode an in-process
// test cannot stage honestly — restarts it on the same port and data dir,
// and demands the crash be invisible: the job completes under its original
// ID with bytes identical to a single-node run, shards finished before the
// kill come back from the durable spill, and every ledger and spill file
// scrubs clean afterwards.

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/durable"
	"dnastore/internal/server"
)

var (
	simdOnce sync.Once
	simdBin  string
	simdErr  error
)

// buildDnasimd compiles the dnasimd binary once per test process, with the
// race detector so the drill exercises the same build fleetcheck runs.
func buildDnasimd(t *testing.T) string {
	t.Helper()
	simdOnce.Do(func() {
		dir, err := os.MkdirTemp("", "dnasimd-drill")
		if err != nil {
			simdErr = err
			return
		}
		simdBin = filepath.Join(dir, "dnasimd")
		cmd := exec.Command("go", "build", "-race", "-o", simdBin, "dnastore/cmd/dnasimd")
		if out, err := cmd.CombinedOutput(); err != nil {
			simdErr = fmt.Errorf("%v\n%s", err, out)
		}
	})
	if simdErr != nil {
		t.Fatalf("building dnasimd: %v", simdErr)
	}
	return simdBin
}

// freePort reserves a listen port and releases it for the subprocess. Go
// listeners set SO_REUSEADDR, so the coordinator can rebind it across the
// kill/restart cycle.
func freePort(t *testing.T) int {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	port := l.Addr().(*net.TCPAddr).Port
	l.Close()
	return port
}

// startCoordinatorProc launches the dnasimd coordinator subprocess.
func startCoordinatorProc(t *testing.T, bin string, port int, dataDir, nodes string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-coordinator",
		"-addr", fmt.Sprintf("127.0.0.1:%d", port),
		"-nodes", nodes,
		"-data-dir", dataDir,
		"-shard-clusters", "4",
		"-max-shard-attempts", "8",
		"-probe-interval", "50ms",
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start coordinator: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitReady polls /readyz until the coordinator admits work. Recovery runs
// before the listener binds, so 200 here means the ledger replay is done.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("coordinator not ready after 30s (last: %v)", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// scrapeMetric reads one counter/gauge from a live /metrics endpoint.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, name+" ") && !strings.HasPrefix(line, name+"{") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && (fields[0] == name || strings.HasPrefix(fields[0], name+"{")) {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("parse metric %s: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestFleetDrillKillRestart: SIGKILL the coordinator process mid-job,
// restart it on the same port and data dir, and the admitted job must
// complete byte-identically under its original ID — with the restart
// visible only in the recovery metrics and the ledger's replay marker.
func TestFleetDrillKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("kill-restart drill builds binaries")
	}
	bin := buildDnasimd(t)
	spec := testSpec(61)
	want := groundTruth(t, spec)
	dataDir := t.TempDir()

	// In-process workers survive the coordinator's death, exactly like real
	// worker nodes would. One is slow enough that the job is reliably still
	// in flight when the kill lands.
	w1 := startDrillWorker(t, t.TempDir(), false)
	w2 := startDrillWorker(t, t.TempDir(), false)
	w1.delayNS.Store(int64(2 * time.Millisecond))
	w2.delayNS.Store(int64(25 * time.Millisecond))
	nodes := fmt.Sprintf("w1=%s,w2=%s", w1.url(), w2.url())

	port := freePort(t)
	base := fmt.Sprintf("http://127.0.0.1:%d", port)
	proc1 := startCoordinatorProc(t, bin, port, dataDir, nodes)
	waitReady(t, base)

	cli := client.New(client.Config{BaseURL: base, PollInterval: 10 * time.Millisecond, Seed: 62,
		MaxAttempts: 4, BaseBackoff: 10 * time.Millisecond, MaxBackoff: 100 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	st, _, err := cli.SubmitKeyed(ctx, "kill-drill", testJobSpecOf(spec))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	// Kill once at least one shard result is durably spilled — so the
	// restart provably resumes from disk — and while the slow worker still
	// owes work, so the job cannot have finished.
	deadline := time.Now().Add(30 * time.Second)
	for scrapeMetric(t, base, "dnasimd_fleet_spill_writes_total") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("no shard spilled within 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := proc1.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	proc1.Wait()

	// Restart on the same port and data dir. Readiness implies the ledger
	// replay already ran.
	w2.delayNS.Store(int64(2 * time.Millisecond))
	proc2 := startCoordinatorProc(t, bin, port, dataDir, nodes)
	waitReady(t, base)
	if got := scrapeMetric(t, base, "dnasimd_fleet_ledger_replays_total"); got < 1 {
		t.Errorf("ledger replays = %v, want >= 1", got)
	}
	if got := scrapeMetric(t, base, "dnasimd_fleet_recovered_jobs_total"); got < 1 {
		t.Errorf("recovered jobs = %v, want >= 1", got)
	}

	// The job the killed process admitted must complete under its old ID.
	if got := waitTerminal(t, cli, st.ID); got.State != server.StateDone {
		t.Fatalf("recovered job settled %s: %s", got.State, got.Error)
	}
	data, err := cli.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("recovered dataset differs from single-node ground truth")
	}
	if got := scrapeMetric(t, base, "dnasimd_fleet_spill_hits_total"); got < 1 {
		t.Errorf("spill hits = %v, want >= 1 (pre-kill shards must come from the spill, not recompute)", got)
	}

	// A duplicate spec under a fresh key must be served without any worker
	// touching a strand: the shards live in the restarted coordinator's
	// cache and spill.
	transmitsBefore := w1.transmits.Load() + w2.transmits.Load()
	st2, replayed, err := cli.SubmitKeyed(ctx, "kill-drill-dup", testJobSpecOf(spec))
	if err != nil || replayed {
		t.Fatalf("duplicate submit: replayed=%v err=%v", replayed, err)
	}
	if got := waitTerminal(t, cli, st2.ID); got.State != server.StateDone {
		t.Fatalf("duplicate job settled %s: %s", got.State, got.Error)
	}
	data2, err := cli.Result(ctx, st2.ID)
	if err != nil {
		t.Fatalf("duplicate result: %v", err)
	}
	if !bytes.Equal(data2, want) {
		t.Fatal("duplicate-spec dataset differs from ground truth")
	}
	if got := w1.transmits.Load() + w2.transmits.Load(); got != transmitsBefore {
		t.Errorf("duplicate run cost %d worker transmits, want 0", got-transmitsBefore)
	}

	// Same Idempotency-Key as the killed process accepted: replayed, same ID.
	st3, replayed, err := cli.SubmitKeyed(ctx, "kill-drill", testJobSpecOf(spec))
	if err != nil || !replayed || st3.ID != st.ID {
		t.Errorf("idempotent replay across kill: id=%s replayed=%v err=%v, want %s/true/nil", st3.ID, replayed, err, st.ID)
	}

	// Graceful shutdown, then scrub the surviving state: every ledger is an
	// intact journal, every spill entry an intact container.
	proc2.Process.Signal(syscall.SIGTERM)
	waitExit(t, proc2)

	wals, err := filepath.Glob(filepath.Join(dataDir, "ledger", "*.wal"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("ledger dir: %v files, err %v", len(wals), err)
	}
	for _, p := range wals {
		rep, err := durable.ScrubJournalFile(p)
		if err != nil {
			t.Fatalf("scrub %s: %v", p, err)
		}
		if !durable.JournalIntact(rep) {
			t.Errorf("ledger %s not intact after the drill: %s", filepath.Base(p), rep.Summary())
		}
	}
	spills, err := filepath.Glob(filepath.Join(dataDir, "spill", "*.dnac"))
	if err != nil || len(spills) == 0 {
		t.Fatalf("spill dir: %v files, err %v", len(spills), err)
	}
	for _, p := range spills {
		rep, err := durable.ScrubFile(p)
		if err != nil {
			t.Fatalf("scrub %s: %v", p, err)
		}
		if !rep.Intact() {
			t.Errorf("spill %s not intact after the drill: %s", filepath.Base(p), rep.Summary())
		}
	}
}

func waitExit(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		cmd.Process.Kill()
		t.Fatal("coordinator did not exit within 15s of SIGTERM")
	}
}
