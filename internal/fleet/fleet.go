// Package fleet is the multi-node coordinator for dnasimd: it splits one
// simulation spec into cluster-range shards, places each shard on a worker
// node by rendezvous hashing, and merges the shard outputs into a dataset
// byte-identical to a single-node run of the same spec.
//
// The merge is correct by construction, not by coordination: every
// cluster's reads derive only from (seed, global cluster index) — the
// split-RNG scheme of internal/channel — and the dataset text format
// serialises clusters independently, so concatenating shard outputs in
// range order is the whole merge.
//
// Robustness is layered the same way the single-node server layers it:
//
//   - Placement: rendezvous (highest-random-weight) hashing, so the shard
//     map is deterministic, stateless, and minimally disturbed when a
//     node dies — only the dead node's shards move.
//   - Node health: a /readyz probe loop plus a per-node circuit breaker;
//     shards are placed only on nodes both signals trust.
//   - Failure handling: failed shards retry on the next-ranked survivor.
//     Workers sharing a data directory journal per-shard checkpoints
//     under the shard-spec fingerprint, so a re-placed shard resumes the
//     dead node's progress instead of recomputing it.
//   - Hedging (opt-in): a straggling shard fires a backup request on the
//     next-ranked node; first result wins.
//   - Degraded completion (opt-in): when every placement of a shard
//     fails, the merge fills the range with zero-read erasure clusters
//     and reports exactly which shards were lost.
//   - Caching: shard results are content-addressed by shard-spec
//     fingerprint with single-flight dedupe, so duplicate submissions
//     cost one simulation.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
	"dnastore/internal/server"
)

// Config parameterises a Coordinator. Nodes is required; everything else
// has a production-shaped default.
type Config struct {
	// Nodes are the worker dnasimd instances. At least one is required.
	Nodes []NodeConfig
	// ShardClusters is the target cluster count per shard (default 64).
	// The last shard of a spec may be shorter.
	ShardClusters int
	// MaxShardAttempts bounds how many placements one shard gets before
	// it is abandoned (default 2·len(Nodes), at least 3).
	MaxShardAttempts int
	// HedgeAfter, when positive, fires a backup request for a shard still
	// running after this long on its placed node. First result wins.
	HedgeAfter time.Duration
	// AllowPartial turns total shard failure into degraded completion:
	// the merged dataset carries zero-read erasure clusters for lost
	// shards and the report says which. When false, a lost shard fails
	// the whole job.
	AllowPartial bool
	// CacheCapacity bounds the shard result cache (default 256 entries).
	CacheCapacity int
	// DataDir, when set, makes the coordinator crash-consistent: every
	// accepted job is journaled to a write-ahead ledger under
	// DataDir/ledger before the client sees 202, completed shard results
	// spill to durable containers under DataDir/spill, and a restart
	// replays the ledger — re-adopting in-flight jobs under their old IDs
	// and Idempotency-Keys — before serving. Empty disables durability:
	// the coordinator is then exactly as forgetful as before.
	DataDir string
	// SpillBytes bounds the on-disk spill store (default 256 MiB); the
	// FIFO garbage collector evicts oldest entries beyond it.
	SpillBytes int64
	// DrainGrace bounds how long Drain waits for in-flight jobs to finish
	// or park before sealing the ledger (default 10s).
	DrainGrace time.Duration
	// LedgerKeep bounds how many terminal job ledgers are retained for
	// replay/audit before FIFO pruning (default 512).
	LedgerKeep int
	// ProbeInterval is the /readyz health-probe cadence (default 1s;
	// negative disables probing — breakers alone then gate placement).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange (default 2s).
	ProbeTimeout time.Duration
	// BreakerThreshold and BreakerCooldown configure each node's circuit
	// breaker (defaults 3 failures, 5s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Client is the template for per-node clients; BaseURL is overridden
	// per node. The zero value gets the client package's defaults.
	Client client.Config
	// Logger receives structured coordinator logs (default: discard).
	Logger *slog.Logger
	// Registry receives fleet metrics; nil allocates a private registry.
	Registry *obs.Registry
}

// Coordinator drives a fleet of worker dnasimd nodes. It implements
// http.Handler with the same API surface as a single dnasimd instance, so
// clients (and dnaload) target a coordinator unchanged.
type Coordinator struct {
	cfg     Config
	nodes   []*node
	cache   *resultCache
	ledger  *ledgerStore
	spill   *spillStore
	metrics *fleetMetrics
	slog    *slog.Logger

	mu           sync.Mutex
	jobs         map[string]*fleetJob
	idem         map[string]string
	nextID       int
	closed       bool
	phase        server.Phase
	drainStarted time.Time

	stop      chan struct{}
	probeWG   sync.WaitGroup
	jobWG     sync.WaitGroup
	drainOnce sync.Once
	mux       *http.ServeMux
}

// phaseRecovering is the coordinator-only boot phase: the ledger is being
// replayed and admission sheds; it flips to serving before New returns.
const phaseRecovering = server.Phase("recovering")

// New returns a Coordinator over cfg.Nodes with its probe loop running.
func New(cfg Config) (*Coordinator, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("fleet: no nodes configured")
	}
	seen := make(map[string]bool, len(cfg.Nodes))
	for _, nc := range cfg.Nodes {
		if nc.Name == "" || nc.BaseURL == "" {
			return nil, fmt.Errorf("fleet: node needs name and base URL, got %+v", nc)
		}
		if seen[nc.Name] {
			return nil, fmt.Errorf("fleet: duplicate node name %q", nc.Name)
		}
		seen[nc.Name] = true
	}
	if cfg.ShardClusters <= 0 {
		cfg.ShardClusters = 64
	}
	if cfg.MaxShardAttempts <= 0 {
		cfg.MaxShardAttempts = 2 * len(cfg.Nodes)
		if cfg.MaxShardAttempts < 3 {
			cfg.MaxShardAttempts = 3
		}
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = time.Second
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	if cfg.DrainGrace <= 0 {
		cfg.DrainGrace = 10 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheCapacity),
		slog:  cfg.Logger,
		jobs:  make(map[string]*fleetJob),
		idem:  make(map[string]string),
		phase: server.PhaseServing,
		stop:  make(chan struct{}),
	}
	if cfg.DataDir != "" {
		c.phase = phaseRecovering
		var err error
		if c.ledger, err = openLedgerStore(filepath.Join(cfg.DataDir, "ledger"), cfg.LedgerKeep, c.slog); err != nil {
			return nil, err
		}
		if c.spill, err = openSpillStore(filepath.Join(cfg.DataDir, "spill"), cfg.SpillBytes, c.slog); err != nil {
			return nil, err
		}
		c.cache.spill = c.spill
	}
	for _, nc := range cfg.Nodes {
		ccfg := cfg.Client
		ccfg.BaseURL = nc.BaseURL
		n := &node{
			name: nc.Name,
			cli:  client.New(ccfg),
			brk:  server.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		n.healthy.Store(true)
		c.nodes = append(c.nodes, n)
	}
	c.metrics = newFleetMetrics(c, cfg.Registry)
	c.cache.evictions = c.metrics.evictions
	if c.spill != nil {
		c.spill.hits = c.metrics.spillHits
		c.spill.writes = c.metrics.spillWrites
		c.spill.gc = c.metrics.spillGC
	}
	c.routes()
	if c.ledger != nil {
		// Replay the write-ahead ledger before serving: restore every
		// journaled job (terminal jobs with their verdicts, in-flight and
		// completed-but-unfetched jobs by re-adoption), rebind
		// Idempotency-Keys, and only then flip the phase — so a client
		// that was mid-poll when the old process died finds its job ID
		// answering again, never a permanent 404.
		c.recover()
	}
	c.mu.Lock()
	c.phase = server.PhaseServing
	c.mu.Unlock()
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Registry returns the coordinator's metrics registry (also served from
// GET /metrics).
func (c *Coordinator) Registry() *obs.Registry { return c.cfg.Registry }

// Close stops the probe loop. In-flight jobs keep running. For a full
// shutdown that parks in-flight work for a restart, use Drain.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.stop)
	}
	c.mu.Unlock()
	c.probeWG.Wait()
}

// errDrainStop is the cancel cause Drain hands in-flight jobs: unlike a
// client cancel it is NOT a terminal verdict — the job stays non-terminal
// in its ledger, exactly so the next boot re-adopts it.
var errDrainStop = errors.New("fleet: coordinator draining; job parks for restart-resume")

// Drain executes the coordinator's graceful shutdown: admission stops
// (submissions and /readyz shed 503 + Retry-After), in-flight jobs are
// told to park — their worker calls are canceled, but their ledgers keep
// them non-terminal so a restart re-adopts them against workers that kept
// computing — and once every job goroutine has settled (bounded by
// DrainGrace) the ledger files are fsynced shut. Idempotent.
func (c *Coordinator) Drain() {
	c.drainOnce.Do(func() {
		c.mu.Lock()
		c.phase = server.PhaseDraining
		c.drainStarted = time.Now()
		var live []*fleetJob
		for _, j := range c.jobs {
			j.mu.Lock()
			if !j.state.Terminal() {
				live = append(live, j)
			}
			j.mu.Unlock()
		}
		c.mu.Unlock()
		c.slog.Info("draining", "in_flight", len(live), "grace", c.cfg.DrainGrace)
		for _, j := range live {
			j.mu.Lock()
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel(errDrainStop)
			}
		}
		settled := make(chan struct{})
		go func() { c.jobWG.Wait(); close(settled) }()
		select {
		case <-settled:
		case <-time.After(c.cfg.DrainGrace):
			c.slog.Warn("drain grace expired with jobs still settling")
		}
		c.Close()
		c.mu.Lock()
		jobs := c.jobs
		c.phase = server.PhaseStopped
		c.mu.Unlock()
		// Seal every still-open ledger. Terminal jobs already closed
		// theirs; this catches parked jobs, whose last synced frame is
		// the re-adoption contract.
		for _, j := range jobs {
			j.led.close()
		}
		c.slog.Info("drained; ledger sealed")
	})
}

// probeLoop refreshes every node's health on a fixed cadence. Probes run
// concurrently so one blackholed node's timeout cannot delay the verdict
// on the others.
func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			var wg sync.WaitGroup
			for _, n := range c.nodes {
				wg.Add(1)
				go func(n *node) {
					defer wg.Done()
					was := n.healthy.Load()
					n.probe(context.Background(), c.cfg.ProbeTimeout)
					if now := n.healthy.Load(); now != was {
						c.slog.Warn("node health changed", "node", n.name, "healthy", now)
					}
				}(n)
			}
			wg.Wait()
		}
	}
}

// shard is one cluster-range slice of a spec.
type shard struct {
	index        int
	first, count int
	spec         server.SimulateSpec
	// key is the shard spec's fingerprint: the cache address, the
	// placement key, and (server-side) the checkpoint journal name.
	key uint64
}

// shardsOf splits a validated spec into cluster-range shards of at most
// per clusters each.
func shardsOf(spec server.SimulateSpec, per int) []shard {
	total := spec.NumClusters()
	shards := make([]shard, 0, (total+per-1)/per)
	for first := 0; first < total; first += per {
		count := per
		if first+count > total {
			count = total - first
		}
		sub := spec
		sub.ClusterFirst = first
		sub.ClusterCount = count
		shards = append(shards, shard{
			index: len(shards), first: first, count: count,
			spec: sub, key: sub.Fingerprint(),
		})
	}
	return shards
}

// ShardStatus reports how one shard fared.
type ShardStatus struct {
	Index int `json:"index"`
	First int `json:"first"`
	Count int `json:"count"`
	// Node is the worker that produced the shard ("" for a cache hit or
	// an erased shard).
	Node string `json:"node,omitempty"`
	// Attempts counts placements tried (0 for a cache hit).
	Attempts int `json:"attempts,omitempty"`
	// CacheHit: served by the content-addressed cache (finished entry or
	// someone else's in-flight computation).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Resumed: the producing node reported the shard's checkpoint journal
	// in its /drainz inventory before running it — the re-placement was a
	// handoff resume, not a recompute.
	Resumed bool `json:"resumed,omitempty"`
	// Hedged: a backup request was fired for this shard.
	Hedged bool `json:"hedged,omitempty"`
	// Erased: every placement failed and the range was filled with
	// zero-read erasure clusters (AllowPartial mode).
	Erased bool   `json:"erased,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Report is the per-shard account of one fleet simulation.
type Report struct {
	TotalClusters int           `json:"total_clusters"`
	Shards        []ShardStatus `json:"shards"`
	CacheHits     int           `json:"cache_hits"`
	Erased        int           `json:"erased"`
}

// ErasureError is returned when shards were lost and AllowPartial is off.
type ErasureError struct {
	// Erased lists the lost shards.
	Erased []ShardStatus
}

func (e *ErasureError) Error() string {
	return fmt.Sprintf("fleet: %d shard(s) lost after exhausting placements (first: shard %d, clusters [%d,%d): %s)",
		len(e.Erased), e.Erased[0].Index, e.Erased[0].First,
		e.Erased[0].First+e.Erased[0].Count, e.Erased[0].Error)
}

// Simulate runs one simulation spec across the fleet and returns the
// merged dataset bytes — byte-identical to a single-node run — plus the
// per-shard report. The spec must be unsharded; the coordinator owns the
// split.
func (c *Coordinator) Simulate(ctx context.Context, spec server.SimulateSpec) ([]byte, Report, error) {
	return c.simulateJob(ctx, spec, nil)
}

// simulateJob is Simulate with the job's write-ahead ledger attached (nil
// for direct callers): shard state transitions are journaled as they
// happen, so a post-crash operator can read exactly how far a job got.
func (c *Coordinator) simulateJob(ctx context.Context, spec server.SimulateSpec, led *jobLedger) ([]byte, Report, error) {
	if spec.ClusterFirst != 0 || spec.ClusterCount != 0 {
		return nil, Report{}, errors.New("fleet: spec already carries a cluster range; the coordinator owns the split")
	}
	// Validate applies defaults (coverage, models) in place. Sharding must
	// happen after that, so the shard fingerprints the coordinator uses
	// for caching and placement equal the fingerprints the workers derive
	// after their own validation — that equality is what names one shared
	// checkpoint journal per shard.
	if err := spec.Validate(); err != nil {
		return nil, Report{}, fmt.Errorf("fleet: %w", err)
	}
	shards := shardsOf(spec, c.cfg.ShardClusters)
	rep := Report{TotalClusters: spec.NumClusters(), Shards: make([]ShardStatus, len(shards))}
	results := make([][]byte, len(shards))

	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], rep.Shards[i] = c.runShard(ctx, shards[i], led)
		}(i)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, rep, err
	}

	// Merge in range order. Lost shards become explicit erasures (every
	// cluster present, zero reads) or fail the job, per AllowPartial.
	var erased []ShardStatus
	var refs []dna.Strand
	var buf bytes.Buffer
	for i := range shards {
		st := &rep.Shards[i]
		if st.CacheHit {
			rep.CacheHits++
		}
		if results[i] == nil {
			st.Erased = true
			rep.Erased++
			c.metrics.shardsErased.Inc()
			led.shardEvent(ledgerShardEvent{Index: i, Event: "erased", Error: st.Error})
			erased = append(erased, *st)
			if refs == nil {
				refs = spec.References()
			}
			buf.Write(erasedShardBytes(refs, shards[i].first, shards[i].count))
			continue
		}
		c.metrics.shardsDone.Inc()
		buf.Write(results[i])
	}
	if len(erased) > 0 {
		c.slog.Warn("degraded completion", "erased_shards", len(erased), "total_shards", len(shards))
		if !c.cfg.AllowPartial {
			return nil, rep, &ErasureError{Erased: erased}
		}
	}
	return buf.Bytes(), rep, nil
}

// erasedShardBytes renders the cluster range [first, first+count) as
// zero-read erasure clusters — the dataset representation of "this strand
// was lost entirely", which keeps the merged dataset structurally complete
// (cluster i still answers for reference i) while making the loss visible
// to every downstream consumer.
func erasedShardBytes(refs []dna.Strand, first, count int) []byte {
	ds := &dataset.Dataset{Clusters: make([]dataset.Cluster, count)}
	for i := 0; i < count; i++ {
		ds.Clusters[i] = dataset.Cluster{Ref: refs[first+i]}
	}
	var buf bytes.Buffer
	ds.Write(&buf)
	return buf.Bytes()
}

// runShard produces one shard's bytes through the cache.
func (c *Coordinator) runShard(ctx context.Context, sh shard, led *jobLedger) ([]byte, ShardStatus) {
	st := ShardStatus{Index: sh.index, First: sh.first, Count: sh.count}
	data, hit, err := c.cache.do(ctx, sh.key, func() ([]byte, error) {
		c.metrics.cacheMisses.Inc()
		return c.computeShard(ctx, sh, &st, led)
	})
	if hit {
		c.metrics.cacheHits.Inc()
		st.CacheHit = true
		led.shardEvent(ledgerShardEvent{Index: sh.index, Event: "cache", Key: fmt.Sprintf("%016x", sh.key)})
	}
	if err != nil {
		st.Error = err.Error()
		return nil, st
	}
	return data, st
}

// computeShard places a shard and drives it to bytes: ranked placement,
// per-attempt hedging, and re-placement on the next-ranked survivor after
// a failure, up to MaxShardAttempts placements.
func (c *Coordinator) computeShard(ctx context.Context, sh shard, st *ShardStatus, led *jobLedger) ([]byte, error) {
	ranked := rank(c.nodes, sh.key)
	tried := make(map[string]int, len(ranked))
	shardKey := fmt.Sprintf("%016x", sh.key)
	var prev *node
	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxShardAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		primary := pickNode(ranked, tried, attempt)
		tried[primary.name]++
		st.Attempts++
		if prev != nil && primary != prev {
			// The shard moved to a different node: a re-placement. On a
			// shared data directory the new node resumes the old node's
			// fingerprint-named journal; /drainz tells us whether that
			// handoff is actually available.
			c.metrics.replacements.Inc()
			if c.shardJournalVisible(ctx, primary, sh) {
				st.Resumed = true
				led.shardEvent(ledgerShardEvent{Index: sh.index, Event: "resumed", Node: primary.name, Key: shardKey})
			}
			c.slog.Warn("shard re-placed", "shard", sh.index, "from", prev.name,
				"to", primary.name, "resumable", st.Resumed, "cause", lastErr)
		}
		prev = primary
		led.shardEvent(ledgerShardEvent{Index: sh.index, Event: "placed", Node: primary.name, Key: shardKey})
		backup := pickBackup(ranked, primary)
		data, winner, err := c.attempt(ctx, primary, backup, sh, st)
		if err == nil {
			st.Node = winner.name
			led.shardEvent(ledgerShardEvent{Index: sh.index, Event: "done", Node: winner.name, Key: shardKey})
			return data, nil
		}
		lastErr = err
		led.shardEvent(ledgerShardEvent{Index: sh.index, Event: "failed", Node: primary.name, Key: shardKey, Error: err.Error()})
	}
	return nil, fmt.Errorf("fleet: shard %d gave up after %d placement(s): %w", sh.index, st.Attempts, lastErr)
}

// pickNode selects the next placement for a shard: the highest-ranked
// eligible node it has not tried, then the least-tried eligible node, then
// an untried node regardless of health (probes can be stale), and as a
// last resort round-robin through the ranking — a placement is always
// returned, because refusing to try is the one behavior that guarantees
// shard loss.
func pickNode(ranked []*node, tried map[string]int, attempt int) *node {
	for _, n := range ranked {
		if n.eligible() && tried[n.name] == 0 {
			return n
		}
	}
	var best *node
	for _, n := range ranked {
		if n.eligible() && (best == nil || tried[n.name] < tried[best.name]) {
			best = n
		}
	}
	if best != nil {
		return best
	}
	for _, n := range ranked {
		if tried[n.name] == 0 {
			return n
		}
	}
	return ranked[attempt%len(ranked)]
}

// pickBackup returns the hedge target: the highest-ranked eligible node
// other than the primary, nil when the fleet has no second opinion.
func pickBackup(ranked []*node, primary *node) *node {
	for _, n := range ranked {
		if n != primary && n.eligible() {
			return n
		}
	}
	return nil
}

// shardJournalVisible asks a node's /drainz whether the shard's
// fingerprint-named checkpoint journal is in its data directory — the
// signal that a re-placed shard will resume instead of recompute.
func (c *Coordinator) shardJournalVisible(ctx context.Context, n *node, sh shard) bool {
	dctx, cancel := context.WithTimeout(ctx, c.cfg.ProbeTimeout)
	defer cancel()
	dz, err := n.cli.Drainz(dctx)
	if err != nil {
		return false
	}
	want := fmt.Sprintf("%016x", sh.key)
	for _, j := range dz.Journals {
		if j.Fingerprint == want {
			return true
		}
	}
	return false
}

// attempt runs one placement, optionally hedged: the primary call starts
// immediately; if HedgeAfter elapses with no result and a backup node
// exists, a backup call races it. First success wins and cancels the
// loser. Hedging is safe because shard output is deterministic — both
// copies would produce identical bytes — and cheap to reason about
// because the cache has already deduplicated concurrent callers.
func (c *Coordinator) attempt(ctx context.Context, primary, backup *node, sh shard, st *ShardStatus) ([]byte, *node, error) {
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		data []byte
		err  error
		n    *node
	}
	ch := make(chan outcome, 2) // buffered: a losing call must never block on delivery
	launch := func(n *node) {
		go func() {
			data, err := c.callNode(actx, n, sh)
			ch <- outcome{data: data, err: err, n: n}
		}()
	}
	launch(primary)
	inflight := 1
	var hedge <-chan time.Time
	if c.cfg.HedgeAfter > 0 && backup != nil {
		t := time.NewTimer(c.cfg.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	var lastErr error
	for inflight > 0 {
		select {
		case out := <-ch:
			inflight--
			if out.err == nil {
				return out.data, out.n, nil
			}
			lastErr = out.err
		case <-hedge:
			hedge = nil
			c.metrics.hedgesFired.Inc()
			st.Hedged = true
			c.slog.Info("hedge fired", "shard", sh.index, "primary", primary.name, "backup", backup.name)
			launch(backup)
			inflight++
		case <-ctx.Done():
			// Drain nothing: the calls hold actx (canceled via defer) and
			// the channel is buffered, so they settle without us.
			return nil, nil, ctx.Err()
		}
	}
	return nil, nil, lastErr
}

// callNode runs one shard job on one node under that node's breaker. A
// failure caused by our own context — job canceled, hedge lost — is
// shielded from the breaker: the node did nothing wrong, and counting it
// would let a burst of client cancels blackball a healthy node.
func (c *Coordinator) callNode(ctx context.Context, n *node, sh shard) ([]byte, error) {
	var data []byte
	var ctxErr error
	spec := sh.spec
	err := n.brk.Do(func() error {
		res := n.cli.Run(ctx, server.JobSpec{Kind: server.KindSimulate, Simulate: &spec})
		switch {
		case res.Outcome == client.OutcomeSucceeded:
			data = res.Data
			return nil
		case ctx.Err() != nil:
			ctxErr = ctx.Err()
			return nil
		default:
			return fmt.Errorf("fleet: shard %d on %s settled %s: %w", sh.index, n.name, res.Outcome, res.Err)
		}
	})
	switch {
	case err != nil:
		return nil, err
	case ctxErr != nil:
		return nil, ctxErr
	}
	return data, nil
}
