package fleet

import (
	"container/list"
	"context"
	"sync"

	"dnastore/internal/obs"
)

// resultCache is the content-addressed shard result cache with
// single-flight deduplication. Keys are shard-spec fingerprints — the
// range fields ride the fingerprint, so (shard range, spec) addresses the
// bytes. Entries are immutable once filled: a spec is deterministic by
// construction (every stochastic choice derives from seed and global
// cluster index), so the first successful computation of a key is the
// only possible value and can be shared forever.
//
// Single-flight: concurrent requests for one key share a single
// computation — the first caller computes, the rest wait on the entry.
// Failures are never cached; the failed entry is removed so the next
// request computes afresh (on a healthier node, typically).
//
// With a spill store attached the memory cache becomes a read-through
// layer: a memory miss consults the durable spill before computing, and
// every computed success spills. The single-flight entry covers the spill
// read too, so concurrent callers of one key cost one disk read.
type resultCache struct {
	// spill, when set, is the durable layer under the memory entries.
	spill *spillStore
	// evictions counts FIFO evictions from the memory layer (nil-safe).
	evictions *obs.Counter

	mu  sync.Mutex
	cap int
	ent map[uint64]*cacheEntry
	// fifo tracks filled entries in completion order for eviction. FIFO
	// rather than LRU on purpose: entries are immutable and equally cheap
	// to recompute, and a duplicate-spec replay hits recent keys anyway.
	fifo *list.List // of uint64 keys
}

type cacheEntry struct {
	ready chan struct{} // closed when data/err are set
	data  []byte
	err   error
}

func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		capacity = 256
	}
	return &resultCache{cap: capacity, ent: make(map[uint64]*cacheEntry), fifo: list.New()}
}

// do returns the cached bytes for key, or computes them exactly once per
// concurrent flight. hit reports whether this caller was served without a
// fresh computation: by someone else's (finished or in-flight) flight, or
// by the durable spill.
func (c *resultCache) do(ctx context.Context, key uint64, compute func() ([]byte, error)) (data []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.ent[key]; ok {
		c.mu.Unlock()
		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if e.err != nil {
			// The flight this caller joined failed; report the failure
			// without recording a hit — shared misery is not a cache hit.
			return nil, false, e.err
		}
		return e.data, true, nil
	}
	e := &cacheEntry{ready: make(chan struct{})}
	c.ent[key] = e
	c.mu.Unlock()

	fromSpill := false
	if c.spill != nil {
		if data, ok := c.spill.get(key); ok {
			e.data, fromSpill = data, true
		}
	}
	if !fromSpill {
		e.data, e.err = compute()
	}
	c.mu.Lock()
	if e.err != nil {
		// Never cache a failure: the next request should get a fresh
		// attempt, not a replay of a dead node's refusal.
		delete(c.ent, key)
	} else {
		c.fifo.PushBack(key)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	if e.err != nil {
		return nil, false, e.err
	}
	if !fromSpill && c.spill != nil {
		c.spill.put(key, e.data)
	}
	return e.data, fromSpill, nil
}

// evictLocked enforces the FIFO capacity bound. Caller holds c.mu.
func (c *resultCache) evictLocked() {
	for c.fifo.Len() > c.cap {
		old := c.fifo.Remove(c.fifo.Front()).(uint64)
		delete(c.ent, old)
		if c.evictions != nil {
			c.evictions.Inc()
		}
	}
}

// seed installs an already-known value (recovery restoring a merged job
// from spilled shards) without a flight. A present entry wins: it is
// either identical or already in flight toward the identical bytes.
func (c *resultCache) seed(key uint64, data []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.ent[key]; ok {
		return
	}
	e := &cacheEntry{ready: make(chan struct{}), data: data}
	close(e.ready)
	c.ent[key] = e
	c.fifo.PushBack(key)
	c.evictLocked()
}

// len returns the number of cached (or in-flight) entries.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.ent)
}
