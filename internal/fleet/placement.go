package fleet

import (
	"context"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/server"
)

// NodeConfig names one worker dnasimd instance.
type NodeConfig struct {
	// Name is the node's stable identity. Placement hashes the name, not
	// the URL, so a node can move addresses (restart, failover proxy)
	// without reshuffling every shard in the fleet.
	Name string
	// BaseURL is the node's API root (or its chaos proxy in drills).
	BaseURL string
}

// node is the coordinator's view of one worker: a resilient client, a
// per-node circuit breaker, and the latest health-probe verdict.
//
// The two health signals fail on different timescales and cover different
// faults. The breaker trips on consecutive shard failures — it notices a
// node that accepts connections but cannot finish work. The /readyz probe
// notices a node that stopped admitting (draining, dead, blackholed)
// before any shard is risked on it. A node is placed only when both agree.
type node struct {
	name string
	cli  *client.Client
	brk  *server.Breaker

	// healthy is the latest probe verdict. Nodes start healthy: the fleet
	// would otherwise refuse all work until the first probe tick, and a
	// wrong optimistic start costs one breaker-counted failure.
	healthy atomic.Bool
}

// eligible reports whether the node should receive new shards.
func (n *node) eligible() bool {
	return n.healthy.Load() && n.brk.State() != server.BreakerOpen
}

// probe refreshes the node's health from one /readyz exchange.
func (n *node) probe(ctx context.Context, timeout time.Duration) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	n.healthy.Store(n.cli.Ready(pctx) == nil)
}

// fnv64 hashes a string with FNV-1a.
func fnv64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// splitmix64 is the finalizer used to turn (node, shard) into a placement
// score: a full-avalanche mix, so one shard moving between nodes never
// correlates with another's placement.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rank orders nodes for a shard key by rendezvous (highest-random-weight)
// hashing: every (node, key) pair gets an independent score, and the
// ranking is the descending score order. The properties the fleet leans
// on: placement is deterministic given the node set (no state to sync),
// and removing a node only re-places the shards that were on it — every
// other shard keeps its position in the ranking, which is what keeps a
// node death from invalidating the content-addressed cache of survivors.
func rank(nodes []*node, key uint64) []*node {
	type scored struct {
		n *node
		s uint64
	}
	sc := make([]scored, len(nodes))
	for i, n := range nodes {
		sc[i] = scored{n: n, s: splitmix64(fnv64(n.name) ^ key)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].s != sc[j].s {
			return sc[i].s > sc[j].s
		}
		return sc[i].n.name < sc[j].n.name
	})
	out := make([]*node, len(sc))
	for i, s := range sc {
		out[i] = s.n
	}
	return out
}
