package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dnastore/internal/durable"
	"dnastore/internal/server"
)

// The write-ahead job ledger: one durable.Journal per admitted job,
// fingerprint-named under <DataDir>/ledger/. The "accepted" frame is
// fsynced before the client ever sees 202, so an accepted job survives
// any later coordinator crash; shard state transitions are appended as
// unsynced hints (recovery re-derives them, so losing the tail costs
// nothing but log detail); the terminal frame is fsynced again so a
// finished job stays finished across a restart.
//
// Replay is idempotent by construction: a ledger file is the whole record
// of one job, keyed by job ID, and recovery adopts each file exactly once.
// A torn tail — the crash hitting mid-append — is dropped by
// durable.OpenJournal's frame-boundary truncation; a file torn before its
// accepted frame describes a job whose 202 never reached the client, and
// is deleted (the client's resubmission re-derives it).

// ledgerParity protects ledger frames against bit rot on top of the
// per-frame checksums (same budget as checkpoint journals).
const ledgerParity = 8

// Frame names inside a job ledger.
const (
	ledgerAcceptedFrame = "accepted"
	ledgerShardFrame    = "shard"
	ledgerFinishedFrame = "finished"
	ledgerReplayedFrame = "replayed"
)

// ledgerAccepted is the admission record — everything recovery needs to
// re-derive the job: identity, idempotency binding, spec, and the shard
// split in force when the job was planned.
type ledgerAccepted struct {
	ID            string         `json:"id"`
	Key           string         `json:"key,omitempty"`
	CreatedUnixMS int64          `json:"created_unix_ms"`
	ShardClusters int            `json:"shard_clusters,omitempty"`
	Spec          server.JobSpec `json:"spec"`
}

// ledgerShardEvent is one shard state transition: placed → done / failed /
// resumed, plus cache and erased verdicts.
type ledgerShardEvent struct {
	Index int    `json:"index"`
	Event string `json:"event"`
	Node  string `json:"node,omitempty"`
	Key   string `json:"shard_key,omitempty"`
	Error string `json:"error,omitempty"`
}

// ledgerFinished is the terminal record.
type ledgerFinished struct {
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// jobLedger is one job's open ledger journal. All methods are safe on a
// nil receiver (no DataDir → no ledger) and never fail the job: after the
// accepted frame is down, ledger trouble is logged and survived — the
// worst case is a recovery that recomputes more than it had to.
type jobLedger struct {
	path string
	j    *durable.Journal
	slog *slog.Logger
}

func (l *jobLedger) append(name string, v any, sync bool) {
	if l == nil || l.j == nil {
		return
	}
	payload, err := json.Marshal(v)
	if err == nil {
		if sync {
			err = l.j.Append(name, payload)
		} else {
			err = l.j.AppendNoSync(name, payload)
		}
	}
	if err != nil && !errors.Is(err, os.ErrClosed) {
		// os.ErrClosed means drain already sealed the file; anything else
		// is a real disk complaint worth an operator's attention.
		l.slog.Warn("ledger append failed", "ledger", l.path, "frame", name, "error", err)
	}
}

// shardEvent journals one shard transition (unsynced hint).
func (l *jobLedger) shardEvent(ev ledgerShardEvent) {
	l.append(ledgerShardFrame, ev, false)
}

// finish journals the terminal state (fsynced) and closes the file.
func (l *jobLedger) finish(state server.JobState, errStr string) {
	l.append(ledgerFinishedFrame, ledgerFinished{State: string(state), Error: errStr}, true)
	l.close()
}

// replayed marks a re-adoption, so the file records how many restarts the
// job rode through.
func (l *jobLedger) replayed() {
	l.append(ledgerReplayedFrame, ledgerFinished{}, true)
}

func (l *jobLedger) close() {
	if l == nil || l.j == nil {
		return
	}
	if err := l.j.Close(); err != nil {
		l.slog.Warn("ledger close failed", "ledger", l.path, "error", err)
	}
}

// ledgerRecord is one job replayed from disk.
type ledgerRecord struct {
	accepted ledgerAccepted
	finished *ledgerFinished
	led      *jobLedger // open for append: re-adoption continues the file
}

// ledgerStore owns the ledger directory: create-on-admit, replay-on-boot,
// and FIFO pruning of terminal job ledgers.
type ledgerStore struct {
	dir  string
	keep int
	slog *slog.Logger

	mu      sync.Mutex
	retired []string // terminal ledger paths, oldest first
}

func openLedgerStore(dir string, keep int, logger *slog.Logger) (*ledgerStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: ledger dir: %w", err)
	}
	if keep <= 0 {
		keep = 512
	}
	return &ledgerStore{dir: dir, keep: keep, slog: logger}, nil
}

// ledgerFileName names a job's ledger by spec fingerprint plus job ID; the
// fingerprint makes the file self-describing and greppable against worker
// checkpoint journals, the ID keeps deliberate duplicate submissions of
// one spec (fresh Idempotency-Keys) from colliding.
func ledgerFileName(fp uint64, id string) string {
	return fmt.Sprintf("job-%016x-%s.wal", fp, id)
}

// create opens a new job ledger and durably writes its accepted frame.
// When create returns nil error, the admission is on disk.
func (s *ledgerStore) create(a ledgerAccepted) (*jobLedger, error) {
	path := filepath.Join(s.dir, ledgerFileName(a.Spec.Fingerprint(), a.ID))
	j, err := durable.CreateJournal(path, durable.KindLedger, durable.Options{Parity: ledgerParity})
	if err != nil {
		return nil, fmt.Errorf("fleet: job ledger: %w", err)
	}
	payload, err := json.Marshal(a)
	if err == nil {
		err = j.Append(ledgerAcceptedFrame, payload)
	}
	if err != nil {
		j.Close()
		os.Remove(path)
		return nil, fmt.Errorf("fleet: job ledger: %w", err)
	}
	return &jobLedger{path: path, j: j, slog: s.slog}, nil
}

// replay scans the ledger directory and reconstructs every job it can
// vouch for. Files whose header or accepted frame did not survive the
// crash are deleted: their 202 never committed, so the job never existed
// as far as any client knows. Torn tails past the accepted frame are
// truncated by OpenJournal and the job is re-derived from what remains.
// Records come back oldest-first.
func (s *ledgerStore) replay() ([]*ledgerRecord, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var recs []*ledgerRecord
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".wal") {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		rec, ok := s.replayOne(path)
		if !ok {
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		return recs[i].accepted.CreatedUnixMS < recs[j].accepted.CreatedUnixMS
	})
	return recs, nil
}

func (s *ledgerStore) replayOne(path string) (*ledgerRecord, bool) {
	j, frames, err := durable.OpenJournal(path)
	if err != nil {
		// Torn before the header committed, or not a journal at all:
		// nothing to adopt, nothing a client was promised.
		s.slog.Warn("dropping unreadable job ledger", "ledger", path, "error", err)
		os.Remove(path)
		return nil, false
	}
	if j.Kind() != durable.KindLedger {
		s.slog.Warn("skipping non-ledger journal in ledger dir", "ledger", path, "kind", j.Kind().String())
		j.Close()
		return nil, false
	}
	rec := &ledgerRecord{led: &jobLedger{path: path, j: j, slog: s.slog}}
	for _, f := range frames {
		switch f.Name {
		case ledgerAcceptedFrame:
			if rec.accepted.ID == "" {
				if err := json.Unmarshal(f.Payload, &rec.accepted); err != nil {
					rec.accepted = ledgerAccepted{}
				}
			}
		case ledgerFinishedFrame:
			var fin ledgerFinished
			if err := json.Unmarshal(f.Payload, &fin); err == nil {
				rec.finished = &fin
			}
		}
	}
	if rec.accepted.ID == "" {
		// The accepted frame is the 202 commitment; without it the file
		// is a half-admission the crash interrupted before any client
		// could learn the job ID. Never half-adopt: delete.
		s.slog.Warn("dropping job ledger with no accepted frame (crash before 202)", "ledger", path)
		j.Close()
		os.Remove(path)
		return nil, false
	}
	return rec, true
}

// retire registers a terminal job's ledger for FIFO pruning and deletes
// the oldest retirees beyond the keep budget.
func (s *ledgerStore) retire(path string) {
	if s == nil || path == "" {
		return
	}
	s.mu.Lock()
	s.retired = append(s.retired, path)
	var drop []string
	if n := len(s.retired) - s.keep; n > 0 {
		drop = append(drop, s.retired[:n]...)
		s.retired = append(s.retired[:0], s.retired[n:]...)
	}
	s.mu.Unlock()
	for _, p := range drop {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			s.slog.Warn("pruning retired ledger failed", "ledger", p, "error", err)
		}
	}
}
