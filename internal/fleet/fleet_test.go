package fleet

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnastore/internal/client"
	"dnastore/internal/dataset"
	"dnastore/internal/server"
)

func mkNodes(names ...string) []*node {
	ns := make([]*node, len(names))
	for i, nm := range names {
		ns[i] = &node{name: nm}
		ns[i].healthy.Store(true)
	}
	return ns
}

func TestRankDeterministic(t *testing.T) {
	nodes := mkNodes("n0", "n1", "n2", "n3", "n4")
	for key := uint64(0); key < 64; key++ {
		a, b := rank(nodes, key), rank(nodes, key)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("key %d: rank not deterministic at position %d", key, i)
			}
		}
	}
}

func TestRankSpreadsPrimaries(t *testing.T) {
	nodes := mkNodes("n0", "n1", "n2", "n3", "n4")
	primaries := map[string]int{}
	for key := uint64(0); key < 500; key++ {
		primaries[rank(nodes, key)[0].name]++
	}
	for _, n := range nodes {
		if primaries[n.name] == 0 {
			t.Errorf("node %s is never primary across 500 keys", n.name)
		}
	}
}

// TestRankMinimalDisruption is the property the cache and the journals
// lean on: removing one node must only move the shards that were placed
// on it.
func TestRankMinimalDisruption(t *testing.T) {
	all := mkNodes("n0", "n1", "n2", "n3", "n4")
	without := mkNodes("n0", "n1", "n3", "n4")
	moved := 0
	for key := uint64(0); key < 500; key++ {
		before := rank(all, key)[0].name
		after := rank(without, key)[0].name
		if before == "n2" {
			moved++
			continue
		}
		if after != before {
			t.Fatalf("key %d moved %s -> %s although its node survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("n2 owned no keys; the disruption check never triggered")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newResultCache(8)
	var computes, hits atomic.Int32
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			data, hit, err := c.do(context.Background(), 42, func() ([]byte, error) {
				computes.Add(1)
				time.Sleep(10 * time.Millisecond)
				return []byte("payload"), nil
			})
			if err != nil || string(data) != "payload" {
				t.Errorf("do: data %q err %v", data, err)
			}
			if hit {
				hits.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Errorf("computes = %d, want 1 (single flight)", got)
	}
	if got := hits.Load(); got != 15 {
		t.Errorf("hits = %d, want 15 (everyone but the computer)", got)
	}
}

func TestCacheFailureNotCached(t *testing.T) {
	c := newResultCache(8)
	boom := errors.New("boom")
	ctx := context.Background()
	if _, hit, err := c.do(ctx, 7, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) || hit {
		t.Fatalf("failed compute: hit=%v err=%v, want miss with boom", hit, err)
	}
	if c.len() != 0 {
		t.Fatalf("failure left %d cache entries, want 0", c.len())
	}
	data, hit, err := c.do(ctx, 7, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(data) != "ok" {
		t.Fatalf("retry after failure: data %q hit=%v err=%v, want fresh compute", data, hit, err)
	}
	if _, hit, _ := c.do(ctx, 7, func() ([]byte, error) {
		t.Error("success must be cached, not recomputed")
		return nil, nil
	}); !hit {
		t.Fatal("second success lookup was not a hit")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newResultCache(2)
	ctx := context.Background()
	for key := uint64(1); key <= 3; key++ {
		c.do(ctx, key, func() ([]byte, error) { return []byte{byte(key)}, nil })
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries over capacity 2", c.len())
	}
	// FIFO: key 1 is the evictee and must recompute.
	recomputed := false
	c.do(ctx, 1, func() ([]byte, error) { recomputed = true; return []byte{1}, nil })
	if !recomputed {
		t.Error("evicted key 1 was served from cache")
	}
	if _, hit, _ := c.do(ctx, 3, func() ([]byte, error) { return []byte{3}, nil }); !hit {
		t.Error("recent key 3 was evicted; FIFO should keep it")
	}
}

func TestShardsOfPartition(t *testing.T) {
	spec := server.SimulateSpec{NumRefs: 10, RefLen: 40, Seed: 1}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	shards := shardsOf(spec, 4)
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	next := 0
	keys := map[uint64]bool{}
	for i, sh := range shards {
		if sh.index != i || sh.first != next {
			t.Fatalf("shard %d covers [%d,%d), want to start at %d", i, sh.first, sh.first+sh.count, next)
		}
		if f, cnt := sh.spec.ShardRange(); f != sh.first || cnt != sh.count {
			t.Fatalf("shard %d sub-spec range (%d,%d) disagrees with shard (%d,%d)", i, f, cnt, sh.first, sh.count)
		}
		if keys[sh.key] {
			t.Fatalf("shard %d reuses another shard's fingerprint", i)
		}
		keys[sh.key] = true
		next += sh.count
	}
	if next != 10 {
		t.Fatalf("shards cover %d clusters, want 10", next)
	}
	if got := shardsOf(spec, 64); len(got) != 1 || got[0].count != 10 {
		t.Fatalf("oversized shard span: got %d shards", len(got))
	}
}

func TestErasedShardBytesRoundTrip(t *testing.T) {
	spec := server.SimulateSpec{NumRefs: 6, RefLen: 30, Seed: 2}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	refs := spec.References()
	ds, err := dataset.Read(bytes.NewReader(erasedShardBytes(refs, 2, 3)))
	if err != nil {
		t.Fatalf("erased shard bytes do not parse: %v", err)
	}
	if ds.NumClusters() != 3 || ds.Erasures() != 3 {
		t.Fatalf("got %d clusters / %d erasures, want 3/3", ds.NumClusters(), ds.Erasures())
	}
	for i, cl := range ds.Clusters {
		if cl.Ref != refs[2+i] {
			t.Errorf("cluster %d carries ref %q, want %q", i, cl.Ref, refs[2+i])
		}
	}
}

// deadNodeURL returns a URL nothing listens on (refused, instantly).
func deadNodeURL(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func TestDegradedCompletion(t *testing.T) {
	spec := server.SimulateSpec{NumRefs: 8, RefLen: 40, Seed: 3, Coverage: 2}
	dead := deadNodeURL(t)
	newCoord := func(allowPartial bool) *Coordinator {
		c, err := New(Config{
			Nodes:            []NodeConfig{{Name: "dead", BaseURL: dead}},
			ShardClusters:    4,
			MaxShardAttempts: 2,
			AllowPartial:     allowPartial,
			ProbeInterval:    -1,
			Client: client.Config{
				MaxAttempts: 1, BaseBackoff: time.Millisecond,
				MaxBackoff: 2 * time.Millisecond, PerCallTimeout: time.Second, Seed: 9,
			},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		t.Cleanup(c.Close)
		return c
	}

	c := newCoord(true)
	data, rep, err := c.Simulate(context.Background(), spec)
	if err != nil {
		t.Fatalf("degraded completion should deliver a partial dataset, got %v", err)
	}
	ds, err := dataset.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("partial dataset does not parse: %v", err)
	}
	if ds.NumClusters() != 8 || ds.Erasures() != 8 {
		t.Errorf("partial dataset: %d clusters / %d erasures, want 8/8", ds.NumClusters(), ds.Erasures())
	}
	if rep.Erased != 2 || len(rep.Shards) != 2 {
		t.Errorf("report: erased %d of %d shards, want 2 of 2", rep.Erased, len(rep.Shards))
	}
	for _, st := range rep.Shards {
		if !st.Erased || st.Error == "" {
			t.Errorf("shard %d: erased=%v error=%q, want an explicit erasure with its cause", st.Index, st.Erased, st.Error)
		}
	}
	if got := c.Registry().Snapshot()["dnasimd_fleet_shards_erased_total"]; got != 2 {
		t.Errorf("shards_erased_total = %v, want 2", got)
	}

	c2 := newCoord(false)
	_, _, err = c2.Simulate(context.Background(), spec)
	var ee *ErasureError
	if !errors.As(err, &ee) {
		t.Fatalf("strict mode returned %v, want *ErasureError", err)
	}
	if len(ee.Erased) != 2 {
		t.Fatalf("ErasureError lists %d shards, want 2", len(ee.Erased))
	}
}

func TestSimulateRejectsShardedSpec(t *testing.T) {
	c, err := New(Config{
		Nodes:         []NodeConfig{{Name: "x", BaseURL: "http://127.0.0.1:1"}},
		ProbeInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	spec := server.SimulateSpec{NumRefs: 8, RefLen: 40, Seed: 1, ClusterCount: 4}
	if _, _, err := c.Simulate(context.Background(), spec); err == nil {
		t.Fatal("pre-sharded spec accepted; the coordinator owns the split")
	}
	js := server.JobSpec{Kind: server.KindSimulate, Simulate: &spec}
	if _, _, err := c.Submit("", js); err == nil {
		t.Fatal("facade accepted a pre-sharded spec")
	}
}

func TestPickNodePrefersUntriedEligible(t *testing.T) {
	nodes := mkNodes("a", "b", "c")
	for _, n := range nodes {
		n.brk = server.NewBreaker(3, time.Minute)
	}
	ranked := rank(nodes, 1234)
	tried := map[string]int{}
	first := pickNode(ranked, tried, 0)
	if first != ranked[0] {
		t.Fatalf("fresh shard placed on %s, want top-ranked %s", first.name, ranked[0].name)
	}
	tried[first.name]++
	second := pickNode(ranked, tried, 1)
	if second != ranked[1] {
		t.Fatalf("retry placed on %s, want next-ranked %s", second.name, ranked[1].name)
	}
	// Mark everyone unhealthy: a placement must still come back.
	for _, n := range nodes {
		n.healthy.Store(false)
	}
	tried[second.name]++
	if pickNode(ranked, tried, 2) == nil {
		t.Fatal("pickNode refused to place with all nodes ineligible")
	}
}
