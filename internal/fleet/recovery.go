package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"time"

	"dnastore/internal/server"
)

// Boot-time recovery: replay the write-ahead ledger and restore every job
// the previous process life promised a client. This runs synchronously
// inside New, before any listener can bind the coordinator — a client that
// was mid-poll when the old process died must find its job ID answering
// again, never a permanent 404 (which internal/client rightly treats as a
// permanent error, not a retryable one).
//
// The replay state machine, per ledger file:
//
//	unreadable header / no accepted frame  → delete (202 never committed)
//	finished failed|canceled               → restore the terminal verdict
//	finished done                          → rebuild result from spill, or
//	                                         re-adopt and recompute
//	accepted, not finished (in-flight)     → re-adopt: re-run the job
//
// Re-adoption is cheap by construction: shard results are content-addressed,
// so everything the old process spilled comes back as spill hits, and a
// worker still computing a shard replays the running job via the derived
// Idempotency-Key instead of starting a duplicate.
func (c *Coordinator) recover() {
	recs, err := c.ledger.replay()
	if err != nil {
		c.slog.Error("ledger replay failed; starting with empty job state", "error", err)
		return
	}
	var adopted, restored int
	for _, rec := range recs {
		c.metrics.ledgerReplays.Inc()
		if c.adoptRecord(rec) {
			adopted++
		} else {
			restored++
		}
	}
	if len(recs) > 0 {
		c.slog.Info("ledger replayed", "jobs", len(recs),
			"re_adopted", adopted, "restored_terminal", restored)
	}
}

// adoptRecord turns one replayed ledger record back into a live job table
// entry. Reports whether the job was re-adopted (re-run) as opposed to
// restored in a terminal state.
func (c *Coordinator) adoptRecord(rec *ledgerRecord) bool {
	j := &fleetJob{
		id:        rec.accepted.ID,
		spec:      rec.accepted.Spec,
		created:   time.UnixMilli(rec.accepted.CreatedUnixMS),
		led:       rec.led,
		recovered: true,
		state:     server.StateQueued,
		done:      make(chan struct{}),
	}

	// Decide the job's fate before publishing it, so no client observes an
	// intermediate state.
	rerun := false
	switch {
	case rec.accepted.Spec.Validate() != nil:
		// The spec round-tripped through JSON and no longer validates —
		// a hand-edited or version-skewed ledger. The honest verdict is an
		// explicit failure under the old ID, not a silent drop.
		err := fmt.Errorf("fleet: recovered spec no longer validates: %w", rec.accepted.Spec.Validate())
		c.slog.Warn("recovered job failed validation", "job", j.id, "error", err)
		c.settleRecovered(j, server.StateFailed, nil, Report{}, err)
	case rec.finished == nil:
		// In-flight at the crash (or parked by a drain): re-adopt.
		rerun = true
	case rec.finished.State == string(server.StateFailed) ||
		rec.finished.State == string(server.StateCanceled):
		var err error
		if rec.finished.Error != "" {
			err = errors.New(rec.finished.Error)
		}
		c.settleRecovered(j, server.JobState(rec.finished.State), nil, Report{}, err)
	case rec.finished.State == string(server.StateDone):
		if c.restoreDone(j, rec.accepted.ShardClusters) {
			c.slog.Info("job restored from spill", "job", j.id)
		} else {
			// The spill no longer holds every shard (GC, bit rot, or a
			// non-simulate kind). Determinism makes recomputation safe:
			// the re-run produces the same bytes the client was promised.
			rerun = true
		}
	default:
		c.slog.Warn("recovered job carries unknown terminal state; re-running",
			"job", j.id, "state", rec.finished.State)
		rerun = true
	}

	c.mu.Lock()
	c.jobs[j.id] = j
	if key := rec.accepted.Key; key != "" {
		c.idem[key] = j.id
	}
	var n int
	if _, err := fmt.Sscanf(j.id, "f%06d", &n); err == nil && n > c.nextID {
		c.nextID = n
	}
	if rerun {
		c.jobWG.Add(1)
	}
	c.mu.Unlock()

	if rerun {
		c.metrics.recovered.Inc()
		j.led.replayed()
		c.slog.Info("job re-adopted from ledger", "job", j.id, "kind", string(j.spec.Kind))
		go c.runJob(j)
	}
	return rerun
}

// settleRecovered pins a recovered job to a terminal state without
// re-counting it in the finished metrics — it finished in a previous
// process life; this life merely remembers the verdict.
func (c *Coordinator) settleRecovered(j *fleetJob, state server.JobState, data []byte, rep Report, err error) {
	j.finish(state, data, rep, err)
	j.led.close()
	if j.led != nil {
		c.ledger.retire(j.led.path)
	}
}

// restoreDone rebuilds a finished simulate job's merged result purely from
// the spill store: re-derive the shard plan recorded at admission, read
// every shard back, merge in range order. Succeeds only when every shard is
// present — a single gap falls back to re-adoption, because a partially
// restored result would not be the bytes the client was promised.
//
// Shards read back also seed the memory cache, so even a failed restore
// leaves the subsequent re-run mostly cache-warm.
func (c *Coordinator) restoreDone(j *fleetJob, shardClusters int) bool {
	if c.spill == nil || j.spec.Kind != server.KindSimulate || j.spec.Simulate == nil {
		return false
	}
	spec := *j.spec.Simulate
	if spec.ClusterFirst != 0 || spec.ClusterCount != 0 {
		return false
	}
	if err := spec.Validate(); err != nil {
		return false
	}
	if shardClusters <= 0 {
		shardClusters = c.cfg.ShardClusters
	}
	shards := shardsOf(spec, shardClusters)
	rep := Report{TotalClusters: spec.NumClusters(), Shards: make([]ShardStatus, len(shards))}
	var buf bytes.Buffer
	for i, sh := range shards {
		data, ok := c.spill.get(sh.key)
		if !ok {
			return false
		}
		c.cache.seed(sh.key, data)
		buf.Write(data)
		rep.Shards[i] = ShardStatus{Index: sh.index, First: sh.first, Count: sh.count, CacheHit: true}
		rep.CacheHits++
		c.metrics.cacheHits.Inc()
		c.metrics.shardsDone.Inc()
	}
	c.settleRecovered(j, server.StateDone, buf.Bytes(), rep, nil)
	return true
}
