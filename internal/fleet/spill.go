package fleet

import (
	"container/list"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dnastore/internal/durable"
	"dnastore/internal/obs"
)

// spillStore is the durable layer under the in-memory shard result cache:
// every computed shard spills to a content-addressed container under
// <DataDir>/spill/, and a memory miss reads through to it. Entries are
// immutable (shard bytes are a pure function of their fingerprint), so
// the store needs no coherence — only admission and eviction.
//
//   - Files are single-frame durable containers (KindDataset, default
//     parity), written atomically, so a crash mid-spill leaves either the
//     old state or a complete entry — and bit rot within the parity
//     budget repairs on read.
//   - Eviction is FIFO over a byte budget, matching the memory cache's
//     FIFO-over-entries policy: entries are equally cheap to recompute,
//     so arrival order is as good as any and far simpler than LRU.
//   - A corrupt entry is deleted on read and treated as a miss: the spill
//     is a cache, never the only copy, so the honest response to damage
//     is recomputation, not an error.
type spillStore struct {
	dir    string
	budget int64
	slog   *slog.Logger

	// Counters are wired after metrics construction; nil-safe.
	hits, writes, gc *obs.Counter

	mu   sync.Mutex
	size int64
	fifo *list.List // of *spillEntry, oldest front
	ent  map[uint64]*list.Element
}

type spillEntry struct {
	key   uint64
	bytes int64
}

// spillFileName addresses a shard's spilled bytes by its fingerprint.
func spillFileName(key uint64) string {
	return fmt.Sprintf("shard-%016x.dnac", key)
}

// openSpillStore opens (or creates) the spill directory and adopts every
// entry already in it, oldest-first by mtime so a restart preserves the
// FIFO eviction order. Entries are verified lazily on read, not here:
// boot must not pay a full-directory checksum scan, and a rotten entry
// costs exactly one recomputation when it is touched.
func openSpillStore(dir string, budget int64, logger *slog.Logger) (*spillStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: spill dir: %w", err)
	}
	if budget <= 0 {
		budget = 256 << 20
	}
	s := &spillStore{dir: dir, budget: budget, slog: logger,
		fifo: list.New(), ent: make(map[uint64]*list.Element)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: spill dir: %w", err)
	}
	type found struct {
		key   uint64
		bytes int64
		mtime int64
	}
	var fs []found
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "shard-") || !strings.HasSuffix(name, ".dnac") {
			continue
		}
		var key uint64
		if _, err := fmt.Sscanf(name, "shard-%16x.dnac", &key); err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		fs = append(fs, found{key: key, bytes: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(fs, func(i, j int) bool { return fs[i].mtime < fs[j].mtime })
	for _, f := range fs {
		s.ent[f.key] = s.fifo.PushBack(&spillEntry{key: f.key, bytes: f.bytes})
		s.size += f.bytes
	}
	s.gcLocked()
	return s, nil
}

func inc(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// get reads one spilled shard back, repairing within parity on the way. A
// damaged or missing entry is dropped and reported as a miss.
func (s *spillStore) get(key uint64) ([]byte, bool) {
	s.mu.Lock()
	_, ok := s.ent[key]
	s.mu.Unlock()
	if !ok {
		return nil, false
	}
	path := filepath.Join(s.dir, spillFileName(key))
	frames, err := durable.ReadContainerFile(path, durable.KindDataset)
	if err != nil || len(frames) != 1 {
		s.slog.Warn("dropping unreadable spill entry", "spill", path, "error", err)
		s.drop(key)
		return nil, false
	}
	inc(s.hits)
	return frames[0].Payload, true
}

// put spills one computed shard. Failures are logged and swallowed — the
// spill is an optimisation, and the computed bytes are already on their
// way to the caller.
func (s *spillStore) put(key uint64, data []byte) {
	s.mu.Lock()
	_, exists := s.ent[key]
	s.mu.Unlock()
	if exists {
		return
	}
	path := filepath.Join(s.dir, spillFileName(key))
	err := durable.WriteContainerFile(path, durable.KindDataset, durable.Options{Parity: durable.DefaultParity},
		func(w *durable.Writer) error { return w.WriteFrame("shard", data) })
	if err != nil {
		s.slog.Warn("spill write failed", "spill", path, "error", err)
		return
	}
	info, err := os.Stat(path)
	var bytes int64
	if err == nil {
		bytes = info.Size()
	}
	inc(s.writes)
	s.mu.Lock()
	if _, exists := s.ent[key]; !exists {
		s.ent[key] = s.fifo.PushBack(&spillEntry{key: key, bytes: bytes})
		s.size += bytes
	}
	s.gcLocked()
	s.mu.Unlock()
}

// drop removes one entry (corrupt on read).
func (s *spillStore) drop(key uint64) {
	s.mu.Lock()
	if el, ok := s.ent[key]; ok {
		e := s.fifo.Remove(el).(*spillEntry)
		s.size -= e.bytes
		delete(s.ent, key)
	}
	s.mu.Unlock()
	os.Remove(filepath.Join(s.dir, spillFileName(key)))
}

// gcLocked evicts oldest-first until the store fits its byte budget.
// Caller holds s.mu.
func (s *spillStore) gcLocked() {
	var victims []uint64
	for s.size > s.budget && s.fifo.Len() > 1 {
		e := s.fifo.Remove(s.fifo.Front()).(*spillEntry)
		s.size -= e.bytes
		delete(s.ent, e.key)
		victims = append(victims, e.key)
	}
	for _, key := range victims {
		os.Remove(filepath.Join(s.dir, spillFileName(key)))
		inc(s.gc)
	}
}

// entries returns the resident entry count (for the gauge).
func (s *spillStore) entries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ent)
}
