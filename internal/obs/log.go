package obs

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"os"
	"strings"
)

// Shared structured-logging setup. Every binary registers the same two
// flags (-log-level, -log-format) through LogFlags and builds its logger
// with Logger, so operators get one logging contract across the whole
// tool set:
//
//	opts := obs.LogFlags(flag.CommandLine)
//	flag.Parse()
//	log := opts.Logger("dnasimd")

// LogOptions holds the flag-configurable logging knobs.
type LogOptions struct {
	// Level is the minimum level: debug, info, warn, error.
	Level string
	// Format is the handler: "text" (human) or "json" (machine).
	Format string
	// Output overrides the destination (default os.Stderr).
	Output io.Writer
}

// LogFlags registers -log-level and -log-format on fs (typically
// flag.CommandLine) and returns the options they populate.
func LogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{}
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn, error")
	fs.StringVar(&o.Format, "log-format", "text", "log format: text or json")
	return o
}

// slogLevel maps the flag string to a slog.Level (unknown → info).
func slogLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

// Logger builds the component's *slog.Logger per the options. Every
// record carries a "component" attribute so merged multi-process logs
// stay attributable.
func (o *LogOptions) Logger(component string) *slog.Logger {
	w := o.Output
	if w == nil {
		w = os.Stderr
	}
	hopts := &slog.HandlerOptions{Level: slogLevel(o.Level)}
	var h slog.Handler
	if strings.EqualFold(o.Format, "json") {
		h = slog.NewJSONHandler(w, hopts)
	} else {
		h = slog.NewTextHandler(w, hopts)
	}
	return slog.New(h).With("component", component)
}

// discardHandler drops every record; Enabled is false for all levels so
// argument evaluation is skipped too.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }

// Discard returns a logger that drops everything — the nil-object default
// for components whose caller configured no logging.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// NewLogger is the non-flag construction path (tests, embedded use).
func NewLogger(component string, w io.Writer, level slog.Level, json bool) *slog.Logger {
	o := &LogOptions{Output: w, Format: "text"}
	if json {
		o.Format = "json"
	}
	switch level {
	case slog.LevelDebug:
		o.Level = "debug"
	case slog.LevelWarn:
		o.Level = "warn"
	case slog.LevelError:
		o.Level = "error"
	default:
		o.Level = "info"
	}
	return o.Logger(component)
}
