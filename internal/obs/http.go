package obs

import (
	"net/http"
	"net/http/pprof"
)

// HTTP glue: the /metrics handler for a registry and the opt-in pprof
// mounting. Binaries decide which mux gets which — the job server mounts
// /metrics inside its own mux (so chaos drills can scrape it through the
// normal handler), while /debug/pprof/* stays an explicit operator opt-in
// because profiles expose internals and cost CPU while running.

// Handler serves the registry in the Prometheus text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/ on
// mux, without touching http.DefaultServeMux.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
