// Package obs is the dependency-free observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) rendered in the
// Prometheus text exposition format, a context-carried stage timer for
// per-stage wall-time and throughput accounting, and a shared structured
// logging (log/slog) setup used by every binary.
//
// The package deliberately implements the tiny subset of a metrics client
// the project needs rather than importing one: atomic counters and gauges,
// histograms with fixed upper bounds, and a deterministic text rendering
// whose stable ordering makes golden-file testing possible. Series are
// identified by their full Prometheus series name, label block included:
//
//	reg.Counter(`dnasimd_jobs_shed_total{reason="queue_full"}`, "Jobs shed at admission.")
//
// Everything is safe for concurrent use.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by d (d may be negative).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram. Buckets are cumulative at render
// time (Prometheus `le` semantics); observation is a binary search plus an
// atomic increment.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implied
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	total   atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, len(bounds) = +Inf
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// DefBuckets is the default latency bucket set (seconds), matching the
// conventional Prometheus client defaults.
var DefBuckets = []float64{0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// ExpBuckets returns n exponentially growing bucket bounds starting at
// start and multiplying by factor (> 1).
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return DefBuckets
	}
	out := make([]float64, n)
	b := start
	for i := 0; i < n; i++ {
		out[i] = b
		b *= factor
	}
	return out
}

// metricKind tags a registered series for rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one registered time series.
type series struct {
	name   string // full series name, label block included
	family string // name before the label block
	labels string // label block including braces, "" when unlabelled
	kind   metricKind
	help   string

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Registry holds registered series and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	series map[string]*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*series)}
}

// splitName separates the family name from an optional label block.
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// register adds or fetches a series, enforcing one kind per name. A new
// series is fully initialized by init before it becomes visible: series
// are registered lazily from concurrent paths (per-stage counters from
// every worker), so the payload must be created under the same lock that
// publishes the series — a post-publication nil check would let two
// racing registrants each install their own counter, silently dropping
// one side's increments.
func (r *Registry) register(name, help string, kind metricKind, init func(*series)) *series {
	family, labels := splitName(name)
	if family == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.series[name]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", name))
		}
		return s
	}
	s := &series{name: name, family: family, labels: labels, kind: kind, help: help}
	init(s)
	r.series[name] = s
	return s
}

// Counter registers (or fetches) a counter series. name may carry a label
// block: `jobs_total{outcome="done"}`.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, func(s *series) {
		s.counter = &Counter{}
	}).counter
}

// Gauge registers (or fetches) a gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, func(s *series) {
		s.gauge = &Gauge{}
	}).gauge
}

// GaugeFunc registers a gauge whose value is computed at scrape time —
// the natural fit for "current depth of X" metrics already guarded by
// their own synchronization. Re-registering a name keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGaugeFunc, func(s *series) {
		s.fn = fn
	})
}

// Histogram registers (or fetches) a histogram series with the given
// bucket upper bounds (sorted ascending; +Inf is implicit). Nil or empty
// buckets take DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.register(name, help, kindHistogram, func(s *series) {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.hist = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).hist
}

// Snapshot returns every scalar series value by full series name.
// Histograms contribute their <name>_count and <name>_sum. Tests use this
// to assert counters without parsing the text rendering.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.series))
	for name, s := range r.series {
		switch s.kind {
		case kindCounter:
			out[name] = float64(s.counter.Value())
		case kindGauge:
			out[name] = s.gauge.Value()
		case kindGaugeFunc:
			out[name] = s.fn()
		case kindHistogram:
			out[s.family+"_count"+s.labels] = float64(s.hist.Count())
			out[s.family+"_sum"+s.labels] = s.hist.Sum()
		}
	}
	return out
}

// formatFloat renders a metric value the way Prometheus text format
// expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelJoin merges a series label block with one extra label (used for
// histogram `le`).
func labelJoin(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4). Output ordering is deterministic:
// families sort by name, series within a family by label block — so the
// rendering is golden-file testable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	all := make([]*series, 0, len(r.series))
	for _, s := range r.series {
		all = append(all, s)
	}
	r.mu.Unlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].family != all[j].family {
			return all[i].family < all[j].family
		}
		return all[i].labels < all[j].labels
	})
	lastFamily := ""
	for _, s := range all {
		if s.family != lastFamily {
			lastFamily = s.family
			if s.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.family, s.help); err != nil {
					return err
				}
			}
			typ := "counter"
			switch s.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.family, typ); err != nil {
				return err
			}
		}
		var err error
		switch s.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s %d\n", s.name, s.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.gauge.Value()))
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "%s %s\n", s.name, formatFloat(s.fn()))
		case kindHistogram:
			cum := uint64(0)
			for i, b := range s.hist.bounds {
				cum += s.hist.counts[i].Load()
				le := labelJoin(s.labels, `le="`+formatFloat(b)+`"`)
				if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, le, cum); err != nil {
					return err
				}
			}
			cum += s.hist.counts[len(s.hist.bounds)].Load()
			le := labelJoin(s.labels, `le="+Inf"`)
			if _, err = fmt.Fprintf(w, "%s_bucket%s %d\n", s.family, le, cum); err != nil {
				return err
			}
			if _, err = fmt.Fprintf(w, "%s_sum%s %s\n", s.family, s.labels, formatFloat(s.hist.Sum())); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_count%s %d\n", s.family, s.labels, s.hist.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// defaultRegistry backs the package-level helpers for binaries that want
// one process-wide registry without threading it around.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }
