package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// The stage timer: per-stage wall-time and throughput accounting carried
// through a context, the same pattern as channel.WithProgress. Layers that
// do timed work (channel simulation, pool sequencing, decode, trace
// reconstruction) call
//
//	defer obs.TimerFrom(ctx).Start("channel.simulate")(len(refs))
//
// and callers several layers up (a CLI printing a stage summary, the job
// server feeding stage histograms) attach a timer with WithTimer and read
// it back afterwards. A nil *StageTimer is a valid no-op receiver, so call
// sites never need to check whether anyone is listening.

// StageTiming is the accumulated account of one named stage.
type StageTiming struct {
	// Stage names the instrumented region, dotted by layer:
	// "channel.simulate", "store.sequence", "recon.iterative".
	Stage string
	// Wall is the total wall time spent in the stage.
	Wall time.Duration
	// Items counts the work units processed (clusters, reads, strands);
	// 0 when the stage has no natural unit.
	Items int
	// Calls counts how many times the stage ran.
	Calls int
}

// PerSecond returns the stage throughput in items per second (0 when no
// time or items were recorded).
func (t StageTiming) PerSecond() float64 {
	if t.Wall <= 0 || t.Items <= 0 {
		return 0
	}
	return float64(t.Items) / t.Wall.Seconds()
}

// String renders one stage account for logs.
func (t StageTiming) String() string {
	if t.Items > 0 {
		return fmt.Sprintf("%s %v (%d items, %.1f/s)", t.Stage, t.Wall.Round(time.Microsecond), t.Items, t.PerSecond())
	}
	return fmt.Sprintf("%s %v", t.Stage, t.Wall.Round(time.Microsecond))
}

// StageTimer accumulates StageTimings by stage name. Safe for concurrent
// use; a nil *StageTimer ignores all recordings.
type StageTimer struct {
	mu     sync.Mutex
	stages map[string]*StageTiming
}

// NewStageTimer returns an empty timer.
func NewStageTimer() *StageTimer {
	return &StageTimer{stages: make(map[string]*StageTiming)}
}

// Record adds one completed run of a stage.
func (t *StageTimer) Record(stage string, wall time.Duration, items int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.stages[stage]
	if !ok {
		st = &StageTiming{Stage: stage}
		t.stages[stage] = st
	}
	st.Wall += wall
	st.Items += items
	st.Calls++
}

// Start begins timing a stage and returns the stop function; calling it
// with the number of items processed records the elapsed wall time.
// Usable as a one-liner: defer timer.Start("stage")(n) evaluates
// Start immediately and records at defer time.
func (t *StageTimer) Start(stage string) func(items int) {
	if t == nil {
		return func(int) {}
	}
	begin := time.Now()
	return func(items int) { t.Record(stage, time.Since(begin), items) }
}

// Snapshot returns the accumulated stage accounts sorted by stage name.
func (t *StageTimer) Snapshot() []StageTiming {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]StageTiming, 0, len(t.stages))
	for _, st := range t.stages {
		out = append(out, *st)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Stage < out[j].Stage })
	return out
}

// Summary renders every stage account on one line, "" when nothing was
// recorded.
func (t *StageTimer) Summary() string {
	snap := t.Snapshot()
	if len(snap) == 0 {
		return ""
	}
	parts := make([]string, len(snap))
	for i, st := range snap {
		parts[i] = st.String()
	}
	return strings.Join(parts, "; ")
}

// timerKey carries a *StageTimer through a context.
type timerKey struct{}

// WithTimer returns a context under which instrumented stages record into
// t.
func WithTimer(ctx context.Context, t *StageTimer) context.Context {
	return context.WithValue(ctx, timerKey{}, t)
}

// TimerFrom extracts the stage timer, nil (a valid no-op receiver) when
// absent.
func TimerFrom(ctx context.Context) *StageTimer {
	t, _ := ctx.Value(timerKey{}).(*StageTimer)
	return t
}
