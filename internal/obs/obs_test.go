package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries pins the `le` semantics: a value lands in
// the first bucket whose upper bound is ≥ the value (inclusive), and
// values beyond every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "test", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.0, 1.5, 2.0, 2.0001, 5.0, 7.5} {
		h.Observe(v)
	}
	got := h.BucketCounts()
	// ≤1: 0.5, 1.0 → 2; ≤2: 1.5, 2.0 → 2; ≤5: 2.0001, 5.0 → 2; +Inf: 7.5 → 1
	want := []uint64{2, 2, 2, 1}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
	if want := 0.5 + 1 + 1.5 + 2 + 2.0001 + 5 + 7.5; math.Abs(h.Sum()-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", h.Sum(), want)
	}
}

// TestHistogramUnsortedBucketsAreSorted: construction must not depend on
// caller ordering.
func TestHistogramUnsortedBucketsAreSorted(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("x", "test", []float64{5, 1, 2})
	if b := h.Bounds(); b[0] != 1 || b[1] != 2 || b[2] != 5 {
		t.Fatalf("bounds = %v, want sorted", b)
	}
}

// TestConcurrentCounters hammers counters, gauges and a histogram from
// many goroutines; run under -race this is the data-race gate, and the
// final values pin that no increment is lost.
func TestConcurrentCounters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "test")
	g := r.Gauge("depth", "test")
	h := r.Histogram("obs_seconds", "test", []float64{0.5})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.25)
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %v, want 0", g.Value())
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if want := 0.25 * workers * per; math.Abs(h.Sum()-want) > 1e-6 {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), want)
	}
}

// TestRegisterSameSeriesReturnsSameMetric: registration is idempotent per
// full series name, and label blocks separate series within a family.
func TestRegisterSameSeriesReturnsSameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(`shed_total{reason="full"}`, "test")
	b := r.Counter(`shed_total{reason="full"}`, "test")
	other := r.Counter(`shed_total{reason="draining"}`, "test")
	a.Inc()
	if b.Value() != 1 {
		t.Error("same series name did not return the same counter")
	}
	if other.Value() != 0 {
		t.Error("distinct label block shares a counter")
	}
}

// TestPrometheusRenderGolden locks the text rendering byte-for-byte: the
// format is a wire contract and its ordering must be deterministic.
func TestPrometheusRenderGolden(t *testing.T) {
	r := NewRegistry()
	// Register deliberately out of name order: rendering must sort.
	r.Counter(`jobs_shed_total{reason="queue_full"}`, "Jobs shed at admission.").Add(3)
	r.Counter(`jobs_shed_total{reason="draining"}`, "Jobs shed at admission.").Add(1)
	r.Gauge("queue_depth", "Current queue depth.").Set(4)
	r.GaugeFunc("breaker_open", "1 while the breaker is open.", func() float64 { return 0 })
	h := r.Histogram("job_seconds", "Job latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 3, 30} {
		h.Observe(v)
	}
	r.Counter("jobs_submitted_total", "Jobs admitted.").Add(9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "render.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_GOLDEN=1 to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("rendering differs from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Rendering twice must be byte-identical (stable ordering).
	var again bytes.Buffer
	if err := r.WritePrometheus(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two renderings of the same registry differ")
	}
}

// TestSnapshot covers the test-facing accessor.
func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "t").Add(2)
	r.Gauge("g", "t").Set(1.5)
	r.GaugeFunc("f", "t", func() float64 { return 7 })
	r.Histogram("h_seconds", "t", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	for name, want := range map[string]float64{
		"c_total": 2, "g": 1.5, "f": 7, "h_seconds_count": 1, "h_seconds_sum": 0.5,
	} {
		if snap[name] != want {
			t.Errorf("snapshot[%q] = %v, want %v", name, snap[name], want)
		}
	}
}

// TestMetricsHandler scrapes the HTTP handler end to end.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "t").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "up_total 1") {
		t.Errorf("body missing series:\n%s", rec.Body.String())
	}
}

// TestStageTimer covers accumulation, throughput, nil-safety and the
// context plumbing.
func TestStageTimer(t *testing.T) {
	st := NewStageTimer()
	st.Record("channel.simulate", 2*time.Second, 100)
	st.Record("channel.simulate", 2*time.Second, 100)
	st.Record("store.decode", 500*time.Millisecond, 0)
	snap := st.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot len = %d, want 2", len(snap))
	}
	// Sorted by stage name.
	if snap[0].Stage != "channel.simulate" || snap[1].Stage != "store.decode" {
		t.Errorf("snapshot order = %v", snap)
	}
	sim := snap[0]
	if sim.Wall != 4*time.Second || sim.Items != 200 || sim.Calls != 2 {
		t.Errorf("accumulated = %+v", sim)
	}
	if got := sim.PerSecond(); math.Abs(got-50) > 1e-9 {
		t.Errorf("throughput = %v, want 50", got)
	}
	if s := st.Summary(); !strings.Contains(s, "channel.simulate") || !strings.Contains(s, "50.0/s") {
		t.Errorf("summary = %q", s)
	}

	// Context round-trip.
	ctx := WithTimer(context.Background(), st)
	if TimerFrom(ctx) != st {
		t.Error("TimerFrom did not return the attached timer")
	}
	// Start/stop records wall time.
	stop := TimerFrom(ctx).Start("recon.bma")
	stop(10)
	if got := st.Snapshot(); len(got) != 3 {
		t.Errorf("after Start/stop: %d stages, want 3", len(got))
	}

	// Nil receiver: every method is a no-op, no panic.
	var nilTimer *StageTimer
	nilTimer.Record("x", time.Second, 1)
	nilTimer.Start("x")(1)
	if nilTimer.Snapshot() != nil || nilTimer.Summary() != "" {
		t.Error("nil timer not empty")
	}
	if tm := TimerFrom(context.Background()); tm != nil {
		t.Error("TimerFrom on bare context not nil")
	}
}

// TestStageTimerConcurrent hammers Record under -race.
func TestStageTimerConcurrent(t *testing.T) {
	st := NewStageTimer()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				st.Record("stage", time.Millisecond, 1)
			}
		}()
	}
	wg.Wait()
	if got := st.Snapshot()[0]; got.Items != 4000 || got.Calls != 4000 {
		t.Errorf("concurrent accumulation = %+v, want 4000 items/calls", got)
	}
}

// TestLoggerSetup checks the shared slog helper: level filtering, format
// selection and the component attribute.
func TestLoggerSetup(t *testing.T) {
	var buf bytes.Buffer
	log := NewLogger("dnatest", &buf, slog.LevelWarn, true)
	log.Info("dropped")
	log.Warn("kept", "job", "j000001")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json log line: %v (%q)", err, buf.String())
	}
	if rec["component"] != "dnatest" || rec["job"] != "j000001" || rec["msg"] != "kept" {
		t.Errorf("record = %v", rec)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Error("level filter did not drop info below warn")
	}

	// Flag registration wires the same options.
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	opts := LogFlags(fs)
	if err := fs.Parse([]string{"-log-level", "debug", "-log-format", "json"}); err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	opts.Output = &buf2
	opts.Logger("flagged").Debug("visible")
	if !strings.Contains(buf2.String(), `"visible"`) {
		t.Errorf("debug level not honored: %q", buf2.String())
	}
}

// TestConcurrentLazyRegistration: many goroutines registering the same
// not-yet-existing series must converge on one payload. The lazy
// per-stage counters are registered from every worker concurrently; if
// the payload were installed after the series is published, two racing
// registrants could each create a counter and one side's increments
// would vanish.
func TestConcurrentLazyRegistration(t *testing.T) {
	r := NewRegistry()
	const workers, per = 16, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Counter(`lazy_total{stage="x"}`, "test").Inc()
				r.Histogram(`lazy_seconds{stage="x"}`, "test", []float64{0.5}).Observe(0.1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter(`lazy_total{stage="x"}`, "test").Value(); got != workers*per {
		t.Errorf("counter = %d, want %d (a racing registration dropped increments)", got, workers*per)
	}
	if got := r.Histogram(`lazy_seconds{stage="x"}`, "test", nil).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}
