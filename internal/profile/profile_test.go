package profile

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
	"dnastore/internal/wetlab"
)

// simulate builds a dataset from a channel for profiling tests.
func simulate(ch channel.Channel, n, length, cov int, seed uint64) *dataset.Dataset {
	refs := channel.RandomReferences(n, length, seed)
	sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(cov)}
	return sim.Simulate("test", refs, seed+1)
}

func TestProfileRejectsEmpty(t *testing.T) {
	if _, err := Profile(&dataset.Dataset{Name: "empty"}, Options{}); err == nil {
		t.Error("empty dataset accepted")
	}
	ds := &dataset.Dataset{Clusters: []dataset.Cluster{{Ref: "ACGT"}}}
	if _, err := Profile(ds, Options{}); err == nil {
		t.Error("dataset with only erasures accepted")
	}
}

func TestProfileCleanChannel(t *testing.T) {
	ds := simulate(channel.NewNaive("clean", channel.Rates{}), 20, 50, 3, 1)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.AggregateRate() != 0 {
		t.Errorf("clean channel aggregate = %v", p.AggregateRate())
	}
	if p.Reads != 60 {
		t.Errorf("reads = %d", p.Reads)
	}
	if p.StrandLen != 50 {
		t.Errorf("strand len = %d", p.StrandLen)
	}
}

func TestProfileRecoversAggregateRates(t *testing.T) {
	truth := channel.Rates{Sub: 0.03, Ins: 0.01, Del: 0.02}
	ds := simulate(channel.NewNaive("n", truth), 300, 110, 10, 2)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Rates()
	if math.Abs(got.Sub-truth.Sub) > 0.004 {
		t.Errorf("sub = %v, want %v", got.Sub, truth.Sub)
	}
	if math.Abs(got.Ins-truth.Ins) > 0.004 {
		t.Errorf("ins = %v, want %v", got.Ins, truth.Ins)
	}
	if math.Abs(got.Del-truth.Del) > 0.004 {
		t.Errorf("del = %v, want %v", got.Del, truth.Del)
	}
	if math.Abs(p.AggregateRate()-0.06) > 0.008 {
		t.Errorf("aggregate = %v", p.AggregateRate())
	}
}

func TestProfileRecoversConditionalRates(t *testing.T) {
	// G is 3x more error-prone than the other bases.
	m := &channel.Model{Label: "cond"}
	for b := dna.Base(0); b < dna.NumBases; b++ {
		m.PerBase[b] = channel.Rates{Sub: 0.01}
	}
	m.PerBase[dna.G] = channel.Rates{Sub: 0.03}
	ds := simulate(m, 400, 110, 10, 3)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	per := p.PerBaseRates()
	if math.Abs(per[dna.G].Sub-0.03) > 0.005 {
		t.Errorf("P(sub|G) = %v, want 0.03", per[dna.G].Sub)
	}
	if math.Abs(per[dna.A].Sub-0.01) > 0.003 {
		t.Errorf("P(sub|A) = %v, want 0.01", per[dna.A].Sub)
	}
}

func TestProfileRecoversSubConfusion(t *testing.T) {
	m := channel.NewNaive("sub", channel.Rates{Sub: 0.05})
	m.SubMatrix = channel.TransitionBiasedSubMatrix(0.8)
	ds := simulate(m, 300, 110, 10, 4)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	conf := p.SubConfusion()
	// A→G should dominate row A at ~0.8.
	if math.Abs(conf[dna.A][dna.G]-0.8) > 0.05 {
		t.Errorf("P(G|sub A) = %v, want ~0.8", conf[dna.A][dna.G])
	}
	// Rows sum to 1.
	for b := 0; b < dna.NumBases; b++ {
		sum := 0.0
		for c := 0; c < dna.NumBases; c++ {
			sum += conf[b][c]
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("row %d sums to %v", b, sum)
		}
	}
}

func TestProfileRecoversLongDeletions(t *testing.T) {
	m := &channel.Model{Label: "ld", LongDel: channel.PaperLongDeletion()}
	ds := simulate(m, 500, 110, 10, 5)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ld := p.LongDeletion()
	if math.Abs(ld.Prob-0.0033)/0.0033 > 0.25 {
		t.Errorf("long-del prob = %v, want ~0.0033", ld.Prob)
	}
	if math.Abs(ld.MeanLen()-2.17) > 0.15 {
		t.Errorf("long-del mean length = %v, want ~2.17", ld.MeanLen())
	}
}

func TestProfileRecoversInsDistribution(t *testing.T) {
	m := channel.NewNaive("ins", channel.Rates{Ins: 0.04})
	m.InsDist = [dna.NumBases]float64{dna.A: 0.7, dna.T: 0.3}
	ds := simulate(m, 300, 110, 8, 6)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	insd := p.InsDistribution()
	if math.Abs(insd[dna.A]-0.7) > 0.05 {
		t.Errorf("P(ins A) = %v, want ~0.7", insd[dna.A])
	}
	if insd[dna.C] > 0.05 {
		t.Errorf("P(ins C) = %v, want ~0", insd[dna.C])
	}
}

func TestProfileRecoversSpatialSkew(t *testing.T) {
	m := channel.NewNaive("skew", channel.NanoporeMix(0.06)).WithSpatial(dist.NanoporeSkew())
	ds := simulate(m, 400, 110, 10, 7)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h := p.SpatialHistogram()
	if len(h) != 110 {
		t.Fatalf("histogram length %d", len(h))
	}
	interior := 0.0
	for i := 20; i < 90; i++ {
		interior += h[i]
	}
	interior /= 70
	if h[0] < 3*interior {
		t.Errorf("position 0 (%v) not elevated vs interior (%v)", h[0], interior)
	}
	if h[109] < 4*interior {
		t.Errorf("final position (%v) not strongly elevated vs interior (%v)", h[109], interior)
	}
}

func TestProfileSecondOrderTable(t *testing.T) {
	// Only one error type: del(G), end-skewed.
	so := channel.SecondOrderError{
		Kind: align.Del, From: dna.G, Rate: 0.08,
		Spatial: []float64{1, 1, 1, 1, 1, 1, 1, 1, 1, 8},
	}
	m := &channel.Model{Label: "so", SecondOrder: []channel.SecondOrderError{so}}
	ds := simulate(m, 300, 110, 8, 8)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := p.TopSecondOrder(3)
	if len(top) == 0 {
		t.Fatal("no second-order stats")
	}
	if top[0].Kind != align.Del || top[0].From != dna.G {
		t.Fatalf("top error = %v, want del(G)", top[0])
	}
	if share := p.SecondOrderShare(1); share < 0.95 {
		t.Errorf("del(G) share = %v, want ~1", share)
	}
	// Its spatial histogram should be end-heavy.
	sp := top[0].Spatial
	lastDecile, firstDecile := 0.0, 0.0
	for i := 0; i < 11; i++ {
		firstDecile += sp[i]
	}
	for i := 99; i < len(sp); i++ {
		lastDecile += sp[i]
	}
	if lastDecile < 3*firstDecile {
		t.Errorf("del(G) spatial not end-heavy: first %v, last %v", firstDecile, lastDecile)
	}
	if !strings.Contains(top[0].String(), "del(G)") {
		t.Errorf("String = %q", top[0].String())
	}
}

func TestProfileRandomizedScripts(t *testing.T) {
	m := channel.NewNaive("n", channel.EqualMix(0.05))
	ds := simulate(m, 100, 110, 5, 9)
	a, err := Profile(ds, Options{RandomizeScripts: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Total error mass must agree regardless of tie-break policy.
	if math.Abs(a.AggregateRate()-b.AggregateRate()) > 1e-9 {
		t.Errorf("aggregate differs by policy: %v vs %v", a.AggregateRate(), b.AggregateRate())
	}
}

func TestProfileMergeAcrossWorkers(t *testing.T) {
	// Deterministic regardless of GOMAXPROCS chunking: profile twice and
	// compare all headline numbers.
	m := channel.NewNaive("n", channel.EqualMix(0.06))
	ds := simulate(m, 200, 110, 5, 10)
	a, _ := Profile(ds, Options{})
	b, _ := Profile(ds, Options{})
	if a.SubCount != b.SubCount || a.InsCount != b.InsCount || a.DelCount != b.DelCount {
		t.Error("profiling is not deterministic")
	}
	if a.Summary() != b.Summary() {
		t.Error("summaries differ")
	}
	if !strings.Contains(a.Summary(), "aggregate") {
		t.Errorf("summary = %q", a.Summary())
	}
}

func TestCalibrationRoundTrip(t *testing.T) {
	// Fit the four tiers against the wetlab ground truth and verify each
	// tier's headline statistics match the profile it came from.
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 400
	cfg.Seed = 11
	ds := wetlab.MustGenerate(cfg)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}

	naive := p.NaiveModel("naive")
	if math.Abs(naive.AggregateRate()-p.Rates().Total()) > 1e-9 {
		t.Errorf("naive aggregate %v != profile %v", naive.AggregateRate(), p.Rates().Total())
	}

	cond := p.ConditionalModel("cond")
	if cond.LongDel.Prob <= 0 {
		t.Error("conditional model lost long deletions")
	}
	sk := p.SkewedModel("skew")
	if sk.Spatial == nil {
		t.Error("skewed model has no spatial distribution")
	}
	so := p.SecondOrderModel("so", 10)
	if len(so.SecondOrder) != 10 {
		t.Errorf("second-order model has %d specific errors", len(so.SecondOrder))
	}
	// Aggregate is preserved across the second-order carve-out.
	if math.Abs(so.AggregateRate()-sk.AggregateRate()) > 1e-6 {
		t.Errorf("second-order aggregate %v != skew aggregate %v", so.AggregateRate(), sk.AggregateRate())
	}

	tiers := p.Tiers(10)
	if len(tiers) != 4 {
		t.Fatalf("got %d tiers", len(tiers))
	}
	for _, tier := range tiers {
		if tier.Name() == "" {
			t.Error("tier without label")
		}
	}

	base := p.DNASimulatorBaseline("dnasim")
	if math.Abs(base.AggregateRate()-p.AggregateRate()) > 0.02 {
		t.Errorf("DNASimulator baseline aggregate %v far from profile %v", base.AggregateRate(), p.AggregateRate())
	}
}

func TestCalibratedSimulatorReproducesProfile(t *testing.T) {
	// The full loop: simulate with a calibrated model, re-profile, compare.
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 400
	cfg.Seed = 12
	real := wetlab.MustGenerate(cfg)
	p1, err := Profile(real, Options{})
	if err != nil {
		t.Fatal(err)
	}
	model := p1.SecondOrderModel("fit", 10)
	sim := channel.Simulator{Channel: model, Coverage: channel.CustomCoverage(real.Coverages())}
	synth := sim.Simulate("synth", real.References(), 99)
	p2, err := Profile(synth, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1.AggregateRate()-p2.AggregateRate())/p1.AggregateRate() > 0.10 {
		t.Errorf("re-profiled aggregate %v vs original %v", p2.AggregateRate(), p1.AggregateRate())
	}
	// Spatial shape should correlate: compare first/last position boosts.
	h1, h2 := p1.SpatialHistogram(), p2.SpatialHistogram()
	ratio := func(h []float64) float64 {
		interior := 0.0
		for i := 20; i < 90; i++ {
			interior += h[i]
		}
		interior /= 70
		return h[109] / interior
	}
	r1, r2 := ratio(h1), ratio(h2)
	if math.Abs(r1-r2)/r1 > 0.35 {
		t.Errorf("end-boost ratio mismatch: real %v, synthetic %v", r1, r2)
	}
}
