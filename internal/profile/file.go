package profile

import (
	"bytes"
	"errors"
	"fmt"
	"os"

	"dnastore/internal/durable"
)

// profileFrame names the serialized profile inside its container.
const profileFrame = "profile.json"

// WriteFile atomically writes the profile to path as a durable container
// with default Reed–Solomon parity — a calibration run is expensive enough
// that its artifact deserves checksums.
func (p *ErrorProfile) WriteFile(path string) error {
	return durable.WriteContainerFile(path, durable.KindProfile,
		durable.Options{Parity: durable.DefaultParity},
		func(w *durable.Writer) error {
			var buf bytes.Buffer
			if err := p.WriteJSON(&buf); err != nil {
				return err
			}
			return w.WriteFrame(profileFrame, buf.Bytes())
		})
}

// ReadFile reads a profile from path, accepting both durable containers
// (verified, parity-repaired) and legacy bare-JSON files; legacy reports
// which one was found.
func ReadFile(path string) (p *ErrorProfile, legacy bool, err error) {
	frames, err := durable.ReadContainerFile(path, durable.KindProfile)
	if errors.Is(err, durable.ErrNotContainer) {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		p, err := ReadJSON(f)
		if err != nil {
			return nil, true, err
		}
		return p, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	for _, fr := range frames {
		if fr.Name == profileFrame {
			p, err := ReadJSON(bytes.NewReader(fr.Payload))
			return p, false, err
		}
	}
	return nil, false, fmt.Errorf("profile: %s has no %q section", path, profileFrame)
}
