// Package profile implements the paper's data-driven parameter extraction
// (§2.3, §3.3): given reference strands and their noisy clusters, it
// recovers the maximum-likelihood edit script of every read (Appendix B),
// and aggregates the scripts into an ErrorProfile holding every statistic
// the simulator tiers need — aggregate and per-base conditional IDS rates,
// the substitution confusion matrix, the long-deletion length distribution,
// the spatial error histogram, and the second-order error table with
// per-error spatial histograms.
//
// The companion calibrate.go turns an ErrorProfile into the paper's four
// progressively richer channel models.
package profile

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// SecondOrderStat is one specific error — e.g. del(G) or sub(A→G) — with
// its occurrence count and spatial histogram (§3.3.3, Fig 3.6).
type SecondOrderStat struct {
	// Kind is align.Sub, align.Del or align.Ins.
	Kind align.OpKind
	// From is the reference base (Sub/Del); unset for Ins.
	From dna.Base
	// To is the produced base (Sub/Ins); unset for Del.
	To dna.Base
	// Count is the number of occurrences across all profiled reads.
	Count int
	// Spatial[p] counts occurrences at reference position p.
	Spatial []float64
}

// String renders the error in the paper's style.
func (s SecondOrderStat) String() string {
	e := channel.SecondOrderError{Kind: s.Kind, From: s.From, To: s.To}
	return fmt.Sprintf("%s ×%d", e.String(), s.Count)
}

// ErrorProfile aggregates every statistic extracted from a dataset.
type ErrorProfile struct {
	// StrandLen is the reference strand length the spatial histograms are
	// indexed by (profiles assume near-uniform reference lengths, as in
	// every dataset the paper uses).
	StrandLen int
	// Reads is the number of (reference, read) pairs profiled.
	Reads int
	// RefBases is the total number of reference bases consumed.
	RefBases int

	// SubCount, InsCount, DelCount, LongDelStarts are total error-event
	// counts; DelCount counts single (isolated) deletions only, and
	// LongDelBases the bases removed by bursts.
	SubCount, InsCount, DelCount int
	LongDelStarts, LongDelBases  int

	// BaseCounts[b] is how many times base b was consumed across reads —
	// the denominator of the conditional probabilities.
	BaseCounts [dna.NumBases]int
	// SubPerBase[b], InsPerBase[b], DelPerBase[b] count errors conditioned
	// on the base (insertions are attributed to the base they follow).
	SubPerBase, InsPerBase, DelPerBase [dna.NumBases]int
	// SubMatrix[b][c] counts substitutions of b by c.
	SubMatrix [dna.NumBases][dna.NumBases]int
	// InsBases[c] counts insertions of base c.
	InsBases [dna.NumBases]int
	// LongDelLengths[k] counts bursts of length MinLongDel+k.
	LongDelLengths []int
	// Spatial[p] counts all error events at reference position p.
	Spatial []float64
	// HomoBases counts reference positions inside homopolymer runs of
	// length >= 3 (across reads); HomoErrors counts error events at those
	// positions. Together with the complements they expose the
	// homopolymer error boost §1.2 describes.
	HomoBases, HomoErrors int
	// SecondOrder tallies every (kind, from, to) triple, sorted by
	// descending count after profiling.
	SecondOrder []SecondOrderStat
}

// MinLongDel is the burst threshold: consecutive deletions of at least this
// length count as one long deletion (§3.3.1 uses 2).
const MinLongDel = 2

// Options configure profiling.
type Options struct {
	// RandomizeScripts selects the paper's Appendix B tie-break: ambiguous
	// edit scripts are resolved uniformly at random (requires Seed).
	RandomizeScripts bool
	// Seed drives the randomized tie-breaks.
	Seed uint64
	// Affine extracts edit scripts under affine gap costs (Gotoh) instead
	// of unit costs: contiguous burst deletions stay grouped, sharpening
	// the fitted long-deletion statistics. Mutually exclusive with
	// RandomizeScripts.
	Affine bool
	// AffineParams overrides the affine costs; the zero value uses
	// align.DefaultAffine().
	AffineParams align.AffineParams
}

// Profile extracts the error profile of a dataset. Erasure clusters are
// skipped. It returns an error when the dataset contains no reads.
func Profile(ds *dataset.Dataset, opts Options) (*ErrorProfile, error) {
	strandLen := 0
	for _, c := range ds.Clusters {
		if c.Ref.Len() > strandLen {
			strandLen = c.Ref.Len()
		}
	}
	if strandLen == 0 || ds.NumReads() == 0 {
		return nil, fmt.Errorf("profile: dataset %q has no reads to profile", ds.Name)
	}
	if opts.Affine && opts.RandomizeScripts {
		return nil, fmt.Errorf("profile: Affine and RandomizeScripts are mutually exclusive")
	}
	affParams := opts.AffineParams
	if opts.Affine && affParams == (align.AffineParams{}) {
		affParams = align.DefaultAffine()
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(ds.Clusters) {
		workers = len(ds.Clusters)
	}
	if workers < 1 {
		workers = 1
	}
	parts := make([]*ErrorProfile, workers)
	var wg sync.WaitGroup
	chunk := (len(ds.Clusters) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(ds.Clusters) {
			hi = len(ds.Clusters)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			p := newProfile(strandLen)
			var r *rng.RNG
			if opts.RandomizeScripts {
				r = rng.New(opts.Seed ^ (0x9e3779b97f4a7c15 * uint64(w+1)))
			}
			so := make(map[soKey]*SecondOrderStat)
			ex := extractor{randomize: opts.RandomizeScripts, affine: opts.Affine, affParams: affParams, rng: r}
			for i := lo; i < hi; i++ {
				c := ds.Clusters[i]
				for _, read := range c.Reads {
					p.addRead(c.Ref, read, ex, so)
				}
			}
			p.SecondOrder = flattenSO(so)
			parts[w] = p
		}(w, lo, hi)
	}
	wg.Wait()

	total := newProfile(strandLen)
	for _, p := range parts {
		if p != nil {
			total.merge(p)
		}
	}
	sort.Slice(total.SecondOrder, func(i, j int) bool {
		a, b := total.SecondOrder[i], total.SecondOrder[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		// Deterministic secondary order.
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return total, nil
}

type soKey struct {
	kind     align.OpKind
	from, to dna.Base
}

func newProfile(strandLen int) *ErrorProfile {
	return &ErrorProfile{
		StrandLen:      strandLen,
		LongDelLengths: make([]int, 8),
		Spatial:        make([]float64, strandLen+1),
	}
}

// extractor selects the edit-script extraction policy per worker.
type extractor struct {
	randomize bool
	affine    bool
	affParams align.AffineParams
	rng       *rng.RNG
}

// script extracts the edit script under the configured policy.
func (e extractor) script(ref, read dna.Strand) []align.Op {
	if e.affine {
		ops, err := align.AffineScript(string(ref), string(read), e.affParams)
		if err != nil {
			// Parameters were validated up front; this is unreachable.
			panic(err)
		}
		return ops
	}
	return align.Script(string(ref), string(read), align.ScriptOptions{Randomize: e.randomize, RNG: e.rng})
}

// addRead extracts the edit script of one read and accumulates statistics.
func (p *ErrorProfile) addRead(ref, read dna.Strand, ex extractor, so map[soKey]*SecondOrderStat) {
	p.Reads++
	p.RefBases += ref.Len()
	for i := 0; i < ref.Len(); i++ {
		p.BaseCounts[ref.At(i)]++
	}
	// Mark homopolymer-run membership (runs >= 3) for the boost statistic.
	inRun := make([]bool, ref.Len())
	for _, run := range ref.Homopolymers(3) {
		for q := run.Pos; q < run.Pos+run.Len; q++ {
			inRun[q] = true
		}
		p.HomoBases += run.Len
	}
	ops := ex.script(ref, read)

	recordSO := func(kind align.OpKind, from, to dna.Base, pos int) {
		key := soKey{kind, from, to}
		s := so[key]
		if s == nil {
			s = &SecondOrderStat{Kind: kind, From: from, To: to, Spatial: make([]float64, p.StrandLen+1)}
			so[key] = s
		}
		s.Count++
		if pos > p.StrandLen {
			pos = p.StrandLen
		}
		s.Spatial[pos]++
	}
	spatial := func(pos int) {
		if pos >= 0 && pos < len(inRun) && inRun[pos] {
			p.HomoErrors++
		}
		if pos > p.StrandLen {
			pos = p.StrandLen
		}
		p.Spatial[pos]++
	}

	for k := 0; k < len(ops); k++ {
		op := ops[k]
		switch op.Kind {
		case align.Sub:
			from := dna.MustBase(op.RefBase)
			to := dna.MustBase(op.ReadBase)
			p.SubCount++
			p.SubPerBase[from]++
			p.SubMatrix[from][to]++
			spatial(op.RefPos)
			recordSO(align.Sub, from, to, op.RefPos)
		case align.Ins:
			to := dna.MustBase(op.ReadBase)
			p.InsCount++
			p.InsBases[to]++
			// Attribute the insertion to the base it follows.
			attach := op.RefPos - 1
			if attach < 0 {
				attach = 0
			}
			if attach < ref.Len() {
				p.InsPerBase[ref.At(attach)]++
			}
			spatial(op.RefPos)
			recordSO(align.Ins, 0, to, op.RefPos)
		case align.Del:
			// Measure the run of consecutive deletions.
			runLen := 1
			for k+runLen < len(ops) && ops[k+runLen].Kind == align.Del &&
				ops[k+runLen].RefPos == op.RefPos+runLen {
				runLen++
			}
			if runLen >= MinLongDel {
				p.LongDelStarts++
				p.LongDelBases += runLen
				idx := runLen - MinLongDel
				for idx >= len(p.LongDelLengths) {
					p.LongDelLengths = append(p.LongDelLengths, 0)
				}
				p.LongDelLengths[idx]++
				for q := 0; q < runLen; q++ {
					spatial(op.RefPos + q)
				}
			} else {
				from := dna.MustBase(op.RefBase)
				p.DelCount++
				p.DelPerBase[from]++
				spatial(op.RefPos)
				recordSO(align.Del, from, 0, op.RefPos)
			}
			k += runLen - 1
		}
	}
}

// merge folds another partial profile into p.
func (p *ErrorProfile) merge(q *ErrorProfile) {
	p.Reads += q.Reads
	p.RefBases += q.RefBases
	p.SubCount += q.SubCount
	p.InsCount += q.InsCount
	p.DelCount += q.DelCount
	p.LongDelStarts += q.LongDelStarts
	p.LongDelBases += q.LongDelBases
	p.HomoBases += q.HomoBases
	p.HomoErrors += q.HomoErrors
	for b := 0; b < dna.NumBases; b++ {
		p.BaseCounts[b] += q.BaseCounts[b]
		p.SubPerBase[b] += q.SubPerBase[b]
		p.InsPerBase[b] += q.InsPerBase[b]
		p.DelPerBase[b] += q.DelPerBase[b]
		p.InsBases[b] += q.InsBases[b]
		for c := 0; c < dna.NumBases; c++ {
			p.SubMatrix[b][c] += q.SubMatrix[b][c]
		}
	}
	for i, v := range q.LongDelLengths {
		for i >= len(p.LongDelLengths) {
			p.LongDelLengths = append(p.LongDelLengths, 0)
		}
		p.LongDelLengths[i] += v
	}
	for i, v := range q.Spatial {
		if i < len(p.Spatial) {
			p.Spatial[i] += v
		} else {
			p.Spatial[len(p.Spatial)-1] += v
		}
	}
	// Merge second-order tables.
	idx := make(map[soKey]int, len(p.SecondOrder))
	for i, s := range p.SecondOrder {
		idx[soKey{s.Kind, s.From, s.To}] = i
	}
	for _, s := range q.SecondOrder {
		key := soKey{s.Kind, s.From, s.To}
		if i, ok := idx[key]; ok {
			p.SecondOrder[i].Count += s.Count
			for j, v := range s.Spatial {
				if j < len(p.SecondOrder[i].Spatial) {
					p.SecondOrder[i].Spatial[j] += v
				}
			}
		} else {
			cp := s
			cp.Spatial = append([]float64(nil), s.Spatial...)
			idx[key] = len(p.SecondOrder)
			p.SecondOrder = append(p.SecondOrder, cp)
		}
	}
}

func flattenSO(so map[soKey]*SecondOrderStat) []SecondOrderStat {
	out := make([]SecondOrderStat, 0, len(so))
	for _, s := range so {
		out = append(out, *s)
	}
	return out
}

// AggregateRate returns the total error events per reference base,
// counting a long-deletion burst once per deleted base.
func (p *ErrorProfile) AggregateRate() float64 {
	if p.RefBases == 0 {
		return 0
	}
	return float64(p.SubCount+p.InsCount+p.DelCount+p.LongDelBases) / float64(p.RefBases)
}

// Rates returns the aggregate naive-simulator parameters: the three IDS
// probabilities with all deletions (single and burst bases) folded into
// Del, as a naive simulator models them.
func (p *ErrorProfile) Rates() channel.Rates {
	if p.RefBases == 0 {
		return channel.Rates{}
	}
	n := float64(p.RefBases)
	return channel.Rates{
		Sub: float64(p.SubCount) / n,
		Ins: float64(p.InsCount) / n,
		Del: float64(p.DelCount+p.LongDelBases) / n,
	}
}

// PerBaseRates returns the conditional P(err-type | base) table, excluding
// long-deletion bursts (modelled separately).
func (p *ErrorProfile) PerBaseRates() [dna.NumBases]channel.Rates {
	var out [dna.NumBases]channel.Rates
	for b := 0; b < dna.NumBases; b++ {
		n := float64(p.BaseCounts[b])
		if n == 0 {
			continue
		}
		out[b] = channel.Rates{
			Sub: float64(p.SubPerBase[b]) / n,
			Ins: float64(p.InsPerBase[b]) / n,
			Del: float64(p.DelPerBase[b]) / n,
		}
	}
	return out
}

// LongDeletion returns the burst model measured from the data.
func (p *ErrorProfile) LongDeletion() channel.LongDeletion {
	ld := channel.LongDeletion{MinLen: MinLongDel}
	if p.RefBases == 0 {
		return ld
	}
	ld.Prob = float64(p.LongDelStarts) / float64(p.RefBases)
	weights := make([]float64, 0, len(p.LongDelLengths))
	last := -1
	for i, c := range p.LongDelLengths {
		if c > 0 {
			last = i
		}
		weights = append(weights, float64(c))
	}
	if last < 0 {
		return channel.LongDeletion{MinLen: MinLongDel}
	}
	ld.LengthWeights = weights[:last+1]
	return ld
}

// SubConfusion returns the normalised substitution confusion matrix
// P(to | sub of from); rows with no observations are all zero.
func (p *ErrorProfile) SubConfusion() [dna.NumBases][dna.NumBases]float64 {
	var out [dna.NumBases][dna.NumBases]float64
	for b := 0; b < dna.NumBases; b++ {
		total := 0
		for c := 0; c < dna.NumBases; c++ {
			total += p.SubMatrix[b][c]
		}
		if total == 0 {
			continue
		}
		for c := 0; c < dna.NumBases; c++ {
			out[b][c] = float64(p.SubMatrix[b][c]) / float64(total)
		}
	}
	return out
}

// InsDistribution returns the normalised distribution of inserted bases.
func (p *ErrorProfile) InsDistribution() [dna.NumBases]float64 {
	var out [dna.NumBases]float64
	total := 0
	for _, c := range p.InsBases {
		total += c
	}
	if total == 0 {
		return out
	}
	for b, c := range p.InsBases {
		out[b] = float64(c) / float64(total)
	}
	return out
}

// SpatialHistogram returns the per-position error counts trimmed to the
// strand length (the one-past-end bin is folded into the final position).
func (p *ErrorProfile) SpatialHistogram() []float64 {
	if p.StrandLen == 0 {
		return nil
	}
	out := make([]float64, p.StrandLen)
	copy(out, p.Spatial[:p.StrandLen])
	out[p.StrandLen-1] += p.Spatial[p.StrandLen]
	return out
}

// HomopolymerErrorRatio returns how much likelier an error event is at a
// position inside a homopolymer run (length >= 3) than outside one; 1
// means no boost. It returns 0 when the dataset has no run positions.
func (p *ErrorProfile) HomopolymerErrorRatio() float64 {
	if p.HomoBases == 0 || p.RefBases <= p.HomoBases {
		return 0
	}
	totalErrors := p.SubCount + p.InsCount + p.DelCount + p.LongDelBases
	outErrors := totalErrors - p.HomoErrors
	inRate := float64(p.HomoErrors) / float64(p.HomoBases)
	outRate := float64(outErrors) / float64(p.RefBases-p.HomoBases)
	if outRate == 0 {
		return 0
	}
	return inRate / outRate
}

// TopSecondOrder returns the k most frequent specific errors.
func (p *ErrorProfile) TopSecondOrder(k int) []SecondOrderStat {
	if k > len(p.SecondOrder) {
		k = len(p.SecondOrder)
	}
	return p.SecondOrder[:k]
}

// SecondOrderShare returns the fraction of all error events covered by the
// top-k specific errors (the paper measures 56% for k=10).
func (p *ErrorProfile) SecondOrderShare(k int) float64 {
	total := p.SubCount + p.InsCount + p.DelCount
	if total == 0 {
		return 0
	}
	covered := 0
	for _, s := range p.TopSecondOrder(k) {
		covered += s.Count
	}
	return float64(covered) / float64(total)
}

// Summary renders the headline statistics on a few lines.
func (p *ErrorProfile) Summary() string {
	ld := p.LongDeletion()
	return fmt.Sprintf(
		"reads %d, ref bases %d, aggregate %.4f (sub %.4f, ins %.4f, del %.4f), long-del p=%.4f mean len %.2f, top-10 second-order share %.1f%%",
		p.Reads, p.RefBases, p.AggregateRate(),
		p.Rates().Sub, p.Rates().Ins, p.Rates().Del,
		ld.Prob, ld.MeanLen(), 100*p.SecondOrderShare(10))
}
