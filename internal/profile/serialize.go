package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"dnastore/internal/align"
	"dnastore/internal/dna"
)

// JSON serialization of calibrated profiles, so an expensive profiling run
// over a large dataset can be stored alongside the data and reloaded by
// later simulations (the workflow of shipping "error dictionaries" that
// DNASimulator hard-codes — except fitted, versioned and reproducible).

// serialProfile is the stable on-disk form of an ErrorProfile. Fields use
// explicit JSON names so the format survives internal refactors.
type serialProfile struct {
	Version        int                `json:"version"`
	StrandLen      int                `json:"strand_len"`
	Reads          int                `json:"reads"`
	RefBases       int                `json:"ref_bases"`
	SubCount       int                `json:"sub_count"`
	InsCount       int                `json:"ins_count"`
	DelCount       int                `json:"del_count"`
	LongDelStarts  int                `json:"long_del_starts"`
	LongDelBases   int                `json:"long_del_bases"`
	HomoBases      int                `json:"homo_bases"`
	HomoErrors     int                `json:"homo_errors"`
	BaseCounts     [dna.NumBases]int  `json:"base_counts"`
	SubPerBase     [dna.NumBases]int  `json:"sub_per_base"`
	InsPerBase     [dna.NumBases]int  `json:"ins_per_base"`
	DelPerBase     [dna.NumBases]int  `json:"del_per_base"`
	SubMatrix      [][]int            `json:"sub_matrix"`
	InsBases       [dna.NumBases]int  `json:"ins_bases"`
	LongDelLengths []int              `json:"long_del_lengths"`
	Spatial        []float64          `json:"spatial"`
	SecondOrder    []serialSObuiltRow `json:"second_order"`
}

type serialSObuiltRow struct {
	Kind    string    `json:"kind"` // "sub", "del", "ins"
	From    string    `json:"from,omitempty"`
	To      string    `json:"to,omitempty"`
	Count   int       `json:"count"`
	Spatial []float64 `json:"spatial,omitempty"`
}

// currentVersion is the serialization format version.
const currentVersion = 1

// WriteJSON serialises the profile.
func (p *ErrorProfile) WriteJSON(w io.Writer) error {
	sp := serialProfile{
		Version:        currentVersion,
		StrandLen:      p.StrandLen,
		Reads:          p.Reads,
		RefBases:       p.RefBases,
		SubCount:       p.SubCount,
		InsCount:       p.InsCount,
		DelCount:       p.DelCount,
		LongDelStarts:  p.LongDelStarts,
		LongDelBases:   p.LongDelBases,
		HomoBases:      p.HomoBases,
		HomoErrors:     p.HomoErrors,
		BaseCounts:     p.BaseCounts,
		SubPerBase:     p.SubPerBase,
		InsPerBase:     p.InsPerBase,
		DelPerBase:     p.DelPerBase,
		InsBases:       p.InsBases,
		LongDelLengths: p.LongDelLengths,
		Spatial:        p.Spatial,
	}
	sp.SubMatrix = make([][]int, dna.NumBases)
	for b := 0; b < dna.NumBases; b++ {
		sp.SubMatrix[b] = make([]int, dna.NumBases)
		for c := 0; c < dna.NumBases; c++ {
			sp.SubMatrix[b][c] = p.SubMatrix[b][c]
		}
	}
	for _, s := range p.SecondOrder {
		row := serialSObuiltRow{Kind: s.Kind.String(), Count: s.Count, Spatial: s.Spatial}
		if s.Kind != align.Ins {
			row.From = s.From.String()
		}
		if s.Kind != align.Del {
			row.To = s.To.String()
		}
		sp.SecondOrder = append(sp.SecondOrder, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sp)
}

// ReadJSON deserialises a profile written by WriteJSON.
func ReadJSON(r io.Reader) (*ErrorProfile, error) {
	var sp serialProfile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		return nil, fmt.Errorf("profile: decode: %w", err)
	}
	if sp.Version != currentVersion {
		return nil, fmt.Errorf("profile: unsupported format version %d", sp.Version)
	}
	if sp.StrandLen <= 0 {
		return nil, fmt.Errorf("profile: invalid strand length %d", sp.StrandLen)
	}
	p := &ErrorProfile{
		StrandLen:      sp.StrandLen,
		Reads:          sp.Reads,
		RefBases:       sp.RefBases,
		SubCount:       sp.SubCount,
		InsCount:       sp.InsCount,
		DelCount:       sp.DelCount,
		LongDelStarts:  sp.LongDelStarts,
		LongDelBases:   sp.LongDelBases,
		HomoBases:      sp.HomoBases,
		HomoErrors:     sp.HomoErrors,
		BaseCounts:     sp.BaseCounts,
		SubPerBase:     sp.SubPerBase,
		InsPerBase:     sp.InsPerBase,
		DelPerBase:     sp.DelPerBase,
		InsBases:       sp.InsBases,
		LongDelLengths: sp.LongDelLengths,
		Spatial:        sp.Spatial,
	}
	if len(sp.SubMatrix) != dna.NumBases {
		return nil, fmt.Errorf("profile: substitution matrix has %d rows", len(sp.SubMatrix))
	}
	for b := 0; b < dna.NumBases; b++ {
		if len(sp.SubMatrix[b]) != dna.NumBases {
			return nil, fmt.Errorf("profile: substitution matrix row %d has %d columns", b, len(sp.SubMatrix[b]))
		}
		for c := 0; c < dna.NumBases; c++ {
			p.SubMatrix[b][c] = sp.SubMatrix[b][c]
		}
	}
	if len(p.Spatial) != p.StrandLen+1 {
		return nil, fmt.Errorf("profile: spatial histogram length %d != %d", len(p.Spatial), p.StrandLen+1)
	}
	for _, row := range sp.SecondOrder {
		s := SecondOrderStat{Count: row.Count, Spatial: row.Spatial}
		switch row.Kind {
		case "sub":
			s.Kind = align.Sub
		case "del":
			s.Kind = align.Del
		case "ins":
			s.Kind = align.Ins
		default:
			return nil, fmt.Errorf("profile: unknown second-order kind %q", row.Kind)
		}
		if row.From != "" {
			b, err := dna.BaseFromByte(row.From[0])
			if err != nil {
				return nil, err
			}
			s.From = b
		}
		if row.To != "" {
			b, err := dna.BaseFromByte(row.To[0])
			if err != nil {
				return nil, err
			}
			s.To = b
		}
		p.SecondOrder = append(p.SecondOrder, s)
	}
	return p, nil
}
