package profile

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/dataset"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// runRichRefs builds references containing frequent homopolymer runs.
func runRichRefs(n, length int, seed uint64) []dna.Strand {
	r := rng.New(seed)
	refs := make([]dna.Strand, n)
	for i := range refs {
		var sb strings.Builder
		for sb.Len() < length {
			b := dna.Base(r.Intn(dna.NumBases))
			runLen := 1 + r.Intn(5)
			for k := 0; k < runLen && sb.Len() < length; k++ {
				sb.WriteByte(b.Byte())
			}
		}
		refs[i] = dna.Strand(sb.String())
	}
	return refs
}

func TestHomopolymerRatioDetectsBoost(t *testing.T) {
	refs := runRichRefs(300, 110, 1)
	base := channel.NewNaive("b", channel.EqualMix(0.05))
	boosted, err := channel.NewHomopolymerModel(base, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	simulate := func(ch channel.Channel) *dataset.Dataset {
		sim := channel.Simulator{Channel: ch, Coverage: channel.FixedCoverage(8)}
		return sim.Simulate("hp", refs, 2)
	}
	pBase, err := Profile(simulate(base), Options{})
	if err != nil {
		t.Fatal(err)
	}
	pBoost, err := Profile(simulate(boosted), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rBase := pBase.HomopolymerErrorRatio()
	rBoost := pBoost.HomopolymerErrorRatio()
	// The unboosted channel may sit slightly above 1 because insertions
	// adjacent to a run alias into it under edit-distance attribution, but
	// the boosted channel must measure far higher.
	if math.Abs(rBase-1) > 0.35 {
		t.Errorf("unboosted homopolymer ratio = %v, want ≈1", rBase)
	}
	if rBoost < rBase*1.8 {
		t.Errorf("boosted ratio %v not clearly above unboosted %v", rBoost, rBase)
	}
}

func TestHomopolymerRatioNoRuns(t *testing.T) {
	// References without any run >= 3: ratio must report 0 (undefined).
	refs := make([]dna.Strand, 50)
	for i := range refs {
		refs[i] = dna.Strand(strings.Repeat("ACGT", 25))
	}
	sim := channel.Simulator{
		Channel:  channel.NewNaive("b", channel.EqualMix(0.05)),
		Coverage: channel.FixedCoverage(4),
	}
	p, err := Profile(sim.Simulate("norun", refs, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.HomoBases != 0 {
		t.Errorf("HomoBases = %d for run-free references", p.HomoBases)
	}
	if p.HomopolymerErrorRatio() != 0 {
		t.Errorf("ratio = %v, want 0", p.HomopolymerErrorRatio())
	}
}
