package profile

import (
	"dnastore/internal/align"
	"dnastore/internal/channel"
	"dnastore/internal/dist"
	"dnastore/internal/dna"
)

// The calibration methods turn a measured ErrorProfile into the paper's
// four simulator tiers (§3.3, Tables 3.1/3.2). Each tier consumes strictly
// more of the profile:
//
//	NaiveModel        — aggregate IDS rates only
//	ConditionalModel  — + per-base conditional rates, confusion matrix,
//	                     long deletions ("+ Cond. Prob + Del")
//	SkewedModel       — + empirical spatial distribution ("+ Spatial Skew")
//	SecondOrderModel  — + top-K specific errors with their own spatial
//	                     histograms ("+ 2nd-order Errors")

// NaiveModel fits the paper's naive simulator: the three aggregate
// probabilities, position-independent and base-independent.
func (p *ErrorProfile) NaiveModel(label string) *channel.Model {
	return channel.NewNaive(label, p.Rates())
}

// ConditionalModel fits the "+ Cond. Prob + Del" tier: conditional
// per-base rates, the substitution confusion matrix, the insertion base
// distribution and the long-deletion burst model.
func (p *ErrorProfile) ConditionalModel(label string) *channel.Model {
	m := &channel.Model{Label: label}
	m.PerBase = p.PerBaseRates()
	m.SubMatrix = p.SubConfusion()
	m.InsDist = p.InsDistribution()
	m.LongDel = p.LongDeletion()
	return m
}

// SkewedModel fits the "+ Spatial Skew" tier: the conditional model shaped
// by the measured per-position error histogram.
func (p *ErrorProfile) SkewedModel(label string) *channel.Model {
	m := p.ConditionalModel(label)
	return m.WithSpatial(dist.Empirical{Weights: p.SpatialHistogram(), Label: "fitted"}).WithLabel(label)
}

// SecondOrderModel fits the "+ 2nd-order Errors" tier: the skewed model
// with the top-k specific errors carved out, each carrying its own fitted
// spatial histogram. The generic mass shrinks so the aggregate error rate
// is unchanged (§3.3.3).
func (p *ErrorProfile) SecondOrderModel(label string, k int) *channel.Model {
	base := p.SkewedModel(label)
	stats := p.TopSecondOrder(k)
	errors := make([]channel.SecondOrderError, 0, len(stats))
	for _, s := range stats {
		e := channel.SecondOrderError{Kind: s.Kind, From: s.From, To: s.To}
		// Convert the count into a per-applicable-position probability.
		switch s.Kind {
		case align.Ins:
			if p.RefBases > 0 {
				e.Rate = float64(s.Count) / float64(p.RefBases)
			}
		default:
			if n := p.BaseCounts[s.From]; n > 0 {
				e.Rate = float64(s.Count) / float64(n)
			}
		}
		// Trim the one-past-end bin into the final position, matching
		// SpatialHistogram's convention.
		if len(s.Spatial) > 1 {
			sp := make([]float64, len(s.Spatial)-1)
			copy(sp, s.Spatial[:len(sp)])
			sp[len(sp)-1] += s.Spatial[len(s.Spatial)-1]
			e.Spatial = sp
		}
		errors = append(errors, e)
	}
	out := base.WithSecondOrder(errors)
	out.Label = label
	return out
}

// Tiers returns all four calibrated models in evaluation order with the
// paper's table labels.
func (p *ErrorProfile) Tiers(topK int) []*channel.Model {
	return []*channel.Model{
		p.NaiveModel("Naive Simulator"),
		p.ConditionalModel(`" + Cond. Prob + Del`),
		p.SkewedModel(`" + Spatial Skew`),
		p.SecondOrderModel(`" + 2nd-order Errors`, topK),
	}
}

// StagedPipeline calibrates the population-aware multi-stage channel: the
// fitted error mass is split across the physical stages roughly as the
// literature attributes it — sequencing dominates (~70%) and keeps the
// full conditional + spatial shape of the measured profile, synthesis
// (~20%), PCR (~5%) and decay (~5%) take generic stage shapes at the
// remaining mass. The PCR and aging stages carry their default pool
// effects (amplification skew, strand breakage), so binding the pipeline's
// coverage reproduces the population spread the per-strand tiers cannot.
func (p *ErrorProfile) StagedPipeline(label string, storageYears float64) channel.Pipeline {
	const seqShare, synthShare, pcrShare, decayShare = 0.70, 0.20, 0.05, 0.05
	agg := p.AggregateRate()

	seq := p.ConditionalModel("sequencing")
	for b := range seq.PerBase {
		r := seq.PerBase[b]
		seq.PerBase[b] = channel.Rates{Sub: seqShare * r.Sub, Ins: seqShare * r.Ins, Del: seqShare * r.Del}
	}
	seq.LongDel.Prob *= seqShare
	seq = seq.WithSpatial(dist.Empirical{Weights: p.SpatialHistogram(), Label: "fitted"}).WithLabel("sequencing")

	var decayPerYear float64
	if storageYears > 0 {
		decayPerYear = decayShare * agg / storageYears
	}
	return channel.Pipeline{
		Label: label,
		Stages: []channel.Stage{
			channel.NewSynthesisStage(synthShare * agg),
			channel.NewPCRAmplification(30, pcrShare*agg/30, channel.DefaultPCREfficiencySD),
			channel.NewAgingStage(storageYears, decayPerYear, channel.DefaultBreakagePerYear),
			seq,
		},
	}
}

// DNASimulatorBaseline builds the static-dictionary DNASimulator whose
// per-base rates are taken from this profile, mirroring how the original
// tool ships precomputed dictionaries per technology pair.
func (p *ErrorProfile) DNASimulatorBaseline(label string) *channel.DNASimulator {
	s := &channel.DNASimulator{Label: label, LongDelLen: MinLongDel}
	per := p.PerBaseRates()
	ld := p.LongDeletion()
	for b := 0; b < dna.NumBases; b++ {
		s.Errors[b] = channel.BaseErrorRates{
			Sub:     per[b].Sub,
			Ins:     per[b].Ins,
			Del:     per[b].Del,
			LongDel: ld.Prob,
		}
	}
	return s
}
