package profile

import (
	"math"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/rng"
)

func TestStagedPipelineCalibration(t *testing.T) {
	truth := channel.Rates{Sub: 0.025, Ins: 0.01, Del: 0.025}
	ds := simulate(channel.NewNaive("n", truth), 300, 110, 10, 3)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}

	pipe := p.StagedPipeline("staged", 100)
	if len(pipe.Stages) != 4 {
		t.Fatalf("staged pipeline has %d stages", len(pipe.Stages))
	}
	if _, ok := pipe.Stages[1].(*channel.PCRAmplification); !ok {
		t.Errorf("stage 1 is %T, want *channel.PCRAmplification", pipe.Stages[1])
	}
	if _, ok := pipe.Stages[2].(*channel.AgingStage); !ok {
		t.Errorf("stage 2 is %T, want *channel.AgingStage", pipe.Stages[2])
	}

	// The stage split must conserve the fitted error mass.
	agg, complete := pipe.AggregateRate()
	if !complete {
		t.Error("calibrated stages all report rates")
	}
	if fitted := p.AggregateRate(); math.Abs(agg-fitted)/fitted > 0.15 {
		t.Errorf("staged aggregate %v strays from fitted %v", agg, fitted)
	}

	// Pool effects ride along and bind over coverage.
	cov := pipe.BindCoverage(channel.FixedCoverage(10))
	if !strings.Contains(cov.Name(), "+pool(") {
		t.Errorf("pool stages not bound: %q", cov.Name())
	}

	ref := channel.RandomReferences(1, 110, 5)[0]
	if err := pipe.Transmit(ref, rng.New(7)).Validate(); err != nil {
		t.Fatal(err)
	}
}
