package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dnastore/internal/wetlab"
)

func TestProfileJSONRoundTrip(t *testing.T) {
	cfg := wetlab.DefaultConfig()
	cfg.NumClusters = 150
	cfg.Seed = 21
	ds := wetlab.MustGenerate(cfg)
	p, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Summary() != p.Summary() {
		t.Errorf("summary changed:\n%s\n%s", got.Summary(), p.Summary())
	}
	if math.Abs(got.AggregateRate()-p.AggregateRate()) > 1e-12 {
		t.Error("aggregate rate changed")
	}
	if got.HomopolymerErrorRatio() != p.HomopolymerErrorRatio() {
		t.Error("homopolymer ratio changed")
	}
	// The calibrated tiers built from the deserialized profile match.
	a := p.SecondOrderModel("m", 10)
	b := got.SecondOrderModel("m", 10)
	if math.Abs(a.AggregateRate()-b.AggregateRate()) > 1e-12 {
		t.Error("calibrated model aggregate changed")
	}
	if len(a.SecondOrder) != len(b.SecondOrder) {
		t.Fatal("second-order error count changed")
	}
	for i := range a.SecondOrder {
		if a.SecondOrder[i].String() != b.SecondOrder[i].String() {
			t.Errorf("second-order %d: %s != %s", i, a.SecondOrder[i], b.SecondOrder[i])
		}
		if math.Abs(a.SecondOrder[i].Rate-b.SecondOrder[i].Rate) > 1e-12 {
			t.Errorf("second-order %d rate changed", i)
		}
	}
}

func TestReadJSONRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{}`,
		`{"version": 99, "strand_len": 10}`,
		`{"version": 1, "strand_len": 0}`,
		`{"version": 1, "strand_len": 2, "sub_matrix": [[0,0,0,0]], "spatial": [0,0,0]}`,
		`{"version": 1, "strand_len": 2, "unknown_field": true}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("malformed profile accepted: %q", c)
		}
	}
}

func TestReadJSONRejectsBadSecondOrder(t *testing.T) {
	base := `{"version":1,"strand_len":2,"reads":1,"ref_bases":2,
	 "sub_matrix":[[0,0,0,0],[0,0,0,0],[0,0,0,0],[0,0,0,0]],
	 "spatial":[0,0,0],
	 "second_order":[{"kind":"%s","from":"%s","count":1}]}`
	bad := strings.NewReader(strings.ReplaceAll(strings.ReplaceAll(base, "%s", "bogus"), "\n", ""))
	if _, err := ReadJSON(bad); err == nil {
		t.Error("unknown second-order kind accepted")
	}
}
