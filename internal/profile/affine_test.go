package profile

import (
	"math"
	"testing"

	"dnastore/internal/align"
	"dnastore/internal/channel"
)

func TestAffineProfilingSharpensBursts(t *testing.T) {
	// A channel whose only errors are long-deletion bursts.
	m := &channel.Model{Label: "bursts", LongDel: channel.PaperLongDeletion()}
	ds := simulate(m, 400, 110, 10, 31)
	unit, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	affine, err := Profile(ds, Options{Affine: true})
	if err != nil {
		t.Fatal(err)
	}
	// Both recover the burst probability, but the affine extraction should
	// attribute at least as much deletion mass to bursts (it never splits
	// a contiguous run across substitutions).
	ldU, ldA := unit.LongDeletion(), affine.LongDeletion()
	if ldA.Prob < ldU.Prob*0.95 {
		t.Errorf("affine burst probability %v below unit %v", ldA.Prob, ldU.Prob)
	}
	if math.Abs(ldA.Prob-0.0033)/0.0033 > 0.25 {
		t.Errorf("affine burst probability %v, want ~0.0033", ldA.Prob)
	}
	if math.Abs(ldA.MeanLen()-2.17) > 0.2 {
		t.Errorf("affine burst mean length %v, want ~2.17", ldA.MeanLen())
	}
}

func TestAffineProfilingAggregateConsistent(t *testing.T) {
	m := channel.NewNaive("n", channel.NanoporeMix(0.06))
	m.LongDel = channel.PaperLongDeletion()
	ds := simulate(m, 200, 110, 8, 32)
	unit, err := Profile(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	affine, err := Profile(ds, Options{Affine: true})
	if err != nil {
		t.Fatal(err)
	}
	// Affine scripts may cost more ops than minimal unit scripts, but the
	// overall error-mass estimate should stay close.
	ratio := affine.AggregateRate() / unit.AggregateRate()
	if ratio < 0.95 || ratio > 1.20 {
		t.Errorf("affine/unit aggregate ratio = %v", ratio)
	}
}

func TestAffineOptionsValidation(t *testing.T) {
	m := channel.NewNaive("n", channel.EqualMix(0.02))
	ds := simulate(m, 20, 60, 3, 33)
	if _, err := Profile(ds, Options{Affine: true, RandomizeScripts: true}); err == nil {
		t.Error("affine + randomized accepted")
	}
	// Custom affine params flow through.
	p, err := Profile(ds, Options{Affine: true, AffineParams: align.AffineParams{Mismatch: 2, GapOpen: 3, GapExtend: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Reads == 0 {
		t.Error("no reads profiled")
	}
}
