package seqio

import (
	"bytes"
	"fmt"

	"dnastore/internal/dataset"
	"dnastore/internal/durable"
)

// Durable dataset files: both halves of a dataset (reference FASTA + read
// FASTQ) travel in one container, so they cannot drift apart on disk and
// both are covered by checksums and parity.

// Frame names inside a dataset container.
const (
	refsFrame  = "refs.fasta"
	readsFrame = "reads.fastq"
)

// WriteDatasetFile atomically writes the dataset to path as a durable
// container holding the reference FASTA and read FASTQ sections.
func WriteDatasetFile(path string, ds *dataset.Dataset, qual int) error {
	return durable.WriteContainerFile(path, durable.KindDataset,
		durable.Options{Parity: durable.DefaultParity},
		func(w *durable.Writer) error {
			var refs, reads bytes.Buffer
			if err := WriteDataset(&refs, &reads, ds, qual); err != nil {
				return err
			}
			if err := w.WriteFrame(refsFrame, refs.Bytes()); err != nil {
				return err
			}
			return w.WriteFrame(readsFrame, reads.Bytes())
		})
}

// ReadDatasetFile reads a dataset container written by WriteDatasetFile,
// verifying checksums and applying parity repair.
func ReadDatasetFile(path string) (*dataset.Dataset, error) {
	frames, err := durable.ReadContainerFile(path, durable.KindDataset)
	if err != nil {
		return nil, err
	}
	var refs, reads []byte
	haveRefs, haveReads := false, false
	for _, fr := range frames {
		switch fr.Name {
		case refsFrame:
			refs, haveRefs = fr.Payload, true
		case readsFrame:
			reads, haveReads = fr.Payload, true
		}
	}
	if !haveRefs || !haveReads {
		return nil, fmt.Errorf("seqio: %s is missing the %q or %q section", path, refsFrame, readsFrame)
	}
	return ReadDataset(bytes.NewReader(refs), bytes.NewReader(reads))
}
