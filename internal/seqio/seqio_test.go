package seqio

import (
	"bytes"
	"strings"
	"testing"

	"dnastore/internal/channel"
)

func TestFASTARoundTrip(t *testing.T) {
	records := []Record{
		{ID: "a", Seq: "ACGTACGT"},
		{ID: "b", Desc: "second record", Seq: "TTTT"},
		{ID: "c", Seq: ""},
	}
	for _, width := range []int{0, 3, 80} {
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, records, width); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFASTA(&buf)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		if len(got) != len(records) {
			t.Fatalf("width %d: got %d records", width, len(got))
		}
		for i := range records {
			if got[i].ID != records[i].ID || got[i].Seq != records[i].Seq || got[i].Desc != records[i].Desc {
				t.Errorf("width %d record %d: %+v != %+v", width, i, got[i], records[i])
			}
		}
	}
}

func TestFASTAWrapping(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Record{{ID: "x", Seq: "ACGTACGTAC"}}, 4); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // header + 3 wrapped lines
		t.Fatalf("got %d lines: %q", len(lines), buf.String())
	}
	if lines[1] != "ACGT" || lines[3] != "AC" {
		t.Errorf("wrapping wrong: %v", lines)
	}
}

func TestReadFASTAErrors(t *testing.T) {
	cases := []string{
		"ACGT\n",     // sequence before header
		">\nACGT\n",  // empty header
		">x\nACGN\n", // invalid base
	}
	for _, c := range cases {
		if _, err := ReadFASTA(strings.NewReader(c)); err == nil {
			t.Errorf("malformed FASTA accepted: %q", c)
		}
	}
}

func TestWriteFASTAErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, []Record{{Seq: "ACGT"}}, 0); err == nil {
		t.Error("record without ID accepted")
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	records := []Record{
		{ID: "r1", Seq: "ACGT", Qual: []byte("IIII")},
		{ID: "r2", Desc: "with desc", Seq: "GG", Qual: []byte("5!")},
	}
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, records, 20); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range records {
		if got[i].ID != records[i].ID || got[i].Seq != records[i].Seq || string(got[i].Qual) != string(records[i].Qual) {
			t.Errorf("record %d: %+v != %+v", i, got[i], records[i])
		}
	}
}

func TestFASTQDefaultQuality(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFASTQ(&buf, []Record{{ID: "x", Seq: "ACGT"}}, 30); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "????" { // Phred 30 + 33 = '?'
		t.Errorf("default quality = %q", got[0].Qual)
	}
	if err := WriteFASTQ(&buf, []Record{{ID: "x", Seq: "ACGT"}}, 200); err == nil {
		t.Error("out-of-range default quality accepted")
	}
	if err := WriteFASTQ(&buf, []Record{{ID: "x", Seq: "ACGT", Qual: []byte("II")}}, 20); err == nil {
		t.Error("quality length mismatch accepted")
	}
}

func TestReadFASTQErrors(t *testing.T) {
	cases := []string{
		"not-a-header\nACGT\n+\nIIII\n",
		"@x\nACGT\n",             // truncated
		"@x\nACGT\nIIII\nIIII\n", // missing +
		"@x\nACGN\n+\nIIII\n",    // invalid base
		"@x\nACGT\n+\nII\n",      // quality length mismatch
	}
	for _, c := range cases {
		if _, err := ReadFASTQ(strings.NewReader(c)); err == nil {
			t.Errorf("malformed FASTQ accepted: %q", c)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	refs := channel.RandomReferences(10, 40, 1)
	sim := channel.Simulator{
		Channel:  channel.NewNaive("n", channel.EqualMix(0.05)),
		Coverage: channel.FixedCoverage(4),
	}
	ds := sim.Simulate("io", refs, 2)
	ds.Clusters[3].Reads = nil // erasure survives the round trip

	var refBuf, readBuf bytes.Buffer
	if err := WriteDataset(&refBuf, &readBuf, ds, 20); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDataset(&refBuf, &readBuf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumClusters() != ds.NumClusters() {
		t.Fatalf("clusters %d != %d", got.NumClusters(), ds.NumClusters())
	}
	for i := range ds.Clusters {
		if got.Clusters[i].Ref != ds.Clusters[i].Ref {
			t.Errorf("cluster %d ref mismatch", i)
		}
		if len(got.Clusters[i].Reads) != len(ds.Clusters[i].Reads) {
			t.Errorf("cluster %d read count mismatch", i)
			continue
		}
		for k := range ds.Clusters[i].Reads {
			if got.Clusters[i].Reads[k] != ds.Clusters[i].Reads[k] {
				t.Errorf("cluster %d read %d mismatch", i, k)
			}
		}
	}
}

func TestReadDatasetRejectsForeignReads(t *testing.T) {
	refFASTA := ">ref-0\nACGT\n"
	badID := "@someread\nACGT\n+\nIIII\n"
	if _, err := ReadDataset(strings.NewReader(refFASTA), strings.NewReader(badID)); err == nil {
		t.Error("read without cluster assignment accepted")
	}
	outOfRange := "@cluster-9/read-0\nACGT\n+\nIIII\n"
	if _, err := ReadDataset(strings.NewReader(refFASTA), strings.NewReader(outOfRange)); err == nil {
		t.Error("out-of-range cluster accepted")
	}
}

func TestClusterIndex(t *testing.T) {
	if i, err := clusterIndex("cluster-17/read-3"); err != nil || i != 17 {
		t.Errorf("clusterIndex = %d, %v", i, err)
	}
	for _, bad := range []string{"x", "cluster-", "cluster-abc/read-0", "cluster-5"} {
		if _, err := clusterIndex(bad); err == nil {
			t.Errorf("bad ID %q accepted", bad)
		}
	}
}
