// Package seqio reads and writes the interchange formats of the sequencing
// world: FASTA for reference strands and FASTQ for reads (real pipelines
// receive sequencer output as FASTQ). It lets the simulator's datasets
// flow to and from external tools — aligners, basecallers, plotting
// scripts — without bespoke converters.
package seqio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"dnastore/internal/dna"
)

// Record is one named sequence, optionally with FASTQ quality scores.
type Record struct {
	// ID is the header text after '>' or '@' (up to the first space).
	ID string
	// Desc is the remainder of the header line, if any.
	Desc string
	// Seq is the sequence.
	Seq dna.Strand
	// Qual holds Phred+33 quality bytes for FASTQ records; nil for FASTA.
	Qual []byte
}

// WriteFASTA writes records in FASTA format, wrapping sequences at width
// columns (no wrapping when width <= 0).
func WriteFASTA(w io.Writer, records []Record, width int) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if rec.ID == "" {
			return fmt.Errorf("seqio: record without ID")
		}
		header := ">" + rec.ID
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintln(bw, header); err != nil {
			return err
		}
		seq := string(rec.Seq)
		if width <= 0 {
			if _, err := fmt.Fprintln(bw, seq); err != nil {
				return err
			}
			continue
		}
		for start := 0; start < len(seq); start += width {
			end := start + width
			if end > len(seq) {
				end = len(seq)
			}
			if _, err := fmt.Fprintln(bw, seq[start:end]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFASTA parses FASTA records, concatenating wrapped sequence lines and
// validating the alphabet.
func ReadFASTA(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []Record
	var cur *Record
	var seq strings.Builder
	line := 0
	flush := func() error {
		if cur == nil {
			return nil
		}
		s := dna.Strand(seq.String())
		if err := s.Validate(); err != nil {
			return fmt.Errorf("seqio: record %q: %w", cur.ID, err)
		}
		cur.Seq = s
		records = append(records, *cur)
		cur = nil
		seq.Reset()
		return nil
	}
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, ">"):
			if err := flush(); err != nil {
				return nil, err
			}
			id, desc := splitHeader(text[1:])
			if id == "" {
				return nil, fmt.Errorf("seqio: line %d: empty FASTA header", line)
			}
			cur = &Record{ID: id, Desc: desc}
		default:
			if cur == nil {
				return nil, fmt.Errorf("seqio: line %d: sequence before first header", line)
			}
			seq.WriteString(text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return records, nil
}

// WriteFASTQ writes records in four-line FASTQ format. Records without
// quality bytes are assigned a constant quality derived from qualDefault
// (Phred score, e.g. 20 → '5').
func WriteFASTQ(w io.Writer, records []Record, qualDefault int) error {
	bw := bufio.NewWriter(w)
	for _, rec := range records {
		if rec.ID == "" {
			return fmt.Errorf("seqio: record without ID")
		}
		qual := rec.Qual
		if qual == nil {
			q := byte(qualDefault + 33)
			if q < 33 || q > 126 {
				return fmt.Errorf("seqio: default quality %d out of Phred+33 range", qualDefault)
			}
			qual = []byte(strings.Repeat(string(q), rec.Seq.Len()))
		}
		if len(qual) != rec.Seq.Len() {
			return fmt.Errorf("seqio: record %q: quality length %d != sequence length %d",
				rec.ID, len(qual), rec.Seq.Len())
		}
		header := "@" + rec.ID
		if rec.Desc != "" {
			header += " " + rec.Desc
		}
		if _, err := fmt.Fprintf(bw, "%s\n%s\n+\n%s\n", header, rec.Seq, qual); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFASTQ parses four-line FASTQ records, validating sequence alphabet
// and quality length.
func ReadFASTQ(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var records []Record
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text != "" {
				return text, true
			}
		}
		return "", false
	}
	for {
		header, ok := next()
		if !ok {
			break
		}
		if !strings.HasPrefix(header, "@") {
			return nil, fmt.Errorf("seqio: line %d: expected '@' header, got %q", line, header)
		}
		seqLine, ok := next()
		if !ok {
			return nil, fmt.Errorf("seqio: truncated FASTQ record at line %d", line)
		}
		plus, ok := next()
		if !ok || !strings.HasPrefix(plus, "+") {
			return nil, fmt.Errorf("seqio: line %d: expected '+' separator", line)
		}
		qualLine, ok := next()
		if !ok {
			return nil, fmt.Errorf("seqio: truncated FASTQ record at line %d", line)
		}
		seq := dna.Strand(seqLine)
		if err := seq.Validate(); err != nil {
			return nil, fmt.Errorf("seqio: line %d: %w", line, err)
		}
		if len(qualLine) != seq.Len() {
			return nil, fmt.Errorf("seqio: line %d: quality length %d != sequence length %d",
				line, len(qualLine), seq.Len())
		}
		id, desc := splitHeader(header[1:])
		records = append(records, Record{ID: id, Desc: desc, Seq: seq, Qual: []byte(qualLine)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return records, nil
}

func splitHeader(h string) (id, desc string) {
	h = strings.TrimSpace(h)
	if i := strings.IndexByte(h, ' '); i >= 0 {
		return h[:i], strings.TrimSpace(h[i+1:])
	}
	return h, ""
}
