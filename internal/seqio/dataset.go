package seqio

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dnastore/internal/dataset"
)

// Dataset bridging: a clustered dataset exports as a FASTA of references
// plus a FASTQ of reads whose IDs encode the cluster assignment
// ("cluster-<index>/read-<k>"), and imports back losslessly.

// DatasetToFASTA returns the dataset's references as FASTA records named
// "ref-<index>".
func DatasetToFASTA(ds *dataset.Dataset) []Record {
	out := make([]Record, len(ds.Clusters))
	for i, c := range ds.Clusters {
		out[i] = Record{ID: fmt.Sprintf("ref-%d", i), Seq: c.Ref}
	}
	return out
}

// DatasetToFASTQ returns every read as a FASTQ record whose ID carries the
// cluster assignment.
func DatasetToFASTQ(ds *dataset.Dataset, qual int) []Record {
	var out []Record
	for i, c := range ds.Clusters {
		for k, read := range c.Reads {
			q := byte(qual + 33)
			out = append(out, Record{
				ID:   fmt.Sprintf("cluster-%d/read-%d", i, k),
				Seq:  read,
				Qual: []byte(strings.Repeat(string(q), read.Len())),
			})
		}
	}
	return out
}

// WriteDataset writes the dataset as a reference FASTA and a read FASTQ.
func WriteDataset(refW, readW io.Writer, ds *dataset.Dataset, qual int) error {
	if err := WriteFASTA(refW, DatasetToFASTA(ds), 0); err != nil {
		return err
	}
	return WriteFASTQ(readW, DatasetToFASTQ(ds, qual), qual)
}

// ReadDataset reconstructs a dataset from a reference FASTA and a read
// FASTQ produced by WriteDataset. Reads whose IDs do not carry a cluster
// assignment are rejected.
func ReadDataset(refR, readR io.Reader) (*dataset.Dataset, error) {
	refs, err := ReadFASTA(refR)
	if err != nil {
		return nil, err
	}
	ds := &dataset.Dataset{Clusters: make([]dataset.Cluster, len(refs))}
	for i, rec := range refs {
		ds.Clusters[i].Ref = rec.Seq
	}
	reads, err := ReadFASTQ(readR)
	if err != nil {
		return nil, err
	}
	for _, rec := range reads {
		idx, err := clusterIndex(rec.ID)
		if err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(ds.Clusters) {
			return nil, fmt.Errorf("seqio: read %q references cluster %d of %d", rec.ID, idx, len(ds.Clusters))
		}
		ds.Clusters[idx].Reads = append(ds.Clusters[idx].Reads, rec.Seq)
	}
	return ds, nil
}

// clusterIndex extracts <i> from "cluster-<i>/read-<k>".
func clusterIndex(id string) (int, error) {
	rest, ok := strings.CutPrefix(id, "cluster-")
	if !ok {
		return 0, fmt.Errorf("seqio: read ID %q lacks cluster assignment", id)
	}
	num, _, ok := strings.Cut(rest, "/")
	if !ok {
		return 0, fmt.Errorf("seqio: read ID %q lacks cluster assignment", id)
	}
	return strconv.Atoi(num)
}
