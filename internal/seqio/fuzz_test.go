package seqio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadFASTA hardens the FASTA parser: malformed headers, CRLF line
// endings, blank lines, and truncated records must error cleanly or parse
// to internally consistent records — never panic.
func FuzzReadFASTA(f *testing.F) {
	f.Add([]byte(">ref-0 desc\nACGTACGT\nACGT\n"))
	f.Add([]byte(">ref-0\r\nACGT\r\n>ref-1\r\nTTTT\r\n"))
	f.Add([]byte(">only-header\n"))
	f.Add([]byte("ACGT\n>late-header\nACGT\n")) // sequence before any header
	f.Add([]byte(">a\n\n\nACGT\n\n"))           // blank lines
	f.Add([]byte(">"))                          // bare marker
	f.Add([]byte(""))
	f.Add([]byte(">a\nacgu\n")) // lowercase / RNA letters

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadFASTA(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range recs {
			if strings.ContainsAny(string(r.Seq), "\r\n>") {
				t.Errorf("accepted sequence with structural bytes: %q", r.Seq)
			}
		}
		// Accepted input must round-trip through the writer and reparse.
		var buf bytes.Buffer
		if err := WriteFASTA(&buf, recs, 0); err != nil {
			t.Fatalf("rewriting accepted records: %v", err)
		}
		if _, err := ReadFASTA(&buf); err != nil {
			t.Errorf("round trip failed: %v", err)
		}
	})
}

// FuzzReadFASTQ does the same for the four-line FASTQ parser, including
// quality/sequence length mismatches and truncated trailing records.
func FuzzReadFASTQ(f *testing.F) {
	f.Add([]byte("@cluster-0/read-0\nACGT\n+\nIIII\n"))
	f.Add([]byte("@r\r\nACGT\r\n+\r\nIIII\r\n"))
	f.Add([]byte("@r\nACGT\n+\nII\n"))   // qual shorter than seq
	f.Add([]byte("@r\nACGT\n+\nIIII"))   // missing trailing newline
	f.Add([]byte("@r\nACGT\n"))          // truncated mid-record
	f.Add([]byte("@r\nACGT\nIIII\n+\n")) // separator out of order
	f.Add([]byte("ACGT\n+\nIIII\n@r\n")) // header missing
	f.Add([]byte("@\n\n+\n\n"))          // all-empty record
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadFASTQ(bytes.NewReader(data))
		if err != nil {
			return
		}
		for _, r := range recs {
			if r.Qual != nil && len(r.Qual) != r.Seq.Len() {
				t.Errorf("accepted record %q with %d quals over %d bases",
					r.ID, len(r.Qual), r.Seq.Len())
			}
		}
	})
}
