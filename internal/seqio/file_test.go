package seqio

import (
	"os"
	"path/filepath"
	"testing"

	"dnastore/internal/dataset"
	"dnastore/internal/dna"
)

func fileDataset() *dataset.Dataset {
	return &dataset.Dataset{
		Name: "t",
		Clusters: []dataset.Cluster{
			{Ref: "ACGTACGT", Reads: []dna.Strand{"ACGTACGT", "ACGTCGT"}},
			{Ref: "TTTTCCCC", Reads: []dna.Strand{"TTTTCCC"}},
			{Ref: "GGGGAAAA"}, // erasure: zero reads
		},
	}
}

func TestDatasetFileRoundTrip(t *testing.T) {
	ds := fileDataset()
	path := filepath.Join(t.TempDir(), "ds.dnac")
	if err := WriteDatasetFile(path, ds, 30); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatasetFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Clusters) != len(ds.Clusters) {
		t.Fatalf("%d clusters, want %d", len(got.Clusters), len(ds.Clusters))
	}
	for i, c := range ds.Clusters {
		if got.Clusters[i].Ref != c.Ref {
			t.Errorf("cluster %d ref mismatch", i)
		}
		if len(got.Clusters[i].Reads) != len(c.Reads) {
			t.Errorf("cluster %d has %d reads, want %d", i, len(got.Clusters[i].Reads), len(c.Reads))
			continue
		}
		for k, r := range c.Reads {
			if got.Clusters[i].Reads[k] != r {
				t.Errorf("cluster %d read %d mismatch", i, k)
			}
		}
	}
}

func TestDatasetFileDetectsTornWrite(t *testing.T) {
	ds := fileDataset()
	path := filepath.Join(t.TempDir(), "ds.dnac")
	if err := WriteDatasetFile(path, ds, 30); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadDatasetFile(path); err == nil {
		t.Fatal("torn dataset container read silently")
	}
}
