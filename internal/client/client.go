// Package client is the resilient dnasimd client: submit / status /
// result / cancel over the server's HTTP API, hardened against the
// failure modes a real network serves up — connection resets, slow or
// truncated responses, corrupted bodies, overload shedding — so callers
// get exactly one terminal answer per logical job and never hang.
//
// The retry discipline, drilled end to end against internal/chaosnet:
//
//   - Capped exponential backoff with full jitter between attempts;
//     a 503's Retry-After delta-seconds, when present, is honored as the
//     floor of the wait (the server's estimate beats the client's guess).
//   - Idempotent resubmission: every submit carries an Idempotency-Key
//     derived from the spec fingerprint, so a retried submit whose first
//     attempt raced a success is answered with the already-admitted job
//     instead of creating a duplicate.
//   - Deadline propagation: the context deadline rides the spec as an
//     absolute deadline_unix_ms, letting the server fast-fail work whose
//     client has already given up; every wait and poll is bounded by the
//     same context.
//   - Terminal classification: Run always settles to exactly one of
//     succeeded / shed-gave-up / server-error / deadline / canceled.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"dnastore/internal/server"
)

// Outcome is the terminal classification of one logical job. Exactly one
// outcome is assigned per Run, no matter which mix of network faults,
// sheds and server errors occurred along the way.
type Outcome string

const (
	// OutcomeSucceeded: the job ran to done and its result was fetched.
	OutcomeSucceeded Outcome = "succeeded"
	// OutcomeShedGaveUp: every submit attempt was shed (503) and the
	// retry budget ran out — the server stayed overloaded or draining.
	OutcomeShedGaveUp Outcome = "shed-gave-up"
	// OutcomeServerError: the job failed server-side, or the transport
	// failed in a way retries could not clear.
	OutcomeServerError Outcome = "server-error"
	// OutcomeDeadline: the client's deadline expired — locally, at
	// admission (504), or while the job executed.
	OutcomeDeadline Outcome = "deadline"
	// OutcomeCanceled: the context was canceled (not by deadline) or the
	// job was canceled.
	OutcomeCanceled Outcome = "canceled"
)

// Config parameterises a Client. The zero value plus a BaseURL is usable:
// every other field has a production-shaped default.
type Config struct {
	// BaseURL is the server (or chaos proxy) root, e.g. "http://host:8080".
	BaseURL string
	// HTTPClient, when set, replaces http.DefaultClient (timeouts,
	// transports, test doubles).
	HTTPClient *http.Client
	// MaxAttempts bounds the retries of one HTTP call (default 8).
	MaxAttempts int
	// BaseBackoff and MaxBackoff shape the capped exponential backoff
	// with full jitter: attempt n waits uniform(0, min(MaxBackoff,
	// BaseBackoff·2ⁿ)) (defaults 50ms and 5s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// PerCallTimeout bounds each individual HTTP exchange so a slow-loris
	// response cannot pin a call forever (default 15s).
	PerCallTimeout time.Duration
	// PollInterval is the status poll cadence while a job runs (default
	// 100ms).
	PollInterval time.Duration
	// Seed drives the jitter RNG; 0 seeds from the clock. A fixed seed
	// makes a client's backoff schedule reproducible in drills.
	Seed uint64

	// sleep is the interruptible wait, injectable by tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// Client is a resilient dnasimd API client. Safe for concurrent use.
type Client struct {
	cfg  Config
	http *http.Client

	mu  sync.Mutex
	rng *rand.Rand
}

// New returns a Client for the server at cfg.BaseURL.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 8
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.PerCallTimeout <= 0 {
		cfg.PerCallTimeout = 15 * time.Second
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(time.Now().UnixNano())
	}
	if cfg.sleep == nil {
		cfg.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	return &Client{
		cfg:  cfg,
		http: cfg.HTTPClient,
		rng:  rand.New(rand.NewSource(int64(cfg.Seed))),
	}
}

// jitter returns uniform(0, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d)))
}

// backoffWait computes the wait before retry attempt (0-based): full
// jitter over the capped exponential envelope, with the server's
// Retry-After (seconds, -1 when absent) as a floor — the server knows its
// backlog better than the client's guess.
func (c *Client) backoffWait(attempt int, retryAfterSec int) time.Duration {
	cap := c.cfg.MaxBackoff
	if e := c.cfg.BaseBackoff << uint(attempt); e > 0 && e < cap {
		cap = e
	}
	wait := c.jitter(cap)
	if retryAfterSec >= 0 {
		// Honor the hint: come back no earlier than the server asked,
		// plus jitter so a shed burst doesn't re-converge in lockstep.
		hinted := time.Duration(retryAfterSec)*time.Second + c.jitter(c.cfg.BaseBackoff)
		if hinted > wait {
			wait = hinted
		}
	}
	return wait
}

// transientError marks an error worth retrying (transport failure, 5xx,
// corrupted or truncated body).
type transientError struct {
	err           error
	shed          bool // a 503 shed — the overload signal
	retryAfterSec int  // parsed Retry-After, -1 when absent
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// permanentError marks an error retries cannot clear (4xx, deadline).
type permanentError struct {
	err      error
	deadline bool
}

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// errJobNotReady is returned by tryResult when the job has no result yet.
var errJobNotReady = errors.New("client: job not done yet")

// parseRetryAfter extracts a delta-seconds Retry-After, -1 when absent or
// malformed.
func parseRetryAfter(resp *http.Response) int {
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return -1
	}
	sec, err := strconv.Atoi(h)
	if err != nil || sec < 0 {
		return -1
	}
	return sec
}

// doOnce performs one HTTP exchange under the per-call timeout and decodes
// a JSON body into out (skipped when out is nil, the raw-bytes path
// handles its own read). It classifies failures as transient or permanent.
// bodyChecksum mirrors the server's response-body hash (FNV-64a, hex).
func bodyChecksum(b []byte) string {
	h := fnv.New64a()
	h.Write(b)
	return fmt.Sprintf("%016x", h.Sum64())
}

func (c *Client) doOnce(ctx context.Context, method, path string, hdr http.Header, body []byte, out any) (*http.Response, []byte, error) {
	callCtx, cancel := context.WithTimeout(ctx, c.cfg.PerCallTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(callCtx, method, c.cfg.BaseURL+path, rd)
	if err != nil {
		return nil, nil, &permanentError{err: err}
	}
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := c.http.Do(req)
	if err != nil {
		// Transport-level failure: reset, refused, blackholed (per-call
		// timeout), DNS. All transient — unless the caller's own context
		// is the thing that expired.
		if ctx.Err() != nil {
			return nil, nil, &permanentError{err: ctx.Err(), deadline: errors.Is(ctx.Err(), context.DeadlineExceeded)}
		}
		return nil, nil, &transientError{err: err, retryAfterSec: -1}
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		// Truncated or reset mid-body.
		if ctx.Err() != nil {
			return nil, nil, &permanentError{err: ctx.Err(), deadline: errors.Is(ctx.Err(), context.DeadlineExceeded)}
		}
		return resp, nil, &transientError{err: fmt.Errorf("client: reading %s %s: %w", method, path, err), retryAfterSec: -1}
	}
	// End-to-end integrity: the server stamps every body with an FNV-64a
	// checksum header. Framing-valid responses whose bytes were flipped in
	// flight (mangled IDs inside parseable JSON, silently corrupted result
	// payloads) are a transport fault to retry, never data to act on.
	if want := resp.Header.Get(server.BodyChecksumHeader); want != "" && want != bodyChecksum(raw) {
		return resp, nil, &transientError{
			err:           fmt.Errorf("client: %s %s: body checksum mismatch (got %s bytes, want %s)", method, path, bodyChecksum(raw), want),
			retryAfterSec: -1,
		}
	}
	switch {
	case resp.StatusCode == http.StatusServiceUnavailable:
		return resp, raw, &transientError{
			err:           fmt.Errorf("client: %s %s shed (503): %s", method, path, strings.TrimSpace(string(raw))),
			shed:          true,
			retryAfterSec: parseRetryAfter(resp),
		}
	case resp.StatusCode == http.StatusGatewayTimeout:
		return resp, raw, &permanentError{
			err:      fmt.Errorf("client: %s %s rejected (504): %s", method, path, strings.TrimSpace(string(raw))),
			deadline: true,
		}
	case resp.StatusCode == http.StatusNotImplemented || resp.StatusCode == http.StatusHTTPVersionNotSupported:
		// Not every 5xx is transient: 501 (the server will never implement
		// this method) and 505 (it will never speak this protocol version)
		// describe the request, not the server's moment — retrying burns
		// the whole backoff budget to arrive at the same answer.
		return resp, raw, &permanentError{
			err: fmt.Errorf("client: %s %s: permanent server error %d", method, path, resp.StatusCode),
		}
	case resp.StatusCode >= 500:
		return resp, raw, &transientError{
			err:           fmt.Errorf("client: %s %s: server error %d", method, path, resp.StatusCode),
			retryAfterSec: parseRetryAfter(resp),
		}
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			// A corrupted or mangled JSON body reads as a transport fault:
			// retry, don't act on garbage.
			return resp, raw, &transientError{err: fmt.Errorf("client: decoding %s %s response: %w", method, path, err), retryAfterSec: -1}
		}
	}
	return resp, raw, nil
}

// do runs doOnce under the retry loop: transient errors back off and
// retry within the attempt budget and the context; permanent errors (and
// the budget running out) surface immediately.
func (c *Client) do(ctx context.Context, method, path string, hdr http.Header, body []byte, out any) (*http.Response, []byte, error) {
	var lastErr error
	allShed := true
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		resp, raw, err := c.doOnce(ctx, method, path, hdr, body, out)
		if err == nil {
			return resp, raw, nil
		}
		var te *transientError
		if !errors.As(err, &te) {
			return resp, raw, err
		}
		lastErr = err
		if !te.shed {
			allShed = false
		}
		if attempt == c.cfg.MaxAttempts-1 {
			break
		}
		if serr := c.cfg.sleep(ctx, c.backoffWait(attempt, te.retryAfterSec)); serr != nil {
			return nil, nil, &permanentError{err: serr, deadline: errors.Is(serr, context.DeadlineExceeded)}
		}
	}
	if allShed {
		return nil, nil, &shedExhaustedError{err: lastErr}
	}
	return nil, nil, fmt.Errorf("client: %d attempts exhausted, last: %w", c.cfg.MaxAttempts, lastErr)
}

// shedExhaustedError: every attempt of a call was answered with a 503.
type shedExhaustedError struct{ err error }

func (e *shedExhaustedError) Error() string {
	return fmt.Sprintf("client: retry budget exhausted, every attempt shed: %v", e.err)
}
func (e *shedExhaustedError) Unwrap() error { return e.err }

// Submit submits a job. The context deadline, when set, is propagated
// into the spec as an absolute deadline; the submit is idempotent under
// retry (see SubmitKeyed).
func (c *Client) Submit(ctx context.Context, spec server.JobSpec) (server.Status, bool, error) {
	return c.SubmitKeyed(ctx, "", spec)
}

// SubmitKeyed submits a job under an explicit idempotency key ("" derives
// the key from the spec fingerprint). It returns the admitted (or
// replayed) job status and whether the server answered with an
// already-admitted job.
func (c *Client) SubmitKeyed(ctx context.Context, key string, spec server.JobSpec) (server.Status, bool, error) {
	// The derived key must identify the work, not the caller's time
	// budget: fingerprint the spec before the context deadline is folded
	// in, so two submissions of identical work — a retry after a lost
	// response, or an independent duplicate — land on one job even when
	// their deadlines differ.
	if key == "" {
		key = fmt.Sprintf("%016x", spec.Fingerprint())
	}
	if ddl, ok := ctx.Deadline(); ok && spec.DeadlineUnixMS == 0 {
		spec.DeadlineUnixMS = ddl.UnixMilli()
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return server.Status{}, false, &permanentError{err: err}
	}
	hdr := http.Header{
		"Content-Type":              []string{"application/json"},
		server.IdempotencyKeyHeader: []string{key},
	}
	var st server.Status
	resp, raw, err := c.do(ctx, http.MethodPost, "/v1/jobs", hdr, body, &st)
	if err != nil {
		return server.Status{}, false, err
	}
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
		if st.ID == "" {
			return server.Status{}, false, fmt.Errorf("client: submit accepted but snapshot has no job ID")
		}
		return st, resp.Header.Get(server.IdempotencyReplayedHeader) == "true", nil
	default:
		return server.Status{}, false, &permanentError{
			err: fmt.Errorf("client: submit rejected (%d): %s", resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
}

// Status fetches a job's current snapshot.
func (c *Client) Status(ctx context.Context, id string) (server.Status, error) {
	var st server.Status
	resp, raw, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, &st)
	if err != nil {
		return server.Status{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.Status{}, &permanentError{
			err: fmt.Errorf("client: status %s: %d %s", id, resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
	return st, nil
}

// Result fetches a done job's result bytes. errJobNotReady (wrapped) is
// returned while the job has not finished.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, raw, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, nil, nil)
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return raw, nil
	case http.StatusConflict:
		return nil, fmt.Errorf("%w: state %s", errJobNotReady, resp.Header.Get("X-Job-State"))
	default:
		return nil, &permanentError{
			err: fmt.Errorf("client: result %s: %d %s", id, resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
}

// Ready reports whether the server is currently admitting jobs: one
// GET /readyz exchange, deliberately without the retry loop — a health
// probe wants the server's answer right now, and a probe that retries
// itself healthy defeats the point of probing.
func (c *Client) Ready(ctx context.Context) error {
	resp, raw, err := c.doOnce(ctx, http.MethodGet, "/readyz", nil, nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: not ready (%d): %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	return nil
}

// Drainz fetches the server's handoff inventory: the fingerprint-named
// checkpoint journals sitting in its data directory, ready to be resumed
// by a peer on a shared data dir (see server.Drainz).
func (c *Client) Drainz(ctx context.Context) (server.Drainz, error) {
	var dz server.Drainz
	resp, raw, err := c.do(ctx, http.MethodGet, "/drainz", nil, nil, &dz)
	if err != nil {
		return server.Drainz{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return server.Drainz{}, &permanentError{
			err: fmt.Errorf("client: drainz: %d %s", resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
	return dz, nil
}

// Cancel requests cancellation of a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, raw, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return &permanentError{
			err: fmt.Errorf("client: cancel %s: %d %s", id, resp.StatusCode, strings.TrimSpace(string(raw))),
		}
	}
	return nil
}

// RunResult is the settled fate of one logical job driven by Run.
type RunResult struct {
	// Outcome is the terminal classification; exactly one per Run.
	Outcome Outcome
	// JobID is the server-side job handle ("" when admission never
	// succeeded).
	JobID string
	// Status is the last job snapshot observed.
	Status server.Status
	// Data holds the result bytes when Outcome is OutcomeSucceeded.
	Data []byte
	// Submits counts successful submit exchanges (resubmissions after a
	// checkpointed park included); Replays counts those answered
	// idempotently with an existing job.
	Submits int
	Replays int
	// Err carries the terminal error detail for non-succeeded outcomes.
	Err error
}

// classify maps a settled error to its outcome.
func classify(err error) Outcome {
	var pe *permanentError
	switch {
	case errors.As(err, new(*shedExhaustedError)):
		return OutcomeShedGaveUp
	case errors.As(err, &pe) && pe.deadline:
		return OutcomeDeadline
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeDeadline
	case errors.Is(err, context.Canceled):
		return OutcomeCanceled
	default:
		return OutcomeServerError
	}
}

// Run drives one logical job to a terminal outcome: submit (idempotent
// under retry), poll status, fetch the result, and classify. A job parked
// checkpointed by a drain is resubmitted — the journal makes that a
// resume, not a restart. Run never hangs: every exchange and every wait
// is bounded by ctx and the per-call timeout.
func (c *Client) Run(ctx context.Context, spec server.JobSpec) RunResult {
	res := RunResult{}
	for {
		st, replayed, err := c.Submit(ctx, spec)
		if err != nil {
			res.Outcome = classify(err)
			res.Err = err
			return res
		}
		res.Submits++
		if replayed {
			res.Replays++
		}
		res.JobID = st.ID
		res.Status = st

		st, err = c.awaitTerminal(ctx, st)
		res.Status = st
		if err != nil {
			res.Outcome = classify(err)
			res.Err = err
			return res
		}

		switch st.State {
		case server.StateDone:
			data, err := c.Result(ctx, st.ID)
			if err != nil {
				res.Outcome = classify(err)
				res.Err = err
				return res
			}
			res.Outcome = OutcomeSucceeded
			res.Data = data
			return res
		case server.StateCanceled:
			res.Outcome = OutcomeCanceled
			res.Err = fmt.Errorf("client: job %s canceled: %s", st.ID, st.Error)
			return res
		case server.StateFailed:
			res.Err = fmt.Errorf("client: job %s failed: %s", st.ID, st.Error)
			if strings.Contains(st.Error, "deadline") {
				res.Outcome = OutcomeDeadline
			} else {
				res.Outcome = OutcomeServerError
			}
			return res
		case server.StateCheckpointed:
			// Parked resumable by a drain: resubmit the identical spec —
			// the fingerprint-named journal turns the retry into a resume.
			if err := c.cfg.sleep(ctx, c.backoffWait(res.Submits, -1)); err != nil {
				res.Outcome = classify(&permanentError{err: err, deadline: errors.Is(err, context.DeadlineExceeded)})
				res.Err = err
				return res
			}
			continue
		default:
			res.Outcome = OutcomeServerError
			res.Err = fmt.Errorf("client: job %s settled in unexpected state %q", st.ID, st.State)
			return res
		}
	}
}

// awaitTerminal polls a job until it reaches a terminal state.
func (c *Client) awaitTerminal(ctx context.Context, st server.Status) (server.Status, error) {
	for !st.State.Terminal() {
		if err := c.cfg.sleep(ctx, c.cfg.PollInterval+c.jitter(c.cfg.PollInterval/2)); err != nil {
			return st, &permanentError{err: err, deadline: errors.Is(err, context.DeadlineExceeded)}
		}
		next, err := c.Status(ctx, st.ID)
		if err != nil {
			return st, err
		}
		st = next
	}
	return st, nil
}
