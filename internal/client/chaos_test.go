package client

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"dnastore/internal/chaosnet"
	"dnastore/internal/server"
)

// TestChaosDrillConservation is the end-to-end drill from the issue's
// acceptance criteria: a fleet of resilient clients drives a real dnasimd
// server through the chaosnet proxy — connection resets, slow-loris
// responses, corrupted bodies, truncations, connect latency, and a
// mid-drill blackhole window — and the books must balance afterwards:
//
//   - every submitted job reaches exactly one client-side terminal
//     outcome (nothing hangs, nothing is lost);
//   - no job is duplicated: the server's submitted counter equals the
//     number of distinct job IDs the clients hold, so a retried submit
//     racing a success never admitted a second copy;
//   - the server's finished counters sum to its submitted counter, so
//     the server-side ledger closes too.
func TestChaosDrillConservation(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos drill takes seconds of wall time")
	}

	srv := server.New(server.Config{
		QueueCapacity: 256,
		Workers:       4,
		Logf:          func(string, ...any) {},
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	sc := chaosnet.Scenario{
		None:               0.55,
		ConnectLatency:     0.10,
		Reset:              0.12,
		SlowLoris:          0.06,
		Truncate:           0.12,
		Corrupt:            0.05,
		MaxConnectLatency:  80 * time.Millisecond,
		ResetAfterBytes:    150,
		TruncateAfterBytes: 150,
	}
	proxy, err := chaosnet.Listen(hs.Listener.Addr().String(), sc, 20260808)
	if err != nil {
		t.Fatalf("chaosnet.Listen: %v", err)
	}
	defer proxy.Close()

	// One fault draw per HTTP request: the drill's whole point is that
	// every exchange crosses the chaotic wire fresh.
	httpClient := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	c := New(Config{
		BaseURL:        proxy.URL(),
		HTTPClient:     httpClient,
		MaxAttempts:    40,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
		PerCallTimeout: 250 * time.Millisecond,
		PollInterval:   10 * time.Millisecond,
		Seed:           7,
	})

	// Mid-drill blackhole: for 800ms no request gets a single response
	// byte. Clients must ride it out on per-call timeouts + backoff.
	go func() {
		time.Sleep(300 * time.Millisecond)
		proxy.SetBlackhole(true)
		time.Sleep(800 * time.Millisecond)
		proxy.SetBlackhole(false)
	}()

	const jobs = 24
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()

	results := make([]RunResult, jobs)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		go func(i int) {
			defer wg.Done()
			results[i] = c.Run(ctx, testSpec(uint64(1000+i)))
		}(i)
	}
	wg.Wait()

	// Client-side ledger: one terminal outcome per job, all succeeded
	// (the specs are valid and small; chaos may only delay them), each
	// with a non-empty result body and a known job ID.
	ids := make(map[string]int)
	for i, r := range results {
		if r.Outcome != OutcomeSucceeded {
			t.Errorf("job %d: outcome = %s (err=%v), want succeeded", i, r.Outcome, r.Err)
			continue
		}
		if r.JobID == "" {
			t.Errorf("job %d: succeeded without a job ID", i)
		}
		if len(r.Data) == 0 {
			t.Errorf("job %d: succeeded with empty result body", i)
		}
		ids[r.JobID]++
	}
	for id, n := range ids {
		if n > 1 {
			t.Errorf("job ID %s claimed by %d runs: distinct specs must map to distinct jobs", id, n)
		}
	}

	// Server-side ledger, scraped straight from the server (not through
	// the proxy — the ground truth must not itself cross the chaotic
	// wire). Wait for in-flight work to settle first: a client may have
	// fetched its result marginally before the finished counter ticked.
	var snap map[string]float64
	settled := func() bool {
		snap = srv.Registry().Snapshot()
		finished := snap[`dnasimd_jobs_finished_total{outcome="done"}`] +
			snap[`dnasimd_jobs_finished_total{outcome="failed"}`] +
			snap[`dnasimd_jobs_finished_total{outcome="canceled"}`] +
			snap[`dnasimd_jobs_finished_total{outcome="checkpointed"}`]
		return snap["dnasimd_queue_depth"] == 0 &&
			snap["dnasimd_jobs_running"] == 0 &&
			finished == snap["dnasimd_jobs_submitted_total"]
	}
	deadline := time.Now().Add(10 * time.Second)
	for !settled() && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !settled() {
		t.Fatalf("server never settled: snapshot %v", snap)
	}

	submitted := snap["dnasimd_jobs_submitted_total"]
	if int(submitted) != len(ids) {
		t.Errorf("server admitted %.0f jobs but clients hold %d distinct IDs: work was %s",
			submitted, len(ids),
			map[bool]string{true: "duplicated", false: "lost"}[int(submitted) > len(ids)])
	}
	if done := snap[`dnasimd_jobs_finished_total{outcome="done"}`]; int(done) != len(ids) {
		t.Errorf("server finished %.0f jobs done, want %d", done, len(ids))
	}

	// The drill is only meaningful if chaos actually fired.
	st := proxy.Stats()
	t.Logf("chaos stats: %v", st)
	t.Logf("server: submitted=%.0f replays=%.0f shed_full=%.0f",
		submitted, snap["dnasimd_jobs_idempotent_replays_total"],
		snap[`dnasimd_jobs_shed_total{reason="queue_full"}`])
	if st.Reset == 0 || st.SlowLoris == 0 || st.Blackhole == 0 {
		t.Errorf("drill ran without exercising all headline faults: %v", st)
	}
}
