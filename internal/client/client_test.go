package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dnastore/internal/server"
)

// newTestClient wires a Client to ts with fast, deterministic timings and
// a sleep recorder instead of real waits.
func newTestClient(ts *httptest.Server, mut func(*Config)) (*Client, *sleepLog) {
	log := &sleepLog{}
	cfg := Config{
		BaseURL:      ts.URL,
		MaxAttempts:  4,
		BaseBackoff:  10 * time.Millisecond,
		MaxBackoff:   80 * time.Millisecond,
		PollInterval: time.Millisecond,
		Seed:         42,
		sleep:        log.sleep,
	}
	if mut != nil {
		mut(&cfg)
	}
	return New(cfg), log
}

// sleepLog records requested waits without actually waiting (beyond a
// scheduler yield), keeping retry tests fast and assertable.
type sleepLog struct {
	mu    sync.Mutex
	waits []time.Duration
}

func (l *sleepLog) sleep(ctx context.Context, d time.Duration) error {
	l.mu.Lock()
	l.waits = append(l.waits, d)
	l.mu.Unlock()
	select {
	case <-ctx.Done():
		return ctx.Err()
	default:
		return nil
	}
}

func (l *sleepLog) all() []time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]time.Duration(nil), l.waits...)
}

func testSpec(seed uint64) server.JobSpec {
	return server.JobSpec{
		Kind: server.KindSimulate,
		Simulate: &server.SimulateSpec{
			NumRefs: 4, RefLen: 30, Seed: seed,
			Sub: 0.01, Ins: 0.005, Del: 0.02, Coverage: 2,
		},
	}
}

// TestSubmitHonorsRetryAfter: a shed submit must wait at least the
// server's Retry-After delta-seconds before retrying, not the (much
// shorter) jittered exponential the client would pick on its own.
func TestSubmitHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "3")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		json.NewEncoder(w).Encode(server.Status{ID: "j000001", Kind: server.KindSimulate, State: server.StateQueued})
	}))
	defer ts.Close()
	c, log := newTestClient(ts, nil)

	st, replayed, err := c.Submit(context.Background(), testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000001" || replayed {
		t.Fatalf("submit = %+v replayed=%v", st, replayed)
	}
	waits := log.all()
	if len(waits) != 1 {
		t.Fatalf("sleeps = %v, want exactly one backoff", waits)
	}
	if waits[0] < 3*time.Second {
		t.Errorf("backoff %v shorter than the Retry-After floor of 3s", waits[0])
	}
	if waits[0] > 3*time.Second+80*time.Millisecond {
		t.Errorf("backoff %v far above the hint: jitter should be bounded by BaseBackoff", waits[0])
	}
}

// TestBackoffFullJitterEnvelope: without a Retry-After hint the waits must
// stay inside the capped exponential envelope and actually vary (full
// jitter, not fixed steps).
func TestBackoffFullJitterEnvelope(t *testing.T) {
	c := New(Config{BaseURL: "http://unused", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond, Seed: 7})
	seen := map[time.Duration]bool{}
	for attempt := 0; attempt < 6; attempt++ {
		env := 10 * time.Millisecond << uint(attempt)
		if env > 80*time.Millisecond {
			env = 80 * time.Millisecond
		}
		for i := 0; i < 50; i++ {
			w := c.backoffWait(attempt, -1)
			if w < 0 || w > env {
				t.Fatalf("attempt %d: wait %v outside [0, %v]", attempt, w, env)
			}
			seen[w] = true
		}
	}
	if len(seen) < 20 {
		t.Errorf("only %d distinct waits over 300 draws: jitter looks degenerate", len(seen))
	}
}

// TestSubmitRetriesCorruptedJSON: a mangled response body is a transport
// fault — retry it, never act on garbage.
func TestSubmitRetriesCorruptedJSON(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusAccepted)
			fmt.Fprint(w, `{"id":"j0000`) // truncated JSON
			return
		}
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.Status{ID: "j000002", State: server.StateQueued})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts, nil)

	st, _, err := c.Submit(context.Background(), testSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "j000002" {
		t.Fatalf("id = %q", st.ID)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("calls = %d, want 2", n)
	}
}

// TestSubmitSendsIdempotencyKeyOnEveryAttempt: retries must carry the same
// Idempotency-Key as the first attempt — that is what makes them safe —
// and the key must derive from the spec fingerprint.
func TestSubmitSendsIdempotencyKeyOnEveryAttempt(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get(server.IdempotencyKeyHeader))
		mu.Unlock()
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			return
		}
		w.Header().Set(server.IdempotencyReplayedHeader, "true")
		w.WriteHeader(http.StatusOK)
		json.NewEncoder(w).Encode(server.Status{ID: "j000003", State: server.StateRunning})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts, nil)

	spec := testSpec(3)
	st, replayed, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed {
		t.Error("replay header not surfaced")
	}
	if st.ID != "j000003" {
		t.Fatalf("id = %q", st.ID)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] == "" || keys[0] != keys[1] {
		t.Fatalf("idempotency keys across attempts = %v, want two identical non-empty keys", keys)
	}
	if want := fmt.Sprintf("%016x", spec.Fingerprint()); keys[0] != want {
		t.Errorf("key = %q, want fingerprint %q", keys[0], want)
	}
}

// TestRunClassification settles each server behaviour to its outcome.
func TestRunClassification(t *testing.T) {
	mkTS := func(h http.HandlerFunc) *httptest.Server { return httptest.NewServer(h) }
	doneStatus := server.Status{ID: "j1", Kind: server.KindSimulate, State: server.StateDone}

	t.Run("succeeded", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			switch {
			case r.Method == http.MethodPost:
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
			case strings.HasSuffix(r.URL.Path, "/result"):
				w.Write([]byte("payload"))
			default:
				json.NewEncoder(w).Encode(doneStatus)
			}
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(4))
		if res.Outcome != OutcomeSucceeded || string(res.Data) != "payload" || res.Err != nil {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("shed-gave-up", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"queue full"}`)
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(5))
		if res.Outcome != OutcomeShedGaveUp || res.Err == nil {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("server-error", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
				return
			}
			json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateFailed, Error: "3 attempts exhausted"})
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(6))
		if res.Outcome != OutcomeServerError {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("deadline-from-job-failure", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
				return
			}
			json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateFailed, Error: "server: job deadline exceeded"})
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(7))
		if res.Outcome != OutcomeDeadline {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("deadline-from-504", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusGatewayTimeout)
			fmt.Fprint(w, `{"error":"deadline expired"}`)
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(8))
		if res.Outcome != OutcomeDeadline {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("canceled-context", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
				return
			}
			json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateRunning})
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		ctx, cancel := context.WithCancel(context.Background())
		go func() { time.Sleep(50 * time.Millisecond); cancel() }()
		res := c.Run(ctx, testSpec(9))
		if res.Outcome != OutcomeCanceled {
			t.Fatalf("res = %+v", res)
		}
	})

	t.Run("canceled-job", func(t *testing.T) {
		ts := mkTS(func(w http.ResponseWriter, r *http.Request) {
			if r.Method == http.MethodPost {
				w.WriteHeader(http.StatusAccepted)
				json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
				return
			}
			json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateCanceled, Error: "canceled by client"})
		})
		defer ts.Close()
		c, _ := newTestClient(ts, nil)
		res := c.Run(context.Background(), testSpec(10))
		if res.Outcome != OutcomeCanceled {
			t.Fatalf("res = %+v", res)
		}
	})
}

// TestRunNeverHangsOnDeadDial: a connect-refused target settles to a
// terminal outcome within the retry budget instead of hanging.
func TestRunNeverHangsOnDeadDial(t *testing.T) {
	// Reserve a port and close it: connections are refused.
	ts := httptest.NewServer(http.NotFoundHandler())
	url := ts.URL
	ts.Close()
	c, _ := newTestClient(&httptest.Server{URL: url}, nil)

	done := make(chan RunResult, 1)
	go func() { done <- c.Run(context.Background(), testSpec(11)) }()
	select {
	case res := <-done:
		if res.Outcome != OutcomeServerError {
			t.Fatalf("res = %+v, want server-error", res)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run hung on a dead target")
	}
}

// TestDeadlinePropagatesIntoSpec: a context deadline must ride the
// submitted spec as deadline_unix_ms so the server can fast-fail expired
// work.
func TestDeadlinePropagatesIntoSpec(t *testing.T) {
	var got atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spec server.JobSpec
		json.NewDecoder(r.Body).Decode(&spec)
		got.Store(spec.DeadlineUnixMS)
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateQueued})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts, nil)

	ddl := time.Now().Add(time.Minute)
	ctx, cancel := context.WithDeadline(context.Background(), ddl)
	defer cancel()
	if _, _, err := c.Submit(ctx, testSpec(12)); err != nil {
		t.Fatal(err)
	}
	if got.Load() != ddl.UnixMilli() {
		t.Fatalf("deadline_unix_ms = %d, want %d", got.Load(), ddl.UnixMilli())
	}
}

// TestResultNotReady surfaces 409 as errJobNotReady rather than an error
// worth retrying or a terminal failure.
func TestResultNotReady(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Job-State", "running")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(server.Status{ID: "j1", State: server.StateRunning})
	}))
	defer ts.Close()
	c, _ := newTestClient(ts, nil)

	_, err := c.Result(context.Background(), "j1")
	if !errors.Is(err, errJobNotReady) {
		t.Fatalf("err = %v, want errJobNotReady", err)
	}
}

// TestPermanent5xxNotRetried: 501 and 505 describe the request, not the
// server's moment — the client must settle them in one attempt instead of
// burning the whole backoff budget to arrive at the same answer.
func TestPermanent5xxNotRetried(t *testing.T) {
	for _, code := range []int{http.StatusNotImplemented, http.StatusHTTPVersionNotSupported} {
		t.Run(fmt.Sprint(code), func(t *testing.T) {
			var calls atomic.Int64
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(code)
			}))
			defer ts.Close()
			c, log := newTestClient(ts, nil)

			res := c.Run(context.Background(), testSpec(uint64(code)))
			if res.Outcome != OutcomeServerError {
				t.Fatalf("outcome = %v, want server-error", res.Outcome)
			}
			if n := calls.Load(); n != 1 {
				t.Errorf("calls = %d, want exactly 1 (no retries)", n)
			}
			if waits := log.all(); len(waits) != 0 {
				t.Errorf("backoffs = %v, want none", waits)
			}
		})
	}
}

// TestReadySingleExchange: the health probe must report the server's answer
// from exactly one exchange — a probe that retries itself healthy defeats
// the point of probing.
func TestReadySingleExchange(t *testing.T) {
	var calls atomic.Int64
	ready := &atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.URL.Path != "/readyz" {
			t.Errorf("probe hit %s, want /readyz", r.URL.Path)
		}
		if !ready.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"status":"draining"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()
	c, log := newTestClient(ts, nil)

	if err := c.Ready(context.Background()); err == nil {
		t.Fatal("Ready() = nil against a draining server")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("calls = %d, want 1 (a probe never retries)", n)
	}
	if waits := log.all(); len(waits) != 0 {
		t.Fatalf("probe slept %v, want no backoff", waits)
	}
	ready.Store(true)
	if err := c.Ready(context.Background()); err != nil {
		t.Fatalf("Ready() against a serving server: %v", err)
	}
}

// TestChecksumMismatchRetries: a framing-valid response whose body hash
// disagrees with the server's X-Dnasimd-Body-Fnv64a header is corrupted in
// flight — the client must retry it, not act on the bytes.
func TestChecksumMismatchRetries(t *testing.T) {
	var calls atomic.Int64
	body := []byte(`{"id":"job-1","kind":"simulate","state":"running"}`)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Valid JSON, valid framing, wrong checksum: flipped in flight.
			w.Header().Set(server.BodyChecksumHeader, "deadbeefdeadbeef")
		} else {
			w.Header().Set(server.BodyChecksumHeader, bodyChecksum(body))
		}
		w.Write(body)
	}))
	defer ts.Close()

	c, _ := newTestClient(ts, nil)
	st, err := c.Status(context.Background(), "job-1")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Errorf("calls = %d, want 2 (mismatch retried exactly once)", got)
	}
	if st.ID != "job-1" {
		t.Errorf("status ID = %q from the clean retry, want job-1", st.ID)
	}
}

// TestRunSurvivesCoordinatorRestart: a coordinator restart presents to a
// mid-poll client as a short window of 503s (draining, then recovering)
// on every endpoint. Run must ride the window out — honoring the server's
// Retry-After floor — and then finish against the restarted process under
// the same job ID, never surfacing the restart to its caller.
func TestRunSurvivesCoordinatorRestart(t *testing.T) {
	var statusCalls atomic.Int64
	payload := []byte("merged dataset bytes")
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(server.Status{ID: "f000001", Kind: server.KindSimulate, State: server.StateRunning})
		case r.URL.Path == "/v1/jobs/f000001":
			switch statusCalls.Add(1) {
			case 1, 2:
				// The restart window: old process draining, new one
				// recovering its ledger. Both shed with a hint.
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"fleet: not accepting jobs: recovering"}`)
			case 3:
				// Recovered: the re-adopted job answers under its old ID.
				json.NewEncoder(w).Encode(server.Status{ID: "f000001", Kind: server.KindSimulate, State: server.StateRunning})
			default:
				json.NewEncoder(w).Encode(server.Status{ID: "f000001", Kind: server.KindSimulate, State: server.StateDone})
			}
		case r.URL.Path == "/v1/jobs/f000001/result":
			w.Write(payload)
		default:
			http.NotFound(w, r)
		}
	}))
	defer ts.Close()
	c, log := newTestClient(ts, nil)

	res := c.Run(context.Background(), testSpec(9))
	if res.Outcome != OutcomeSucceeded {
		t.Fatalf("run settled %s across the restart window: %v", res.Outcome, res.Err)
	}
	if string(res.Data) != string(payload) {
		t.Fatalf("data = %q, want %q", res.Data, payload)
	}
	if res.Submits != 1 {
		t.Errorf("submits = %d, want 1 — the job must not be resubmitted, only re-polled", res.Submits)
	}
	hinted := 0
	for _, wait := range log.all() {
		if wait >= time.Second {
			hinted++
		}
	}
	if hinted < 2 {
		t.Errorf("only %d waits honored the 1s Retry-After floor, want one per shed response", hinted)
	}
}
