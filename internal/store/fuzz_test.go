package store

import (
	"bytes"
	"testing"
)

// FuzzLoadPool hardens the pool loader — both the legacy JSON path and the
// container path — against arbitrary bytes: forged snapshots, invalid
// strands, duplicate keys and mutated containers must error cleanly, never
// panic.
func FuzzLoadPool(f *testing.F) {
	f.Add([]byte(`{"version":1,"options":{},"objects":[]}`))
	f.Add([]byte(`{"version":1,"options":{"payload_bytes":8},"objects":[{"key":"a","primer":"ACGT","strands":["AACC"]}]}`))
	f.Add([]byte(`{"version":2}`))
	f.Add([]byte(`{"version":1,"objects":[{"key":"","primer":""}]}`))
	f.Add([]byte(`{"version":1,"objects":[{"key":"a","primer":"XYZ!"}]}`))
	f.Add([]byte(`{"version":1,"objects":[{"key":"a"},{"key":"a"}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))

	// A valid container pool and a truncated copy.
	p := New(Options{Seed: 1})
	p.Store("k", []byte("fuzz seed payload"))
	var buf bytes.Buffer
	if err := p.Save(&buf); err == nil {
		f.Add(buf.Bytes())
	}
	f.Add([]byte("DNAC\x01\x01\x10\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, _, err := LoadReader(bytes.NewReader(data))
		if err == nil && p == nil {
			t.Error("nil pool without error")
		}
		if p != nil {
			// Accepted pools must be internally consistent.
			for _, k := range p.Keys() {
				if k == "" {
					t.Error("accepted pool with empty key")
				}
			}
			_ = p.NumStrands()
		}
	})
}
