package store

import (
	"encoding/json"
	"fmt"
	"io"

	"dnastore/internal/codec"
	"dnastore/internal/dna"
	"dnastore/internal/rng"
)

// Pool persistence: a stored pool is the design-time artifact (what would
// be sent to a synthesis vendor), so it serialises to JSON — keys, primers
// and designed strands — and reloads into a fully functional Pool.

// poolSnapshot is the stable on-disk representation.
type poolSnapshot struct {
	Version int            `json:"version"`
	Options snapshotOpts   `json:"options"`
	Objects []snapshotItem `json:"objects"`
}

type snapshotOpts struct {
	PayloadBytes   int    `json:"payload_bytes"`
	StrandParity   int    `json:"strand_parity"`
	GroupData      int    `json:"group_data"`
	GroupParity    int    `json:"group_parity"`
	PrimerLength   int    `json:"primer_length"`
	PrimerMismatch int    `json:"primer_mismatch"`
	Seed           uint64 `json:"seed"`
}

type snapshotItem struct {
	Key     string   `json:"key"`
	Primer  string   `json:"primer"`
	Strands []string `json:"strands"`
}

// poolVersion is the persistence format version.
const poolVersion = 1

// Save serialises the pool.
func (p *Pool) Save(w io.Writer) error {
	snap := poolSnapshot{
		Version: poolVersion,
		Options: snapshotOpts{
			PayloadBytes:   p.opts.Archive.PayloadBytes,
			StrandParity:   p.opts.Archive.StrandParity,
			GroupData:      p.opts.Archive.GroupData,
			GroupParity:    p.opts.Archive.GroupParity,
			PrimerLength:   p.opts.PrimerConfig.Length,
			PrimerMismatch: p.opts.PrimerMismatch,
			Seed:           p.opts.Seed,
		},
	}
	for _, key := range p.Keys() {
		idx := p.keys[key]
		item := snapshotItem{Key: key, Primer: string(p.primers[idx])}
		for _, s := range p.objects[idx] {
			item.Strands = append(item.Strands, string(s))
		}
		snap.Objects = append(snap.Objects, item)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(snap)
}

// Load deserialises a pool saved by Save. The reconstructor is restored to
// the default (it is a runtime policy, not part of the design artifact).
func Load(r io.Reader) (*Pool, error) {
	var snap poolSnapshot
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&snap); err != nil {
		return nil, fmt.Errorf("store: decode pool: %w", err)
	}
	if snap.Version != poolVersion {
		return nil, fmt.Errorf("store: unsupported pool version %d", snap.Version)
	}
	p := New(Options{
		Archive: codec.Archive{
			PayloadBytes: snap.Options.PayloadBytes,
			StrandParity: snap.Options.StrandParity,
			GroupData:    snap.Options.GroupData,
			GroupParity:  snap.Options.GroupParity,
		},
		PrimerConfig:   codec.PrimerConfig{Length: snap.Options.PrimerLength},
		PrimerMismatch: snap.Options.PrimerMismatch,
		Seed:           snap.Options.Seed,
	})
	// Advance the primer RNG deterministically past the stored objects so
	// later Store calls draw fresh primers.
	p.rng = rng.New(snap.Options.Seed ^ 0xd1a5704e5 ^ uint64(len(snap.Objects)+1))
	for _, item := range snap.Objects {
		if item.Key == "" {
			return nil, fmt.Errorf("store: object with empty key")
		}
		if _, dup := p.keys[item.Key]; dup {
			return nil, fmt.Errorf("store: duplicate key %q", item.Key)
		}
		primer := dna.Strand(item.Primer)
		if err := primer.Validate(); err != nil {
			return nil, fmt.Errorf("store: key %q primer: %w", item.Key, err)
		}
		strands := make([]dna.Strand, len(item.Strands))
		for i, s := range item.Strands {
			strands[i] = dna.Strand(s)
			if err := strands[i].Validate(); err != nil {
				return nil, fmt.Errorf("store: key %q strand %d: %w", item.Key, i, err)
			}
		}
		p.keys[item.Key] = len(p.primers)
		p.primers = append(p.primers, primer)
		p.objects = append(p.objects, strands)
	}
	return p, nil
}
