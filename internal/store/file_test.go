package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dnastore/internal/codec"
	"dnastore/internal/durable"
	"dnastore/internal/faults"
	"dnastore/internal/rng"
)

// filePool builds a small pool with two stored objects.
func filePool(t *testing.T) *Pool {
	t.Helper()
	p := New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    33,
	})
	for k, v := range map[string][]byte{
		"a": bytes.Repeat([]byte("alpha "), 10),
		"b": bytes.Repeat([]byte("beta "), 12),
	} {
		if err := p.Store(k, v); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestPoolFileRoundTrip(t *testing.T) {
	p := filePool(t)
	path := filepath.Join(t.TempDir(), "pool.dnac")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, legacy, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if legacy {
		t.Error("container load reported legacy")
	}
	if strings.Join(loaded.Keys(), ",") != strings.Join(p.Keys(), ",") {
		t.Errorf("keys changed: %v vs %v", loaded.Keys(), p.Keys())
	}
	if loaded.NumStrands() != p.NumStrands() {
		t.Errorf("strand count changed")
	}
}

func TestPoolFileLegacyJSON(t *testing.T) {
	p := filePool(t)
	path := filepath.Join(t.TempDir(), "pool.json")
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, legacy, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !legacy {
		t.Error("bare JSON not reported as legacy")
	}
	if loaded.NumStrands() != p.NumStrands() {
		t.Error("legacy load lost strands")
	}
}

func TestPoolFileSurvivesBitRot(t *testing.T) {
	p := filePool(t)
	path := filepath.Join(t.TempDir(), "pool.dnac")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rot a few bits inside the frame body, clear of the headers, spread
	// thinly enough to stay within the per-codeword parity budget.
	bodyStart := 12 + 2 + len("pool.json") + 8
	rotted := faults.BitRotRange(data, bodyStart, len(data)-20, 6, rng.New(4))
	if err := os.WriteFile(path, rotted, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, legacy, err := LoadFile(path)
	if err != nil {
		t.Fatalf("bit-rotted pool unloadable: %v", err)
	}
	if legacy {
		t.Error("rotted container misread as legacy")
	}
	if loaded.NumStrands() != p.NumStrands() {
		t.Error("repair lost strands")
	}

	// Scrub sees the same damage and repairs the file in place.
	rep, err := durable.RepairFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Damaged() || !rep.Repairable() {
		t.Errorf("scrub verdict: %s", rep.Summary())
	}
	if rep2, _ := durable.ScrubFile(path); !rep2.Intact() {
		t.Errorf("post-repair: %s", rep2.Summary())
	}
}

func TestPoolFileDetectsTornWrite(t *testing.T) {
	p := filePool(t)
	path := filepath.Join(t.TempDir(), "pool.dnac")
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Keep the cut past the container magic so this reads as a torn
	// container, not a legacy file.
	torn := data[:4+rng.New(8).Intn(len(data)-4)]
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadFile(path); err == nil {
		t.Fatal("torn pool file loaded silently")
	}
}
