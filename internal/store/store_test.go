package store

import (
	"bytes"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/dist"
)

func testPool(t *testing.T) *Pool {
	t.Helper()
	return New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    7,
	})
}

func TestStoreAndRetrieveThroughNoise(t *testing.T) {
	p := testPool(t)
	docs := map[string][]byte{
		"alpha": bytes.Repeat([]byte("first object payload. "), 12),
		"beta":  bytes.Repeat([]byte("second object, different content! "), 9),
	}
	for k, v := range docs {
		if err := p.Store(k, v); err != nil {
			t.Fatalf("Store(%q): %v", k, err)
		}
	}
	if got := p.Keys(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Fatalf("Keys = %v", got)
	}
	if p.NumStrands() == 0 {
		t.Fatal("no designed strands")
	}

	ch := channel.NewNaive("seq", channel.NanoporeMix(0.02)).WithSpatial(dist.NanoporeSkew())
	reads := p.Sequence(ch, channel.FixedCoverage(12), 99)

	for k, want := range docs {
		got, err := p.Retrieve(k, reads)
		if err != nil {
			t.Fatalf("Retrieve(%q): %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Retrieve(%q): payload corrupted", k)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	p := testPool(t)
	if err := p.Store("", []byte("x")); err == nil {
		t.Error("empty key accepted")
	}
	if err := p.Store("k", nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := p.Store("k", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := p.Store("k", []byte("other")); err == nil {
		t.Error("duplicate key accepted")
	}
}

func TestRetrieveUnknownKey(t *testing.T) {
	p := testPool(t)
	if _, err := p.Retrieve("ghost", nil); err == nil {
		t.Error("unknown key accepted")
	}
}

func TestRetrieveNoReads(t *testing.T) {
	p := testPool(t)
	if err := p.Store("k", []byte("payload data payload data")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Retrieve("k", nil); err == nil {
		t.Error("retrieval with no reads succeeded")
	}
}

func TestPrimersAreDistinct(t *testing.T) {
	p := testPool(t)
	for i := 0; i < 6; i++ {
		if err := p.Store(string(rune('a'+i)), bytes.Repeat([]byte{byte(i + 1)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	for _, pr := range p.primers {
		if seen[string(pr)] {
			t.Fatal("duplicate primer issued")
		}
		seen[string(pr)] = true
	}
	// Pairwise distance must exceed twice the mismatch budget.
	for i := range p.primers {
		for j := i + 1; j < len(p.primers); j++ {
			if _, within := distAtMost(p.primers[i], p.primers[j], 2*p.opts.PrimerMismatch+1); within {
				t.Errorf("primers %d and %d too close", i, j)
			}
		}
	}
}

func TestSelectiveAmplificationIsolation(t *testing.T) {
	// Retrieving one key must not be corrupted by the other object's
	// strands sharing the pool.
	p := testPool(t)
	a := bytes.Repeat([]byte("AAAA-object "), 10)
	b := bytes.Repeat([]byte("BBBB-object "), 10)
	if err := p.Store("a", a); err != nil {
		t.Fatal(err)
	}
	if err := p.Store("b", b); err != nil {
		t.Fatal(err)
	}
	// Clean channel isolates the clustering/selection logic.
	reads := p.Sequence(channel.NewNaive("clean", channel.Rates{}), channel.FixedCoverage(5), 3)
	got, err := p.Retrieve("a", reads)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, a) {
		t.Error("object a corrupted in mixed pool")
	}
}
