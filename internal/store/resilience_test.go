package store

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/faults"
)

// testPool builds a pool holding one object whose layout is exactly one
// parity group: 10 data strands + 6 group parity = 16 designed strands,
// so cluster index == designed strand index and the erasure-capacity
// boundary (6) is known.
func resiliencePool(t *testing.T) (*Pool, []byte) {
	t.Helper()
	p := New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    21,
	})
	payload := bytes.Repeat([]byte("resilient payload "), 11)[:190]
	if err := p.Store("doc", payload); err != nil {
		t.Fatal(err)
	}
	if n := p.NumStrands(); n != 16 {
		t.Fatalf("layout changed: %d strands, tests assume 16", n)
	}
	return p, payload
}

func cleanChannel() channel.Channel { return channel.NewNaive("clean", channel.Rates{}) }

func TestRetrieveReportCleanPath(t *testing.T) {
	p, payload := resiliencePool(t)
	reads := p.Sequence(cleanChannel(), channel.FixedCoverage(5), 9)
	data, rep, err := p.RetrieveReport("doc", reads)
	if err != nil {
		t.Fatalf("clean retrieve failed: %v\nreport: %s", err, rep.Summary())
	}
	if !bytes.Equal(data, payload) {
		t.Error("payload corrupted")
	}
	if rep.TotalStrands != 16 || rep.Clean != 16 || rep.Repaired != 0 || rep.Erased != 0 {
		t.Errorf("clean-path report: %+v", rep)
	}
	if !rep.Recovered() {
		t.Error("clean path not Recovered")
	}
	if rep.ReadsSelected != 16*5 {
		t.Errorf("ReadsSelected = %d, want 80", rep.ReadsSelected)
	}
	if !strings.Contains(rep.Summary(), "recovered") {
		t.Errorf("Summary = %q", rep.Summary())
	}
}

// TestRetrieveReportDropout erases designed-strand clusters via the
// deterministic ZeroCoverageRegion injector and checks the three regimes:
// parity-strand dropout (free), data-strand dropout within group-parity
// capacity (repaired as erasures), and beyond capacity (unrecoverable,
// with the lost strands named).
func TestRetrieveReportDropout(t *testing.T) {
	cases := []struct {
		name       string
		start, n   int
		wantOK     bool
		wantErased int
	}{
		{"parity strands", 10, 6, true, 6},
		{"data strands within capacity", 0, 6, true, 6},
		{"data strands beyond capacity", 0, 7, false, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, payload := resiliencePool(t)
			cov := faults.ZeroCoverageRegion{Base: channel.FixedCoverage(5), Start: tc.start, Len: tc.n}
			reads := p.Sequence(cleanChannel(), cov, 9)
			data, rep, err := p.RetrieveReport("doc", reads)
			if tc.wantOK {
				if err != nil {
					t.Fatalf("retrieve failed: %v\nreport: %s", err, rep.Summary())
				}
				if !bytes.Equal(data, payload) {
					t.Error("payload corrupted")
				}
				if rep.Erased != tc.wantErased {
					t.Errorf("Erased = %d, want %d", rep.Erased, tc.wantErased)
				}
				if rep.Clean != 16-tc.n {
					t.Errorf("Clean = %d, want %d", rep.Clean, 16-tc.n)
				}
				return
			}
			if err == nil {
				t.Fatal("beyond-capacity dropout decoded successfully")
			}
			if rep.Recovered() {
				t.Error("report claims recovery on failure")
			}
			if len(rep.Unrecovered) != tc.n {
				t.Errorf("Unrecovered = %v, want the %d dead strands", rep.Unrecovered, tc.n)
			}
			for i, idx := range rep.Unrecovered {
				if idx != tc.start+i {
					t.Errorf("Unrecovered[%d] = %d, want %d", i, idx, tc.start+i)
				}
			}
			if !strings.Contains(rep.Summary(), "unrecovered") {
				t.Errorf("Summary = %q", rep.Summary())
			}
		})
	}
}

func TestRetrieveReportTruncatedReads(t *testing.T) {
	p, payload := resiliencePool(t)
	// Most reads lose their tail, but enough full-length reads per cluster
	// survive for reconstruction plus per-strand RS to repair the damage.
	ch := faults.ReadTruncation{Base: cleanChannel(), P: 0.5, MinFrac: 0.5}
	reads := p.Sequence(ch, channel.FixedCoverage(10), 11)
	data, rep, err := p.RetrieveReport("doc", reads)
	if err != nil {
		t.Fatalf("truncated retrieve failed: %v\nreport: %s", err, rep.Summary())
	}
	if !bytes.Equal(data, payload) {
		t.Error("payload corrupted")
	}
	// Universal heavy truncation destroys the object; the report must say
	// what was lost rather than silently failing.
	ch = faults.ReadTruncation{Base: cleanChannel(), P: 1, MinFrac: 0.2}
	reads = p.Sequence(ch, channel.FixedCoverage(4), 11)
	_, rep, err = p.RetrieveReport("doc", reads)
	if err == nil {
		t.Skip("fully truncated pool still decoded; tighten the fault if this starts passing")
	}
	if rep.Recovered() {
		t.Errorf("failure report claims recovery: %s", rep.Summary())
	}
}

func TestRetrieveAdaptiveRecoversFromDropout(t *testing.T) {
	p, payload := resiliencePool(t)
	// Heavy stochastic dropout: most single passes lose more strands than
	// group parity covers, but each retry re-rolls the dropout with a fresh
	// derived seed, so a bounded retry loop recovers.
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		return cleanChannel(), faults.ClusterDropout{Base: channel.FixedCoverage(4), P: 0.5}
	}
	attemptsSeen := 0
	pol := RetryPolicy{
		MaxAttempts: 8,
		OnAttempt:   func(attempt int, rep RetrieveReport, err error) { attemptsSeen = attempt },
	}
	data, rep, attempts, err := p.RetrieveAdaptive(context.Background(), "doc", factory, pol, 1)
	if err != nil {
		t.Fatalf("adaptive retrieve failed after %d attempts: %v", attempts, err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("payload corrupted")
	}
	if attempts != attemptsSeen {
		t.Errorf("attempts %d != callback's last attempt %d", attempts, attemptsSeen)
	}
	if !rep.Recovered() {
		t.Errorf("success report not recovered: %s", rep.Summary())
	}
}

func TestRetrieveAdaptiveEscalatesCoverage(t *testing.T) {
	p, payload := resiliencePool(t)
	// One read per cluster at 2.5% error starves reconstruction; doubling
	// coverage per retry must eventually clear it.
	var scales []float64
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		scales = append(scales, scale)
		n := int(scale)
		return channel.NewNaive("seq", channel.NanoporeMix(0.025)), channel.FixedCoverage(n)
	}
	// Jitter disabled and a high cap keep the doubling exact for assertion.
	data, _, attempts, err := p.RetrieveAdaptive(context.Background(), "doc", factory,
		RetryPolicy{MaxAttempts: 6, Backoff: 2, MaxScale: 64, Jitter: -1}, 5)
	if err != nil {
		t.Fatalf("escalation never recovered: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Error("payload corrupted")
	}
	if attempts < 2 {
		t.Skip("first attempt already recovered; fault too weak to exercise escalation")
	}
	for i := 1; i < len(scales); i++ {
		if scales[i] != scales[i-1]*2 {
			t.Errorf("scale did not double: %v", scales)
		}
	}
}

func TestRetrieveAdaptiveExhaustion(t *testing.T) {
	p, _ := resiliencePool(t)
	// A dead region is deterministic — no amount of re-sequencing helps —
	// so the loop must exhaust its attempts and surface a structured error.
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		return cleanChannel(), faults.ZeroCoverageRegion{Base: channel.FixedCoverage(4), Start: 0, Len: 8}
	}
	data, rep, attempts, err := p.RetrieveAdaptive(context.Background(), "doc", factory, RetryPolicy{MaxAttempts: 3}, 1)
	if err == nil {
		t.Fatal("dead-region retrieve succeeded")
	}
	if data != nil {
		t.Error("failed retrieve returned data")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3", attempts)
	}
	var pre *PartialRecoveryError
	if !errors.As(err, &pre) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pre.Key != "doc" || pre.Attempts != 3 {
		t.Errorf("partial recovery error: %+v", pre)
	}
	if len(pre.Report.Unrecovered) == 0 || rep.Recovered() {
		t.Errorf("exhaustion report names no strands: %s", pre.Report.Summary())
	}
	if !strings.Contains(err.Error(), "unrecovered strands") {
		t.Errorf("error does not carry the erasure report: %v", err)
	}
}

func TestRetrieveAdaptiveCancellation(t *testing.T) {
	p, _ := resiliencePool(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // canceled before the first attempt
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		return cleanChannel(), channel.FixedCoverage(4)
	}
	_, _, attempts, err := p.RetrieveAdaptive(ctx, "doc", factory, RetryPolicy{}, 1)
	if err == nil {
		t.Fatal("canceled retrieve succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// "Was told to stop" must be distinguishable from "gave up": no attempt
	// ran, and the structured error says so.
	if attempts != 0 {
		t.Errorf("attempts = %d, want 0 for pre-attempt cancellation", attempts)
	}
	var pre *PartialRecoveryError
	if !errors.As(err, &pre) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pre.Attempts != 0 {
		t.Errorf("PartialRecoveryError.Attempts = %d, want 0", pre.Attempts)
	}
	if !pre.Canceled() {
		t.Error("PartialRecoveryError.Canceled() = false for a canceled retrieval")
	}
	if !strings.Contains(pre.Error(), "before any sequencing attempt") {
		t.Errorf("cancellation error message: %v", pre)
	}
}

// TestRetrieveAdaptiveDeadlineMidRun cancels between attempts and checks the
// error still reports cancellation (not exhaustion) while counting the
// attempts that did run.
func TestRetrieveAdaptiveDeadlineMidRun(t *testing.T) {
	p, _ := resiliencePool(t)
	ctx, cancel := context.WithCancel(context.Background())
	factory := func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
		// A dead region fails every attempt; cancel after the first one so
		// the loop exits on ctx.Err() at the top of attempt 2.
		return cleanChannel(), faults.ZeroCoverageRegion{Base: channel.FixedCoverage(4), Start: 0, Len: 8}
	}
	pol := RetryPolicy{MaxAttempts: 5, OnAttempt: func(attempt int, rep RetrieveReport, err error) {
		cancel()
	}}
	_, _, attempts, err := p.RetrieveAdaptive(ctx, "doc", factory, pol, 1)
	if err == nil {
		t.Fatal("canceled retrieve succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	var pre *PartialRecoveryError
	if !errors.As(err, &pre) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if !pre.Canceled() {
		t.Error("Canceled() = false after mid-run cancellation")
	}
	if attempts != 1 || pre.Attempts != 1 {
		t.Errorf("attempts = %d / %d, want 1: only one attempt ran", attempts, pre.Attempts)
	}
	// Exhaustion, by contrast, must not read as cancellation.
	_, _, _, err = p.RetrieveAdaptive(context.Background(), "doc", factory, RetryPolicy{MaxAttempts: 2}, 1)
	if !errors.As(err, &pre) {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pre.Canceled() {
		t.Error("Canceled() = true for an exhausted (not canceled) retrieval")
	}
}

func TestRetrieveAdaptiveBackoffCapAndJitter(t *testing.T) {
	p, _ := resiliencePool(t)
	// A dead region never recovers, so every attempt runs and the factory
	// observes the full scale schedule.
	record := func(scales *[]float64) SequencerFactory {
		return func(attempt int, scale float64) (channel.Channel, channel.CoverageModel) {
			*scales = append(*scales, scale)
			return cleanChannel(), faults.ZeroCoverageRegion{Base: channel.FixedCoverage(4), Start: 0, Len: 8}
		}
	}

	// Cap: with Backoff 2 and MaxScale 4, raw scales 1,2,4,8,16 must clamp
	// to 1,2,4,4,4 (jitter off to keep them exact).
	var capped []float64
	pol := RetryPolicy{MaxAttempts: 5, Backoff: 2, MaxScale: 4, Jitter: -1}
	p.RetrieveAdaptive(context.Background(), "doc", record(&capped), pol, 3)
	want := []float64{1, 2, 4, 4, 4}
	if len(capped) != len(want) {
		t.Fatalf("saw %d attempts, want %d", len(capped), len(want))
	}
	for i := range want {
		if capped[i] != want[i] {
			t.Errorf("attempt %d scale = %v, want %v (all: %v)", i+1, capped[i], want[i], capped)
		}
	}

	// Jitter: the first attempt is exact, retries deviate within ±Jitter of
	// the capped schedule, and the whole schedule is seed-deterministic.
	var j1, j2, j3 []float64
	jpol := RetryPolicy{MaxAttempts: 4, Backoff: 2, MaxScale: 8, Jitter: 0.25}
	p.RetrieveAdaptive(context.Background(), "doc", record(&j1), jpol, 3)
	p.RetrieveAdaptive(context.Background(), "doc", record(&j2), jpol, 3)
	p.RetrieveAdaptive(context.Background(), "doc", record(&j3), jpol, 4)
	if j1[0] != 1 {
		t.Errorf("first attempt jittered: %v", j1[0])
	}
	raw := []float64{1, 2, 4, 8}
	deviated := false
	for i := 1; i < len(j1); i++ {
		lo, hi := raw[i]*0.75, raw[i]*1.25
		if j1[i] < lo || j1[i] > hi {
			t.Errorf("attempt %d scale %v outside [%v, %v]", i+1, j1[i], lo, hi)
		}
		if j1[i] != raw[i] {
			deviated = true
		}
		if j1[i] != j2[i] {
			t.Errorf("same seed, different jitter: %v vs %v", j1[i], j2[i])
		}
	}
	if !deviated {
		t.Error("jitter changed no scale")
	}
	same := true
	for i := 1; i < len(j1) && i < len(j3); i++ {
		if j1[i] != j3[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}
