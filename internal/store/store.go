// Package store models a DNA pool as the key-value store of §1.1.1
// (Yazdi et al. [25], Bornholt et al. [4]): every stored object is encoded
// into indexed, Reed–Solomon-protected strands, tagged with a unique PCR
// primer (the "filename"), and mixed into one physical pool. Retrieval
// amplifies by primer, clusters the selected reads, reconstructs each
// cluster and decodes — the full read path of the paper's Fig 1.1 as one
// reusable API, with the noisy channel injected by the caller.
package store

import (
	"context"
	"fmt"
	"sort"

	"dnastore/internal/align"

	"dnastore/internal/channel"
	"dnastore/internal/cluster"
	"dnastore/internal/codec"
	"dnastore/internal/dna"
	"dnastore/internal/recon"
	"dnastore/internal/rng"
)

// Options configure a Pool.
type Options struct {
	// Archive is the per-object strand layout; the zero value uses the
	// codec defaults.
	Archive codec.Archive
	// PrimerConfig constrains the key primers; the zero value uses the
	// codec defaults (length 20).
	PrimerConfig codec.PrimerConfig
	// Reconstructor rebuilds strands from read clusters (default: the
	// two-way Iterative algorithm).
	Reconstructor recon.Reconstructor
	// PrimerMismatch is the PCR selection tolerance in edit distance
	// (default 3).
	PrimerMismatch int
	// Seed drives primer generation.
	Seed uint64
}

// Pool is a single DNA storage pool holding multiple keyed objects.
type Pool struct {
	opts    Options
	rng     *rng.RNG
	keys    map[string]int // key -> index into primers/objects
	primers []dna.Strand
	objects [][]dna.Strand // designed payload strands per object (untagged)
}

// New creates an empty pool.
func New(opts Options) *Pool {
	if opts.Reconstructor == nil {
		opts.Reconstructor = recon.NewTwoWayIterative()
	}
	if opts.PrimerMismatch <= 0 {
		opts.PrimerMismatch = 3
	}
	return &Pool{
		opts: opts,
		rng:  rng.New(opts.Seed ^ 0xd1a5704e5),
		keys: make(map[string]int),
	}
}

// Store encodes data under the given key, assigning it a fresh primer.
// Keys must be unique and data non-empty.
func (p *Pool) Store(key string, data []byte) error {
	if key == "" {
		return fmt.Errorf("store: empty key")
	}
	if _, exists := p.keys[key]; exists {
		return fmt.Errorf("store: key %q already stored", key)
	}
	strands, err := p.opts.Archive.Encode(data)
	if err != nil {
		return fmt.Errorf("store: encoding %q: %w", key, err)
	}
	primer, err := p.newPrimer()
	if err != nil {
		return fmt.Errorf("store: primer for %q: %w", key, err)
	}
	p.keys[key] = len(p.primers)
	p.primers = append(p.primers, primer)
	p.objects = append(p.objects, strands)
	return nil
}

// newPrimer draws a primer distant from every existing one.
func (p *Pool) newPrimer() (dna.Strand, error) {
	cfg := p.opts.PrimerConfig
	const attempts = 20000
	for a := 0; a < attempts; a++ {
		cands, err := codec.GeneratePrimers(1, cfg, p.rng)
		if err != nil {
			return "", err
		}
		cand := cands[0]
		ok := true
		minDist := 2*p.opts.PrimerMismatch + 2 // amplification windows must not overlap
		for _, existing := range p.primers {
			if d, within := distAtMost(existing, cand, minDist-1); within && d < minDist {
				ok = false
				break
			}
		}
		if ok {
			return cand, nil
		}
	}
	return "", fmt.Errorf("store: primer space exhausted after %d objects", len(p.primers))
}

// Keys returns the stored keys in sorted order.
func (p *Pool) Keys() []string {
	out := make([]string, 0, len(p.keys))
	for k := range p.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// DesignedStrands returns every tagged strand in the pool — the synthesis
// order sheet. Strand order carries no meaning.
func (p *Pool) DesignedStrands() []dna.Strand {
	var out []dna.Strand
	for i, strands := range p.objects {
		out = append(out, codec.Tag(p.primers[i], strands)...)
	}
	return out
}

// NumStrands returns the pool's designed strand count.
func (p *Pool) NumStrands() int {
	n := 0
	for _, strands := range p.objects {
		n += len(strands)
	}
	return n
}

// Retrieve recovers the object stored under key from a pool-wide
// sequencing read-out (unordered noisy reads of the *tagged* strands):
// PCR selection by the key's primer, similarity clustering,
// reconstruction and archive decoding. It is RetrieveReport without the
// erasure report.
func (p *Pool) Retrieve(key string, reads []dna.Strand) ([]byte, error) {
	data, _, err := p.RetrieveReport(key, reads)
	return data, err
}

// RetrieveReport is Retrieve plus a per-strand erasure/repair report: how
// many designed strands came back clean, were repaired by per-strand RS,
// were erased and rebuilt from group parity, or were lost outright. The
// report is always meaningful, including on failure, so callers can
// surface exactly which strands an unrecoverable object is missing.
func (p *Pool) RetrieveReport(key string, reads []dna.Strand) ([]byte, RetrieveReport, error) {
	rep := RetrieveReport{Key: key}
	idx, ok := p.keys[key]
	if !ok {
		return nil, rep, fmt.Errorf("store: unknown key %q", key)
	}
	rep.TotalStrands = len(p.objects[idx])
	primer := p.primers[idx]
	selected := codec.SelectAmplify(reads, primer, p.opts.PrimerMismatch)
	rep.ReadsSelected = len(selected)
	if len(selected) == 0 {
		rep.Unrecovered = allStrandIndexes(rep.TotalStrands)
		return nil, rep, fmt.Errorf("store: no reads amplified for key %q", key)
	}
	clusters := cluster.Greedy(selected, cluster.Config{})
	rep.Clusters = len(clusters)
	length := p.opts.Archive.StrandLength()
	var recovered []dna.Strand
	for _, members := range clusters {
		if len(members) == 0 {
			continue
		}
		recovered = append(recovered, p.opts.Reconstructor.Reconstruct(members, length))
	}
	data, dr, err := p.opts.Archive.DecodeReport(recovered)
	rep.Clean, rep.Repaired, rep.Erased = dr.Clean, dr.Repaired, dr.Erased
	rep.Unrecovered = dr.Unrecovered
	if err != nil {
		if dr.TotalChunks == 0 {
			// Decoding never framed the layout; every strand is lost.
			rep.Unrecovered = allStrandIndexes(rep.TotalStrands)
		}
		return nil, rep, fmt.Errorf("store: decoding %q: %w", key, err)
	}
	return data, rep, nil
}

// allStrandIndexes lists 0..n-1, the "everything lost" erasure set.
func allStrandIndexes(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Sequence pushes the whole pool through a noisy channel at the given
// coverage and returns the shuffled read pool — the wetlab read-out that
// Retrieve consumes. It is a convenience for tests and simulations; real
// deployments would read FASTQ instead.
func (p *Pool) Sequence(ch channel.Channel, cov channel.CoverageModel, seed uint64) []dna.Strand {
	sim := channel.Simulator{Channel: ch, Coverage: cov}
	ds := sim.Simulate("pool", p.DesignedStrands(), seed)
	return ds.AllReads(rng.New(seed + 1))
}

// SequenceCtx is Sequence under a context: cancellation stops the
// simulated sequencing run between clusters, and per-cluster channel
// panics degrade to missing reads instead of killing the process. The
// partial read pool is returned alongside any *channel.SimulationError.
func (p *Pool) SequenceCtx(ctx context.Context, ch channel.Channel, cov channel.CoverageModel, seed uint64) ([]dna.Strand, error) {
	sim := channel.Simulator{Channel: ch, Coverage: cov}
	ds, err := sim.SimulateCtx(ctx, "pool", p.DesignedStrands(), seed)
	if ds == nil {
		return nil, err
	}
	return ds.AllReads(rng.New(seed + 1)), err
}

// distAtMost reports the edit distance between two strands when it is at
// most k.
func distAtMost(a, b dna.Strand, k int) (int, bool) {
	return align.DistanceAtMost(string(a), string(b), k)
}
