package store

import (
	"context"
	"errors"
	"fmt"

	"dnastore/internal/channel"
	"dnastore/internal/dna"
	"dnastore/internal/obs"
	"dnastore/internal/rng"
)

// The resilient read path: erasure/repair reporting, a structured
// partial-recovery error, and an adaptive re-sequencing loop that
// escalates coverage on decode failure — the graceful-degradation half of
// the fault-injection subsystem (see internal/faults).

// RetrieveReport describes how each designed strand of an object fared on
// the read path.
type RetrieveReport struct {
	// Key is the object key the retrieval targeted.
	Key string
	// ReadsSelected counts reads surviving PCR selection by the key's primer.
	ReadsSelected int
	// Clusters counts similarity clusters formed from the selected reads.
	Clusters int
	// TotalStrands is the object's designed strand count (data + parity).
	TotalStrands int
	// Clean counts strands decoded with zero RS corrections.
	Clean int
	// Repaired counts strands decoded after per-strand RS correction.
	Repaired int
	// Erased counts strands missing entirely but rebuilt from group parity.
	Erased int
	// Unrecovered lists designed strand indexes lost beyond parity capacity.
	Unrecovered []int
}

// Recovered reports whether every strand was accounted for.
func (r RetrieveReport) Recovered() bool { return len(r.Unrecovered) == 0 }

// Summary renders a one-line operator-facing account of the read path.
func (r RetrieveReport) Summary() string {
	status := "recovered"
	if !r.Recovered() {
		status = fmt.Sprintf("unrecovered strands %v", r.Unrecovered)
	}
	return fmt.Sprintf("key %q: %d reads in %d clusters; strands %d clean, %d repaired, %d erased of %d; %s",
		r.Key, r.ReadsSelected, r.Clusters, r.Clean, r.Repaired, r.Erased, r.TotalStrands, status)
}

// PartialRecoveryError reports an object that could not be fully recovered
// within the bounded re-sequencing attempts. It carries the final erasure
// report so callers can act on the partial outcome (e.g. name the lost
// strands) instead of seeing an opaque decode failure.
//
// Cancellation is reported distinctly from exhaustion: when the retrieval
// was told to stop (context canceled or deadline exceeded) Err wraps the
// context error — errors.Is(err, context.Canceled) and Canceled() hold —
// and Attempts counts only the sequencing attempts that actually ran,
// which is 0 when the context was already dead on entry. An exhausted
// retrieval instead carries the last decode failure with Attempts > 0.
type PartialRecoveryError struct {
	// Key is the unrecoverable object.
	Key string
	// Attempts is the number of sequencing attempts that ran; 0 means the
	// retrieval was canceled before sequencing anything.
	Attempts int
	// Report is the erasure report of the final attempt (zero-valued when
	// no attempt ran).
	Report RetrieveReport
	// Err is the last underlying failure; for a canceled retrieval it
	// wraps context.Canceled or context.DeadlineExceeded.
	Err error
}

// Error implements error.
func (e *PartialRecoveryError) Error() string {
	if e.Attempts == 0 {
		return fmt.Sprintf("store: %q retrieval stopped before any sequencing attempt: %v", e.Key, e.Err)
	}
	return fmt.Sprintf("store: %q unrecovered after %d attempts: %v (%s)",
		e.Key, e.Attempts, e.Err, e.Report.Summary())
}

// Unwrap exposes the last underlying failure.
func (e *PartialRecoveryError) Unwrap() error { return e.Err }

// Canceled reports whether the retrieval was told to stop (context
// canceled or deadline exceeded) rather than giving up on its own — the
// distinction a job server needs to decide between "mark canceled" and
// "mark failed".
func (e *PartialRecoveryError) Canceled() bool {
	return errors.Is(e.Err, context.Canceled) || errors.Is(e.Err, context.DeadlineExceeded)
}

// SequencerFactory builds the channel and coverage model for one sequencing
// attempt of RetrieveAdaptive. scale is the cumulative coverage escalation
// factor: 1 on the first attempt, multiplied by the policy backoff after
// each failure, so the factory should scale its mean coverage by it.
type SequencerFactory func(attempt int, scale float64) (channel.Channel, channel.CoverageModel)

// RetryPolicy bounds the adaptive re-sequencing loop.
type RetryPolicy struct {
	// MaxAttempts is the total number of sequencing attempts (default 3).
	MaxAttempts int
	// Backoff is the multiplicative coverage escalation per failed attempt
	// (default 2).
	Backoff float64
	// MaxScale caps the cumulative escalation factor (default 8): with many
	// attempts, unbounded exponential growth would demand absurd sequencing
	// depth long after extra coverage stopped helping.
	MaxScale float64
	// Jitter spreads each retry's scale by a uniform ±fraction (default
	// 0.1, clamped to 0.5; negative disables). The perturbation is derived
	// deterministically from the retrieval seed and attempt number, so runs
	// stay reproducible while retries avoid re-rolling an identical
	// configuration.
	Jitter float64
	// OnAttempt, when set, observes each finished attempt: its report and
	// its error (nil on success). Used by CLIs to stream progress.
	OnAttempt func(attempt int, rep RetrieveReport, err error)
}

// RetrieveAdaptive runs the resilient read path end to end: sequence the
// pool, decode the object, and on failure retry with escalated coverage
// and a fresh derived seed — a cluster dropped by a stochastic fault in
// one pass is re-drawn in the next, and higher coverage rescues clusters
// starved below reconstruction quality. Cancellation is honored between
// clusters and between attempts. On success it returns the data, the final
// report and the attempts used; on exhaustion (or cancellation) the error
// is a *PartialRecoveryError carrying the last report.
func (p *Pool) RetrieveAdaptive(ctx context.Context, key string, factory SequencerFactory, pol RetryPolicy, seed uint64) ([]byte, RetrieveReport, int, error) {
	maxAttempts := pol.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	backoff := pol.Backoff
	if backoff <= 1 {
		backoff = 2
	}
	maxScale := pol.MaxScale
	if maxScale <= 0 {
		maxScale = 8
	}
	jitter := pol.Jitter
	switch {
	case jitter < 0:
		jitter = 0
	case jitter == 0:
		jitter = 0.1
	case jitter > 0.5:
		jitter = 0.5
	}
	// An unknown key is not retryable: fail before sequencing anything.
	if _, ok := p.keys[key]; !ok {
		return nil, RetrieveReport{Key: key}, 0, fmt.Errorf("store: unknown key %q", key)
	}
	scale := 1.0
	lastRep := RetrieveReport{Key: key}
	var lastErr error
	attempts := 0
	for attempt := 1; attempt <= maxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			lastErr = err
			break
		}
		attempts = attempt
		effScale := min(scale, maxScale)
		if jitter > 0 && attempt > 1 {
			// Seed-derived, attempt-indexed perturbation: deterministic for a
			// given retrieval, different across attempts.
			u := rng.New(deriveAttemptSeed(seed^0x6a09e667f3bcc908, attempt)).Float64()
			effScale *= 1 + jitter*(2*u-1)
		}
		ch, cov := factory(attempt, effScale)
		timer := obs.TimerFrom(ctx)
		var reads []dna.Strand
		stopSeq := timer.Start("store.sequence")
		reads, seqErr := p.SequenceCtx(ctx, ch, cov, deriveAttemptSeed(seed, attempt))
		stopSeq(len(reads))
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		// Non-cancellation simulation errors (isolated cluster panics)
		// degrade to missing reads; the decode's erasure handling takes it
		// from there.
		_ = seqErr
		stopDec := timer.Start("store.decode")
		data, rep, err := p.RetrieveReport(key, reads)
		stopDec(rep.TotalStrands)
		lastRep, lastErr = rep, err
		if pol.OnAttempt != nil {
			pol.OnAttempt(attempt, rep, err)
		}
		if err == nil {
			return data, rep, attempt, nil
		}
		scale *= backoff
	}
	// attempts stays 0 when the context was dead before the first
	// sequencing pass: the caller learns "was told to stop", not "gave up".
	return nil, lastRep, attempts, &PartialRecoveryError{Key: key, Attempts: attempts, Report: lastRep, Err: lastErr}
}

// deriveAttemptSeed splits a fresh sequencing seed per attempt (SplitMix64
// finalizer), so retries re-roll every stochastic choice.
func deriveAttemptSeed(seed uint64, attempt int) uint64 {
	z := seed + uint64(attempt)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
