package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"

	"dnastore/internal/durable"
)

// File-level pool persistence. SaveFile wraps the JSON snapshot in a
// durable container — checksummed, parity-protected, atomically committed —
// while LoadFile transparently accepts both containers and legacy bare-JSON
// pools written before the container format existed.

// poolFrame names the snapshot section inside a pool container.
const poolFrame = "pool.json"

// SaveFile atomically writes the pool to path as a durable container with
// default Reed–Solomon parity. A crash mid-save leaves any previous file
// untouched.
func (p *Pool) SaveFile(path string) error {
	return durable.WriteContainerFile(path, durable.KindPool,
		durable.Options{Parity: durable.DefaultParity},
		func(w *durable.Writer) error {
			var buf bytes.Buffer
			if err := p.Save(&buf); err != nil {
				return err
			}
			return w.WriteFrame(poolFrame, buf.Bytes())
		})
}

// LoadFile reads a pool from path. Container files are verified (and
// silently repaired in memory when bit rot is within the parity budget);
// files without the container magic fall back to the legacy bare-JSON
// loader and return legacy=true so callers can nudge the operator to
// re-save.
func LoadFile(path string) (p *Pool, legacy bool, err error) {
	frames, err := durable.ReadContainerFile(path, durable.KindPool)
	if errors.Is(err, durable.ErrNotContainer) {
		f, err := os.Open(path)
		if err != nil {
			return nil, false, err
		}
		defer f.Close()
		p, err := Load(f)
		if err != nil {
			return nil, true, err
		}
		return p, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	for _, fr := range frames {
		if fr.Name == poolFrame {
			p, err := Load(bytes.NewReader(fr.Payload))
			return p, false, err
		}
	}
	return nil, false, fmt.Errorf("store: %s has no %q section", path, poolFrame)
}

// LoadReader loads a pool from an in-memory stream, sniffing container
// versus legacy JSON the same way LoadFile does. It exists for callers
// (and fuzzers) that do not have a file.
func LoadReader(r io.Reader) (*Pool, bool, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, false, err
	}
	_, frames, err := durable.ReadAll(bytes.NewReader(data))
	if errors.Is(err, durable.ErrNotContainer) {
		p, err := Load(bytes.NewReader(data))
		return p, true, err
	}
	if err != nil {
		return nil, false, err
	}
	for _, fr := range frames {
		if fr.Name == poolFrame {
			p, err := Load(bytes.NewReader(fr.Payload))
			return p, false, err
		}
	}
	return nil, false, fmt.Errorf("store: container has no %q section", poolFrame)
}
