package store

import (
	"bytes"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
)

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	p := New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    21,
	})
	docs := map[string][]byte{
		"a": bytes.Repeat([]byte("alpha "), 10),
		"b": bytes.Repeat([]byte("beta "), 12),
	}
	for k, v := range docs {
		if err := p.Store(k, v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(loaded.Keys(), ",") != strings.Join(p.Keys(), ",") {
		t.Fatalf("keys changed: %v vs %v", loaded.Keys(), p.Keys())
	}
	if loaded.NumStrands() != p.NumStrands() {
		t.Fatalf("strand count changed: %d vs %d", loaded.NumStrands(), p.NumStrands())
	}
	// The loaded pool retrieves through noise like the original.
	ch := channel.NewNaive("seq", channel.NanoporeMix(0.02))
	reads := loaded.Sequence(ch, channel.FixedCoverage(12), 5)
	for k, want := range docs {
		got, err := loaded.Retrieve(k, reads)
		if err != nil {
			t.Fatalf("Retrieve(%q) after load: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Retrieve(%q) corrupted after load", k)
		}
	}
	// New objects can still be stored with distinct primers.
	if err := loaded.Store("c", []byte("third object payload")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, pr := range loaded.primers {
		if seen[string(pr)] {
			t.Fatal("duplicate primer after load+store")
		}
		seen[string(pr)] = true
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99}`,
		`{"version": 1, "objects": [{"key": "", "primer": "ACGT"}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "NOPE"}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "ACGT", "strands": ["BAD!"]}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "ACGT"}, {"key": "x", "primer": "TGCA"}]}`,
		`{"version": 1, "unknown": true}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("malformed pool accepted: %q", c)
		}
	}
}
