package store

import (
	"bytes"
	"strings"
	"testing"

	"dnastore/internal/channel"
	"dnastore/internal/codec"
	"dnastore/internal/faults"
	"dnastore/internal/rng"
)

func TestPoolSaveLoadRoundTrip(t *testing.T) {
	p := New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    21,
	})
	docs := map[string][]byte{
		"a": bytes.Repeat([]byte("alpha "), 10),
		"b": bytes.Repeat([]byte("beta "), 12),
	}
	for k, v := range docs {
		if err := p.Store(k, v); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(loaded.Keys(), ",") != strings.Join(p.Keys(), ",") {
		t.Fatalf("keys changed: %v vs %v", loaded.Keys(), p.Keys())
	}
	if loaded.NumStrands() != p.NumStrands() {
		t.Fatalf("strand count changed: %d vs %d", loaded.NumStrands(), p.NumStrands())
	}
	// The loaded pool retrieves through noise like the original.
	ch := channel.NewNaive("seq", channel.NanoporeMix(0.02))
	reads := loaded.Sequence(ch, channel.FixedCoverage(12), 5)
	for k, want := range docs {
		got, err := loaded.Retrieve(k, reads)
		if err != nil {
			t.Fatalf("Retrieve(%q) after load: %v", k, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("Retrieve(%q) corrupted after load", k)
		}
	}
	// New objects can still be stored with distinct primers.
	if err := loaded.Store("c", []byte("third object payload")); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, pr := range loaded.primers {
		if seen[string(pr)] {
			t.Fatal("duplicate primer after load+store")
		}
		seen[string(pr)] = true
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{"version": 99}`,
		`{"version": 1, "objects": [{"key": "", "primer": "ACGT"}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "NOPE"}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "ACGT", "strands": ["BAD!"]}]}`,
		`{"version": 1, "objects": [{"key": "x", "primer": "ACGT"}, {"key": "x", "primer": "TGCA"}]}`,
		`{"version": 1, "unknown": true}`,
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("malformed pool accepted: %q", c)
		}
	}
}

// TestLoadCorruptedPool feeds Load a valid pool file mangled by each fault
// corruption mode. Load must never panic; structural damage (truncation,
// garbage header) must be rejected, and byte flips must either be rejected
// or produce a pool that still validates.
func TestLoadCorruptedPool(t *testing.T) {
	p := New(Options{
		Archive: codec.Archive{StrandParity: 8, GroupData: 10, GroupParity: 6},
		Seed:    21,
	})
	if err := p.Store("doc", bytes.Repeat([]byte("payload "), 20)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()

	cases := []struct {
		name     string
		mode     faults.CorruptMode
		severity int
		wantErr  bool // modes that always destroy structure
	}{
		{"flip few bytes", faults.CorruptFlipBytes, 4, false},
		{"flip many bytes", faults.CorruptFlipBytes, 64, false},
		{"truncate", faults.CorruptTruncate, 1, true},
		{"garbage head", faults.CorruptGarbageHead, 16, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := uint64(1); seed <= 20; seed++ {
				corrupted := faults.CorruptPool(clean, tc.mode, tc.severity, rng.New(seed))
				loaded, err := Load(bytes.NewReader(corrupted))
				if tc.wantErr && err == nil {
					t.Fatalf("seed %d: structurally corrupted pool accepted", seed)
				}
				if err == nil && len(loaded.Keys()) == 0 {
					t.Errorf("seed %d: accepted pool lost its objects", seed)
				}
			}
		})
	}
}
