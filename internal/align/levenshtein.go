// Package align provides the sequence-comparison primitives the simulator
// is built on: Levenshtein distance, maximum-likelihood edit-script
// extraction (the paper's Appendix B algorithm, in dynamic-programming
// form), and Ratcliff–Obershelp gestalt pattern matching (§3.1) with the
// matching blocks and aligned error positions used for the paper's
// "gestalt-aligned" error profiles.
package align

// Distance returns the Levenshtein (unit-cost edit) distance between a and
// b, using O(min(|a|,|b|)) memory.
func Distance(a, b string) int {
	if len(a) < len(b) {
		a, b = b, a
	}
	// b is the shorter string; one rolling row over b.
	n := len(b)
	if n == 0 {
		return len(a)
	}
	row := make([]int, n+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][0]
		row[0] = i
		for j := 1; j <= n; j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := prev + cost // substitution / match
			if row[j]+1 < best {
				best = row[j] + 1 // deletion from a
			}
			if row[j-1]+1 < best {
				best = row[j-1] + 1 // insertion into a
			}
			row[j] = best
			prev = cur
		}
	}
	return row[n]
}

// DistanceAtMost returns the Levenshtein distance between a and b if it is
// <= k, and (k+1, false) otherwise. It runs the banded Ukkonen algorithm in
// O(k·min(|a|,|b|)) time, which makes it the workhorse of the clustering
// substrate where most pairs are far apart.
func DistanceAtMost(a, b string, k int) (int, bool) {
	if k < 0 {
		return k + 1, false
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)-len(b) > k {
		return k + 1, false
	}
	n := len(b)
	if n == 0 {
		return len(a), true
	}
	const inf = int(^uint(0) >> 2)
	row := make([]int, n+1)
	for j := 0; j <= n; j++ {
		if j <= k {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		if lo > hi {
			return k + 1, false
		}
		prev := row[lo-1] // diagonal for j = lo
		if lo-1 == 0 {
			row[0] = i // column 0 cost
			if i > k {
				row[0] = inf
			}
		}
		if lo > 1 {
			row[lo-1] = inf // outside band on this row
		}
		rowMin := inf
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			best := inf
			if prev < inf {
				best = prev + cost
			}
			if cur < inf && cur+1 < best {
				best = cur + 1
			}
			if row[j-1] < inf && row[j-1]+1 < best {
				best = row[j-1] + 1
			}
			row[j] = best
			if best < rowMin {
				rowMin = best
			}
			prev = cur
		}
		if hi < n {
			row[hi+1] = inf
		}
		if rowMin > k {
			return k + 1, false
		}
	}
	if row[n] > k {
		return k + 1, false
	}
	return row[n], true
}

// Similar reports whether the edit distance between a and b is at most k.
func Similar(a, b string, k int) bool {
	_, ok := DistanceAtMost(a, b, k)
	return ok
}
