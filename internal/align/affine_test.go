package align

import (
	"testing"

	"dnastore/internal/rng"
)

func TestAffineParamsValidate(t *testing.T) {
	if err := DefaultAffine().Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := []AffineParams{
		{Mismatch: 0, GapOpen: 1, GapExtend: 1},
		{Mismatch: 1, GapOpen: -1, GapExtend: 1},
		{Mismatch: 1, GapOpen: 1, GapExtend: 0},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", p)
		}
	}
	if _, err := AffineScript("A", "A", AffineParams{}); err == nil {
		t.Error("AffineScript accepted zero params")
	}
}

func TestAffineScriptIdentity(t *testing.T) {
	ops, err := AffineScript("ACGTACGT", "ACGTACGT", DefaultAffine())
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Kind != Equal {
			t.Fatalf("identity alignment has op %v", op)
		}
	}
	got, err := Apply("ACGTACGT", ops)
	if err != nil || got != "ACGTACGT" {
		t.Fatalf("apply = %q, %v", got, err)
	}
}

func TestAffineScriptRoundTripQuick(t *testing.T) {
	r := rng.New(44)
	for trial := 0; trial < 500; trial++ {
		ref := randStrand(r, r.Intn(40))
		read := randStrand(r, r.Intn(40))
		ops, err := AffineScript(ref, read, DefaultAffine())
		if err != nil {
			t.Fatal(err)
		}
		got, err := Apply(ref, ops)
		if err != nil {
			t.Fatalf("apply failed: %v\nref %q read %q ops %+v", err, ref, read, ops)
		}
		if got != read {
			t.Fatalf("round trip: got %q want %q", got, read)
		}
	}
}

func TestAffineGroupsBursts(t *testing.T) {
	// A 4-base burst deletion: unit-cost scripts may scatter it among
	// substitutions; the affine script must keep it contiguous.
	ref := "ACGTTGCAACGGTACCGATGTTCA"
	read := ref[:8] + ref[12:] // delete 4 bases at position 8
	ops, err := AffineScript(ref, read, DefaultAffine())
	if err != nil {
		t.Fatal(err)
	}
	runs, cur := 0, 0
	dels := 0
	for _, op := range ops {
		if op.Kind == Del {
			dels++
			if cur == 0 {
				runs++
			}
			cur++
		} else {
			cur = 0
		}
	}
	if dels != 4 {
		t.Fatalf("got %d deletions, want 4 (ops %+v)", dels, ops)
	}
	if runs != 1 {
		t.Errorf("deletions split into %d runs, want 1 contiguous burst", runs)
	}
}

func TestAffinePrefersGapOverScatteredSubs(t *testing.T) {
	// With a high mismatch cost, aligning "AAAATTTT" to "AAAA" must be a
	// 4-deletion burst, not substitutions.
	ops, err := AffineScript("AAAATTTT", "AAAA", AffineParams{Mismatch: 10, GapOpen: 2, GapExtend: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		if op.Kind == Sub {
			t.Fatalf("unexpected substitution in %+v", ops)
		}
	}
}

func TestAffineCost(t *testing.T) {
	p := DefaultAffine()
	// One burst of 3 deletions: open + 3*extend = 4 + 3 = 7.
	ref := "ACGTACGTAC"
	read := ref[:3] + ref[6:]
	cost, err := AffineCost(ref, read, p)
	if err != nil {
		t.Fatal(err)
	}
	if cost != p.GapOpen+3*p.GapExtend {
		t.Errorf("burst cost = %d, want %d", cost, p.GapOpen+3*p.GapExtend)
	}
	// Identity costs zero.
	if c, _ := AffineCost(ref, ref, p); c != 0 {
		t.Errorf("identity cost = %d", c)
	}
}

func TestAffineEmptyStrings(t *testing.T) {
	p := DefaultAffine()
	ops, err := AffineScript("", "ACG", p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 3 {
		t.Fatalf("ops = %+v", ops)
	}
	got, _ := Apply("", ops)
	if got != "ACG" {
		t.Errorf("apply = %q", got)
	}
	ops, err = AffineScript("ACG", "", p)
	if err != nil {
		t.Fatal(err)
	}
	got, _ = Apply("ACG", ops)
	if got != "" {
		t.Errorf("apply = %q", got)
	}
	if ops2, err := AffineScript("", "", p); err != nil || len(ops2) != 0 {
		t.Errorf("empty-empty = %+v, %v", ops2, err)
	}
}
