package align

import (
	"strings"
	"testing"
	"testing/quick"

	"dnastore/internal/rng"
)

func TestDistanceBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"A", "", 1},
		{"", "ACGT", 4},
		{"ACGT", "ACGT", 0},
		{"ACGT", "AGGT", 1},
		{"AGTC", "ATC", 1},
		{"AGCG", "AGG", 1},
		{"KITTEN", "SITTING", 3},
		{"FLAW", "LAWN", 2},
		{"ACGTACGT", "TGCATGCA", 6},
	}
	for _, c := range cases {
		if got := Distance(c.a, c.b); got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := Distance(c.b, c.a); got != c.want {
			t.Errorf("Distance(%q,%q) = %d, want %d (symmetry)", c.b, c.a, got, c.want)
		}
	}
}

func TestDistanceAtMost(t *testing.T) {
	cases := []struct {
		a, b string
		k    int
		d    int
		ok   bool
	}{
		{"KITTEN", "SITTING", 3, 3, true},
		{"KITTEN", "SITTING", 2, 0, false},
		{"ACGT", "ACGT", 0, 0, true},
		{"ACGT", "TTTT", 1, 0, false},
		{"", "", 0, 0, true},
		{"AAAA", "", 3, 0, false},
		{"AAAA", "", 4, 4, true},
		{"ACGTACGTAC", "ACGACGTAC", 1, 1, true},
	}
	for _, c := range cases {
		d, ok := DistanceAtMost(c.a, c.b, c.k)
		if ok != c.ok {
			t.Errorf("DistanceAtMost(%q,%q,%d) ok = %v, want %v", c.a, c.b, c.k, ok, c.ok)
			continue
		}
		if ok && d != c.d {
			t.Errorf("DistanceAtMost(%q,%q,%d) = %d, want %d", c.a, c.b, c.k, d, c.d)
		}
	}
	if Similar("ACGT", "ACGA", 1) != true {
		t.Error("Similar failed")
	}
	if _, ok := DistanceAtMost("A", "T", -1); ok {
		t.Error("negative k should fail")
	}
}

func TestDistanceAtMostMatchesDistanceQuick(t *testing.T) {
	r := rng.New(99)
	f := func(la, lb, kRaw uint8) bool {
		a := randStrand(r, int(la%30))
		b := randStrand(r, int(lb%30))
		k := int(kRaw % 12)
		want := Distance(a, b)
		d, ok := DistanceAtMost(a, b, k)
		if want <= k {
			return ok && d == want
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func randStrand(r *rng.RNG, n int) string {
	const alpha = "ACGT"
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[r.Intn(4)])
	}
	return sb.String()
}

func TestScriptDeterministic(t *testing.T) {
	ref, read := "AGCG", "AGG"
	ops := Script(ref, read, ScriptOptions{})
	if CostOf(ops) != 1 {
		t.Fatalf("cost = %d, want 1; ops = %+v", CostOf(ops), ops)
	}
	got, err := Apply(ref, ops)
	if err != nil {
		t.Fatal(err)
	}
	if got != read {
		t.Errorf("Apply = %q, want %q", got, read)
	}
}

func TestScriptRoundTripQuick(t *testing.T) {
	r := rng.New(7)
	f := func(la, lb uint8) bool {
		ref := randStrand(r, int(la%40))
		read := randStrand(r, int(lb%40))
		ops := Script(ref, read, ScriptOptions{})
		if CostOf(ops) != Distance(ref, read) {
			return false
		}
		got, err := Apply(ref, ops)
		return err == nil && got == read
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestScriptRandomizedRoundTrip(t *testing.T) {
	r := rng.New(13)
	for trial := 0; trial < 200; trial++ {
		ref := randStrand(r, 20+r.Intn(20))
		read := randStrand(r, 20+r.Intn(20))
		ops := Script(ref, read, ScriptOptions{Randomize: true, RNG: r})
		if CostOf(ops) != Distance(ref, read) {
			t.Fatalf("randomized script cost %d != distance %d", CostOf(ops), Distance(ref, read))
		}
		got, err := Apply(ref, ops)
		if err != nil || got != read {
			t.Fatalf("randomized apply = %q (%v), want %q", got, err, read)
		}
	}
}

func TestScriptRandomizedVaries(t *testing.T) {
	// "AAC" -> "AC" admits two minimum scripts (delete either A); the
	// randomized policy should produce both.
	r := rng.New(5)
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		ops := Script("AAC", "AC", ScriptOptions{Randomize: true, RNG: r})
		key := ""
		for _, op := range ops {
			key += op.Kind.String() + ","
		}
		seen[key] = true
	}
	if len(seen) < 2 {
		t.Errorf("randomized traceback produced only %d distinct scripts", len(seen))
	}
}

func TestScriptRandomizePanicsWithoutRNG(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Script("AG", "GA", ScriptOptions{Randomize: true})
}

func TestScriptPositions(t *testing.T) {
	// ref: A G T C, read: A T C  => deletion of G at ref pos 1, read pos 1.
	ops := Script("AGTC", "ATC", ScriptOptions{})
	var dels []Op
	for _, op := range ops {
		if op.Kind == Del {
			dels = append(dels, op)
		}
	}
	if len(dels) != 1 {
		t.Fatalf("got %d deletions, want 1: %+v", len(dels), ops)
	}
	if dels[0].RefPos != 1 || dels[0].RefBase != 'G' || dels[0].ReadPos != 1 {
		t.Errorf("deletion op = %+v, want refpos 1, base G, readpos 1", dels[0])
	}
}

func TestScriptInsertionPositions(t *testing.T) {
	// ref: AC, read: ATC => insertion of T before ref pos 1, read pos 1.
	ops := Script("AC", "ATC", ScriptOptions{})
	var ins []Op
	for _, op := range ops {
		if op.Kind == Ins {
			ins = append(ins, op)
		}
	}
	if len(ins) != 1 {
		t.Fatalf("got %d insertions: %+v", len(ins), ops)
	}
	if ins[0].RefPos != 1 || ins[0].ReadBase != 'T' || ins[0].ReadPos != 1 {
		t.Errorf("insertion op = %+v", ins[0])
	}
}

func TestApplyRejectsBadScript(t *testing.T) {
	ops := Script("ACGT", "ACG", ScriptOptions{})
	if _, err := Apply("TTTT", ops); err == nil {
		t.Error("Apply with wrong reference should fail")
	}
	if _, err := Apply("ACGTA", ops); err == nil {
		t.Error("Apply with under-consumed reference should fail")
	}
}

func TestOpKindString(t *testing.T) {
	want := map[OpKind]string{Equal: "eq", Sub: "sub", Del: "del", Ins: "ins"}
	for k, w := range want {
		if k.String() != w {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), w)
		}
	}
	if OpKind(9).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	ai, bi, l := longestCommonSubstring("WIKIMEDIA", "WIKIMANIA")
	if l != 5 || ai != 0 || bi != 0 { // "WIKIM"
		t.Errorf("LCS = (%d,%d,%d), want (0,0,5)", ai, bi, l)
	}
	_, _, l = longestCommonSubstring("ABC", "XYZ")
	if l != 0 {
		t.Errorf("LCS of disjoint strings = %d", l)
	}
}

func TestMatchingBlocksWikipediaExample(t *testing.T) {
	// Paper Fig 3.1: WIKIMEDIA vs WIKIMANIA share WIKIM, then IA.
	blocks := MatchingBlocks("WIKIMEDIA", "WIKIMANIA")
	km := 0
	for _, b := range blocks {
		km += b.Len
		if "WIKIMEDIA"[b.APos:b.APos+b.Len] != "WIKIMANIA"[b.BPos:b.BPos+b.Len] {
			t.Errorf("block %+v does not match", b)
		}
	}
	if km != 7 { // WIKIM + IA
		t.Errorf("total matched = %d, want 7", km)
	}
	score := GestaltScore("WIKIMEDIA", "WIKIMANIA")
	want := 2.0 * 7 / 18
	if score != want {
		t.Errorf("GestaltScore = %v, want %v", score, want)
	}
}

func TestGestaltScoreBounds(t *testing.T) {
	if GestaltScore("", "") != 1 {
		t.Error("empty/empty should score 1")
	}
	if GestaltScore("ACGT", "ACGT") != 1 {
		t.Error("identical should score 1")
	}
	if GestaltScore("AAAA", "TTTT") != 0 {
		t.Error("disjoint should score 0")
	}
}

func TestGestaltScoreSymmetricInLengthQuick(t *testing.T) {
	r := rng.New(21)
	f := func(la, lb uint8) bool {
		a := randStrand(r, int(la%25))
		b := randStrand(r, int(lb%25))
		s := GestaltScore(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGestaltErrorPositionsPaperExample(t *testing.T) {
	// ref = AGTC, read = ATC: single gestalt error at read position 1
	// (deletion of G), whereas Hamming flags positions 1, 2 and the
	// missing final character.
	g := GestaltErrorPositions("AGTC", "ATC")
	if len(g) != 1 || g[0] != 1 {
		t.Errorf("gestalt errors = %v, want [1]", g)
	}
	h := HammingErrorPositions("AGTC", "ATC")
	if len(h) != 3 {
		t.Errorf("hamming errors = %v, want 3 entries", h)
	}
}

func TestGestaltErrorsBoundDistanceQuick(t *testing.T) {
	// The gestalt error count is the cost of one particular valid edit
	// script (per gap: substitute the overlap, indel the excess), so it is
	// always >= the Levenshtein distance, and its positions lie within the
	// read (plus the one-past-end slot used for trailing deletions).
	r := rng.New(33)
	f := func(la, lb uint8) bool {
		a := randStrand(r, int(la%30)+1)
		b := randStrand(r, int(lb%30)+1)
		g := GestaltErrorPositions(a, b)
		if len(g) < Distance(a, b) {
			return false
		}
		for _, p := range g {
			if p < 0 || p > len(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGestaltLowerThanHammingOnNoisyCopies(t *testing.T) {
	// Paper §3.2: for reads that are genuinely noisy copies of a reference
	// (the only case the comparison is used for), the gestalt-aligned error
	// magnitude is lower than the Hamming magnitude, because a single early
	// indel inflates every downstream Hamming position.
	r := rng.New(34)
	for trial := 0; trial < 200; trial++ {
		ref := randStrand(r, 60)
		// Apply 1-3 indels plus up to 2 substitutions.
		read := []byte(ref)
		nIndels := 1 + r.Intn(3)
		for e := 0; e < nIndels && len(read) > 1; e++ {
			p := r.Intn(len(read))
			if r.Bool(0.5) {
				read = append(read[:p], read[p+1:]...)
			} else {
				read = append(read[:p], append([]byte{"ACGT"[r.Intn(4)]}, read[p:]...)...)
			}
		}
		g := len(GestaltErrorPositions(ref, string(read)))
		h := len(HammingErrorPositions(ref, string(read)))
		if g > h {
			t.Fatalf("gestalt (%d) > hamming (%d) for noisy copy\nref  %s\nread %s", g, h, ref, read)
		}
	}
}

func TestGestaltErrorsOnIdentical(t *testing.T) {
	if g := GestaltErrorPositions("ACGT", "ACGT"); len(g) != 0 {
		t.Errorf("identical strands yield gestalt errors %v", g)
	}
	if h := HammingErrorPositions("ACGT", "ACGT"); len(h) != 0 {
		t.Errorf("identical strands yield hamming errors %v", h)
	}
}

func TestGestaltErrorsSubstitution(t *testing.T) {
	// ref = ACGT, read = ATGT: substitution C->T at position 1.
	g := GestaltErrorPositions("ACGT", "ATGT")
	if len(g) != 1 || g[0] != 1 {
		t.Errorf("gestalt errors = %v, want [1]", g)
	}
}

func TestGestaltErrorsInsertionAtEnd(t *testing.T) {
	g := GestaltErrorPositions("ACG", "ACGT")
	if len(g) != 1 || g[0] != 3 {
		t.Errorf("gestalt errors = %v, want [3]", g)
	}
}

func TestHammingErrorsLengthMismatch(t *testing.T) {
	// read longer than ref: extra positions are errors.
	h := HammingErrorPositions("AC", "ACGT")
	if len(h) != 2 || h[0] != 2 || h[1] != 3 {
		t.Errorf("hamming errors = %v, want [2 3]", h)
	}
	// ref longer than read: errors at read end.
	h = HammingErrorPositions("ACGT", "AC")
	if len(h) != 2 || h[0] != 2 || h[1] != 2 {
		t.Errorf("hamming errors = %v, want [2 2]", h)
	}
}

func TestMatchingBlocksOrdered(t *testing.T) {
	r := rng.New(55)
	for trial := 0; trial < 100; trial++ {
		a := randStrand(r, 30)
		b := randStrand(r, 30)
		blocks := MatchingBlocks(a, b)
		prevA, prevB := -1, -1
		for _, blk := range blocks {
			if blk.APos <= prevA || blk.BPos <= prevB {
				t.Fatalf("blocks not strictly ordered: %+v", blocks)
			}
			if a[blk.APos:blk.APos+blk.Len] != b[blk.BPos:blk.BPos+blk.Len] {
				t.Fatalf("block content mismatch: %+v", blk)
			}
			prevA = blk.APos + blk.Len - 1
			prevB = blk.BPos + blk.Len - 1
		}
	}
}

func BenchmarkDistance110(b *testing.B) {
	r := rng.New(1)
	x := randStrand(r, 110)
	y := randStrand(r, 110)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distance(x, y)
	}
}

func BenchmarkScript110(b *testing.B) {
	r := rng.New(2)
	x := randStrand(r, 110)
	y := randStrand(r, 110)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Script(x, y, ScriptOptions{})
	}
}

func BenchmarkGestaltBlocks110(b *testing.B) {
	r := rng.New(3)
	x := randStrand(r, 110)
	y := randStrand(r, 110)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatchingBlocks(x, y)
	}
}
