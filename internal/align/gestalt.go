package align

// Block is one matching region found by gestalt pattern matching: a.APos
// and b.BPos are the start offsets of an identical substring of length Len
// in the two strings.
type Block struct {
	APos, BPos, Len int
}

// MatchingBlocks returns the Ratcliff–Obershelp matching blocks of a and b:
// the longest common substring, then recursively the matching blocks of the
// regions to its left and to its right. Blocks are returned in ascending
// position order. Ties for the longest common substring break toward the
// earliest position in a, then in b, which matches the classic algorithm and
// keeps the result deterministic.
func MatchingBlocks(a, b string) []Block {
	var blocks []Block
	matchBlocks(a, b, 0, 0, &blocks)
	return blocks
}

// matchBlocks appends the matching blocks of a and b, whose offsets within
// the original strings are aOff and bOff.
func matchBlocks(a, b string, aOff, bOff int, blocks *[]Block) {
	if len(a) == 0 || len(b) == 0 {
		return
	}
	ai, bi, l := longestCommonSubstring(a, b)
	if l == 0 {
		return
	}
	matchBlocks(a[:ai], b[:bi], aOff, bOff, blocks)
	*blocks = append(*blocks, Block{APos: aOff + ai, BPos: bOff + bi, Len: l})
	matchBlocks(a[ai+l:], b[bi+l:], aOff+ai+l, bOff+bi+l, blocks)
}

// longestCommonSubstring returns the start positions and length of the
// longest substring common to a and b (leftmost in a, then b, on ties).
// It uses a rolling DP row: O(|a|·|b|) time, O(|b|) space.
func longestCommonSubstring(a, b string) (ai, bi, l int) {
	row := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		// Iterate j descending so row[j-1] still holds the previous row.
		for j := len(b); j >= 1; j-- {
			if a[i-1] == b[j-1] {
				row[j] = row[j-1] + 1
				if row[j] > l {
					l = row[j]
					ai = i - l
					bi = j - l
				}
			} else {
				row[j] = 0
			}
		}
	}
	return ai, bi, l
}

// GestaltScore returns the Ratcliff–Obershelp similarity 2·Km/(|a|+|b|),
// where Km is the total length of matching blocks. Two empty strings score 1.
func GestaltScore(a, b string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	km := 0
	for _, blk := range MatchingBlocks(a, b) {
		km += blk.Len
	}
	return 2 * float64(km) / float64(len(a)+len(b))
}

// GestaltErrorPositions returns the read positions that are *sources of
// misalignment* between a reference strand and a read, per the paper's
// gestalt-aligned error definition (§3.2): unmatched read characters
// (insertions and substitution products) are errors at their own positions,
// and each unmatched reference character (a deletion) is one error recorded
// at the read position where the gap occurs. For ref=AGTC, read=ATC this
// yields exactly one error at read position 1 — the deletion of G — whereas
// the Hamming comparison flags positions 1..2 and the length mismatch.
func GestaltErrorPositions(ref, read string) []int {
	blocks := MatchingBlocks(ref, read)
	var errs []int
	refPrev, readPrev := 0, 0
	flushGap := func(refEnd, readEnd int) {
		// Unmatched read characters.
		for p := readPrev; p < readEnd; p++ {
			errs = append(errs, p)
		}
		// Deletions beyond the substituted span: reference characters with
		// no read counterpart, attributed to the gap's read position.
		refGap := refEnd - refPrev
		readGap := readEnd - readPrev
		for k := 0; k < refGap-readGap; k++ {
			pos := readEnd
			if pos > len(read) {
				pos = len(read)
			}
			errs = append(errs, pos)
		}
	}
	for _, blk := range blocks {
		flushGap(blk.APos, blk.BPos)
		refPrev = blk.APos + blk.Len
		readPrev = blk.BPos + blk.Len
	}
	flushGap(len(ref), len(read))
	return errs
}

// HammingErrorPositions returns every read position that differs from the
// reference at the same index, plus one entry per position of length
// mismatch (read positions beyond the reference, or reference positions
// beyond the read, the latter clamped to the read length). This is the
// paper's "Hamming comparison": a single early indel makes every subsequent
// position count as an error, which is exactly the propagation behaviour
// Figs 3.2a and 3.4 visualise.
func HammingErrorPositions(ref, read string) []int {
	var errs []int
	n := len(ref)
	if len(read) < n {
		n = len(read)
	}
	for i := 0; i < n; i++ {
		if ref[i] != read[i] {
			errs = append(errs, i)
		}
	}
	// Extra read characters are errors at their own positions.
	for i := n; i < len(read); i++ {
		errs = append(errs, i)
	}
	// Missing read characters are errors attributed to the read end.
	for i := n; i < len(ref); i++ {
		errs = append(errs, len(read))
	}
	return errs
}
