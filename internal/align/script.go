package align

import (
	"fmt"

	"dnastore/internal/rng"
)

// OpKind classifies one step of an edit script transforming a reference
// strand into a noisy read.
type OpKind uint8

const (
	// Equal copies one reference base unchanged.
	Equal OpKind = iota
	// Sub replaces one reference base with a different read base.
	Sub
	// Del drops one reference base from the read.
	Del
	// Ins emits one extra read base not present in the reference.
	Ins
	numOpKinds
)

// String returns the short name used in histograms and tables.
func (k OpKind) String() string {
	switch k {
	case Equal:
		return "eq"
	case Sub:
		return "sub"
	case Del:
		return "del"
	case Ins:
		return "ins"
	default:
		return fmt.Sprintf("op(%d)", uint8(k))
	}
}

// Op is one step of an edit script. The script direction is reference →
// read: Del consumes a reference base, Ins produces a read base, Equal and
// Sub consume one of each.
type Op struct {
	// Kind is the operation type.
	Kind OpKind
	// RefPos is the 0-based reference position the operation applies to.
	// For Ins it is the reference position *before which* the read base is
	// inserted (== len(ref) for an append at the end).
	RefPos int
	// ReadPos is the 0-based read position produced or, for Del, the read
	// position where the deleted base would have appeared.
	ReadPos int
	// RefBase is the consumed reference base letter; 0 for Ins.
	RefBase byte
	// ReadBase is the produced read base letter; 0 for Del.
	ReadBase byte
}

// ScriptOptions control edit-script extraction.
type ScriptOptions struct {
	// Randomize selects the paper's Appendix B behaviour: when several edit
	// scripts achieve the minimum distance, tie-breaks during traceback are
	// chosen uniformly at random (requires RNG). When false, ties break
	// deterministically in the order Equal/Sub > Del > Ins, which biases
	// toward contiguous deletions and makes profiling reproducible.
	Randomize bool
	// RNG supplies randomness when Randomize is set.
	RNG *rng.RNG
}

// Script returns a minimum-cost edit script transforming ref into read.
// The number of non-Equal ops equals Distance(ref, read). Among equally
// minimal scripts, the tie-break policy in opts picks one; the zero options
// value is the deterministic policy.
func Script(ref, read string, opts ScriptOptions) []Op {
	m, n := len(ref), len(read)
	// Full DP cost matrix; strands here are short (~110 bases) so the
	// quadratic matrix (~12k cells) is cheap and the traceback is exact.
	cols := n + 1
	cost := make([]int32, (m+1)*cols)
	idx := func(i, j int) int { return i*cols + j }
	for j := 0; j <= n; j++ {
		cost[idx(0, j)] = int32(j)
	}
	for i := 1; i <= m; i++ {
		cost[idx(i, 0)] = int32(i)
		for j := 1; j <= n; j++ {
			c := int32(1)
			if ref[i-1] == read[j-1] {
				c = 0
			}
			best := cost[idx(i-1, j-1)] + c
			if d := cost[idx(i-1, j)] + 1; d < best {
				best = d
			}
			if d := cost[idx(i, j-1)] + 1; d < best {
				best = d
			}
			cost[idx(i, j)] = best
		}
	}

	// Traceback from (m, n) to (0, 0), collecting ops in reverse.
	ops := make([]Op, 0, max(m, n))
	i, j := m, n
	var choice [3]OpKind // candidate buffer reused per step
	for i > 0 || j > 0 {
		cur := cost[idx(i, j)]
		nc := 0
		// Diagonal: Equal or Sub.
		if i > 0 && j > 0 {
			c := int32(1)
			if ref[i-1] == read[j-1] {
				c = 0
			}
			if cost[idx(i-1, j-1)]+c == cur {
				if c == 0 {
					choice[nc] = Equal
				} else {
					choice[nc] = Sub
				}
				nc++
			}
		}
		// Up: deletion of ref base.
		if i > 0 && cost[idx(i-1, j)]+1 == cur {
			choice[nc] = Del
			nc++
		}
		// Left: insertion of read base.
		if j > 0 && cost[idx(i, j-1)]+1 == cur {
			choice[nc] = Ins
			nc++
		}
		if nc == 0 {
			panic("align: inconsistent DP matrix") // unreachable
		}
		pick := 0
		if opts.Randomize && nc > 1 {
			if opts.RNG == nil {
				panic("align: Randomize requires an RNG")
			}
			pick = opts.RNG.Intn(nc)
		}
		switch choice[pick] {
		case Equal:
			ops = append(ops, Op{Kind: Equal, RefPos: i - 1, ReadPos: j - 1, RefBase: ref[i-1], ReadBase: read[j-1]})
			i, j = i-1, j-1
		case Sub:
			ops = append(ops, Op{Kind: Sub, RefPos: i - 1, ReadPos: j - 1, RefBase: ref[i-1], ReadBase: read[j-1]})
			i, j = i-1, j-1
		case Del:
			ops = append(ops, Op{Kind: Del, RefPos: i - 1, ReadPos: j, RefBase: ref[i-1]})
			i--
		case Ins:
			ops = append(ops, Op{Kind: Ins, RefPos: i, ReadPos: j - 1, ReadBase: read[j-1]})
			j--
		}
	}
	// Reverse into forward order.
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return ops
}

// Apply replays an edit script against ref and returns the resulting read.
// It returns an error if the script does not consume ref exactly.
func Apply(ref string, ops []Op) (string, error) {
	out := make([]byte, 0, len(ref))
	i := 0
	for _, op := range ops {
		switch op.Kind {
		case Equal:
			if i >= len(ref) || ref[i] != op.RefBase {
				return "", fmt.Errorf("align: Equal op at ref pos %d does not match reference", i)
			}
			out = append(out, ref[i])
			i++
		case Sub:
			if i >= len(ref) {
				return "", fmt.Errorf("align: Sub op beyond reference end")
			}
			out = append(out, op.ReadBase)
			i++
		case Del:
			if i >= len(ref) {
				return "", fmt.Errorf("align: Del op beyond reference end")
			}
			i++
		case Ins:
			out = append(out, op.ReadBase)
		default:
			return "", fmt.Errorf("align: unknown op kind %v", op.Kind)
		}
	}
	if i != len(ref) {
		return "", fmt.Errorf("align: script consumed %d of %d reference bases", i, len(ref))
	}
	return string(out), nil
}

// CostOf returns the number of non-Equal operations in a script.
func CostOf(ops []Op) int {
	n := 0
	for _, op := range ops {
		if op.Kind != Equal {
			n++
		}
	}
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
