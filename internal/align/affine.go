package align

import "fmt"

// Affine-gap alignment (Gotoh's algorithm). Unit-cost edit scripts charge
// a burst of k deletions k times, so the maximum-likelihood script tends
// to scatter burst errors between substitutions; an affine gap penalty
// (open + extend) makes contiguous gaps cheap to extend, grouping burst
// deletions the way the physical channel actually produces them (§3.3.1).
// profile.Options can select affine extraction to compare fitted
// long-deletion statistics under both cost models.

// AffineParams sets the alignment costs. Matches cost 0.
type AffineParams struct {
	// Mismatch is the substitution cost (> 0).
	Mismatch int
	// GapOpen is the cost of starting a gap run (>= 0).
	GapOpen int
	// GapExtend is the per-symbol cost of a gap run (> 0).
	GapExtend int
}

// DefaultAffine returns parameters that trade one substitution for roughly
// 1.5 gap symbols, with bursts strongly preferred over scattered gaps.
func DefaultAffine() AffineParams {
	return AffineParams{Mismatch: 3, GapOpen: 4, GapExtend: 1}
}

// Validate checks parameter sanity.
func (p AffineParams) Validate() error {
	if p.Mismatch <= 0 {
		return fmt.Errorf("align: mismatch cost %d must be positive", p.Mismatch)
	}
	if p.GapOpen < 0 {
		return fmt.Errorf("align: gap-open cost %d must be non-negative", p.GapOpen)
	}
	if p.GapExtend <= 0 {
		return fmt.Errorf("align: gap-extend cost %d must be positive", p.GapExtend)
	}
	return nil
}

const affInf = int32(1) << 29

// matrix state identifiers for traceback.
const (
	stateM = iota // ref and read symbol aligned (match or substitution)
	stateX        // gap in read: reference symbol deleted
	stateY        // gap in ref: read symbol inserted
)

// AffineScript returns a minimum-cost edit script transforming ref into
// read under affine gap costs. The script uses the same Op vocabulary as
// Script; only which script is optimal changes.
func AffineScript(ref, read string, p AffineParams) ([]Op, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, m := len(ref), len(read)
	cols := m + 1
	// Three cost layers.
	M := make([]int32, (n+1)*cols)
	X := make([]int32, (n+1)*cols)
	Y := make([]int32, (n+1)*cols)
	idx := func(i, j int) int { return i*cols + j }

	open := int32(p.GapOpen)
	ext := int32(p.GapExtend)
	mis := int32(p.Mismatch)

	M[idx(0, 0)] = 0
	X[idx(0, 0)] = affInf
	Y[idx(0, 0)] = affInf
	for i := 1; i <= n; i++ {
		M[idx(i, 0)] = affInf
		X[idx(i, 0)] = open + int32(i)*ext
		Y[idx(i, 0)] = affInf
	}
	for j := 1; j <= m; j++ {
		M[idx(0, j)] = affInf
		X[idx(0, j)] = affInf
		Y[idx(0, j)] = open + int32(j)*ext
	}
	min3 := func(a, b, c int32) int32 {
		if b < a {
			a = b
		}
		if c < a {
			a = c
		}
		return a
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			var sub int32
			if ref[i-1] != read[j-1] {
				sub = mis
			}
			d := idx(i-1, j-1)
			M[idx(i, j)] = min3(M[d], X[d], Y[d]) + sub
			u := idx(i-1, j)
			X[idx(i, j)] = min3(M[u]+open+ext, X[u]+ext, Y[u]+open+ext)
			l := idx(i, j-1)
			Y[idx(i, j)] = min3(M[l]+open+ext, Y[l]+ext, X[l]+open+ext)
		}
	}

	// Traceback from the best terminal state.
	i, j := n, m
	state := stateM
	best := M[idx(n, m)]
	if X[idx(n, m)] < best {
		best, state = X[idx(n, m)], stateX
	}
	if Y[idx(n, m)] < best {
		state = stateY
	}
	ops := make([]Op, 0, max(n, m))
	for i > 0 || j > 0 {
		switch state {
		case stateM:
			var sub int32
			if ref[i-1] != read[j-1] {
				sub = mis
			}
			kind := Equal
			if sub != 0 {
				kind = Sub
			}
			ops = append(ops, Op{Kind: kind, RefPos: i - 1, ReadPos: j - 1, RefBase: ref[i-1], ReadBase: read[j-1]})
			d := idx(i-1, j-1)
			target := M[idx(i, j)] - sub
			switch {
			case M[d] == target:
				state = stateM
			case X[d] == target:
				state = stateX
			default:
				state = stateY
			}
			i, j = i-1, j-1
		case stateX:
			ops = append(ops, Op{Kind: Del, RefPos: i - 1, ReadPos: j, RefBase: ref[i-1]})
			u := idx(i-1, j)
			cur := X[idx(i, j)]
			switch {
			case X[u]+ext == cur:
				state = stateX
			case M[u]+open+ext == cur:
				state = stateM
			default:
				state = stateY
			}
			i--
		case stateY:
			ops = append(ops, Op{Kind: Ins, RefPos: i, ReadPos: j - 1, ReadBase: read[j-1]})
			l := idx(i, j-1)
			cur := Y[idx(i, j)]
			switch {
			case Y[l]+ext == cur:
				state = stateY
			case M[l]+open+ext == cur:
				state = stateM
			default:
				state = stateX
			}
			j--
		}
		// Boundary adjustments: once a coordinate hits zero only one state
		// remains reachable.
		if i == 0 && j > 0 {
			state = stateY
		}
		if j == 0 && i > 0 {
			state = stateX
		}
	}
	for a, b := 0, len(ops)-1; a < b; a, b = a+1, b-1 {
		ops[a], ops[b] = ops[b], ops[a]
	}
	return ops, nil
}

// AffineCost returns the affine alignment cost of ref → read.
func AffineCost(ref, read string, p AffineParams) (int, error) {
	ops, err := AffineScript(ref, read, p)
	if err != nil {
		return 0, err
	}
	cost := 0
	prev := Equal
	for _, op := range ops {
		switch op.Kind {
		case Sub:
			cost += p.Mismatch
		case Del:
			if prev != Del {
				cost += p.GapOpen
			}
			cost += p.GapExtend
		case Ins:
			if prev != Ins {
				cost += p.GapOpen
			}
			cost += p.GapExtend
		}
		prev = op.Kind
	}
	return cost, nil
}
