package rng

import (
	"math"
	"testing"
)

// Regression tests for Categorical.Sample's zero-weight handling. The old
// implementation used a >= CDF search plus a skip loop that only recognised
// zero-weight runs whose shared CDF value was exactly 0 — leading zeros.
// An exact boundary hit (u == cdf[i], reachable because Float64()*total
// can land on any representable value, including 0 and total) selected the
// wrong outcome, and trailing zero-weight outcomes were reachable through
// the end-clamp. Sample now guarantees: a zero-weight outcome is never
// returned, for any draw.

// zeroWeightShapes covers leading, interior, trailing and mixed zero
// positions, plus weights engineered so exact boundary hits are
// representable (power-of-two totals).
var zeroWeightShapes = [][]float64{
	{0, 1},
	{0, 0, 1},
	{1, 0, 3},
	{1, 0, 0, 3},
	{2, 0, 1, 0},
	{1, 0},
	{1, 0, 0},
	{0, 1, 0, 2, 0},
	{0.5, 0, 0.5, 0, 1},
	{1e-300, 0, 1},
}

// TestCategoricalZeroWeightNeverSampled is the property test: across many
// seeds and every shape, a zero-weight outcome must never come back.
func TestCategoricalZeroWeightNeverSampled(t *testing.T) {
	for si, weights := range zeroWeightShapes {
		c := MustCategorical(weights)
		for seed := uint64(1); seed <= 50; seed++ {
			r := New(seed)
			for k := 0; k < 2000; k++ {
				i := c.Sample(r)
				if i < 0 || i >= len(weights) {
					t.Fatalf("shape %d seed %d: index %d out of range", si, seed, i)
				}
				if weights[i] == 0 {
					t.Fatalf("shape %d seed %d draw %d: sampled zero-weight outcome %d (weights %v)",
						si, seed, k, i, weights)
				}
			}
		}
	}
}

// TestCategoricalExactBoundaries drives sampleU directly at every CDF
// boundary — the cases a seed search can't reliably produce.
func TestCategoricalExactBoundaries(t *testing.T) {
	for si, weights := range zeroWeightShapes {
		c := MustCategorical(weights)
		check := func(u float64, label string) {
			t.Helper()
			i := c.sampleU(u)
			if i < 0 || i >= len(weights) || weights[i] == 0 {
				t.Fatalf("shape %d (%v): u=%v (%s) -> outcome %d with weight 0 or out of range",
					si, weights, u, label, i)
			}
			// The selected outcome's half-open interval must contain u,
			// except at the total clamp where u sits at the top edge.
			lo := 0.0
			if i > 0 {
				lo = c.cdf[i-1]
			}
			if u < c.total && (u < lo || u >= c.cdf[i]) {
				t.Fatalf("shape %d: u=%v (%s) -> outcome %d outside its interval [%v,%v)",
					si, u, label, i, lo, c.cdf[i])
			}
		}
		check(0, "zero draw")
		check(c.total, "total (rounded-up draw)")
		for j, v := range c.cdf {
			if v < c.total {
				check(v, "interior boundary")
			}
			if v > 0 {
				check(math.Nextafter(v, 0), "just below boundary")
			}
			_ = j
		}
	}
}

// TestCategoricalUnbiased: the fix must not disturb non-degenerate
// sampling — frequencies still match the normalised weights.
func TestCategoricalUnbiased(t *testing.T) {
	weights := []float64{1, 0, 2, 3, 0, 4}
	c := MustCategorical(weights)
	r := New(99)
	const n = 200000
	counts := make([]int, len(weights))
	for k := 0; k < n; k++ {
		counts[c.Sample(r)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / c.total
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d: frequency %.4f, want %.4f", i, got, want)
		}
	}
}
