// Package rng provides a deterministic, splittable random number generator
// and the distribution samplers used throughout the simulator.
//
// Everything stochastic in this repository draws from an *RNG seeded
// explicitly by the caller, so that every experiment, test and benchmark is
// reproducible bit-for-bit. The generator is xoshiro256**, seeded through
// SplitMix64 as recommended by its authors; both are tiny, fast and
// dependency-free.
package rng

import "math"

// RNG is a deterministic pseudo-random generator. It is not safe for
// concurrent use; use Split to derive independent generators per goroutine.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for Box–Muller
	hasSpare bool
	spare    float64
}

// splitMix64 advances a SplitMix64 state and returns the next output.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from the given seed. Distinct seeds give
// statistically independent streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four zero outputs in a row, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is independent of the parent's
// future output. The parent advances by one step.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	// 53 high bits give a uniform dyadic rational in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation with rejection.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	mid1 := t & mask
	c = t >> 32
	t = aLo*bHi + mid1
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes the slice uniformly at random in place.
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal deviate using Box–Muller with a
// cached spare.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a normal deviate with the given mean and standard deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Poisson returns a Poisson-distributed integer with mean lambda.
// It panics if lambda is negative.
func (r *RNG) Poisson(lambda float64) int {
	switch {
	case lambda < 0:
		panic("rng: Poisson with negative lambda")
	case lambda == 0:
		return 0
	case lambda < 30:
		// Knuth's multiplication method.
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	default:
		// Normal approximation with continuity correction, adequate for the
		// coverage scales used here; rejected to non-negative.
		for {
			x := math.Round(r.Normal(lambda, math.Sqrt(lambda)))
			if x >= 0 {
				return int(x)
			}
		}
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}). It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int {
	if p <= 0 || p > 1 {
		panic("rng: Geometric requires 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	// Avoid log(0).
	for u == 0 {
		u = r.Float64()
	}
	return int(math.Floor(math.Log(u) / math.Log(1-p)))
}

// NegBinomial returns a negative-binomial deviate: the number of failures
// before the rth success with success probability p. For non-integral r it
// uses the Gamma–Poisson mixture. Heckel et al. observed sequencing coverage
// to be approximately negative-binomially distributed, which is why the
// wetlab substrate draws coverage from this sampler.
func (r *RNG) NegBinomial(successes, p float64) int {
	if successes <= 0 || p <= 0 || p > 1 {
		panic("rng: NegBinomial requires successes > 0 and 0 < p <= 1")
	}
	if p == 1 {
		return 0
	}
	// Gamma(r, (1-p)/p) mixed Poisson.
	lambda := r.Gamma(successes, (1-p)/p)
	return r.Poisson(lambda)
}

// NegBinomialMeanDisp returns a negative-binomial deviate parameterised by
// mean mu and dispersion k (variance = mu + mu²/k). Smaller k means more
// overdispersion. This is the ecology-style parameterisation convenient for
// matching empirical coverage distributions.
func (r *RNG) NegBinomialMeanDisp(mu, k float64) int {
	if mu < 0 || k <= 0 {
		panic("rng: NegBinomialMeanDisp requires mu >= 0 and k > 0")
	}
	if mu == 0 {
		return 0
	}
	p := k / (k + mu)
	return r.NegBinomial(k, p)
}

// Gamma returns a Gamma(shape, scale) deviate using the Marsaglia–Tsang
// method. It panics unless shape > 0 and scale > 0.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires shape > 0 and scale > 0")
	}
	if shape < 1 {
		// Boost with the Johnk/Marsaglia trick: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Triangular returns a deviate from the triangular distribution on [a, b]
// with mode c. It panics unless a <= c <= b and a < b.
func (r *RNG) Triangular(a, c, b float64) float64 {
	if !(a <= c && c <= b) || a >= b {
		panic("rng: Triangular requires a <= c <= b and a < b")
	}
	u := r.Float64()
	fc := (c - a) / (b - a)
	if u < fc {
		return a + math.Sqrt(u*(b-a)*(c-a))
	}
	return b - math.Sqrt((1-u)*(b-a)*(b-c))
}

// Binomial returns the number of successes in n Bernoulli(p) trials.
func (r *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("rng: Binomial with negative n")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n < 64 {
		k := 0
		for i := 0; i < n; i++ {
			if r.Float64() < p {
				k++
			}
		}
		return k
	}
	// Normal approximation clamped to [0, n]; fine at simulator scales.
	mu := float64(n) * p
	sd := math.Sqrt(mu * (1 - p))
	x := math.Round(r.Normal(mu, sd))
	if x < 0 {
		x = 0
	}
	if x > float64(n) {
		x = float64(n)
	}
	return int(x)
}
