package rng

import (
	"math"
	"testing"
)

// TestFillMatchesUint64: Fill must produce the identical sequence repeated
// Uint64 calls would, and leave the generator in the identical state.
func TestFillMatchesUint64(t *testing.T) {
	for _, n := range []int{1, 2, 7, 64, 256, 1000} {
		a, b := New(42), New(42)
		dst := make([]uint64, n)
		a.Fill(dst)
		for i, v := range dst {
			if w := b.Uint64(); v != w {
				t.Fatalf("n=%d: Fill[%d] = %x, Uint64 = %x", n, i, v, w)
			}
		}
		for k := 0; k < 4; k++ {
			if x, y := a.Uint64(), b.Uint64(); x != y {
				t.Fatalf("n=%d: post-Fill state diverged at draw %d", n, k)
			}
		}
	}
}

// TestBackstepInverts: advancing k steps and backstepping k must restore
// the exact stream position, from many different states.
func TestBackstepInverts(t *testing.T) {
	r := New(7)
	for trial := 0; trial < 50; trial++ {
		k := 1 + trial%17
		var want [4]uint64
		probe := New(0)
		probe.s = r.s
		for i := range want {
			want[i] = probe.Uint64()
		}
		for i := 0; i < k; i++ {
			r.Uint64()
		}
		r.Backstep(k)
		for i := range want {
			if got := r.Uint64(); got != want[i] {
				t.Fatalf("trial %d: after Backstep(%d), draw %d = %x, want %x", trial, k, i, got, want[i])
			}
		}
		// Leave r advanced so the next trial starts from a fresh state.
		r.Uint64()
	}
}

// TestBackstepZero is a no-op.
func TestBackstepZero(t *testing.T) {
	r, ref := New(9), New(9)
	r.Backstep(0)
	if r.Uint64() != ref.Uint64() {
		t.Fatal("Backstep(0) changed the state")
	}
}

// TestBatchStreamParity: an arbitrary interleaving of Uint64 / Float64 /
// Intn through a Batch must return exactly the values direct calls on an
// identically-seeded RNG return, and Unbind must leave the wrapped
// generator in the identical state, regardless of where in the buffer the
// consumption stopped.
func TestBatchStreamParity(t *testing.T) {
	chooser := New(1)
	for trial := 0; trial < 40; trial++ {
		seed := chooser.Uint64()
		batched, direct := New(seed), New(seed)
		var b Batch
		hint := 1 + chooser.Intn(400) // exercise clamping at both ends
		b.Bind(batched, hint)
		draws := chooser.Intn(700)
		for k := 0; k < draws; k++ {
			switch chooser.Intn(3) {
			case 0:
				if x, y := b.Uint64(), direct.Uint64(); x != y {
					t.Fatalf("trial %d draw %d: Uint64 %x != %x", trial, k, x, y)
				}
			case 1:
				if x, y := b.Float64(), direct.Float64(); x != y {
					t.Fatalf("trial %d draw %d: Float64 %v != %v", trial, k, x, y)
				}
			case 2:
				n := 1 + chooser.Intn(1000)
				if x, y := b.Intn(n), direct.Intn(n); x != y {
					t.Fatalf("trial %d draw %d: Intn(%d) %d != %d", trial, k, n, x, y)
				}
			}
		}
		b.Unbind()
		for k := 0; k < 5; k++ {
			if x, y := batched.Uint64(), direct.Uint64(); x != y {
				t.Fatalf("trial %d: post-Unbind state diverged at draw %d (%x vs %x)", trial, k, x, y)
			}
		}
	}
}

// TestBatchRebind: a Batch must be reusable across Bind/Unbind cycles (the
// per-worker arena usage pattern).
func TestBatchRebind(t *testing.T) {
	batched, direct := New(5), New(5)
	var b Batch
	for cycle := 0; cycle < 10; cycle++ {
		b.Bind(batched, 100)
		for k := 0; k < 10+cycle*13; k++ {
			if x, y := b.Float64(), direct.Float64(); x != y {
				t.Fatalf("cycle %d: draw %d diverged", cycle, k)
			}
		}
		b.Unbind()
	}
}

// TestBatchDiscardAdvances: Discard must skip the unconsumed draws — the
// documented fast-RNG-order behaviour — while staying deterministic.
func TestBatchDiscardAdvances(t *testing.T) {
	a1, a2 := New(11), New(11)
	use := func(r *RNG) uint64 {
		var b Batch
		b.Bind(r, 64)
		b.Uint64() // consume 1 of 64
		b.Discard()
		return r.Uint64()
	}
	if use(a1) != use(a2) {
		t.Fatal("Discard is not deterministic")
	}
	// Against a parity generator, the post-Discard position is ahead.
	a3, ref := New(11), New(11)
	var b Batch
	b.Bind(a3, 64)
	b.Uint64()
	b.Discard()
	ref.Uint64()
	if a3.Uint64() == ref.Uint64() {
		t.Fatal("Discard did not advance past the unconsumed draws")
	}
}

// TestBatchIntnBounds sanity-checks range and panic behaviour.
func TestBatchIntnBounds(t *testing.T) {
	r := New(3)
	var b Batch
	b.Bind(r, 64)
	for k := 0; k < 1000; k++ {
		if v := b.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	b.Unbind()
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	b.Bind(r, 64)
	b.Intn(0)
}

// TestBatchFloat64Range mirrors the RNG invariant on the batched path.
func TestBatchFloat64Range(t *testing.T) {
	r := New(17)
	var b Batch
	b.Bind(r, 256)
	for k := 0; k < 10000; k++ {
		v := b.Float64()
		if v < 0 || v >= 1 || math.IsNaN(v) {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
	b.Unbind()
}
