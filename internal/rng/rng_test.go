package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d/100 collisions between distinct seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child stream should not replicate the parent stream.
	p2 := New(7)
	p2.Uint64() // advance past the split draw
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("child replicates parent stream (%d collisions)", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) produced only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(6)
	const n, k = 100000, 10
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		counts[r.Intn(k)]++
	}
	want := float64(n) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestBool(t *testing.T) {
	r := New(8)
	if r.Bool(0) {
		t.Error("Bool(0) returned true")
	}
	if !r.Bool(1) {
		t.Error("Bool(1) returned false")
	}
	n := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			n++
		}
	}
	if math.Abs(float64(n)/trials-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate = %v", float64(n)/trials)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(9)
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(10)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("normal mean = %v, want 3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Errorf("normal variance = %v, want 4", variance)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(11)
	for _, lambda := range []float64{0.5, 4, 25, 60} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := float64(r.Poisson(lambda))
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(%v) mean = %v", lambda, mean)
		}
		if math.Abs(variance-lambda) > 0.1*lambda+0.2 {
			t.Errorf("Poisson(%v) variance = %v", lambda, variance)
		}
	}
	if New(1).Poisson(0) != 0 {
		t.Error("Poisson(0) != 0")
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(12)
	p := 0.25
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	mean := sum / n
	want := (1 - p) / p // mean of failures-before-success geometric
	if math.Abs(mean-want) > 0.1 {
		t.Errorf("Geometric(%v) mean = %v, want %v", p, mean, want)
	}
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) != 0")
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(13)
	for _, c := range []struct{ shape, scale float64 }{{0.5, 2}, {2, 3}, {9, 0.5}} {
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("negative gamma deviate %v", x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.02 {
			t.Errorf("Gamma(%v,%v) mean = %v, want %v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.15*wantVar+0.05 {
			t.Errorf("Gamma(%v,%v) variance = %v, want %v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestNegBinomialMoments(t *testing.T) {
	r := New(14)
	mu, k := 27.0, 3.0
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := float64(r.NegBinomialMeanDisp(mu, k))
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	wantVar := mu + mu*mu/k
	if math.Abs(mean-mu) > 0.03*mu {
		t.Errorf("NB mean = %v, want %v", mean, mu)
	}
	if math.Abs(variance-wantVar) > 0.1*wantVar {
		t.Errorf("NB variance = %v, want %v", variance, wantVar)
	}
	if New(1).NegBinomialMeanDisp(0, 1) != 0 {
		t.Error("NB(mu=0) != 0")
	}
}

func TestTriangularSupportAndMean(t *testing.T) {
	r := New(15)
	a, c, b := 0.0, 0.3, 0.3 // right-edge mode
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Triangular(a, c, b)
		if x < a || x > b {
			t.Fatalf("triangular out of support: %v", x)
		}
		sum += x
	}
	mean := sum / n
	want := (a + b + c) / 3
	if math.Abs(mean-want) > 0.01 {
		t.Errorf("triangular mean = %v, want %v", mean, want)
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(16)
	for _, c := range []struct {
		n int
		p float64
	}{{10, 0.5}, {200, 0.1}} {
		const trials = 50000
		sum := 0.0
		for i := 0; i < trials; i++ {
			k := r.Binomial(c.n, c.p)
			if k < 0 || k > c.n {
				t.Fatalf("binomial out of range: %d", k)
			}
			sum += float64(k)
		}
		mean := sum / trials
		want := float64(c.n) * c.p
		if math.Abs(mean-want) > 0.05*want+0.05 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", c.n, c.p, mean, want)
		}
	}
	if New(1).Binomial(5, 0) != 0 {
		t.Error("Binomial(n,0) != 0")
	}
	if New(1).Binomial(5, 1) != 5 {
		t.Error("Binomial(5,1) != 5")
	}
}

func TestCategorical(t *testing.T) {
	c := MustCategorical([]float64{1, 3, 0, 6})
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if math.Abs(c.Prob(1)-0.3) > 1e-12 {
		t.Errorf("Prob(1) = %v, want 0.3", c.Prob(1))
	}
	if c.Prob(2) != 0 {
		t.Errorf("Prob(2) = %v, want 0", c.Prob(2))
	}
	if c.Prob(-1) != 0 || c.Prob(4) != 0 {
		t.Error("out-of-range Prob should be 0")
	}
	r := New(17)
	const n = 200000
	counts := make([]int, 4)
	for i := 0; i < n; i++ {
		counts[c.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Errorf("sampled zero-weight outcome %d times", counts[2])
	}
	for i, want := range []float64{0.1, 0.3, 0, 0.6} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("outcome %d freq = %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalErrors(t *testing.T) {
	if _, err := NewCategorical(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewCategorical([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewCategorical([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestShuffleUniformity(t *testing.T) {
	// All 6 permutations of 3 elements should appear with roughly equal
	// frequency.
	r := New(18)
	counts := map[[3]int]int{}
	const n = 60000
	for i := 0; i < n; i++ {
		p := r.Perm(3)
		counts[[3]int{p[0], p[1], p[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d permutations, want 6", len(counts))
	}
	for perm, c := range counts {
		if math.Abs(float64(c)-n/6.0) > 5*math.Sqrt(n/6.0) {
			t.Errorf("perm %v count %d deviates from %v", perm, c, n/6.0)
		}
	}
}
