package rng

// Batched generation. The generator state lives behind a pointer, so every
// Uint64 call pays four loads and four stores to heap memory; the transmit
// hot loop makes one draw per base, which makes that traffic measurable.
// Fill runs the xoshiro step with the state in registers and writes a whole
// block of outputs at once; Backstep runs the step in reverse, so a
// consumer that over-filled can return the unused draws and leave the
// generator positioned exactly as if each draw had been made individually.
// Batch packages the two into a drop-in draw source with draw-for-draw
// stream parity.

// Fill writes len(dst) successive Uint64 outputs into dst — the identical
// sequence len(dst) individual Uint64 calls would produce — keeping the
// generator state in registers for the duration of the block.
func (r *RNG) Fill(dst []uint64) {
	s0, s1, s2, s3 := r.s[0], r.s[1], r.s[2], r.s[3]
	for i := range dst {
		dst[i] = rotl(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = rotl(s3, 45)
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = s0, s1, s2, s3
}

// Backstep rewinds the generator by n steps: after Backstep(n), the next n
// Uint64 outputs repeat the n most recent ones. The xoshiro256** state
// transition is linear over GF(2) and therefore invertible; only the
// Uint64 stream position is affected — the cached Box–Muller spare (if
// any) is left alone, so Backstep is only meaningful for uniform-draw
// usage such as Fill/Batch.
func (r *RNG) Backstep(n int) {
	a1, b1, c2, d2 := r.s[0], r.s[1], r.s[2], r.s[3]
	for ; n > 0; n-- {
		// Forward step, with (a,b,c,d) the pre-step state:
		//   t  = b<<17
		//   c1 = c ^ a;  d1 = d ^ b;  b1 = b ^ c1;  a1 = a ^ d1
		//   c2 = c1 ^ t; d2 = rotl(d1, 45)
		d1 := rotl(d2, 64-45)
		// b1 ^ c2 = (b ^ c ^ a) ^ (c ^ a ^ b<<17) = b ^ (b<<17);
		// invert x ^ (x<<17) = y by resubstitution (3 rounds cover 64 bits).
		y := b1 ^ c2
		b := y
		b = y ^ (b << 17)
		b = y ^ (b << 17)
		b = y ^ (b << 17)
		a := a1 ^ d1
		d := d1 ^ b
		c := (b1 ^ b) ^ a
		a1, b1, c2, d2 = a, b, c, d
	}
	r.s[0], r.s[1], r.s[2], r.s[3] = a1, b1, c2, d2
}

// batchCap is the block size of a Batch: large enough that one fill covers
// a typical read's draws, small enough to live inline in a per-worker
// scratch structure (2 KiB).
const batchCap = 256

// batchRefill is the block size after the initial hint-sized fill runs dry.
const batchRefill = 64

// Batch is a buffered view of an RNG's Uint64 stream with exact draw
// parity: the values returned by Uint64/Float64/Intn are identical,
// call-for-call, to the ones the underlying generator would have produced
// directly, and Unbind backsteps the generator past any over-filled draws
// so its stream position is also identical. The buffer is inline, so a
// Batch embedded in a per-worker arena costs no allocation.
//
// A Batch is single-goroutine, like the RNG it wraps. Between Bind and
// Unbind (or Discard), the underlying generator must not be used directly.
type Batch struct {
	src  *RNG
	i, n int
	buf  [batchCap]uint64
}

// Bind attaches the batch to a generator and pre-fills about hint draws
// (clamped to the buffer size). hint is a throughput knob, not a limit —
// the batch refills transparently when it runs dry.
func (b *Batch) Bind(src *RNG, hint int) {
	if hint < batchRefill {
		hint = batchRefill
	}
	if hint > batchCap {
		hint = batchCap
	}
	b.src = src
	b.i, b.n = 0, hint
	src.Fill(b.buf[:hint])
}

// refill fetches the next block and returns its first draw. Outlined from
// Uint64 (and kept call-shaped, not inlined back into it) so the hot
// in-buffer path stays under the inlining budget: Uint64 then inlines into
// the transmit loop as a bounds check, a load and an increment.
//
//go:noinline
func (b *Batch) refill() uint64 {
	b.src.Fill(b.buf[:batchRefill])
	b.i, b.n = 1, batchRefill
	return b.buf[0]
}

// Uint64 returns the next 64 uniformly random bits of the bound stream.
func (b *Batch) Uint64() uint64 {
	i := b.i
	if i == b.n {
		return b.refill()
	}
	b.i = i + 1
	return b.buf[i]
}

// Float64 returns a uniform float64 in [0, 1), bit-identical to
// RNG.Float64 on the same stream position.
func (b *Batch) Float64() float64 {
	return float64(b.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n), consuming exactly the words
// RNG.Intn would (same Lemire rejection walk). It panics if n <= 0.
func (b *Batch) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	bound := uint64(n)
	for {
		v := b.Uint64()
		hi, lo := mul128(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// NextBlock returns the unconsumed remainder of the current block,
// refilling it first when empty. Hot loops index the returned slice
// directly — a load per draw, no call — and must report how many draws
// they took via Skip before any other draw call on the batch. The slice
// is valid until the next refill (any draw or NextBlock call once it is
// exhausted).
func (b *Batch) NextBlock() []uint64 {
	if b.i == b.n {
		b.src.Fill(b.buf[:batchRefill])
		b.i, b.n = 0, batchRefill
	}
	return b.buf[b.i:b.n]
}

// Skip marks k draws of the block returned by NextBlock as consumed.
func (b *Batch) Skip(k int) { b.i += k }

// Unbind detaches the batch, backstepping the generator past every filled
// but unconsumed draw: the generator is left in exactly the state it would
// hold had each consumed draw been made directly.
func (b *Batch) Unbind() {
	if b.src == nil {
		return
	}
	b.src.Backstep(b.n - b.i)
	b.src, b.i, b.n = nil, 0, 0
}

// Discard detaches the batch without rewinding: filled but unconsumed
// draws are dropped, leaving the generator ahead of where per-call use
// would have put it. This is the "fast RNG order" escape hatch — cheaper
// than Unbind, still deterministic per seed, but the stream position no
// longer matches unbatched draw accounting.
func (b *Batch) Discard() {
	b.src, b.i, b.n = nil, 0, 0
}
