package rng

import (
	"fmt"
	"sort"
)

// Categorical samples indices with fixed, possibly unnormalised weights.
// Construction is O(n); sampling is O(log n) via binary search on the CDF.
// The zero value is unusable; build with NewCategorical.
type Categorical struct {
	cdf   []float64
	total float64
	// lastPos is the index of the last positive-weight outcome: the clamp
	// target when a draw lands at or beyond the final CDF value.
	lastPos int
}

// NewCategorical builds a sampler over len(weights) outcomes. Weights must
// be non-negative and sum to a positive value; they need not be normalised.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	lastPos := -1
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("rng: negative weight %g at index %d", w, i)
		}
		if w > 0 {
			lastPos = i
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to %g, need > 0", total)
	}
	return &Categorical{cdf: cdf, total: total, lastPos: lastPos}, nil
}

// MustCategorical is NewCategorical that panics on error; for static tables.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of outcomes.
func (c *Categorical) Len() int { return len(c.cdf) }

// Prob returns the normalised probability of outcome i.
func (c *Categorical) Prob(i int) float64 {
	if i < 0 || i >= len(c.cdf) {
		return 0
	}
	prev := 0.0
	if i > 0 {
		prev = c.cdf[i-1]
	}
	return (c.cdf[i] - prev) / c.total
}

// Sample draws one outcome index. A zero-weight outcome is never returned,
// for any draw.
func (c *Categorical) Sample(r *RNG) int {
	return c.sampleU(r.Float64() * c.total)
}

// sampleU maps one uniform draw u ∈ [0, total] to an outcome: the i with
// cdf[i-1] <= u < cdf[i]. Factored out of Sample so the exact-boundary
// cases — u == 0 with leading zero weights, u landing exactly on an
// interior CDF value, u rounding up to total with trailing zero weights —
// are directly testable without hunting for seeds that produce them.
func (c *Categorical) sampleU(u float64) int {
	// Strict search: the smallest i with cdf[i] > u. Strictness is what
	// makes zero-weight outcomes unreachable: a zero-weight outcome shares
	// its CDF value with its predecessor (or with 0 when leading), so its
	// half-open interval [cdf[i-1], cdf[i]) is empty and no u selects it.
	// The old SearchFloat64s(cdf, u) used >=, which returned the wrong
	// outcome whenever u hit a CDF value exactly — including outcome 0 for
	// u == 0 when weight 0 is zero, despite the skip loop only handling
	// runs whose shared CDF value was exactly 0.
	i := sort.Search(len(c.cdf), func(j int) bool { return c.cdf[j] > u })
	if i > c.lastPos {
		// u reached the final CDF value (Float64()*total can round up to
		// total): clamp to the last positive-weight outcome, skipping any
		// trailing zero-weight ones.
		i = c.lastPos
	}
	return i
}
