package rng

import (
	"fmt"
	"sort"
)

// Categorical samples indices with fixed, possibly unnormalised weights.
// Construction is O(n); sampling is O(log n) via binary search on the CDF.
// The zero value is unusable; build with NewCategorical.
type Categorical struct {
	cdf   []float64
	total float64
}

// NewCategorical builds a sampler over len(weights) outcomes. Weights must
// be non-negative and sum to a positive value; they need not be normalised.
func NewCategorical(weights []float64) (*Categorical, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("rng: categorical needs at least one weight")
	}
	cdf := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("rng: negative weight %g at index %d", w, i)
		}
		total += w
		cdf[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("rng: categorical weights sum to %g, need > 0", total)
	}
	return &Categorical{cdf: cdf, total: total}, nil
}

// MustCategorical is NewCategorical that panics on error; for static tables.
func MustCategorical(weights []float64) *Categorical {
	c, err := NewCategorical(weights)
	if err != nil {
		panic(err)
	}
	return c
}

// Len returns the number of outcomes.
func (c *Categorical) Len() int { return len(c.cdf) }

// Prob returns the normalised probability of outcome i.
func (c *Categorical) Prob(i int) float64 {
	if i < 0 || i >= len(c.cdf) {
		return 0
	}
	prev := 0.0
	if i > 0 {
		prev = c.cdf[i-1]
	}
	return (c.cdf[i] - prev) / c.total
}

// Sample draws one outcome index.
func (c *Categorical) Sample(r *RNG) int {
	u := r.Float64() * c.total
	i := sort.SearchFloat64s(c.cdf, u)
	// SearchFloat64s returns the first index with cdf[i] >= u; skip over any
	// zero-weight outcomes that share a CDF value with their predecessor.
	for i < len(c.cdf)-1 && c.cdf[i] == 0 {
		i++
	}
	if i >= len(c.cdf) {
		i = len(c.cdf) - 1
	}
	return i
}
